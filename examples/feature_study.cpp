// Feature-engineering study: what the classifier actually uses.
//
// Prints, for one split layer, the feature-importance metrics of the 11
// pair features over the training corpus, then ablates the attack by
// feature set (Imp-7 / Imp-9 / Imp-11) and by the single most important
// feature family, showing how accuracy responds - the workflow behind the
// paper's Section IV-A analysis.
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hpp"
#include "core/ranking.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const int split_layer = argc > 1 ? std::atoi(argv[1]) : 6;

  std::printf("generating design suite...\n");
  const auto designs = synth::generate_benchmark_suite();
  const core::ChallengeSuite suite = core::make_suite(designs, split_layer);

  // Importance metrics on the training corpus of design 0.
  const auto training = suite.training_for(0);
  const auto scores = core::rank_attack_features(training);
  std::printf("\nsplit layer %d feature ranking (training corpus of %s):\n",
              split_layer, suite.challenge(0).design_name.c_str());
  std::printf("%-22s %10s %10s %10s\n", "feature", "info gain", "|corr|",
              "Fisher");
  for (const auto& s : scores) {
    std::printf("%-22s %10.4f %10.4f %10.4f\n", s.name.c_str(), s.info_gain,
                s.abs_corr, s.fisher);
  }

  // Feature-set ablation on design 0.
  std::printf("\nfeature-set ablation (accuracy at a 1%% LoC fraction):\n");
  for (const char* name : {"Imp-7", "Imp-9", "Imp-11"}) {
    core::AttackConfig cfg = core::config_from_name(name);
    cfg.max_test_vpins = 1200;  // unbiased subsample, keeps the demo fast
    const auto res = core::AttackEngine::run(suite.challenge(0), training, cfg);
    std::printf("  %-8s %.2f%%\n", name,
                100.0 * res.accuracy_for_mean_loc(
                            0.01 * suite.challenge(0).num_vpins()));
  }
  return 0;
}

// The reverse engineer's full workflow: attack, commit to connections,
// score the reconstruction, and emit the recovered gate-level netlist.
//
//  1. Generate the suite; attack one design at the top via layer with the
//     strongest configuration (Imp-11Y).
//  2. Commit to one partner per v-pin with the global matching extension
//     (one-to-one consistency beats independent per-v-pin choices).
//  3. Report connection precision/recall and the fraction of cut nets
//     whose BEOL was reassembled exactly.
//  4. Write the recovered design as structural Verilog.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/global_matching.hpp"
#include "core/pipeline.hpp"
#include "core/reconstruction.hpp"
#include "netlist/verilog.hpp"

int main() {
  using namespace repro;
  std::printf("generating design suite...\n");
  const auto designs = synth::generate_benchmark_suite();
  const core::ChallengeSuite suite = core::make_suite(designs, 8);

  const std::size_t victim = 0;
  const auto& target = suite.challenge(victim);
  const auto training = suite.training_for(victim);
  std::printf("attacking %s at split layer 8 (%d v-pins)...\n",
              target.design_name.c_str(), target.num_vpins());

  const core::AttackConfig cfg = core::config_from_name("Imp-11Y");
  const auto res = core::AttackEngine::run(target, training, cfg);

  // Two operating points: commit to everything (maximum recall) vs commit
  // only where the classifier is confident (higher precision).
  core::ReconstructionReport rep;
  for (double min_p : {0.0, 0.8}) {
    core::GlobalMatchingOptions mopt;
    mopt.min_probability = min_p;
    const auto match = core::global_matching_attack(res, target, mopt);
    rep = core::score_reconstruction(target, match.chosen);
    std::printf("\nreconstruction report (min probability %.1f):\n", min_p);
    std::printf("  guessed pairs:     %ld (%ld correct)\n",
                rep.guessed_pairs, rep.correct_pairs);
    std::printf("  precision:         %.2f%%\n", 100 * rep.precision);
    std::printf("  recall:            %.2f%%\n", 100 * rep.recall);
    std::printf("  nets reassembled:  %d / %d (%.2f%%)\n",
                rep.recovered_nets, rep.cut_nets,
                100 * rep.net_recovery_rate);
  }

  const auto out =
      std::filesystem::temp_directory_path() / "recovered_design.v";
  {
    std::ofstream vf(out);
    netlist::write_verilog(vf, *designs[victim].netlist);
  }
  std::printf("\nrecovered gate-level netlist written to %s\n", out.c_str());
  std::printf("(connections outside the %.2f%% recovered set would carry\n"
              "the attacker's guesses rather than ground truth)\n",
              100 * rep.net_recovery_rate);
  return 0;
}

// Quickstart: the whole pipeline on one page.
//
//  1. Generate a small placed-and-routed design suite (stand-ins for the
//     paper's industrial superblue layouts).
//  2. Cut each design at a split layer -> v-pins + layout features.
//  3. Attack one design with a model trained on the others (leave-one-out).
//  4. Report LoC size / accuracy trade-offs and the proximity attack.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart [split_layer]
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hpp"
#include "core/proximity.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const int split_layer = argc > 1 ? std::atoi(argv[1]) : 8;

  std::printf("generating the 5-design suite...\n");
  const auto designs = synth::generate_benchmark_suite();
  const core::ChallengeSuite suite = core::make_suite(designs, split_layer);

  // Attack design 0 (sb1) with a model trained on the other four.
  const auto& target = suite.challenge(0);
  const auto training = suite.training_for(0);
  std::printf("attacking %s at split layer %d (%d v-pins)\n",
              target.design_name.c_str(), split_layer, target.num_vpins());

  const core::AttackConfig config = core::config_from_name("Imp-11");
  const core::TrainedModel model = core::AttackEngine::train(training, config);
  const core::AttackResult result = core::AttackEngine::test(model, target);

  std::printf("train: %d samples in %.1fs; test: %.1fs\n",
              model.num_train_samples, model.train_seconds,
              result.test_seconds);

  std::printf("\n%-14s %-12s %s\n", "LoC fraction", "mean |LoC|", "accuracy");
  for (double frac : {0.001, 0.01, 0.05, 0.10}) {
    const double loc = frac * target.num_vpins();
    std::printf("%-14.3f %-12.1f %.2f%%\n", frac, loc,
                100.0 * result.accuracy_for_mean_loc(loc));
  }
  std::printf("max accuracy (threshold -> 0): %.2f%%\n",
              100.0 * result.max_accuracy());

  const core::PAOutcome pa =
      core::validated_proximity_attack(result, target, training, config);
  std::printf("\nproximity attack: %.2f%% success "
              "(PA-LoC fraction %.4f chosen by validation)\n",
              100.0 * pa.success_rate, pa.best_fraction);
  return 0;
}

// Designer-side study: which split layer is safe enough, and how much does
// routing obfuscation buy?
//
// For a designh under evaluation (sb18), the tool measures - against an
// Imp-11 attacker trained on the other designs - the attack accuracy at a
// fixed candidate budget and the proximity-attack success rate, for split
// layers 8/6/4, with and without 1%-of-die y-noise obfuscation. This is
// the decision the paper's Sections IV-E/F/G inform.
#include <cstdio>

#include "core/obfuscation.hpp"
#include "core/pipeline.hpp"
#include "core/proximity.hpp"

int main() {
  using namespace repro;
  std::printf("generating design suite...\n");
  const auto designs = synth::generate_benchmark_suite();
  const std::size_t victim = 4;  // sb18

  std::printf("\n%-10s %-10s | %-14s %-14s\n", "split", "obfusc.",
              "acc @1%% LoC", "PA success");
  for (int layer : {8, 6, 4}) {
    const core::ChallengeSuite suite = core::make_suite(designs, layer);
    for (bool obfuscate : {false, true}) {
      std::vector<splitmfg::SplitChallenge> pool;
      for (std::size_t i = 0; i < suite.size(); ++i) {
        pool.push_back(obfuscate
                           ? core::add_y_noise(suite.challenge(i), 0.01,
                                               900 + 7 * i)
                           : suite.challenge(i));
      }
      std::vector<const splitmfg::SplitChallenge*> training;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (i != victim) training.push_back(&pool[i]);
      }
      core::AttackConfig cfg = core::config_from_name("Imp-11");
      // Keep the example snappy: unbiased target/training subsampling
      // (see AttackConfig docs).
      cfg.max_test_vpins = 1200;
      cfg.max_train_samples = 24000;
      const auto res = core::AttackEngine::run(pool[victim], training, cfg);
      core::PAOptions popt;
      popt.fractions = {0.001, 0.005, 0.02};
      popt.max_validation_vpins = 300;
      const auto pa = core::validated_proximity_attack(res, pool[victim],
                                                       training, cfg, popt);
      std::printf("%-10d %-10s | %13.2f%% %13.2f%%\n", layer,
                  obfuscate ? "1% noise" : "none",
                  100.0 * res.accuracy_for_mean_loc(
                              0.01 * pool[victim].num_vpins()),
                  100.0 * pa.success_rate);
    }
  }
  std::printf(
      "\nReading: lower split layers and obfuscation both reduce the\n"
      "attacker's accuracy and single-match (PA) success; splitting at the\n"
      "highest via layer is the least safe choice.\n");
  return 0;
}

// Calibration / inspection tool: prints, for every generated design, the
// physical statistics that the experiments depend on (cells, nets, die,
// routing overflow, per-layer usage, v-pin populations per split layer,
// and true-match distance percentiles). Useful when tuning presets.
#include <cstdio>
#include <span>

#include "core/sampling.hpp"
#include "splitmfg/split.hpp"
#include "synth/synth.hpp"

int main() {
  using namespace repro;
  const auto designs = synth::generate_benchmark_suite();

  for (const auto& d : designs) {
    std::printf("design %-5s cells=%d nets=%d die=%lldx%lld gcells=%dx%d\n",
                d.params.name.c_str(), d.netlist->num_cells(),
                d.netlist->num_nets(),
                static_cast<long long>(d.routes.grid.die().width()),
                static_cast<long long>(d.routes.grid.die().height()),
                d.routes.grid.nx(), d.routes.grid.ny());
    std::printf("  route: wire=%ld gcells, vias=%ld, overflowed_edges=%ld, "
                "maze=%d\n",
                d.route_stats.total_wire_gcells, d.route_stats.total_vias,
                d.route_stats.overflowed_edges,
                d.route_stats.maze_invocations);
    std::printf("  layer usage:");
    for (int l = 2; l <= 9; ++l) {
      std::printf(" M%d=%ld", l, d.routes.usage.total_usage(l));
    }
    std::printf("\n");
    for (int layer : {4, 6, 8}) {
      const auto ch =
          splitmfg::make_challenge(*d.netlist, d.routes, layer);
      const splitmfg::SplitChallenge* chp = &ch;
      const auto dists = core::match_distances(std::span(&chp, 1));
      double p50 = 0, p90 = 0;
      if (!dists.empty()) {
        p50 = dists[dists.size() / 2];
        p90 = dists[static_cast<std::size_t>(0.9 * dists.size())];
      }
      long same_row = 0, pairs = 0;
      for (const auto& v : ch.vpins) {
        for (auto m : v.matches) {
          if (m > v.id) {
            ++pairs;
            same_row += (v.pos.y == ch.vpin(m).pos.y);
          }
        }
      }
      std::printf(
          "  split %d: vpins=%d matching_pairs=%ld d50=%.0f d90=%.0f "
          "same_row=%.0f%%\n",
          layer, ch.num_vpins(), ch.num_matching_pairs(), p50, p90,
          pairs ? 100.0 * same_row / pairs : 0.0);
    }
  }
  return 0;
}

// Attacker workflow through layout files - the paper's actual threat
// model: the untrusted foundry receives LEF + a FEOL-truncated DEF and
// reconstructs the partial network from the files alone.
//
//  1. The "design house" writes LEF (library/tech) and DEF files: the FEOL
//     view of the victim design (cut at the split layer) plus fully-routed
//     DEFs of other designs the attacker has reverse-engineered (the
//     training corpus).
//  2. The "attacker" parses the files, rebuilds challenges, trains the
//     model and produces per-v-pin candidate lists for the victim.
//
// Ground truth for scoring comes from the full (uncut) view of the victim,
// which the attacker of course would not have; it is used here only to
// report the attack quality.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/pipeline.hpp"
#include "lefdef/lefdef.hpp"

int main() {
  using namespace repro;
  namespace fs = std::filesystem;
  const int split_layer = 8;
  const fs::path dir = fs::temp_directory_path() / "split_mfg_exchange";
  fs::create_directories(dir);

  // ---- design-house side --------------------------------------------------
  std::printf("design house: generating and exporting layouts to %s\n",
              dir.c_str());
  const auto tech = tech::Technology::make_default(800);
  std::vector<synth::SynthDesign> designs;
  for (const char* name : {"sb1", "sb5", "sb18"}) {
    synth::SynthParams p = synth::preset(name);
    p.num_cells = std::max(2000, p.num_cells / 2);
    designs.push_back(synth::generate(p));
  }
  {
    std::ofstream lef(dir / "tech.lef");
    lefdef::write_lef(lef, tech, *designs[0].lib);
  }
  // Victim (sb1): FEOL view only. Training corpus: full views.
  {
    std::ofstream def(dir / "victim_feol.def");
    lefdef::write_def(def, *designs[0].netlist, designs[0].routes,
                      split_layer);
  }
  for (std::size_t i = 1; i < designs.size(); ++i) {
    std::ofstream def(dir / (designs[i].params.name + ".def"));
    lefdef::write_def(def, *designs[i].netlist, designs[i].routes);
  }

  // ---- attacker side ------------------------------------------------------
  std::printf("attacker: parsing LEF/DEF files...\n");
  std::ifstream lef_in(dir / "tech.lef");
  const lefdef::LefContents lef = lefdef::read_lef(lef_in);
  auto lib = std::make_shared<const netlist::Library>(std::move(lef.lib));

  std::vector<splitmfg::SplitChallenge> training;
  for (const char* name : {"sb5", "sb18"}) {
    std::ifstream def_in(dir / (std::string(name) + ".def"));
    const lefdef::DefDesign def = lefdef::read_def(def_in, lib);
    const route::RouteDB db =
        lefdef::to_route_db(def, lef.tech.gcell_size());
    training.push_back(
        splitmfg::make_challenge(def.netlist, db, split_layer));
    std::printf("  training design %s: %d v-pins\n", name,
                training.back().num_vpins());
  }

  // The victim's FEOL DEF: the cut already happened on the design-house
  // side, so the attacker-side challenge is built from the *full* view
  // here only to obtain scoring ground truth. The features the attack
  // consumes are identical in both views (everything below the split).
  const auto victim_full = splitmfg::make_challenge(
      *designs[0].netlist, designs[0].routes, split_layer);
  {
    std::ifstream def_in(dir / "victim_feol.def");
    const lefdef::DefDesign feol = lefdef::read_def(def_in, lib);
    long feol_vias = 0;
    for (const auto& nr : feol.routes) {
      feol_vias += static_cast<long>(nr.vias.size());
    }
    std::printf("attacker: victim FEOL parsed, %d cells, %ld vias kept\n",
                feol.netlist.num_cells(), feol_vias);
  }

  std::vector<const splitmfg::SplitChallenge*> train_ptrs;
  for (const auto& ch : training) train_ptrs.push_back(&ch);

  const core::AttackConfig cfg = core::config_from_name("Imp-9Y");
  const auto result =
      core::AttackEngine::run(victim_full, train_ptrs, cfg);

  std::printf("\nattack on victim (%d v-pins, split %d) with %s:\n",
              victim_full.num_vpins(), split_layer, cfg.name.c_str());
  for (double frac : {0.01, 0.05}) {
    std::printf("  LoC fraction %.2f -> accuracy %.2f%%\n", frac,
                100.0 * result.accuracy_for_mean_loc(
                            frac * victim_full.num_vpins()));
  }
  return 0;
}

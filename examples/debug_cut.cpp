// Temporary diagnostic: inspect unmatched v-pins at split 8.
#include <cstdio>
#include <map>

#include "splitmfg/split.hpp"
#include "synth/synth.hpp"

int main() {
  using namespace repro;
  auto d = synth::generate(synth::preset("sb1"));
  const auto ch = splitmfg::make_challenge(*d.netlist, d.routes, 8);

  int unmatched = 0;
  std::map<int, int> match_hist;
  std::map<netlist::NetId, int> net_unmatched;
  for (const auto& v : ch.vpins) {
    ++match_hist[static_cast<int>(v.matches.size())];
    if (v.matches.empty()) {
      ++unmatched;
      ++net_unmatched[v.net];
    }
  }
  std::printf("vpins=%d unmatched=%d\n", ch.num_vpins(), unmatched);
  for (auto [k, v] : match_hist) std::printf("  matches=%d : %d vpins\n", k, v);

  // Dump the routes of the first three nets with unmatched v-pins.
  int dumped = 0;
  for (auto [net, cnt] : net_unmatched) {
    if (dumped++ >= 3) break;
    const auto& nr = d.routes.route_of(net);
    std::printf("net %d (%d unmatched): pins=%zu\n", net, cnt,
                nr.pin_access.size());
    for (const auto& w : nr.wires) {
      std::printf("  wire M%d (%d,%d)-(%d,%d)\n", w.layer, w.a.x, w.a.y,
                  w.b.x, w.b.y);
    }
    for (const auto& v : nr.vias) {
      std::printf("  via V%d (%d,%d)\n", v.via_layer, v.at.x, v.at.y);
    }
    for (const auto& pa : nr.pin_access) {
      std::printf("  pin at (%d,%d) top=M%d\n", pa.gcell.x, pa.gcell.y,
                  pa.top_layer);
    }
  }
  return 0;
}

#include "place/placement.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace repro::place {

int Floorplan::row_of(geom::Dbu y) const {
  auto r = static_cast<int>((y - die.lo.y) / row_height);
  return geom::clamp(r, 0, num_rows() - 1);
}

int Floorplan::site_of(geom::Dbu x) const {
  auto s = static_cast<int>((x - die.lo.x) / site_width);
  return geom::clamp(s, 0, sites_per_row() - 1);
}

namespace {

/// Per-row occupancy bitmap at site granularity.
class Occupancy {
 public:
  Occupancy(const Floorplan& fp)
      : fp_(fp),
        rows_(static_cast<std::size_t>(fp.num_rows()),
              std::vector<bool>(static_cast<std::size_t>(fp.sites_per_row()),
                                false)) {}

  /// Marks [site, site+n) of `row` occupied. No checking.
  void block(int row, int site, int n) {
    auto& r = rows_[static_cast<std::size_t>(row)];
    for (int s = site; s < site + n && s < fp_.sites_per_row(); ++s) {
      if (s >= 0) r[static_cast<std::size_t>(s)] = true;
    }
  }

  /// True if [site, site+n) of `row` is entirely free and in range.
  bool free_run(int row, int site, int n) const {
    if (site < 0 || site + n > fp_.sites_per_row()) return false;
    const auto& r = rows_[static_cast<std::size_t>(row)];
    for (int s = site; s < site + n; ++s) {
      if (r[static_cast<std::size_t>(s)]) return false;
    }
    return true;
  }

  /// Finds the free run of `n` sites in `row` whose start is closest to
  /// `want`; returns -1 if none.
  int nearest_free(int row, int want, int n) const {
    const int max_start = fp_.sites_per_row() - n;
    if (max_start < 0) return -1;
    want = geom::clamp(want, 0, max_start);
    for (int d = 0; d <= max_start; ++d) {
      if (want - d >= 0 && free_run(row, want - d, n)) return want - d;
      if (want + d <= max_start && free_run(row, want + d, n)) return want + d;
    }
    return -1;
  }

 private:
  const Floorplan& fp_;
  std::vector<std::vector<bool>> rows_;
};

}  // namespace

void legalize(netlist::Netlist& nl, const Floorplan& fp) {
  Occupancy occ(fp);
  const netlist::Library& lib = nl.library();

  // Block macro footprints (macros stay where the floorplanner put them).
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    const auto& inst = nl.cell(c);
    const auto& lc = lib.cell(inst.lib_cell);
    if (!lc.is_macro) continue;
    const int row0 = fp.row_of(inst.origin.y);
    const int row1 = fp.row_of(inst.origin.y + lc.height - 1);
    const int site0 = fp.site_of(inst.origin.x);
    const int n = static_cast<int>(
        (lc.width + fp.site_width - 1) / fp.site_width);
    for (int r = row0; r <= row1; ++r) occ.block(r, site0, n);
  }

  // Place standard cells in order of decreasing width (big cells are the
  // hardest to fit), each at the free run nearest its desired site.
  std::vector<netlist::CellId> order;
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    if (!lib.cell(nl.cell(c).lib_cell).is_macro) order.push_back(c);
  }
  // std::sort with the cell id as tie-break is equivalent to stable_sort
  // here (`order` starts in ascending-id order) but never allocates the
  // libstdc++ temporary merge buffer, whose nothrow-new/free pairing
  // trips ASan's alloc-dealloc-mismatch check on this toolchain.
  std::sort(order.begin(), order.end(),
            [&](netlist::CellId a, netlist::CellId b) {
              const auto wa = lib.cell(nl.cell(a).lib_cell).width;
              const auto wb = lib.cell(nl.cell(b).lib_cell).width;
              if (wa != wb) return wa > wb;
              return a < b;
            });

  for (netlist::CellId c : order) {
    auto& inst = nl.mutable_cell(c);
    const auto& lc = lib.cell(inst.lib_cell);
    const int n =
        static_cast<int>((lc.width + fp.site_width - 1) / fp.site_width);
    const int want_row = fp.row_of(inst.origin.y);
    const int want_site = fp.site_of(inst.origin.x);

    int best_row = -1, best_site = -1;
    for (int dr = 0; dr < fp.num_rows(); ++dr) {
      for (int sign : {+1, -1}) {
        if (dr == 0 && sign < 0) continue;
        const int row = want_row + sign * dr;
        if (row < 0 || row >= fp.num_rows()) continue;
        const int site = occ.nearest_free(row, want_site, n);
        if (site >= 0) {
          best_row = row;
          best_site = site;
          break;
        }
      }
      if (best_row >= 0) break;
    }
    if (best_row < 0) {
      throw std::runtime_error("legalize: design does not fit in floorplan");
    }
    occ.block(best_row, best_site, n);
    inst.origin = fp.site_origin(best_row, best_site);
  }
}

PinDensityMap::PinDensityMap(const netlist::Netlist& nl, const geom::Rect& die,
                             geom::Dbu bin_size)
    : die_(die), bin_size_(bin_size) {
  if (bin_size <= 0) throw std::invalid_argument("bin_size must be positive");
  const int nx = std::max<int>(1, static_cast<int>(die.width() / bin_size));
  const int ny = std::max<int>(1, static_cast<int>(die.height() / bin_size));
  grid_ = geom::Grid2D<int>(nx, ny, 0);

  const netlist::Library& lib = nl.library();
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    const auto& inst = nl.cell(c);
    const auto& lc = lib.cell(inst.lib_cell);
    for (int p = 0; p < static_cast<int>(lc.pins.size()); ++p) {
      const geom::Point pos =
          nl.pin_position(netlist::PinRef{c, p});
      const int bx = geom::clamp(
          static_cast<int>((pos.x - die_.lo.x) / bin_size_), 0, nx - 1);
      const int by = geom::clamp(
          static_cast<int>((pos.y - die_.lo.y) / bin_size_), 0, ny - 1);
      ++grid_.at(bx, by);
    }
  }
}

double PinDensityMap::density_around(const geom::Point& p, int r) const {
  const int bx = geom::clamp(
      static_cast<int>((p.x - die_.lo.x) / bin_size_), 0, grid_.nx() - 1);
  const int by = geom::clamp(
      static_cast<int>((p.y - die_.lo.y) / bin_size_), 0, grid_.ny() - 1);
  long total = 0;
  int bins = 0;
  for (int dx = -r; dx <= r; ++dx) {
    for (int dy = -r; dy <= r; ++dy) {
      if (!grid_.in_bounds(bx + dx, by + dy)) continue;
      total += grid_.at(bx + dx, by + dy);
      ++bins;
    }
  }
  if (bins == 0) return 0.0;
  // Pins per 1000x1000-DBU of counted area.
  const double area =
      static_cast<double>(bins) * static_cast<double>(bin_size_) *
      static_cast<double>(bin_size_) / 1e6;
  return static_cast<double>(total) / area;
}

}  // namespace repro::place

// Placement support: floorplan (die / rows / sites), a greedy row-based
// legalizer used by the synthetic design generator, and the pin-density map
// behind the PC (placement congestion) feature of the attack.
#pragma once

#include <vector>

#include "geom/geom.hpp"
#include "netlist/netlist.hpp"

namespace repro::place {

/// Die and row geometry. Rows span the die horizontally; cells occupy an
/// integral number of sites.
struct Floorplan {
  geom::Rect die;
  geom::Dbu site_width = netlist::Library::kSiteWidth;
  geom::Dbu row_height = netlist::Library::kRowHeight;

  int num_rows() const {
    return static_cast<int>(die.height() / row_height);
  }
  int sites_per_row() const {
    return static_cast<int>(die.width() / site_width);
  }
  /// Lower-left corner of (row, site).
  geom::Point site_origin(int row, int site) const {
    return {die.lo.x + site * site_width, die.lo.y + row * row_height};
  }
  /// Row / site indices of the site containing `p` (clamped into the die).
  int row_of(geom::Dbu y) const;
  int site_of(geom::Dbu x) const;
};

/// Greedy legalizer: places each cell at the nearest free stretch of sites
/// to its desired location, scanning rows outward. Macros must already be
/// placed (their footprints are blocked first). Updates cell origins
/// in-place. Throws std::runtime_error if the design does not fit.
void legalize(netlist::Netlist& nl, const Floorplan& fp);

/// Pin-density map: number of cell pins per bin, used for the PC feature
/// ("pin density around the pin that connects to the target v-pin").
class PinDensityMap {
 public:
  /// Builds the map with square bins of `bin_size` DBU over the die.
  PinDensityMap(const netlist::Netlist& nl, const geom::Rect& die,
                geom::Dbu bin_size);

  /// Total pins within the (2r+1)x(2r+1) block of bins centered on the bin
  /// containing `p`, divided by the block area in square microns-equivalent
  /// (per 1000x1000 DBU). This is the PC measurement of the paper.
  double density_around(const geom::Point& p, int r = 1) const;

  int pins_in_bin(int bx, int by) const { return grid_.at(bx, by); }
  int nx() const { return grid_.nx(); }
  int ny() const { return grid_.ny(); }

 private:
  geom::Rect die_;
  geom::Dbu bin_size_;
  geom::Grid2D<int> grid_;
};

}  // namespace repro::place

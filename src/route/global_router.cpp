#include "route/global_router.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <stdexcept>

#include "common/obs.hpp"

namespace repro::route {

namespace {

/// Extra cost charged per bend, discouraging gratuitous Z-shapes.
constexpr long kViaCost = 6;

/// Removes zero-length runs and collinear corners from a corner list.
std::vector<GCell> simplify_corners(const std::vector<GCell>& in) {
  std::vector<GCell> out;
  for (const GCell& g : in) {
    if (!out.empty() && out.back() == g) continue;
    while (out.size() >= 2) {
      const GCell& p1 = out[out.size() - 2];
      const GCell& p2 = out.back();
      const bool collinear =
          (p1.x == p2.x && p2.x == g.x) || (p1.y == p2.y && p2.y == g.y);
      if (collinear) {
        out.pop_back();
      } else {
        break;
      }
    }
    out.push_back(g);
  }
  return out;
}

}  // namespace

GlobalRouter::GlobalRouter(const netlist::Netlist& nl,
                           const tech::Technology& tech, RouterOptions opt)
    : nl_(nl),
      tech_(tech),
      opt_(opt),
      grid_(nl.bounding_box(), tech.gcell_size()),
      usage_(tech, grid_.nx(), grid_.ny()) {
  if (tech.num_metal_layers() < 9) {
    throw std::invalid_argument(
        "GlobalRouter expects the 9-metal default stack");
  }
  const int span = std::max(grid_.nx(), grid_.ny());
  for (std::size_t i = 0; i < thresholds_.size(); ++i) {
    thresholds_[i] = std::max<int>(
        1, static_cast<int>(opt_.pair_threshold_fracs[i] * span));
  }
}

int GlobalRouter::pair_for_length(int len, std::mt19937_64& rng) const {
  int pair = 3;
  if (len <= thresholds_[0]) {
    pair = 0;
  } else if (len <= thresholds_[1]) {
    pair = 1;
  } else if (len <= thresholds_[2]) {
    pair = 2;
  }
  if (pair < 3) {
    std::bernoulli_distribution promote(opt_.promote_prob);
    if (promote(rng)) ++pair;
  }
  if (opt_.lift_to_pair >= 0 && pair < opt_.lift_to_pair &&
      opt_.lift_prob > 0.0) {
    std::bernoulli_distribution lift(opt_.lift_prob);
    if (lift(rng)) pair = std::min(3, opt_.lift_to_pair);
  }
  return pair;
}

long GlobalRouter::run_cost(int layer, GCell a, GCell b) const {
  const int cap = usage_.capacity(layer);
  long cost = 0;
  if (a.y == b.y) {
    const int x0 = std::min(a.x, b.x), x1 = std::max(a.x, b.x);
    for (int x = x0; x < x1; ++x) {
      const int u = usage_.usage(layer, x, a.y);
      cost += 1 + (u >= cap ? opt_.overflow_penalty * (u - cap + 1) : 0);
    }
  } else {
    const int y0 = std::min(a.y, b.y), y1 = std::max(a.y, b.y);
    for (int y = y0; y < y1; ++y) {
      const int u = usage_.usage(layer, a.x, y);
      cost += 1 + (u >= cap ? opt_.overflow_penalty * (u - cap + 1) : 0);
    }
  }
  return cost;
}

long GlobalRouter::path_cost(const Path& p) const {
  long cost = 0;
  for (std::size_t i = 0; i + 1 < p.corners.size(); ++i) {
    const GCell& a = p.corners[i];
    const GCell& b = p.corners[i + 1];
    if (a == b) continue;
    const bool horiz = (a.y == b.y);
    cost += run_cost(layer_for_run(p.pair, horiz), a, b) + kViaCost;
  }
  return cost;
}

bool GlobalRouter::path_overflows(const Path& p) const {
  for (std::size_t i = 0; i + 1 < p.corners.size(); ++i) {
    const GCell& a = p.corners[i];
    const GCell& b = p.corners[i + 1];
    if (a == b) continue;
    const bool horiz = (a.y == b.y);
    const int layer = layer_for_run(p.pair, horiz);
    const int cap = usage_.capacity(layer);
    if (horiz) {
      const int x0 = std::min(a.x, b.x), x1 = std::max(a.x, b.x);
      for (int x = x0; x < x1; ++x) {
        if (usage_.usage(layer, x, a.y) >= cap) return true;
      }
    } else {
      const int y0 = std::min(a.y, b.y), y1 = std::max(a.y, b.y);
      for (int y = y0; y < y1; ++y) {
        if (usage_.usage(layer, a.x, y) >= cap) return true;
      }
    }
  }
  return false;
}

GlobalRouter::Path GlobalRouter::best_pattern(GCell a, GCell b, int pair,
                                              std::mt19937_64& rng) const {
  std::vector<Path> candidates;
  auto add = [&](std::vector<GCell> corners) {
    Path p;
    p.corners = simplify_corners(corners);
    p.pair = pair;
    p.cost = path_cost(p);
    p.overflows = path_overflows(p);
    candidates.push_back(std::move(p));
  };

  // Two L-shapes (degenerate to a straight run when aligned).
  add({a, GCell{b.x, a.y}, b});
  if (a.x != b.x && a.y != b.y) add({a, GCell{a.x, b.y}, b});

  // Random Z-shapes.
  if (a.x != b.x || a.y != b.y) {
    for (int t = 0; t < opt_.num_z_trials; ++t) {
      if (a.x != b.x) {
        std::uniform_int_distribution<int> mid(std::min(a.x, b.x),
                                               std::max(a.x, b.x));
        const int xm = mid(rng);
        add({a, GCell{xm, a.y}, GCell{xm, b.y}, b});
      }
      if (a.y != b.y) {
        std::uniform_int_distribution<int> mid(std::min(a.y, b.y),
                                               std::max(a.y, b.y));
        const int ym = mid(rng);
        add({a, GCell{a.x, ym}, GCell{b.x, ym}, b});
      }
    }
  }

  // Obfuscated routing: occasionally take a random viable candidate
  // instead of the best one (see RouterOptions::random_route_prob).
  if (opt_.random_route_prob > 0.0) {
    std::bernoulli_distribution scramble(opt_.random_route_prob);
    if (scramble(rng)) {
      std::vector<const Path*> viable;
      for (const Path& p : candidates) {
        if (!p.overflows) viable.push_back(&p);
      }
      if (!viable.empty()) {
        std::uniform_int_distribution<std::size_t> pick(0, viable.size() - 1);
        return *viable[pick(rng)];
      }
    }
  }

  return *std::min_element(candidates.begin(), candidates.end(),
                           [](const Path& x, const Path& y) {
                             // Prefer non-overflowing, then cheaper.
                             if (x.overflows != y.overflows)
                               return !x.overflows;
                             return x.cost < y.cost;
                           });
}

GlobalRouter::Path GlobalRouter::maze_route(GCell a, GCell b, int pair) {
  ++stats_.maze_invocations;
  const int x0 = std::max(0, std::min(a.x, b.x) - opt_.maze_margin);
  const int x1 = std::min(grid_.nx() - 1, std::max(a.x, b.x) + opt_.maze_margin);
  const int y0 = std::max(0, std::min(a.y, b.y) - opt_.maze_margin);
  const int y1 = std::min(grid_.ny() - 1, std::max(a.y, b.y) + opt_.maze_margin);
  const int w = x1 - x0 + 1, h = y1 - y0 + 1;
  // A* state: (cell, axis of the last move). Axis 0 = horizontal, 1 =
  // vertical. Direction changes pay a bend (via) cost, which keeps maze
  // detours from zig-zagging between the two layers of the pair.
  const auto idx = [&](int x, int y, int axis) {
    return ((y - y0) * w + (x - x0)) * 2 + axis;
  };
  constexpr long kBendCost = 12;

  const long kInf = std::numeric_limits<long>::max();
  std::vector<long> dist(static_cast<std::size_t>(w) * h * 2, kInf);
  std::vector<int> prev(static_cast<std::size_t>(w) * h * 2, -1);

  using QEntry = std::pair<long, int>;  // (f = g + heuristic, state)
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
  const auto heur = [&](int x, int y) {
    return static_cast<long>(std::abs(x - b.x) + std::abs(y - b.y));
  };
  for (int axis : {0, 1}) {
    dist[static_cast<std::size_t>(idx(a.x, a.y, axis))] = 0;
    pq.emplace(heur(a.x, a.y), idx(a.x, a.y, axis));
  }

  const int hl = h_layer(pair), vl = v_layer(pair);
  const int hcap = usage_.capacity(hl), vcap = usage_.capacity(vl);

  int goal_state = -1;
  while (!pq.empty()) {
    const auto [f, state] = pq.top();
    pq.pop();
    const int cell = state / 2, axis = state % 2;
    const int x = x0 + cell % w, y = y0 + cell / w;
    const long g = dist[static_cast<std::size_t>(state)];
    if (f - heur(x, y) > g) continue;  // stale entry
    if (x == b.x && y == b.y) {
      goal_state = state;
      break;
    }

    struct Move {
      int nx, ny, ex, ey, layer, cap, axis;
    };
    const Move moves[4] = {
        {x + 1, y, x, y, hl, hcap, 0},      // +x uses h edge (x, y)
        {x - 1, y, x - 1, y, hl, hcap, 0},  // -x uses h edge (x-1, y)
        {x, y + 1, x, y, vl, vcap, 1},      // +y uses v edge (x, y)
        {x, y - 1, x, y - 1, vl, vcap, 1},  // -y uses v edge (x, y-1)
    };
    for (const Move& m : moves) {
      if (m.nx < x0 || m.nx > x1 || m.ny < y0 || m.ny > y1) continue;
      const int u = usage_.usage(m.layer, m.ex, m.ey);
      const long step =
          1 + (u >= m.cap ? opt_.overflow_penalty * (u - m.cap + 1) : 0) +
          (m.axis != axis ? kBendCost : 0);
      const int nstate = idx(m.nx, m.ny, m.axis);
      if (g + step < dist[static_cast<std::size_t>(nstate)]) {
        dist[static_cast<std::size_t>(nstate)] = g + step;
        prev[static_cast<std::size_t>(nstate)] = state;
        pq.emplace(g + step + heur(m.nx, m.ny), nstate);
      }
    }
  }

  Path p;
  p.pair = pair;
  if (goal_state < 0) {
    // Unreachable within the window (should not happen on an open grid);
    // fall back to a straight L.
    p.corners = simplify_corners({a, GCell{b.x, a.y}, b});
  } else {
    std::vector<GCell> cells;
    for (int state = goal_state; state != -1;
         state = prev[static_cast<std::size_t>(state)]) {
      const int cell = state / 2;
      const GCell gc{x0 + cell % w, y0 + cell / w};
      if (cells.empty() || !(cells.back() == gc)) cells.push_back(gc);
      if (gc == a) break;
    }
    std::reverse(cells.begin(), cells.end());
    p.corners = simplify_corners(cells);
  }
  p.cost = path_cost(p);
  p.overflows = path_overflows(p);
  return p;
}

void GlobalRouter::commit(const Path& p, NetRoute& out, int sign) {
  for (std::size_t i = 0; i + 1 < p.corners.size(); ++i) {
    const GCell& a = p.corners[i];
    const GCell& b = p.corners[i + 1];
    if (a == b) continue;
    const bool horiz = (a.y == b.y);
    const int layer = layer_for_run(p.pair, horiz);
    WireSeg w;
    w.layer = layer;
    w.a = GCell{std::min(a.x, b.x), std::min(a.y, b.y)};
    w.b = GCell{std::max(a.x, b.x), std::max(a.y, b.y)};
    if (sign > 0) out.wires.push_back(w);
    if (horiz) {
      for (int x = w.a.x; x < w.b.x; ++x) usage_.add(layer, x, w.a.y, sign);
    } else {
      for (int y = w.a.y; y < w.b.y; ++y) usage_.add(layer, w.a.x, y, sign);
    }
    // Bend via towards the next run (the two layers of a pair are adjacent,
    // so a single via at v_layer(pair) connects them).
    if (sign > 0 && i + 2 < p.corners.size() && p.corners[i + 1] != p.corners[i + 2]) {
      out.vias.push_back(Via{v_layer(p.pair), b});
    }
  }
}

void GlobalRouter::route_segment(GCell a, GCell b, NetRoute& out,
                                 std::mt19937_64& rng, bool allow_maze) {
  if (a == b) return;  // local connection; pin stacks handle it

  const int len = std::abs(a.x - b.x) + std::abs(a.y - b.y);
  const int pair = pair_for_length(len, rng);

  Path best = best_pattern(a, b, pair, rng);
  if (best.overflows && pair < 3) {
    Path up = best_pattern(a, b, pair + 1, rng);
    if (!up.overflows || up.cost < best.cost) best = std::move(up);
  }
  if (best.overflows && allow_maze) {
    Path mz = maze_route(a, b, best.pair);
    if (!mz.overflows || mz.cost < best.cost) best = std::move(mz);
  }

  commit(best, out, +1);

  // Record the metal layer at which the segment touches its two endpoint
  // GCells, so route_net can raise the pin via stacks accordingly.
  const auto run_layer_at = [&](const GCell& g) {
    // First or last non-degenerate run adjacent to g.
    if (best.corners.size() >= 2) {
      if (best.corners.front() == g) {
        const GCell& n = best.corners[1];
        return layer_for_run(best.pair, n.y == g.y);
      }
      if (best.corners.back() == g) {
        const GCell& n = best.corners[best.corners.size() - 2];
        return layer_for_run(best.pair, n.y == g.y);
      }
    }
    return 1;
  };
  out.pin_access.push_back(
      PinAccess{netlist::PinRef{}, a, run_layer_at(a)});  // placeholder pin;
  out.pin_access.push_back(PinAccess{netlist::PinRef{}, b, run_layer_at(b)});
  // The placeholder entries are consumed (max-reduced per GCell) and
  // replaced with real pin references by route_net below.
}

void GlobalRouter::route_net(netlist::NetId nid, NetRoute& out,
                             std::mt19937_64& rng, bool allow_maze) {
  const netlist::Net& net = nl_.net(nid);
  out.net = nid;
  out.wires.clear();
  out.vias.clear();
  out.pin_access.clear();

  // Collect distinct pin GCells.
  std::vector<GCell> points;
  std::vector<std::pair<netlist::PinRef, GCell>> pin_cells;
  for (const netlist::PinRef& p : net.pins) {
    const GCell g = grid_.gcell_of(nl_.pin_position(p));
    pin_cells.emplace_back(p, g);
    if (std::find(points.begin(), points.end(), g) == points.end()) {
      points.push_back(g);
    }
  }

  // Prim MST over distinct GCells (Manhattan metric).
  std::vector<std::pair<GCell, GCell>> edges;
  if (points.size() >= 2) {
    std::vector<bool> in_tree(points.size(), false);
    std::vector<int> best_to(points.size(), 0);
    std::vector<long> best_d(points.size(),
                             std::numeric_limits<long>::max());
    in_tree[0] = true;
    for (std::size_t i = 1; i < points.size(); ++i) {
      best_d[i] = std::abs(points[i].x - points[0].x) +
                  std::abs(points[i].y - points[0].y);
    }
    for (std::size_t added = 1; added < points.size(); ++added) {
      long bd = std::numeric_limits<long>::max();
      std::size_t bi = 0;
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (!in_tree[i] && best_d[i] < bd) {
          bd = best_d[i];
          bi = i;
        }
      }
      in_tree[bi] = true;
      edges.emplace_back(points[static_cast<std::size_t>(best_to[bi])],
                         points[bi]);
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (in_tree[i]) continue;
        const long d = std::abs(points[i].x - points[bi].x) +
                       std::abs(points[i].y - points[bi].y);
        if (d < best_d[i]) {
          best_d[i] = d;
          best_to[i] = static_cast<int>(bi);
        }
      }
    }
  }

  for (const auto& [a, b] : edges) route_segment(a, b, out, rng, allow_maze);

  // Fold the placeholder endpoint records into a per-GCell top layer.
  std::map<std::pair<int, int>, int> top;  // (x, y) -> highest metal layer
  for (const PinAccess& pa : out.pin_access) {
    auto& t = top[{pa.gcell.x, pa.gcell.y}];
    t = std::max(t, pa.top_layer);
  }
  out.pin_access.clear();

  // Emit pin via stacks and the real pin-access records.
  for (const auto& [pin, g] : pin_cells) {
    auto it = top.find({g.x, g.y});
    const int t = (it == top.end()) ? 1 : std::max(1, it->second);
    out.pin_access.push_back(PinAccess{pin, g, t});
  }
  for (const auto& [xy, t] : top) {
    for (int vl = 1; vl < t; ++vl) {
      out.vias.push_back(Via{vl, GCell{xy.first, xy.second}});
    }
  }

  // Deduplicate vias (shared bends / stacked pins).
  std::sort(out.vias.begin(), out.vias.end(), [](const Via& a, const Via& b) {
    return std::tie(a.via_layer, a.at.x, a.at.y) <
           std::tie(b.via_layer, b.at.x, b.at.y);
  });
  out.vias.erase(std::unique(out.vias.begin(), out.vias.end(),
                             [](const Via& a, const Via& b) {
                               return a.via_layer == b.via_layer &&
                                      a.at == b.at;
                             }),
                 out.vias.end());
}

void GlobalRouter::unroute_net(NetRoute& nr) {
  for (const WireSeg& w : nr.wires) {
    if (w.horizontal()) {
      for (int x = w.a.x; x < w.b.x; ++x) usage_.add(w.layer, x, w.a.y, -1);
    } else {
      for (int y = w.a.y; y < w.b.y; ++y) usage_.add(w.layer, w.a.x, y, -1);
    }
  }
  nr.wires.clear();
  nr.vias.clear();
  nr.pin_access.clear();
}

bool GlobalRouter::net_overflows(const NetRoute& nr) const {
  for (const WireSeg& w : nr.wires) {
    const int cap = usage_.capacity(w.layer);
    if (w.horizontal()) {
      for (int x = w.a.x; x < w.b.x; ++x) {
        if (usage_.usage(w.layer, x, w.a.y) > cap) return true;
      }
    } else {
      for (int y = w.a.y; y < w.b.y; ++y) {
        if (usage_.usage(w.layer, w.a.x, y) > cap) return true;
      }
    }
  }
  return false;
}

RouteDB GlobalRouter::run() {
  OBS_SPAN("route.run");
  std::mt19937_64 rng(opt_.seed);
  RouteDB db;
  db.grid = grid_;
  db.routes.assign(static_cast<std::size_t>(nl_.num_nets()), NetRoute{});

  // Route short nets first: they have the fewest alternatives.
  std::vector<netlist::NetId> order(static_cast<std::size_t>(nl_.num_nets()));
  for (netlist::NetId n = 0; n < nl_.num_nets(); ++n) {
    order[static_cast<std::size_t>(n)] = n;
  }
  std::vector<long> hp(order.size());
  for (netlist::NetId n = 0; n < nl_.num_nets(); ++n) {
    std::vector<geom::Point> pts;
    for (const netlist::PinRef& p : nl_.net(n).pins) {
      pts.push_back(nl_.pin_position(p));
    }
    hp[static_cast<std::size_t>(n)] = geom::hpwl(pts);
  }
  // Net-id tie-break makes plain std::sort reproduce the stable_sort
  // order (`order` starts ascending) without the libstdc++ temporary
  // buffer that ASan flags as an alloc-dealloc mismatch (see
  // place::legalize for the same substitution).
  std::sort(order.begin(), order.end(),
            [&](netlist::NetId a, netlist::NetId b) {
              const long ha = hp[static_cast<std::size_t>(a)];
              const long hb = hp[static_cast<std::size_t>(b)];
              if (ha != hb) return ha < hb;
              return a < b;
            });

  {
    OBS_SPAN("route.initial_pass");
    for (netlist::NetId n : order) {
      route_net(n, db.routes[static_cast<std::size_t>(n)], rng,
                /*allow_maze=*/false);
    }
  }
  OBS_COUNT("route.nets_routed", nl_.num_nets());

  // Rip-up and reroute overflowed nets with the maze fallback enabled.
  // The loop is bounded twice over: by the ripup_iters cap and by a
  // watchdog that detects non-convergence — `bad.size()` not dropping for
  // watchdog_patience consecutive iterations means the loop is ripping
  // the same nets up and putting them back (oscillation), and further
  // iterations only burn time. Both exits leave a *valid* routing (edge
  // overflow is a quality metric, not a correctness one), so the
  // diagnostics are repairable kWarnings, not errors.
  std::size_t best_bad = std::numeric_limits<std::size_t>::max();
  int stale_iters = 0;
  bool rrr_cancelled = false;
  for (int iter = 0; iter < opt_.ripup_iters; ++iter) {
    if (opt_.cancel && opt_.cancel->cancelled()) {
      rrr_cancelled = true;
      if (opt_.sink) {
        opt_.sink->note("route.rrr_cancelled", 0,
                        "rip-up-and-reroute stopped by cancellation after " +
                            std::to_string(iter) + " iteration(s)");
      }
      break;
    }
    OBS_SPAN_ARG("route.rrr_iter", iter);
    std::vector<netlist::NetId> bad;
    for (netlist::NetId n : order) {
      if (net_overflows(db.routes[static_cast<std::size_t>(n)])) {
        bad.push_back(n);
      }
    }
    if (bad.empty()) {
      stats_.rrr_converged = true;
      break;
    }
    if (bad.size() < best_bad) {
      best_bad = bad.size();
      stale_iters = 0;
    } else if (opt_.watchdog_patience > 0 &&
               ++stale_iters >= opt_.watchdog_patience) {
      stats_.watchdog_tripped = true;
      OBS_COUNT("route.rrr_watchdog_trips", 1);
      if (opt_.sink) {
        opt_.sink->warning(
            "route.rrr_watchdog", 0,
            "rip-up-and-reroute not converging: " + std::to_string(bad.size()) +
                " overflowed net(s) after " + std::to_string(iter) +
                " iteration(s) (best " + std::to_string(best_bad) +
                "); keeping the current routing");
      }
      break;
    }
    ++stats_.rrr_iterations;
    OBS_COUNT("route.rrr_iterations", 1);
    OBS_COUNT("route.nets_rerouted", bad.size());
    for (netlist::NetId n : bad) {
      unroute_net(db.routes[static_cast<std::size_t>(n)]);
      route_net(n, db.routes[static_cast<std::size_t>(n)], rng,
                opt_.enable_maze);
    }
  }
  if (!stats_.rrr_converged && !stats_.watchdog_tripped && !rrr_cancelled) {
    // The loop exhausted ripup_iters: re-check after the final reroute
    // round so the flag and diagnostic describe the state the caller
    // actually receives.
    stats_.rrr_converged = true;
    for (netlist::NetId n : order) {
      if (net_overflows(db.routes[static_cast<std::size_t>(n)])) {
        stats_.rrr_converged = false;
        break;
      }
    }
    if (!stats_.rrr_converged && opt_.sink) {
      opt_.sink->warning("route.rrr_nonconvergence", 0,
                         "overflowed nets remain after the ripup_iters cap (" +
                             std::to_string(opt_.ripup_iters) +
                             "); keeping the current routing");
    }
  }

  // Final statistics (maze count accumulated during routing).
  stats_.total_wire_gcells = 0;
  stats_.total_vias = 0;
  stats_.overflowed_edges = 0;
  for (const NetRoute& nr : db.routes) {
    stats_.total_wire_gcells += nr.total_wire_gcells();
    stats_.total_vias += static_cast<long>(nr.vias.size());
  }
  for (int l = 1; l <= tech_.num_metal_layers(); ++l) {
    const int cap = usage_.capacity(l);
    for (int y = 0; y < usage_.ny(); ++y) {
      for (int x = 0; x < usage_.nx(); ++x) {
        if (usage_.usage(l, x, y) > cap) ++stats_.overflowed_edges;
      }
    }
  }
  OBS_COUNT("route.maze_invocations", stats_.maze_invocations);
  OBS_COUNT("route.wire_gcells", stats_.total_wire_gcells);
  OBS_COUNT("route.vias", stats_.total_vias);
  OBS_COUNT("route.overflowed_edges", stats_.overflowed_edges);
  db.usage = usage_;
  return db;
}

}  // namespace repro::route

// Routing database: the geometric result of global routing.
//
// Routes are expressed on the GCell grid. A wire segment is a maximal
// straight run of GCells on one metal layer (in that layer's preferred
// direction); a via connects two adjacent metal layers within one GCell.
// This is exactly the granularity the split-manufacturing cut needs: a
// split at via layer L keeps all wires on metals <= L and all vias on via
// layers < L, and turns each via *at* layer L into a v-pin.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/geom.hpp"
#include "netlist/netlist.hpp"
#include "tech/tech.hpp"

namespace repro::route {

/// GCell coordinates on the routing grid.
struct GCell {
  int x = 0;
  int y = 0;
  friend bool operator==(const GCell&, const GCell&) = default;
};

/// A straight wire run on metal layer `layer` from GCell `a` to `b`
/// (inclusive). `a` and `b` share a row or column; a <= b componentwise.
struct WireSeg {
  int layer = 0;  ///< metal layer index, 1-based
  GCell a;
  GCell b;

  bool horizontal() const { return a.y == b.y; }
  /// Number of GCell-to-GCell edges covered (0 for a degenerate run).
  int length() const { return (b.x - a.x) + (b.y - a.y); }
};

/// A via on via layer `via_layer` (connecting metals via_layer and
/// via_layer+1) in GCell `at`.
struct Via {
  int via_layer = 0;  ///< 1-based
  GCell at;
};

/// Mapping from a net pin to its GCell (where its via stack rises).
struct PinAccess {
  netlist::PinRef pin;
  GCell gcell;
  int top_layer = 1;  ///< metal layer the stack reaches (>= 1)
};

/// Complete route of one net.
struct NetRoute {
  netlist::NetId net = netlist::kInvalidNet;
  std::vector<WireSeg> wires;
  std::vector<Via> vias;
  std::vector<PinAccess> pin_access;

  bool routed() const { return !pin_access.empty(); }
  /// Highest metal layer used by any wire or via stack of this net.
  int highest_layer() const;
  /// Total wire length in GCell edges.
  long total_wire_gcells() const;
};

/// Geometry of the GCell grid over a die.
class GridGeometry {
 public:
  GridGeometry() = default;
  GridGeometry(geom::Rect die, geom::Dbu gcell_size);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  const geom::Rect& die() const { return die_; }
  geom::Dbu gcell_size() const { return gcell_size_; }

  GCell gcell_of(const geom::Point& p) const;
  /// DBU center of a GCell.
  geom::Point center_of(const GCell& g) const;
  /// Manhattan distance between GCell centers, in DBU.
  geom::Dbu manhattan(const GCell& a, const GCell& b) const {
    return (std::abs(a.x - b.x) + std::abs(a.y - b.y)) * gcell_size_;
  }

 private:
  geom::Rect die_;
  geom::Dbu gcell_size_ = 1;
  int nx_ = 0;
  int ny_ = 0;
};

/// Per-layer edge usage / capacity bookkeeping.
class UsageMap {
 public:
  UsageMap() = default;
  UsageMap(const tech::Technology& tech, int nx, int ny);

  /// Edge id convention: on a horizontal layer, (x, y) is the edge from
  /// GCell (x,y) to (x+1,y); on a vertical layer, to (x,y+1).
  int usage(int layer, int x, int y) const {
    return layers_[static_cast<std::size_t>(layer - 1)].at(x, y);
  }
  int capacity(int layer) const {
    return caps_[static_cast<std::size_t>(layer - 1)];
  }
  void add(int layer, int x, int y, int delta) {
    layers_[static_cast<std::size_t>(layer - 1)].at(x, y) += delta;
  }
  /// Overflow (usage above capacity) summed over all edges of `layer`.
  long overflow(int layer) const;
  /// Total usage summed over all edges of `layer`.
  long total_usage(int layer) const;

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }

 private:
  int nx_ = 0;
  int ny_ = 0;
  std::vector<geom::Grid2D<int>> layers_;  // [layer-1]
  std::vector<int> caps_;
};

/// The whole-design routing result.
struct RouteDB {
  GridGeometry grid;
  std::vector<NetRoute> routes;  ///< indexed by NetId
  UsageMap usage;

  const NetRoute& route_of(netlist::NetId n) const {
    return routes[static_cast<std::size_t>(n)];
  }
};

}  // namespace repro::route

// Congestion-aware global router.
//
// The router reproduces the layout properties the attack paper depends on:
//   * alternating per-layer preferred directions (wires only run in their
//     layer's direction),
//   * length-based layer assignment: short nets stay on the low 1x layers,
//     long nets climb to the wide top layers, so congestion concentrates
//     below and v-pin counts grow quickly as the split layer moves down,
//   * congestion awareness: L/Z pattern routing with cost-based layer-pair
//     promotion and an A* maze fallback plus rip-up-and-reroute, so that in
//     congested designs matching v-pins drift apart (the paper's argument
//     for why congested split layers are harder to attack).
#pragma once

#include <array>
#include <cstdint>
#include <random>

#include "common/cancel.hpp"
#include "common/diagnostics.hpp"
#include "route/route_db.hpp"

namespace repro::route {

struct RouterOptions {
  /// Length thresholds separating the four layer pairs (M2/M3, M4/M5,
  /// M6/M7, M8/M9), as fractions of the routing-grid span max(nx, ny).
  /// Relative thresholds keep the per-layer net populations stable when a
  /// design is scaled, which mirrors how reach-based layer assignment
  /// behaves in production routers.
  std::array<double, 3> pair_threshold_fracs{0.13, 0.28, 0.50};
  /// Probability of promoting a segment one layer pair above its
  /// length-based assignment (models routers spilling upward under
  /// pressure; also the knob that tunes per-design v-pin populations).
  double promote_prob = 0.05;
  /// Additional cost per unit of overflow on an edge.
  int overflow_penalty = 8;
  /// Number of random Z-shape candidates tried per segment.
  int num_z_trials = 4;
  /// Rip-up-and-reroute iterations after the initial pass.
  int ripup_iters = 2;
  /// Enable the A* maze fallback for overflowed pattern routes.
  bool enable_maze = true;
  /// GCell margin around a segment's bounding box available to the maze.
  int maze_margin = 8;
  /// Obfuscated-routing mode (paper SSIII-I / [14]-style routing
  /// perturbation): with this probability a segment takes a *random*
  /// non-overflowing pattern candidate instead of the cheapest one,
  /// scrambling bend (and therefore v-pin) locations at the cost of extra
  /// wirelength. 0 = normal routing.
  double random_route_prob = 0.0;
  /// Wire-lifting defense ([8]-style): with probability lift_prob a
  /// segment is raised to at least layer pair lift_to_pair (0..3),
  /// pushing connections above the split layer and multiplying the
  /// v-pins the attacker must untangle. lift_to_pair = -1 disables.
  int lift_to_pair = -1;
  double lift_prob = 0.0;
  /// RRR watchdog: abandon rip-up-and-reroute after this many consecutive
  /// iterations without a drop in the overflowed-net count (the loop is
  /// oscillating — ripping the same nets up and putting them back — or
  /// stuck). The routing stays usable (overflows are a quality issue,
  /// not a correctness one), so the watchdog reports a repairable
  /// kWarning diagnostic and keeps the best state reached. <= 0 disables.
  int watchdog_patience = 3;
  /// Cooperative cancellation checked between RRR iterations; a
  /// cancelled run keeps the (valid) routing state reached so far.
  const common::CancelToken* cancel = nullptr;
  /// Destination for watchdog / non-convergence diagnostics
  /// ("route.rrr_*", kWarning). Optional.
  common::DiagnosticSink* sink = nullptr;
  std::uint64_t seed = 1;
};

/// Summary statistics of a routing run.
struct RouteStats {
  long total_wire_gcells = 0;
  long total_vias = 0;
  long overflowed_edges = 0;   ///< edges with usage > capacity after RRR
  int maze_invocations = 0;
  int rrr_iterations = 0;      ///< RRR iterations actually executed
  bool rrr_converged = false;  ///< no overflowed nets remained
  bool watchdog_tripped = false;  ///< RRR abandoned as non-converging
};

class GlobalRouter {
 public:
  GlobalRouter(const netlist::Netlist& nl, const tech::Technology& tech,
               RouterOptions opt = {});

  /// Routes every net; returns the complete routing database.
  RouteDB run();

  const RouteStats& stats() const { return stats_; }

 private:
  struct Path {
    std::vector<GCell> corners;  ///< >= 2 points; consecutive points differ
                                 ///< in exactly one coordinate
    int pair = 0;                ///< layer pair index (0..3)
    long cost = 0;
    bool overflows = false;
  };

  int pair_for_length(int len, std::mt19937_64& rng) const;
  std::array<int, 3> thresholds_{};  ///< resolved from pair_threshold_fracs
  int h_layer(int pair) const { return 3 + 2 * pair; }  // M3,M5,M7,M9
  int v_layer(int pair) const { return 2 + 2 * pair; }  // M2,M4,M6,M8
  int layer_for_run(int pair, bool horizontal) const {
    return horizontal ? h_layer(pair) : v_layer(pair);
  }

  long run_cost(int layer, GCell a, GCell b) const;
  long path_cost(const Path& p) const;
  bool path_overflows(const Path& p) const;

  Path best_pattern(GCell a, GCell b, int pair, std::mt19937_64& rng) const;
  Path maze_route(GCell a, GCell b, int pair);

  void commit(const Path& p, NetRoute& out, int sign);
  void route_segment(GCell a, GCell b, NetRoute& out, std::mt19937_64& rng,
                     bool allow_maze);
  void route_net(netlist::NetId nid, NetRoute& out, std::mt19937_64& rng,
                 bool allow_maze);
  void unroute_net(NetRoute& nr);
  bool net_overflows(const NetRoute& nr) const;

  const netlist::Netlist& nl_;
  const tech::Technology& tech_;
  RouterOptions opt_;
  GridGeometry grid_;
  UsageMap usage_;
  RouteStats stats_;
};

}  // namespace repro::route

#include "route/route_db.hpp"

#include <algorithm>
#include <stdexcept>

namespace repro::route {

int NetRoute::highest_layer() const {
  int hi = 0;
  for (const WireSeg& w : wires) hi = std::max(hi, w.layer);
  for (const Via& v : vias) hi = std::max(hi, v.via_layer + 1);
  for (const PinAccess& pa : pin_access) hi = std::max(hi, pa.top_layer);
  return hi;
}

long NetRoute::total_wire_gcells() const {
  long total = 0;
  for (const WireSeg& w : wires) total += w.length();
  return total;
}

GridGeometry::GridGeometry(geom::Rect die, geom::Dbu gcell_size)
    : die_(die), gcell_size_(gcell_size) {
  if (gcell_size <= 0) throw std::invalid_argument("gcell_size must be > 0");
  nx_ = std::max<int>(1, static_cast<int>(die.width() / gcell_size));
  ny_ = std::max<int>(1, static_cast<int>(die.height() / gcell_size));
}

GCell GridGeometry::gcell_of(const geom::Point& p) const {
  const int x = geom::clamp(
      static_cast<int>((p.x - die_.lo.x) / gcell_size_), 0, nx_ - 1);
  const int y = geom::clamp(
      static_cast<int>((p.y - die_.lo.y) / gcell_size_), 0, ny_ - 1);
  return {x, y};
}

geom::Point GridGeometry::center_of(const GCell& g) const {
  return {die_.lo.x + g.x * gcell_size_ + gcell_size_ / 2,
          die_.lo.y + g.y * gcell_size_ + gcell_size_ / 2};
}

UsageMap::UsageMap(const tech::Technology& tech, int nx, int ny)
    : nx_(nx), ny_(ny) {
  for (int l = 1; l <= tech.num_metal_layers(); ++l) {
    layers_.emplace_back(nx, ny, 0);
    caps_.push_back(tech.metal(l).capacity);
  }
}

long UsageMap::overflow(int layer) const {
  const auto& g = layers_[static_cast<std::size_t>(layer - 1)];
  const int cap = caps_[static_cast<std::size_t>(layer - 1)];
  long total = 0;
  for (int u : g) total += std::max(0, u - cap);
  return total;
}

long UsageMap::total_usage(int layer) const {
  const auto& g = layers_[static_cast<std::size_t>(layer - 1)];
  long total = 0;
  for (int u : g) total += u;
  return total;
}

}  // namespace repro::route

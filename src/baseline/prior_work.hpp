// Prior-work baseline in the spirit of Magana et al. [5].
//
// [5] models, with simple linear regression over per-v-pin layout features
// (wirelength, cell areas, placement/routing congestion), the distance at
// which the matching v-pin is expected, and declares *all* v-pins inside
// the predicted neighbourhood as the List of Candidates. Its proximity
// attack picks the nearest v-pin. Scaling the predicted radius by a factor
// lambda sweeps the LoC-size/accuracy trade-off, which is what Table I and
// Fig. 9 compare against.
#pragma once

#include <span>
#include <vector>

#include "ml/linear.hpp"
#include "splitmfg/split.hpp"

namespace repro::baseline {

struct BaselineEval {
  std::vector<double> lambdas;
  std::vector<double> mean_loc;      ///< aligned with lambdas
  std::vector<double> accuracy;      ///< aligned with lambdas
  double pa_success = 0;             ///< nearest-in-neighbourhood PA, lambda=1

  /// Accuracy at (at most) the given mean LoC, by interpolation over the
  /// lambda sweep.
  double accuracy_for_mean_loc(double loc) const;
  /// Mean LoC needed for the given accuracy; -1 if unreachable.
  double mean_loc_for_accuracy(double acc) const;
};

class PriorWorkBaseline {
 public:
  /// Fits the neighbourhood-radius regression on the training challenges.
  static PriorWorkBaseline train(
      std::span<const splitmfg::SplitChallenge* const> training);

  /// Predicted neighbourhood radius for one v-pin (>= 0).
  double predict_radius(const splitmfg::Vpin& v) const;

  /// Evaluates LoC size / accuracy / PA on a test challenge for a sweep of
  /// radius scale factors.
  BaselineEval evaluate(const splitmfg::SplitChallenge& test,
                        std::span<const double> lambdas) const;

 private:
  ml::LinearRegression reg_;
};

}  // namespace repro::baseline

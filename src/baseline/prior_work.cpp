#include "baseline/prior_work.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace repro::baseline {

namespace {

std::vector<double> vpin_regressors(const splitmfg::Vpin& v) {
  return {v.wirelength, v.in_area, v.out_area, v.pc, v.rc};
}

double manhattan_vpin(const splitmfg::Vpin& a, const splitmfg::Vpin& b) {
  return std::abs(static_cast<double>(a.pos.x - b.pos.x)) +
         std::abs(static_cast<double>(a.pos.y - b.pos.y));
}

}  // namespace

double BaselineEval::accuracy_for_mean_loc(double loc) const {
  double best = 0.0;
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    if (mean_loc[i] <= loc) best = std::max(best, accuracy[i]);
  }
  return best;
}

double BaselineEval::mean_loc_for_accuracy(double acc) const {
  double best = -1.0;
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    if (accuracy[i] >= acc && (best < 0 || mean_loc[i] < best)) {
      best = mean_loc[i];
    }
  }
  return best;
}

PriorWorkBaseline PriorWorkBaseline::train(
    std::span<const splitmfg::SplitChallenge* const> training) {
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (const splitmfg::SplitChallenge* ch : training) {
    for (const splitmfg::Vpin& v : ch->vpins) {
      if (v.matches.empty()) continue;
      double dmin = std::numeric_limits<double>::max();
      for (splitmfg::VpinId m : v.matches) {
        dmin = std::min(dmin, manhattan_vpin(v, ch->vpin(m)));
      }
      xs.push_back(vpin_regressors(v));
      ys.push_back(dmin);
    }
  }
  PriorWorkBaseline b;
  b.reg_ = ml::LinearRegression::fit(xs, ys, 1e-6);
  return b;
}

double PriorWorkBaseline::predict_radius(const splitmfg::Vpin& v) const {
  return std::max(0.0, reg_.predict(vpin_regressors(v)));
}

BaselineEval PriorWorkBaseline::evaluate(
    const splitmfg::SplitChallenge& test,
    std::span<const double> lambdas) const {
  BaselineEval ev;
  ev.lambdas.assign(lambdas.begin(), lambdas.end());
  ev.mean_loc.assign(lambdas.size(), 0.0);
  ev.accuracy.assign(lambdas.size(), 0.0);

  const int n = test.num_vpins();
  int with_match = 0, pa_good = 0;
  for (int i = 0; i < n; ++i) {
    const splitmfg::Vpin& v = test.vpin(i);
    if (v.matches.empty()) continue;
    ++with_match;
    const double r = predict_radius(v);
    double d_true = std::numeric_limits<double>::max();
    for (splitmfg::VpinId m : v.matches) {
      d_true = std::min(d_true, manhattan_vpin(v, test.vpin(m)));
    }
    // Count neighbours and find the nearest one for PA (lambda = 1).
    double d_nearest = std::numeric_limits<double>::max();
    splitmfg::VpinId nearest = splitmfg::kInvalidVpin;
    std::vector<double> dists;
    dists.reserve(static_cast<std::size_t>(n) / 4);
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      const double d = manhattan_vpin(v, test.vpin(j));
      const double max_r = lambdas.empty()
                               ? 0.0
                               : r * *std::max_element(lambdas.begin(),
                                                       lambdas.end());
      if (d <= max_r) dists.push_back(d);
      if (d <= r && d < d_nearest) {
        d_nearest = d;
        nearest = static_cast<splitmfg::VpinId>(j);
      }
    }
    std::sort(dists.begin(), dists.end());
    for (std::size_t li = 0; li < ev.lambdas.size(); ++li) {
      const double rr = r * ev.lambdas[li];
      const auto count = std::upper_bound(dists.begin(), dists.end(), rr) -
                         dists.begin();
      ev.mean_loc[li] += static_cast<double>(count);
      if (d_true <= rr) ev.accuracy[li] += 1.0;
    }
    if (nearest != splitmfg::kInvalidVpin && test.is_match(i, nearest)) {
      ++pa_good;
    }
  }
  if (with_match > 0) {
    for (std::size_t li = 0; li < ev.lambdas.size(); ++li) {
      ev.mean_loc[li] /= with_match;
      ev.accuracy[li] /= with_match;
    }
    ev.pa_success = static_cast<double>(pa_good) / with_match;
  }
  return ev;
}

}  // namespace repro::baseline

#include "lefdef/lefdef.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace repro::lefdef {

namespace {

/// Line-oriented tokenizer: reads one line at a time, splits on whitespace.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Reads the next non-empty, non-comment line into tokens. Returns false
  /// at EOF.
  bool next(std::vector<std::string>& tokens) {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_no_;
      tokens.clear();
      std::istringstream ss(line);
      std::string tok;
      while (ss >> tok) tokens.push_back(tok);
      if (tokens.empty() || tokens[0][0] == '#') continue;
      return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("lefdef parse error at line " +
                             std::to_string(line_no_) + ": " + msg);
  }

  long to_long(const std::string& s) const {
    try {
      return std::stol(s);
    } catch (const std::exception&) {
      fail("expected integer, got '" + s + "'");
    }
  }

 private:
  std::istream& is_;
  int line_no_ = 0;
};

void expect(const LineReader& lr, bool cond, const std::string& msg) {
  if (!cond) lr.fail(msg);
}

}  // namespace

void write_lef(std::ostream& os, const tech::Technology& tech,
               const netlist::Library& lib) {
  os << "VERSION 5.8 ;\n";
  for (int i = 1; i <= tech.num_metal_layers(); ++i) {
    const tech::MetalLayer& m = tech.metal(i);
    os << "LAYER " << m.name << " ROUTING " << to_string(m.preferred) << ' '
       << m.width_mult << ' ' << m.capacity << " ;\n";
  }
  for (int i = 1; i <= tech.num_via_layers(); ++i) {
    os << "LAYER " << tech.via(i).name << " CUT ;\n";
  }
  os << "GCELLSIZE " << tech.gcell_size() << " ;\n";
  for (int c = 0; c < lib.num_cells(); ++c) {
    const netlist::LibCell& lc = lib.cell(c);
    os << "MACRO " << lc.name << '\n';
    os << "  CLASS " << (lc.is_macro ? "BLOCK" : "CORE") << " ;\n";
    os << "  SIZE " << lc.width << " BY " << lc.height << " ;\n";
    os << "  DRIVE " << lc.drive_strength << " ;\n";
    for (const netlist::LibPin& p : lc.pins) {
      os << "  PIN " << p.name << ' '
         << (p.dir == netlist::PinDir::kInput ? "INPUT" : "OUTPUT") << ' '
         << p.offset.x << ' ' << p.offset.y << " ;\n";
    }
    os << "END " << lc.name << '\n';
  }
  os << "END LIBRARY\n";
}

LefContents read_lef(std::istream& is) {
  LineReader lr(is);
  std::vector<std::string> t;

  std::vector<tech::MetalLayer> metals;
  std::vector<tech::ViaLayer> vias;
  geom::Dbu gcell_size = 0;
  netlist::Library lib;

  while (lr.next(t)) {
    if (t[0] == "VERSION") continue;
    if (t[0] == "LAYER") {
      expect(lr, t.size() >= 3, "short LAYER line");
      if (t[2] == "ROUTING") {
        expect(lr, t.size() >= 6, "short ROUTING layer line");
        tech::MetalLayer m;
        m.name = t[1];
        m.index = static_cast<int>(metals.size()) + 1;
        m.preferred = tech::direction_from_string(t[3]);
        m.width_mult = static_cast<int>(lr.to_long(t[4]));
        m.capacity = static_cast<int>(lr.to_long(t[5]));
        metals.push_back(m);
      } else if (t[2] == "CUT") {
        vias.push_back(
            tech::ViaLayer{t[1], static_cast<int>(vias.size()) + 1});
      } else {
        lr.fail("unknown layer type " + t[2]);
      }
      continue;
    }
    if (t[0] == "GCELLSIZE") {
      expect(lr, t.size() >= 2, "short GCELLSIZE line");
      gcell_size = lr.to_long(t[1]);
      continue;
    }
    if (t[0] == "MACRO") {
      expect(lr, t.size() >= 2, "MACRO without name");
      netlist::LibCell lc;
      lc.name = t[1];
      while (lr.next(t)) {
        if (t[0] == "END") break;
        if (t[0] == "CLASS") {
          expect(lr, t.size() >= 2, "short CLASS line");
          lc.is_macro = (t[1] == "BLOCK");
        } else if (t[0] == "SIZE") {
          expect(lr, t.size() >= 4 && t[2] == "BY", "malformed SIZE line");
          lc.width = lr.to_long(t[1]);
          lc.height = lr.to_long(t[3]);
        } else if (t[0] == "DRIVE") {
          expect(lr, t.size() >= 2, "short DRIVE line");
          lc.drive_strength = static_cast<int>(lr.to_long(t[1]));
        } else if (t[0] == "PIN") {
          expect(lr, t.size() >= 5, "short PIN line");
          netlist::LibPin p;
          p.name = t[1];
          if (t[2] == "INPUT") {
            p.dir = netlist::PinDir::kInput;
          } else if (t[2] == "OUTPUT") {
            p.dir = netlist::PinDir::kOutput;
          } else {
            lr.fail("bad pin direction " + t[2]);
          }
          p.offset = {lr.to_long(t[3]), lr.to_long(t[4])};
          lc.pins.push_back(std::move(p));
        } else {
          lr.fail("unknown MACRO body keyword " + t[0]);
        }
      }
      lib.add_cell(std::move(lc));
      continue;
    }
    if (t[0] == "END") break;  // END LIBRARY
    lr.fail("unknown LEF keyword " + t[0]);
  }

  if (metals.empty()) throw std::runtime_error("LEF contained no layers");
  if (gcell_size <= 0) throw std::runtime_error("LEF missing GCELLSIZE");
  return LefContents{
      tech::Technology(std::move(metals), std::move(vias), gcell_size),
      std::move(lib)};
}

void write_def(std::ostream& os, const netlist::Netlist& nl,
               const route::RouteDB& db, std::optional<int> split_layer) {
  os << "DESIGN " << (nl.name().empty() ? "anon" : nl.name()) << " ;\n";
  const geom::Rect die = db.grid.die();
  os << "DIEAREA ( " << die.lo.x << ' ' << die.lo.y << " ) ( " << die.hi.x
     << ' ' << die.hi.y << " ) ;\n";
  os << "COMPONENTS " << nl.num_cells() << " ;\n";
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    const netlist::CellInst& inst = nl.cell(c);
    os << "- " << inst.name << ' ' << nl.library().cell(inst.lib_cell).name
       << " ( " << inst.origin.x << ' ' << inst.origin.y << " ) ;\n";
  }
  os << "END COMPONENTS\n";
  os << "NETS " << nl.num_nets() << " ;\n";
  const int max_metal = split_layer ? *split_layer
                                    : std::numeric_limits<int>::max();
  const int max_via = split_layer ? *split_layer
                                  : std::numeric_limits<int>::max();
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(n);
    os << "- " << net.name;
    for (const netlist::PinRef& p : net.pins) {
      const netlist::CellInst& inst = nl.cell(p.cell);
      const netlist::LibCell& lc = nl.library().cell(inst.lib_cell);
      os << " ( " << inst.name << ' '
         << lc.pins[static_cast<std::size_t>(p.lib_pin)].name << " )";
    }
    os << '\n';
    const route::NetRoute& nr = db.route_of(n);
    for (const route::WireSeg& w : nr.wires) {
      if (w.layer > max_metal) continue;
      os << "  WIRE M" << w.layer << " ( " << w.a.x << ' ' << w.a.y
         << " ) ( " << w.b.x << ' ' << w.b.y << " )\n";
    }
    for (const route::Via& v : nr.vias) {
      if (v.via_layer > max_via) continue;
      os << "  VIA V" << v.via_layer << " ( " << v.at.x << ' ' << v.at.y
         << " )\n";
    }
    os << "  ;\n";
  }
  os << "END NETS\n";
  os << "END DESIGN\n";
}

DefDesign read_def(std::istream& is,
                   std::shared_ptr<const netlist::Library> lib) {
  LineReader lr(is);
  std::vector<std::string> t;

  std::string design_name = "anon";
  geom::Rect die;
  std::vector<route::NetRoute> routes;

  // First pass header.
  expect(lr, lr.next(t) && t[0] == "DESIGN" && t.size() >= 2,
         "expected DESIGN");
  design_name = t[1];
  netlist::Netlist nl(lib, design_name);

  // DIEAREA ( x0 y0 ) ( x1 y1 ) ;
  expect(lr, lr.next(t) && t[0] == "DIEAREA" && t.size() >= 10,
         "expected DIEAREA");
  die = geom::Rect(lr.to_long(t[2]), lr.to_long(t[3]), lr.to_long(t[6]),
                   lr.to_long(t[7]));

  expect(lr, lr.next(t) && t[0] == "COMPONENTS", "expected COMPONENTS");
  std::vector<std::pair<std::string, netlist::CellId>> by_name;
  while (lr.next(t)) {
    if (t[0] == "END") break;
    expect(lr, t[0] == "-" && t.size() >= 7, "malformed component line");
    const auto lc = lib->find(t[2]);
    expect(lr, lc.has_value(), "unknown macro " + t[2]);
    const netlist::CellId id =
        nl.add_cell(t[1], *lc, {lr.to_long(t[4]), lr.to_long(t[5])});
    by_name.emplace_back(t[1], id);
  }
  std::sort(by_name.begin(), by_name.end());
  const auto find_cell = [&](const std::string& name) -> netlist::CellId {
    auto it = std::lower_bound(
        by_name.begin(), by_name.end(), name,
        [](const auto& a, const std::string& b) { return a.first < b; });
    if (it == by_name.end() || it->first != name) return netlist::kInvalidCell;
    return it->second;
  };

  expect(lr, lr.next(t) && t[0] == "NETS", "expected NETS");
  while (lr.next(t)) {
    if (t[0] == "END") break;
    expect(lr, t[0] == "-" && t.size() >= 2, "malformed net line");
    netlist::Net net;
    net.name = t[1];
    for (std::size_t i = 2; i + 3 < t.size();) {
      if (t[i] != "(") break;
      expect(lr, t[i + 3] == ")", "malformed net pin");
      const netlist::CellId cell = find_cell(t[i + 1]);
      expect(lr, cell != netlist::kInvalidCell, "unknown component " + t[i + 1]);
      const netlist::LibCell& lc =
          lib->cell(nl.cell(cell).lib_cell);
      int pin_idx = -1;
      for (int p = 0; p < static_cast<int>(lc.pins.size()); ++p) {
        if (lc.pins[static_cast<std::size_t>(p)].name == t[i + 2]) {
          pin_idx = p;
          break;
        }
      }
      expect(lr, pin_idx >= 0, "unknown pin " + t[i + 2]);
      if (lc.pins[static_cast<std::size_t>(pin_idx)].dir ==
          netlist::PinDir::kOutput) {
        net.driver = static_cast<int>(net.pins.size());
      }
      net.pins.push_back(netlist::PinRef{cell, pin_idx});
      i += 4;
    }
    // Route body lines until ';'.
    route::NetRoute nr;
    while (lr.next(t)) {
      if (t[0] == ";") break;
      if (t[0] == "WIRE") {
        expect(lr, t.size() >= 10, "malformed WIRE line");
        route::WireSeg w;
        expect(lr, t[1].size() >= 2 && t[1][0] == 'M', "bad wire layer");
        w.layer = static_cast<int>(lr.to_long(t[1].substr(1)));
        w.a = {static_cast<int>(lr.to_long(t[3])),
               static_cast<int>(lr.to_long(t[4]))};
        w.b = {static_cast<int>(lr.to_long(t[7])),
               static_cast<int>(lr.to_long(t[8]))};
        nr.wires.push_back(w);
      } else if (t[0] == "VIA") {
        expect(lr, t.size() >= 6, "malformed VIA line");
        expect(lr, t[1].size() >= 2 && t[1][0] == 'V', "bad via layer");
        route::Via v;
        v.via_layer = static_cast<int>(lr.to_long(t[1].substr(1)));
        v.at = {static_cast<int>(lr.to_long(t[3])),
                static_cast<int>(lr.to_long(t[4]))};
        nr.vias.push_back(v);
      } else {
        lr.fail("unknown net body keyword " + t[0]);
      }
    }
    const netlist::NetId nid = nl.add_net(std::move(net));
    nr.net = nid;
    routes.push_back(std::move(nr));
  }

  DefDesign out{std::move(nl), std::move(routes), die, 0};
  return out;
}

route::RouteDB to_route_db(const DefDesign& def, geom::Dbu gcell_size) {
  route::RouteDB db;
  db.grid = route::GridGeometry(def.die, gcell_size);
  db.routes = def.routes;
  for (netlist::NetId n = 0; n < def.netlist.num_nets(); ++n) {
    auto& nr = db.routes[static_cast<std::size_t>(n)];
    nr.net = n;
    nr.pin_access.clear();
    for (const netlist::PinRef& p : def.netlist.net(n).pins) {
      route::PinAccess pa;
      pa.pin = p;
      pa.gcell = db.grid.gcell_of(def.netlist.pin_position(p));
      pa.top_layer = 1;
      nr.pin_access.push_back(pa);
    }
  }
  return db;
}

}  // namespace repro::lefdef

#include "lefdef/lefdef.hpp"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "common/obs.hpp"

namespace repro::lefdef {

namespace {

using common::DiagnosticSink;
using common::Severity;
using common::Status;
using common::StatusOr;

/// Thrown by token helpers to abandon the *current line*; the enclosing
/// section loop records the diagnostic and resumes with the next line.
struct LineFail {
  std::string code;
  std::string message;
};

/// Thrown when the rest of the file cannot be interpreted (structural
/// damage or error-cap overflow); caught at the parser entry point.
struct ParseAbort {};

/// Coordinates larger than this are certainly corruption, not layout.
constexpr long kMaxDbu = 1'000'000'000'000L;  // 10^12 DBU ~ a metre of die

/// Line-oriented tokenizer: reads one line at a time, splits on whitespace,
/// reports into a DiagnosticSink. Supports one line of push-back so a
/// section parser can hand an unexpected line back to its caller.
class LineReader {
 public:
  LineReader(std::istream& is, DiagnosticSink& sink)
      : is_(is), sink_(sink) {}

  /// Reads the next non-empty, non-comment line into tokens. Returns false
  /// at EOF.
  bool next(std::vector<std::string>& tokens) {
    if (pushed_) {
      tokens = pending_;
      pushed_ = false;
      return true;
    }
    std::string line;
    while (std::getline(is_, line)) {
      ++line_no_;
      tokens.clear();
      std::istringstream ss(line);
      std::string tok;
      while (ss >> tok) tokens.push_back(tok);
      if (tokens.empty() || tokens[0][0] == '#') continue;
      return true;
    }
    return false;
  }

  /// Hands the current line back; the next call to next() re-returns it.
  void push_back(const std::vector<std::string>& tokens) {
    pending_ = tokens;
    pushed_ = true;
  }

  int line() const { return line_no_; }

  /// Records an error-severity diagnostic at the current line and enforces
  /// the error cap (a flood of errors means the file is not this format at
  /// all — stop instead of reporting every line).
  void error(std::string code, std::string message) {
    sink_.error(std::move(code), line_no_, std::move(message));
    if (++errors_ >= kMaxErrors) {
      sink_.fatal("parse.too_many_errors", line_no_,
                  "more than " + std::to_string(kMaxErrors) +
                      " parse errors; giving up on this file");
      throw ParseAbort{};
    }
  }

  void warning(std::string code, std::string message) {
    sink_.warning(std::move(code), line_no_, std::move(message));
  }

  [[noreturn]] void abort(std::string code, std::string message) {
    error(std::move(code), std::move(message));
    throw ParseAbort{};
  }

  long to_long(const std::string& s) const {
    try {
      std::size_t used = 0;
      const long v = std::stol(s, &used);
      if (used != s.size()) {
        throw LineFail{"parse.bad_integer",
                       "expected integer, got '" + s + "'"};
      }
      if (v > kMaxDbu || v < -kMaxDbu) {
        throw LineFail{"parse.out_of_range",
                       "coordinate '" + s + "' outside sane range"};
      }
      return v;
    } catch (const std::invalid_argument&) {
      throw LineFail{"parse.bad_integer", "expected integer, got '" + s + "'"};
    } catch (const std::out_of_range&) {
      throw LineFail{"parse.out_of_range",
                     "integer '" + s + "' overflows"};
    }
  }

  /// For GCell coordinates and layer indices, which are stored as int.
  int to_int(const std::string& s) const {
    const long v = to_long(s);
    if (v > std::numeric_limits<int>::max() ||
        v < std::numeric_limits<int>::min()) {
      throw LineFail{"parse.out_of_range",
                     "value '" + s + "' does not fit a 32-bit grid index"};
    }
    return static_cast<int>(v);
  }

  static constexpr int kMaxErrors = 100;

 private:
  std::istream& is_;
  DiagnosticSink& sink_;
  int line_no_ = 0;
  int errors_ = 0;
  std::vector<std::string> pending_;
  bool pushed_ = false;
};

/// Line-scoped structural check: failure abandons the current line only.
void expect(bool cond, const char* code, const std::string& msg) {
  if (!cond) throw LineFail{code, msg};
}

/// Builds the failing Status for a parse that produced error diagnostics.
Status parse_failure(const DiagnosticSink& sink) {
  const common::Diagnostic* first = sink.first_error();
  if (first != nullptr) {
    return Status::ParseError("line " + std::to_string(first->line) + ": " +
                              first->message + " (" + sink.summary() + ")");
  }
  return Status::ParseError(sink.summary());
}

}  // namespace

void write_lef(std::ostream& os, const tech::Technology& tech,
               const netlist::Library& lib) {
  os << "VERSION 5.8 ;\n";
  for (int i = 1; i <= tech.num_metal_layers(); ++i) {
    const tech::MetalLayer& m = tech.metal(i);
    os << "LAYER " << m.name << " ROUTING " << to_string(m.preferred) << ' '
       << m.width_mult << ' ' << m.capacity << " ;\n";
  }
  for (int i = 1; i <= tech.num_via_layers(); ++i) {
    os << "LAYER " << tech.via(i).name << " CUT ;\n";
  }
  os << "GCELLSIZE " << tech.gcell_size() << " ;\n";
  for (int c = 0; c < lib.num_cells(); ++c) {
    const netlist::LibCell& lc = lib.cell(c);
    os << "MACRO " << lc.name << '\n';
    os << "  CLASS " << (lc.is_macro ? "BLOCK" : "CORE") << " ;\n";
    os << "  SIZE " << lc.width << " BY " << lc.height << " ;\n";
    os << "  DRIVE " << lc.drive_strength << " ;\n";
    for (const netlist::LibPin& p : lc.pins) {
      os << "  PIN " << p.name << ' '
         << (p.dir == netlist::PinDir::kInput ? "INPUT" : "OUTPUT") << ' '
         << p.offset.x << ' ' << p.offset.y << " ;\n";
    }
    os << "END " << lc.name << '\n';
  }
  os << "END LIBRARY\n";
}

StatusOr<LefContents> read_lef(std::istream& is, DiagnosticSink& sink) {
  OBS_SPAN("ingest.lef");
  OBS_COUNT("ingest.lef_files", 1);
  const std::size_t errors_before = sink.num_errors();
  LineReader lr(is, sink);
  std::vector<std::string> t;

  std::vector<tech::MetalLayer> metals;
  std::vector<tech::ViaLayer> vias;
  geom::Dbu gcell_size = 0;
  bool saw_gcellsize = false;
  netlist::Library lib;

  try {
    while (lr.next(t)) {
      try {
        if (t[0] == "VERSION") continue;
        if (t[0] == "LAYER") {
          expect(t.size() >= 3, "lef.short_layer", "short LAYER line");
          if (t[2] == "ROUTING") {
            expect(t.size() >= 6, "lef.short_layer",
                   "short ROUTING layer line");
            tech::MetalLayer m;
            m.name = t[1];
            m.index = static_cast<int>(metals.size()) + 1;
            if (t[3] == "HORIZONTAL") {
              m.preferred = tech::Direction::kHorizontal;
            } else if (t[3] == "VERTICAL") {
              m.preferred = tech::Direction::kVertical;
            } else {
              throw LineFail{"lef.bad_direction",
                             "bad routing direction '" + t[3] + "'"};
            }
            m.width_mult = lr.to_int(t[4]);
            m.capacity = lr.to_int(t[5]);
            expect(m.width_mult > 0, "lef.bad_width_mult",
                   "non-positive width multiplier");
            expect(m.capacity >= 0, "lef.bad_capacity", "negative capacity");
            metals.push_back(m);
          } else if (t[2] == "CUT") {
            vias.push_back(
                tech::ViaLayer{t[1], static_cast<int>(vias.size()) + 1});
          } else {
            throw LineFail{"lef.unknown_layer_type",
                           "unknown layer type " + t[2]};
          }
          continue;
        }
        if (t[0] == "GCELLSIZE") {
          expect(t.size() >= 2, "lef.short_gcellsize",
                 "short GCELLSIZE line");
          gcell_size = lr.to_long(t[1]);
          saw_gcellsize = true;
          if (gcell_size <= 0) {
            lr.error("lef.bad_gcellsize",
                     "GCELLSIZE must be positive, got " +
                         std::to_string(gcell_size));
          }
          continue;
        }
        if (t[0] == "MACRO") {
          expect(t.size() >= 2, "lef.macro_without_name",
                 "MACRO without name");
          netlist::LibCell lc;
          lc.name = t[1];
          bool terminated = false;
          while (lr.next(t)) {
            if (t[0] == "END") {
              terminated = true;
              break;
            }
            if (t[0] == "MACRO" || t[0] == "LAYER" || t[0] == "GCELLSIZE") {
              // A deleted END line: report and hand the line back so the
              // outer loop sees the next section.
              lr.error("lef.unterminated_macro",
                       "MACRO " + lc.name + " not terminated by END");
              lr.push_back(t);
              terminated = true;
              break;
            }
            try {
              if (t[0] == "CLASS") {
                expect(t.size() >= 2, "lef.short_class", "short CLASS line");
                lc.is_macro = (t[1] == "BLOCK");
              } else if (t[0] == "SIZE") {
                expect(t.size() >= 4 && t[2] == "BY", "lef.bad_size",
                       "malformed SIZE line");
                lc.width = lr.to_long(t[1]);
                lc.height = lr.to_long(t[3]);
                expect(lc.width >= 0 && lc.height >= 0, "lef.bad_size",
                       "negative macro dimensions");
              } else if (t[0] == "DRIVE") {
                expect(t.size() >= 2, "lef.short_drive", "short DRIVE line");
                lc.drive_strength = lr.to_int(t[1]);
              } else if (t[0] == "PIN") {
                expect(t.size() >= 5, "lef.short_pin", "short PIN line");
                netlist::LibPin p;
                p.name = t[1];
                if (t[2] == "INPUT") {
                  p.dir = netlist::PinDir::kInput;
                } else if (t[2] == "OUTPUT") {
                  p.dir = netlist::PinDir::kOutput;
                } else {
                  throw LineFail{"lef.bad_pin_direction",
                                 "bad pin direction " + t[2]};
                }
                p.offset = {lr.to_long(t[3]), lr.to_long(t[4])};
                lc.pins.push_back(std::move(p));
              } else {
                throw LineFail{"lef.unknown_macro_keyword",
                               "unknown MACRO body keyword " + t[0]};
              }
            } catch (const LineFail& f) {
              lr.error(f.code, f.message);
            }
          }
          if (!terminated) {
            lr.error("lef.unexpected_eof",
                     "end of file inside MACRO " + lc.name);
          }
          if (lib.find(lc.name).has_value()) {
            lr.error("lef.duplicate_macro",
                     "duplicate MACRO " + lc.name + "; keeping the first");
          } else {
            lib.add_cell(std::move(lc));
          }
          continue;
        }
        if (t[0] == "END") break;  // END LIBRARY
        throw LineFail{"lef.unknown_keyword", "unknown LEF keyword " + t[0]};
      } catch (const LineFail& f) {
        lr.error(f.code, f.message);
      }
    }

    if (metals.empty()) {
      lr.error("lef.no_layers", "LEF contained no layers");
    } else if (vias.size() + 1 != metals.size()) {
      lr.error("lef.layer_stack_mismatch",
               "expected " + std::to_string(metals.size() - 1) +
                   " via layers for " + std::to_string(metals.size()) +
                   " metal layers, got " + std::to_string(vias.size()));
    }
    if (!saw_gcellsize) {
      lr.error("lef.missing_gcellsize", "LEF missing GCELLSIZE");
    }
  } catch (const ParseAbort&) {
    // Diagnostics already recorded; fall through to the failure return.
  }

  if (sink.num_errors() > errors_before) return parse_failure(sink);
  return LefContents{
      tech::Technology(std::move(metals), std::move(vias), gcell_size),
      std::move(lib)};
}

LefContents read_lef(std::istream& is) {
  DiagnosticSink sink;
  StatusOr<LefContents> result = read_lef(is, sink);
  if (!result.ok()) {
    const common::Diagnostic* d = sink.first_error();
    if (d != nullptr) {
      throw std::runtime_error("lefdef parse error at line " +
                               std::to_string(d->line) + ": " + d->message);
    }
    throw std::runtime_error(result.status().to_string());
  }
  return std::move(result).value();
}

void write_def(std::ostream& os, const netlist::Netlist& nl,
               const route::RouteDB& db, std::optional<int> split_layer) {
  os << "DESIGN " << (nl.name().empty() ? "anon" : nl.name()) << " ;\n";
  const geom::Rect die = db.grid.die();
  os << "DIEAREA ( " << die.lo.x << ' ' << die.lo.y << " ) ( " << die.hi.x
     << ' ' << die.hi.y << " ) ;\n";
  os << "COMPONENTS " << nl.num_cells() << " ;\n";
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    const netlist::CellInst& inst = nl.cell(c);
    os << "- " << inst.name << ' ' << nl.library().cell(inst.lib_cell).name
       << " ( " << inst.origin.x << ' ' << inst.origin.y << " ) ;\n";
  }
  os << "END COMPONENTS\n";
  os << "NETS " << nl.num_nets() << " ;\n";
  const int max_metal = split_layer ? *split_layer
                                    : std::numeric_limits<int>::max();
  const int max_via = split_layer ? *split_layer
                                  : std::numeric_limits<int>::max();
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(n);
    os << "- " << net.name;
    for (const netlist::PinRef& p : net.pins) {
      const netlist::CellInst& inst = nl.cell(p.cell);
      const netlist::LibCell& lc = nl.library().cell(inst.lib_cell);
      os << " ( " << inst.name << ' '
         << lc.pins[static_cast<std::size_t>(p.lib_pin)].name << " )";
    }
    os << '\n';
    const route::NetRoute& nr = db.route_of(n);
    for (const route::WireSeg& w : nr.wires) {
      if (w.layer > max_metal) continue;
      os << "  WIRE M" << w.layer << " ( " << w.a.x << ' ' << w.a.y
         << " ) ( " << w.b.x << ' ' << w.b.y << " )\n";
    }
    for (const route::Via& v : nr.vias) {
      if (v.via_layer > max_via) continue;
      os << "  VIA V" << v.via_layer << " ( " << v.at.x << ' ' << v.at.y
         << " )\n";
    }
    os << "  ;\n";
  }
  os << "END NETS\n";
  os << "END DESIGN\n";
}

StatusOr<DefDesign> read_def(std::istream& is,
                             std::shared_ptr<const netlist::Library> lib,
                             DiagnosticSink& sink) {
  OBS_SPAN("ingest.def");
  OBS_COUNT("ingest.def_files", 1);
  const std::size_t errors_before = sink.num_errors();
  LineReader lr(is, sink);
  std::vector<std::string> t;

  geom::Rect die;
  std::vector<route::NetRoute> routes;
  netlist::Netlist nl(lib, "anon");

  try {
    // Header: DESIGN name ;
    if (!lr.next(t) || t[0] != "DESIGN" || t.size() < 2) {
      lr.abort("def.expected_design", "expected DESIGN");
    }
    nl = netlist::Netlist(lib, t[1]);

    // DIEAREA ( x0 y0 ) ( x1 y1 ) ;
    if (!lr.next(t) || t[0] != "DIEAREA" || t.size() < 10) {
      lr.abort("def.expected_diearea", "expected DIEAREA");
    }
    try {
      geom::Dbu x0 = lr.to_long(t[2]), y0 = lr.to_long(t[3]);
      geom::Dbu x1 = lr.to_long(t[6]), y1 = lr.to_long(t[7]);
      if (x1 < x0 || y1 < y0) {
        lr.error("def.inverted_diearea",
                 "DIEAREA corners are inverted; normalizing");
        if (x1 < x0) std::swap(x0, x1);
        if (y1 < y0) std::swap(y0, y1);
      }
      die = geom::Rect(x0, y0, x1, y1);
    } catch (const LineFail& f) {
      lr.error(f.code, f.message);
      throw ParseAbort{};  // no usable die: nothing downstream can work
    }

    // COMPONENTS n ;
    if (!lr.next(t) || t[0] != "COMPONENTS") {
      lr.abort("def.expected_components", "expected COMPONENTS");
    }
    long declared_components = -1;
    if (t.size() >= 2) {
      try {
        declared_components = lr.to_long(t[1]);
      } catch (const LineFail& f) {
        lr.error(f.code, f.message);
      }
    }
    std::vector<std::pair<std::string, netlist::CellId>> by_name;
    std::unordered_set<std::string> comp_names;
    long components_seen = 0;
    bool components_terminated = false;
    while (lr.next(t)) {
      if (t[0] == "END") {
        components_terminated = true;
        break;
      }
      if (t[0] == "NETS") {
        lr.error("def.unterminated_components",
                 "COMPONENTS section not terminated by END");
        lr.push_back(t);
        components_terminated = true;
        break;
      }
      ++components_seen;
      try {
        expect(t[0] == "-" && t.size() >= 7, "def.malformed_component",
               "malformed component line");
        expect(t[3] == "(" && t[6] == ")", "def.malformed_component",
               "malformed component placement");
        const auto lc = lib->find(t[2]);
        expect(lc.has_value(), "def.unknown_macro", "unknown macro " + t[2]);
        const geom::Point origin{lr.to_long(t[4]), lr.to_long(t[5])};
        if (!comp_names.insert(t[1]).second) {
          lr.warning("def.duplicate_component",
                     "duplicate component " + t[1] + "; keeping the first");
          continue;
        }
        const netlist::CellId id = nl.add_cell(t[1], *lc, origin);
        by_name.emplace_back(t[1], id);
      } catch (const LineFail& f) {
        lr.error(f.code, f.message);
      }
    }
    if (!components_terminated) {
      lr.abort("def.unexpected_eof", "end of file inside COMPONENTS");
    }
    if (declared_components >= 0 && components_seen != declared_components) {
      lr.error("def.component_count_mismatch",
               "COMPONENTS declared " + std::to_string(declared_components) +
                   " but " + std::to_string(components_seen) + " found");
    }
    std::sort(by_name.begin(), by_name.end());
    const auto find_cell = [&](const std::string& name) -> netlist::CellId {
      auto it = std::lower_bound(
          by_name.begin(), by_name.end(), name,
          [](const auto& a, const std::string& b) { return a.first < b; });
      if (it == by_name.end() || it->first != name) {
        return netlist::kInvalidCell;
      }
      return it->second;
    };

    // NETS n ;
    if (!lr.next(t) || t[0] != "NETS") {
      lr.abort("def.expected_nets", "expected NETS");
    }
    long declared_nets = -1;
    if (t.size() >= 2) {
      try {
        declared_nets = lr.to_long(t[1]);
      } catch (const LineFail& f) {
        lr.error(f.code, f.message);
      }
    }
    std::unordered_set<std::string> net_names;
    long nets_seen = 0;
    bool nets_terminated = false;
    while (lr.next(t)) {
      if (t[0] == "END") {
        nets_terminated = true;
        break;
      }
      ++nets_seen;
      bool keep = true;
      netlist::Net net;
      if (t[0] != "-" || t.size() < 2) {
        lr.error("def.malformed_net", "malformed net line");
        keep = false;
      } else {
        net.name = t[1];
        if (!net_names.insert(net.name).second) {
          lr.warning("def.duplicate_net",
                     "duplicate net " + net.name + "; keeping the first");
          keep = false;
        }
        // Pin groups: ( component pin ). A damaged group is reported and
        // the rest of the line abandoned — the surviving pin count decides
        // below whether the net is still usable.
        for (std::size_t i = 2; i < t.size();) {
          if (t[i] != "(" || i + 3 >= t.size() || t[i + 3] != ")") {
            lr.error("def.malformed_net_pins",
                     "malformed pin group on net " + net.name);
            keep = false;
            break;
          }
          const netlist::CellId cell = find_cell(t[i + 1]);
          if (cell == netlist::kInvalidCell) {
            lr.error("def.unknown_component",
                     "unknown component " + t[i + 1] + " on net " + net.name);
            i += 4;
            continue;
          }
          const netlist::LibCell& lc = lib->cell(nl.cell(cell).lib_cell);
          int pin_idx = -1;
          for (int p = 0; p < static_cast<int>(lc.pins.size()); ++p) {
            if (lc.pins[static_cast<std::size_t>(p)].name == t[i + 2]) {
              pin_idx = p;
              break;
            }
          }
          if (pin_idx < 0) {
            lr.error("def.unknown_pin", "unknown pin " + t[i + 2] + " of " +
                                            lc.name + " on net " + net.name);
            i += 4;
            continue;
          }
          if (lc.pins[static_cast<std::size_t>(pin_idx)].dir ==
              netlist::PinDir::kOutput) {
            net.driver = static_cast<int>(net.pins.size());
          }
          net.pins.push_back(netlist::PinRef{cell, pin_idx});
          i += 4;
        }
      }
      // Route body lines until ';'. Consumed even when the net is being
      // dropped, so the reader stays aligned with the section structure.
      route::NetRoute nr;
      bool body_terminated = false;
      while (lr.next(t)) {
        if (t[0] == ";") {
          body_terminated = true;
          break;
        }
        if (t[0] == "-" || t[0] == "END") {
          lr.error("def.unterminated_net",
                   "net " + net.name + " not terminated by ';'");
          lr.push_back(t);
          body_terminated = true;
          break;
        }
        try {
          if (t[0] == "WIRE") {
            expect(t.size() >= 10, "def.malformed_wire",
                   "malformed WIRE line");
            expect(t[2] == "(" && t[5] == ")" && t[6] == "(" && t[9] == ")",
                   "def.malformed_wire", "malformed WIRE coordinates");
            expect(t[1].size() >= 2 && t[1][0] == 'M', "def.bad_wire_layer",
                   "bad wire layer '" + t[1] + "'");
            route::WireSeg w;
            w.layer = lr.to_int(t[1].substr(1));
            w.a = {lr.to_int(t[3]), lr.to_int(t[4])};
            w.b = {lr.to_int(t[7]), lr.to_int(t[8])};
            nr.wires.push_back(w);
          } else if (t[0] == "VIA") {
            expect(t.size() >= 6, "def.malformed_via", "malformed VIA line");
            expect(t[2] == "(" && t[5] == ")", "def.malformed_via",
                   "malformed VIA coordinates");
            expect(t[1].size() >= 2 && t[1][0] == 'V', "def.bad_via_layer",
                   "bad via layer '" + t[1] + "'");
            route::Via v;
            v.via_layer = lr.to_int(t[1].substr(1));
            v.at = {lr.to_int(t[3]), lr.to_int(t[4])};
            nr.vias.push_back(v);
          } else {
            throw LineFail{"def.unknown_net_keyword",
                           "unknown net body keyword " + t[0]};
          }
        } catch (const LineFail& f) {
          lr.error(f.code, f.message);
        }
      }
      if (!body_terminated) {
        lr.abort("def.unexpected_eof", "end of file inside net " + net.name);
      }
      if (keep && net.pins.size() < 2) {
        lr.warning("def.dangling_net",
                   "net " + net.name + " has fewer than 2 usable pins; "
                   "dropping it");
        keep = false;
      }
      if (keep) {
        const netlist::NetId nid = nl.add_net(std::move(net));
        nr.net = nid;
        routes.push_back(std::move(nr));
      }
    }
    if (!nets_terminated) {
      lr.abort("def.unexpected_eof", "end of file inside NETS");
    }
    if (declared_nets >= 0 && nets_seen != declared_nets) {
      lr.error("def.net_count_mismatch",
               "NETS declared " + std::to_string(declared_nets) + " but " +
                   std::to_string(nets_seen) + " found");
    }
  } catch (const ParseAbort&) {
    // Diagnostics already recorded; fall through to the failure return.
  }

  if (sink.num_errors() > errors_before) return parse_failure(sink);
  OBS_COUNT("ingest.def_components", nl.num_cells());
  OBS_COUNT("ingest.def_nets", nl.num_nets());
  return DefDesign{std::move(nl), std::move(routes), die, 0};
}

DefDesign read_def(std::istream& is,
                   std::shared_ptr<const netlist::Library> lib) {
  DiagnosticSink sink;
  StatusOr<DefDesign> result = read_def(is, std::move(lib), sink);
  if (!result.ok()) {
    const common::Diagnostic* d = sink.first_error();
    if (d != nullptr) {
      throw std::runtime_error("lefdef parse error at line " +
                               std::to_string(d->line) + ": " + d->message);
    }
    throw std::runtime_error(result.status().to_string());
  }
  return std::move(result).value();
}

route::RouteDB to_route_db(const DefDesign& def, geom::Dbu gcell_size) {
  route::RouteDB db;
  db.grid = route::GridGeometry(def.die, gcell_size);
  db.routes = def.routes;
  db.routes.resize(static_cast<std::size_t>(def.netlist.num_nets()));
  for (netlist::NetId n = 0; n < def.netlist.num_nets(); ++n) {
    auto& nr = db.routes[static_cast<std::size_t>(n)];
    nr.net = n;
    nr.pin_access.clear();
    for (const netlist::PinRef& p : def.netlist.net(n).pins) {
      route::PinAccess pa;
      pa.pin = p;
      pa.gcell = db.grid.gcell_of(def.netlist.pin_position(p));
      pa.top_layer = 1;
      nr.pin_access.push_back(pa);
    }
  }
  return db;
}

}  // namespace repro::lefdef

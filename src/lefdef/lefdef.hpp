// Simplified LEF/DEF-style layout exchange.
//
// The attack model says the untrusted foundry receives a layout *file* and
// reconstructs the partially-connected network from it. This module provides
// that code path: a LEF-flavoured technology+library writer/reader and a
// DEF-flavoured design writer/reader that carries placement and the routed
// (GCell-granularity) wires and vias of every net. The DEF writer can
// truncate the design at a split layer, producing exactly the FEOL view the
// attacker holds: wires on metals <= L and vias on via layers <= L (the
// vias *at* L are the v-pins).
//
// The grammar is a strict, line-oriented subset of real LEF/DEF; see
// write_lef / write_def for the productions. Parsers throw
// std::runtime_error with a line number on malformed input.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "route/route_db.hpp"
#include "tech/tech.hpp"

namespace repro::lefdef {

/// Writes technology layers and the cell library in LEF-style syntax.
void write_lef(std::ostream& os, const tech::Technology& tech,
               const netlist::Library& lib);

struct LefContents {
  tech::Technology tech;
  netlist::Library lib;
};

/// Parses what write_lef produced.
LefContents read_lef(std::istream& is);

/// A parsed DEF design: netlist (cells placed, nets with pins) plus the
/// routed geometry per net.
struct DefDesign {
  netlist::Netlist netlist;
  std::vector<route::NetRoute> routes;  ///< indexed by NetId
  geom::Rect die;
  geom::Dbu gcell_size = 0;
};

/// Writes the placed-and-routed design in DEF-style syntax. If
/// `split_layer` is set, emits the FEOL view only: wire segments on metal
/// layers <= split_layer and vias on via layers <= split_layer.
void write_def(std::ostream& os, const netlist::Netlist& nl,
               const route::RouteDB& db,
               std::optional<int> split_layer = std::nullopt);

/// Parses what write_def produced. `lib` must contain every referenced
/// macro.
DefDesign read_def(std::istream& is, std::shared_ptr<const netlist::Library> lib);

/// Rebuilds a routing database from a parsed DEF: grid geometry from the
/// die and GCell size, routes as parsed, and pin-access records recomputed
/// from the netlist pin positions. The usage map is left empty (it is a
/// router-side artifact and not part of the exchange format).
route::RouteDB to_route_db(const DefDesign& def, geom::Dbu gcell_size);

}  // namespace repro::lefdef

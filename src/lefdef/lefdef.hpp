// Simplified LEF/DEF-style layout exchange.
//
// The attack model says the untrusted foundry receives a layout *file* and
// reconstructs the partially-connected network from it. This module provides
// that code path: a LEF-flavoured technology+library writer/reader and a
// DEF-flavoured design writer/reader that carries placement and the routed
// (GCell-granularity) wires and vias of every net. The DEF writer can
// truncate the design at a split layer, producing exactly the FEOL view the
// attacker holds: wires on metals <= L and vias on via layers <= L (the
// vias *at* L are the v-pins).
//
// The grammar is a strict, line-oriented subset of real LEF/DEF; see
// write_lef / write_def for the productions.
//
// Two parser entry points exist per format:
//  * The Status-returning overloads never throw. They recover from
//    malformed lines where the section structure allows it, collect every
//    finding in the caller's DiagnosticSink (severity, code, file, line,
//    message), and return a failing Status if anything at error severity
//    was reported. Numeric tokens are range-checked, so garbage input can
//    not smuggle wrapped or absurd coordinates into the route database.
//  * The legacy overloads wrap them and throw std::runtime_error carrying
//    the first diagnostic ("lefdef parse error at line N: ...").
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/diagnostics.hpp"
#include "common/status.hpp"
#include "netlist/netlist.hpp"
#include "route/route_db.hpp"
#include "tech/tech.hpp"

namespace repro::lefdef {

/// Writes technology layers and the cell library in LEF-style syntax.
void write_lef(std::ostream& os, const tech::Technology& tech,
               const netlist::Library& lib);

struct LefContents {
  tech::Technology tech;
  netlist::Library lib;
};

/// Parses what write_lef produced, reporting every problem into `sink`.
/// Never throws; returns a failing Status (and no contents) if any
/// error-severity diagnostic was produced.
common::StatusOr<LefContents> read_lef(std::istream& is,
                                       common::DiagnosticSink& sink);

/// Legacy API: parses and throws std::runtime_error on the first error.
LefContents read_lef(std::istream& is);

/// A parsed DEF design: netlist (cells placed, nets with pins) plus the
/// routed geometry per net.
struct DefDesign {
  netlist::Netlist netlist;
  std::vector<route::NetRoute> routes;  ///< indexed by NetId
  geom::Rect die;
  geom::Dbu gcell_size = 0;
};

/// Writes the placed-and-routed design in DEF-style syntax. If
/// `split_layer` is set, emits the FEOL view only: wire segments on metal
/// layers <= split_layer and vias on via layers <= split_layer.
void write_def(std::ostream& os, const netlist::Netlist& nl,
               const route::RouteDB& db,
               std::optional<int> split_layer = std::nullopt);

/// Parses what write_def produced. `lib` must contain every referenced
/// macro. Never throws; recovers per line where possible (a malformed
/// component, net, or route line is reported and skipped; nets whose pin
/// list was damaged below 2 pins are dropped with a warning) and
/// cross-checks the declared COMPONENTS/NETS counts against what survived,
/// so silent data loss is always surfaced as a diagnostic.
common::StatusOr<DefDesign> read_def(std::istream& is,
                                     std::shared_ptr<const netlist::Library> lib,
                                     common::DiagnosticSink& sink);

/// Legacy API: parses and throws std::runtime_error on the first error.
DefDesign read_def(std::istream& is, std::shared_ptr<const netlist::Library> lib);

/// Rebuilds a routing database from a parsed DEF: grid geometry from the
/// die and GCell size, routes as parsed, and pin-access records recomputed
/// from the netlist pin positions. The usage map is left empty (it is a
/// router-side artifact and not part of the exchange format).
route::RouteDB to_route_db(const DefDesign& def, geom::Dbu gcell_size);

}  // namespace repro::lefdef

// Ordinary least-squares linear regression (normal equations).
//
// Used by the prior-work baseline [5], which models the neighbourhood
// radius around a v-pin with simple linear regression over layout features.
#pragma once

#include <span>
#include <vector>

namespace repro::ml {

class LinearRegression {
 public:
  /// Fits y ~ w0 + w . x by least squares with a small ridge term for
  /// numerical stability. `xs` holds rows of equal length.
  static LinearRegression fit(const std::vector<std::vector<double>>& xs,
                              std::span<const double> ys,
                              double ridge = 1e-9);

  double predict(std::span<const double> x) const;

  const std::vector<double>& weights() const { return w_; }  ///< w_[0]=bias

 private:
  std::vector<double> w_;
};

}  // namespace repro::ml

#include "ml/serialize.hpp"

#include <cstdint>
#include <utility>
#include <vector>

#include "common/binio.hpp"

namespace repro::ml {

using common::BinaryReader;
using common::BinaryWriter;
using common::Status;
using common::StatusOr;

std::string save_bagging(const BaggingClassifier& clf) {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(clf.num_trees()));
  for (int t = 0; t < clf.num_trees(); ++t) {
    const DecisionTree& tree = clf.tree(t);
    w.u32(static_cast<std::uint32_t>(tree.num_nodes()));
    for (int i = 0; i < tree.num_nodes(); ++i) {
      const TreeNode& n = tree.node(i);
      w.i32(n.feature);
      w.f64(n.threshold);
      w.i32(n.left);
      w.i32(n.right);
      w.f64(n.pos);
      w.f64(n.neg);
    }
  }
  return common::seal_artifact(kBaggingMagic, kBaggingVersion, w.take());
}

StatusOr<BaggingClassifier> load_bagging(const std::string& raw) {
  StatusOr<std::string> payload =
      common::open_artifact(raw, kBaggingMagic, kBaggingVersion);
  if (!payload.ok()) return payload.status();

  BinaryReader r(*payload);
  std::uint32_t num_trees = 0;
  r.u32(num_trees);
  // A tree has >= 1 node and a node costs 32 bytes, so any count that
  // could not fit in the remaining payload is corruption, not data.
  if (!r.ok() || num_trees > r.remaining()) {
    return Status::DataLoss("model artifact: implausible tree count");
  }

  std::vector<DecisionTree> trees;
  trees.reserve(num_trees);
  for (std::uint32_t t = 0; t < num_trees; ++t) {
    std::uint32_t num_nodes = 0;
    r.u32(num_nodes);
    if (!r.ok() || num_nodes == 0 || num_nodes > r.remaining()) {
      return Status::DataLoss("model artifact: implausible node count");
    }
    std::vector<TreeNode> nodes(num_nodes);
    for (std::uint32_t i = 0; i < num_nodes; ++i) {
      TreeNode& n = nodes[i];
      r.i32(n.feature);
      r.f64(n.threshold);
      r.i32(n.left);
      r.i32(n.right);
      r.f64(n.pos);
      r.f64(n.neg);
    }
    if (!r.ok()) return r.status();
    // Structural validation: the tree walker indexes nodes_ unchecked,
    // so a CRC-valid but malformed artifact must be rejected here.
    const int limit = static_cast<int>(num_nodes);
    for (const TreeNode& n : nodes) {
      if (n.is_leaf()) continue;
      if (n.left < 0 || n.left >= limit || n.right < 0 || n.right >= limit) {
        return Status::DataLoss("model artifact: child index out of range");
      }
    }
    trees.push_back(DecisionTree::from_nodes(std::move(nodes)));
  }
  if (r.remaining() != 0) {
    return Status::DataLoss("model artifact: trailing bytes after payload");
  }
  return BaggingClassifier::from_trees(std::move(trees));
}

Status save_bagging_file(const BaggingClassifier& clf,
                         const std::string& path) {
  return common::atomic_write_file(path, save_bagging(clf));
}

StatusOr<BaggingClassifier> load_bagging_file(const std::string& path) {
  StatusOr<std::string> raw = common::read_file(path);
  if (!raw.ok()) return raw.status();
  return load_bagging(*raw);
}

}  // namespace repro::ml

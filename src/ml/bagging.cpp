#include "ml/bagging.hpp"

#include <cmath>
#include <random>

namespace repro::ml {

BaggingOptions BaggingOptions::random_forest(int num_features,
                                             std::uint64_t seed) {
  BaggingOptions o;
  o.num_trees = 100;
  o.tree.reduced_error_pruning = false;
  o.tree.min_leaf = 1;
  o.tree.num_random_features =
      static_cast<int>(std::ceil(std::log2(std::max(2, num_features)))) + 1;
  o.seed = seed;
  return o;
}

BaggingClassifier BaggingClassifier::train(const Dataset& data,
                                           const BaggingOptions& opt) {
  BaggingClassifier clf;
  std::mt19937_64 rng(opt.seed);
  const int n = data.num_rows();
  std::uniform_int_distribution<int> pick(0, std::max(0, n - 1));
  std::vector<int> sample(static_cast<std::size_t>(n));
  for (int t = 0; t < opt.num_trees; ++t) {
    for (int i = 0; i < n; ++i) {
      sample[static_cast<std::size_t>(i)] = pick(rng);
    }
    clf.trees_.push_back(DecisionTree::train(data, opt.tree, rng, sample));
  }
  return clf;
}

double BaggingClassifier::predict_proba(std::span<const double> x) const {
  if (trees_.empty()) return 0.5;
  double sum = 0;
  for (const DecisionTree& t : trees_) sum += t.predict_proba(x);
  return sum / static_cast<double>(trees_.size());
}

long BaggingClassifier::total_nodes() const {
  long total = 0;
  for (const DecisionTree& t : trees_) total += t.num_nodes();
  return total;
}

}  // namespace repro::ml

#include "ml/bagging.hpp"

#include <cmath>
#include <random>

#include "common/obs.hpp"
#include "common/parallel.hpp"

namespace repro::ml {

BaggingOptions BaggingOptions::random_forest(int num_features,
                                             std::uint64_t seed) {
  BaggingOptions o;
  o.num_trees = 100;
  o.tree.reduced_error_pruning = false;
  o.tree.min_leaf = 1;
  o.tree.num_random_features =
      static_cast<int>(std::ceil(std::log2(std::max(2, num_features)))) + 1;
  o.seed = seed;
  return o;
}

BaggingClassifier BaggingClassifier::train(const Dataset& data,
                                           const BaggingOptions& opt) {
  OBS_SPAN("train.fit_ensemble");
  BaggingClassifier clf;
  clf.trees_.resize(static_cast<std::size_t>(std::max(0, opt.num_trees)));
  const int n = data.num_rows();
  // Each tree owns slot t and an RNG derived from (seed, t): both the
  // bootstrap resample and the tree growth draw only from it, making the
  // ensemble independent of execution order (and of thread count).
  common::parallel_for(opt.num_trees, [&](std::int64_t t) {
    OBS_SPAN_ARG("train.fit_tree", t);
    std::mt19937_64 rng(
        common::derive_seed(opt.seed, static_cast<std::uint64_t>(t)));
    std::uniform_int_distribution<int> pick(0, std::max(0, n - 1));
    std::vector<int> sample(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      sample[static_cast<std::size_t>(i)] = pick(rng);
    }
    clf.trees_[static_cast<std::size_t>(t)] =
        DecisionTree::train(data, opt.tree, rng, sample);
  });
  OBS_COUNT("ml.trees_grown", std::max(0, opt.num_trees));
  OBS_COUNT("ml.tree_nodes", clf.total_nodes());
  return clf;
}

double BaggingClassifier::predict_proba(std::span<const double> x) const {
  if (trees_.empty()) return 0.5;
  double sum = 0;
  for (const DecisionTree& t : trees_) sum += t.predict_proba(x);
  return sum / static_cast<double>(trees_.size());
}

long BaggingClassifier::total_nodes() const {
  long total = 0;
  for (const DecisionTree& t : trees_) total += t.num_nodes();
  return total;
}

FlatForest FlatForest::build(const BaggingClassifier& clf) {
  FlatForest f;
  int total = 0;
  for (int t = 0; t < clf.num_trees(); ++t) total += clf.tree(t).num_nodes();
  f.feature_.reserve(static_cast<std::size_t>(total));
  f.threshold_.reserve(static_cast<std::size_t>(total));
  f.left_.reserve(static_cast<std::size_t>(total));
  f.right_.reserve(static_cast<std::size_t>(total));
  f.leaf_p_.reserve(static_cast<std::size_t>(total));
  for (int t = 0; t < clf.num_trees(); ++t) {
    const DecisionTree& tree = clf.tree(t);
    const std::int32_t base = static_cast<std::int32_t>(f.feature_.size());
    f.roots_.push_back(base);
    for (int i = 0; i < tree.num_nodes(); ++i) {
      const TreeNode& n = tree.node(i);
      f.feature_.push_back(n.feature);
      f.threshold_.push_back(n.threshold);
      f.left_.push_back(n.is_leaf() ? -1 : base + n.left);
      f.right_.push_back(n.is_leaf() ? -1 : base + n.right);
      const double count = n.pos + n.neg;
      f.leaf_p_.push_back(count > 0 ? n.pos / count : 0.5);
    }
  }
  return f;
}

double FlatForest::walk(const double* x) const {
  double sum = 0;
  for (const std::int32_t root : roots_) {
    std::int32_t node = root;
    std::int32_t feat = feature_[static_cast<std::size_t>(node)];
    while (feat >= 0) {
      node = x[feat] < threshold_[static_cast<std::size_t>(node)]
                 ? left_[static_cast<std::size_t>(node)]
                 : right_[static_cast<std::size_t>(node)];
      feat = feature_[static_cast<std::size_t>(node)];
    }
    sum += leaf_p_[static_cast<std::size_t>(node)];
  }
  return sum / static_cast<double>(roots_.size());
}

double FlatForest::predict_proba(std::span<const double> x) const {
  if (roots_.empty()) return 0.5;
  return walk(x.data());
}

void FlatForest::predict_batch(const double* rows, int n, int num_features,
                               double* out) const {
  if (roots_.empty()) {
    for (int i = 0; i < n; ++i) out[i] = 0.5;
    return;
  }
  for (int i = 0; i < n; ++i) {
    out[i] = walk(rows + static_cast<std::size_t>(i) * num_features);
  }
}

void FlatForest::predict_batch(const float* rows, int n, int num_features,
                               double* out) const {
  if (roots_.empty()) {
    for (int i = 0; i < n; ++i) out[i] = 0.5;
    return;
  }
  for (int i = 0; i < n; ++i) {
    const float* x = rows + static_cast<std::size_t>(i) * num_features;
    double sum = 0;
    for (const std::int32_t root : roots_) {
      std::int32_t node = root;
      std::int32_t feat = feature_[static_cast<std::size_t>(node)];
      while (feat >= 0) {
        node = static_cast<double>(x[feat]) <
                       threshold_[static_cast<std::size_t>(node)]
                   ? left_[static_cast<std::size_t>(node)]
                   : right_[static_cast<std::size_t>(node)];
        feat = feature_[static_cast<std::size_t>(node)];
      }
      sum += leaf_p_[static_cast<std::size_t>(node)];
    }
    out[i] = sum / static_cast<double>(roots_.size());
  }
}

}  // namespace repro::ml

#include "ml/bagging.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <random>
#include <stdexcept>
#include <type_traits>

#include "common/obs.hpp"
#include "common/parallel.hpp"

namespace repro::ml {

namespace {

/// Minimum trees per chunk when training in parallel. A 50-tree ensemble
/// sliced into 8 cold chunks pays more in worker wakeup + cache warmup
/// than the spread buys; requiring a few trees per chunk keeps the
/// per-chunk fixed costs amortized. Purely a scheduling knob — the model
/// is bit-identical for any grain.
constexpr std::int64_t kTreeGrain = 4;

/// Per-tree spans are sampled 1-in-8: with hundreds of trees, recording
/// every fit_tree span dominated the obs ring buffer and its snapshot
/// cost, while the Amdahl breakdown in bench_attack only needs enough
/// samples to estimate the per-chunk spread. The ensemble-level
/// "train.fit_ensemble" span still covers the full wall time.
constexpr std::int64_t kSpanSampleMask = 7;

BaggingClassifier train_impl(const Dataset& data, const BaggingOptions& opt) {
  OBS_SPAN("train.fit_ensemble");
  BaggingClassifier clf;
  const int num_trees = std::max(0, opt.num_trees);
  std::vector<DecisionTree> trees(static_cast<std::size_t>(num_trees));
  const int n = data.num_rows();
  // One scratch arena per pool worker, reused across the trees that
  // worker grows: the bootstrap sample vector and the tree builder's
  // grow/prune/sort buffers are allocated once and recycled, instead of
  // num_trees times each. Workers index arenas by current_worker_id(),
  // which is stable and unique per pool thread, so there is no sharing.
  std::vector<TreeScratch> arenas(
      static_cast<std::size_t>(common::global_pool().num_threads()));
  // Each tree owns slot t and an RNG derived from (seed, t): both the
  // bootstrap resample and the tree growth draw only from it, making the
  // ensemble independent of execution order (and of thread count).
  common::parallel_for(
      num_trees,
      [&](std::int64_t t) {
        std::optional<common::obs::SpanGuard> span;
        if ((t & kSpanSampleMask) == 0) {
          span.emplace("train.fit_tree", t);
        }
        TreeScratch& scratch =
            arenas[static_cast<std::size_t>(common::current_worker_id())];
        std::mt19937_64 rng(
            common::derive_seed(opt.seed, static_cast<std::uint64_t>(t)));
        std::uniform_int_distribution<int> pick(0, std::max(0, n - 1));
        std::vector<int>& sample = scratch.sample;
        sample.resize(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
          sample[static_cast<std::size_t>(i)] = pick(rng);
        }
        trees[static_cast<std::size_t>(t)] =
            DecisionTree::train(data, opt.tree, rng, sample, scratch);
        // Per-tree bump for live telemetry progress (ml.trees_grown only
        // moves once per ensemble); commutative, so the total is still
        // thread-count invariant.
        OBS_COUNT("ml.trees_done", 1);
      },
      /*cancel=*/nullptr, kTreeGrain);
  clf = BaggingClassifier::from_trees(std::move(trees));
  OBS_COUNT("ml.trees_grown", num_trees);
  OBS_COUNT("ml.tree_nodes", clf.total_nodes());
  return clf;
}

common::Status check_trainable(const Dataset& data) {
  if (data.num_rows() <= 0) {
    return common::Status::InvalidArgument(
        "bagging: cannot train on an empty dataset (0 rows; bootstrap "
        "resampling has nothing to draw from)");
  }
  return common::Status::Ok();
}

}  // namespace

BaggingOptions BaggingOptions::random_forest(int num_features,
                                             std::uint64_t seed) {
  BaggingOptions o;
  o.num_trees = 100;
  o.tree.reduced_error_pruning = false;
  o.tree.min_leaf = 1;
  o.tree.num_random_features =
      static_cast<int>(std::ceil(std::log2(std::max(2, num_features)))) + 1;
  o.seed = seed;
  return o;
}

BaggingClassifier BaggingClassifier::train(const Dataset& data,
                                           const BaggingOptions& opt) {
  if (const common::Status s = check_trainable(data); !s.ok()) {
    throw std::invalid_argument(std::string(s.message()));
  }
  return train_impl(data, opt);
}

common::StatusOr<BaggingClassifier> BaggingClassifier::train_checked(
    const Dataset& data, const BaggingOptions& opt) {
  if (common::Status s = check_trainable(data); !s.ok()) return s;
  return train_impl(data, opt);
}

double BaggingClassifier::predict_proba(std::span<const double> x) const {
  if (trees_.empty()) return 0.5;
  double sum = 0;
  for (const DecisionTree& t : trees_) sum += t.predict_proba(x);
  return sum / static_cast<double>(trees_.size());
}

long BaggingClassifier::total_nodes() const {
  long total = 0;
  for (const DecisionTree& t : trees_) total += t.num_nodes();
  return total;
}

FlatForest FlatForest::build(const BaggingClassifier& clf) {
  FlatForest f;
  int total = 0;
  for (int t = 0; t < clf.num_trees(); ++t) total += clf.tree(t).num_nodes();
  f.feature_.reserve(static_cast<std::size_t>(total));
  f.threshold_.reserve(static_cast<std::size_t>(total));
  f.left_.reserve(static_cast<std::size_t>(total));
  f.right_.reserve(static_cast<std::size_t>(total));
  f.leaf_p_.reserve(static_cast<std::size_t>(total));
  f.feat_pad_.reserve(static_cast<std::size_t>(total));
  f.kids_.reserve(2 * static_cast<std::size_t>(total));
  for (int t = 0; t < clf.num_trees(); ++t) {
    const DecisionTree& tree = clf.tree(t);
    const std::int32_t base = static_cast<std::int32_t>(f.feature_.size());
    f.roots_.push_back(base);
    f.tree_depth_.push_back(tree.depth());
    for (int i = 0; i < tree.num_nodes(); ++i) {
      const TreeNode& n = tree.node(i);
      const std::int32_t self = base + static_cast<std::int32_t>(i);
      f.feature_.push_back(n.feature);
      f.threshold_.push_back(n.threshold);
      f.left_.push_back(n.is_leaf() ? -1 : base + n.left);
      f.right_.push_back(n.is_leaf() ? -1 : base + n.right);
      // Padded mirrors: leaves read feature 0 (their threshold is 0.0)
      // and both children loop back to the leaf, so the level-synchronous
      // kernels can advance every lane unconditionally.
      f.feat_pad_.push_back(n.is_leaf() ? 0 : n.feature);
      f.kids_.push_back(n.is_leaf() ? self : base + n.left);
      f.kids_.push_back(n.is_leaf() ? self : base + n.right);
      const double count = n.pos + n.neg;
      f.leaf_p_.push_back(count > 0 ? n.pos / count : 0.5);
    }
  }
  // BFS-packed mirror for the frontier kernel. Renumber each tree
  // breadth-first so a split's children are adjacent (right = left + 1),
  // which lets the partition step derive both child segments from one
  // stored child id.
  f.packed_.reserve(static_cast<std::size_t>(total));
  f.packed_leafp_.reserve(static_cast<std::size_t>(total));
  std::vector<std::int32_t> order;
  std::vector<std::int32_t> newid;
  for (int t = 0; t < clf.num_trees(); ++t) {
    const DecisionTree& tree = clf.tree(t);
    const std::int32_t base = static_cast<std::int32_t>(f.packed_.size());
    f.packed_roots_.push_back(base);
    order.assign(1, 0);
    newid.assign(static_cast<std::size_t>(tree.num_nodes()), -1);
    newid[0] = 0;
    for (std::size_t q = 0; q < order.size(); ++q) {
      const TreeNode& n = tree.node(order[q]);
      if (!n.is_leaf()) {
        newid[static_cast<std::size_t>(n.left)] =
            static_cast<std::int32_t>(order.size());
        order.push_back(n.left);
        newid[static_cast<std::size_t>(n.right)] =
            static_cast<std::int32_t>(order.size());
        order.push_back(n.right);
      }
    }
    for (std::size_t q = 0; q < order.size(); ++q) {
      const TreeNode& n = tree.node(order[q]);
      PackedNode p;
      if (n.is_leaf()) {
        p.thr = 0.0;
        p.feat = -1;
        p.left = -1;
      } else {
        p.thr = n.threshold;
        p.feat = n.feature;
        p.left = base + newid[static_cast<std::size_t>(n.left)];
      }
      f.packed_.push_back(p);
      const double count = n.pos + n.neg;
      f.packed_leafp_.push_back(count > 0 ? n.pos / count : 0.5);
    }
  }
  return f;
}

double FlatForest::walk(const double* x) const {
  double sum = 0;
  for (const std::int32_t root : roots_) {
    std::int32_t node = root;
    std::int32_t feat = feature_[static_cast<std::size_t>(node)];
    while (feat >= 0) {
      node = x[feat] < threshold_[static_cast<std::size_t>(node)]
                 ? left_[static_cast<std::size_t>(node)]
                 : right_[static_cast<std::size_t>(node)];
      feat = feature_[static_cast<std::size_t>(node)];
    }
    sum += leaf_p_[static_cast<std::size_t>(node)];
  }
  return sum / static_cast<double>(roots_.size());
}

double FlatForest::predict_proba(std::span<const double> x) const {
  if (roots_.empty()) return 0.5;
  return walk(x.data());
}

template <class T>
void FlatForest::batch_walk(const T* rows, int n, int num_features,
                            double* out) const {
  for (int i = 0; i < n; ++i) {
    const T* x = rows + static_cast<std::size_t>(i) * num_features;
    double sum = 0;
    for (const std::int32_t root : roots_) {
      std::int32_t node = root;
      std::int32_t feat = feature_[static_cast<std::size_t>(node)];
      while (feat >= 0) {
        node = static_cast<double>(x[feat]) <
                       threshold_[static_cast<std::size_t>(node)]
                   ? left_[static_cast<std::size_t>(node)]
                   : right_[static_cast<std::size_t>(node)];
        feat = feature_[static_cast<std::size_t>(node)];
      }
      sum += leaf_p_[static_cast<std::size_t>(node)];
    }
    out[i] = sum / static_cast<double>(roots_.size());
  }
}

template <class T>
void FlatForest::tree_block_scalar(std::size_t t, const T* rows,
                                   int num_features, int m,
                                   double* out) const {
  std::int32_t node[kBlock];
  for (int k = 0; k < m; ++k) node[k] = roots_[t];
  // One level per step; every lane moves every step (leaves self-loop).
  // NaN features compare false and go right, exactly like the ternary
  // in walk(). Stop early once no lane moved (all at leaves).
  for (std::int32_t d = tree_depth_[t]; d > 0; --d) {
    bool moved = false;
    for (int k = 0; k < m; ++k) {
      const std::int32_t a = node[k];
      const double x = static_cast<double>(
          rows[static_cast<std::size_t>(k) * num_features +
               feat_pad_[static_cast<std::size_t>(a)]]);
      const std::int32_t next =
          kids_[2 * static_cast<std::size_t>(a) +
                (x < threshold_[static_cast<std::size_t>(a)] ? 0 : 1)];
      moved |= (next != a);
      node[k] = next;
    }
    if (!moved) break;
  }
  for (int k = 0; k < m; ++k) {
    out[k] += leaf_p_[static_cast<std::size_t>(node[k])];
  }
}

template <class T>
void FlatForest::batch_blocked(const T* rows, int n, int num_features,
                               double* out) const {
  // Tree-major: one tree's nodes stay cache-hot while the whole batch
  // advances through it. Each out[i] accumulates leaf probabilities in
  // tree order and divides once at the end — the same summation as the
  // reference walk, so results are bit-identical.
  std::fill_n(out, n, 0.0);
  const std::size_t num_trees = roots_.size();
  for (std::size_t t = 0; t < num_trees; ++t) {
    for (int i = 0; i < n; i += kBlock) {
      tree_block_scalar(t, rows + static_cast<std::size_t>(i) * num_features,
                        num_features, std::min(kBlock, n - i), out + i);
    }
  }
  for (int i = 0; i < n; ++i) out[i] /= static_cast<double>(num_trees);
}

#if defined(REPRO_SIMD_X86)

template <class T>
void FlatForest::tree_block_sse2(std::size_t t, const T* rows,
                                 int num_features, int m, double* out) const {
  std::int32_t node[kBlock];
  const std::int32_t* feat = feat_pad_.data();
  const std::int32_t* kids = kids_.data();
  const double* thr = threshold_.data();
  for (int k = 0; k < m; ++k) node[k] = roots_[t];
  for (std::int32_t d = tree_depth_[t]; d > 0; --d) {
    bool moved = false;
    int k = 0;
    for (; k + 1 < m; k += 2) {
      const std::int32_t a = node[k], b = node[k + 1];
      // Widen features to double first, as the scalar path does; CMPLTPD
      // is the ordered < of the scalar ternary, so NaN lanes produce 0
      // and take the right child.
      const __m128d x = _mm_set_pd(
          static_cast<double>(
              rows[static_cast<std::size_t>(k + 1) * num_features + feat[b]]),
          static_cast<double>(
              rows[static_cast<std::size_t>(k) * num_features + feat[a]]));
      const __m128d th = _mm_set_pd(thr[b], thr[a]);
      const int lt = _mm_movemask_pd(_mm_cmplt_pd(x, th));
      const std::int32_t na = kids[2 * a + ((lt & 1) ^ 1)];
      const std::int32_t nb = kids[2 * b + (((lt >> 1) & 1) ^ 1)];
      moved |= (na != a) | (nb != b);
      node[k] = na;
      node[k + 1] = nb;
    }
    if (k < m) {  // odd tail lane
      const std::int32_t a = node[k];
      const double x = static_cast<double>(
          rows[static_cast<std::size_t>(k) * num_features + feat[a]]);
      const std::int32_t na = kids[2 * a + (x < thr[a] ? 0 : 1)];
      moved |= (na != a);
      node[k] = na;
    }
    if (!moved) break;
  }
  for (int k = 0; k < m; ++k) {
    out[k] += leaf_p_[static_cast<std::size_t>(node[k])];
  }
}

template <class T>
void FlatForest::batch_sse2(const T* rows, int n, int num_features,
                            double* out) const {
  std::fill_n(out, n, 0.0);
  const std::size_t num_trees = roots_.size();
  for (std::size_t t = 0; t < num_trees; ++t) {
    for (int i = 0; i < n; i += kBlock) {
      tree_block_sse2(t, rows + static_cast<std::size_t>(i) * num_features,
                      num_features, std::min(kBlock, n - i), out + i);
    }
  }
  for (int i = 0; i < n; ++i) out[i] /= static_cast<double>(num_trees);
}

template <class T>
void FlatForest::walk_out(const T* rows, int num_features, std::int32_t node,
                          const std::uint32_t* row_ids, std::int32_t count,
                          double* out) const {
  const PackedNode* nd = packed_.data();
  for (std::int32_t j = 0; j < count; ++j) {
    const std::uint32_t r = row_ids[j];
    const T* x = rows + static_cast<std::size_t>(r) * num_features;
    std::int32_t a = node;
    std::int32_t f = nd[a].feat;
    while (f >= 0) {
      a = nd[a].left + (static_cast<double>(x[f]) < nd[a].thr ? 0 : 1);
      f = nd[a].feat;
    }
    out[r] += packed_leafp_[static_cast<std::size_t>(a)];
  }
}

namespace {

/// Row-index segment of the frontier: the rows currently sitting at
/// `node` live at cur[start .. start + len).
struct FrontierSeg {
  std::int32_t node, start, len;
};

/// lane_masks()[k] has all bits set in lanes < k — the
/// maskload/maskstore masks for a partial vector of k rows.
const std::int32_t (&lane_masks())[9][8] {
  static const struct Table {
    std::int32_t m[9][8];
    Table() {
      for (int k = 0; k <= 8; ++k) {
        for (int b = 0; b < 8; ++b) m[k][b] = b < k ? -1 : 0;
      }
    }
  } table;
  return table.m;
}

}  // namespace

// GCC's gather intrinsics expand through _mm256_undefined_pd /
// _mm256_undefined_si256, whose deliberately-uninitialized temporaries
// trip -W(maybe-)uninitialized; the lanes are fully overwritten
// (all-ones mask), so the warnings are noise.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"

// Frontier partition. The per-row scalar walk spends most of its cycles
// on branch mispredicts — split outcomes on scored candidates are close
// to 50/50, so every level of every tree is a coin-flip branch. Instead
// of predicting, partition: the whole batch descends one tree level by
// level as row-index segments, and each node splits its segment
// branch-free with a vector compare + LUT compress. Left-goers pack
// upward from the bottom of the next-level buffer and right-goers pack
// downward from the top (each reservation padded by one vector so a
// full-width compress store's junk lanes land in the pad, never in the
// neighbouring reservation), so both children get contiguous segments
// without a copy. Node data is loaded once per node and broadcast,
// 8 row features are fetched per gather, and segments narrower than one
// vector fall out of the machinery into walk_out. Reordering rows within
// a segment is output-invariant: a row's leaf — and therefore the one
// probability added into out[row] for this tree — depends only on the
// row's own features, and tree order is preserved by the outer loop, so
// out[] sees the exact accumulation order of the reference walk.
template <class T>
__attribute__((target("avx2")))
void FlatForest::frontier_avx2(const T* rows, int n, int num_features,
                               double* out) const {
  if (n < kBlock) {
    // Too narrow to partition; the reference walk is fastest here and
    // bit-identical by contract.
    batch_walk(rows, n, num_features, out);
    return;
  }
  std::fill_n(out, n, 0.0);
  const std::size_t num_trees = packed_roots_.size();
  const auto& lut = common::simd::compress8_table();
  const auto& lanes = lane_masks();
  const PackedNode* nodes = packed_.data();
  // Capacity 3n + slack: per level the bottom (left) region holds at
  // most n rows, and the top (right) region holds at most n rows plus a
  // kBlock pad per split segment — and there are at most n / kBlock of
  // those, since walk_out absorbs anything narrower. thread_local so the
  // hot scoring loop reuses warm buffers instead of paying allocations
  // per batch (each worker has its own set); ident is the read-only row
  // list for the root level, so trees after the first skip the iota.
  static thread_local std::vector<std::uint32_t> cur, nxt, ident;
  static thread_local std::vector<FrontierSeg> scur, snxt;
  const std::size_t cap = 3u * static_cast<std::size_t>(n) + 4 * kBlock;
  if (cur.size() < cap) {
    cur.resize(cap);
    nxt.resize(cap);
  }
  if (ident.size() < static_cast<std::size_t>(n)) {
    ident.resize(static_cast<std::size_t>(n));
    std::iota(ident.begin(), ident.end(), 0u);
  }
  for (std::size_t t = 0; t < num_trees; ++t) {
    const std::uint32_t* lvl = ident.data();
    scur.assign(1, FrontierSeg{packed_roots_[t], 0, n});
    while (!scur.empty()) {
      snxt.clear();
      std::int32_t lbase = 0;
      std::int32_t rbase = static_cast<std::int32_t>(cap);
      for (const FrontierSeg& s : scur) {
        const PackedNode nd = nodes[s.node];
        const std::uint32_t* src = lvl + s.start;
        if (nd.feat < 0) {  // whole segment reached a leaf
          const double p = packed_leafp_[static_cast<std::size_t>(s.node)];
          for (std::int32_t j = 0; j < s.len; ++j) out[src[j]] += p;
          continue;
        }
        std::uint32_t* dst = nxt.data() + lbase;
        const std::int32_t rres = rbase - s.len - kBlock;
        std::uint32_t* rts = nxt.data() + rres;
        rbase = rres;
        std::int32_t nl = 0, nr = 0;
        std::int32_t j = 0;
        const __m256d thr = _mm256_set1_pd(nd.thr);
        const __m128i fofs = _mm_set1_epi32(nd.feat);
        const __m128i nfv = _mm_set1_epi32(num_features);
        for (; j + kBlock <= s.len; j += kBlock) {
          const __m256i r8 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(src + j));
          // x[feat] of each row via gather at index row * nf + feat;
          // float rows widen to double so the compare below is the same
          // double < as every other kernel (_CMP_LT_OQ: NaN goes right).
          const __m128i rlo = _mm256_castsi256_si128(r8);
          const __m128i rhi = _mm256_extracti128_si256(r8, 1);
          const __m128i ilo = _mm_add_epi32(_mm_mullo_epi32(rlo, nfv), fofs);
          const __m128i ihi = _mm_add_epi32(_mm_mullo_epi32(rhi, nfv), fofs);
          __m256d xlo, xhi;
          if constexpr (std::is_same_v<T, double>) {
            xlo = _mm256_i32gather_pd(rows, ilo, 8);
            xhi = _mm256_i32gather_pd(rows, ihi, 8);
          } else {
            xlo = _mm256_cvtps_pd(_mm_i32gather_ps(rows, ilo, 4));
            xhi = _mm256_cvtps_pd(_mm_i32gather_ps(rows, ihi, 4));
          }
          const int mlo =
              _mm256_movemask_pd(_mm256_cmp_pd(xlo, thr, _CMP_LT_OQ));
          const int mhi =
              _mm256_movemask_pd(_mm256_cmp_pd(xhi, thr, _CMP_LT_OQ));
          const int m = mlo | (mhi << 4);
          const int cl = __builtin_popcount(m);
          // lut[m] lists the set lanes of m ascending: permute packs the
          // left-going rows to the front; lut of the complement packs
          // the right-going rows likewise.
          const __m256i lefts = _mm256_permutevar8x32_epi32(
              r8,
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lut[m])));
          const __m256i rights = _mm256_permutevar8x32_epi32(
              r8, _mm256_loadu_si256(
                      reinterpret_cast<const __m256i*>(lut[255 - m])));
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + nl), lefts);
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(rts + nr), rights);
          nl += cl;
          nr += kBlock - cl;
        }
        if (const std::int32_t rem = s.len - j; rem > 0) {
          // Masked tail: load only the live lanes, confine the compare
          // mask to them, and store back with lane-count masks.
          const __m256i r8 = _mm256_maskload_epi32(
              reinterpret_cast<const int*>(src + j),
              _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(lanes[rem])));
          const __m128i rlo = _mm256_castsi256_si128(r8);
          const __m128i rhi = _mm256_extracti128_si256(r8, 1);
          const __m128i ilo = _mm_add_epi32(_mm_mullo_epi32(rlo, nfv), fofs);
          const __m128i ihi = _mm_add_epi32(_mm_mullo_epi32(rhi, nfv), fofs);
          __m256d xlo, xhi;
          if constexpr (std::is_same_v<T, double>) {
            xlo = _mm256_i32gather_pd(rows, ilo, 8);
            xhi = _mm256_i32gather_pd(rows, ihi, 8);
          } else {
            xlo = _mm256_cvtps_pd(_mm_i32gather_ps(rows, ilo, 4));
            xhi = _mm256_cvtps_pd(_mm_i32gather_ps(rows, ihi, 4));
          }
          const int mlo =
              _mm256_movemask_pd(_mm256_cmp_pd(xlo, thr, _CMP_LT_OQ));
          const int mhi =
              _mm256_movemask_pd(_mm256_cmp_pd(xhi, thr, _CMP_LT_OQ));
          const int live_mask = (1 << rem) - 1;
          const int m = (mlo | (mhi << 4)) & live_mask;
          const int cl = __builtin_popcount(m);
          const __m256i lefts = _mm256_permutevar8x32_epi32(
              r8,
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lut[m])));
          const __m256i rights = _mm256_permutevar8x32_epi32(
              r8, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                      lut[(~m) & live_mask])));
          _mm256_maskstore_epi32(
              reinterpret_cast<int*>(dst + nl),
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lanes[cl])),
              lefts);
          _mm256_maskstore_epi32(
              reinterpret_cast<int*>(rts + nr),
              _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(lanes[rem - cl])),
              rights);
          nl += cl;
          nr += rem - cl;
        }
        if (nl >= kBlock) {
          snxt.push_back(FrontierSeg{nd.left, lbase, nl});
        } else if (nl > 0) {
          walk_out(rows, num_features, nd.left, dst, nl, out);
        }
        if (nr >= kBlock) {
          snxt.push_back(FrontierSeg{nd.left + 1, rres, nr});
        } else if (nr > 0) {
          walk_out(rows, num_features, nd.left + 1, rts, nr, out);
        }
        lbase += nl;
      }
      cur.swap(nxt);
      lvl = cur.data();
      scur.swap(snxt);
    }
  }
  for (int i = 0; i < n; ++i) out[i] /= static_cast<double>(num_trees);
}

#pragma GCC diagnostic pop

#endif  // REPRO_SIMD_X86

FlatForest::BatchKernel FlatForest::kernel_for(common::simd::Level level) {
  switch (level) {
    case common::simd::Level::kAvx2:
      return BatchKernel::kAvx2;
    case common::simd::Level::kSse2:
      return BatchKernel::kSse2;
    case common::simd::Level::kScalar:
      break;
  }
  return BatchKernel::kScalar;
}

void FlatForest::predict_batch_kernel(BatchKernel kernel, const double* rows,
                                      int n, int num_features,
                                      double* out) const {
  if (roots_.empty()) {
    for (int i = 0; i < n; ++i) out[i] = 0.5;
    return;
  }
#if defined(REPRO_SIMD_X86)
  if (kernel == BatchKernel::kAvx2 &&
      common::simd::max_supported() < common::simd::Level::kAvx2) {
    kernel = BatchKernel::kSse2;  // requested but not executable here
  }
#else
  if (kernel == BatchKernel::kSse2 || kernel == BatchKernel::kAvx2) {
    kernel = BatchKernel::kBlocked;
  }
#endif
  switch (kernel) {
    case BatchKernel::kScalar:
      batch_walk(rows, n, num_features, out);
      return;
    case BatchKernel::kBlocked:
      batch_blocked(rows, n, num_features, out);
      return;
#if defined(REPRO_SIMD_X86)
    case BatchKernel::kSse2:
      batch_sse2(rows, n, num_features, out);
      return;
    case BatchKernel::kAvx2:
      frontier_avx2(rows, n, num_features, out);
      return;
#endif
    default:
      batch_blocked(rows, n, num_features, out);
      return;
  }
}

void FlatForest::predict_batch_kernel(BatchKernel kernel, const float* rows,
                                      int n, int num_features,
                                      double* out) const {
  if (roots_.empty()) {
    for (int i = 0; i < n; ++i) out[i] = 0.5;
    return;
  }
#if defined(REPRO_SIMD_X86)
  if (kernel == BatchKernel::kAvx2 &&
      common::simd::max_supported() < common::simd::Level::kAvx2) {
    kernel = BatchKernel::kSse2;
  }
#else
  if (kernel == BatchKernel::kSse2 || kernel == BatchKernel::kAvx2) {
    kernel = BatchKernel::kBlocked;
  }
#endif
  switch (kernel) {
    case BatchKernel::kScalar:
      batch_walk(rows, n, num_features, out);
      return;
    case BatchKernel::kBlocked:
      batch_blocked(rows, n, num_features, out);
      return;
#if defined(REPRO_SIMD_X86)
    case BatchKernel::kSse2:
      batch_sse2(rows, n, num_features, out);
      return;
    case BatchKernel::kAvx2:
      frontier_avx2(rows, n, num_features, out);
      return;
#endif
    default:
      batch_blocked(rows, n, num_features, out);
      return;
  }
}

void FlatForest::predict_batch(const double* rows, int n, int num_features,
                               double* out) const {
  predict_batch_kernel(kernel_for(common::simd::active()), rows, n,
                       num_features, out);
}

void FlatForest::predict_batch(const float* rows, int n, int num_features,
                               double* out) const {
  predict_batch_kernel(kernel_for(common::simd::active()), rows, n,
                       num_features, out);
}

}  // namespace repro::ml

#include "ml/ranking.hpp"

#include <algorithm>
#include <cmath>

namespace repro::ml {

namespace {

double entropy2(double pos, double neg) {
  const double n = pos + neg;
  if (n <= 0) return 0.0;
  double h = 0.0;
  if (pos > 0) h -= (pos / n) * std::log2(pos / n);
  if (neg > 0) h -= (neg / n) * std::log2(neg / n);
  return h;
}

}  // namespace

double information_gain(const Dataset& data, int f, int bins) {
  const int n = data.num_rows();
  if (n == 0 || bins < 2) return 0.0;

  std::vector<std::pair<double, int>> vals;
  vals.reserve(static_cast<std::size_t>(n));
  double pos = 0;
  for (int r = 0; r < n; ++r) {
    vals.emplace_back(data.at(r, f), data.label(r));
    pos += data.label(r);
  }
  std::sort(vals.begin(), vals.end());

  const double parent = entropy2(pos, n - pos);
  double child = 0.0;
  // Equal-frequency bins; a bin boundary never splits equal values (they
  // are pushed into the earlier bin), so discretization is well-defined.
  int start = 0;
  for (int b = 0; b < bins && start < n; ++b) {
    int end = std::min<int>(n, (n * (b + 1)) / bins);
    while (end < n && end > start &&
           vals[static_cast<std::size_t>(end)].first ==
               vals[static_cast<std::size_t>(end - 1)].first) {
      ++end;
    }
    if (end <= start) continue;
    double bpos = 0;
    for (int i = start; i < end; ++i) {
      bpos += vals[static_cast<std::size_t>(i)].second;
    }
    const double bn = end - start;
    child += (bn / n) * entropy2(bpos, bn - bpos);
    start = end;
  }
  return std::max(0.0, parent - child);
}

double abs_correlation(const Dataset& data, int f) {
  const int n = data.num_rows();
  if (n < 2) return 0.0;
  double sx = 0, sy = 0;
  for (int r = 0; r < n; ++r) {
    sx += data.at(r, f);
    sy += data.label(r);
  }
  const double mx = sx / n, my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (int r = 0; r < n; ++r) {
    const double dx = data.at(r, f) - mx;
    const double dy = data.label(r) - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return std::abs(sxy / std::sqrt(sxx * syy));
}

double fisher_ratio(const Dataset& data, int f) {
  double n0 = 0, n1 = 0, s0 = 0, s1 = 0;
  for (int r = 0; r < data.num_rows(); ++r) {
    if (data.label(r)) {
      ++n1;
      s1 += data.at(r, f);
    } else {
      ++n0;
      s0 += data.at(r, f);
    }
  }
  if (n0 < 2 || n1 < 2) return 0.0;
  const double m0 = s0 / n0, m1 = s1 / n1;
  double v0 = 0, v1 = 0;
  for (int r = 0; r < data.num_rows(); ++r) {
    const double d = data.at(r, f) - (data.label(r) ? m1 : m0);
    (data.label(r) ? v1 : v0) += d * d;
  }
  v0 /= (n0 - 1);
  v1 /= (n1 - 1);
  if (v0 + v1 <= 0) return 0.0;
  return (m1 - m0) * (m1 - m0) / (v0 + v1);
}

std::vector<FeatureScore> rank_features(const Dataset& data, int bins) {
  std::vector<FeatureScore> out;
  for (int f = 0; f < data.num_features(); ++f) {
    FeatureScore s;
    s.name = data.feature_names()[static_cast<std::size_t>(f)];
    s.info_gain = information_gain(data, f, bins);
    s.abs_corr = abs_correlation(data, f);
    s.fisher = fisher_ratio(data, f);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace repro::ml

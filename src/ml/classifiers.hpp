// Alternative classifiers: logistic regression and Gaussian naive Bayes.
//
// The authors report (SSIII-C / [18]) that tree ensembles beat every other
// classifier they tried on this task - the data are not linearly separable
// and carry heavy outliers. These two standard baselines exist to
// demonstrate that claim (see bench/ablation_classifiers) and to give the
// library a common Classifier interface.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace repro::ml {

/// Minimal polymorphic classifier interface (probability of class 1).
class Classifier {
 public:
  virtual ~Classifier() = default;
  virtual double predict_proba(std::span<const double> x) const = 0;
  int predict(std::span<const double> x, double t = 0.5) const {
    return predict_proba(x) >= t ? 1 : 0;
  }
};

/// L2-regularized logistic regression trained with gradient descent on
/// standardized features.
class LogisticRegression : public Classifier {
 public:
  struct Options {
    int epochs = 200;
    double learning_rate = 0.1;
    double l2 = 1e-4;
    std::uint64_t seed = 1;
  };
  static LogisticRegression train(const Dataset& data, const Options& opt);
  static LogisticRegression train(const Dataset& data) {
    return train(data, Options{});
  }
  double predict_proba(std::span<const double> x) const override;

  const std::vector<double>& weights() const { return w_; }  ///< w_[0]=bias

 private:
  std::vector<double> w_;      // bias + per-feature weights
  std::vector<double> mean_;   // standardization
  std::vector<double> stdev_;
};

/// Gaussian naive Bayes with per-class feature means/variances.
class GaussianNaiveBayes : public Classifier {
 public:
  static GaussianNaiveBayes train(const Dataset& data);
  double predict_proba(std::span<const double> x) const override;

 private:
  double prior1_ = 0.5;
  std::vector<double> mean_[2], var_[2];
};

}  // namespace repro::ml

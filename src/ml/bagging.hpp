// Bagging meta-classifier with soft voting (paper Eqs. (1)-(3)).
//
// Each base tree is trained on a bootstrap resample of the training set.
// At inference, tree i contributes p_i = P_i/(P_i+N_i) from the counts of
// training samples in the reached leaf, and the ensemble output is the
// average p = sum(p_i)/n. The binary answer applies a threshold t (0.5 by
// default); the paper's LoC-size control generalizes t, which callers do by
// using predict_proba directly.
//
// Two factory presets mirror Weka defaults:
//   * bagged REPTrees (10 trees)      - the paper's fast configuration
//   * RandomForest (100 RandomTrees)  - the baseline from the authors' own
//                                       earlier work [18]
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/simd.hpp"
#include "common/status.hpp"
#include "ml/tree.hpp"

namespace repro::ml {

struct BaggingOptions {
  int num_trees = 10;
  TreeOptions tree{.min_leaf = 2,
                   .max_depth = -1,
                   .num_random_features = 0,
                   .reduced_error_pruning = true,
                   .num_folds = 3};
  std::uint64_t seed = 1;

  /// Weka-default Bagging of 10 REPTrees.
  static BaggingOptions reptree_bagging(std::uint64_t seed = 1) {
    BaggingOptions o;
    o.seed = seed;
    return o;
  }
  /// Weka-default RandomForest: 100 unpruned RandomTrees considering
  /// ceil(log2(F)) + 1 random features per split.
  static BaggingOptions random_forest(int num_features,
                                      std::uint64_t seed = 1);
};

class BaggingClassifier {
 public:
  /// Trains the ensemble. Trees are independent: tree i draws its
  /// bootstrap sample and grows from an RNG seeded with
  /// common::derive_seed(opt.seed, i), so the model is a pure function of
  /// (data, opt) and bit-identical at any thread count. Training runs on
  /// the global thread pool (REPRO_THREADS / set_global_threads).
  ///
  /// Throws std::invalid_argument on an empty dataset; callers on
  /// fallible paths use train_checked instead.
  static BaggingClassifier train(const Dataset& data,
                                 const BaggingOptions& opt);

  /// train with Status-style error propagation: an empty dataset is a
  /// reportable kInvalidArgument (bootstrap resampling has nothing to
  /// draw from — the old code silently "sampled" row 0 of the empty
  /// row range), not a crash or a silently-degenerate model.
  static common::StatusOr<BaggingClassifier> train_checked(
      const Dataset& data, const BaggingOptions& opt);

  /// Rebuilds an ensemble from stored trees (model deserialization;
  /// see ml/serialize.hpp).
  static BaggingClassifier from_trees(std::vector<DecisionTree> trees) {
    BaggingClassifier clf;
    clf.trees_ = std::move(trees);
    return clf;
  }

  /// Soft-voting probability p(x) (Eq. (3)).
  double predict_proba(std::span<const double> x) const;
  /// Hard answer at threshold t (Eq. (2)).
  int predict(std::span<const double> x, double t = 0.5) const {
    return predict_proba(x) >= t ? 1 : 0;
  }

  int num_trees() const { return static_cast<int>(trees_.size()); }
  const DecisionTree& tree(int i) const {
    return trees_[static_cast<std::size_t>(i)];
  }
  /// Total node count across trees (model-size metric).
  long total_nodes() const;

 private:
  std::vector<DecisionTree> trees_;
};

/// A trained ensemble flattened for batch inference.
///
/// All trees' nodes live in contiguous structure-of-arrays storage
/// (feature index, threshold, child offsets, leaf probability), child
/// indices rebased to the global node array. Compared with walking
/// DecisionTree nodes (56-byte AoS records whose pos/neg counts are dead
/// weight at inference), the flat layout touches ~3x fewer cache lines
/// per traversal and needs no per-tree indirection.
///
/// predict_proba / predict_batch reproduce
/// BaggingClassifier::predict_proba bit-for-bit: leaf probabilities are
/// precomputed with the same pos/(pos+neg) expression and summed in the
/// same tree order.
///
/// Batch inference is tree-major: the outer loop walks one tree at a
/// time over the whole batch, so that tree's nodes stay cache-hot for
/// every row instead of the full forest streaming through cache once per
/// row. Two branch-free strategies sit behind the kernel dispatch:
///
///  * kBlocked / kSse2 — level-synchronous blocks: 8 rows advance one
///    level per step over padded SoA arrays in which leaves self-loop
///    (kids_[2i] == kids_[2i+1] == i), so the inner loop has no per-lane
///    "am I at a leaf yet" branch.
///  * kAvx2 — frontier partition: the whole batch descends the tree
///    level by level as row-index segments, one segment per reached
///    node. Each node's threshold and feature are loaded once per
///    *node* (not once per row), the segment is split left/right with a
///    vector compare + compress-store, and segments narrower than one
///    vector walk out to their leaves row by row. On random rows the
///    per-row scalar walk is branch-mispredict-bound (every split is
///    ~50/50), which partitioning sidesteps entirely.
///
/// Every kernel accumulates each out[i]'s leaf probabilities in tree
/// order and divides once at the end — the exact same double compares
/// (NaN goes right) and the same summation order as the reference walk,
/// so outputs are bit-identical at every dispatch level
/// (common::simd::active()); the kernels differ only in how the work is
/// scheduled, never in arithmetic.
class FlatForest {
 public:
  /// Batch-traversal kernels, selectable for benches and differential
  /// tests; predict_batch dispatches on common::simd::active().
  enum class BatchKernel {
    kScalar,   ///< reference one-row-at-a-time walk (the pre-SIMD path)
    kBlocked,  ///< branch-free level-synchronous blocks of 8 rows
    kSse2,     ///< kBlocked with SSE2 paired compares
    kAvx2,     ///< frontier partition with AVX2 compress-stores
  };
  /// Rows per block of the blocked/SIMD kernels.
  static constexpr int kBlock = 8;

  FlatForest() = default;
  static FlatForest build(const BaggingClassifier& clf);

  bool empty() const { return roots_.empty(); }
  int num_trees() const { return static_cast<int>(roots_.size()); }
  int num_nodes() const { return static_cast<int>(feature_.size()); }

  /// Identical to BaggingClassifier::predict_proba on the source model.
  double predict_proba(std::span<const double> x) const;

  /// Scores n rows of `num_features` doubles each (row-major, contiguous);
  /// out[i] = predict_proba(row i). The hot path of candidate scoring.
  /// Dispatches to the strongest kernel of common::simd::active().
  void predict_batch(const double* rows, int n, int num_features,
                     double* out) const;

  /// Float-row variant for bandwidth-bound callers (micro-benches). Rows
  /// are widened to double per lookup, so thresholds compare exactly as
  /// in the double path only when the features are float-representable.
  void predict_batch(const float* rows, int n, int num_features,
                     double* out) const;

  /// predict_batch through one specific kernel. SIMD kernels the build
  /// or CPU lacks fall back to kBlocked (same outputs by contract).
  void predict_batch_kernel(BatchKernel kernel, const double* rows, int n,
                            int num_features, double* out) const;
  void predict_batch_kernel(BatchKernel kernel, const float* rows, int n,
                            int num_features, double* out) const;

  /// The kernel predict_batch uses at a given dispatch level.
  static BatchKernel kernel_for(common::simd::Level level);

 private:
  double walk(const double* x) const;

  template <class T>
  void batch_walk(const T* rows, int n, int num_features, double* out) const;
  /// Advances one block of m <= kBlock rows through tree `t` and adds the
  /// reached leaf probabilities into out[0..m) — the per-(tree, block)
  /// step all tree-major kernels are built from.
  template <class T>
  void tree_block_scalar(std::size_t t, const T* rows, int num_features,
                         int m, double* out) const;
  template <class T>
  void batch_blocked(const T* rows, int n, int num_features,
                     double* out) const;
#if defined(REPRO_SIMD_X86)
  template <class T>
  void tree_block_sse2(std::size_t t, const T* rows, int num_features, int m,
                       double* out) const;
  template <class T>
  void batch_sse2(const T* rows, int n, int num_features, double* out) const;
  /// Finishes `count` rows of the frontier kernel one by one: walks each
  /// from `node` to its leaf and adds the leaf probability into out[row].
  template <class T>
  void walk_out(const T* rows, int num_features, std::int32_t node,
                const std::uint32_t* row_ids, std::int32_t count,
                double* out) const;
  template <class T>
  void frontier_avx2(const T* rows, int n, int num_features,
                     double* out) const;
#endif

  // SoA node storage; index i of each array describes global node i.
  std::vector<std::int32_t> feature_;    ///< -1 for leaves
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<double> leaf_p_;           ///< pos/(pos+neg), 0.5 if empty
  std::vector<std::int32_t> roots_;      ///< root node id per tree

  // Padded mirrors for branch-free level-synchronous traversal: leaves
  // carry feature 0 (their threshold stays 0.0; the compare result is
  // irrelevant because both children point back at the leaf itself).
  std::vector<std::int32_t> feat_pad_;   ///< feature, 0 for leaves
  std::vector<std::int32_t> kids_;       ///< [2i]=left, [2i+1]=right; leaves self-loop
  std::vector<std::int32_t> tree_depth_; ///< max root-to-leaf edges per tree

  // BFS-packed mirror for the frontier kernel: one 16-byte record per
  // node, numbered breadth-first so siblings are adjacent and the right
  // child is implicitly left + 1.
  struct alignas(16) PackedNode {
    double thr;
    std::int32_t feat;  ///< -1 for leaves
    std::int32_t left;  ///< BFS id of the left child; right is left + 1
  };
  std::vector<PackedNode> packed_;
  std::vector<double> packed_leafp_;       ///< leaf_p_ in BFS numbering
  std::vector<std::int32_t> packed_roots_; ///< BFS root id per tree
};

}  // namespace repro::ml

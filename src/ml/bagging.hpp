// Bagging meta-classifier with soft voting (paper Eqs. (1)-(3)).
//
// Each base tree is trained on a bootstrap resample of the training set.
// At inference, tree i contributes p_i = P_i/(P_i+N_i) from the counts of
// training samples in the reached leaf, and the ensemble output is the
// average p = sum(p_i)/n. The binary answer applies a threshold t (0.5 by
// default); the paper's LoC-size control generalizes t, which callers do by
// using predict_proba directly.
//
// Two factory presets mirror Weka defaults:
//   * bagged REPTrees (10 trees)      - the paper's fast configuration
//   * RandomForest (100 RandomTrees)  - the baseline from the authors' own
//                                       earlier work [18]
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/tree.hpp"

namespace repro::ml {

struct BaggingOptions {
  int num_trees = 10;
  TreeOptions tree{.min_leaf = 2,
                   .max_depth = -1,
                   .num_random_features = 0,
                   .reduced_error_pruning = true,
                   .num_folds = 3};
  std::uint64_t seed = 1;

  /// Weka-default Bagging of 10 REPTrees.
  static BaggingOptions reptree_bagging(std::uint64_t seed = 1) {
    BaggingOptions o;
    o.seed = seed;
    return o;
  }
  /// Weka-default RandomForest: 100 unpruned RandomTrees considering
  /// ceil(log2(F)) + 1 random features per split.
  static BaggingOptions random_forest(int num_features,
                                      std::uint64_t seed = 1);
};

class BaggingClassifier {
 public:
  /// Trains the ensemble. Trees are independent: tree i draws its
  /// bootstrap sample and grows from an RNG seeded with
  /// common::derive_seed(opt.seed, i), so the model is a pure function of
  /// (data, opt) and bit-identical at any thread count. Training runs on
  /// the global thread pool (REPRO_THREADS / set_global_threads).
  static BaggingClassifier train(const Dataset& data,
                                 const BaggingOptions& opt);

  /// Rebuilds an ensemble from stored trees (model deserialization;
  /// see ml/serialize.hpp).
  static BaggingClassifier from_trees(std::vector<DecisionTree> trees) {
    BaggingClassifier clf;
    clf.trees_ = std::move(trees);
    return clf;
  }

  /// Soft-voting probability p(x) (Eq. (3)).
  double predict_proba(std::span<const double> x) const;
  /// Hard answer at threshold t (Eq. (2)).
  int predict(std::span<const double> x, double t = 0.5) const {
    return predict_proba(x) >= t ? 1 : 0;
  }

  int num_trees() const { return static_cast<int>(trees_.size()); }
  const DecisionTree& tree(int i) const {
    return trees_[static_cast<std::size_t>(i)];
  }
  /// Total node count across trees (model-size metric).
  long total_nodes() const;

 private:
  std::vector<DecisionTree> trees_;
};

/// A trained ensemble flattened for batch inference.
///
/// All trees' nodes live in contiguous structure-of-arrays storage
/// (feature index, threshold, child offsets, leaf probability), child
/// indices rebased to the global node array. Compared with walking
/// DecisionTree nodes (56-byte AoS records whose pos/neg counts are dead
/// weight at inference), the flat layout touches ~3x fewer cache lines
/// per traversal and needs no per-tree indirection.
///
/// predict_proba / predict_batch reproduce
/// BaggingClassifier::predict_proba bit-for-bit: leaf probabilities are
/// precomputed with the same pos/(pos+neg) expression and summed in the
/// same tree order.
class FlatForest {
 public:
  FlatForest() = default;
  static FlatForest build(const BaggingClassifier& clf);

  bool empty() const { return roots_.empty(); }
  int num_trees() const { return static_cast<int>(roots_.size()); }
  int num_nodes() const { return static_cast<int>(feature_.size()); }

  /// Identical to BaggingClassifier::predict_proba on the source model.
  double predict_proba(std::span<const double> x) const;

  /// Scores n rows of `num_features` doubles each (row-major, contiguous);
  /// out[i] = predict_proba(row i). The hot path of candidate scoring.
  void predict_batch(const double* rows, int n, int num_features,
                     double* out) const;

  /// Float-row variant for bandwidth-bound callers (micro-benches). Rows
  /// are widened to double per lookup, so thresholds compare exactly as
  /// in the double path only when the features are float-representable.
  void predict_batch(const float* rows, int n, int num_features,
                     double* out) const;

 private:
  double walk(const double* x) const;

  // SoA node storage; index i of each array describes global node i.
  std::vector<std::int32_t> feature_;    ///< -1 for leaves
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<double> leaf_p_;           ///< pos/(pos+neg), 0.5 if empty
  std::vector<std::int32_t> roots_;      ///< root node id per tree
};

}  // namespace repro::ml

// Bagging meta-classifier with soft voting (paper Eqs. (1)-(3)).
//
// Each base tree is trained on a bootstrap resample of the training set.
// At inference, tree i contributes p_i = P_i/(P_i+N_i) from the counts of
// training samples in the reached leaf, and the ensemble output is the
// average p = sum(p_i)/n. The binary answer applies a threshold t (0.5 by
// default); the paper's LoC-size control generalizes t, which callers do by
// using predict_proba directly.
//
// Two factory presets mirror Weka defaults:
//   * bagged REPTrees (10 trees)      - the paper's fast configuration
//   * RandomForest (100 RandomTrees)  - the baseline from the authors' own
//                                       earlier work [18]
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/tree.hpp"

namespace repro::ml {

struct BaggingOptions {
  int num_trees = 10;
  TreeOptions tree{.min_leaf = 2,
                   .max_depth = -1,
                   .num_random_features = 0,
                   .reduced_error_pruning = true,
                   .num_folds = 3};
  std::uint64_t seed = 1;

  /// Weka-default Bagging of 10 REPTrees.
  static BaggingOptions reptree_bagging(std::uint64_t seed = 1) {
    BaggingOptions o;
    o.seed = seed;
    return o;
  }
  /// Weka-default RandomForest: 100 unpruned RandomTrees considering
  /// ceil(log2(F)) + 1 random features per split.
  static BaggingOptions random_forest(int num_features,
                                      std::uint64_t seed = 1);
};

class BaggingClassifier {
 public:
  static BaggingClassifier train(const Dataset& data,
                                 const BaggingOptions& opt);

  /// Soft-voting probability p(x) (Eq. (3)).
  double predict_proba(std::span<const double> x) const;
  /// Hard answer at threshold t (Eq. (2)).
  int predict(std::span<const double> x, double t = 0.5) const {
    return predict_proba(x) >= t ? 1 : 0;
  }

  int num_trees() const { return static_cast<int>(trees_.size()); }
  const DecisionTree& tree(int i) const {
    return trees_[static_cast<std::size_t>(i)];
  }
  /// Total node count across trees (model-size metric).
  long total_nodes() const;

 private:
  std::vector<DecisionTree> trees_;
};

}  // namespace repro::ml

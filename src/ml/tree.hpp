// Decision-tree learners.
//
// Two base classifiers, mirroring the Weka models the paper uses:
//   * RandomTree - randomized tree: at each node only a random subset of
//     features is considered; grown to purity, no pruning. The base
//     classifier of RandomForest.
//   * REPTree  - entropy-split tree with Reduced Error Pruning: the training
//     set is split into a grow set and a prune set (1/num_folds held out,
//     Weka default 3 folds); after growing, subtrees whose removal does not
//     hurt prune-set error are collapsed. Smaller and better-generalizing,
//     which is exactly why the paper swaps it in for scalability.
//
// Leaves store (positive, negative) training counts backfitted from the
// full training set, so predict_proba() returns P/(P+N) exactly as Eq. (1)
// of the paper requires for soft voting.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace repro::ml {

struct TreeOptions {
  int min_leaf = 2;       ///< minimum samples per leaf (Weka minNum)
  int max_depth = -1;     ///< -1: unlimited
  /// 0: consider every feature at each split (REPTree behaviour);
  /// k > 0: consider k random features (RandomTree behaviour).
  int num_random_features = 0;
  bool reduced_error_pruning = false;
  int num_folds = 3;      ///< prune set = 1/num_folds of the rows
};

struct TreeNode {
  int feature = -1;        ///< -1 for leaves
  double threshold = 0.0;  ///< go left if x[feature] < threshold
  int left = -1;
  int right = -1;
  double pos = 0;          ///< backfitted positive training count
  double neg = 0;          ///< backfitted negative training count

  bool is_leaf() const { return feature < 0; }
};

/// Reusable training scratch. Growing one tree needs half a dozen
/// temporary vectors (row ids, grow/prune partitions, per-node sorted
/// (value, label) pairs, candidate feature lists); allocating them fresh
/// per tree — worse, per *node* for the split-finding buffers — made the
/// allocator the contention point of parallel ensemble training. A
/// TreeScratch owns all of them and is reused across trees; ensemble
/// trainers keep one instance per worker thread (bagging.cpp), so the
/// hot loop allocates only when a tree outgrows every previous tree on
/// that worker. Contents are fully overwritten on every use — reuse
/// cannot leak state between trees, and results are bit-identical with
/// or without a shared scratch.
struct TreeScratch {
  std::vector<int> rows;        ///< the tree's training row ids
  std::vector<int> grow;        ///< grow partition (REP holds out prune)
  std::vector<int> prune;       ///< held-out prune rows
  std::vector<int> feats;       ///< candidate features of the current node
  std::vector<int> feat_pool;   ///< all feature ids, for random subsets
  std::vector<std::pair<double, int>> vals;  ///< (value, label) sort buffer
  std::vector<long> prune_pos;  ///< per-node prune-set class counts
  std::vector<long> prune_neg;
  std::vector<int> sample;      ///< bootstrap resample ids (bagging)
};

class DecisionTree {
 public:
  /// Trains a tree on the given rows of `data` (all rows if `rows` empty).
  static DecisionTree train(const Dataset& data, const TreeOptions& opt,
                            std::mt19937_64& rng,
                            std::span<const int> rows = {});

  /// train with caller-provided scratch buffers (see TreeScratch); the
  /// result is bit-identical to the scratch-free overload.
  static DecisionTree train(const Dataset& data, const TreeOptions& opt,
                            std::mt19937_64& rng, std::span<const int> rows,
                            TreeScratch& scratch);

  /// Rebuilds a tree from stored nodes (model deserialization). The
  /// caller vouches that child indices are in range and the node at
  /// index 0 is the root; ml::load_bagging validates both before
  /// calling.
  static DecisionTree from_nodes(std::vector<TreeNode> nodes) {
    DecisionTree t;
    t.nodes_ = std::move(nodes);
    return t;
  }

  /// P(positive) = pos/(pos+neg) of the reached leaf (Eq. (1)).
  double predict_proba(std::span<const double> x) const;
  /// Hard 0/1 prediction at the 0.5 threshold.
  int predict(std::span<const double> x) const {
    return predict_proba(x) >= 0.5 ? 1 : 0;
  }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_leaves() const;
  int depth() const;
  const TreeNode& node(int i) const {
    return nodes_[static_cast<std::size_t>(i)];
  }

 private:
  int leaf_of(std::span<const double> x) const;

  friend class TreeBuilder;
  std::vector<TreeNode> nodes_;  // nodes_[0] is the root
};

}  // namespace repro::ml

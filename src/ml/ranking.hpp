// Feature-importance statistics used in the paper's Fig. 7:
//   * information gain of a (discretized) feature w.r.t. the class label,
//   * absolute Pearson correlation coefficient with the label,
//   * Fisher's discriminant ratio (class separability).
#pragma once

#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace repro::ml {

/// Information gain of feature `f` after equal-frequency discretization
/// into `bins` bins (mirrors Weka's InfoGainAttributeEval closely enough
/// for ranking purposes).
double information_gain(const Dataset& data, int f, int bins = 10);

/// |Pearson correlation| between feature `f` and the 0/1 label.
double abs_correlation(const Dataset& data, int f);

/// Fisher's discriminant ratio (mu1 - mu0)^2 / (s0^2 + s1^2) of feature `f`.
double fisher_ratio(const Dataset& data, int f);

struct FeatureScore {
  std::string name;
  double info_gain = 0;
  double abs_corr = 0;
  double fisher = 0;
};

/// All three metrics for every feature, in dataset feature order.
std::vector<FeatureScore> rank_features(const Dataset& data, int bins = 10);

}  // namespace repro::ml

// Flat dataset container for binary classification.
#pragma once

#include <cassert>
#include <span>
#include <string>
#include <vector>

namespace repro::ml {

/// A dense dataset: rows of double features plus 0/1 labels.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names)
      : names_(std::move(feature_names)) {}

  int num_features() const { return static_cast<int>(names_.size()); }
  int num_rows() const { return static_cast<int>(labels_.size()); }
  const std::vector<std::string>& feature_names() const { return names_; }

  void add_row(std::span<const double> values, int label) {
    assert(static_cast<int>(values.size()) == num_features());
    assert(label == 0 || label == 1);
    values_.insert(values_.end(), values.begin(), values.end());
    labels_.push_back(label);
  }

  double at(int row, int col) const {
    return values_[static_cast<std::size_t>(row) * num_features() + col];
  }
  std::span<const double> row(int r) const {
    return {values_.data() + static_cast<std::size_t>(r) * num_features(),
            static_cast<std::size_t>(num_features())};
  }
  int label(int r) const { return labels_[static_cast<std::size_t>(r)]; }

  int num_positive() const {
    int n = 0;
    for (int l : labels_) n += l;
    return n;
  }
  int num_negative() const { return num_rows() - num_positive(); }

  /// Appends all rows of `other` (same schema).
  void append(const Dataset& other) {
    assert(other.num_features() == num_features());
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
    labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
  }

 private:
  std::vector<std::string> names_;
  std::vector<double> values_;
  std::vector<int> labels_;
};

}  // namespace repro::ml

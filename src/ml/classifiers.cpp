#include "ml/classifiers.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace repro::ml {

namespace {

double sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

LogisticRegression LogisticRegression::train(const Dataset& data,
                                             const Options& opt) {
  const int n = data.num_rows(), f = data.num_features();
  if (n == 0) throw std::invalid_argument("empty training set");

  LogisticRegression lr;
  lr.mean_.assign(static_cast<std::size_t>(f), 0.0);
  lr.stdev_.assign(static_cast<std::size_t>(f), 1.0);
  for (int j = 0; j < f; ++j) {
    double s = 0;
    for (int r = 0; r < n; ++r) s += data.at(r, j);
    lr.mean_[static_cast<std::size_t>(j)] = s / n;
    double v = 0;
    for (int r = 0; r < n; ++r) {
      const double d = data.at(r, j) - lr.mean_[static_cast<std::size_t>(j)];
      v += d * d;
    }
    lr.stdev_[static_cast<std::size_t>(j)] =
        v > 0 ? std::sqrt(v / n) : 1.0;
  }

  lr.w_.assign(static_cast<std::size_t>(f) + 1, 0.0);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::mt19937_64 rng(opt.seed);

  std::vector<double> x(static_cast<std::size_t>(f));
  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    const double eta = opt.learning_rate / (1.0 + 0.05 * epoch);
    for (int r : order) {
      for (int j = 0; j < f; ++j) {
        x[static_cast<std::size_t>(j)] =
            (data.at(r, j) - lr.mean_[static_cast<std::size_t>(j)]) /
            lr.stdev_[static_cast<std::size_t>(j)];
      }
      double z = lr.w_[0];
      for (int j = 0; j < f; ++j) {
        z += lr.w_[static_cast<std::size_t>(j) + 1] *
             x[static_cast<std::size_t>(j)];
      }
      const double err = sigmoid(z) - data.label(r);
      lr.w_[0] -= eta * err;
      for (int j = 0; j < f; ++j) {
        auto& w = lr.w_[static_cast<std::size_t>(j) + 1];
        w -= eta * (err * x[static_cast<std::size_t>(j)] + opt.l2 * w);
      }
    }
  }
  return lr;
}

double LogisticRegression::predict_proba(std::span<const double> x) const {
  double z = w_[0];
  for (std::size_t j = 0; j + 1 < w_.size(); ++j) {
    z += w_[j + 1] * (x[j] - mean_[j]) / stdev_[j];
  }
  return sigmoid(z);
}

GaussianNaiveBayes GaussianNaiveBayes::train(const Dataset& data) {
  const int n = data.num_rows(), f = data.num_features();
  if (n == 0) throw std::invalid_argument("empty training set");
  GaussianNaiveBayes nb;
  int count[2] = {0, 0};
  for (int c : {0, 1}) {
    nb.mean_[c].assign(static_cast<std::size_t>(f), 0.0);
    nb.var_[c].assign(static_cast<std::size_t>(f), 0.0);
  }
  for (int r = 0; r < n; ++r) {
    const int c = data.label(r);
    ++count[c];
    for (int j = 0; j < f; ++j) {
      nb.mean_[c][static_cast<std::size_t>(j)] += data.at(r, j);
    }
  }
  for (int c : {0, 1}) {
    for (int j = 0; j < f; ++j) {
      nb.mean_[c][static_cast<std::size_t>(j)] /= std::max(1, count[c]);
    }
  }
  for (int r = 0; r < n; ++r) {
    const int c = data.label(r);
    for (int j = 0; j < f; ++j) {
      const double d =
          data.at(r, j) - nb.mean_[c][static_cast<std::size_t>(j)];
      nb.var_[c][static_cast<std::size_t>(j)] += d * d;
    }
  }
  for (int c : {0, 1}) {
    for (int j = 0; j < f; ++j) {
      auto& v = nb.var_[c][static_cast<std::size_t>(j)];
      v = v / std::max(1, count[c] - 1) + 1e-9;  // variance smoothing
    }
  }
  nb.prior1_ = static_cast<double>(count[1]) / n;
  return nb;
}

double GaussianNaiveBayes::predict_proba(std::span<const double> x) const {
  double log_odds = std::log(std::max(1e-12, prior1_)) -
                    std::log(std::max(1e-12, 1.0 - prior1_));
  for (std::size_t j = 0; j < x.size(); ++j) {
    for (int c : {1, 0}) {
      const double d = x[j] - mean_[c][j];
      const double ll =
          -0.5 * (std::log(2 * M_PI * var_[c][j]) + d * d / var_[c][j]);
      log_odds += (c == 1) ? ll : -ll;
    }
  }
  return sigmoid(log_odds);
}

}  // namespace repro::ml

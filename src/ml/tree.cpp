#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace repro::ml {

namespace {

double entropy(double pos, double neg) {
  const double n = pos + neg;
  if (n <= 0) return 0.0;
  double h = 0.0;
  if (pos > 0) h -= (pos / n) * std::log2(pos / n);
  if (neg > 0) h -= (neg / n) * std::log2(neg / n);
  return h;
}

}  // namespace

class TreeBuilder {
 public:
  TreeBuilder(const Dataset& data, const TreeOptions& opt,
              std::mt19937_64& rng, TreeScratch& scratch)
      : data_(data), opt_(opt), rng_(rng), s_(scratch) {}

  DecisionTree build(std::span<const int> rows_in) {
    std::vector<int>& rows = s_.rows;
    if (rows_in.empty()) {
      rows.resize(static_cast<std::size_t>(data_.num_rows()));
      std::iota(rows.begin(), rows.end(), 0);
    } else {
      rows.assign(rows_in.begin(), rows_in.end());
    }

    DecisionTree tree;
    std::vector<int>& grow = s_.grow;
    std::vector<int>& prune = s_.prune;
    grow.assign(rows.begin(), rows.end());
    prune.clear();
    if (opt_.reduced_error_pruning && opt_.num_folds >= 2 &&
        static_cast<int>(rows.size()) >= 2 * opt_.num_folds) {
      std::shuffle(grow.begin(), grow.end(), rng_);
      const std::size_t n_prune = grow.size() / static_cast<std::size_t>(opt_.num_folds);
      prune.assign(grow.end() - static_cast<std::ptrdiff_t>(n_prune), grow.end());
      grow.resize(grow.size() - n_prune);
    }

    nodes_ = &tree.nodes_;
    build_node(grow, 0, static_cast<int>(grow.size()), 0);

    if (!prune.empty()) {
      // Route prune rows; collect per-node prune class counts.
      s_.prune_pos.assign(tree.nodes_.size(), 0);
      s_.prune_neg.assign(tree.nodes_.size(), 0);
      for (int r : prune) route_prune(tree, 0, r);
      do_prune(tree, 0);
    }

    // Backfit counts from the complete training set (grow + prune).
    for (TreeNode& n : tree.nodes_) {
      n.pos = 0;
      n.neg = 0;
    }
    for (int r : rows) backfit(tree, 0, r);

    nodes_ = nullptr;
    return tree;
  }

 private:
  /// Builds the subtree for rows [lo, hi) of rows_ and returns its node id.
  int build_node(std::vector<int>& rows, int lo, int hi, int depth) {
    const int id = static_cast<int>(nodes_->size());
    nodes_->push_back(TreeNode{});

    double pos = 0, neg = 0;
    for (int i = lo; i < hi; ++i) {
      (data_.label(rows[static_cast<std::size_t>(i)]) ? pos : neg) += 1;
    }
    (*nodes_)[static_cast<std::size_t>(id)].pos = pos;
    (*nodes_)[static_cast<std::size_t>(id)].neg = neg;

    const int n = hi - lo;
    const bool depth_ok = (opt_.max_depth < 0 || depth < opt_.max_depth);
    if (pos == 0 || neg == 0 || n < 2 * opt_.min_leaf || !depth_ok) {
      return id;  // leaf
    }

    // Candidate features. The scratch buffers are safe to share down
    // the recursion: a node is completely done with feats/vals before it
    // recurses into its children.
    std::vector<int>& feats = s_.feats;
    if (opt_.num_random_features > 0 &&
        opt_.num_random_features < data_.num_features()) {
      std::vector<int>& all = s_.feat_pool;
      all.resize(static_cast<std::size_t>(data_.num_features()));
      std::iota(all.begin(), all.end(), 0);
      std::shuffle(all.begin(), all.end(), rng_);
      feats.assign(all.begin(), all.begin() + opt_.num_random_features);
    } else {
      feats.resize(static_cast<std::size_t>(data_.num_features()));
      std::iota(feats.begin(), feats.end(), 0);
    }

    const double parent_h = entropy(pos, neg);
    int best_f = -1;
    double best_t = 0, best_gain = 1e-9;

    std::vector<std::pair<double, int>>& vals = s_.vals;  // (value, label)
    for (int f : feats) {
      vals.clear();
      for (int i = lo; i < hi; ++i) {
        const int r = rows[static_cast<std::size_t>(i)];
        vals.emplace_back(data_.at(r, f), data_.label(r));
      }
      std::sort(vals.begin(), vals.end());
      double lp = 0, ln = 0;
      for (int i = 0; i + 1 < n; ++i) {
        (vals[static_cast<std::size_t>(i)].second ? lp : ln) += 1;
        if (vals[static_cast<std::size_t>(i)].first ==
            vals[static_cast<std::size_t>(i + 1)].first) {
          continue;  // can only split between distinct values
        }
        const int nl = i + 1, nr = n - nl;
        if (nl < opt_.min_leaf || nr < opt_.min_leaf) continue;
        const double rp = pos - lp, rn = neg - ln;
        const double gain = parent_h - (nl * entropy(lp, ln) +
                                        nr * entropy(rp, rn)) / n;
        if (gain > best_gain) {
          best_gain = gain;
          best_f = f;
          best_t = (vals[static_cast<std::size_t>(i)].first +
                    vals[static_cast<std::size_t>(i + 1)].first) / 2.0;
        }
      }
    }

    if (best_f < 0) return id;  // no useful split

    // Partition rows in place: < threshold to the left.
    int mid = lo;
    for (int i = lo; i < hi; ++i) {
      if (data_.at(rows[static_cast<std::size_t>(i)], best_f) < best_t) {
        std::swap(rows[static_cast<std::size_t>(i)],
                  rows[static_cast<std::size_t>(mid)]);
        ++mid;
      }
    }
    if (mid == lo || mid == hi) return id;  // numerically degenerate

    (*nodes_)[static_cast<std::size_t>(id)].feature = best_f;
    (*nodes_)[static_cast<std::size_t>(id)].threshold = best_t;
    const int left = build_node(rows, lo, mid, depth + 1);
    (*nodes_)[static_cast<std::size_t>(id)].left = left;
    const int right = build_node(rows, mid, hi, depth + 1);
    (*nodes_)[static_cast<std::size_t>(id)].right = right;
    return id;
  }

  void route_prune(const DecisionTree& tree, int node, int row) {
    const TreeNode& n = tree.nodes_[static_cast<std::size_t>(node)];
    (data_.label(row) ? s_.prune_pos
                      : s_.prune_neg)[static_cast<std::size_t>(node)] += 1;
    if (n.is_leaf()) return;
    const int next =
        data_.at(row, n.feature) < n.threshold ? n.left : n.right;
    route_prune(tree, next, row);
  }

  /// Returns the prune-set error of the (possibly collapsed) subtree.
  long do_prune(DecisionTree& tree, int node) {
    TreeNode& n = tree.nodes_[static_cast<std::size_t>(node)];
    // Error if this node were a leaf predicting its grow-majority class.
    const int pred = n.pos >= n.neg ? 1 : 0;
    const long leaf_err = pred ? s_.prune_neg[static_cast<std::size_t>(node)]
                               : s_.prune_pos[static_cast<std::size_t>(node)];
    if (n.is_leaf()) return leaf_err;
    const long subtree_err =
        do_prune(tree, n.left) + do_prune(tree, n.right);
    if (leaf_err <= subtree_err) {
      n.feature = -1;  // collapse; children become unreachable
      n.left = n.right = -1;
      return leaf_err;
    }
    return subtree_err;
  }

  void backfit(DecisionTree& tree, int node, int row) {
    TreeNode& n = tree.nodes_[static_cast<std::size_t>(node)];
    (data_.label(row) ? n.pos : n.neg) += 1;
    if (n.is_leaf()) return;
    backfit(tree, data_.at(row, n.feature) < n.threshold ? n.left : n.right,
            row);
  }

  const Dataset& data_;
  const TreeOptions& opt_;
  std::mt19937_64& rng_;
  TreeScratch& s_;
  std::vector<TreeNode>* nodes_ = nullptr;
};

DecisionTree DecisionTree::train(const Dataset& data, const TreeOptions& opt,
                                 std::mt19937_64& rng,
                                 std::span<const int> rows) {
  TreeScratch scratch;
  return train(data, opt, rng, rows, scratch);
}

DecisionTree DecisionTree::train(const Dataset& data, const TreeOptions& opt,
                                 std::mt19937_64& rng,
                                 std::span<const int> rows,
                                 TreeScratch& scratch) {
  TreeBuilder b(data, opt, rng, scratch);
  return b.build(rows);
}

int DecisionTree::leaf_of(std::span<const double> x) const {
  int node = 0;
  while (!nodes_[static_cast<std::size_t>(node)].is_leaf()) {
    const TreeNode& n = nodes_[static_cast<std::size_t>(node)];
    node = x[static_cast<std::size_t>(n.feature)] < n.threshold ? n.left
                                                                : n.right;
  }
  return node;
}

double DecisionTree::predict_proba(std::span<const double> x) const {
  const TreeNode& n = nodes_[static_cast<std::size_t>(leaf_of(x))];
  const double total = n.pos + n.neg;
  return total > 0 ? n.pos / total : 0.5;
}

int DecisionTree::num_leaves() const {
  // Count leaves reachable from the root (pruned-away nodes excluded).
  int count = 0;
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[static_cast<std::size_t>(id)];
    if (n.is_leaf()) {
      ++count;
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  return count;
}

int DecisionTree::depth() const {
  struct Item {
    int id, d;
  };
  int best = 0;
  std::vector<Item> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[static_cast<std::size_t>(id)];
    best = std::max(best, d);
    if (!n.is_leaf()) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return best;
}

}  // namespace repro::ml

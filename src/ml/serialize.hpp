// Versioned, checksummed binary serialization for trained ensembles.
//
// A saved model is a binio artifact envelope (magic + format version +
// payload + CRC32 trailer) whose payload stores every tree node verbatim:
// feature index, threshold, child indices, and the backfitted pos/neg
// counts, with doubles written as IEEE-754 bit patterns. Loading
// therefore rebuilds a BaggingClassifier whose predict_proba is
// bit-identical to the model that was saved — the property the
// checkpoint/resume machinery (common/checkpoint.hpp) relies on to make
// resumed attack runs reproduce uninterrupted ones exactly.
//
// load_bagging validates structure, not just the checksum: child indices
// must be in range and non-leaf nodes must have both children, so a
// corrupt-but-CRC-valid artifact (e.g. written by a future buggy writer)
// is rejected with kDataLoss instead of crashing the walker.
#pragma once

#include <string>

#include "common/status.hpp"
#include "ml/bagging.hpp"

namespace repro::ml {

/// Artifact identity for saved BaggingClassifier models ("MLBG").
inline constexpr std::uint32_t kBaggingMagic = 0x4D4C4247u;
inline constexpr std::uint32_t kBaggingVersion = 1;

/// Serializes the ensemble into an artifact envelope (magic, version,
/// CRC32) ready for CheckpointManager::write or atomic_write_file.
std::string save_bagging(const BaggingClassifier& clf);

/// Parses an artifact produced by save_bagging. Returns kDataLoss on
/// checksum/version/structure violations.
common::StatusOr<BaggingClassifier> load_bagging(const std::string& raw);

/// Convenience wrappers: atomic file write / whole-file read.
common::Status save_bagging_file(const BaggingClassifier& clf,
                                 const std::string& path);
common::StatusOr<BaggingClassifier> load_bagging_file(
    const std::string& path);

}  // namespace repro::ml

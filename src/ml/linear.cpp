#include "ml/linear.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace repro::ml {

LinearRegression LinearRegression::fit(
    const std::vector<std::vector<double>>& xs, std::span<const double> ys,
    double ridge) {
  if (xs.empty() || xs.size() != ys.size()) {
    throw std::invalid_argument("LinearRegression::fit: bad shapes");
  }
  const std::size_t d = xs[0].size() + 1;  // + bias
  // Normal equations: (X^T X + ridge I) w = X^T y.
  std::vector<std::vector<double>> a(d, std::vector<double>(d, 0.0));
  std::vector<double> b(d, 0.0);
  for (std::size_t r = 0; r < xs.size(); ++r) {
    assert(xs[r].size() + 1 == d);
    std::vector<double> row(d);
    row[0] = 1.0;
    for (std::size_t j = 1; j < d; ++j) row[j] = xs[r][j - 1];
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < d; ++j) a[i][j] += row[i] * row[j];
      b[i] += row[i] * ys[r];
    }
  }
  for (std::size_t i = 0; i < d; ++i) a[i][i] += ridge;

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < d; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < d; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[piv][col])) piv = r;
    }
    std::swap(a[col], a[piv]);
    std::swap(b[col], b[piv]);
    if (std::abs(a[col][col]) < 1e-12) continue;  // singular direction
    for (std::size_t r = 0; r < d; ++r) {
      if (r == col) continue;
      const double k = a[r][col] / a[col][col];
      for (std::size_t j = col; j < d; ++j) a[r][j] -= k * a[col][j];
      b[r] -= k * b[col];
    }
  }
  LinearRegression lr;
  lr.w_.resize(d, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    lr.w_[i] = std::abs(a[i][i]) < 1e-12 ? 0.0 : b[i] / a[i][i];
  }
  return lr;
}

double LinearRegression::predict(std::span<const double> x) const {
  assert(x.size() + 1 == w_.size());
  double y = w_[0];
  for (std::size_t i = 0; i < x.size(); ++i) y += w_[i + 1] * x[i];
  return y;
}

}  // namespace repro::ml

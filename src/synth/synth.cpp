#include "synth/synth.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>

namespace repro::synth {

namespace {

using geom::Dbu;
using geom::Point;
using netlist::CellId;
using netlist::PinDir;
using netlist::PinRef;

/// Ids of non-macro library cells, weighted roughly like a real design mix
/// (inverters/buffers common, flops frequent, big drives rare).
std::vector<int> weighted_cell_mix(const netlist::Library& lib,
                                   std::mt19937_64& rng, int count) {
  struct Entry {
    int id;
    double weight;
  };
  std::vector<Entry> entries;
  for (int c = 0; c < lib.num_cells(); ++c) {
    const auto& lc = lib.cell(c);
    if (lc.is_macro) continue;
    double w = 1.0;
    if (lc.name.rfind("INV", 0) == 0 || lc.name.rfind("BUF", 0) == 0) {
      w = 2.0 / lc.drive_strength;  // small drives dominate
    } else if (lc.name.rfind("DFF", 0) == 0) {
      w = 1.2 / lc.drive_strength;
    } else {
      w = 1.5 / lc.drive_strength;
    }
    entries.push_back({c, w});
  }
  std::vector<double> weights;
  for (const auto& e : entries) weights.push_back(e.weight);
  std::discrete_distribution<int> pick(weights.begin(), weights.end());
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(entries[static_cast<std::size_t>(pick(rng))].id);
  }
  return out;
}

/// Net fanout (number of loads) distribution: mostly 1-2, heavy-ish tail.
int sample_fanout(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const double r = u(rng);
  if (r < 0.55) return 1;
  if (r < 0.77) return 2;
  if (r < 0.89) return 3;
  std::geometric_distribution<int> tail(0.5);
  return std::min(4 + tail(rng), 8);
}

}  // namespace

SynthDesign generate(const SynthParams& params) {
  if (params.num_cells < 100) {
    throw std::invalid_argument("num_cells too small for a routed design");
  }
  std::mt19937_64 rng(params.seed);

  auto lib = std::make_shared<const netlist::Library>(
      netlist::Library::make_default());

  // --- Die sizing --------------------------------------------------------
  const std::vector<int> mix = weighted_cell_mix(*lib, rng, params.num_cells);
  double cell_area = 0;
  for (int id : mix) cell_area += static_cast<double>(lib->cell(id).area());
  const auto macro_ram = lib->find("MACRO_RAM");
  const auto macro_mul = lib->find("MACRO_MUL");
  std::vector<int> macro_ids;
  for (int m = 0; m < params.num_macros; ++m) {
    macro_ids.push_back((m % 2 == 0) ? *macro_ram : *macro_mul);
  }
  double macro_area = 0;
  for (int id : macro_ids) macro_area += static_cast<double>(lib->cell(id).area());

  const double die_area = cell_area / params.utilization + macro_area * 1.3;
  const Dbu gcell = 800;
  Dbu width = static_cast<Dbu>(std::sqrt(die_area * params.aspect));
  width = (width / gcell + 1) * gcell;
  Dbu height = static_cast<Dbu>(die_area / static_cast<double>(width));
  height = (height / netlist::Library::kRowHeight + 2) *
           netlist::Library::kRowHeight;
  // Round height up to a whole number of gcells as well.
  height = ((height + gcell - 1) / gcell) * gcell;
  const geom::Rect die(0, 0, width, height);

  place::Floorplan fp;
  fp.die = die;

  auto nl = std::make_unique<netlist::Netlist>(lib, params.name);

  // --- Macros at the die edges -------------------------------------------
  std::vector<CellId> macro_cells;
  {
    std::uniform_int_distribution<int> corner(0, 3);
    Dbu margin = 2 * gcell;
    for (std::size_t m = 0; m < macro_ids.size(); ++m) {
      const auto& lc = lib->cell(macro_ids[m]);
      Point org;
      switch ((corner(rng) + static_cast<int>(m)) % 4) {
        case 0: org = {die.lo.x + margin, die.lo.y + margin}; break;
        case 1: org = {die.hi.x - lc.width - margin, die.lo.y + margin}; break;
        case 2: org = {die.lo.x + margin, die.hi.y - lc.height - margin}; break;
        default:
          org = {die.hi.x - lc.width - margin, die.hi.y - lc.height - margin};
      }
      // Keep multiple macros from stacking on the same corner.
      org.x += static_cast<Dbu>(m / 4) * (lc.width + margin);
      org.x = geom::clamp(org.x, die.lo.x, die.hi.x - lc.width);
      // Snap to row/site grid so the legalizer's footprint blocking is exact.
      org.x = (org.x / fp.site_width) * fp.site_width;
      org.y = (org.y / fp.row_height) * fp.row_height;
      macro_cells.push_back(nl->add_cell(
          "macro" + std::to_string(m), macro_ids[m], org));
    }
  }

  // --- Clustered placement ------------------------------------------------
  const int num_clusters =
      std::max(4, params.num_cells / params.cells_per_cluster);
  std::vector<Point> centers;
  {
    std::uniform_int_distribution<Dbu> ux(die.lo.x, die.hi.x);
    std::uniform_int_distribution<Dbu> uy(die.lo.y, die.hi.y);
    for (int c = 0; c < num_clusters; ++c) {
      centers.push_back({ux(rng), uy(rng)});
    }
  }
  // Neighbour clusters (4 nearest) for regional nets.
  std::vector<std::vector<int>> neighbours(
      static_cast<std::size_t>(num_clusters));
  for (int c = 0; c < num_clusters; ++c) {
    std::vector<std::pair<Dbu, int>> d;
    for (int o = 0; o < num_clusters; ++o) {
      if (o != c) d.emplace_back(geom::manhattan(centers[static_cast<std::size_t>(c)], centers[static_cast<std::size_t>(o)]), o);
    }
    std::sort(d.begin(), d.end());
    for (int k = 0; k < std::min<int>(4, static_cast<int>(d.size())); ++k) {
      neighbours[static_cast<std::size_t>(c)].push_back(d[static_cast<std::size_t>(k)].second);
    }
  }

  const double radius = params.cluster_radius_gcells * static_cast<double>(gcell);
  std::normal_distribution<double> spread(0.0, radius);
  std::uniform_int_distribution<int> pick_cluster(0, num_clusters - 1);

  std::vector<int> cluster_of;  // per std cell
  std::vector<std::vector<CellId>> cluster_cells(
      static_cast<std::size_t>(num_clusters));
  for (int i = 0; i < params.num_cells; ++i) {
    const int cl = pick_cluster(rng);
    const Point& c = centers[static_cast<std::size_t>(cl)];
    Point p{c.x + static_cast<Dbu>(spread(rng)),
            c.y + static_cast<Dbu>(spread(rng))};
    p.x = geom::clamp(p.x, die.lo.x, die.hi.x - 1);
    p.y = geom::clamp(p.y, die.lo.y, die.hi.y - 1);
    const CellId id = nl->add_cell("c" + std::to_string(i),
                                   mix[static_cast<std::size_t>(i)], p);
    cluster_of.push_back(cl);
    cluster_cells[static_cast<std::size_t>(cl)].push_back(id);
  }

  legalize(*nl, fp);

  // --- Net synthesis -------------------------------------------------------
  // Free input pins per cluster (swap-pop sampling); macros go to a global
  // pool keyed by nearest cluster.
  std::vector<std::vector<PinRef>> free_inputs(
      static_cast<std::size_t>(num_clusters));
  const auto cluster_of_cell = [&](CellId c) -> int {
    if (c >= static_cast<CellId>(macro_cells.size())) {
      return cluster_of[static_cast<std::size_t>(c) - macro_cells.size()];
    }
    // Macro: nearest cluster to its centre.
    const auto& inst = nl->cell(c);
    const auto& lc = lib->cell(inst.lib_cell);
    const Point ctr{inst.origin.x + lc.width / 2, inst.origin.y + lc.height / 2};
    int best = 0;
    Dbu bd = std::numeric_limits<Dbu>::max();
    for (int cl = 0; cl < num_clusters; ++cl) {
      const Dbu d = geom::manhattan(ctr, centers[static_cast<std::size_t>(cl)]);
      if (d < bd) {
        bd = d;
        best = cl;
      }
    }
    return best;
  };
  for (CellId c = 0; c < nl->num_cells(); ++c) {
    const auto& lc = lib->cell(nl->cell(c).lib_cell);
    const int cl = cluster_of_cell(c);
    for (int p = 0; p < static_cast<int>(lc.pins.size()); ++p) {
      if (lc.pins[static_cast<std::size_t>(p)].dir == PinDir::kInput) {
        free_inputs[static_cast<std::size_t>(cl)].push_back(PinRef{c, p});
      }
    }
  }
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const auto pop_input_from = [&](int cl, CellId avoid) -> PinRef {
    auto& pool = free_inputs[static_cast<std::size_t>(cl)];
    for (int tries = 0; tries < 8 && !pool.empty(); ++tries) {
      std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
      const std::size_t i = pick(rng);
      if (pool[i].cell == avoid) continue;
      const PinRef r = pool[i];
      pool[i] = pool.back();
      pool.pop_back();
      return r;
    }
    return PinRef{};  // none available
  };
  const auto pop_input_anywhere = [&](CellId avoid) -> PinRef {
    for (int tries = 0; tries < 16; ++tries) {
      const int cl = pick_cluster(rng);
      const PinRef r = pop_input_from(cl, avoid);
      if (r.cell != netlist::kInvalidCell) return r;
    }
    return PinRef{};
  };

  int net_counter = 0;
  const auto make_net = [&](CellId driver_cell, int out_pin,
                            const std::vector<PinRef>& loads) {
    if (loads.empty()) return;
    netlist::Net net;
    net.name = "n" + std::to_string(net_counter++);
    net.pins.push_back(PinRef{driver_cell, out_pin});
    net.driver = 0;
    for (const PinRef& l : loads) net.pins.push_back(l);
    nl->add_net(std::move(net));
  };

  for (CellId c = 0; c < nl->num_cells(); ++c) {
    const auto& lc = lib->cell(nl->cell(c).lib_cell);
    const int cl = cluster_of_cell(c);
    for (int p = 0; p < static_cast<int>(lc.pins.size()); ++p) {
      if (lc.pins[static_cast<std::size_t>(p)].dir != PinDir::kOutput) continue;
      if (u01(rng) > params.net_prob) continue;
      const int fanout = sample_fanout(rng);
      std::vector<PinRef> loads;
      for (int f = 0; f < fanout; ++f) {
        const double r = u01(rng);
        PinRef load;
        if (r < params.p_local) {
          load = pop_input_from(cl, c);
        } else if (r < params.p_local + params.p_regional) {
          const auto& nb = neighbours[static_cast<std::size_t>(cl)];
          if (!nb.empty()) {
            std::uniform_int_distribution<std::size_t> pick(0, nb.size() - 1);
            load = pop_input_from(nb[pick(rng)], c);
          }
        } else {
          load = pop_input_anywhere(c);
        }
        if (load.cell == netlist::kInvalidCell) load = pop_input_anywhere(c);
        if (load.cell != netlist::kInvalidCell) loads.push_back(load);
      }
      make_net(c, p, loads);
    }
  }

  // --- Bus groups (sb10-style repeated long-range patterns) ---------------
  // Each bus is a group of parallel 2-pin nets between two distant clusters,
  // driven by spare buffers placed for the purpose... we reuse existing
  // cells: pick driver cells in cluster A whose outputs were left unused.
  if (params.num_buses > 0) {
    // Collect cells whose output pin drives nothing yet.
    std::vector<bool> output_used(static_cast<std::size_t>(nl->num_cells()),
                                  false);
    for (netlist::NetId n = 0; n < nl->num_nets(); ++n) {
      const auto& net = nl->net(n);
      if (net.has_driver()) {
        output_used[static_cast<std::size_t>(
            net.pins[static_cast<std::size_t>(net.driver)].cell)] = true;
      }
    }
    for (int b = 0; b < params.num_buses; ++b) {
      const int ca = pick_cluster(rng);
      // Farthest cluster from ca.
      int cb = ca;
      Dbu bd = 0;
      for (int o = 0; o < num_clusters; ++o) {
        const Dbu d = geom::manhattan(centers[static_cast<std::size_t>(ca)],
                                      centers[static_cast<std::size_t>(o)]);
        if (d > bd) {
          bd = d;
          cb = o;
        }
      }
      std::uniform_int_distribution<int> bus_width_dist(8, 16);
      const int bus_width = bus_width_dist(rng);
      int made = 0;
      for (CellId c : cluster_cells[static_cast<std::size_t>(ca)]) {
        if (made >= bus_width) break;
        if (output_used[static_cast<std::size_t>(c)]) continue;
        const auto& lc = lib->cell(nl->cell(c).lib_cell);
        int out_pin = -1;
        for (int p = 0; p < static_cast<int>(lc.pins.size()); ++p) {
          if (lc.pins[static_cast<std::size_t>(p)].dir == PinDir::kOutput) {
            out_pin = p;
            break;
          }
        }
        if (out_pin < 0) continue;
        const PinRef load = pop_input_from(cb, c);
        if (load.cell == netlist::kInvalidCell) break;
        make_net(c, out_pin, {load});
        output_used[static_cast<std::size_t>(c)] = true;
        ++made;
      }
    }
  }

  nl->check();

  // --- Routing -------------------------------------------------------------
  tech::Technology tech = tech::Technology::make_default(gcell);
  route::RouterOptions ropt = params.router;
  ropt.seed = params.seed * 7919 + 13;
  route::GlobalRouter router(*nl, tech, ropt);

  SynthDesign out;
  out.params = params;
  out.lib = lib;
  out.routes = router.run();
  out.route_stats = router.stats();
  out.floorplan = fp;
  out.netlist = std::move(nl);
  return out;
}

SynthParams preset(const std::string& name) {
  SynthParams p;
  p.name = name;
  p.cells_per_cluster = 100;
  p.cluster_radius_gcells = 3.0;
  if (name == "sb1") {
    p.num_cells = 6000;
    p.seed = 101;
    p.p_local = 0.90;
    p.p_regional = 0.085;
    p.router.promote_prob = 0.015;
    p.num_macros = 2;
  } else if (name == "sb5") {
    p.num_cells = 8000;
    p.seed = 105;
    p.p_local = 0.875;
    p.p_regional = 0.105;
    p.router.promote_prob = 0.02;
    p.num_macros = 2;
  } else if (name == "sb10") {
    // The outlier: wide aspect, weaker locality, repeated inter-region
    // buses, more macros.
    p.num_cells = 9500;
    p.seed = 110;
    p.aspect = 2.0;
    p.p_local = 0.855;
    p.p_regional = 0.125;
    p.num_buses = 20;
    p.num_macros = 4;
    p.router.promote_prob = 0.02;
  } else if (name == "sb12") {
    // Largest and most congested.
    p.num_cells = 11000;
    p.seed = 112;
    p.utilization = 0.72;
    p.p_local = 0.855;
    p.p_regional = 0.125;
    p.router.promote_prob = 0.035;
    p.num_macros = 2;
  } else if (name == "sb18") {
    p.num_cells = 5000;
    p.seed = 118;
    p.p_local = 0.88;
    p.p_regional = 0.10;
    p.router.promote_prob = 0.025;
    p.num_macros = 2;
  } else {
    throw std::invalid_argument("unknown preset: " + name);
  }
  return p;
}

std::vector<std::string> preset_names() {
  return {"sb1", "sb5", "sb10", "sb12", "sb18"};
}

std::vector<SynthDesign> generate_benchmark_suite(double scale) {
  std::vector<SynthDesign> out;
  for (const std::string& name : preset_names()) {
    SynthParams p = preset(name);
    p.num_cells = std::max(500, static_cast<int>(p.num_cells * scale));
    out.push_back(generate(p));
  }
  return out;
}

}  // namespace repro::synth

// Synthetic "superblue-like" benchmark generator.
//
// The paper's experiments run on five ISPD-2011 superblue layouts placed and
// routed under industrial supervision. Those layouts are not shipped here,
// so this module synthesizes stand-ins that preserve the statistics the
// attack consumes: clustered placement (most nets local, a heavy tail of
// regional and global nets), macros, realistic net-degree distribution, one
// driver per net, and a full global route over the 9-layer stack with
// congestion concentrated in the lower layers. Five presets named after the
// paper's benchmarks (sb1, sb5, sb10, sb12, sb18) differ in size, locality,
// congestion pressure and - for sb10 - a deliberately distinct structure
// (inter-region buses) mirroring the outlier behaviour the paper reports
// for superblue10.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "place/placement.hpp"
#include "route/global_router.hpp"
#include "route/route_db.hpp"

namespace repro::synth {

struct SynthParams {
  std::string name = "anon";
  int num_cells = 20000;
  int num_macros = 2;
  double utilization = 0.60;   ///< std-cell area / die area
  double aspect = 1.0;         ///< die width / height
  int cells_per_cluster = 150;
  double cluster_radius_gcells = 3.5;
  /// Load locality: same cluster / neighbouring cluster / anywhere.
  double p_local = 0.80;
  double p_regional = 0.13;
  /// Probability that a cell's output pin actually drives a net.
  double net_prob = 0.92;
  /// Number of 8-16 bit inter-region "bus" groups (parallel long nets).
  int num_buses = 0;
  route::RouterOptions router;
  std::uint64_t seed = 1;
};

/// A generated, placed and routed design.
struct SynthDesign {
  SynthParams params;
  std::shared_ptr<const netlist::Library> lib;
  std::unique_ptr<netlist::Netlist> netlist;
  place::Floorplan floorplan;
  route::RouteDB routes;
  route::RouteStats route_stats;
};

/// Generates, places (clustered + legalized) and routes a design.
SynthDesign generate(const SynthParams& params);

/// Named presets mirroring the paper's five benchmarks.
SynthParams preset(const std::string& name);
std::vector<std::string> preset_names();

/// Convenience: generate all five preset designs. `scale` multiplies the
/// preset cell counts (1.0 = the calibrated default used by the benches).
std::vector<SynthDesign> generate_benchmark_suite(double scale = 1.0);

}  // namespace repro::synth

// Geometry primitives for layout processing.
//
// All coordinates are integer database units (DBU). The library is
// deliberately small: points, rectangles, Manhattan metrics and a dense 2-D
// grid container, which is all the router / feature extractor need.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <ostream>
#include <vector>

namespace repro::geom {

/// Database unit. Signed 64-bit so that sums of wirelengths never overflow.
using Dbu = std::int64_t;

/// A point in DBU space.
struct Point {
  Dbu x = 0;
  Dbu y = 0;

  friend bool operator==(const Point&, const Point&) = default;
  friend std::ostream& operator<<(std::ostream& os, const Point& p) {
    return os << '(' << p.x << ',' << p.y << ')';
  }
};

/// Manhattan (L1) distance between two points.
inline Dbu manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Axis-aligned rectangle, closed on all sides: [lo.x, hi.x] x [lo.y, hi.y].
struct Rect {
  Point lo;
  Point hi;

  Rect() = default;
  Rect(Point lo_, Point hi_) : lo(lo_), hi(hi_) {
    assert(lo.x <= hi.x && lo.y <= hi.y);
  }
  Rect(Dbu x0, Dbu y0, Dbu x1, Dbu y1) : Rect(Point{x0, y0}, Point{x1, y1}) {}

  Dbu width() const { return hi.x - lo.x; }
  Dbu height() const { return hi.y - lo.y; }
  Dbu area() const { return width() * height(); }
  Point center() const { return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2}; }

  bool contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  bool intersects(const Rect& o) const {
    return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y && o.lo.y <= hi.y;
  }
  /// Grow by `d` in every direction (d may be negative; callers must keep the
  /// result non-degenerate).
  Rect inflated(Dbu d) const {
    return {Point{lo.x - d, lo.y - d}, Point{hi.x + d, hi.y + d}};
  }
  /// Smallest rect containing both this and `p`.
  Rect bounding(const Point& p) const {
    return {Point{std::min(lo.x, p.x), std::min(lo.y, p.y)},
            Point{std::max(hi.x, p.x), std::max(hi.y, p.y)}};
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Half-perimeter wirelength of the bounding box of a point set.
Dbu hpwl(const std::vector<Point>& pts);

/// Dense row-major 2-D grid of T. Used for congestion maps and routing
/// capacity tables.
template <class T>
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(int nx, int ny, T init = T{})
      : nx_(nx), ny_(ny), data_(static_cast<std::size_t>(nx) * ny, init) {
    assert(nx > 0 && ny > 0);
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  bool in_bounds(int x, int y) const {
    return x >= 0 && x < nx_ && y >= 0 && y < ny_;
  }

  T& at(int x, int y) {
    assert(in_bounds(x, y));
    return data_[static_cast<std::size_t>(y) * nx_ + x];
  }
  const T& at(int x, int y) const {
    assert(in_bounds(x, y));
    return data_[static_cast<std::size_t>(y) * nx_ + x];
  }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  int nx_ = 0;
  int ny_ = 0;
  std::vector<T> data_;
};

/// Clamp a value into [lo, hi].
template <class T>
T clamp(T v, T lo, T hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace repro::geom

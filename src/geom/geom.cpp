#include "geom/geom.hpp"

#include <limits>

namespace repro::geom {

Dbu hpwl(const std::vector<Point>& pts) {
  if (pts.empty()) return 0;
  Dbu xmin = std::numeric_limits<Dbu>::max(), xmax = std::numeric_limits<Dbu>::min();
  Dbu ymin = xmin, ymax = xmax;
  for (const Point& p : pts) {
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
    ymin = std::min(ymin, p.y);
    ymax = std::max(ymax, p.y);
  }
  return (xmax - xmin) + (ymax - ymin);
}

}  // namespace repro::geom

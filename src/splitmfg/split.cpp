#include "splitmfg/split.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace repro::splitmfg {

namespace {

/// Small union-find over dense ids.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n)) {
    for (int i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) { parent_[static_cast<std::size_t>(find(a))] = find(b); }

 private:
  std::vector<int> parent_;
};

/// Maps (metal layer, gcell) -> dense node id, per net.
class NodeIndex {
 public:
  int get(int layer, const route::GCell& g) {
    const std::int64_t key = (static_cast<std::int64_t>(layer) << 42) |
                             (static_cast<std::int64_t>(g.x) << 21) |
                             static_cast<std::int64_t>(g.y);
    auto [it, inserted] = map_.try_emplace(key, next_);
    if (inserted) ++next_;
    return it->second;
  }
  int size() const { return next_; }

 private:
  std::unordered_map<std::int64_t, int> map_;
  int next_ = 0;
};

}  // namespace

bool SplitChallenge::is_match(VpinId v1, VpinId v2) const {
  const auto& m = vpin(v1).matches;
  return std::find(m.begin(), m.end(), v2) != m.end();
}

long SplitChallenge::num_matching_pairs() const {
  long total = 0;
  for (const Vpin& v : vpins) total += static_cast<long>(v.matches.size());
  return total / 2;
}

SplitChallenge make_challenge(const netlist::Netlist& nl,
                              const route::RouteDB& db, int split_layer,
                              const SplitOptions& opt) {
  if (split_layer < 1 || split_layer > 8) {
    throw std::invalid_argument("split_layer must be a via layer in [1, 8]");
  }
  SplitChallenge ch;
  ch.design_name = nl.name();
  ch.split_layer = split_layer;
  ch.die = db.grid.die();

  const place::PinDensityMap pin_density(nl, ch.die, opt.pc_bin);

  // Pass 1: cut every net, find v-pins, compute below-component features
  // and ground-truth matches.
  struct PendingVpin {
    Vpin v;
  };
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const route::NetRoute& nr = db.route_of(n);

    // Collect the net's v-pins (vias exactly on the split layer).
    std::vector<route::GCell> vpin_cells;
    for (const route::Via& v : nr.vias) {
      if (v.via_layer == split_layer) vpin_cells.push_back(v.at);
    }
    if (vpin_cells.empty()) continue;

    // Build the connectivity graph of the whole net, but *without* the
    // split-layer vias: below and above parts stay separate components.
    NodeIndex nodes;
    std::vector<std::pair<int, int>> edges;
    for (const route::WireSeg& w : nr.wires) {
      if (w.horizontal()) {
        for (int x = w.a.x; x < w.b.x; ++x) {
          edges.emplace_back(nodes.get(w.layer, {x, w.a.y}),
                             nodes.get(w.layer, {x + 1, w.a.y}));
        }
        if (w.a.x == w.b.x) nodes.get(w.layer, w.a);  // degenerate stub
      } else {
        for (int y = w.a.y; y < w.b.y; ++y) {
          edges.emplace_back(nodes.get(w.layer, {w.a.x, y}),
                             nodes.get(w.layer, {w.a.x, y + 1}));
        }
      }
    }
    for (const route::Via& v : nr.vias) {
      if (v.via_layer == split_layer) continue;
      edges.emplace_back(nodes.get(v.via_layer, v.at),
                         nodes.get(v.via_layer + 1, v.at));
    }
    // Pin attachment points (metal 1 at the pin's GCell).
    for (const route::PinAccess& pa : nr.pin_access) {
      nodes.get(1, pa.gcell);
    }
    // Attachment nodes of each v-pin.
    std::vector<int> below_node, above_node;
    for (const route::GCell& g : vpin_cells) {
      below_node.push_back(nodes.get(split_layer, g));
      above_node.push_back(nodes.get(split_layer + 1, g));
    }

    UnionFind uf(nodes.size());
    for (const auto& [a, b] : edges) uf.unite(a, b);

    // Feature accumulation per below-split component.
    struct CompAgg {
      double wire_dbu = 0;
      double sum_px = 0, sum_py = 0;
      int num_pins = 0;
      double in_area = 0, out_area = 0;
    };
    std::unordered_map<int, CompAgg> agg;

    for (const route::WireSeg& w : nr.wires) {
      if (w.layer > split_layer) continue;
      const int root = uf.find(nodes.get(w.layer, w.a));
      agg[root].wire_dbu += static_cast<double>(w.length()) *
                            static_cast<double>(db.grid.gcell_size());
    }
    for (const route::PinAccess& pa : nr.pin_access) {
      const int root = uf.find(nodes.get(1, pa.gcell));
      CompAgg& a = agg[root];
      const geom::Point pp = nl.pin_position(pa.pin);
      a.sum_px += static_cast<double>(pp.x);
      a.sum_py += static_cast<double>(pp.y);
      ++a.num_pins;
      const double area =
          static_cast<double>(nl.lib_cell_of(pa.pin.cell).area());
      if (nl.pin_direction(pa.pin) == netlist::PinDir::kInput) {
        a.in_area += area;
      } else {
        a.out_area += area;
      }
    }

    // Pinless below fragments (e.g. the vertical leg of an HVH pattern
    // whose horizontal runs live above the split) still produce v-pins -
    // the attacker sees the dangling fragment and must connect it. Their
    // placement-derived features fall back to the fragment itself: the
    // connection point is the centroid of the fragment's split vias, and
    // the cell-area features are zero.
    std::unordered_map<int, std::pair<double, double>> via_centroid_sum;
    std::unordered_map<int, int> via_count;
    for (std::size_t i = 0; i < vpin_cells.size(); ++i) {
      const int broot = uf.find(below_node[i]);
      const geom::Point p = db.grid.center_of(vpin_cells[i]);
      auto& s = via_centroid_sum[broot];
      s.first += static_cast<double>(p.x);
      s.second += static_cast<double>(p.y);
      ++via_count[broot];
    }

    // Emit the net's v-pins; remember below/above component roots so the
    // ground truth can be derived.
    std::vector<VpinId> ids;
    std::vector<int> below_roots, above_roots;
    for (std::size_t i = 0; i < vpin_cells.size(); ++i) {
      const int broot = uf.find(below_node[i]);
      Vpin vp;
      vp.id = static_cast<VpinId>(ch.vpins.size());
      vp.net = n;
      vp.gcell = vpin_cells[i];
      vp.pos = db.grid.center_of(vpin_cells[i]);
      auto it = agg.find(broot);
      if (it != agg.end() && it->second.num_pins > 0) {
        const CompAgg& a = it->second;
        vp.wirelength = a.wire_dbu;
        vp.pin_loc = {static_cast<geom::Dbu>(a.sum_px / a.num_pins),
                      static_cast<geom::Dbu>(a.sum_py / a.num_pins)};
        vp.in_area = a.in_area;
        vp.out_area = a.out_area;
      } else {
        vp.wirelength = (it != agg.end()) ? it->second.wire_dbu : 0.0;
        const auto& s = via_centroid_sum[broot];
        const int cnt = via_count[broot];
        vp.pin_loc = {static_cast<geom::Dbu>(s.first / cnt),
                      static_cast<geom::Dbu>(s.second / cnt)};
      }
      vp.pc = pin_density.density_around(vp.pin_loc, opt.pc_radius);
      // rc is filled in pass 2 (needs all v-pins first).
      ids.push_back(vp.id);
      below_roots.push_back(broot);
      above_roots.push_back(uf.find(above_node[i]));
      ch.vpins.push_back(std::move(vp));
    }

    // Ground truth: v-pins of this net in *different* below components
    // connected through the *same* above (BEOL) component.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      for (std::size_t j = i + 1; j < ids.size(); ++j) {
        if (below_roots[i] == below_roots[j]) continue;  // already joined
        if (above_roots[i] != above_roots[j]) continue;  // not direct
        ch.vpins[static_cast<std::size_t>(ids[i])].matches.push_back(ids[j]);
        ch.vpins[static_cast<std::size_t>(ids[j])].matches.push_back(ids[i]);
      }
    }
  }

  // Pass 2: v-pin (routing) congestion RC over the finished v-pin set.
  if (!ch.vpins.empty()) {
    const int nx =
        std::max<int>(1, static_cast<int>(ch.die.width() / opt.rc_bin));
    const int ny =
        std::max<int>(1, static_cast<int>(ch.die.height() / opt.rc_bin));
    geom::Grid2D<int> grid(nx, ny, 0);
    const auto bin_of = [&](const geom::Point& p) {
      return std::pair<int, int>(
          geom::clamp(static_cast<int>((p.x - ch.die.lo.x) / opt.rc_bin), 0,
                      nx - 1),
          geom::clamp(static_cast<int>((p.y - ch.die.lo.y) / opt.rc_bin), 0,
                      ny - 1));
    };
    for (const Vpin& v : ch.vpins) {
      const auto [bx, by] = bin_of(v.pos);
      ++grid.at(bx, by);
    }
    for (Vpin& v : ch.vpins) {
      const auto [bx, by] = bin_of(v.pos);
      long total = 0;
      int bins = 0;
      for (int dx = -opt.rc_radius; dx <= opt.rc_radius; ++dx) {
        for (int dy = -opt.rc_radius; dy <= opt.rc_radius; ++dy) {
          if (!grid.in_bounds(bx + dx, by + dy)) continue;
          total += grid.at(bx + dx, by + dy);
          ++bins;
        }
      }
      const double area = static_cast<double>(bins) *
                          static_cast<double>(opt.rc_bin) *
                          static_cast<double>(opt.rc_bin) / 1e6;
      v.rc = bins > 0 ? static_cast<double>(total) / area : 0.0;
    }
  }

  return ch;
}

}  // namespace repro::splitmfg

#include "splitmfg/validate.hpp"

#include <algorithm>
#include <cmath>
#include <array>
#include <set>
#include <utility>

namespace repro::splitmfg {

namespace {

using common::DiagnosticSink;

/// Routes defect reports by class: fatal always rejects; repairable
/// downgrades to a warning when repair is enabled, otherwise rejects;
/// ignorable only counts.
class Reporter {
 public:
  Reporter(ValidationReport& report, const ValidationOptions& opt,
           DiagnosticSink& sink)
      : report_(report), opt_(opt), sink_(sink) {}

  void fatal(std::string code, std::string message) {
    ++report_.fatal;
    sink_.error(std::move(code), 0, std::move(message));
  }
  /// Returns true if the caller should apply the repair.
  bool repairable(std::string code, std::string message) {
    if (opt_.repair) {
      ++report_.repaired;
      sink_.warning(std::move(code), 0, std::move(message));
      return true;
    }
    ++report_.fatal;
    sink_.error(std::move(code), 0,
                std::move(message) + " (repair disabled)");
    return false;
  }
  void ignorable(std::string code, std::string message) {
    ++report_.ignored;
    sink_.note(std::move(code), 0, std::move(message));
  }

 private:
  ValidationReport& report_;
  const ValidationOptions& opt_;
  DiagnosticSink& sink_;
};

/// Largest believable die edge (10 cm at 1 DBU = 1 nm).
constexpr geom::Dbu kMaxDieExtent = 100'000'000;

using SegKey = std::array<int, 5>;

SegKey seg_key(int layer, const route::GCell& a, const route::GCell& b) {
  return {layer, a.x, a.y, b.x, b.y};
}

}  // namespace

std::string ValidationReport::summary() const {
  if (!ok()) {
    return "FAILED (" + std::to_string(fatal) + " fatal defect" +
           (fatal == 1 ? "" : "s") + ")";
  }
  if (repaired == 0 && ignored == 0) return "ok";
  return "ok (" + std::to_string(repaired) + " repaired, " +
         std::to_string(ignored) + " ignored)";
}

ValidationReport validate_design(lefdef::DefDesign& def,
                                 const ValidationOptions& opt,
                                 common::DiagnosticSink& sink) {
  ValidationReport report;
  Reporter rep(report, opt, sink);
  netlist::Netlist& nl = def.netlist;

  if (def.die.width() <= 0 || def.die.height() <= 0) {
    rep.fatal("validate.degenerate_die",
              "die has non-positive width or height");
  } else if (def.die.width() > kMaxDieExtent ||
             def.die.height() > kMaxDieExtent) {
    // A >10cm edge is corruption, not layout; admitting it would let the
    // density grids downstream allocate absurd amounts of memory.
    rep.fatal("validate.huge_die", "die extent exceeds " +
                                       std::to_string(kMaxDieExtent) +
                                       " DBU; input is corrupt");
  }
  if (opt.gcell_size <= 0) {
    rep.fatal("validate.bad_gcell_size",
              "GCell size must be positive, got " +
                  std::to_string(opt.gcell_size));
    return report;  // grid extent below would divide by zero
  }
  if (opt.split_layer &&
      (*opt.split_layer < 1 || *opt.split_layer > opt.num_via_layers)) {
    rep.fatal("validate.bad_split_layer",
              "split layer " + std::to_string(*opt.split_layer) +
                  " outside via stack [1, " +
                  std::to_string(opt.num_via_layers) + "]");
  }
  if (!report.ok()) return report;

  // Route table alignment: NetRoute i describes net i everywhere else in
  // the system, so a mismatched table would silently attach wrong geometry.
  if (def.routes.size() != static_cast<std::size_t>(nl.num_nets())) {
    if (rep.repairable("validate.route_table_mismatch",
                       "route table has " +
                           std::to_string(def.routes.size()) +
                           " entries for " + std::to_string(nl.num_nets()) +
                           " nets; resizing")) {
      def.routes.resize(static_cast<std::size_t>(nl.num_nets()));
    } else {
      return report;
    }
  }

  // Grid extents, mirroring route::GridGeometry.
  const int nx =
      std::max<int>(1, static_cast<int>(def.die.width() / opt.gcell_size));
  const int ny =
      std::max<int>(1, static_cast<int>(def.die.height() / opt.gcell_size));
  const auto on_grid = [&](const route::GCell& g) {
    return g.x >= 0 && g.x < nx && g.y >= 0 && g.y < ny;
  };

  // Cells: placements must land on the die.
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    const netlist::CellInst& inst = nl.cell(c);
    if (!def.die.contains(inst.origin)) {
      if (rep.repairable("validate.off_die_cell",
                         "cell " + inst.name + " placed off-die; clamping")) {
        netlist::CellInst& m = nl.mutable_cell(c);
        m.origin.x = geom::clamp(m.origin.x, def.die.lo.x, def.die.hi.x);
        m.origin.y = geom::clamp(m.origin.y, def.die.lo.y, def.die.hi.y);
        ++report.cells_clamped;
      }
    }
  }

  // Nets: structural oddities the attack tolerates but should know about.
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(n);
    if (net.pins.size() < 2) {
      rep.ignorable("validate.dangling_net",
                    "net " + net.name + " has fewer than 2 pins");
    }
    int drivers = 0;
    for (const netlist::PinRef& p : net.pins) {
      drivers += (nl.pin_direction(p) == netlist::PinDir::kOutput);
    }
    if (drivers > 1) {
      rep.ignorable("validate.multiple_drivers",
                    "net " + net.name + " has " + std::to_string(drivers) +
                        " driving pins");
    }
  }

  // Routes: every segment inside the stack, on the grid, axis-aligned,
  // ordered, and unique.
  bool noted_stub = false;
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    route::NetRoute& nr = def.routes[static_cast<std::size_t>(n)];
    const std::string& net_name = nl.net(n).name;

    std::vector<route::WireSeg> wires;
    wires.reserve(nr.wires.size());
    std::set<SegKey> seen_wires;
    for (route::WireSeg w : nr.wires) {
      if (w.layer < 1 || w.layer > opt.num_metal_layers) {
        if (rep.repairable("validate.wire_off_stack",
                           "net " + net_name + ": wire on metal layer " +
                               std::to_string(w.layer) +
                               " outside stack; dropping")) {
          ++report.wires_dropped;
          continue;
        }
        break;
      }
      if (w.a.x != w.b.x && w.a.y != w.b.y) {
        if (rep.repairable("validate.diagonal_wire",
                           "net " + net_name +
                               ": diagonal wire segment; dropping")) {
          ++report.wires_dropped;
          continue;
        }
        break;
      }
      if (w.b.x < w.a.x || w.b.y < w.a.y) {
        if (rep.repairable("validate.unordered_wire",
                           "net " + net_name +
                               ": wire endpoints unordered; swapping")) {
          std::swap(w.a, w.b);
          ++report.endpoints_swapped;
        } else {
          break;
        }
      }
      if (!on_grid(w.a) || !on_grid(w.b)) {
        if (rep.repairable("validate.off_grid_wire",
                           "net " + net_name +
                               ": wire outside the routing grid; dropping")) {
          ++report.wires_dropped;
          continue;
        }
        break;
      }
      if (w.a == w.b && !noted_stub) {
        rep.ignorable("validate.zero_length_wire",
                      "net " + net_name +
                          ": zero-length wire stub (kept; further stubs "
                          "not reported)");
        noted_stub = true;
      }
      if (!seen_wires.insert(seg_key(w.layer, w.a, w.b)).second) {
        if (rep.repairable("validate.duplicate_wire",
                           "net " + net_name +
                               ": duplicate wire segment; dropping")) {
          ++report.duplicates_removed;
          continue;
        }
        break;
      }
      wires.push_back(w);
    }

    std::vector<route::Via> vias;
    vias.reserve(nr.vias.size());
    std::set<SegKey> seen_vias;
    for (const route::Via& v : nr.vias) {
      if (v.via_layer < 1 || v.via_layer > opt.num_via_layers) {
        if (rep.repairable("validate.via_off_stack",
                           "net " + net_name + ": via on layer " +
                               std::to_string(v.via_layer) +
                               " outside stack; dropping")) {
          ++report.vias_dropped;
          continue;
        }
        break;
      }
      if (!on_grid(v.at)) {
        if (rep.repairable("validate.off_grid_via",
                           "net " + net_name +
                               ": via outside the routing grid; dropping")) {
          ++report.vias_dropped;
          continue;
        }
        break;
      }
      if (!seen_vias.insert(seg_key(v.via_layer, v.at, v.at)).second) {
        if (rep.repairable("validate.duplicate_via",
                           "net " + net_name +
                               ": duplicate via; dropping")) {
          ++report.duplicates_removed;
          continue;
        }
        break;
      }
      vias.push_back(v);
    }

    if (opt.repair) {
      nr.wires = std::move(wires);
      nr.vias = std::move(vias);
    }
    if (!report.ok()) return report;

    // Below-split sanity: a v-pin with no FEOL fragment at all means the
    // FEOL view lost this net's visible geometry — the attacker will see a
    // floating v-pin. Legal (feature extraction falls back to the via
    // centroid) but worth surfacing.
    if (opt.split_layer) {
      const int split = *opt.split_layer;
      const auto& ws = opt.repair ? nr.wires : wires;
      const auto& vs = opt.repair ? nr.vias : vias;
      bool has_split_via = false, has_below = !nl.net(n).pins.empty();
      for (const route::Via& v : vs) {
        has_split_via |= (v.via_layer == split);
        has_below |= (v.via_layer < split);
      }
      if (has_split_via && !has_below) {
        for (const route::WireSeg& w : ws) has_below |= (w.layer <= split);
      }
      if (has_split_via && !has_below) {
        rep.ignorable("validate.vpin_no_feol",
                      "net " + net_name +
                          ": v-pin with no below-split fragment or pin");
      }
    }
  }

  return report;
}

ValidationReport validate_challenge(SplitChallenge& ch,
                                    const ValidationOptions& opt,
                                    common::DiagnosticSink& sink) {
  ValidationReport report;
  Reporter rep(report, opt, sink);

  if (ch.split_layer < 1 || ch.split_layer > opt.num_via_layers) {
    rep.fatal("validate.bad_split_layer",
              "challenge split layer " + std::to_string(ch.split_layer) +
                  " outside via stack");
  }
  if (ch.die.width() <= 0 || ch.die.height() <= 0) {
    rep.fatal("validate.degenerate_die",
              "challenge die has non-positive width or height");
  } else if (ch.die.width() > kMaxDieExtent ||
             ch.die.height() > kMaxDieExtent) {
    rep.fatal("validate.huge_die", "challenge die extent exceeds " +
                                       std::to_string(kMaxDieExtent) +
                                       " DBU; input is corrupt");
  }
  if (!report.ok()) return report;

  const int n = ch.num_vpins();
  for (VpinId v = 0; v < n; ++v) {
    Vpin& vp = ch.vpins[static_cast<std::size_t>(v)];
    const double features[] = {vp.wirelength, vp.in_area, vp.out_area,
                               vp.pc, vp.rc};
    for (double f : features) {
      if (!std::isfinite(f)) {
        if (rep.repairable("validate.nonfinite_feature",
                           "v-pin " + std::to_string(v) +
                               " has a non-finite feature; zeroing")) {
          if (!std::isfinite(vp.wirelength)) vp.wirelength = 0;
          if (!std::isfinite(vp.in_area)) vp.in_area = 0;
          if (!std::isfinite(vp.out_area)) vp.out_area = 0;
          if (!std::isfinite(vp.pc)) vp.pc = 0;
          if (!std::isfinite(vp.rc)) vp.rc = 0;
        }
        break;
      }
    }
    if (!ch.die.contains(vp.pos)) {
      if (rep.repairable("validate.off_die_vpin",
                         "v-pin " + std::to_string(v) +
                             " lies outside the die; clamping")) {
        vp.pos.x = geom::clamp(vp.pos.x, ch.die.lo.x, ch.die.hi.x);
        vp.pos.y = geom::clamp(vp.pos.y, ch.die.lo.y, ch.die.hi.y);
      }
    }
    for (VpinId m : vp.matches) {
      if (m < 0 || m >= n) {
        rep.fatal("validate.bad_match_ref",
                  "v-pin " + std::to_string(v) +
                      " matches out-of-range v-pin " + std::to_string(m));
      } else if (m == v) {
        rep.fatal("validate.self_match",
                  "v-pin " + std::to_string(v) + " matches itself");
      } else if (!ch.is_match(m, v)) {
        if (rep.repairable("validate.asymmetric_match",
                           "match " + std::to_string(v) + " -> " +
                               std::to_string(m) +
                               " lacks its reciprocal; adding")) {
          ch.vpins[static_cast<std::size_t>(m)].matches.push_back(v);
        }
      }
    }
    if (!report.ok()) return report;
  }

  return report;
}

}  // namespace repro::splitmfg

// Split-manufacturing cut: FEOL view extraction and v-pin ground truth.
//
// A split at via layer L gives the attacker all wires on metal layers <= L
// and all vias on via layers <= L. Every via *on* layer L is a v-pin. This
// module cuts a routed design at a split layer, identifies the v-pins,
// derives the ground-truth matching (which v-pins are connected to each
// other through the hidden BEOL), and extracts the per-v-pin layout
// features of paper SSIII-A:
//   (vx, vy)        v-pin coordinates on the split layer
//   W               wirelength of the below-split route fragment
//   (px, py)        average location of the connected placement-layer pins
//   InArea/OutArea  summed areas of cells reached through input/output pins
//   PC              pin density around (px, py)
//   RC              v-pin density around (vx, vy)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "place/placement.hpp"
#include "route/route_db.hpp"

namespace repro::splitmfg {

using VpinId = std::int32_t;
inline constexpr VpinId kInvalidVpin = -1;

/// One v-pin with its extracted layout features and ground truth.
struct Vpin {
  VpinId id = kInvalidVpin;
  netlist::NetId net = netlist::kInvalidNet;
  geom::Point pos;      ///< (vx, vy): DBU centre of the via's GCell
  route::GCell gcell;

  double wirelength = 0;  ///< W: below-split fragment wirelength, DBU
  geom::Point pin_loc;    ///< (px, py)
  double in_area = 0;     ///< InArea
  double out_area = 0;    ///< OutArea
  double pc = 0;          ///< placement congestion around (px, py)
  double rc = 0;          ///< v-pin (routing) congestion around (vx, vy)

  /// Ground truth: v-pins connected to this one through the BEOL. Hidden
  /// from the attacker; used for sample generation (training designs) and
  /// for scoring (testing design).
  std::vector<VpinId> matches;

  bool drives() const { return out_area > 0; }
};

struct SplitOptions {
  geom::Dbu pc_bin = 2000;  ///< pin-density bin size (DBU)
  int pc_radius = 1;        ///< neighbourhood radius in bins
  geom::Dbu rc_bin = 1600;  ///< v-pin-density bin size (DBU)
  int rc_radius = 2;
};

/// A challenge instance: one design cut at one split layer.
struct SplitChallenge {
  std::string design_name;
  int split_layer = 0;
  geom::Rect die;
  std::vector<Vpin> vpins;

  int num_vpins() const { return static_cast<int>(vpins.size()); }
  const Vpin& vpin(VpinId v) const {
    return vpins[static_cast<std::size_t>(v)];
  }
  /// True if v1 and v2 are connected through the BEOL.
  bool is_match(VpinId v1, VpinId v2) const;
  /// Number of ground-truth matching (unordered) pairs.
  long num_matching_pairs() const;
};

/// Cuts a routed design at `split_layer` and extracts v-pins with features
/// and ground truth. Needs the *full* route database (ground truth comes
/// from the BEOL part); an attacker-side FEOL-only variant of the feature
/// extraction is exercised via the DEF path in tests.
SplitChallenge make_challenge(const netlist::Netlist& nl,
                              const route::RouteDB& db, int split_layer,
                              const SplitOptions& opt = {});

}  // namespace repro::splitmfg

// Layout validation for third-party DEF input.
//
// The parser guarantees *syntactic* health; this module checks the
// *semantic* health of a parsed design before it is allowed near the
// feature extractor: coordinates on the routing grid, layers inside the
// technology stack, routes aligned with nets, finite feature values. Every
// defect is classified:
//   * fatal      — the design cannot be used (degenerate die, bad split
//                  layer, route table misaligned with the netlist);
//   * repairable — auto-repaired in place when `ValidationOptions::repair`
//                  is set (off-die cells clamped, out-of-stack / off-grid /
//                  diagonal segments dropped, duplicate segments deduped,
//                  unordered endpoints swapped, non-finite features
//                  zeroed); without repair these count as fatal;
//   * ignorable  — reported (note/warning) and left alone (zero-length
//                  stubs, dangling nets, v-pins with no below-split
//                  fragment, multiple drivers).
// Diagnostics go to the caller's DiagnosticSink; the ValidationReport
// summarises what was found / repaired so batch loaders can log one line
// per design.
#pragma once

#include <optional>
#include <string>

#include "common/diagnostics.hpp"
#include "lefdef/lefdef.hpp"
#include "splitmfg/split.hpp"

namespace repro::splitmfg {

struct ValidationOptions {
  int num_metal_layers = 9;     ///< highest legal wire layer
  int num_via_layers = 8;       ///< highest legal via layer
  geom::Dbu gcell_size = 0;     ///< routing grid pitch; must be > 0
  std::optional<int> split_layer;  ///< enables below-split checks
  bool repair = true;  ///< apply auto-repairs; false = report only, and
                       ///< repairable defects become fatal
};

/// Per-design validation outcome. `ok()` means the (possibly repaired)
/// design is safe to hand to make_challenge / the feature extractor.
struct ValidationReport {
  int fatal = 0;
  int repaired = 0;
  int ignored = 0;

  // Repair breakdown.
  int cells_clamped = 0;
  int wires_dropped = 0;
  int vias_dropped = 0;
  int duplicates_removed = 0;
  int endpoints_swapped = 0;

  bool ok() const { return fatal == 0; }
  /// "ok (3 repaired, 1 ignored)" / "FAILED (2 fatal defects)"
  std::string summary() const;
};

/// Validates (and with `opt.repair` fixes up) a parsed DEF design in
/// place. Never throws.
ValidationReport validate_design(lefdef::DefDesign& def,
                                 const ValidationOptions& opt,
                                 common::DiagnosticSink& sink);

/// Validates an extracted challenge: finite feature values, v-pins inside
/// the die, symmetric ground-truth match lists. Never throws.
ValidationReport validate_challenge(SplitChallenge& ch,
                                    const ValidationOptions& opt,
                                    common::DiagnosticSink& sink);

}  // namespace repro::splitmfg

// Structured diagnostics for layout ingestion.
//
// A DiagnosticSink collects *every* problem found while parsing or
// validating an input file — severity, stable error code, file, line,
// message — instead of surfacing only the first failure. Parsers and
// validators append to a caller-supplied sink so that a batch loader can
// attribute diagnostics to individual designs and decide per design whether
// to repair, skip, or abort.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace repro::common {

enum class Severity {
  kNote = 0,   ///< informational (e.g. a repair that was applied)
  kWarning,    ///< suspicious but usable after auto-repair
  kError,      ///< content lost or unusable; the artifact is rejected
  kFatal,      ///< processing of the artifact had to stop early
};

const char* to_string(Severity s);

/// One structured finding. `code` is a stable dotted identifier
/// ("def.unknown_macro", "validate.off_grid_wire") suitable for counting
/// and filtering; `line` is 1-based, 0 when the finding concerns the whole
/// file.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;
  std::string file;
  int line = 0;
  std::string message;

  /// "error: chip.def:12: [def.unknown_macro] unknown macro 'NANDX'"
  std::string to_string() const;
};

/// Appends diagnostics; bounds memory on pathological inputs by capping the
/// number of *stored* diagnostics (counts keep accumulating past the cap).
class DiagnosticSink {
 public:
  explicit DiagnosticSink(std::string file = "") : file_(std::move(file)) {}

  /// File name attached to subsequently reported diagnostics.
  void set_file(std::string file) { file_ = std::move(file); }
  const std::string& file() const { return file_; }

  void report(Severity sev, std::string code, int line, std::string message);

  void note(std::string code, int line, std::string message) {
    report(Severity::kNote, std::move(code), line, std::move(message));
  }
  void warning(std::string code, int line, std::string message) {
    report(Severity::kWarning, std::move(code), line, std::move(message));
  }
  void error(std::string code, int line, std::string message) {
    report(Severity::kError, std::move(code), line, std::move(message));
  }
  void fatal(std::string code, int line, std::string message) {
    report(Severity::kFatal, std::move(code), line, std::move(message));
  }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::size_t size() const { return diags_.size(); }
  bool empty() const { return diags_.empty() && total_ == 0; }

  /// Total reported at `sev`, including diagnostics dropped by the cap.
  std::size_t count(Severity sev) const {
    return counts_[static_cast<std::size_t>(sev)];
  }
  std::size_t num_errors() const {
    return count(Severity::kError) + count(Severity::kFatal);
  }
  bool has_errors() const { return num_errors() > 0; }

  /// First stored diagnostic with severity >= kError, or nullptr.
  const Diagnostic* first_error() const;

  /// "2 errors, 1 warning" (omits empty categories; "clean" when empty).
  std::string summary() const;

  /// Writes every stored diagnostic, one per line.
  void print(std::ostream& os) const;

  void clear();

  /// Storage cap; further diagnostics are counted but not stored.
  void set_max_stored(std::size_t n) { max_stored_ = n; }
  std::size_t dropped() const { return total_ - diags_.size(); }

 private:
  std::string file_;
  std::vector<Diagnostic> diags_;
  std::size_t counts_[4] = {0, 0, 0, 0};
  std::size_t total_ = 0;
  std::size_t max_stored_ = 1024;
};

}  // namespace repro::common

#include "common/cancel.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace repro::common {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void CancelToken::request_cancel(const std::string& reason) {
  // The reason is written before the flag is raised and only once, so
  // serial readers after cancellation observe a complete string.
  bool expected = false;
  if (has_reason_.compare_exchange_strong(expected, true,
                                          std::memory_order_relaxed)) {
    reason_ = reason;
  }
  cancelled_.store(true, std::memory_order_release);
}

void CancelToken::reset() {
  cancelled_.store(false, std::memory_order_relaxed);
  has_reason_.store(false, std::memory_order_relaxed);
  reason_.clear();
}

CancelToken& global_cancel_token() {
  static CancelToken token;
  return token;
}

const char* to_string(BudgetPressure p) {
  switch (p) {
    case BudgetPressure::kNone: return "none";
    case BudgetPressure::kSoft: return "soft";
    case BudgetPressure::kHard: return "hard";
    case BudgetPressure::kExceeded: return "exceeded";
  }
  return "unknown";
}

Budget::Budget(double deadline_s, long max_rss_mb)
    : deadline_s_(deadline_s), max_rss_mb_(max_rss_mb),
      start_s_(now_seconds()) {}

double Budget::elapsed_s() const { return now_seconds() - start_s_; }

BudgetPressure Budget::pressure() const {
  const auto level = [](double used_frac) {
    if (used_frac >= 1.0) return BudgetPressure::kExceeded;
    if (used_frac >= 0.8) return BudgetPressure::kHard;
    if (used_frac >= 0.6) return BudgetPressure::kSoft;
    return BudgetPressure::kNone;
  };
  BudgetPressure worst = BudgetPressure::kNone;
  if (deadline_s_ > 0) {
    worst = std::max(worst, level(elapsed_s() / deadline_s_));
  }
  if (max_rss_mb_ > 0) {
    worst = std::max(worst, level(static_cast<double>(current_rss_mb()) /
                                  static_cast<double>(max_rss_mb_)));
  }
  return worst;
}

long current_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  long size_pages = 0, rss_pages = 0;
  const int matched = std::fscanf(f, "%ld %ld", &size_pages, &rss_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return rss_pages * (page > 0 ? page : 4096) / (1024 * 1024);
}

}  // namespace repro::common

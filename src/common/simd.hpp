// SIMD portability shim: compile-time capability detection, runtime
// dispatch, and the shared left-packing helpers of the vectorized
// kernels (FlatForest::predict_batch, CandidateIndex scans).
//
// Contract: every kernel in this repo that dispatches through
// simd::active() computes the EXACT same arithmetic at every level —
// the same double-precision subtractions, |x| via sign-bit clear,
// ordered < / <= comparisons (NaN compares false, selecting the same
// branch the scalar ternary selects) and the same accumulation order.
// Vector width changes which lanes are computed together, never what
// is computed, so AttackResult digests are bit-identical across
// scalar / SSE2 / AVX2 and across thread counts. The differential
// tests in tests/test_simd.cpp and scripts/check_simd.sh enforce this
// by running the same inputs under every forced level.
//
// Dispatch resolution, in priority order:
//   1. set_level(l) (tests, benches) — clamped to max_supported()
//   2. the REPRO_SIMD environment variable: scalar | sse2 | avx2 | auto
//   3. max_supported(): the strongest level both compiled in and
//      reported by the CPU (cpuid via __builtin_cpu_supports)
//
// Non-x86 builds compile the scalar fallback only; REPRO_SIMD values
// above the supported maximum clamp down instead of failing, so the
// same scripts run everywhere.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#if defined(__x86_64__) || defined(__i386__)
#define REPRO_SIMD_X86 1
#include <immintrin.h>
#endif

namespace repro::common::simd {

/// Instruction-set tiers the kernels are specialized for, ordered so
/// numeric comparison means capability comparison.
enum class Level : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

const char* to_string(Level level);

/// Parses a REPRO_SIMD value. "scalar" / "sse2" / "avx2" map to their
/// levels; "auto" (and "") mean resolve-from-hardware and return
/// nullopt; anything else also returns nullopt (callers fall back to
/// auto rather than aborting a run over a typo).
std::optional<Level> parse_level(std::string_view s);

/// Strongest level this binary can execute here: compile-target support
/// AND a runtime cpuid check, cached after the first call.
Level max_supported();

/// The level kernels dispatch on right now. Resolved once from
/// REPRO_SIMD (clamped to max_supported()) on first use; subsequent
/// set_level calls override it.
Level active();

/// Forces the dispatch level (clamped to max_supported()). Tests and
/// benches use this to run the same kernel at every level in-process.
void set_level(Level level);

/// Drops the cached resolution so the next active() re-reads
/// REPRO_SIMD. For tests that mutate the environment.
void reset_level();

#if defined(REPRO_SIMD_X86)

/// Left-packing permutation table for 8-lane i32 compress-emit: row m
/// lists, in ascending lane order, the lanes whose bit is set in m,
/// padded with zeros. Used with _mm256_permutevar8x32_epi32 to store
/// the admitted candidate ids of an 8-wide scan contiguously
/// (the cursor then advances by popcount(m)).
const std::uint32_t (&compress8_table())[256][8];

#endif  // REPRO_SIMD_X86

}  // namespace repro::common::simd

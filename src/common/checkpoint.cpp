#include "common/checkpoint.hpp"

#include <cctype>
#include <cstdio>
#include <filesystem>

#include "common/binio.hpp"
#include "common/json_writer.hpp"

namespace repro::common {

namespace {

constexpr int kManifestVersion = 1;

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string hex32(std::uint32_t v) {
  char buf[12];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

/// Minimal JSON scanner for the manifest the manager itself emits. It
/// accepts any valid JSON (the manifest may have been hand-edited or
/// damaged), extracting only the fields the manifest schema defines;
/// every failure path returns false rather than reading out of bounds.
class ManifestParser {
 public:
  explicit ManifestParser(std::string_view text) : s_(text) {}

  bool parse(std::uint64_t& run_key, int& version,
             std::map<std::string, std::pair<std::uint64_t, std::uint32_t>>&
                 artifacts) {
    skip_ws();
    if (!eat('{')) return false;
    if (peek() == '}') return eat('}');
    do {
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (key == "run_key") {
        std::string v;
        if (!string(v)) return false;
        run_key = std::strtoull(v.c_str(), nullptr, 16);
      } else if (key == "format_version") {
        double v;
        if (!number(v)) return false;
        version = static_cast<int>(v);
      } else if (key == "artifacts") {
        if (!artifact_array(artifacts)) return false;
      } else {
        if (!skip_value()) return false;
      }
      skip_ws();
    } while (eat(','));
    return eat('}');
  }

 private:
  char peek() { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool eat(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool string(std::string& out) {
    skip_ws();
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            const std::string hex(s_.substr(pos_, 4));
            pos_ += 4;
            out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;
  }

  bool number(double& out) {
    skip_ws();
    const char* begin = s_.data() + pos_;
    char* end = nullptr;
    out = std::strtod(begin, &end);
    if (end == begin) return false;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool skip_value() {
    skip_ws();
    const char c = peek();
    if (c == '"') {
      std::string tmp;
      return string(tmp);
    }
    if (c == '{' || c == '[') {
      const char close = (c == '{') ? '}' : ']';
      ++pos_;
      int depth = 1;
      while (pos_ < s_.size() && depth > 0) {
        const char k = s_[pos_];
        if (k == '"') {
          std::string tmp;
          if (!string(tmp)) return false;
          continue;
        }
        if (k == c) ++depth;
        if (k == close) --depth;
        ++pos_;
      }
      return depth == 0;
    }
    // number / true / false / null
    while (pos_ < s_.size() && s_[pos_] != ',' && s_[pos_] != '}' &&
           s_[pos_] != ']') {
      ++pos_;
    }
    return true;
  }

  bool artifact_array(
      std::map<std::string, std::pair<std::uint64_t, std::uint32_t>>& out) {
    skip_ws();
    if (!eat('[')) return false;
    skip_ws();
    if (peek() == ']') return eat(']');
    do {
      skip_ws();
      if (!eat('{')) return false;
      std::string name;
      std::uint64_t size = 0;
      std::uint32_t crc = 0;
      if (peek() != '}') {
        do {
          std::string key;
          if (!string(key)) return false;
          if (!eat(':')) return false;
          if (key == "name") {
            if (!string(name)) return false;
          } else if (key == "size") {
            double v;
            if (!number(v)) return false;
            size = static_cast<std::uint64_t>(v);
          } else if (key == "crc32") {
            std::string v;
            if (!string(v)) return false;
            crc = static_cast<std::uint32_t>(
                std::strtoul(v.c_str(), nullptr, 16));
          } else {
            if (!skip_value()) return false;
          }
          skip_ws();
        } while (eat(','));
      }
      if (!eat('}')) return false;
      if (name.empty()) return false;
      out[name] = {size, crc};
      skip_ws();
    } while (eat(','));
    return eat(']');
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

/// Artifact names come from our own fold/design naming, but guard
/// against path tricks anyway: a name is a single path component.
bool valid_name(const std::string& name) {
  if (name.empty() || name == "." || name == "..") return false;
  return name.find('/') == std::string::npos &&
         name.find('\\') == std::string::npos;
}

}  // namespace

StatusOr<CheckpointManager> CheckpointManager::open(const std::string& dir,
                                                    std::uint64_t run_key,
                                                    DiagnosticSink& sink) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint dir " + dir + ": " +
                           ec.message());
  }
  CheckpointManager mgr;
  mgr.dir_ = dir;
  mgr.run_key_ = run_key;

  const std::string manifest_path = dir + "/manifest.json";
  StatusOr<std::string> text = read_file(manifest_path);
  if (!text.ok()) {
    if (text.status().code() != StatusCode::kNotFound) {
      return text.status();  // unreadable manifest: surface, don't guess
    }
    return mgr;  // fresh checkpoint
  }

  std::uint64_t stored_key = 0;
  int version = 0;
  std::map<std::string, std::pair<std::uint64_t, std::uint32_t>> artifacts;
  ManifestParser parser(*text);
  if (!parser.parse(stored_key, version, artifacts)) {
    sink.warning("checkpoint.corrupt_manifest", 0,
                 "manifest.json is unparseable; starting a fresh checkpoint");
    return mgr;
  }
  if (version > kManifestVersion) {
    sink.warning("checkpoint.manifest_version", 0,
                 "manifest format version " + std::to_string(version) +
                     " is newer than supported; starting fresh");
    return mgr;
  }
  if (stored_key != run_key) {
    sink.warning("checkpoint.run_key_mismatch", 0,
                 "checkpoint belongs to run " + hex64(stored_key) +
                     " but this run is " + hex64(run_key) +
                     "; ignoring its artifacts");
    return mgr;
  }
  for (const auto& [name, entry] : artifacts) {
    if (!valid_name(name)) continue;
    mgr.entries_[name] = Entry{entry.first, entry.second};
  }
  return mgr;
}

std::string CheckpointManager::path_of(const std::string& name) const {
  return dir_ + "/" + name;
}

bool CheckpointManager::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return entries_.count(name) > 0;
}

std::vector<std::string> CheckpointManager::names() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

StatusOr<std::string> CheckpointManager::read(const std::string& name,
                                              DiagnosticSink& sink) {
  Entry expected;
  {
    std::lock_guard<std::mutex> lock(*mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::NotFound("artifact " + name + " not in checkpoint");
    }
    expected = it->second;
  }
  const auto fail = [&](const std::string& why) -> Status {
    sink.warning("checkpoint.corrupt_artifact", 0,
                 name + ": " + why + "; will recompute");
    std::lock_guard<std::mutex> lock(*mutex_);
    entries_.erase(name);
    return Status::DataLoss(name + ": " + why);
  };
  StatusOr<std::string> data = read_file(path_of(name));
  if (!data.ok()) return fail(data.status().to_string());
  if (data->size() != expected.size) {
    return fail("size " + std::to_string(data->size()) +
                " != manifest size " + std::to_string(expected.size));
  }
  if (crc32_str(*data) != expected.crc) return fail("CRC mismatch");
  return std::move(*data);
}

Status CheckpointManager::write(const std::string& name,
                                const std::string& data) {
  if (!valid_name(name)) {
    return Status::InvalidArgument("bad artifact name: " + name);
  }
  // Artifact first, then the manifest that references it: after a crash
  // in between, the manifest simply does not know about the new file.
  Status s = atomic_write_file(path_of(name), data);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> lock(*mutex_);
  entries_[name] = Entry{data.size(), crc32_str(data)};
  return write_manifest_locked();
}

Status CheckpointManager::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(*mutex_);
  if (entries_.erase(name) == 0) return Status::Ok();
  std::error_code ec;
  std::filesystem::remove(path_of(name), ec);  // best-effort
  return write_manifest_locked();
}

Status CheckpointManager::write_manifest_locked() {
  std::vector<std::string> arts;
  arts.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    arts.push_back(JsonObject()
                       .field("name", name)
                       .field("size", static_cast<unsigned long>(e.size))
                       .field("crc32", hex32(e.crc))
                       .str());
  }
  const std::string json = JsonObject()
                               .field("format_version", kManifestVersion)
                               .field("run_key", hex64(run_key_))
                               .field_raw("artifacts", json_array(arts))
                               .str();
  return atomic_write_file(dir_ + "/manifest.json", json + "\n");
}

}  // namespace repro::common

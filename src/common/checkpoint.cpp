#include "common/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/binio.hpp"
#include "common/fault.hpp"
#include "common/json_scan.hpp"
#include "common/json_writer.hpp"

namespace repro::common {

namespace {

constexpr int kManifestVersion = 1;
constexpr const char* kLockName = ".lock";

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string hex32(std::uint32_t v) {
  char buf[12];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

/// Artifact names come from our own fold/design naming, but guard
/// against path tricks anyway: a name is a single path component (and
/// never the lock file).
bool valid_name(const std::string& name) {
  if (name.empty() || name == "." || name == ".." || name == kLockName) {
    return false;
  }
  return name.find('/') == std::string::npos &&
         name.find('\\') == std::string::npos;
}

/// Extracts the manifest schema fields from a parsed document. Any
/// shape mismatch simply yields fewer fields — the caller treats an
/// unusable manifest as a fresh checkpoint.
void extract_manifest(const JsonValue& doc, std::uint64_t& run_key,
                      int& version,
                      std::map<std::string,
                               std::pair<std::uint64_t, std::uint32_t>>&
                          artifacts) {
  run_key = std::strtoull(doc.get_string("run_key").c_str(), nullptr, 16);
  version = static_cast<int>(doc.get_i64("format_version", 0));
  const JsonValue* arr = doc.find("artifacts");
  if (!arr || !arr->is_array()) return;
  for (const JsonValue& item : arr->items) {
    const std::string name = item.get_string("name");
    if (name.empty()) continue;
    const std::uint64_t size = item.get_u64("size", 0);
    const std::uint32_t crc = static_cast<std::uint32_t>(
        std::strtoul(item.get_string("crc32").c_str(), nullptr, 16));
    artifacts[name] = {size, crc};
  }
}

/// Sweeps `*.tmp` leftovers from writes torn by a crash. Safe because
/// the manifest only ever references final names: a temp file is either
/// garbage or a write that never committed (and will be recomputed).
void sweep_torn_temps(const std::string& dir, DiagnosticSink& sink) {
  std::error_code ec;
  int swept = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      std::error_code rm_ec;
      std::filesystem::remove(entry.path(), rm_ec);
      if (!rm_ec) ++swept;
    }
  }
  if (swept > 0) {
    sink.note("checkpoint.stale_tmp", 0,
              "swept " + std::to_string(swept) +
                  " torn temp file(s) from an interrupted write");
  }
}

}  // namespace

std::string CheckpointManager::lock_path(const std::string& dir) {
  return dir + "/" + kLockName;
}

StatusOr<CheckpointManager> CheckpointManager::open(const std::string& dir,
                                                    std::uint64_t run_key,
                                                    DiagnosticSink& sink) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint dir " + dir + ": " +
                           ec.message());
  }
  return open_impl(dir, run_key, /*adopt_key=*/false, sink);
}

StatusOr<CheckpointManager> CheckpointManager::open_existing(
    const std::string& dir, DiagnosticSink& sink) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("checkpoint dir " + dir + " does not exist");
  }
  return open_impl(dir, /*run_key=*/0, /*adopt_key=*/true, sink);
}

StatusOr<CheckpointManager> CheckpointManager::open_impl(
    const std::string& dir, std::uint64_t run_key, bool adopt_key,
    DiagnosticSink& sink) {
  // Lock before reading anything: the manifest parse below must see a
  // quiescent directory, and a second process must fail here — loudly —
  // rather than interleave manifest rewrites with ours.
  StatusOr<FileLock> lock =
      FileLock::acquire(lock_path(dir), "checkpoint", sink);
  if (!lock.ok()) return lock.status();

  CheckpointManager mgr;
  mgr.dir_ = dir;
  mgr.run_key_ = run_key;
  mgr.lock_ = std::move(*lock);
  sweep_torn_temps(dir, sink);

  const std::string manifest_path = dir + "/manifest.json";
  StatusOr<std::string> text = read_file(manifest_path);
  if (!text.ok()) {
    if (text.status().code() != StatusCode::kNotFound) {
      return text.status();  // unreadable manifest: surface, don't guess
    }
    return mgr;  // fresh checkpoint
  }

  std::uint64_t stored_key = 0;
  int version = 0;
  std::map<std::string, std::pair<std::uint64_t, std::uint32_t>> artifacts;
  StatusOr<JsonValue> doc = parse_json(*text);
  if (!doc.ok() || !doc->is_object()) {
    sink.warning("checkpoint.corrupt_manifest", 0,
                 "manifest.json is unparseable; starting a fresh checkpoint");
    return mgr;
  }
  extract_manifest(*doc, stored_key, version, artifacts);
  if (version > kManifestVersion) {
    sink.warning("checkpoint.manifest_version", 0,
                 "manifest format version " + std::to_string(version) +
                     " is newer than supported; starting fresh");
    return mgr;
  }
  if (adopt_key) {
    mgr.run_key_ = stored_key;
  } else if (stored_key != run_key) {
    sink.warning("checkpoint.run_key_mismatch", 0,
                 "checkpoint belongs to run " + hex64(stored_key) +
                     " but this run is " + hex64(run_key) +
                     "; ignoring its artifacts");
    return mgr;
  }
  for (const auto& [name, entry] : artifacts) {
    if (!valid_name(name)) continue;
    mgr.entries_[name] = Entry{entry.first, entry.second};
  }
  return mgr;
}

std::string CheckpointManager::path_of(const std::string& name) const {
  return dir_ + "/" + name;
}

bool CheckpointManager::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return entries_.count(name) > 0;
}

std::vector<std::string> CheckpointManager::names() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

StatusOr<std::string> CheckpointManager::read(const std::string& name,
                                              DiagnosticSink& sink) {
  Entry expected;
  {
    std::lock_guard<std::mutex> lock(*mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::NotFound("artifact " + name + " not in checkpoint");
    }
    expected = it->second;
  }
  const auto fail = [&](const std::string& why) -> Status {
    sink.warning("checkpoint.corrupt_artifact", 0,
                 name + ": " + why + "; will recompute");
    std::lock_guard<std::mutex> lock(*mutex_);
    entries_.erase(name);
    return Status::DataLoss(name + ": " + why);
  };
  StatusOr<std::string> data = read_file(path_of(name));
  if (!data.ok()) return fail(data.status().to_string());
  if (data->size() != expected.size) {
    return fail("size " + std::to_string(data->size()) +
                " != manifest size " + std::to_string(expected.size));
  }
  if (crc32_str(*data) != expected.crc) return fail("CRC mismatch");
  return std::move(*data);
}

Status CheckpointManager::write(const std::string& name,
                                const std::string& data) {
  if (!valid_name(name)) {
    return Status::InvalidArgument("bad artifact name: " + name);
  }
  // The commit point the REPRO_FAULT hook counts. kCorrupt writes
  // damaged bytes while the manifest records the *true* size/CRC — the
  // exact signature of a torn write, guaranteed to fail read-back
  // validation. kHang parks inside on_artifact_commit and never
  // returns. kCrashAfter SIGKILLs below, after the commit is durable.
  const fault::Action action = fault::on_artifact_commit();

  // Artifact first, then the manifest that references it: after a crash
  // in between, the manifest simply does not know about the new file.
  Status s;
  if (action == fault::Action::kCorrupt) {
    std::string damaged = data;
    fault::corrupt_bytes(damaged);
    s = atomic_write_file(path_of(name), damaged);
  } else {
    s = atomic_write_file(path_of(name), data);
  }
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> lock(*mutex_);
    entries_[name] = Entry{data.size(), crc32_str(data)};
    s = write_manifest_locked();
  }
  if (action == fault::Action::kCrashAfter) fault::crash_now();
  return s;
}

Status CheckpointManager::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(*mutex_);
  if (entries_.erase(name) == 0) return Status::Ok();
  std::error_code ec;
  std::filesystem::remove(path_of(name), ec);  // best-effort
  return write_manifest_locked();
}

Status CheckpointManager::write_manifest_locked() {
  std::vector<std::string> arts;
  arts.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    arts.push_back(JsonObject()
                       .field("name", name)
                       .field("size", static_cast<unsigned long>(e.size))
                       .field("crc32", hex32(e.crc))
                       .str());
  }
  const std::string json = JsonObject()
                               .field("format_version", kManifestVersion)
                               .field("run_key", hex64(run_key_))
                               .field_raw("artifacts", json_array(arts))
                               .str();
  return atomic_write_file(dir_ + "/manifest.json", json + "\n");
}

}  // namespace repro::common

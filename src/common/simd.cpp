#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>

namespace repro::common::simd {

namespace {

/// -1 = unresolved; otherwise a Level value. Relaxed atomics: dispatch
/// resolution is idempotent, so a racing first call at worst resolves
/// twice to the same value.
std::atomic<int> g_level{-1};

Level clamp_to_supported(Level l) {
  return l > max_supported() ? max_supported() : l;
}

Level resolve_from_env() {
  if (const char* s = std::getenv("REPRO_SIMD")) {
    if (const auto l = parse_level(s)) return clamp_to_supported(*l);
  }
  return max_supported();
}

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSse2: return "sse2";
    case Level::kAvx2: return "avx2";
  }
  return "unknown";
}

std::optional<Level> parse_level(std::string_view s) {
  if (s == "scalar") return Level::kScalar;
  if (s == "sse2") return Level::kSse2;
  if (s == "avx2") return Level::kAvx2;
  return std::nullopt;  // "auto", "", typos: resolve from hardware
}

Level max_supported() {
#if defined(REPRO_SIMD_X86) && defined(__GNUC__)
  static const Level supported = [] {
    if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
    if (__builtin_cpu_supports("sse2")) return Level::kSse2;
    return Level::kScalar;
  }();
  return supported;
#else
  return Level::kScalar;
#endif
}

Level active() {
  const int v = g_level.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Level>(v);
  const Level resolved = resolve_from_env();
  g_level.store(static_cast<int>(resolved), std::memory_order_relaxed);
  return resolved;
}

void set_level(Level level) {
  g_level.store(static_cast<int>(clamp_to_supported(level)),
                std::memory_order_relaxed);
}

void reset_level() { g_level.store(-1, std::memory_order_relaxed); }

#if defined(REPRO_SIMD_X86)

const std::uint32_t (&compress8_table())[256][8] {
  static const auto& table = *[] {
    static std::uint32_t t[256][8];
    for (int m = 0; m < 256; ++m) {
      int k = 0;
      for (int lane = 0; lane < 8; ++lane) {
        if (m & (1 << lane)) t[m][k++] = static_cast<std::uint32_t>(lane);
      }
      for (; k < 8; ++k) t[m][k] = 0;
    }
    return &t;
  }();
  return table;
}

#endif  // REPRO_SIMD_X86

}  // namespace repro::common::simd

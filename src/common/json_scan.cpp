#include "common/json_scan.hpp"

#include <cctype>
#include <cstdlib>

namespace repro::common {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  StatusOr<JsonValue> parse_document() {
    JsonValue v;
    Status st = value(v, 0);
    if (!st.ok()) return st;
    skip_ws();
    if (pos_ != s_.size()) {
      return fail("trailing garbage after JSON document");
    }
    return v;
  }

 private:
  Status fail(const std::string& why) const {
    return Status::ParseError(why + " at byte " + std::to_string(pos_));
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status string(std::string& out) {
    skip_ws();
    if (!eat('"')) return fail("expected string");
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return Status::Ok();
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
            const std::string hex(s_.substr(pos_, 4));
            pos_ += 4;
            char* end = nullptr;
            const unsigned long cp = std::strtoul(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return fail("bad \\u escape");
            out += static_cast<char>(cp & 0xFF);  // low byte, documented
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  Status number(JsonValue& out) {
    skip_ws();
    const char* begin = s_.data() + pos_;
    char* end = nullptr;
    out.number = std::strtod(begin, &end);
    if (end == begin) return fail("expected number");
    out.raw_number.assign(begin, static_cast<std::size_t>(end - begin));
    pos_ += static_cast<std::size_t>(end - begin);
    out.kind = JsonValue::Kind::kNumber;
    return Status::Ok();
  }

  Status value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (eat('}')) return Status::Ok();
      do {
        std::string key;
        Status st = string(key);
        if (!st.ok()) return st;
        if (!eat(':')) return fail("expected ':'");
        JsonValue member;
        st = value(member, depth + 1);
        if (!st.ok()) return st;
        out.members.emplace_back(std::move(key), std::move(member));
      } while (eat(','));
      if (!eat('}')) return fail("expected '}'");
      return Status::Ok();
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (eat(']')) return Status::Ok();
      do {
        JsonValue item;
        Status st = value(item, depth + 1);
        if (!st.ok()) return st;
        out.items.push_back(std::move(item));
      } while (eat(','));
      if (!eat(']')) return fail("expected ']'");
      return Status::Ok();
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string(out.str);
    }
    if (literal("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return Status::Ok();
    }
    if (literal("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return Status::Ok();
    }
    if (literal("null")) {
      out.kind = JsonValue::Kind::kNull;
      return Status::Ok();
    }
    return number(out);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string JsonValue::as_string(std::string def) const {
  return kind == Kind::kString ? str : def;
}

double JsonValue::as_double(double def) const {
  return kind == Kind::kNumber ? number : def;
}

std::int64_t JsonValue::as_i64(std::int64_t def) const {
  if (kind != Kind::kNumber) return def;
  if (!raw_number.empty()) {
    char* end = nullptr;
    const long long v = std::strtoll(raw_number.c_str(), &end, 10);
    if (end == raw_number.c_str() + raw_number.size()) return v;
  }
  return static_cast<std::int64_t>(number);
}

std::uint64_t JsonValue::as_u64(std::uint64_t def) const {
  if (kind == Kind::kString) {
    // Hex-encoded u64s (run keys, digests) are serialized as strings.
    char* end = nullptr;
    const unsigned long long v = std::strtoull(str.c_str(), &end, 16);
    if (end == str.c_str() + str.size() && !str.empty()) return v;
    return def;
  }
  if (kind != Kind::kNumber) return def;
  if (!raw_number.empty()) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw_number.c_str(), &end, 10);
    if (end == raw_number.c_str() + raw_number.size()) return v;
  }
  return static_cast<std::uint64_t>(number);
}

bool JsonValue::as_bool(bool def) const {
  return kind == Kind::kBool ? boolean : def;
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string def) const {
  const JsonValue* v = find(key);
  return v ? v->as_string(std::move(def)) : def;
}

double JsonValue::get_double(std::string_view key, double def) const {
  const JsonValue* v = find(key);
  return v ? v->as_double(def) : def;
}

std::int64_t JsonValue::get_i64(std::string_view key, std::int64_t def) const {
  const JsonValue* v = find(key);
  return v ? v->as_i64(def) : def;
}

std::uint64_t JsonValue::get_u64(std::string_view key,
                                 std::uint64_t def) const {
  const JsonValue* v = find(key);
  return v ? v->as_u64(def) : def;
}

bool JsonValue::get_bool(std::string_view key, bool def) const {
  const JsonValue* v = find(key);
  return v ? v->as_bool(def) : def;
}

StatusOr<JsonValue> parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace repro::common

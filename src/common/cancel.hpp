// Cooperative cancellation and resource budgets for long campaigns.
//
// A CancelToken is a shared flag that long-running phases poll at safe
// points (between parallel-loop indices, between RRR iterations, between
// LOO folds). Setting it never interrupts a computation mid-expression:
// work units that already started finish normally, later ones are
// skipped, so every output slot is either fully computed or untouched —
// the invariant that makes checkpoint flushing after cancellation safe.
//
// request_cancel() is async-signal-safe (a relaxed atomic store), so the
// SIGINT/SIGTERM handler in split_attack can call it directly; the
// human-readable reason is attached from normal context only.
//
// A Budget bounds a run by wall-clock deadline and/or peak RSS. It is
// *checked*, not enforced: callers ask `pressure()` at phase boundaries
// and decide what to shed (see core::RunControl's degradation ladder).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace repro::common {

class CancelToken {
 public:
  /// Signal-safe: a relaxed store. May be called from any thread or from
  /// an asynchronous signal handler.
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Normal-context variant that also records why (first reason wins).
  void request_cancel(const std::string& reason);

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Reason attached by the normal-context request_cancel, if any
  /// ("deadline exceeded", "SIGINT", ...). Serial use only.
  const std::string& reason() const { return reason_; }

  /// Re-arms the token (tests, consecutive runs in one process).
  void reset();

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_reason_{false};
  std::string reason_;
};

/// The process-wide token that signal handlers flip; tools thread it
/// into their RunControl so ^C unwinds through the same cooperative
/// path as a deadline.
CancelToken& global_cancel_token();

/// How hard a budget is being pressed at a checkpoint.
enum class BudgetPressure {
  kNone = 0,   ///< plenty of budget left
  kSoft,       ///< past the soft fraction: start shedding accuracy
  kHard,       ///< past the hard fraction: shed aggressively
  kExceeded,   ///< budget gone: stop and flush
};

const char* to_string(BudgetPressure p);

/// Wall-clock / memory budget, armed once at run start.
class Budget {
 public:
  /// deadline_s <= 0 and max_rss_mb <= 0 disable the respective limit.
  Budget(double deadline_s, long max_rss_mb);

  bool unlimited() const { return deadline_s_ <= 0 && max_rss_mb_ <= 0; }
  double deadline_s() const { return deadline_s_; }
  long max_rss_mb() const { return max_rss_mb_; }
  double elapsed_s() const;

  /// Worst pressure across the armed limits. Deadline pressure uses the
  /// elapsed fraction (soft 0.6, hard 0.8, exceeded 1.0); RSS pressure
  /// uses the same fractions of max_rss_mb.
  BudgetPressure pressure() const;

 private:
  double deadline_s_ = 0;
  long max_rss_mb_ = 0;
  double start_s_ = 0;
};

/// Resident-set size of this process in MiB (Linux /proc/self/statm);
/// 0 when unavailable.
long current_rss_mb();

}  // namespace repro::common

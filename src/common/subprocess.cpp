#include "common/subprocess.hpp"

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace repro::common {

std::string WaitStatus::to_string() const {
  if (signaled) {
    const char* name = strsignal(signal);
    return "signal " + std::to_string(signal) +
           (name ? std::string(" (") + name + ")" : "");
  }
  if (exited) return "exit " + std::to_string(exit_code);
  return "running";
}

const char* to_string(ExitClass c) {
  switch (c) {
    case ExitClass::kOk: return "ok";
    case ExitClass::kOkDegraded: return "ok_degraded";
    case ExitClass::kInterrupted: return "interrupted";
    case ExitClass::kUsageError: return "usage_error";
    case ExitClass::kSpawnFailed: return "spawn_failed";
    case ExitClass::kFailed: return "failed";
    case ExitClass::kCrashed: return "crashed";
  }
  return "unknown";
}

ExitClass classify_exit(const WaitStatus& ws) {
  if (ws.signaled) return ExitClass::kCrashed;
  switch (ws.exit_code) {
    case kExitOk: return ExitClass::kOk;
    case kExitOkDegraded: return ExitClass::kOkDegraded;
    case kExitInterrupted: return ExitClass::kInterrupted;
    case kExitUsageError: return ExitClass::kUsageError;
    case kExitSpawnFailed: return ExitClass::kSpawnFailed;
    default: return ExitClass::kFailed;
  }
}

StatusOr<Subprocess> Subprocess::spawn(const SpawnOptions& opt) {
  if (opt.argv.empty()) {
    return Status::InvalidArgument("spawn requires a non-empty argv");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IoError(std::string("fork failed: ") +
                           std::strerror(errno));
  }
  if (pid == 0) {
    // Child. Only async-signal-safe-ish work until exec; on any failure
    // die with the spawn-failed code so the parent can classify it.
    const auto redirect = [](const std::string& path, int target_fd) {
      if (path.empty()) return true;
      const int fd =
          ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd < 0) return false;
      const bool ok = ::dup2(fd, target_fd) == target_fd;
      ::close(fd);
      return ok;
    };
    if (!redirect(opt.stdout_path, STDOUT_FILENO) ||
        !redirect(opt.stderr_path, STDERR_FILENO)) {
      ::_exit(kExitSpawnFailed);
    }
    for (const std::string& name : opt.env_unset) {
      ::unsetenv(name.c_str());
    }
    for (const auto& [name, value] : opt.env) {
      ::setenv(name.c_str(), value.c_str(), /*overwrite=*/1);
    }
    std::vector<char*> argv;
    argv.reserve(opt.argv.size() + 1);
    for (const std::string& a : opt.argv) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    ::_exit(kExitSpawnFailed);
  }
  Subprocess p;
  p.pid_ = pid;
  return p;
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), reaped_(other.reaped_), status_(other.status_) {
  other.pid_ = -1;
  other.reaped_ = true;
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    pid_ = other.pid_;
    reaped_ = other.reaped_;
    status_ = other.status_;
    other.pid_ = -1;
    other.reaped_ = true;
  }
  return *this;
}

bool Subprocess::poll() {
  if (reaped_) return true;
  if (pid_ <= 0) return false;
  int raw = 0;
  const pid_t r = ::waitpid(static_cast<pid_t>(pid_), &raw, WNOHANG);
  if (r == 0) return false;
  reaped_ = true;
  if (r < 0) {
    // The child was reaped elsewhere (should not happen); report it as a
    // crash rather than pretending it succeeded.
    status_.signaled = true;
    status_.signal = SIGKILL;
    return true;
  }
  if (WIFEXITED(raw)) {
    status_.exited = true;
    status_.exit_code = WEXITSTATUS(raw);
  } else if (WIFSIGNALED(raw)) {
    status_.signaled = true;
    status_.signal = WTERMSIG(raw);
  }
  return true;
}

const WaitStatus& Subprocess::wait() {
  while (!poll()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return status_;
}

bool Subprocess::wait_for(double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (!poll()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

void Subprocess::kill(int sig) {
  if (pid_ > 0 && !reaped_) {
    ::kill(static_cast<pid_t>(pid_), sig);
  }
}

}  // namespace repro::common

#include "common/http.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/fault.hpp"
#include "common/parallel.hpp"

namespace repro::common::http {

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left before `deadline`, clamped to [0, 24h] for poll().
int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  const long long ms = left.count();
  if (ms <= 0) return 0;
  return static_cast<int>(std::min<long long>(ms, 24LL * 3600 * 1000));
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Appends freshly readable bytes to `buf`, waiting on poll() up to the
/// deadline. Returns Ok on progress (>= 1 byte), or the read-contract
/// error. `what` names the phase for the error message ("headers",
/// "body"). A CancelToken (client side only) cuts the wait short with
/// kFailedPrecondition — polls are sliced so cancellation is seen
/// within ~100ms even under a long deadline.
Status read_more(int fd, Clock::time_point deadline, std::string* buf,
                 const char* what, const CancelToken* cancel = nullptr) {
  for (;;) {
    if (cancel != nullptr && cancel->cancelled()) {
      return Status::FailedPrecondition("read cancelled");
    }
    int ms = remaining_ms(deadline);
    if (ms == 0) {
      return Status::IoError(std::string("read deadline exceeded while "
                                         "waiting for request ") +
                             what);
    }
    if (cancel != nullptr) ms = std::min(ms, 100);
    struct pollfd p;
    p.fd = fd;
    p.events = POLLIN;
    p.revents = 0;
    const int rc = ::poll(&p, 1, ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll failed: ") +
                             std::strerror(errno));
    }
    if (rc == 0) continue;  // re-check the deadline, then report it
    char tmp[4096];
    const ssize_t n = ::read(fd, tmp, sizeof tmp);
    if (n > 0) {
      buf->append(tmp, static_cast<std::size_t>(n));
      return Status::Ok();
    }
    if (n == 0) {
      return Status::DataLoss(std::string("connection closed before "
                                          "request ") +
                              what + " completed");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::IoError(std::string("read failed: ") +
                           std::strerror(errno));
  }
}

Status parse_request_head(std::string_view head, Request* out) {
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line = head.substr(0, line_end);
  // method SP request-target SP version
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Status::ParseError("malformed request line");
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target =
      request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (method.empty() || target.empty() || target.front() != '/') {
    return Status::ParseError("malformed request line");
  }
  if (version != "HTTP/1.0" && version != "HTTP/1.1") {
    return Status::ParseError("unsupported HTTP version");
  }
  out->method = std::string(method);
  std::transform(out->method.begin(), out->method.end(),
                 out->method.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  out->path = std::string(target);
  out->version = std::string(version);

  std::size_t pos = line_end == std::string_view::npos
                        ? head.size()
                        : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("malformed header line");
    }
    out->headers.emplace_back(lower(trim(line.substr(0, colon))),
                              std::string(trim(line.substr(colon + 1))));
  }
  return Status::Ok();
}

Status write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n >= 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      struct pollfd p;
      p.fd = fd;
      p.events = POLLOUT;
      p.revents = 0;
      (void)::poll(&p, 1, 1000);
      continue;
    }
    return Status::IoError(std::string("write failed: ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

const std::string* Request::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

const std::string* Response::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

StatusOr<Request> read_request(int fd, const ReadLimits& limits) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(limits.deadline_s));
  std::string buf;
  std::size_t head_end;
  // Phase 1: accumulate until the header terminator, however the client
  // fragments its writes.
  for (;;) {
    head_end = buf.find("\r\n\r\n");
    // The size check must cover both exits: a client can deliver an
    // oversized header section in one segment, terminator included.
    if ((head_end == std::string::npos ? buf.size() : head_end) >
        limits.max_header_bytes) {
      return Status::OutOfRange("request headers exceed " +
                                std::to_string(limits.max_header_bytes) +
                                " bytes");
    }
    if (head_end != std::string::npos) break;
    Status st = read_more(fd, deadline, &buf, "headers");
    if (!st.ok()) return st;
  }

  Request req;
  Status st = parse_request_head(std::string_view(buf).substr(0, head_end),
                                 &req);
  if (!st.ok()) return st;

  std::size_t content_length = 0;
  if (const std::string* cl = req.header("content-length")) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
    if (errno != 0 || end == cl->c_str() || *end != '\0') {
      return Status::ParseError("malformed Content-Length");
    }
    content_length = static_cast<std::size_t>(v);
  }
  if (content_length > limits.max_body_bytes) {
    return Status::OutOfRange("request body of " +
                              std::to_string(content_length) +
                              " bytes exceeds " +
                              std::to_string(limits.max_body_bytes));
  }

  // Phase 2: the body, under the same overall deadline.
  req.body = buf.substr(head_end + 4);
  while (req.body.size() < content_length) {
    st = read_more(fd, deadline, &req.body, "body");
    if (!st.ok()) return st;
  }
  req.body.resize(content_length);  // drop pipelined trailing bytes
  return req;
}

const char* status_reason(int code) {
  switch (code) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

Status write_response(int fd, const Response& resp) {
  char head[256];
  std::snprintf(head, sizeof head,
                "HTTP/1.0 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n",
                resp.status, status_reason(resp.status),
                resp.content_type.c_str(), resp.body.size());
  std::string out(head);
  for (const auto& [k, v] : resp.extra_headers) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  out += "\r\n";
  out += resp.body;
  return write_all(fd, out);
}

bool response_for_read_error(const Status& err, Response* out) {
  switch (err.code()) {
    case StatusCode::kIoError:
      out->status = 408;
      break;
    case StatusCode::kOutOfRange:
      out->status = 413;
      break;
    case StatusCode::kParseError:
      out->status = 400;
      break;
    default:
      return false;  // peer gone (kDataLoss) — nothing to answer
  }
  out->content_type = "text/plain; charset=utf-8";
  out->body = err.message() + "\n";
  return true;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Listener::~Listener() { close(); }

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Listener> Listener::bind_loopback(int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port out of range");
  }
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Status::IoError(std::string("bind failed: ") +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    const Status st = Status::IoError(std::string("listen failed: ") +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound;
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status st = Status::IoError(std::string("getsockname failed: ") +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  Listener out;
  out.fd_ = fd;
  out.port_ = ntohs(bound.sin_port);
  return out;
}

int Listener::accept_for(int timeout_ms) {
  if (fd_ < 0) return -1;
  struct pollfd p;
  p.fd = fd_;
  p.events = POLLIN;
  p.revents = 0;
  const int rc = ::poll(&p, 1, timeout_ms);
  if (rc <= 0) return -1;
  // The listener is non-blocking: when several server threads wake for
  // the same connection, the losers get EAGAIN here and go back to
  // their poll tick.
  const int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  return client >= 0 ? client : -1;
}

StatusOr<std::unique_ptr<Server>> Server::start(Options opt,
                                                Handler handler) {
  if (opt.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  auto listener = Listener::bind_loopback(opt.port);
  if (!listener.ok()) return listener.status();
  std::unique_ptr<Server> srv(
      new Server(std::move(opt), std::move(handler)));
  srv->listener_ = std::move(*listener);
  srv->threads_.reserve(static_cast<std::size_t>(srv->opt_.num_threads));
  for (int i = 0; i < srv->opt_.num_threads; ++i) {
    srv->threads_.emplace_back([s = srv.get()] { s->serve_loop(); });
  }
  return srv;
}

Server::~Server() { stop(); }

void Server::serve_loop() {
  constexpr int kTickMs = 100;
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed)) return;
    if (opt_.cancel != nullptr && opt_.cancel->cancelled()) return;
    const int client = listener_.accept_for(kTickMs);
    if (client < 0) continue;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    auto req = read_request(client, opt_.limits);
    Response resp;
    bool respond = true;
    if (req.ok()) {
      resp = handler_(*req);
    } else {
      respond = response_for_read_error(req.status(), &resp);
      if (req.status().code() == StatusCode::kIoError) {
        read_timeouts_.fetch_add(1, std::memory_order_relaxed);
      } else if (respond) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (respond) {
      if (write_response(client, resp).ok()) {
        served_.fetch_add(1, std::memory_order_relaxed);
      } else {
        write_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!req.ok()) {
        // Early reject: request bytes may still sit unread in the
        // receive queue, and close() would then RST the connection and
        // destroy the response before the client reads it. Signal we
        // are done writing and briefly drain until the peer closes.
        ::shutdown(client, SHUT_WR);
        const auto drain_deadline =
            Clock::now() + std::chrono::milliseconds(500);
        char scratch[4096];
        for (;;) {
          struct pollfd p;
          p.fd = client;
          p.events = POLLIN;
          p.revents = 0;
          if (::poll(&p, 1, remaining_ms(drain_deadline)) <= 0) break;
          const ssize_t n = ::read(client, scratch, sizeof scratch);
          if (n == 0) break;  // peer closed: safe to close without RST
          if (n < 0 && errno != EINTR) break;
          if (remaining_ms(drain_deadline) == 0) break;
        }
      }
    }
    ::close(client);
  }
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  listener_.close();
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.read_timeouts = read_timeouts_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.write_errors = write_errors_.load(std::memory_order_relaxed);
  return s;
}

std::string Endpoint::label() const {
  return host + ":" + std::to_string(port);
}

StatusOr<Endpoint> parse_endpoint(const std::string& text) {
  Endpoint ep;
  const std::size_t colon = text.rfind(':');
  std::string host = colon == std::string::npos ? std::string("127.0.0.1")
                                                : text.substr(0, colon);
  const std::string num =
      colon == std::string::npos ? text : text.substr(colon + 1);
  if (host.empty()) host = "127.0.0.1";
  char* end = nullptr;
  const long port = std::strtol(num.c_str(), &end, 10);
  if (num.empty() || end != num.c_str() + num.size() || port < 1 ||
      port > 65535) {
    return Status::InvalidArgument("endpoint '" + text +
                                   "' is not host:port");
  }
  in_addr probe;
  if (::inet_pton(AF_INET, host.c_str(), &probe) != 1) {
    return Status::InvalidArgument("endpoint host '" + host +
                                   "' is not an IPv4 literal");
  }
  ep.host = host;
  ep.port = static_cast<int>(port);
  return ep;
}

/// Clears O_NONBLOCK on a connected socket: the flag exists only so the
/// handshake can be deadline-bounded; callers expect an ordinary
/// blocking fd (raw read/write without an EAGAIN loop).
StatusOr<int> restore_blocking(int fd, const Endpoint& ep) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) != 0) {
    const Status st =
        Status::IoError("connect to " + ep.label() +
                        ": cannot restore blocking mode: " +
                        std::strerror(errno));
    ::close(fd);
    return st;
  }
  return fd;
}

StatusOr<int> connect_to(const Endpoint& ep, double deadline_s) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("host '" + ep.host +
                                   "' is not an IPv4 literal");
  }
  addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(deadline_s));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
    return restore_blocking(fd, ep);  // loopback fast path: done
  }
  if (errno != EINPROGRESS && errno != EINTR) {
    const Status st = Status::IoError("connect to " + ep.label() +
                                      " failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  // Handshake in flight: wait for writability under the deadline, then
  // fetch the final verdict from SO_ERROR (the non-blocking connect
  // contract — POLLOUT fires for refusal too).
  for (;;) {
    const int ms = remaining_ms(deadline);
    if (ms == 0) {
      ::close(fd);
      return Status::IoError("connect to " + ep.label() +
                             " deadline exceeded");
    }
    struct pollfd p;
    p.fd = fd;
    p.events = POLLOUT;
    p.revents = 0;
    const int rc = ::poll(&p, 1, ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::IoError(std::string("poll failed: ") +
                                        std::strerror(errno));
      ::close(fd);
      return st;
    }
    if (rc == 0) continue;  // re-check the deadline, then report it
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      err = errno;
    }
    if (err != 0) {
      const Status st = Status::IoError("connect to " + ep.label() +
                                        " failed: " + std::strerror(err));
      ::close(fd);
      return st;
    }
    return restore_blocking(fd, ep);
  }
}

StatusOr<int> connect_loopback(int port, double deadline_s) {
  Endpoint ep;
  ep.port = port;
  return connect_to(ep, deadline_s);
}

StatusOr<Response> parse_response(std::string_view raw) {
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return Status::ParseError("no header terminator in response");
  }
  const std::string_view head = raw.substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view status_line = head.substr(0, line_end);
  // "HTTP/1.0 200 OK"
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos ||
      status_line.substr(0, 5) != "HTTP/") {
    return Status::ParseError("malformed status line");
  }
  Response resp;
  resp.status = std::atoi(std::string(status_line.substr(sp + 1)).c_str());
  std::size_t pos =
      line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string name = lower(trim(line.substr(0, colon)));
    const std::string value(trim(line.substr(colon + 1)));
    if (name == "content-type") resp.content_type = value;
    resp.headers.emplace_back(name, value);
  }
  resp.body = std::string(raw.substr(head_end + 4));
  return resp;
}

StatusOr<Response> fetch(const Endpoint& ep, const std::string& method,
                         const std::string& path, const std::string& body,
                         const std::string& content_type,
                         double deadline_s, const CancelToken* cancel) {
  auto fd = connect_to(ep, deadline_s);
  if (!fd.ok()) return fd.status();
  std::string req = method + " " + path + " HTTP/1.0\r\n";
  if (!body.empty()) {
    req += "Content-Type: " + content_type + "\r\n";
  }
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  req += body;
  Status st = write_all(*fd, req);
  if (!st.ok()) {
    ::close(*fd);
    return st;
  }
  ::shutdown(*fd, SHUT_WR);
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(deadline_s));
  std::string raw;
  for (;;) {
    Status rd = read_more(*fd, deadline, &raw, "response", cancel);
    if (rd.code() == StatusCode::kDataLoss) break;  // EOF: response done
    if (!rd.ok()) {
      ::close(*fd);
      return rd;
    }
  }
  ::close(*fd);
  return parse_response(raw);
}

StatusOr<Response> fetch(int port, const std::string& method,
                         const std::string& path, const std::string& body,
                         const std::string& content_type,
                         double deadline_s) {
  Endpoint ep;
  ep.port = port;
  return fetch(ep, method, path, body, content_type, deadline_s);
}

double retry_backoff_ms(const RetryPolicy& policy, int attempt) {
  if (attempt < 1) attempt = 1;
  double base = policy.backoff_base_ms;
  for (int i = 1; i < attempt && base < policy.backoff_max_ms; ++i) {
    base *= 2.0;
  }
  base = std::min(base, policy.backoff_max_ms);
  // 53 high-quality bits -> u in [0, 1) -> factor in [0.5, 1.0).
  const std::uint64_t h =
      derive_seed(policy.jitter_seed, static_cast<std::uint64_t>(attempt));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return base * (0.5 + 0.5 * u);
}

namespace {

/// Integer seconds from a Retry-After header value; -1 when absent or
/// not a plain number (HTTP dates are out of scope for this client).
long retry_after_seconds(const Response& resp) {
  const std::string* v = resp.header("retry-after");
  if (v == nullptr) return -1;
  char* end = nullptr;
  const long s = std::strtol(v->c_str(), &end, 10);
  if (v->empty() || end != v->c_str() + v->size() || s < 0) return -1;
  return s;
}

bool retryable_status(int status) {
  return status == 408 || status == 429 || status >= 500;
}

}  // namespace

StatusOr<Response> fetch_with_retry(const Endpoint& ep,
                                    const std::string& method,
                                    const std::string& path,
                                    const std::string& body,
                                    const RetryPolicy& policy,
                                    FetchStats* stats,
                                    const CancelToken* cancel) {
  FetchStats local;
  FetchStats& fs = stats != nullptr ? *stats : local;
  fs = FetchStats{};
  const int max_attempts = std::max(1, policy.max_attempts);
  Status last = Status::IoError("no attempts made");
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (cancel != nullptr && cancel->cancelled()) {
      return Status::FailedPrecondition("fetch cancelled");
    }
    ++fs.attempts;
    const fault::NetAction act = fault::on_net_request();
    if (act != fault::NetAction::kNone) ++fs.faults_injected;
    StatusOr<Response> resp =
        Status::IoError("injected fault before request");
    double retry_after_ms = -1.0;
    if (act == fault::NetAction::kRefuse) {
      last = Status::IoError("connect to " + ep.label() +
                             " failed: Connection refused (injected)");
    } else if (act == fault::NetAction::kDelay) {
      last = Status::IoError("fetch from " + ep.label() +
                             " deadline exceeded (injected delay)");
    } else {
      resp = fetch(ep, method, path, body, "application/json",
                   policy.request_deadline_s, cancel);
      if (resp.ok()) {
        if (act == fault::NetAction::kTruncate) {
          resp->body.resize(resp->body.size() / 2);
        } else if (act == fault::NetAction::kGarble) {
          fault::corrupt_bytes(resp->body);
        }
        // Payload integrity: a server that stamps X-Payload-Fnv promises
        // fnv1a64(body); a mismatch is a torn or garbled transfer and is
        // retried like any transport failure.
        const std::string* want = resp->header("x-payload-fnv");
        if (want != nullptr) {
          char got[24];
          std::snprintf(got, sizeof got, "%016llx",
                        static_cast<unsigned long long>(
                            fnv1a64(resp->body)));
          if (*want != got) {
            last = Status::DataLoss("payload digest mismatch from " +
                                    ep.label() + " (torn response)");
            resp = last;
          }
        }
      }
      if (resp.ok()) {
        if (!retryable_status(resp->status)) return resp;
        const long ra = retry_after_seconds(*resp);
        if (ra >= 0) retry_after_ms = 1000.0 * static_cast<double>(ra);
        last = Status::IoError(ep.label() + " answered " +
                               std::to_string(resp->status) + " " +
                               status_reason(resp->status));
      } else if (act == fault::NetAction::kNone ||
                 act == fault::NetAction::kTruncate ||
                 act == fault::NetAction::kGarble) {
        last = resp.status();
      }
    }
    if (attempt == max_attempts) break;
    double delay_ms = retry_backoff_ms(policy, attempt);
    const bool honored = retry_after_ms > delay_ms;
    if (honored) delay_ms = retry_after_ms;
    if (policy.on_backoff) policy.on_backoff(attempt, delay_ms, honored);
    ++fs.retries;
    if (!policy.skip_sleep) {
      // Chunked so a CancelToken cuts the wait short (a terminating
      // supervisor must not sit out a multi-second backoff).
      const auto until =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 delay_ms));
      while (Clock::now() < until) {
        if (cancel != nullptr && cancel->cancelled()) {
          return Status::FailedPrecondition("fetch cancelled");
        }
        const auto left = until - Clock::now();
        std::this_thread::sleep_for(
            std::min<Clock::duration>(left,
                                      std::chrono::milliseconds(25)));
      }
    }
  }
  return last;
}

}  // namespace repro::common::http

#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>

#if defined(__linux__)
#include <sched.h>
#endif

namespace repro::common {

namespace {

/// True on threads currently executing a parallel_for chunk; nested
/// parallel_for calls detect this and run inline.
thread_local bool t_in_parallel_region = false;

/// Pool worker index of this thread; 0 for the caller / non-pool threads.
thread_local int t_worker_id = 0;

int env_threads() {
  if (const char* s = std::getenv("REPRO_THREADS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v > 0) return static_cast<int>(std::min(v, 1024L));
  }
  return 0;
}

int default_threads() {
  if (const int n = env_threads(); n > 0) return n;
  return usable_cpus();
}

}  // namespace

int usable_cpus() {
#if defined(__linux__)
  // The affinity mask is what the scheduler will actually give us:
  // container cpusets and taskset pins shrink it while
  // hardware_concurrency() keeps reporting the whole machine.
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof set, &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return n;
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

struct ThreadPool::State {
  std::mutex mutex;
  std::condition_variable work_cv;  ///< workers wait for a new generation
  std::condition_variable done_cv;  ///< caller waits for chunk completion

  // Current job; a worker runs chunk `worker_index` of the job whenever
  // generation differs from the generation it last completed. The caller
  // never starts a new job before every chunk of the previous one is done,
  // so (generation, body, n, num_chunks) are stable while workers run.
  std::uint64_t generation = 0;
  const std::function<void(std::int64_t)>* body = nullptr;
  const CancelToken* cancel = nullptr;
  std::int64_t n = 0;
  int num_chunks = 0;
  int chunks_done = 0;
  std::exception_ptr first_error;
  bool shutdown = false;
};

namespace {

/// Chunk c of [0, n) over k chunks: contiguous, deterministic, balanced.
std::pair<std::int64_t, std::int64_t> chunk_range(std::int64_t n, int k,
                                                  int c) {
  const std::int64_t lo = n * c / k;
  const std::int64_t hi = n * (c + 1) / k;
  return {lo, hi};
}

void run_chunk(ThreadPool::State& st, int chunk) {
  // With a grain-limited chunk count, workers past the last chunk have
  // nothing to do this generation (they still report completion).
  if (chunk >= st.num_chunks) return;
  const auto [lo, hi] = chunk_range(st.n, st.num_chunks, chunk);
  t_in_parallel_region = true;
  try {
    for (std::int64_t i = lo; i < hi; ++i) {
      // Cooperative cancellation: checked *between* bodies only, so an
      // index either runs to completion or never starts.
      if (st.cancel && st.cancel->cancelled()) break;
      (*st.body)(i);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(st.mutex);
    if (!st.first_error) st.first_error = std::current_exception();
  }
  t_in_parallel_region = false;
}

}  // namespace

ScopedInline::ScopedInline() : prev_(t_in_parallel_region) {
  t_in_parallel_region = true;
}

ScopedInline::~ScopedInline() { t_in_parallel_region = prev_; }

ThreadPool::ThreadPool(int num_threads) : state_(std::make_unique<State>()) {
  int n = num_threads > 0 ? num_threads : default_threads();
  n = std::clamp(n, 1, 1024);
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int w = 1; w < n; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->shutdown = true;
  }
  state_->work_cv.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop(int worker_index) {
  t_worker_id = worker_index;
  State& st = *state_;
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(st.mutex);
      st.work_cv.wait(lock, [&] {
        return st.shutdown || st.generation != seen_generation;
      });
      if (st.shutdown) return;
      seen_generation = st.generation;
    }
    run_chunk(st, worker_index);
    {
      std::lock_guard<std::mutex> lock(st.mutex);
      ++st.chunks_done;
    }
    st.done_cv.notify_one();
  }
}

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& body,
                              const CancelToken* cancel,
                              std::int64_t grain) {
  if (n <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  // At most one chunk per `grain` indices, never more than the pool has
  // threads; a single chunk runs inline below.
  const int max_chunks =
      static_cast<int>(std::min<std::int64_t>(n / grain > 0 ? n / grain : 1,
                                              num_threads()));
  // Inline fallback: single-threaded pool, nested call, or a loop too
  // small to be worth a wakeup. The cutoff only skips dispatch overhead;
  // results are identical either way.
  if (workers_.empty() || t_in_parallel_region || n < 2 || max_chunks < 2) {
    const bool was_nested = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      for (std::int64_t i = 0; i < n; ++i) {
        if (cancel && cancel->cancelled()) break;
        body(i);
      }
    } catch (...) {
      t_in_parallel_region = was_nested;
      throw;
    }
    t_in_parallel_region = was_nested;
    return;
  }

  State& st = *state_;
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    st.body = &body;
    st.cancel = cancel;
    st.n = n;
    st.num_chunks = max_chunks;
    st.chunks_done = 0;
    st.first_error = nullptr;
    ++st.generation;
  }
  st.work_cv.notify_all();

  run_chunk(st, 0);  // the caller executes chunk 0

  // Every pool worker reports completion each generation, including the
  // ones past the last grain-limited chunk (their run_chunk is a no-op).
  const int expected_done = num_threads() - 1;
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(st.mutex);
    st.done_cv.wait(lock,
                    [&] { return st.chunks_done == expected_done; });
    st.body = nullptr;
    st.cancel = nullptr;
    error = st.first_error;
  }
  if (error) std::rethrow_exception(error);
}

int configured_threads() {
  return default_threads();
}

int current_worker_id() { return t_worker_id; }

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>();
  return *g_pool;
}

void set_global_threads(int num_threads) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool = std::make_unique<ThreadPool>(num_threads);
}

}  // namespace repro::common

#include "common/diagnostics.hpp"

#include <ostream>

namespace repro::common {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
    case Severity::kFatal: return "fatal";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::string out = common::to_string(severity);
  out += ": ";
  if (!file.empty()) {
    out += file;
    out += ':';
    if (line > 0) {
      out += std::to_string(line);
      out += ':';
    }
    out += ' ';
  } else if (line > 0) {
    out += "line " + std::to_string(line) + ": ";
  }
  out += '[' + code + "] " + message;
  return out;
}

void DiagnosticSink::report(Severity sev, std::string code, int line,
                            std::string message) {
  ++counts_[static_cast<std::size_t>(sev)];
  ++total_;
  if (diags_.size() >= max_stored_) return;
  diags_.push_back(Diagnostic{sev, std::move(code), file_, line,
                              std::move(message)});
}

const Diagnostic* DiagnosticSink::first_error() const {
  for (const Diagnostic& d : diags_) {
    if (d.severity >= Severity::kError) return &d;
  }
  return nullptr;
}

std::string DiagnosticSink::summary() const {
  const auto part = [](std::size_t n, const char* noun) {
    return std::to_string(n) + ' ' + noun + (n == 1 ? "" : "s");
  };
  std::string out;
  const std::size_t fatals = count(Severity::kFatal);
  const std::size_t errors = count(Severity::kError);
  const std::size_t warnings = count(Severity::kWarning);
  const std::size_t notes = count(Severity::kNote);
  const auto append = [&out](const std::string& s) {
    if (!out.empty()) out += ", ";
    out += s;
  };
  if (fatals > 0) append(part(fatals, "fatal error"));
  if (errors > 0) append(part(errors, "error"));
  if (warnings > 0) append(part(warnings, "warning"));
  if (notes > 0) append(part(notes, "note"));
  return out.empty() ? "clean" : out;
}

void DiagnosticSink::print(std::ostream& os) const {
  for (const Diagnostic& d : diags_) os << d.to_string() << '\n';
  if (dropped() > 0) {
    os << "... " << dropped() << " further diagnostics not stored\n";
  }
}

void DiagnosticSink::clear() {
  diags_.clear();
  for (std::size_t& c : counts_) c = 0;
  total_ = 0;
}

}  // namespace repro::common

#include "common/telemetry.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/cancel.hpp"
#include "common/json_scan.hpp"
#include "common/json_writer.hpp"
#include "common/obs.hpp"

namespace repro::common::obs {

namespace {

double wall_now_s() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::atomic<const char*> g_phase{"idle"};
std::atomic<long> g_rss_mb{0};
std::atomic<long> g_rss_peak_mb{0};

std::uint64_t counter_value(const std::vector<MetricSnapshot>& metrics,
                            std::string_view name) {
  for (const auto& m : metrics) {
    if (m.kind == MetricSnapshot::Kind::kCounter && m.name == name) {
      return m.count;
    }
  }
  return 0;
}

}  // namespace

void set_phase(const char* phase) {
  g_phase.store(phase != nullptr ? phase : "idle", std::memory_order_relaxed);
}

const char* current_phase() {
  return g_phase.load(std::memory_order_relaxed);
}

long sample_rss() {
  const long rss = current_rss_mb();
  g_rss_mb.store(rss, std::memory_order_relaxed);
  long peak = g_rss_peak_mb.load(std::memory_order_relaxed);
  while (rss > peak && !g_rss_peak_mb.compare_exchange_weak(
                           peak, rss, std::memory_order_relaxed)) {
  }
  return rss;
}

long rss_mb() { return g_rss_mb.load(std::memory_order_relaxed); }

long rss_peak_mb() { return g_rss_peak_mb.load(std::memory_order_relaxed); }

// --- records ---------------------------------------------------------------

std::string TelemetryRecord::to_json() const {
  JsonObject obj;
  obj.field("kind", kind)
      .field("seq", static_cast<unsigned long>(seq))
      .field("pid", static_cast<long>(pid))
      .field("t", t)
      .field("phase", phase)
      .field("progress", static_cast<unsigned long>(progress))
      .field("targets_done", static_cast<unsigned long>(targets_done))
      .field("pairs_scored", static_cast<unsigned long>(pairs_scored))
      .field("trees_done", static_cast<unsigned long>(trees_done))
      .field("folds_done", static_cast<unsigned long>(folds_done))
      .field("rss_mb", static_cast<long>(rss_mb))
      .field("rss_peak_mb", static_cast<long>(rss_peak_mb));
  if (!pressure.empty()) {
    obj.field("pressure", pressure);
  }
  return obj.str();
}

StatusOr<TelemetryRecord> parse_telemetry_line(std::string_view line) {
  auto parsed = parse_json(line);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const JsonValue& v = *parsed;
  if (!v.is_object()) {
    return Status::ParseError("telemetry line is not a JSON object");
  }
  if (v.find("kind") == nullptr || v.find("seq") == nullptr) {
    return Status::ParseError("telemetry line lacks kind/seq");
  }
  TelemetryRecord rec;
  rec.kind = v.get_string("kind", "heartbeat");
  rec.seq = v.get_u64("seq", 0);
  rec.pid = v.get_i64("pid", 0);
  rec.t = v.get_double("t", 0);
  rec.phase = v.get_string("phase", "");
  rec.progress = v.get_u64("progress", 0);
  rec.targets_done = v.get_u64("targets_done", 0);
  rec.pairs_scored = v.get_u64("pairs_scored", 0);
  rec.trees_done = v.get_u64("trees_done", 0);
  rec.folds_done = v.get_u64("folds_done", 0);
  rec.rss_mb = v.get_i64("rss_mb", 0);
  rec.rss_peak_mb = v.get_i64("rss_peak_mb", 0);
  rec.pressure = v.get_string("pressure", "");
  return rec;
}

TelemetryRecord sample_telemetry(const Budget* budget) {
  TelemetryRecord rec;
  rec.pid = static_cast<std::int64_t>(::getpid());
  rec.t = wall_now_s();
  rec.phase = current_phase();
  const long rss = sample_rss();
  rec.rss_mb = rss;
  rec.rss_peak_mb = rss_peak_mb();
  if (budget != nullptr && !budget->unlimited()) {
    rec.pressure = to_string(budget->pressure());
  }
  const std::vector<MetricSnapshot> metrics = snapshot_metrics();
  for (const auto& m : metrics) {
    if (m.kind == MetricSnapshot::Kind::kCounter) {
      rec.progress += m.count;
    }
  }
  rec.targets_done = counter_value(metrics, "attack.targets_done");
  rec.pairs_scored = counter_value(metrics, "attack.pairs_scored");
  rec.trees_done = counter_value(metrics, "ml.trees_done");
  rec.folds_done = counter_value(metrics, "loo.folds_done");
  return rec;
}

// --- writer ----------------------------------------------------------------

StatusOr<TelemetryWriter> TelemetryWriter::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    return Status::IoError("telemetry: cannot open " + path + ": " +
                           std::strerror(errno));
  }
  return TelemetryWriter(fd, path);
}

TelemetryWriter::TelemetryWriter(TelemetryWriter&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

TelemetryWriter& TelemetryWriter::operator=(TelemetryWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

TelemetryWriter::~TelemetryWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status TelemetryWriter::append(const TelemetryRecord& rec) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("telemetry: writer is closed");
  }
  // One write() of the whole line: O_APPEND makes it land atomically at
  // EOF, so concurrent writers interleave by whole records and a crash
  // tears at most the final line.
  std::string line = rec.to_json();
  line.push_back('\n');
  const char* p = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError("telemetry: write to " + path_ + " failed: " +
                             std::strerror(errno));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

// --- readers ---------------------------------------------------------------

TelemetryLog read_telemetry(const std::string& path) {
  TelemetryLog log;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return log;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      // Torn final line (no newline landed): skip, never fatal.
      ++log.skipped;
      break;
    }
    const std::string_view line(text.data() + pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) {
      continue;
    }
    auto rec = parse_telemetry_line(line);
    if (rec.ok()) {
      log.records.push_back(std::move(*rec));
    } else {
      ++log.skipped;
    }
  }
  return log;
}

std::size_t TelemetryTail::poll(std::vector<TelemetryRecord>& out) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    return 0;
  }
  in.seekg(static_cast<std::streamoff>(offset_));
  if (!in) {
    return 0;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::size_t added = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      break;  // in-flight line: leave for the next poll
    }
    const std::string_view line(text.data() + pos, nl - pos);
    offset_ += (nl - pos) + 1;
    pos = nl + 1;
    if (line.empty()) {
      continue;
    }
    auto rec = parse_telemetry_line(line);
    if (rec.ok()) {
      out.push_back(std::move(*rec));
      ++added;
    } else {
      ++skipped_;
    }
  }
  return added;
}

// --- heartbeat -------------------------------------------------------------

StatusOr<std::unique_ptr<Heartbeat>> Heartbeat::start(Options opt) {
  std::unique_ptr<Heartbeat> hb(new Heartbeat());
  if (!opt.path.empty()) {
    auto writer = TelemetryWriter::open(opt.path);
    if (!writer.ok()) {
      return writer.status();
    }
    hb->writer_ =
        std::make_unique<TelemetryWriter>(std::move(writer).value());
  }
  hb->budget_ = opt.budget;
  hb->interval_s_ = opt.interval_s >= 0.01 ? opt.interval_s : 0.01;
  hb->stopped_ = false;
  hb->emit("start");
  hb->thread_ = std::thread([raw = hb.get()] { raw->run_loop(); });
  return hb;
}

void Heartbeat::emit(const char* kind) {
  TelemetryRecord rec = sample_telemetry(budget_);
  rec.kind = kind;
  rec.seq = seq_++;
  if (writer_ != nullptr && writer_->append(rec).ok()) {
    ++written_;
  }
}

void Heartbeat::run_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto interval = std::chrono::duration<double>(interval_s_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) {
      break;
    }
    emit("heartbeat");
  }
}

void Heartbeat::stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  emit("final");
}

std::uint64_t Heartbeat::records_written() const { return written_; }

// --- Prometheus ------------------------------------------------------------

namespace {

std::string sanitize_metric_name(std::string_view prefix,
                                 std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + name.size());
  out.append(prefix);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string render_double(double v) {
  // Prometheus values are plain decimals; reuse the JSON renderer (it
  // never emits NaN/Inf, which the registry cannot hold anyway).
  return json_num(v);
}

}  // namespace

std::string prometheus_text(const std::vector<MetricSnapshot>& metrics,
                            std::string_view prefix) {
  std::string out;
  for (const auto& m : metrics) {
    const std::string name = sanitize_metric_name(prefix, m.name);
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += "# TYPE " + name + "_total counter\n";
        out += name + "_total " + std::to_string(m.count) + "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + render_double(m.value) + "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          cum += m.buckets[i];
          const std::string le =
              i < m.edges.size() ? render_double(m.edges[i]) : "+Inf";
          out += name + "_bucket{le=\"" + le + "\"} " + std::to_string(cum) +
                 "\n";
        }
        // _sum is mandatory in the exposition format (it is what makes
        // rate(x_sum)/rate(x_count) averages possible); rendered from
        // the histogram's exact micro-unit integer sum.
        out += name + "_sum " +
               render_double(static_cast<double>(m.sum_micros) / 1e6) +
               "\n";
        out += name + "_count " + std::to_string(cum) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string prometheus_text() {
  std::string out = prometheus_text(snapshot_metrics(), "repro_");
  out += "# TYPE repro_rss_mb gauge\nrepro_rss_mb " +
         std::to_string(rss_mb()) + "\n";
  out += "# TYPE repro_rss_peak_mb gauge\nrepro_rss_peak_mb " +
         std::to_string(rss_peak_mb()) + "\n";
  return out;
}

}  // namespace repro::common::obs

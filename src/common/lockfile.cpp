#include "common/lockfile.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/binio.hpp"

namespace repro::common {

namespace {

/// Serializes the owner record: "pid label\n".
std::string owner_record(long pid, const std::string& label) {
  return std::to_string(pid) + " " + label + "\n";
}

}  // namespace

FileLock::Owner read_lock_owner(const std::string& path) {
  FileLock::Owner owner;
  StatusOr<std::string> raw = read_file(path);
  if (!raw.ok()) return owner;
  const std::string& text = *raw;
  char* end = nullptr;
  owner.pid = std::strtol(text.c_str(), &end, 10);
  if (end && *end == ' ') {
    std::string label(end + 1);
    while (!label.empty() && (label.back() == '\n' || label.back() == '\r')) {
      label.pop_back();
    }
    owner.label = std::move(label);
  }
  return owner;
}

bool process_alive(long pid) {
  if (pid <= 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

StatusOr<FileLock> FileLock::acquire(const std::string& path,
                                     const std::string& label,
                                     DiagnosticSink& sink) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open lock file " + path + ": " +
                           std::strerror(errno));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    const int flock_errno = errno;
    ::close(fd);
    if (flock_errno == EWOULDBLOCK || flock_errno == EAGAIN) {
      const Owner holder = read_lock_owner(path);
      std::string who = holder.pid > 0
                            ? "pid " + std::to_string(holder.pid) +
                                  (holder.label.empty()
                                       ? ""
                                       : " (" + holder.label + ")")
                            : "another process";
      return Status::FailedPrecondition(
          path + " is locked by " + who +
          "; refusing to race a live writer on the same directory");
    }
    return Status::IoError("flock " + path + " failed: " +
                           std::strerror(flock_errno));
  }

  // We own the kernel lock. Anything previously recorded in the file is a
  // leftover from an owner that released (or died) without contention —
  // report the dead-pid case so operators can see reclaims in the log.
  const Owner previous = read_lock_owner(path);
  const long self = static_cast<long>(::getpid());
  if (previous.pid > 0 && previous.pid != self &&
      !process_alive(previous.pid)) {
    sink.note("lockfile.stale_reclaimed", 0,
              path + ": reclaimed stale lock of dead pid " +
                  std::to_string(previous.pid) +
                  (previous.label.empty() ? "" : " (" + previous.label + ")"));
  }

  const std::string record = owner_record(self, label);
  bool wrote = ::ftruncate(fd, 0) == 0 && ::lseek(fd, 0, SEEK_SET) == 0;
  if (wrote) {
    std::size_t off = 0;
    while (off < record.size()) {
      const ssize_t n =
          ::write(fd, record.data() + off, record.size() - off);
      if (n <= 0) {
        wrote = false;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
  }
  if (!wrote) {
    // The lock itself is fine; a failed owner record only degrades the
    // error message a contender would print.
    sink.note("lockfile.record_write_failed", 0,
              path + ": could not record owner pid (lock still held)");
  }

  FileLock lock;
  lock.fd_ = fd;
  lock.path_ = path;
  return lock;
}

FileLock::FileLock(FileLock&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this != &other) {
    release();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

FileLock::~FileLock() { release(); }

void FileLock::release() {
  if (fd_ >= 0) {
    ::close(fd_);  // closing the description drops the flock
    fd_ = -1;
  }
}

}  // namespace repro::common

// Minimal JSON reader for the repo's own on-disk state files.
//
// The checkpoint manifest, the campaign state file, and the per-run
// digest files are all JSON we emitted ourselves — but by the time they
// are read back they are third-party input (hand-edited, crash-torn,
// bit-rotted), so the reader must accept any well-formed JSON and turn
// every malformation into a Status instead of UB. This module replaces
// the parser that used to live privately inside checkpoint.cpp with a
// shared DOM-lite: parse once, then navigate with find()/as_* helpers.
//
// Deliberate simplifications (fine for our schemas, documented so they
// are not mistaken for bugs): \uXXXX escapes decode to the low byte
// only, and numbers keep their raw token alongside the double so exact
// u64 values (sizes, keys) can be re-parsed without precision loss.
// Nesting depth is capped so a pathological file cannot overflow the
// stack.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace repro::common {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string raw_number;  ///< original token; exact for u64 re-parse
  std::string str;
  std::vector<JsonValue> items;                            ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* find(std::string_view key) const;

  /// Convenience accessors with defaults — absent/mistyped fields yield
  /// the default, never a crash.
  std::string as_string(std::string def = "") const;
  double as_double(double def = 0) const;
  std::int64_t as_i64(std::int64_t def = 0) const;
  std::uint64_t as_u64(std::uint64_t def = 0) const;  ///< from raw token
  bool as_bool(bool def = false) const;

  /// Member-level helpers: obj.get_u64("size", 0).
  std::string get_string(std::string_view key, std::string def = "") const;
  double get_double(std::string_view key, double def = 0) const;
  std::int64_t get_i64(std::string_view key, std::int64_t def = 0) const;
  std::uint64_t get_u64(std::string_view key, std::uint64_t def = 0) const;
  bool get_bool(std::string_view key, bool def = false) const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Every failure is kParseError with a byte offset.
StatusOr<JsonValue> parse_json(std::string_view text);

}  // namespace repro::common

// Cross-process telemetry: the worker side of campaign observability.
//
// A `split_attack --fold` worker runs in its own process, so the obs
// registry (src/common/obs) is invisible to the supervisor until the
// worker exits. This module exports a live, crash-safe view: a
// background heartbeat thread samples the metrics registry, the current
// phase marker, and the process RSS at a fixed interval and appends one
// JSON record per sample to a per-shard `telemetry.jsonl`.
//
// Crash-safe append protocol
//   The file is opened O_APPEND and every record is one write(2) of a
//   complete line including the trailing '\n'. POSIX O_APPEND makes each
//   write land atomically at the end of the file, so a SIGKILL can leave
//   at most one torn *final* line (a short write mid-record). Readers
//   therefore skip any line that does not parse or is not
//   newline-terminated — `read_telemetry` / `TelemetryTail` never fail
//   on a torn tail, they just surface one fewer record.
//
// Progress and stall detection
//   Each record carries `progress`: the sum of every counter in the obs
//   registry. Counters are monotone, so progress is monotone, and it
//   moves whenever the worker does real work (trees grown, targets
//   scored, nets routed...). The supervisor's stall detector keys off
//   progress, not record arrival: a worker whose main thread is hung
//   (REPRO_FAULT=hang parks it inside a checkpoint commit) still has a
//   live heartbeat thread appending records, but its progress freezes —
//   which is exactly the signal that distinguishes "hung" from "slow".
//
// Snapshot semantics: the heartbeat thread reads counters with relaxed
// atomics concurrently with worker updates. Values may be mid-flight
// (that is fine for monitoring a monotone quantity); the serial-point
// exactness contract of obs.hpp applies only to the end-of-run flush.
//
// RSS lives OUTSIDE the obs registry on purpose: metrics_json() files
// are byte-compared across thread counts and runs (check_obs.sh,
// bench_attack's metrics_identical), and a resident-set gauge would
// differ run to run. Peak RSS is tracked in module-local atomics and
// surfaced through telemetry records, run-report fields, and the
// Prometheus rendering instead.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.hpp"

namespace repro::common {
class Budget;
}

namespace repro::common::obs {

// --- phase marker -----------------------------------------------------------
// A coarse, lock-free "what is the worker doing" label ("ingest",
// "train", "score", "report", "done"). Must be a string literal (the
// pointer is stored raw). Under parallel LOO folds phases interleave and
// last-writer-wins — the marker is a monitoring hint, not a trace.
void set_phase(const char* phase);
const char* current_phase();

// --- RSS sampling (satellite: periodic, not just at budget checks) ----------
/// Samples /proc RSS now, updates the module-local current/peak values,
/// and returns the current RSS in MiB. Called by the heartbeat thread
/// each tick and usable from serial points directly.
long sample_rss();
/// Last sampled RSS in MiB (0 before the first sample).
long rss_mb();
/// Maximum RSS seen by any sample_rss() call in this process.
long rss_peak_mb();

// --- telemetry records ------------------------------------------------------

/// One line of telemetry.jsonl. All fields have safe defaults so a
/// reader tolerates records from newer/older writers.
struct TelemetryRecord {
  std::string kind = "heartbeat";  ///< "start" | "heartbeat" | "final"
  std::uint64_t seq = 0;           ///< per-writer, strictly increasing
  std::int64_t pid = 0;
  double t = 0;                    ///< unix wall-clock seconds
  std::string phase;
  std::uint64_t progress = 0;      ///< sum of all obs counters (monotone)
  std::uint64_t targets_done = 0;  ///< counter attack.targets_done
  std::uint64_t pairs_scored = 0;  ///< counter attack.pairs_scored
  std::uint64_t trees_done = 0;    ///< counter ml.trees_done
  std::uint64_t folds_done = 0;    ///< counter loo.folds_done
  std::int64_t rss_mb = 0;
  std::int64_t rss_peak_mb = 0;
  std::string pressure;            ///< budget pressure name; "" = no budget

  std::string to_json() const;  ///< one line, no trailing newline
};

/// Parses one line; any malformation is a Status (torn tail, garbage).
StatusOr<TelemetryRecord> parse_telemetry_line(std::string_view line);

/// Builds a record from the current obs registry + phase + RSS samples.
/// `budget` may be null. Does not touch span buffers (not thread-safe to
/// snapshot concurrently); metrics only.
TelemetryRecord sample_telemetry(const Budget* budget);

/// Crash-safe JSONL appender: O_APPEND fd, one write() per record.
class TelemetryWriter {
 public:
  static StatusOr<TelemetryWriter> open(const std::string& path);
  TelemetryWriter(TelemetryWriter&& other) noexcept;
  TelemetryWriter& operator=(TelemetryWriter&& other) noexcept;
  TelemetryWriter(const TelemetryWriter&) = delete;
  TelemetryWriter& operator=(const TelemetryWriter&) = delete;
  ~TelemetryWriter();

  Status append(const TelemetryRecord& rec);
  const std::string& path() const { return path_; }

 private:
  TelemetryWriter(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  int fd_ = -1;
  std::string path_;
};

/// Whole-file read: every complete, parseable record in file order.
/// Torn or malformed lines are counted in `skipped`, never fatal; a
/// missing file is simply zero records.
struct TelemetryLog {
  std::vector<TelemetryRecord> records;
  std::size_t skipped = 0;
};
TelemetryLog read_telemetry(const std::string& path);

/// Incremental reader for the supervisor: remembers the byte offset of
/// the last complete line and returns only newly completed records on
/// each poll. A line is consumed only once its '\n' has landed, so a
/// torn in-flight line is retried (not skipped) until the writer
/// finishes it — or abandoned if the writer dies, in which case it is
/// never consumed at all.
class TelemetryTail {
 public:
  explicit TelemetryTail(std::string path) : path_(std::move(path)) {}

  /// Appends newly completed records to `out`; returns how many.
  std::size_t poll(std::vector<TelemetryRecord>& out);
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint64_t offset_ = 0;  ///< bytes of consumed complete lines
  std::size_t skipped_ = 0;
};

// --- heartbeat thread -------------------------------------------------------

/// Background sampler. Writes a "start" record immediately, a
/// "heartbeat" record every interval, and a "final" record on stop().
/// With an empty path it still samples RSS each tick (so run-report peak
/// RSS is trustworthy even without a telemetry file) but writes nothing.
class Heartbeat {
 public:
  struct Options {
    std::string path;          ///< telemetry.jsonl; "" = sample-only mode
    double interval_s = 1.0;   ///< clamped to >= 0.01
    const Budget* budget = nullptr;  ///< must outlive the heartbeat
  };

  /// Starts the thread. Fails only if the telemetry file cannot be
  /// opened; sample-only mode cannot fail. Returned by pointer because
  /// the sampler thread holds `this`.
  static StatusOr<std::unique_ptr<Heartbeat>> start(Options opt);

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  /// Writes the "final" record and joins the thread. Idempotent; the
  /// destructor calls it.
  void stop();
  ~Heartbeat() { stop(); }

  std::uint64_t records_written() const;

 private:
  Heartbeat() = default;
  void run_loop();
  void emit(const char* kind);

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::unique_ptr<TelemetryWriter> writer_;  ///< null in sample-only mode
  const Budget* budget_ = nullptr;
  double interval_s_ = 1.0;
  std::uint64_t seq_ = 0;
  std::uint64_t written_ = 0;
  std::thread thread_;
  bool stopped_ = true;
};

// --- Prometheus exposition --------------------------------------------------

/// Renders the current metrics registry plus the RSS samples in the
/// Prometheus text format (metric names sanitized: non-[a-zA-Z0-9_]
/// bytes become '_', prefixed "repro_"). Counters emit `_total`,
/// histograms cumulative `_bucket{le=...}` plus `_count`.
std::string prometheus_text();

/// Same rendering over an explicit snapshot with a caller-chosen prefix
/// (the campaign roll-up uses "campaign_").
struct MetricSnapshot;  // obs.hpp
std::string prometheus_text(const std::vector<MetricSnapshot>& metrics,
                            std::string_view prefix);

}  // namespace repro::common::obs

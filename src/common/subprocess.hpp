// Supervised worker subprocesses: spawn / poll / kill with wall-clock
// deadlines and an exit-code taxonomy.
//
// The campaign layer runs each shard as a split_attack subprocess so one
// wedged or crashing fold cannot take down the whole run: the worst a
// worker can do is die (the supervisor reaps it and retries) or hang
// (the supervisor's per-shard deadline SIGKILLs it). This module is the
// thin, blocking-free substrate: fork/exec with stdout/stderr redirected
// to per-shard log files, a non-blocking poll for the scheduler loop,
// and signal-based termination.
//
// Exit taxonomy. Workers report through their exit status:
//     0  kOk              completed at full fidelity
//     2  kUsageError      bad flags / bad configuration — retrying the
//                         identical command cannot succeed
//     3  kInterrupted     cooperative stop (signal or exhausted budget);
//                         partial state was checkpointed
//     4  kOkDegraded      completed, but budget pressure shed accuracy
//                         (degradation events are in the worker report)
//   127  kSpawnFailed     the exec itself failed (missing binary)
//  else  kFailed          runtime failure (retryable)
//   sig  kCrashed         killed by a signal (SIGKILL, SIGSEGV, OOM...)
//
// kCorruptOutput is deliberately *not* an exit code: a worker that wrote
// garbage usually does not know it did. The supervisor assigns that
// classification after validating the shard's artifacts (CRC + envelope)
// against the checkpoint manifest.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace repro::common {

/// Worker exit codes with supervisor-visible meaning (see taxonomy).
inline constexpr int kExitOk = 0;
inline constexpr int kExitUsageError = 2;
inline constexpr int kExitInterrupted = 3;
inline constexpr int kExitOkDegraded = 4;
inline constexpr int kExitSpawnFailed = 127;

struct SpawnOptions {
  std::vector<std::string> argv;  ///< argv[0] is the program (PATH-searched)
  /// Environment overrides applied on top of the inherited environment.
  std::vector<std::pair<std::string, std::string>> env;
  /// Names removed from the child environment (e.g. REPRO_FAULT, so a
  /// supervisor-level fault spec never leaks into workers).
  std::vector<std::string> env_unset;
  std::string stdout_path;  ///< empty = inherit
  std::string stderr_path;  ///< empty = inherit
};

/// Terminal state of a reaped child.
struct WaitStatus {
  bool exited = false;    ///< normal exit; exit_code valid
  int exit_code = 0;
  bool signaled = false;  ///< killed by a signal; signal valid
  int signal = 0;

  std::string to_string() const;  ///< "exit 3" / "signal 9 (SIGKILL)"
};

/// Supervisor-side classification of a worker's terminal state.
enum class ExitClass {
  kOk = 0,
  kOkDegraded,   ///< completed under budget degradation
  kInterrupted,  ///< cooperative stop; checkpoint is valid, retry resumes
  kUsageError,   ///< non-retryable: the command itself is wrong
  kSpawnFailed,  ///< non-retryable: binary missing / unexecutable
  kFailed,       ///< runtime failure, retryable
  kCrashed,      ///< death by signal, retryable
};

const char* to_string(ExitClass c);
ExitClass classify_exit(const WaitStatus& ws);

/// One spawned child. Move-only; destroying a still-running Subprocess
/// does NOT kill it (the supervisor owns that decision) but does leak the
/// zombie until the parent exits — always poll/wait or kill+wait.
class Subprocess {
 public:
  /// Forks and execs. Spawn failures inside the child surface as exit
  /// code 127 at wait time; failures in the parent (pipe/fork) are
  /// returned here.
  static StatusOr<Subprocess> spawn(const SpawnOptions& opt);

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  ~Subprocess() = default;

  long pid() const { return pid_; }
  bool running() const { return pid_ > 0 && !reaped_; }

  /// Non-blocking: reaps and returns true if the child has exited
  /// (status() then valid); false while still running.
  bool poll();

  /// Blocks until exit; returns the terminal status.
  const WaitStatus& wait();

  /// Blocks up to `timeout_s`; true if the child exited in time. The
  /// child is NOT killed on timeout — callers choose the escalation.
  bool wait_for(double timeout_s);

  /// Sends `sig` (default SIGKILL). No-op once reaped.
  void kill(int sig);

  /// Terminal status; only meaningful after poll()/wait() returned true.
  const WaitStatus& status() const { return status_; }

 private:
  Subprocess() = default;

  long pid_ = -1;
  bool reaped_ = false;
  WaitStatus status_;
};

}  // namespace repro::common

// Inter-process advisory file locks (flock) for shared on-disk state.
//
// The checkpoint store's in-process mutex protects the manifest from
// concurrent *threads*; it does nothing against a second process opening
// the same --checkpoint-dir, where two writers would silently race
// manifest.json and each other's artifacts. A FileLock closes that hole:
// an exclusive, non-blocking flock on a well-known file inside the
// directory, acquired for the lifetime of the owning manager.
//
// Semantics worth spelling out:
//   * flock is tied to the open file description, so the kernel drops the
//     lock automatically when the holder dies — even by SIGKILL. A lock
//     file left behind by a dead process therefore carries no lock;
//     acquisition simply succeeds and the stale owner recorded in the
//     file is reported as reclaimed, never deadlocked on.
//   * Two opens of the same path within one process also conflict (each
//     open file description locks independently), so the single-writer
//     guarantee holds even for threads that bypass a shared manager.
//   * The lock file's content (pid + label) is purely diagnostic: the
//     kernel lock is the source of truth, the content is what the error
//     message names when acquisition fails.
//   * The file is not unlinked on release. Unlinking races a concurrent
//     open-then-flock (the competitor can lock a file that is no longer
//     the path's inode); leaving the empty file behind is harmless.
#pragma once

#include <string>

#include "common/diagnostics.hpp"
#include "common/status.hpp"

namespace repro::common {

class FileLock {
 public:
  /// Who holds (or last held) a lock, as recorded in the lock file.
  struct Owner {
    long pid = 0;
    std::string label;
  };

  /// Acquires `path` exclusively without blocking. On success the file
  /// records "pid label"; stale content from a dead previous owner is
  /// reported to `sink` as a "lockfile.stale_reclaimed" note. When the
  /// lock is held by a live process the result is kFailedPrecondition
  /// with a message naming the holder — callers fail fast instead of
  /// racing the directory.
  static StatusOr<FileLock> acquire(const std::string& path,
                                    const std::string& label,
                                    DiagnosticSink& sink);

  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  ~FileLock();  ///< closes the fd, releasing the flock

  const std::string& path() const { return path_; }
  bool held() const { return fd_ >= 0; }

  /// Releases early (idempotent).
  void release();

 private:
  FileLock() = default;

  int fd_ = -1;
  std::string path_;
};

/// Best-effort read of a lock file's recorded owner; pid 0 when the file
/// is missing or empty.
FileLock::Owner read_lock_owner(const std::string& path);

/// True when `pid` names a live process we may signal or observe.
bool process_alive(long pid);

}  // namespace repro::common

// Status / StatusOr<T>: exception-free error propagation for the ingestion
// layer.
//
// The attack consumes third-party layout files; a malformed file must be a
// *reportable* condition, not a crash. Functions on that boundary return a
// Status (or StatusOr<T> when they produce a value) instead of throwing, and
// record the detailed, per-line story in a DiagnosticSink (diagnostics.hpp).
// The Status carries the coarse outcome: code + one-line human message.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace repro::common {

/// Coarse failure category, in the spirit of absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< caller passed a bad value (flag out of range, ...)
  kNotFound,            ///< missing file / name lookup failure
  kOutOfRange,          ///< numeric value outside its representable range
  kFailedPrecondition,  ///< operation not valid in the current state
  kParseError,          ///< malformed input text
  kDataLoss,            ///< input readable but content lost/corrupt
  kIoError,             ///< stream / filesystem failure
  kInternal,            ///< invariant violation inside this codebase
};

const char* to_string(StatusCode code);

/// Outcome of a fallible operation: kOk, or a code plus a message.
class Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "PARSE_ERROR: expected DESIGN" (or "OK").
  std::string to_string() const {
    if (ok()) return "OK";
    return std::string(common::to_string(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or the Status explaining its absence.
template <class T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(implicit)
    assert(!status_.ok() && "StatusOr built from an OK status needs a value");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(implicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

inline const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace repro::common

#include "common/binio.hpp"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace repro::common {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void BinaryWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void BinaryWriter::f32(float v) {
  std::uint32_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u32(bits);
}

void BinaryWriter::str(const std::string& s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

void BinaryWriter::bytes(const void* p, std::size_t n) {
  buf_.append(static_cast<const char*>(p), n);
}

bool BinaryReader::take(void* out, std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool BinaryReader::u8(std::uint8_t& v) { return take(&v, 1); }

bool BinaryReader::u32(std::uint32_t& v) {
  std::uint8_t b[4];
  if (!take(b, 4)) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return true;
}

bool BinaryReader::u64(std::uint64_t& v) {
  std::uint8_t b[8];
  if (!take(b, 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return true;
}

bool BinaryReader::i32(std::int32_t& v) {
  std::uint32_t u;
  if (!u32(u)) return false;
  v = static_cast<std::int32_t>(u);
  return true;
}

bool BinaryReader::i64(std::int64_t& v) {
  std::uint64_t u;
  if (!u64(u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}

bool BinaryReader::f64(double& v) {
  std::uint64_t bits;
  if (!u64(bits)) return false;
  std::memcpy(&v, &bits, sizeof v);
  return true;
}

bool BinaryReader::f32(float& v) {
  std::uint32_t bits;
  if (!u32(bits)) return false;
  std::memcpy(&v, &bits, sizeof v);
  return true;
}

bool BinaryReader::str(std::string& s) {
  std::uint64_t n;
  if (!u64(n)) return false;
  // A length prefix larger than the bytes left is corruption, not a
  // request to allocate 2^63 bytes.
  if (n > remaining()) {
    ok_ = false;
    return false;
  }
  s.assign(data_.data() + pos_, static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return true;
}

std::string seal_artifact(std::uint32_t magic, std::uint32_t version,
                          const std::string& payload) {
  BinaryWriter w;
  w.u32(magic);
  w.u32(version);
  w.bytes(payload.data(), payload.size());
  const std::uint32_t crc = crc32_str(w.buffer());
  w.u32(crc);
  return w.take();
}

StatusOr<std::string> open_artifact(const std::string& raw,
                                    std::uint32_t magic,
                                    std::uint32_t max_version) {
  constexpr std::size_t kHeader = 8, kTrailer = 4;
  if (raw.size() < kHeader + kTrailer) {
    return Status::DataLoss("artifact shorter than its envelope (" +
                            std::to_string(raw.size()) + " bytes)");
  }
  const std::string body = raw.substr(0, raw.size() - kTrailer);
  BinaryReader r(raw);
  std::uint32_t got_magic = 0, got_version = 0;
  r.u32(got_magic);
  r.u32(got_version);
  if (got_magic != magic) {
    return Status::DataLoss("artifact magic mismatch");
  }
  if (got_version > max_version) {
    return Status::DataLoss("artifact format version " +
                            std::to_string(got_version) +
                            " newer than supported " +
                            std::to_string(max_version));
  }
  BinaryReader tail(std::string_view(raw).substr(raw.size() - kTrailer));
  std::uint32_t stored_crc = 0;
  tail.u32(stored_crc);
  if (crc32_str(body) != stored_crc) {
    return Status::DataLoss("artifact CRC mismatch");
  }
  return body.substr(kHeader);
}

Status atomic_write_file(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    return Status::IoError("cannot open " + tmp + ": " +
                           std::strerror(errno));
  }
  // Every step is checked: on a full disk fwrite or fflush (not fclose)
  // is where ENOSPC actually surfaces, and an unchecked one would leave
  // a silently truncated artifact behind.
  bool write_ok =
      data.empty() || std::fwrite(data.data(), 1, data.size(), f) == data.size();
  write_ok = write_ok && std::fflush(f) == 0;
  write_ok = write_ok && ::fsync(::fileno(f)) == 0;
  const int saved_errno = errno;
  if (std::fclose(f) != 0) write_ok = false;
  if (!write_ok) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return Status::IoError("write to " + tmp + " failed: " +
                           std::strerror(saved_errno ? saved_errno : errno));
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ec2;
    std::filesystem::remove(tmp, ec2);
    return Status::IoError("rename " + tmp + " -> " + path + " failed: " +
                           ec.message());
  }
  return Status::Ok();
}

StatusOr<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (errno == ENOENT) return Status::NotFound(path + " does not exist");
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return Status::IoError("read from " + path + " failed");
  return out;
}

}  // namespace repro::common

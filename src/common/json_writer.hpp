// Minimal JSON emission shared by the observability layer, the benches,
// and the split_attack report output: enough for nested objects / arrays
// of objects, no external dependency.
//
// Escaping is complete for valid JSON output: quote, backslash, the
// two-character escapes (\b \f \n \r \t), and every other control
// character below 0x20 as \u00XX. Bytes >= 0x20 pass through untouched,
// so UTF-8 content is preserved verbatim. Non-finite numbers (which JSON
// cannot represent) become null.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace repro::common {

/// Quotes and escapes `s` as a JSON string literal.
std::string json_str(const std::string& s);

/// Renders a finite double with 12 significant digits; "null" for
/// NaN / infinity.
std::string json_num(double v);

/// Streams one JSON object: field() in call order, then str() / done.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, double v);
  JsonObject& field(const std::string& key, long v);
  JsonObject& field(const std::string& key, unsigned long v);
  JsonObject& field(const std::string& key, int v);
  JsonObject& field(const std::string& key, bool v);
  JsonObject& field(const std::string& key, const std::string& v);
  JsonObject& field(const std::string& key, const char* v);
  /// Pre-rendered JSON (nested object or array), inserted verbatim.
  JsonObject& field_raw(const std::string& key, const std::string& json);
  std::string str() const;

 private:
  std::string body_;
};

/// Renders a JSON array from pre-rendered element strings.
std::string json_array(const std::vector<std::string>& elements);

/// json_array over a numeric vector.
std::string json_num_array(const std::vector<double>& values);
std::string json_num_array(const std::vector<std::uint64_t>& values);

/// Writes `json` to `path` (with trailing newline) atomically via
/// write-temp-then-rename, checking every I/O step; returns false and
/// prints to stderr on failure (the destination is left untouched).
bool write_json_file(const std::string& path, const std::string& json);

}  // namespace repro::common

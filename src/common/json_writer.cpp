#include "common/json_writer.hpp"

#include <cmath>
#include <cstdio>

#include "common/binio.hpp"

namespace repro::common {

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

JsonObject& JsonObject::field_raw(const std::string& key,
                                  const std::string& json) {
  if (!body_.empty()) body_ += ", ";
  body_ += json_str(key) + ": " + json;
  return *this;
}

JsonObject& JsonObject::field(const std::string& key, double v) {
  return field_raw(key, json_num(v));
}
JsonObject& JsonObject::field(const std::string& key, long v) {
  return field_raw(key, std::to_string(v));
}
JsonObject& JsonObject::field(const std::string& key, unsigned long v) {
  return field_raw(key, std::to_string(v));
}
JsonObject& JsonObject::field(const std::string& key, int v) {
  return field_raw(key, std::to_string(v));
}
JsonObject& JsonObject::field(const std::string& key, bool v) {
  return field_raw(key, v ? "true" : "false");
}
JsonObject& JsonObject::field(const std::string& key, const std::string& v) {
  return field_raw(key, json_str(v));
}
JsonObject& JsonObject::field(const std::string& key, const char* v) {
  return field_raw(key, json_str(v));
}

std::string JsonObject::str() const { return "{" + body_ + "}"; }

std::string json_array(const std::vector<std::string>& elements) {
  std::string out = "[";
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i) out += ", ";
    out += elements[i];
  }
  out += "]";
  return out;
}

std::string json_num_array(const std::vector<double>& values) {
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (double v : values) parts.push_back(json_num(v));
  return json_array(parts);
}

std::string json_num_array(const std::vector<std::uint64_t>& values) {
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (std::uint64_t v : values) parts.push_back(std::to_string(v));
  return json_array(parts);
}

bool write_json_file(const std::string& path, const std::string& json) {
  // Atomic temp-then-rename with every I/O step checked: a full disk or
  // a kill mid-write leaves either the previous file or the complete new
  // one at `path`, never a truncated JSON document.
  const Status s = atomic_write_file(path, json + "\n");
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                 s.to_string().c_str());
    return false;
  }
  return true;
}

}  // namespace repro::common

// Crash-safe checkpoint directory for long attack campaigns.
//
// A checkpoint is a directory holding named binary artifacts (trained
// models, completed fold results) plus a manifest.json that records, for
// every artifact, its byte size and CRC32, and a `run_key` identifying
// the computation the artifacts belong to (config + seed + input
// fingerprint). The manager guarantees:
//
//   * Atomicity: artifacts and the manifest are written via
//     write-temp-then-rename (common::atomic_write_file), so a SIGKILL
//     at any instant leaves either the old or the new file, never a
//     truncated one.
//   * Ordering: an artifact is renamed into place *before* the manifest
//     that references it, so the manifest never points at a missing or
//     partial file.
//   * Validation: read() re-checks size and CRC against the manifest
//     (and the artifact's own sealed CRC envelope downstream). Any
//     mismatch is reported as a structured diagnostic and the artifact
//     is treated as absent — the caller recomputes, it never trusts
//     corrupt bytes.
//   * Isolation: a manifest whose run_key differs from the current
//     run's is a checkpoint of some *other* computation; it is ignored
//     wholesale (with a diagnostic), because resuming from it would
//     silently mix results of different configurations.
//   * Exclusivity: open() takes an exclusive inter-process flock on
//     `dir/.lock` for the manager's lifetime, so a second process
//     pointed at the same directory fails fast with a diagnostic naming
//     the holder instead of silently racing manifest.json. The kernel
//     drops the flock when the holder dies (even by SIGKILL), so a
//     stale lock file from a dead pid is reclaimed, never deadlocked
//     on.
//
// Leftover `*.tmp` files (a crash between temp-write and rename) are
// swept on open; they are never referenced by the manifest, so removing
// them cannot lose committed state.
//
// write() is thread-safe (folds complete concurrently); reads are
// expected at the serial resume point. write() is also the artifact
// commit point counted by the REPRO_FAULT hook (common/fault.hpp),
// which lets crash tests place a kill / torn write / hang at an exact
// commit ordinal.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/diagnostics.hpp"
#include "common/lockfile.hpp"
#include "common/status.hpp"

namespace repro::common {

class CheckpointManager {
 public:
  /// Creates the directory (and parents) if needed, acquires the
  /// inter-process directory lock, and loads the manifest if one
  /// exists. `run_key` scopes the checkpoint: artifacts recorded under
  /// a different key are discarded. Diagnostics about stale or corrupt
  /// state go to `sink` (codes "checkpoint.*", "lockfile.*"). A
  /// directory locked by a live process is kFailedPrecondition naming
  /// the holder.
  static StatusOr<CheckpointManager> open(const std::string& dir,
                                          std::uint64_t run_key,
                                          DiagnosticSink& sink);

  /// Opens an *existing* checkpoint adopting whatever run_key its
  /// manifest records (0 if none) instead of imposing one — the
  /// campaign merge step uses this to validate shard artifacts without
  /// re-deriving the workers' key. Takes the same exclusive lock;
  /// kNotFound when the directory does not exist.
  static StatusOr<CheckpointManager> open_existing(const std::string& dir,
                                                   DiagnosticSink& sink);

  CheckpointManager(CheckpointManager&&) = default;
  CheckpointManager& operator=(CheckpointManager&&) = default;

  const std::string& dir() const { return dir_; }
  std::uint64_t run_key() const { return run_key_; }

  /// True if the manifest records `name` (the artifact may still fail
  /// validation at read time).
  bool has(const std::string& name) const;

  /// Artifact names currently in the manifest, sorted.
  std::vector<std::string> names() const;

  /// Validated artifact bytes, or: kNotFound if unrecorded, kDataLoss if
  /// the file is missing / the wrong size / fails its CRC. On kDataLoss
  /// a "checkpoint.corrupt_artifact" diagnostic is reported to `sink`
  /// and the manifest entry is dropped so a later write can replace it.
  StatusOr<std::string> read(const std::string& name, DiagnosticSink& sink);

  /// Atomically writes an artifact and then the manifest referencing
  /// it. Thread-safe; concurrent writers of *different* names are fine.
  Status write(const std::string& name, const std::string& data);

  /// Removes an artifact and its manifest entry (e.g. a per-fold model
  /// once the fold result is recorded). Missing artifacts are fine.
  Status remove(const std::string& name);

  /// Path of the lock file open() acquires inside `dir`.
  static std::string lock_path(const std::string& dir);

 private:
  CheckpointManager() = default;

  static StatusOr<CheckpointManager> open_impl(const std::string& dir,
                                               std::uint64_t run_key,
                                               bool adopt_key,
                                               DiagnosticSink& sink);

  Status write_manifest_locked();
  std::string path_of(const std::string& name) const;

  struct Entry {
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
  };

  std::string dir_;
  std::uint64_t run_key_ = 0;
  std::map<std::string, Entry> entries_;
  std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
  std::optional<FileLock> lock_;
};

}  // namespace repro::common

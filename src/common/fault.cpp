#include "common/fault.hpp"

#include <csignal>
#include <cstdlib>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

namespace repro::common::fault {

namespace {

std::mutex g_mutex;
FaultSpec g_spec;
bool g_loaded = false;  ///< env read (or configure called) already
std::atomic<std::int64_t> g_commits{0};
std::atomic<std::int64_t> g_net_requests{0};

/// Loads REPRO_FAULT once; a malformed value is ignored (a crash test
/// that typos the spec should fail by *not* crashing, loudly, rather
/// than by aborting the workload with a confusing parse error).
void ensure_loaded_locked() {
  if (g_loaded) return;
  g_loaded = true;
  if (const char* env = std::getenv("REPRO_FAULT")) {
    StatusOr<FaultSpec> parsed = parse_fault_spec(env);
    if (parsed.ok()) g_spec = *parsed;
  }
}

}  // namespace

StatusOr<FaultSpec> parse_fault_spec(const std::string& spec) {
  FaultSpec out;
  if (spec.empty()) return out;
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    return Status::InvalidArgument("fault spec '" + spec +
                                   "' is not <kind>:<ordinal>");
  }
  const std::string kind = spec.substr(0, colon);
  const std::string num = spec.substr(colon + 1);
  char* end = nullptr;
  const long long k = std::strtoll(num.c_str(), &end, 10);
  if (end != num.c_str() + num.size() || k < 0) {
    return Status::InvalidArgument("fault ordinal '" + num +
                                   "' is not a non-negative integer");
  }
  if (kind == "crash_after_artifact") {
    out.kind = Kind::kCrashAfterArtifact;
  } else if (kind == "corrupt_artifact") {
    out.kind = Kind::kCorruptArtifact;
  } else if (kind == "hang") {
    out.kind = Kind::kHang;
  } else if (kind == "net_refuse") {
    out.kind = Kind::kNetRefuse;
  } else if (kind == "net_truncate") {
    out.kind = Kind::kNetTruncate;
  } else if (kind == "net_delay") {
    out.kind = Kind::kNetDelay;
  } else if (kind == "net_garble") {
    out.kind = Kind::kNetGarble;
  } else {
    return Status::InvalidArgument("unknown fault kind '" + kind + "'");
  }
  out.ordinal = k;
  return out;
}

bool is_net_kind(Kind kind) {
  switch (kind) {
    case Kind::kNetRefuse:
    case Kind::kNetTruncate:
    case Kind::kNetDelay:
    case Kind::kNetGarble:
      return true;
    default:
      return false;
  }
}

void configure(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_spec = spec;
  g_loaded = true;
  g_commits.store(0, std::memory_order_relaxed);
  g_net_requests.store(0, std::memory_order_relaxed);
}

void reset() { configure(FaultSpec{}); }

FaultSpec current_spec() {
  std::lock_guard<std::mutex> lock(g_mutex);
  ensure_loaded_locked();
  return g_spec;
}

Action on_artifact_commit() {
  FaultSpec spec;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    ensure_loaded_locked();
    spec = g_spec;
  }
  const std::int64_t ordinal =
      g_commits.fetch_add(1, std::memory_order_relaxed);
  if (!spec.armed() || is_net_kind(spec.kind) || ordinal != spec.ordinal) {
    return Action::kNone;
  }
  switch (spec.kind) {
    case Kind::kCorruptArtifact:
      return Action::kCorrupt;
    case Kind::kCrashAfterArtifact:
      return Action::kCrashAfter;
    case Kind::kHang:
      // Park forever; the supervisor's per-shard timeout is the only way
      // out. Sleeping (rather than spinning) keeps the hung worker from
      // stealing CPU from the shards that are making progress.
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
    default:
      break;
  }
  return Action::kNone;
}

NetAction on_net_request() {
  FaultSpec spec;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    ensure_loaded_locked();
    spec = g_spec;
  }
  const std::int64_t ordinal =
      g_net_requests.fetch_add(1, std::memory_order_relaxed);
  if (!spec.armed() || !is_net_kind(spec.kind) || ordinal != spec.ordinal) {
    return NetAction::kNone;
  }
  switch (spec.kind) {
    case Kind::kNetRefuse:
      return NetAction::kRefuse;
    case Kind::kNetTruncate:
      return NetAction::kTruncate;
    case Kind::kNetDelay:
      return NetAction::kDelay;
    case Kind::kNetGarble:
      return NetAction::kGarble;
    default:
      break;
  }
  return NetAction::kNone;
}

void corrupt_bytes(std::string& data) {
  if (data.empty()) {
    data.assign(1, '\x01');
    return;
  }
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x20);
  data.back() = static_cast<char>(data.back() ^ 0x01);
}

void crash_now() {
  ::kill(::getpid(), SIGKILL);
  // SIGKILL cannot be handled; if we are somehow still running (e.g. a
  // hostile test harness), die without flushing anything.
  std::_Exit(137);
}

std::int64_t commits_seen() {
  return g_commits.load(std::memory_order_relaxed);
}

std::int64_t net_requests_seen() {
  return g_net_requests.load(std::memory_order_relaxed);
}

}  // namespace repro::common::fault

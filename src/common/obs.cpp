#include "common/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "common/diagnostics.hpp"
#include "common/json_writer.hpp"
#include "common/parallel.hpp"

namespace repro::common::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

std::atomic<bool> g_logical_time{false};

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

bool logical_time() { return g_logical_time.load(std::memory_order_relaxed); }

void set_logical_time(bool on) {
  g_logical_time.store(on, std::memory_order_relaxed);
}

// --- metrics registry ------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)), buckets_(edges_.size() + 1) {
  // Edges must be strictly increasing for the bucket search to be a
  // well-defined partition; enforce rather than trust every call site.
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    if (!(edges_[i - 1] < edges_[i])) {
      std::sort(edges_.begin(), edges_.end());
      edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
      buckets_ = std::vector<std::atomic<std::uint64_t>>(edges_.size() + 1);
      break;
    }
  }
}

void Histogram::observe(double x) {
  // upper_bound gives the first edge > x, i.e. the bucket with
  // edges_[i-1] <= x < edges_[i]; x >= edges_.back() (and NaN) land in
  // the overflow bucket.
  const std::size_t bucket =
      x == x ? static_cast<std::size_t>(
                   std::upper_bound(edges_.begin(), edges_.end(), x) -
                   edges_.begin())
             : buckets_.size() - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  if (x == x) {
    // Fixed-point micro-unit accumulation: integer adds commute AND
    // associate, so the sum is bit-identical at any thread count (a
    // double sum would vary with interleaving). Saturate out-of-range
    // values instead of invoking UB in llround.
    constexpr double kCap =
        static_cast<double>(std::numeric_limits<std::int64_t>::max());
    const double scaled = x * 1e6;
    std::int64_t inc;
    if (scaled >= kCap) {
      inc = std::numeric_limits<std::int64_t>::max();
    } else if (scaled <= -kCap) {
      inc = std::numeric_limits<std::int64_t>::min();
    } else {
      inc = static_cast<std::int64_t>(std::llround(scaled));
    }
    sum_micros_.fetch_add(inc, std::memory_order_relaxed);
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t Histogram::total() const {
  std::uint64_t t = 0;
  for (const auto& b : buckets_) t += b.load(std::memory_order_relaxed);
  return t;
}

std::int64_t Histogram::sum_micros() const {
  return sum_micros_.load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
}

namespace {

/// Node-based maps keep metric addresses stable for the process lifetime,
/// which is what lets call sites cache references in local statics.
struct MetricsRegistry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

MetricsRegistry& metrics_registry() {
  static MetricsRegistry* r = new MetricsRegistry();  // never destroyed
  return *r;
}

}  // namespace

Counter& counter(std::string_view name) {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& gauge(std::string_view name) {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end()) {
    it = r.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& histogram(std::string_view name, std::span<const double> edges) {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    it = r.histograms
             .emplace(std::string(name),
                      std::make_unique<Histogram>(
                          std::vector<double>(edges.begin(), edges.end())))
             .first;
  }
  return *it->second;
}

std::vector<MetricSnapshot> snapshot_metrics() {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<MetricSnapshot> out;
  for (const auto& [name, c] : r.counters) {
    MetricSnapshot m;
    m.kind = MetricSnapshot::Kind::kCounter;
    m.name = name;
    m.count = c->value();
    out.push_back(std::move(m));
  }
  for (const auto& [name, g] : r.gauges) {
    MetricSnapshot m;
    m.kind = MetricSnapshot::Kind::kGauge;
    m.name = name;
    m.value = g->value();
    out.push_back(std::move(m));
  }
  for (const auto& [name, h] : r.histograms) {
    MetricSnapshot m;
    m.kind = MetricSnapshot::Kind::kHistogram;
    m.name = name;
    m.edges = h->edges();
    m.buckets = h->counts();
    m.count = h->total();
    m.sum_micros = h->sum_micros();
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string metrics_json() {
  JsonObject obj;
  for (const MetricSnapshot& m : snapshot_metrics()) {
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        obj.field(m.name, static_cast<unsigned long>(m.count));
        break;
      case MetricSnapshot::Kind::kGauge:
        obj.field(m.name, m.value);
        break;
      case MetricSnapshot::Kind::kHistogram:
        obj.field_raw(
            m.name,
            JsonObject()
                .field_raw("edges", json_num_array(m.edges))
                .field_raw("counts", json_num_array(m.buckets))
                .field("total", static_cast<unsigned long>(m.count))
                .field("sum_micros", static_cast<long>(m.sum_micros))
                .str());
        break;
    }
  }
  return obj.str();
}

void reset_metrics() {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  for (auto& [name, h] : r.histograms) h->reset();
}

// --- trace spans -----------------------------------------------------------

namespace detail {

struct SpanRecord {
  const char* name;
  std::int64_t arg;
  bool has_arg;
  std::uint32_t begin_seq;
  std::uint32_t end_seq;
  double begin_s;
  double end_s;
};

struct SpanBuffer {
  int worker = 0;
  int registration = 0;  ///< global registration order (merge tiebreaker)
  std::uint32_t next_seq = 0;
  std::uint64_t dropped = 0;
  std::vector<SpanRecord> records;
};

}  // namespace detail

namespace {

constexpr std::size_t kMaxRecordsPerBuffer = 1 << 20;

/// Buffers are owned here and never destroyed: a worker thread's
/// thread_local pointer must stay valid for the thread's whole life, and
/// threads can outlive any flush. clear_trace() empties the record
/// vectors but keeps the buffers registered.
struct SpanRegistry {
  std::mutex mutex;
  std::vector<detail::SpanBuffer*> buffers;
  int next_registration = 0;
};

SpanRegistry& span_registry() {
  static SpanRegistry* r = new SpanRegistry();  // never destroyed
  return *r;
}

detail::SpanBuffer* local_buffer() {
  thread_local detail::SpanBuffer* tl = nullptr;
  if (tl == nullptr) {
    auto* buf = new detail::SpanBuffer();  // owned by the registry, leaked
    buf->worker = current_worker_id();
    SpanRegistry& r = span_registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    buf->registration = r.next_registration++;
    r.buffers.push_back(buf);
    tl = buf;
  }
  return tl;
}

}  // namespace

SpanGuard::SpanGuard(const char* name, std::int64_t arg) {
  if (!enabled()) return;
  buf_ = local_buffer();
  name_ = name;
  arg_ = arg;
  begin_seq_ = buf_->next_seq++;
  begin_s_ = wall_seconds();
}

SpanGuard::~SpanGuard() { end(); }

void SpanGuard::end() {
  if (buf_ == nullptr) return;
  detail::SpanBuffer* buf = buf_;
  buf_ = nullptr;
  const std::uint32_t end_seq = buf->next_seq++;
  if (buf->records.size() >= kMaxRecordsPerBuffer) {
    ++buf->dropped;
    return;
  }
  buf->records.push_back(detail::SpanRecord{
      name_, arg_ == kNoArg ? 0 : arg_, arg_ != kNoArg, begin_seq_, end_seq,
      begin_s_, wall_seconds()});
}

std::vector<SpanEvent> snapshot_spans() {
  SpanRegistry& r = span_registry();
  std::vector<SpanEvent> out;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    // Merge in (worker, registration) buffer order. Within a buffer,
    // records are completion-ordered; sorting by begin_seq afterwards
    // restores open order (parents before children).
    std::vector<const detail::SpanBuffer*> bufs(r.buffers.begin(),
                                                r.buffers.end());
    std::sort(bufs.begin(), bufs.end(),
              [](const detail::SpanBuffer* a, const detail::SpanBuffer* b) {
                if (a->worker != b->worker) return a->worker < b->worker;
                return a->registration < b->registration;
              });
    for (const detail::SpanBuffer* buf : bufs) {
      std::vector<SpanEvent> local;
      local.reserve(buf->records.size());
      for (const detail::SpanRecord& rec : buf->records) {
        SpanEvent e;
        e.name = rec.name;
        e.arg = rec.arg;
        e.has_arg = rec.has_arg;
        e.worker = buf->worker;
        e.begin_seq = rec.begin_seq;
        e.end_seq = rec.end_seq;
        e.begin_s = rec.begin_s;
        e.end_s = rec.end_s;
        local.push_back(std::move(e));
      }
      std::sort(local.begin(), local.end(),
                [](const SpanEvent& a, const SpanEvent& b) {
                  return a.begin_seq < b.begin_seq;
                });
      for (auto& e : local) out.push_back(std::move(e));
    }
  }
  return out;
}

std::string trace_json() {
  const std::vector<SpanEvent> events = snapshot_spans();
  const bool logical = logical_time();
  double epoch = 0;
  if (!logical && !events.empty()) {
    epoch = events.front().begin_s;
    for (const SpanEvent& e : events) epoch = std::min(epoch, e.begin_s);
  }
  std::vector<std::string> rendered;
  rendered.reserve(events.size());
  for (const SpanEvent& e : events) {
    JsonObject obj;
    obj.field("name", e.name)
        .field("cat", "repro")
        .field("ph", "X")
        .field("pid", 0)
        .field("tid", e.worker);
    if (logical) {
      obj.field("ts", static_cast<long>(e.begin_seq))
          .field("dur",
                 static_cast<long>(std::max<std::int64_t>(
                     1, static_cast<std::int64_t>(e.end_seq) - e.begin_seq)));
    } else {
      obj.field("ts", (e.begin_s - epoch) * 1e6)
          .field("dur", std::max(0.0, (e.end_s - e.begin_s) * 1e6));
    }
    if (e.has_arg) {
      obj.field_raw("args", JsonObject().field("v", static_cast<long>(e.arg))
                                .str());
    }
    rendered.push_back(obj.str());
  }
  return JsonObject()
      .field("displayTimeUnit", "ms")
      .field_raw("traceEvents", json_array(rendered))
      .str();
}

void clear_trace() {
  SpanRegistry& r = span_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (detail::SpanBuffer* buf : r.buffers) {
    buf->records.clear();
    buf->next_seq = 0;
    buf->dropped = 0;
  }
}

std::uint64_t spans_dropped() {
  SpanRegistry& r = span_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::uint64_t total = 0;
  for (const detail::SpanBuffer* buf : r.buffers) total += buf->dropped;
  return total;
}

std::vector<SpanAggregate> aggregate_spans() {
  std::map<std::string, SpanAggregate> agg;
  for (const SpanEvent& e : snapshot_spans()) {
    SpanAggregate& a = agg[e.name];
    a.name = e.name;
    ++a.count;
    a.seconds += std::max(0.0, e.end_s - e.begin_s);
  }
  std::vector<SpanAggregate> out;
  out.reserve(agg.size());
  for (auto& [name, a] : agg) out.push_back(std::move(a));
  return out;
}

// --- degradation events -----------------------------------------------------

namespace {

struct DegradationLog {
  std::mutex mutex;
  std::vector<DegradationEvent> events;
};

DegradationLog& degradation_log() {
  static DegradationLog* log = new DegradationLog();  // never destroyed
  return *log;
}

}  // namespace

void record_degradation(std::string_view step, std::string_view detail,
                        std::int64_t fold) {
  DegradationLog& log = degradation_log();
  std::lock_guard<std::mutex> lock(log.mutex);
  log.events.push_back(
      DegradationEvent{std::string(step), std::string(detail), fold});
}

std::vector<DegradationEvent> degradation_events() {
  DegradationLog& log = degradation_log();
  std::lock_guard<std::mutex> lock(log.mutex);
  return log.events;
}

std::string degradation_json() {
  std::vector<std::string> parts;
  for (const DegradationEvent& e : degradation_events()) {
    parts.push_back(JsonObject()
                        .field("step", e.step)
                        .field("detail", e.detail)
                        .field("fold", static_cast<long>(e.fold))
                        .str());
  }
  return json_array(parts);
}

void clear_degradation() {
  DegradationLog& log = degradation_log();
  std::lock_guard<std::mutex> lock(log.mutex);
  log.events.clear();
}

// --- run report ------------------------------------------------------------

RunReport& RunReport::set_raw(const std::string& key, std::string rendered) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(rendered);
      return *this;
    }
  }
  fields_.emplace_back(key, std::move(rendered));
  return *this;
}

RunReport& RunReport::set(const std::string& key, const std::string& value) {
  return set_raw(key, json_str(value));
}
RunReport& RunReport::set(const std::string& key, const char* value) {
  return set_raw(key, json_str(value));
}
RunReport& RunReport::set(const std::string& key, double v) {
  return set_raw(key, json_num(v));
}
RunReport& RunReport::set(const std::string& key, std::int64_t v) {
  return set_raw(key, std::to_string(v));
}
RunReport& RunReport::set(const std::string& key, int v) {
  return set_raw(key, std::to_string(v));
}
RunReport& RunReport::set(const std::string& key, bool v) {
  return set_raw(key, v ? "true" : "false");
}

std::string RunReport::to_json() const {
  JsonObject obj;
  for (const auto& [k, v] : fields_) obj.field_raw(k, v);
  std::vector<std::string> phases;
  for (const SpanAggregate& a : aggregate_spans()) {
    phases.push_back(JsonObject()
                         .field("name", a.name)
                         .field("count", static_cast<unsigned long>(a.count))
                         .field("seconds", a.seconds)
                         .str());
  }
  obj.field_raw("phases", json_array(phases));
  obj.field_raw("metrics", metrics_json());
  if (!degradation_events().empty()) {
    obj.field_raw("degradation", degradation_json());
  }
  return obj.str();
}

// --- diagnostics bridge ----------------------------------------------------

void record_diagnostics(std::string_view prefix, const DiagnosticSink& sink) {
  if (!enabled()) return;
  const std::string p(prefix);
  counter(p + ".notes").add(sink.count(Severity::kNote));
  counter(p + ".warnings").add(sink.count(Severity::kWarning));
  counter(p + ".errors").add(sink.count(Severity::kError));
  counter(p + ".fatals").add(sink.count(Severity::kFatal));
}

}  // namespace repro::common::obs

// Checksummed binary serialization primitives for checkpoint artifacts.
//
// A serialized artifact is a header (4-byte magic + u32 format version),
// a payload written through BinaryWriter, and a trailing CRC32 of
// everything before it. BinaryReader is bounds-checked and returns
// Status instead of throwing, because a checkpoint file on disk is
// third-party input by the time it is read back: it may be truncated by
// a crash, half-written by a full disk, or bit-rotted — all of which
// must surface as a structured "corrupt artifact" condition that the
// caller can answer with a recompute, never as UB or a crash.
//
// Doubles are serialized as their IEEE-754 bit patterns (u64), so a
// round trip is bit-exact — the property the resume-determinism
// argument rests on. All integers are little-endian fixed-width.
//
// atomic_write_file implements write-to-temp-then-rename with fsync:
// after a crash at any instant, the destination path holds either the
// complete previous content or the complete new content, never a mix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace repro::common {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of `data`; `seed` chains
/// incremental computations (pass the previous return value).
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0);
inline std::uint32_t crc32_str(const std::string& s) {
  return crc32({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

/// Appends fixed-width little-endian values to a byte string.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);  ///< IEEE-754 bit pattern, bit-exact round trip
  void f32(float v);
  void str(const std::string& s);  ///< u64 length + raw bytes
  void bytes(const void* p, std::size_t n);

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a byte string; every accessor returns
/// false once the buffer is exhausted or a length prefix is implausible,
/// and `ok()` / `status()` report the failure. Reads after a failure are
/// no-ops, so a decode function can check once at the end.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t& v);
  bool u32(std::uint32_t& v);
  bool u64(std::uint64_t& v);
  bool i32(std::int32_t& v);
  bool i64(std::int64_t& v);
  bool f64(double& v);
  bool f32(float& v);
  bool str(std::string& s);

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  Status status() const {
    return ok_ ? Status::Ok()
               : Status::DataLoss("truncated or malformed binary artifact");
  }

 private:
  bool take(void* out, std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Wraps `payload` in (magic, version, payload, crc32) — the on-disk
/// artifact envelope.
std::string seal_artifact(std::uint32_t magic, std::uint32_t version,
                          const std::string& payload);

/// Validates the envelope: magic, version <= max_version, CRC. Returns
/// the payload, or kDataLoss describing what was wrong.
StatusOr<std::string> open_artifact(const std::string& raw,
                                    std::uint32_t magic,
                                    std::uint32_t max_version);

/// Writes `data` to `path` crash-safely: temp file in the same
/// directory, fwrite/fflush/fsync/fclose all checked, then rename over
/// the destination. On any failure the temp file is removed and the
/// destination is untouched.
Status atomic_write_file(const std::string& path, const std::string& data);

/// Reads a whole file; kNotFound if it does not exist, kIoError on
/// read failure.
StatusOr<std::string> read_file(const std::string& path);

}  // namespace repro::common

// Deterministic fault injection for crash-safety tests (REPRO_FAULT).
//
// Crash tests that poll for "some progress" and then SIGKILL race the
// workload: on a fast machine the run finishes before the kill lands and
// the test silently degrades to the nothing-to-resume path. This hook
// makes the fault point *part of the program*, keyed to the artifact
// commit sequence, so scripts and the campaign supervisor can place a
// crash, a torn write, or a hang at an exact, reproducible point.
//
// The spec (environment variable REPRO_FAULT, or fault::configure in
// tests) names one fault and the 0-based artifact-commit ordinal it
// fires at:
//
//   crash_after_artifact:K   commit K completes (artifact + manifest are
//                            durable), then the process raises SIGKILL —
//                            the same no-flush death the kernel OOM
//                            killer or a power cut delivers.
//   corrupt_artifact:K       commit K writes bit-flipped bytes while the
//                            manifest records the true size/CRC: a torn
//                            or bit-rotted artifact that must fail
//                            validation on read-back.
//   hang:K                   commit K never happens; the writing thread
//                            parks forever. Exercises supervisor
//                            wall-clock timeouts.
//
// Network faults are counted on a *separate* ordinal sequence — the
// 0-based HTTP client request attempt, advanced by fault::on_net_request()
// from the retrying HTTP client — so a net fault spec never interacts
// with artifact commits and vice versa:
//
//   net_refuse:K             request K fails as if the remote end sent
//                            RST before the handshake (connect refused).
//   net_truncate:K           request K's response body loses its tail
//                            mid-flight: a torn read the payload-digest
//                            check must catch.
//   net_delay:K              request K stalls past its deadline and
//                            surfaces as a client-side timeout.
//   net_garble:K             request K's response body is bit-flipped in
//                            transit (corrupt_bytes), again caught by the
//                            payload digest.
//
// Commit ordinals are counted by fault::on_artifact_commit(), called
// from CheckpointManager::write (one count per artifact, manifest writes
// are not counted) and from the campaign supervisor's shard-commit path
// (so REPRO_FAULT in the *supervisor's* environment kills the supervisor
// after K shard completions — the supervisor strips the variable from
// worker environments and injects worker faults explicitly).
//
// Everything is process-local and deterministic: no RNG, no timers.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace repro::common::fault {

enum class Kind {
  kNone = 0,
  kCrashAfterArtifact,
  kCorruptArtifact,
  kHang,
  kNetRefuse,
  kNetTruncate,
  kNetDelay,
  kNetGarble,
};

/// True for the net_* kinds (counted per HTTP request, not per commit).
bool is_net_kind(Kind kind);

struct FaultSpec {
  Kind kind = Kind::kNone;
  std::int64_t ordinal = 0;  ///< 0-based artifact commit the fault fires at

  bool armed() const { return kind != Kind::kNone; }
};

/// Parses "crash_after_artifact:K" / "corrupt_artifact:K" / "hang:K" /
/// "net_refuse:K" / "net_truncate:K" / "net_delay:K" / "net_garble:K".
/// An empty spec string yields an unarmed spec (not an error).
StatusOr<FaultSpec> parse_fault_spec(const std::string& spec);

/// Arms `spec` and resets the commit counter. Tests use this instead of
/// the environment variable; it overrides any REPRO_FAULT value.
void configure(const FaultSpec& spec);

/// Disarms and resets (tests). The environment is not re-read afterwards.
void reset();

/// The currently armed spec (env is read lazily on first use).
FaultSpec current_spec();

/// What the caller must do with the commit it is about to perform.
enum class Action {
  kNone = 0,
  kCorrupt,     ///< write deliberately damaged bytes for this artifact
  kCrashAfter,  ///< after the commit is durable, call crash_now()
};

/// Advances the commit ordinal and returns the action for this commit.
/// kHang at the matching ordinal never returns (the thread parks).
Action on_artifact_commit();

/// Damages `data` in place the way corrupt_artifact promises: a bit flip
/// in the middle plus a flipped last byte, so any CRC fails.
void corrupt_bytes(std::string& data);

/// Raises SIGKILL against this process (no atexit, no flush). Falls back
/// to _Exit if the signal somehow does not deliver.
[[noreturn]] void crash_now();

/// What the HTTP client must do with the request it is about to issue.
enum class NetAction {
  kNone = 0,
  kRefuse,    ///< fail as connect-refused without touching the wire
  kTruncate,  ///< perform the request, then drop the tail of the body
  kDelay,     ///< fail as a deadline timeout (after a short real stall)
  kGarble,    ///< perform the request, then corrupt_bytes() the body
};

/// Advances the net-request ordinal and returns the action for this
/// request attempt. Armed artifact kinds never fire here (and net kinds
/// never fire from on_artifact_commit()) — the two counters are
/// independent.
NetAction on_net_request();

/// Commits observed so far (tests / reporting).
std::int64_t commits_seen();

/// Net request attempts observed so far (tests / reporting).
std::int64_t net_requests_seen();

}  // namespace repro::common::fault

// Deterministic data-parallel execution layer.
//
// A fixed pool of worker threads with *static* index partitioning: a
// parallel_for over [0, n) is split into num_threads() contiguous chunks,
// chunk w always covering the same index range for a given (n, threads).
// There is no work stealing, so which indices a worker executes is a pure
// function of the iteration count — determinism then only requires that
// the loop body be a pure function of its index (per-index RNG seeds,
// per-index output slots), which is how every caller in this repo is
// written. Results are bit-identical at any thread count, including 1.
//
// Nesting: a parallel_for issued from inside a worker runs its body
// inline (serially) on the calling worker. This keeps the pool deadlock
// free with a fixed thread count and costs nothing in determinism, since
// bodies are index-pure either way.
//
// Thread count resolution, in priority order:
//   1. set_global_threads(n) (split_attack --threads, tests)
//   2. the REPRO_THREADS environment variable
//   3. usable_cpus() — the cpuset-aware affinity mask size, NOT
//      hardware_concurrency(), which reports the machine's core count
//      even when the process is pinned to a fraction of it (containers,
//      taskset, cgroup cpusets). Benches use usable_cpus() to tell real
//      scaling headroom from oversubscription.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "common/cancel.hpp"

namespace repro::common {

/// SplitMix64 scrambler; used to derive statistically independent child
/// seeds from (seed, index) pairs without sequential RNG draws.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The seed for the index-th independent task of a job seeded with `seed`
/// (tree index, fold index, ...). Mixing the index through splitmix64
/// decorrelates neighbouring indices; xoring with the job seed keeps
/// distinct jobs distinct.
constexpr std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index) {
  return splitmix64(seed ^ splitmix64(index + 1));
}

/// FNV-1a over a short name; constexpr so stream ids can be compile-time
/// constants.
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// The seed for the *named* independent RNG stream of a job seeded with
/// `seed` ("attack.test.targets", "sampling.negatives", ...). Built on
/// derive_seed with the name hash as the stream index, so every consumer
/// that derives through a distinct name gets a stream decorrelated both
/// from other named streams and from the numbered per-task streams
/// (per-tree, per-fold). This replaces ad-hoc `seed * prime + c`
/// derivations, which collide across nearby seeds (seed*7927+3 for one
/// consumer meets seed'*1000003+17 of another for many (seed, seed')).
constexpr std::uint64_t derive_stream(std::uint64_t seed,
                                      std::string_view name) {
  return derive_seed(seed, fnv1a64(name));
}

class ThreadPool {
 public:
  /// num_threads <= 0 selects the REPRO_THREADS / hardware default.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total number of executing threads (workers + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Calls body(i) for every i in [0, n), partitioned statically across
  /// the pool; the calling thread executes chunk 0 and blocks until all
  /// chunks finish. The first exception thrown by any chunk is rethrown
  /// on the caller. Runs inline when n is small, the pool is size 1, or
  /// the caller is itself a pool worker (see nesting note above).
  ///
  /// `cancel` (optional) makes the region cooperative: every worker
  /// polls the token between indices and stops issuing new bodies once
  /// it is set. Cancellation is per-index atomic — an index either ran
  /// its body to completion or was never started, so each output slot is
  /// fully written or untouched — but *which* indices ran before the
  /// token was observed depends on timing; callers must treat the
  /// region's output as partial after a cancelled run (and, in this
  /// repo, discard it rather than checkpoint it).
  ///
  /// `grain` (optional, >= 1) is the minimum number of indices worth
  /// waking a worker for: the loop is cut into at most n / grain chunks
  /// (never more than the pool size, always at least 1). Small loops over
  /// expensive bodies — 50 trees across 8 workers — would otherwise be
  /// sliced into pool-size cold chunks whose per-chunk wakeup, cache
  /// warmup, and allocator contention exceed the win from spreading the
  /// work. Chunking is still a pure function of (n, grain, pool size),
  /// and bodies are index-pure, so results are bit-identical for any
  /// grain; only the schedule changes.
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t)>& body,
                    const CancelToken* cancel = nullptr,
                    std::int64_t grain = 1);

  struct State;  ///< implementation detail, defined in parallel.cpp

 private:
  void worker_loop(int worker_index);

  std::unique_ptr<State> state_;
  std::vector<std::thread> workers_;
};

/// Forces every parallel_for issued from the calling thread to run
/// inline (serially, on this thread) for the guard's lifetime, by
/// marking the thread as already inside a parallel region.
///
/// This is the bridge between the pool's single-caller contract and
/// servers that handle requests on their own threads: parallel_for's
/// job-state protocol supports one external caller at a time, so N
/// handler threads entering the pool concurrently would race. Each
/// handler instead holds a ScopedInline and computes serially —
/// concurrency comes from the handler threads themselves, and results
/// stay bit-identical because bodies are index-pure (inline execution
/// is the pool's own nested-region fallback).
class ScopedInline {
 public:
  ScopedInline();
  ~ScopedInline();
  ScopedInline(const ScopedInline&) = delete;
  ScopedInline& operator=(const ScopedInline&) = delete;

 private:
  bool prev_ = false;
};

/// Thread count the global pool would use right now (>= 1).
int configured_threads();

/// CPUs this process may actually run on (>= 1): the scheduler affinity
/// mask size where available (Linux sched_getaffinity — respects cgroup
/// cpusets, taskset, and container CPU pinning), otherwise
/// hardware_concurrency(). Thread counts above this value timeshare
/// cores instead of adding parallelism.
int usable_cpus();

/// Pool worker index of the calling thread: 0 for the thread that issues
/// parallel_for (and for any thread outside the pool), 1..N-1 for pool
/// workers. Stable for a thread's whole life, so it doubles as the
/// deterministic track id of the observability layer's trace merge.
int current_worker_id();

/// The process-wide pool, created on first use with configured_threads().
ThreadPool& global_pool();

/// Resizes the global pool (0 = auto from REPRO_THREADS / hardware).
/// Must not be called from inside a parallel region.
void set_global_threads(int num_threads);

/// parallel_for over the global pool.
inline void parallel_for(std::int64_t n,
                         const std::function<void(std::int64_t)>& body,
                         const CancelToken* cancel = nullptr,
                         std::int64_t grain = 1) {
  global_pool().parallel_for(n, body, cancel, grain);
}

/// Maps fn over [0, n) into a vector, in parallel; out[i] = fn(i).
/// T must be default-constructible (use std::optional otherwise).
/// With a cancel token, slots whose index was skipped stay
/// default-constructed (see the parallel_for cancellation contract).
template <class T, class Fn>
std::vector<T> parallel_map(std::int64_t n, Fn&& fn,
                            const CancelToken* cancel = nullptr,
                            std::int64_t grain = 1) {
  std::vector<T> out(static_cast<std::size_t>(n));
  parallel_for(
      n,
      [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = fn(i); },
      cancel, grain);
  return out;
}

}  // namespace repro::common

// Low-overhead instrumentation for the attack pipeline: trace spans,
// a metrics registry, and a structured run report.
//
// Everything is gated behind one runtime flag (set_enabled). When the
// flag is off, a span guard is a relaxed atomic load and a branch —
// no allocation, no clock read, no buffer touch — so instrumented hot
// paths cost nothing in normal runs.
//
// Trace spans
//   OBS_SPAN("train.fit") opens an RAII span on the current thread.
//   Events land in per-thread buffers (created lazily, owned by a global
//   registry, never freed while the process lives, so worker threads can
//   come and go). Each event carries the pool worker id
//   (common::current_worker_id()) and a per-thread sequence number; the
//   flush merges buffers by (worker, registration epoch, sequence), which
//   is deterministic for a fixed seed and thread count because the
//   parallel layer partitions indices statically. trace_json() renders
//   Chrome trace_event JSON loadable by chrome://tracing / Perfetto.
//   With set_logical_time(true), timestamps are the deterministic
//   sequence numbers instead of the wall clock, which makes the whole
//   trace file byte-stable across identical runs (scripts/check_obs.sh
//   asserts this).
//
// Metrics
//   Named counters (monotonic u64), gauges (last-set double), and
//   fixed-bucket histograms, registered on first use and updated with
//   relaxed atomics. Counter / histogram updates are commutative, so
//   totals are identical at any thread count; gauges must only be set
//   from serial code. snapshot_metrics() / metrics_json() serialize the
//   registry sorted by name.
//
// Run report
//   RunReport combines caller-set fields (tool, config, seed, dataset
//   shape...), per-span aggregate timings, and the metrics snapshot into
//   a single JSON document (split_attack --report-out).
//
// Thread-safety contract: span recording and counter/histogram updates
// are safe from any thread; flush operations (trace_json, clear_trace,
// snapshot_*, reset_metrics) and the enable/mode switches must run at a
// serial point (no concurrently open spans or in-flight updates).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace repro::common {
class DiagnosticSink;
}

namespace repro::common::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
struct SpanBuffer;
}  // namespace detail

/// True when instrumentation is recording. Hot paths read this once per
/// update; the relaxed load keeps the disabled cost to one branch.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Logical-time traces: timestamps become per-thread sequence numbers,
/// making trace_json() byte-stable across identical runs (at the cost of
/// meaningless durations). Wall-clock aggregates are still recorded.
bool logical_time();
void set_logical_time(bool on);

// --- metrics ---------------------------------------------------------------

/// Monotonic counter; add() is a relaxed fetch_add, so totals are exact
/// and thread-count-independent whatever the interleaving.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value. Writes race destructively; set gauges only from
/// serial code (results, configuration echoes).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations x with
/// x < edges[i] (and >= edges[i-1]); the last bucket is the overflow
/// bucket x >= edges.back(). Updates are relaxed atomic increments.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_edges);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double x);
  const std::vector<double>& edges() const { return edges_; }
  /// One count per bucket: edges().size() + 1 entries.
  std::vector<std::uint64_t> counts() const;
  std::uint64_t total() const;
  /// Sum of finite observations, in fixed-point micro-units (the
  /// Prometheus `_sum` series divided back to units at render time).
  /// Integer accumulation keeps the value exact and identical at any
  /// thread count — a floating-point sum would depend on add order —
  /// which the metrics byte-identity checks rely on. NaN contributes 0
  /// (it still counts in the overflow bucket); values beyond the
  /// representable range saturate.
  std::int64_t sum_micros() const;
  void reset();

 private:
  std::vector<double> edges_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::int64_t> sum_micros_{0};
};

/// Registry lookups: find-or-create by name; the returned reference is
/// stable for the process lifetime (callers may cache it). A histogram's
/// bucket edges are fixed by the first registration; later lookups with
/// different edges return the existing instance unchanged.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name, std::span<const double> edges);

/// One serialized metric, for tests and custom reporting.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  std::uint64_t count = 0;             ///< counter value / histogram total
  double value = 0;                    ///< gauge value
  std::vector<double> edges;           ///< histogram only
  std::vector<std::uint64_t> buckets;  ///< histogram only
  std::int64_t sum_micros = 0;         ///< histogram only (see Histogram)
};

/// Every registered metric, sorted by name.
std::vector<MetricSnapshot> snapshot_metrics();

/// {"name": value, ..., "hist": {"edges": [...], "counts": [...],
/// "total": n}}, keys sorted.
std::string metrics_json();

/// Zeroes every registered metric (registrations survive).
void reset_metrics();

// --- trace spans -----------------------------------------------------------

/// RAII span. When obs is disabled at construction the guard holds a null
/// buffer pointer and both ends are no-ops (the zero-allocation fast
/// path). `name` must be a string literal (or otherwise outlive the
/// flush); the optional integer arg distinguishes instances of the same
/// span (fold index, RRR iteration).
class SpanGuard {
 public:
  static constexpr std::int64_t kNoArg =
      std::numeric_limits<std::int64_t>::min();

  explicit SpanGuard(const char* name, std::int64_t arg = kNoArg);
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Closes the span now (the destructor becomes a no-op). For phases
  /// that end mid-scope, e.g. sequential sections of a tool's main.
  void end();

 private:
  detail::SpanBuffer* buf_ = nullptr;
  const char* name_ = nullptr;
  std::int64_t arg_ = 0;
  std::uint32_t begin_seq_ = 0;
  double begin_s_ = 0;
};

/// One completed span in merged order (tests, custom serializers).
struct SpanEvent {
  std::string name;
  std::int64_t arg = 0;
  bool has_arg = false;
  int worker = 0;               ///< pool worker id of the recording thread
  std::uint32_t begin_seq = 0;  ///< per-thread logical begin time
  std::uint32_t end_seq = 0;    ///< per-thread logical end time
  double begin_s = 0;           ///< wall clock, seconds
  double end_s = 0;
};

/// All completed spans, deterministically merged (see file comment).
std::vector<SpanEvent> snapshot_spans();

/// Chrome trace_event JSON ({"traceEvents": [...]}) of snapshot_spans().
std::string trace_json();

/// Drops recorded events (buffers stay registered). Serial point only.
void clear_trace();

/// Spans discarded because a thread buffer hit its size cap.
std::uint64_t spans_dropped();

/// Wall-clock totals per span name, sorted by name; the basis of the
/// run report's "phases" block and the end-of-run summary table.
struct SpanAggregate {
  std::string name;
  std::uint64_t count = 0;
  double seconds = 0;
};
std::vector<SpanAggregate> aggregate_spans();

// --- degradation events -----------------------------------------------------

/// One budget-driven accuracy concession (see core::RunControl's
/// degradation ladder). Events are recorded unconditionally — even with
/// instrumentation off — because a result computed with fewer trees or
/// sampled targets must never masquerade as a full-fidelity one: the run
/// report and tests read this log to tell them apart.
struct DegradationEvent {
  std::string step;    ///< "fewer_trees", "sample_targets", "shrink_radius"
  std::string detail;  ///< human-readable what/why
  std::int64_t fold = -1;  ///< LOO fold the step applied from; -1 = global
};

/// Appends an event (thread-safe; folds degrade concurrently).
void record_degradation(std::string_view step, std::string_view detail,
                        std::int64_t fold = -1);

/// Snapshot of all events in record order. Serial point only.
std::vector<DegradationEvent> degradation_events();

/// JSON array of the events (embedded in the run report).
std::string degradation_json();

/// Drops recorded events (tests, consecutive runs in one process).
void clear_degradation();

// --- run report ------------------------------------------------------------

/// Single-JSON run summary: caller fields in insertion order, then
/// "phases" (aggregate_spans), "metrics" (metrics_json), and — when any
/// were recorded — "degradation" (degradation_json).
class RunReport {
 public:
  RunReport& set(const std::string& key, const std::string& value);
  RunReport& set(const std::string& key, const char* value);
  RunReport& set(const std::string& key, double v);
  RunReport& set(const std::string& key, std::int64_t v);
  RunReport& set(const std::string& key, int v);
  RunReport& set(const std::string& key, bool v);

  std::string to_json() const;

 private:
  RunReport& set_raw(const std::string& key, std::string rendered);
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> JSON
};

// --- diagnostics bridge ----------------------------------------------------

/// Adds the sink's severity tallies to counters "<prefix>.notes",
/// ".warnings", ".errors", ".fatals" (no-op while disabled), so ingestion
/// health shows up in the run report next to the attack metrics.
void record_diagnostics(std::string_view prefix, const DiagnosticSink& sink);

}  // namespace repro::common::obs

// --- macros ----------------------------------------------------------------
// OBS_SPAN / OBS_SPAN_ARG open a scoped span; OBS_COUNT bumps a named
// counter, caching the registry lookup in a function-local static so the
// per-call cost is one atomic add.

#define REPRO_OBS_CONCAT_INNER(a, b) a##b
#define REPRO_OBS_CONCAT(a, b) REPRO_OBS_CONCAT_INNER(a, b)

#define OBS_SPAN(name) \
  ::repro::common::obs::SpanGuard REPRO_OBS_CONCAT(obs_span_, __LINE__)(name)

#define OBS_SPAN_ARG(name, arg)                                  \
  ::repro::common::obs::SpanGuard REPRO_OBS_CONCAT(obs_span_,    \
                                                   __LINE__)(    \
      name, static_cast<std::int64_t>(arg))

#define OBS_COUNT(name, n)                                      \
  do {                                                          \
    if (::repro::common::obs::enabled()) {                      \
      static ::repro::common::obs::Counter& obs_counter_ref =   \
          ::repro::common::obs::counter(name);                  \
      obs_counter_ref.add(static_cast<std::uint64_t>(n));       \
    }                                                           \
  } while (0)

// Minimal HTTP/1.0 loopback plumbing shared by the serving tools
// (obs_report --serve, split_attack_server) and their benches/tests.
//
// Scope: one request per connection, loopback only, no TLS, no
// keep-alive. What it does do carefully:
//
//   * Deadline-bounded reads. read_request() drives a poll() loop with a
//     per-connection wall-clock deadline and keeps reading until the
//     header terminator (and any Content-Length body) arrives, however
//     the client fragments it. A connected-but-silent client therefore
//     costs one deadline, never a wedged serve loop, and a GET whose
//     request line dribbles in across TCP segments parses the same as
//     one delivered whole (both were live bugs in the original
//     obs_report handler: a single blocking ::read() with no timeout).
//   * Bounded request sizes. Headers and body are capped; oversized
//     requests fail with kOutOfRange before they can balloon RSS.
//   * Careful writes. write_response() emits status line + headers +
//     body through an EINTR-tolerant partial-write loop, so large
//     metric dumps survive short writes on a full socket buffer.
//
// Error mapping contract (used by Server and the tools):
//   kIoError    -> read deadline expired / socket error -> 408, close
//   kOutOfRange -> header or body over the cap          -> 413, close
//   kParseError -> malformed request line / headers     -> 400, close
//   kDataLoss   -> peer closed mid-request              -> close silently
//
// Server runs N handler threads that each poll-accept on a shared
// non-blocking listener with a short tick, so stop() (or a CancelToken)
// drains: every thread finishes the request it is serving, then exits.
// Handlers run concurrently — route logic must be thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.hpp"
#include "common/status.hpp"

namespace repro::common::http {

/// One parsed request. Header names are lower-cased at parse time;
/// values keep their case with surrounding whitespace trimmed.
struct Request {
  std::string method;   ///< "GET", "POST", ... (upper-cased by the parser)
  std::string path;     ///< request-target, e.g. "/metrics?live=1"
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  std::string body;     ///< Content-Length bytes (possibly empty)
  std::vector<std::pair<std::string, std::string>> headers;

  /// Value of the first header with this (lower-case) name, or nullptr.
  const std::string* header(std::string_view name) const;
};

/// One response; write_response adds Content-Length and Connection
/// headers. `extra_headers` lets endpoints add e.g. Retry-After.
struct Response {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;

  /// Client side: every header parse_response saw, names lower-cased,
  /// values trimmed (the write side uses extra_headers as-is).
  std::vector<std::pair<std::string, std::string>> headers;

  /// Value of the first parsed header with this (lower-case) name, or
  /// nullptr.
  const std::string* header(std::string_view name) const;
};

/// Per-connection read policy. The deadline covers the whole request
/// (first byte through end of body), not each read() individually.
struct ReadLimits {
  double deadline_s = 5.0;
  std::size_t max_header_bytes = 8192;
  std::size_t max_body_bytes = 1 << 20;  ///< 1 MiB
};

/// Reads one full request from a connected socket under `limits`.
/// Blocks (via poll) at most limits.deadline_s in total. See the error
/// mapping contract in the file comment.
StatusOr<Request> read_request(int fd, const ReadLimits& limits);

/// Writes the response with an HTTP/1.0 status line, Content-Type,
/// Content-Length and Connection: close headers. Short writes and
/// EINTR are retried; a peer reset surfaces as kIoError (callers
/// typically just close the connection).
Status write_response(int fd, const Response& resp);

/// Canonical reason phrase ("OK", "Not Found", ...; "Status" fallback).
const char* status_reason(int code);

/// The standard Response for a failed read_request, per the error
/// mapping contract; returns false when the failure warrants closing
/// without a response (peer went away).
bool response_for_read_error(const Status& err, Response* out);

/// A bound loopback listening socket (127.0.0.1 only, CLOEXEC,
/// non-blocking). port 0 picks a free port; port() reports the actual
/// one.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&& other) noexcept { *this = std::move(other); }
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  static StatusOr<Listener> bind_loopback(int port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  int port() const { return port_; }

  /// Waits up to timeout_ms for a connection and accepts it (CLOEXEC).
  /// Returns the connected fd, or -1 on timeout / transient error —
  /// callers loop, so the tick doubles as the shutdown poll interval.
  int accept_for(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Multi-threaded one-request-per-connection server.
class Server {
 public:
  using Handler = std::function<Response(const Request&)>;

  struct Options {
    int port = 0;         ///< 0 = auto-pick
    int num_threads = 4;  ///< concurrent handler threads (>= 1)
    ReadLimits limits;
    /// Optional: when set, the server also stops once the token fires
    /// (polled on the accept tick), so SIGTERM handlers need no direct
    /// reference to the server.
    const CancelToken* cancel = nullptr;
  };

  /// Monotonic event counts since start (relaxed atomics; exact).
  struct Stats {
    std::uint64_t accepted = 0;       ///< connections accepted
    std::uint64_t served = 0;         ///< responses written (any status)
    std::uint64_t read_timeouts = 0;  ///< 408s (silent/slow clients)
    std::uint64_t rejected = 0;       ///< 400/413 read-layer rejections
    std::uint64_t write_errors = 0;   ///< responses lost to a dead peer
  };

  /// Binds and starts the handler threads. The handler is called
  /// concurrently from up to num_threads threads.
  static StatusOr<std::unique_ptr<Server>> start(Options opt,
                                                 Handler handler);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  int port() const { return listener_.port(); }

  /// Drains and joins: no new connections are accepted, every thread
  /// finishes the request it is serving, then the listener closes.
  /// Idempotent; also invoked by the destructor.
  void stop();

  Stats stats() const;

 private:
  Server(Options opt, Handler handler)
      : opt_(std::move(opt)), handler_(std::move(handler)) {}
  void serve_loop();

  Options opt_;
  Handler handler_;
  Listener listener_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> read_timeouts_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> write_errors_{0};
};

// --- client (tests, benches, check scripts, remote campaign) ----------------

/// One IPv4 server address. `host` must be a dotted-quad literal — the
/// client layer deliberately does no DNS (deterministic, no blocking
/// resolver in the dispatch path).
struct Endpoint {
  std::string host = "127.0.0.1";
  int port = 0;

  std::string label() const;  ///< "host:port"
};

/// Parses "host:port" (or just "port", meaning loopback).
StatusOr<Endpoint> parse_endpoint(const std::string& text);

/// Connects to `ep` under a wall-clock deadline: non-blocking connect,
/// poll(POLLOUT) until the handshake resolves, SO_ERROR check. An
/// unresponsive host (SYN black hole, full accept backlog) therefore
/// costs at most deadline_s, not the kernel's minutes-long SYN retry
/// schedule. Returns the connected fd (CLOEXEC, still non-blocking —
/// the read/write helpers poll) or an error; callers own the fd.
StatusOr<int> connect_to(const Endpoint& ep, double deadline_s = 5.0);

/// Connects to 127.0.0.1:port. Returns the connected fd (CLOEXEC) or an
/// error. Callers own the fd (::close it).
StatusOr<int> connect_loopback(int port, double deadline_s = 5.0);

/// One full client round-trip: connect, send the request, read the
/// response until EOF (the server closes after one response), parse it.
/// `deadline_s` covers the whole round trip, connect included. A
/// CancelToken aborts the read wait within ~100ms (kFailedPrecondition)
/// so a caller terminating a long in-flight request never blocks on the
/// server finishing.
StatusOr<Response> fetch(const Endpoint& ep, const std::string& method,
                         const std::string& path,
                         const std::string& body = std::string(),
                         const std::string& content_type =
                             "application/json",
                         double deadline_s = 10.0,
                         const CancelToken* cancel = nullptr);

/// Loopback shorthand for the above.
StatusOr<Response> fetch(int port, const std::string& method,
                         const std::string& path,
                         const std::string& body = std::string(),
                         const std::string& content_type =
                             "application/json",
                         double deadline_s = 10.0);

/// Parses a raw response byte stream (status line, headers, body) —
/// exposed for tests that drive sockets manually.
StatusOr<Response> parse_response(std::string_view raw);

// --- retrying client --------------------------------------------------------

/// Retry policy for fetch_with_retry. Failed attempts back off with
/// deterministic jittered exponential delays; a server `Retry-After`
/// (integer seconds) raises the planned delay when larger.
struct RetryPolicy {
  int max_attempts = 3;              ///< total tries per call (>= 1)
  double backoff_base_ms = 50.0;     ///< first retry delay, pre-jitter
  double backoff_max_ms = 2000.0;    ///< exponential growth cap
  std::uint64_t jitter_seed = 0;     ///< stream for deterministic jitter
  double request_deadline_s = 30.0;  ///< per-attempt connect + round trip
  /// Observer hook: called before every backoff wait with the 1-based
  /// count of failures so far, the planned delay, and whether a server
  /// Retry-After raised it. Tests pin the schedule through this.
  std::function<void(int attempt, double delay_ms, bool retry_after)>
      on_backoff;
  /// Tests: plan (and report) the delays but do not actually sleep.
  bool skip_sleep = false;
};

/// Counters for one fetch_with_retry call.
struct FetchStats {
  int attempts = 0;         ///< requests issued (injected faults included)
  int retries = 0;          ///< backoff waits taken
  int faults_injected = 0;  ///< REPRO_FAULT net_* actions applied
};

/// The deterministic jittered delay before retry `attempt` (1-based
/// count of failures so far): min(base * 2^(attempt-1), max) scaled
/// into [0.5, 1.0) by a hash of (jitter_seed, attempt) — retrying
/// clients sharing a schedule but not a seed never wake in lockstep.
double retry_backoff_ms(const RetryPolicy& policy, int attempt);

/// One logical request with bounded retries. Retries on transport
/// errors (connect refused/timeout, torn read) and on 408/429/5xx
/// responses, honoring Retry-After; retries also when the response
/// carries an `X-Payload-Fnv` header that does not match the FNV-1a
/// digest of the received body (a torn or garbled payload). Any other
/// response is returned as-is. REPRO_FAULT net_refuse/net_truncate/
/// net_delay/net_garble faults are applied here, one per attempt.
/// Exhausted retries surface the last failure as a Status.
StatusOr<Response> fetch_with_retry(const Endpoint& ep,
                                    const std::string& method,
                                    const std::string& path,
                                    const std::string& body,
                                    const RetryPolicy& policy,
                                    FetchStats* stats = nullptr,
                                    const CancelToken* cancel = nullptr);

}  // namespace repro::common::http

#include "core/global_matching.hpp"

#include <algorithm>

namespace repro::core {

GlobalMatchingResult global_matching_attack(
    const AttackResult& result, const splitmfg::SplitChallenge& challenge,
    const GlobalMatchingOptions& opt) {
  const int n = challenge.num_vpins();

  // Collect unique candidate edges from the per-v-pin top-K lists.
  struct Edge {
    float p;
    float d;
    splitmfg::VpinId a, b;
  };
  std::vector<Edge> edges;
  for (int v = 0; v < n; ++v) {
    const VpinResult& r = result.per_vpin()[static_cast<std::size_t>(v)];
    if (!r.tested) continue;
    for (const Candidate& c : r.top) {
      if (c.p < opt.min_probability) break;  // top is sorted by p desc
      if (c.id < v) continue;  // dedupe (the mirror entry covers it)
      edges.push_back(Edge{c.p, c.d, static_cast<splitmfg::VpinId>(v), c.id});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.p != y.p) return x.p > y.p;
    if (x.d != y.d) return x.d < y.d;
    return std::tie(x.a, x.b) < std::tie(y.a, y.b);
  });

  GlobalMatchingResult out;
  out.num_pairs_considered = static_cast<long>(edges.size());
  out.chosen.assign(static_cast<std::size_t>(n), {});
  std::vector<int> remaining(static_cast<std::size_t>(n), opt.capacity);
  for (const Edge& e : edges) {
    auto& ra = remaining[static_cast<std::size_t>(e.a)];
    auto& rb = remaining[static_cast<std::size_t>(e.b)];
    if (ra <= 0 || rb <= 0) continue;
    --ra;
    --rb;
    out.chosen[static_cast<std::size_t>(e.a)].push_back(e.b);
    out.chosen[static_cast<std::size_t>(e.b)].push_back(e.a);
  }

  int total = 0, good = 0;
  for (int v = 0; v < n; ++v) {
    const VpinResult& r = result.per_vpin()[static_cast<std::size_t>(v)];
    if (!r.tested || !r.has_match) continue;
    ++total;
    for (splitmfg::VpinId m : out.chosen[static_cast<std::size_t>(v)]) {
      if (challenge.is_match(v, m)) {
        ++good;
        break;
      }
    }
  }
  out.success_rate = total > 0 ? static_cast<double>(good) / total : 0.0;
  return out;
}

}  // namespace repro::core

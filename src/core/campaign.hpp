// Fault-tolerant sharded campaign supervisor.
//
// A campaign decomposes a full evaluation (LOO folds x split layers)
// into *shards* — one (layer, fold) pair each — and runs every shard as
// a supervised worker subprocess writing into its own checkpoint
// directory under the campaign directory:
//
//   campaign_dir/
//     campaign.lock      exclusive flock: one supervisor at a time
//     campaign.json      shard state table, rewritten atomically on
//                        every transition (crash-safe resume point)
//     shards/L8_f3/      per-shard CheckpointManager directory; its
//                        own .lock doubles as the worker's claim
//
// The supervisor implements the robustness policy, not the attack:
//
//   * Scheduling: up to max_workers shards run concurrently, each with
//     a wall-clock timeout after which it is SIGKILLed ("timeout").
//   * Exit taxonomy: a finished worker is classified from its wait
//     status (common/subprocess.hpp) and, for ok-looking exits, from
//     CRC validation of the artifacts it claims to have produced —
//     "corrupt_output" is a *supervisor* verdict, never an exit code,
//     because a worker cannot be trusted to report its own torn writes.
//   * Retry with exponential backoff: transient failures (crash,
//     timeout, nonzero exit, corrupt output) requeue the shard with
//     delay min(backoff_base * 2^(attempt-1), backoff_max). Usage
//     errors and spawn failures are deterministic and quarantine
//     immediately — retrying a bad command line is noise.
//   * Quarantine: after max_attempts the shard is parked and the
//     campaign *continues*; the outcome names every quarantined shard
//     with its full attempt history, and the campaign still exits
//     successfully (partial results beat no results on a week-long
//     run). A later --resume gives quarantined shards a fresh budget.
//   * Crash-safe merge: a shard only counts as ok after its result
//     artifact re-validates (manifest size/CRC + envelope CRC + binary
//     decode); per-layer digests use the same FNV-1a combination as a
//     monolithic --loo run, so the merged digest can be differenced
//     against a single-process reference.
//
// Every shard ends in exactly one of {ok, quarantined} (or pending if
// cancelled), and the obs counters campaign.shards_ok / retried /
// quarantined account for every scheduling decision.
//
// The supervisor itself honours the REPRO_FAULT hook: each ok-shard
// commit of campaign.json counts as an artifact commit, so a test can
// SIGKILL the *supervisor* after exactly K shards completed. Workers
// always run with REPRO_FAULT stripped from the environment — faults
// are injected into specific shards deliberately, via the worker
// command builder, never inherited by all of them.
// Execution backends: the supervisor schedules *executions*, not
// processes. The default backend spawns a local worker subprocess per
// attempt; `set_launcher` swaps in any other ShardExecution factory —
// the remote backend (core/campaign_remote.hpp) dispatches the shard as
// an HTTP /shard request across a fleet of attack servers with circuit
// breakers, failover and local-subprocess fallback, under exactly the
// same retry/quarantine/validation policy, because the policy only ever
// sees the ShardExecution interface.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/diagnostics.hpp"
#include "common/status.hpp"
#include "common/subprocess.hpp"
#include "common/telemetry.hpp"
#include "core/campaign_obs.hpp"

namespace repro::core {

/// One unit of supervised work: fold `fold` of the LOO suite at split
/// layer `layer`.
struct ShardSpec {
  int layer = 0;
  std::int64_t fold = 0;

  /// Stable identifier, also the shard's directory name: "L8_f3".
  std::string id() const {
    return "L" + std::to_string(layer) + "_f" + std::to_string(fold);
  }
};

enum class ShardStatus { kPending, kRunning, kOk, kQuarantined };

const char* to_string(ShardStatus s);

/// One line of a shard's failure history: what attempt N ended as.
struct ShardAttempt {
  int attempt = 0;        ///< 1-based
  std::string outcome;    ///< exit class, "timeout", or "corrupt_output"
  std::string detail;     ///< wait status / validation error text
};

struct ShardState {
  ShardSpec spec;
  ShardStatus status = ShardStatus::kPending;
  int attempts = 0;  ///< attempts started so far
  bool degraded = false;  ///< worker exited kExitOkDegraded
  std::uint64_t digest = 0;  ///< validated fold-result digest when kOk
  std::vector<ShardAttempt> history;
  /// Cross-process telemetry (heartbeat_s > 0): the last record the
  /// supervisor tailed from the shard's telemetry.jsonl — for a failed
  /// or quarantined shard, this is its phase/progress at death, and it
  /// is embedded in the campaign report alongside the attempt history.
  bool has_telemetry = false;
  common::obs::TelemetryRecord last_telemetry;
  bool stalled = false;  ///< ever flagged by the stall detector
};

struct CampaignOptions {
  std::string campaign_dir;
  std::vector<int> layers;          ///< split layers, one shard row each
  std::int64_t folds_per_layer = 0;
  int max_workers = 2;
  int max_attempts = 3;             ///< attempts before quarantine
  double backoff_base_ms = 250;
  double backoff_max_ms = 8000;
  /// Stream for the deterministic backoff jitter: retry delays are
  /// min(base * 2^(n-1), max) scaled into [0.5, 1.0) by a hash of
  /// (seed, shard id, attempt), so a batch of shards failing together
  /// never wakes in lockstep, yet every schedule is reproducible.
  std::uint64_t backoff_jitter_seed = 0;
  double shard_timeout_s = 600;     ///< per-attempt wall clock
  bool resume = false;              ///< keep prior shard state / artifacts

  // --- cross-process telemetry (campaign_obs.hpp) ----------------------
  /// > 0 enables the observability layer: the supervisor tails each
  /// running shard's telemetry.jsonl, maintains a live
  /// campaign_status.json, and arms the stall detector. The value is
  /// the workers' heartbeat interval; the worker command builder is
  /// responsible for actually passing --telemetry-out/--heartbeat-s.
  double heartbeat_s = 0;
  /// Stall threshold: a running shard whose telemetry progress has not
  /// advanced for this long is flagged. 0 = auto (max(2s, 6*heartbeat)).
  /// Flagging is detect-only unless stall_kill is set.
  double stall_after_s = 0;
  /// SIGKILL stalled workers instead of waiting for shard_timeout_s;
  /// the attempt settles as retryable outcome "stalled".
  bool stall_kill = false;
  /// Live status document path; "" = <campaign_dir>/campaign_status.json.
  std::string status_path;
  double status_interval_s = 0.5;  ///< live status rewrite cadence
};

struct CampaignOutcome {
  bool complete = false;   ///< every shard validated ok
  bool cancelled = false;  ///< stopped by the cancel token
  std::vector<ShardState> shards;
  /// Per-layer FNV-1a over the fold digests in fold order — identical
  /// to the digest a monolithic `split_attack --loo` prints for that
  /// layer. Only layers with all folds ok appear.
  std::map<int, std::uint64_t> layer_digests;
  /// FNV-1a over the per-layer digests in layer order; 0 unless
  /// complete.
  std::uint64_t campaign_digest = 0;
  int shards_ok = 0;
  int shards_quarantined = 0;
  int retries = 0;
  /// Shards the stall detector ever flagged, in (layer, fold) order.
  std::vector<std::string> stalled_shards;
  /// Counter/histogram roll-up across the ok shards' metrics.json files
  /// (telemetry runs only); "" / 0 when unavailable. Invariant across
  /// worker and thread counts — see campaign_obs.hpp.
  std::string rollup_json;
  std::uint64_t rollup_digest = 0;
  /// Remote dispatch (set_remote campaigns only).
  bool remote = false;
  RemoteDispatchStats remote_stats;
  std::vector<RemoteEndpointObs> remote_endpoints;
};

/// Builds the worker command line for (shard, shard checkpoint dir,
/// 1-based attempt). The supervisor appends its own environment policy
/// (REPRO_FAULT stripped) after this runs; explicit `env` entries set
/// here still win.
using WorkerCommand = std::function<common::SpawnOptions(
    const ShardSpec&, const std::string& shard_dir, int attempt)>;

/// Validates a finished shard's artifacts and returns the fold-result
/// digest, or an error describing why the output cannot be trusted.
using ShardValidator = std::function<common::StatusOr<std::uint64_t>(
    const ShardSpec&, const std::string& shard_dir)>;

/// How one finished execution attempt ended, before validation — the
/// supervisor still CRC-validates claimed successes itself.
struct ExecutionOutcome {
  bool ok = false;         ///< execution claims the artifact is in place
  bool degraded = false;   ///< ran under degradation (local workers only)
  std::string outcome;     ///< failure class when !ok ("crashed", ...)
  std::string detail;      ///< human-readable specifics
  bool retryable = true;   ///< false = deterministic -> quarantine now
};

/// One in-flight shard attempt. The supervisor polls it, times it out,
/// terminates it, and settles its outcome without knowing whether a
/// subprocess or a remote dispatch thread is behind it.
class ShardExecution {
 public:
  virtual ~ShardExecution() = default;

  /// True once the attempt finished (then outcome() is valid).
  virtual bool poll() = 0;
  /// Asks the attempt to stop: graceful first (SIGTERM / cancel flag),
  /// forceful on the second call or with graceful=false (SIGKILL).
  virtual void terminate(bool graceful) = 0;
  /// Waits up to `seconds` for the attempt to finish; true if it did.
  virtual bool wait_for(double seconds) = 0;
  /// Blocks until the attempt is fully reaped (joins threads / waits
  /// the process). terminate(false) first guarantees a bounded wait.
  virtual void wait() = 0;
  /// Valid after poll()/wait_for() reported finished (or after wait()).
  virtual ExecutionOutcome outcome() = 0;
  /// Whether this attempt writes telemetry.jsonl into the shard dir
  /// (local workers do; remote dispatches do not — the stall detector
  /// and tail polls skip incapable executions).
  virtual bool telemetry_capable() const { return true; }
};

/// Starts one execution attempt for (shard, shard checkpoint dir,
/// 1-based attempt). A failed launch settles as a non-retryable
/// "spawn_failed" attempt, exactly like a failed fork/exec.
using ShardLauncher =
    std::function<common::StatusOr<std::unique_ptr<ShardExecution>>(
        const ShardSpec&, const std::string& shard_dir, int attempt)>;

/// SpawnOptions for a local worker attempt with the supervisor's
/// environment policy applied: worker.out/.err capture defaults and
/// REPRO_FAULT stripped (faults are injected per shard deliberately,
/// never inherited by every worker). Shared by the default local
/// backend and the remote backend's local fallback.
common::SpawnOptions prepare_worker_spawn(const WorkerCommand& command,
                                          const ShardSpec& spec,
                                          const std::string& shard_dir,
                                          int attempt);

/// Wraps a spawned local worker as a ShardExecution (exit classified
/// per common/subprocess.hpp).
std::unique_ptr<ShardExecution> make_local_execution(
    common::Subprocess proc);

/// Live source of remote-dispatch counters, implemented by the remote
/// backend; the supervisor snapshots it into campaign.json, the status
/// document, and the outcome.
class RemoteStatsProvider {
 public:
  virtual ~RemoteStatsProvider() = default;
  virtual RemoteDispatchStats remote_stats() const = 0;
  virtual std::vector<RemoteEndpointObs> remote_endpoints() const = 0;
};

/// The deterministic jittered backoff delay before retry `attempt`
/// (1-based count of failed attempts) of `spec`: see
/// CampaignOptions::backoff_jitter_seed.
double retry_backoff_ms(const CampaignOptions& options,
                        const ShardSpec& spec, int attempt);

class CampaignSupervisor {
 public:
  CampaignSupervisor(CampaignOptions options, WorkerCommand command,
                     ShardValidator validator, common::DiagnosticSink& sink)
      : options_(std::move(options)),
        command_(std::move(command)),
        validator_(std::move(validator)),
        sink_(sink) {}

  /// Swaps the execution backend (default: local worker subprocesses
  /// built from the WorkerCommand). Call before run().
  void set_launcher(ShardLauncher launcher) {
    launcher_ = std::move(launcher);
  }

  /// Attaches a remote-dispatch stats source; its counters are embedded
  /// in campaign.json, the status document, and the outcome. Call
  /// before run(); the provider must outlive it.
  void set_remote(const RemoteStatsProvider* remote) { remote_ = remote; }

  /// Runs the campaign to completion (or cancellation). Fails fast with
  /// kFailedPrecondition if another supervisor holds the campaign lock.
  common::StatusOr<CampaignOutcome> run(common::CancelToken* cancel);

  /// Checkpoint directory of a shard inside a campaign directory.
  static std::string shard_dir(const std::string& campaign_dir,
                               const ShardSpec& spec);

  /// State-table path (campaign.json) inside a campaign directory.
  static std::string state_path(const std::string& campaign_dir);

 private:
  /// Atomically rewrites campaign.json from the in-memory shard table.
  void persist_state(const std::vector<ShardState>& shards);

  /// Merges a prior campaign.json (if any) into the shard table by
  /// shard id; unknown ids and malformed rows are ignored.
  void load_state(std::vector<ShardState>& shards);

  CampaignOptions options_;
  WorkerCommand command_;
  ShardValidator validator_;
  common::DiagnosticSink& sink_;
  ShardLauncher launcher_;  ///< empty = local subprocess backend
  const RemoteStatsProvider* remote_ = nullptr;
};

/// Default validator for attack shards: opens the shard's checkpoint
/// (adopting its run key), reads fold_<fold>.result through the full
/// manifest-CRC + envelope-CRC + decode path, and returns its
/// result_digest. Any failure is kDataLoss describing the artifact.
common::StatusOr<std::uint64_t> validate_attack_shard(
    const ShardSpec& spec, const std::string& shard_dir,
    common::DiagnosticSink& sink);

}  // namespace repro::core

// Design obfuscation experiment (paper SSIII-I, SSIV-G).
//
// Obfuscated routing is imitated by adding Gaussian noise to the
// y-coordinate of every v-pin, with a standard deviation expressed as a
// fraction of the die height. The same transformation is applied to
// training and testing challenges, degrading the two most important
// features (DiffVpinY and ManhattanVpin).
#pragma once

#include <cstdint>

#include "splitmfg/split.hpp"

namespace repro::core {

/// Returns a copy of `ch` with N(0, (sd_fraction * die height)^2) noise
/// added to every v-pin y-coordinate (clamped into the die).
splitmfg::SplitChallenge add_y_noise(const splitmfg::SplitChallenge& ch,
                                     double sd_fraction, std::uint64_t seed);

}  // namespace repro::core

#include "core/campaign_obs.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/binio.hpp"
#include "common/json_scan.hpp"
#include "common/json_writer.hpp"
#include "common/parallel.hpp"

namespace repro::core {

namespace {

using common::JsonObject;
using common::JsonValue;

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

double wall_now_s() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// True when a raw JSON number token is a plain integer — the form the
/// registry renders counters and histogram counts in. Gauges go through
/// json_num, which emits a '.' or exponent for every non-integral value;
/// the rare integral gauge that slips through is a deterministic config
/// echo, so summing it keeps the roll-up invariant (just meaningless),
/// and the known gauges all render fractionally in practice.
bool is_integer_token(const std::string& raw) {
  if (raw.empty()) return false;
  std::size_t i = raw[0] == '-' ? 1 : 0;
  if (i >= raw.size()) return false;
  for (; i < raw.size(); ++i) {
    if (raw[i] < '0' || raw[i] > '9') return false;
  }
  return true;
}

std::string render_rollup_json(
    const std::vector<common::obs::MetricSnapshot>& metrics) {
  JsonObject obj;
  for (const auto& m : metrics) {
    switch (m.kind) {
      case common::obs::MetricSnapshot::Kind::kCounter:
        obj.field(m.name, static_cast<unsigned long>(m.count));
        break;
      case common::obs::MetricSnapshot::Kind::kHistogram:
        obj.field_raw(m.name,
                      JsonObject()
                          .field_raw("edges", common::json_num_array(m.edges))
                          .field_raw("counts",
                                     common::json_num_array(m.buckets))
                          .field("total", static_cast<unsigned long>(m.count))
                          .field("sum_micros",
                                 static_cast<long>(m.sum_micros))
                          .str());
        break;
      case common::obs::MetricSnapshot::Kind::kGauge:
        break;  // dropped: no meaningful cross-process sum
    }
  }
  return obj.str();
}

std::string render_row(const ShardObsRow& row, bool final_mode) {
  JsonObject obj;
  obj.field("id", row.id)
      .field("status", row.status)
      .field("attempts", row.attempts)
      .field("degraded", row.degraded);
  if (row.status == "ok") obj.field("digest", hex64(row.digest));
  if (final_mode) return obj.str();
  obj.field("stalled", row.stalled);
  if (row.has_telemetry) {
    obj.field("phase", row.last.phase)
        .field("progress", static_cast<unsigned long>(row.last.progress))
        .field("targets_done",
               static_cast<unsigned long>(row.last.targets_done))
        .field("pairs_scored",
               static_cast<unsigned long>(row.last.pairs_scored))
        .field("trees_done", static_cast<unsigned long>(row.last.trees_done))
        .field("folds_done", static_cast<unsigned long>(row.last.folds_done))
        .field("rss_mb", static_cast<long>(row.last.rss_mb))
        .field("rss_peak_mb", static_cast<long>(row.last.rss_peak_mb));
    if (!row.last.pressure.empty()) obj.field("pressure", row.last.pressure);
    if (row.heartbeat_age_s >= 0) {
      obj.field("heartbeat_age_s", row.heartbeat_age_s);
    }
    if (row.progress_age_s >= 0) {
      obj.field("progress_age_s", row.progress_age_s);
    }
  }
  return obj.str();
}

}  // namespace

std::string render_campaign_status(const CampaignObsSnapshot& snap,
                                   bool final_mode) {
  std::vector<std::string> rows;
  rows.reserve(snap.rows.size());
  for (const ShardObsRow& row : snap.rows) {
    rows.push_back(render_row(row, final_mode));
  }
  std::vector<std::string> stalled;
  stalled.reserve(snap.stalled_shards.size());
  for (const std::string& id : snap.stalled_shards) {
    stalled.push_back(common::json_str(id));
  }
  JsonObject obj;
  obj.field("format_version", 1)
      .field("state", snap.complete  ? "complete"
                      : snap.finished ? "incomplete"
                                      : "running")
      .field("shards_total", snap.shards_total)
      .field("shards_ok", snap.shards_ok)
      .field("shards_quarantined", snap.shards_quarantined);
  if (!final_mode) {
    obj.field("shards_running", snap.shards_running)
        .field("shards_pending", snap.shards_pending);
    if (snap.elapsed_s >= 0) obj.field("elapsed_s", snap.elapsed_s);
    if (snap.eta_s >= 0) obj.field("eta_s", snap.eta_s);
  }
  obj.field_raw("stalled_shards", common::json_array(stalled));
  obj.field_raw("shards", common::json_array(rows));
  // Remote-dispatch fleet health (campaigns run with --remote only).
  // Live-mode only: the counters depend on wall-clock races (retries,
  // failovers), so the final document keeps its deterministic contract.
  if (!final_mode && snap.remote) {
    std::vector<std::string> eps;
    eps.reserve(snap.remote_endpoints.size());
    for (const RemoteEndpointObs& ep : snap.remote_endpoints) {
      eps.push_back(JsonObject()
                        .field("endpoint", ep.label)
                        .field("state", ep.state)
                        .field("requests",
                               static_cast<unsigned long>(ep.requests))
                        .field("failures",
                               static_cast<unsigned long>(ep.failures))
                        .str());
    }
    const RemoteDispatchStats& rs = snap.remote_stats;
    obj.field_raw("remote",
                  JsonObject()
                      .field("requests",
                             static_cast<unsigned long>(rs.requests))
                      .field("retries",
                             static_cast<unsigned long>(rs.retries))
                      .field("failovers",
                             static_cast<unsigned long>(rs.failovers))
                      .field("breaker_trips",
                             static_cast<unsigned long>(rs.breaker_trips))
                      .field("local_fallbacks",
                             static_cast<unsigned long>(rs.local_fallbacks))
                      .field("remote_ok",
                             static_cast<unsigned long>(rs.remote_ok))
                      .field_raw("endpoints", common::json_array(eps))
                      .str());
  }
  if (!snap.rollup_json.empty()) {
    obj.field_raw("rollup", snap.rollup_json)
        .field("rollup_digest", hex64(snap.rollup_digest));
  }
  return obj.str();
}

common::StatusOr<MetricsRollup> rollup_shard_metrics(
    const std::vector<std::string>& metrics_paths) {
  std::map<std::string, std::uint64_t> counters;
  struct Hist {
    std::vector<double> edges;
    std::vector<std::uint64_t> buckets;
    std::int64_t sum_micros = 0;
  };
  std::map<std::string, Hist> hists;

  for (const std::string& path : metrics_paths) {
    auto text = common::read_file(path);
    if (!text.ok()) return text.status();
    auto doc = common::parse_json(*text);
    if (!doc.ok()) {
      return common::Status::ParseError(path + ": " +
                                        doc.status().to_string());
    }
    if (!doc->is_object()) {
      return common::Status::ParseError(path + ": metrics file is not an "
                                        "object");
    }
    for (const auto& [name, value] : doc->members) {
      if (value.is_object() && value.find("counts") != nullptr) {
        std::vector<double> edges;
        std::vector<std::uint64_t> buckets;
        if (const JsonValue* e = value.find("edges"); e && e->is_array()) {
          for (const JsonValue& x : e->items) edges.push_back(x.as_double());
        }
        if (const JsonValue* c = value.find("counts"); c && c->is_array()) {
          for (const JsonValue& x : c->items) buckets.push_back(x.as_u64());
        }
        // sum_micros is absent from metrics files written before the
        // _sum exposition fix; treat missing as 0 so old shards still
        // roll up.
        std::int64_t sum_micros = 0;
        if (const JsonValue* s = value.find("sum_micros");
            s && s->is_number()) {
          sum_micros = s->as_i64();
        }
        auto [it, inserted] = hists.try_emplace(name);
        if (inserted) {
          it->second.edges = std::move(edges);
          it->second.buckets = std::move(buckets);
          it->second.sum_micros = sum_micros;
        } else {
          if (it->second.edges != edges ||
              it->second.buckets.size() != buckets.size()) {
            return common::Status::FailedPrecondition(
                path + ": histogram " + name +
                " has different bucket edges than earlier shards (shards "
                "did not run the same code)");
          }
          for (std::size_t i = 0; i < buckets.size(); ++i) {
            it->second.buckets[i] += buckets[i];
          }
          it->second.sum_micros += sum_micros;
        }
      } else if (value.is_number() && is_integer_token(value.raw_number)) {
        counters[name] += value.as_u64();
      }
      // Non-integer scalars are gauges: dropped (see header).
    }
  }

  MetricsRollup out;
  out.shards = static_cast<int>(metrics_paths.size());
  for (const auto& [name, v] : counters) {
    common::obs::MetricSnapshot m;
    m.kind = common::obs::MetricSnapshot::Kind::kCounter;
    m.name = name;
    m.count = v;
    out.metrics.push_back(std::move(m));
  }
  for (const auto& [name, h] : hists) {
    common::obs::MetricSnapshot m;
    m.kind = common::obs::MetricSnapshot::Kind::kHistogram;
    m.name = name;
    m.edges = h.edges;
    m.buckets = h.buckets;
    for (std::uint64_t b : h.buckets) m.count += b;
    m.sum_micros = h.sum_micros;
    out.metrics.push_back(std::move(m));
  }
  std::sort(out.metrics.begin(), out.metrics.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  out.json = render_rollup_json(out.metrics);
  out.digest = common::fnv1a64(out.json);
  return out;
}

common::StatusOr<std::string> merge_shard_traces(
    const std::vector<std::pair<std::string, std::string>>& shards) {
  std::vector<std::string> events;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const auto& [id, path] = shards[i];
    const long pid = static_cast<long>(i);
    auto text = common::read_file(path);
    if (!text.ok()) return text.status();
    auto doc = common::parse_json(*text);
    if (!doc.ok()) {
      return common::Status::ParseError(path + ": " +
                                        doc.status().to_string());
    }
    const JsonValue* trace = doc->find("traceEvents");
    if (trace == nullptr || !trace->is_array()) {
      return common::Status::ParseError(path +
                                        ": no traceEvents array (not a "
                                        "Chrome trace file)");
    }
    // Name the track first, so viewers label the pid row by shard id.
    events.push_back(
        JsonObject()
            .field("name", "process_name")
            .field("ph", "M")
            .field("pid", pid)
            .field_raw("args", JsonObject().field("name", id).str())
            .str());
    for (const JsonValue& e : trace->items) {
      if (!e.is_object()) continue;
      JsonObject obj;
      obj.field("name", e.get_string("name"))
          .field("cat", e.get_string("cat", "repro"))
          .field("ph", e.get_string("ph", "X"))
          .field("pid", pid);
      // Numeric fields are re-emitted from the raw source tokens: a
      // double round-trip could reformat them, and logical-time merges
      // are promised byte-stable.
      for (const char* key : {"tid", "ts", "dur"}) {
        if (const JsonValue* v = e.find(key);
            v != nullptr && v->is_number()) {
          obj.field_raw(key, v->raw_number);
        }
      }
      if (const JsonValue* args = e.find("args");
          args != nullptr && args->is_object()) {
        if (const JsonValue* v = args->find("v");
            v != nullptr && v->is_number()) {
          obj.field_raw("args", "{\"v\":" + v->raw_number + "}");
        }
      }
      events.push_back(obj.str());
    }
  }
  return JsonObject()
      .field("displayTimeUnit", "ms")
      .field_raw("traceEvents", common::json_array(events))
      .str();
}

common::StatusOr<CampaignObsSnapshot> scan_campaign_dir(
    const std::string& campaign_dir, double stall_after_s) {
  auto text = common::read_file(campaign_dir + "/campaign.json");
  if (!text.ok()) {
    return common::Status::NotFound(campaign_dir +
                                    ": no campaign.json (not a campaign "
                                    "directory, or none has run yet)");
  }
  auto doc = common::parse_json(*text);
  if (!doc.ok() || !doc->is_object()) {
    return common::Status::ParseError(campaign_dir +
                                      "/campaign.json is unparseable");
  }
  const JsonValue* arr = doc->find("shards");
  if (arr == nullptr || !arr->is_array()) {
    return common::Status::ParseError(campaign_dir +
                                      "/campaign.json has no shards array");
  }

  CampaignObsSnapshot snap;
  // Remote campaigns persist their fleet counters alongside the shard
  // table (campaign.cpp persist_state); a file-only observer carries
  // them into the snapshot verbatim.
  if (const JsonValue* rem = doc->find("remote");
      rem != nullptr && rem->is_object()) {
    snap.remote = true;
    snap.remote_stats.requests =
        static_cast<std::uint64_t>(rem->get_i64("requests", 0));
    snap.remote_stats.retries =
        static_cast<std::uint64_t>(rem->get_i64("retries", 0));
    snap.remote_stats.failovers =
        static_cast<std::uint64_t>(rem->get_i64("failovers", 0));
    snap.remote_stats.breaker_trips =
        static_cast<std::uint64_t>(rem->get_i64("breaker_trips", 0));
    snap.remote_stats.local_fallbacks =
        static_cast<std::uint64_t>(rem->get_i64("local_fallbacks", 0));
    snap.remote_stats.remote_ok =
        static_cast<std::uint64_t>(rem->get_i64("remote_ok", 0));
    if (const JsonValue* eps = rem->find("endpoints");
        eps != nullptr && eps->is_array()) {
      for (const JsonValue& epv : eps->items) {
        RemoteEndpointObs ep;
        ep.label = epv.get_string("endpoint");
        ep.state = epv.get_string("state", "closed");
        ep.requests = static_cast<std::uint64_t>(epv.get_i64("requests", 0));
        ep.failures = static_cast<std::uint64_t>(epv.get_i64("failures", 0));
        snap.remote_endpoints.push_back(std::move(ep));
      }
    }
  }
  const double now = wall_now_s();
  double first_t = 0;
  for (const JsonValue& rowv : arr->items) {
    ShardObsRow row;
    row.id = rowv.get_string("id");
    row.layer = static_cast<int>(rowv.get_i64("layer", 0));
    row.fold = rowv.get_i64("fold", 0);
    row.status = rowv.get_string("status", "pending");
    row.attempts = static_cast<int>(rowv.get_i64("attempts", 0));
    row.degraded = rowv.get_bool("degraded", false);
    row.digest = std::strtoull(rowv.get_string("digest", "0").c_str(),
                               nullptr, 16);
    row.ever_stalled = rowv.get_bool("stalled", false);

    // Live telemetry beats the (possibly stale) persisted snapshot.
    const common::obs::TelemetryLog log = common::obs::read_telemetry(
        campaign_dir + "/shards/" + row.id + "/telemetry.jsonl");
    if (!log.records.empty()) {
      row.has_telemetry = true;
      row.last = log.records.back();
      row.heartbeat_age_s = std::max(0.0, now - row.last.t);
      // Progress age: time since the last record where (pid, progress)
      // changed — same advance rule as the supervisor's stall detector.
      double advance_t = log.records.front().t;
      for (std::size_t i = 1; i < log.records.size(); ++i) {
        if (log.records[i].progress != log.records[i - 1].progress ||
            log.records[i].pid != log.records[i - 1].pid) {
          advance_t = log.records[i].t;
        }
      }
      row.advance_t = advance_t;
      row.progress_age_s = std::max(0.0, now - advance_t);
      if (first_t == 0 || log.records.front().t < first_t) {
        first_t = log.records.front().t;
      }
    }
    row.stalled = row.status == "running" && stall_after_s > 0 &&
                  row.has_telemetry && row.progress_age_s > stall_after_s;
    snap.rows.push_back(std::move(row));
  }
  snap.first_t = first_t;

  std::sort(snap.rows.begin(), snap.rows.end(),
            [](const ShardObsRow& a, const ShardObsRow& b) {
              return a.layer != b.layer ? a.layer < b.layer
                                        : a.fold < b.fold;
            });
  // Built after the sort so the list order matches the row order —
  // refresh_volatile rebuilds it the same way from a cached snapshot.
  for (const ShardObsRow& row : snap.rows) {
    if (row.stalled || row.ever_stalled) {
      snap.stalled_shards.push_back(row.id);
    }
  }
  for (const ShardObsRow& row : snap.rows) {
    ++snap.shards_total;
    if (row.status == "ok") ++snap.shards_ok;
    if (row.status == "running") ++snap.shards_running;
    if (row.status == "pending") ++snap.shards_pending;
    if (row.status == "quarantined") ++snap.shards_quarantined;
  }
  snap.finished = snap.shards_running == 0 && snap.shards_pending == 0;
  snap.complete = snap.shards_ok == snap.shards_total && snap.shards_total > 0;
  if (first_t > 0) {
    snap.elapsed_s = std::max(0.0, now - first_t);
    const int done = snap.shards_ok + snap.shards_quarantined;
    const int remaining = snap.shards_total - done;
    if (done > 0 && remaining > 0) {
      snap.eta_s = snap.elapsed_s * remaining / done;
    }
  }

  if (snap.complete) {
    std::vector<std::string> paths;
    paths.reserve(snap.rows.size());
    for (const ShardObsRow& row : snap.rows) {
      paths.push_back(campaign_dir + "/shards/" + row.id + "/metrics.json");
    }
    auto rollup = rollup_shard_metrics(paths);
    if (rollup.ok()) {  // absent metrics files just mean telemetry was off
      snap.rollup_json = rollup->json;
      snap.rollup_digest = rollup->digest;
      snap.rollup_metrics = std::move(rollup->metrics);
    }
  }
  return snap;
}

std::string campaign_prometheus_text(const CampaignObsSnapshot& snap) {
  std::string out;
  const auto gauge_line = [&out](const std::string& name, long v) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(v) + "\n";
  };
  gauge_line("campaign_shards_total", snap.shards_total);
  gauge_line("campaign_shards_ok", snap.shards_ok);
  gauge_line("campaign_shards_running", snap.shards_running);
  gauge_line("campaign_shards_pending", snap.shards_pending);
  gauge_line("campaign_shards_quarantined", snap.shards_quarantined);
  gauge_line("campaign_shards_stalled",
             static_cast<long>(snap.stalled_shards.size()));
  out += "# TYPE campaign_shard_progress gauge\n";
  for (const ShardObsRow& row : snap.rows) {
    if (!row.has_telemetry) continue;
    out += "campaign_shard_progress{shard=\"" + row.id + "\"} " +
           std::to_string(row.last.progress) + "\n";
  }
  out += "# TYPE campaign_shard_rss_peak_mb gauge\n";
  for (const ShardObsRow& row : snap.rows) {
    if (!row.has_telemetry) continue;
    out += "campaign_shard_rss_peak_mb{shard=\"" + row.id + "\"} " +
           std::to_string(row.last.rss_peak_mb) + "\n";
  }
  if (snap.remote) {
    const auto counter_line = [&out](const std::string& name,
                                     std::uint64_t v) {
      out += "# TYPE " + name + " counter\n";
      out += name + " " + std::to_string(v) + "\n";
    };
    counter_line("campaign_remote_requests_total",
                 snap.remote_stats.requests);
    counter_line("campaign_remote_retries_total", snap.remote_stats.retries);
    counter_line("campaign_remote_failovers_total",
                 snap.remote_stats.failovers);
    counter_line("campaign_remote_breaker_trips_total",
                 snap.remote_stats.breaker_trips);
    counter_line("campaign_remote_local_fallbacks_total",
                 snap.remote_stats.local_fallbacks);
    counter_line("campaign_remote_ok_total", snap.remote_stats.remote_ok);
    out += "# TYPE campaign_remote_endpoint_requests_total counter\n";
    for (const RemoteEndpointObs& ep : snap.remote_endpoints) {
      out += "campaign_remote_endpoint_requests_total{endpoint=\"" +
             ep.label + "\",state=\"" + ep.state + "\"} " +
             std::to_string(ep.requests) + "\n";
    }
    out += "# TYPE campaign_remote_endpoint_failures_total counter\n";
    for (const RemoteEndpointObs& ep : snap.remote_endpoints) {
      out += "campaign_remote_endpoint_failures_total{endpoint=\"" +
             ep.label + "\"} " + std::to_string(ep.failures) + "\n";
    }
  }
  out += common::obs::prometheus_text(snap.rollup_metrics, "campaign_");
  return out;
}

void refresh_volatile(CampaignObsSnapshot* snap, double now_s,
                      double stall_after_s) {
  snap->stalled_shards.clear();
  for (ShardObsRow& row : snap->rows) {
    if (row.has_telemetry) {
      row.heartbeat_age_s = std::max(0.0, now_s - row.last.t);
      row.progress_age_s = std::max(0.0, now_s - row.advance_t);
    }
    row.stalled = row.status == "running" && stall_after_s > 0 &&
                  row.has_telemetry && row.progress_age_s > stall_after_s;
    if (row.stalled || row.ever_stalled) {
      snap->stalled_shards.push_back(row.id);
    }
  }
  if (snap->first_t > 0) {
    snap->elapsed_s = std::max(0.0, now_s - snap->first_t);
    const int done = snap->shards_ok + snap->shards_quarantined;
    const int remaining = snap->shards_total - done;
    snap->eta_s = (done > 0 && remaining > 0)
                      ? snap->elapsed_s * remaining / done
                      : -1;
  }
}

CampaignWatcher::Fingerprint CampaignWatcher::fingerprint(
    std::string path) {
  Fingerprint fp;
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    fp.exists = true;
    fp.size = static_cast<std::int64_t>(st.st_size);
    fp.mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_sec) *
                      1000000000LL +
                  st.st_mtim.tv_nsec;
    fp.ino = static_cast<std::uint64_t>(st.st_ino);
  }
  fp.path = std::move(path);
  return fp;
}

common::StatusOr<CampaignObsSnapshot> CampaignWatcher::poll() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.polls;
  if (have_ && !watched_.empty()) {
    bool dirty = false;
    for (const Fingerprint& fp : watched_) {
      if (fingerprint(fp.path) != fp) {
        dirty = true;
        break;
      }
    }
    if (!dirty) {
      ++stats_.reused;
      CampaignObsSnapshot out = cached_;
      refresh_volatile(&out, wall_now_s(), stall_after_s_);
      return out;
    }
  }

  auto snap = scan_campaign_dir(dir_, stall_after_s_);
  if (!snap.ok()) {
    have_ = false;
    watched_.clear();
    return snap.status();
  }
  ++stats_.rescans;
  cached_ = std::move(*snap);
  have_ = true;
  // Fingerprints are taken after the scan: a write racing the scan may
  // or may not be reflected in the cache, but its next touch of the
  // file changes the fingerprint and forces a rescan (telemetry files
  // are appended every heartbeat, so staleness self-heals in one
  // interval).
  watched_.clear();
  watched_.push_back(fingerprint(dir_ + "/campaign.json"));
  for (const ShardObsRow& row : cached_.rows) {
    const std::string shard_dir = dir_ + "/shards/" + row.id;
    watched_.push_back(fingerprint(shard_dir + "/telemetry.jsonl"));
    watched_.push_back(fingerprint(shard_dir + "/metrics.json"));
  }
  return cached_;
}

CampaignWatcher::Stats CampaignWatcher::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace repro::core

#include "core/attack_service.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <utility>

#include "common/json_scan.hpp"
#include "common/json_writer.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "common/telemetry.hpp"
#include "core/resilience.hpp"

namespace repro::core {

namespace {

using common::JsonObject;
using common::http::Request;
using common::http::Response;

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Response json_response(int status, const std::string& body) {
  Response resp;
  resp.status = status;
  resp.content_type = "application/json";
  resp.body = body + "\n";
  return resp;
}

Response error_response(int status, const std::string& message) {
  return json_response(status,
                       JsonObject().field("error", message).str());
}

const char* source_label(CachedEnsemble::Source s) {
  return s == CachedEnsemble::Source::kStore ? "store" : "trained";
}

}  // namespace

std::uint64_t fold_model_key(const ChallengeSuite& suite,
                             const AttackConfig& config,
                             std::int64_t fold) {
  return attack_run_key(suite.challenges(), config) ^
         common::derive_seed(common::fnv1a64("attack_server.fold"),
                             static_cast<std::uint64_t>(fold));
}

std::string model_artifact_name(std::uint64_t key) {
  return "model_" + hex64(key);
}

std::string result_artifact_name(std::uint64_t key) {
  return "result_" + hex64(key);
}

common::StatusOr<std::unique_ptr<AttackService>> AttackService::create(
    std::map<int, ChallengeSuite> suites, Options opt) {
  if (suites.empty()) {
    return common::Status::InvalidArgument(
        "attack service needs at least one challenge suite");
  }
  std::unique_ptr<AttackService> svc(
      new AttackService(std::move(suites), std::move(opt)));
  if (!svc->opt_.store_dir.empty()) {
    // One fixed store key: artifact *names* carry the per-model
    // fingerprint (config + inputs + fold), so the store can hold
    // models of many configurations side by side — unlike a batch
    // checkpoint, which is scoped to a single computation.
    auto store = common::CheckpointManager::open(
        svc->opt_.store_dir,
        common::fnv1a64("attack_server.model_store"), svc->store_sink_);
    if (!store.ok()) return store.status();
    svc->store_.emplace(std::move(*store));
  }
  return svc;
}

std::uint64_t AttackService::requests_scored() const {
  return scored_.load(std::memory_order_relaxed);
}

std::shared_ptr<const CachedEnsemble> AttackService::hydrate(
    const ChallengeSuite& suite, const AttackConfig& config,
    std::int64_t fold, std::uint64_t key, const char** source) {
  if (auto entry = cache_->get(key)) {
    *source = "hit";
    return entry;
  }
  // Singleflight: the first thread to miss trains (or loads); threads
  // that pile onto the same key wait here and then hit the cache.
  std::shared_ptr<std::mutex> gate;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto& slot = inflight_[key];
    if (slot == nullptr) slot = std::make_shared<std::mutex>();
    gate = slot;
  }
  std::lock_guard<std::mutex> flight(*gate);
  if (auto entry = cache_->get(key)) {
    *source = "hit";
    return entry;
  }

  auto entry = std::make_shared<CachedEnsemble>();
  bool hydrated = false;
  const std::string name = model_artifact_name(key);
  if (store_.has_value()) {
    std::lock_guard<std::mutex> lock(store_mutex_);
    if (store_->has(name)) {
      auto raw = store_->read(name, store_sink_);
      if (raw.ok()) {
        auto model = load_model(*raw);
        if (model.ok()) {
          entry->model = std::move(*model);
          entry->source = CachedEnsemble::Source::kStore;
          hydrated = true;
        }
      }
      // Corrupt / unreadable artifacts fall through to retraining —
      // the checkpoint layer has already dropped the manifest entry.
    }
  }
  if (!hydrated) {
    const auto training = suite.training_for(static_cast<std::size_t>(fold));
    entry->model = AttackEngine::train(training, config);
    entry->source = CachedEnsemble::Source::kTrained;
    if (store_.has_value()) {
      std::lock_guard<std::mutex> lock(store_mutex_);
      // Best-effort: a full disk must not fail the request, only the
      // warm restart path.
      (void)store_->write(name, save_model(entry->model));
    }
  }
  entry->forest = ml::FlatForest::build(entry->model.classifier);
  entry->bytes = estimate_ensemble_bytes(*entry);
  *source = source_label(entry->source);
  cache_->put(key, entry);
  return entry;
}

bool AttackService::parse_target(const Request& req, ShardTarget* out,
                                 Response* error) {
  auto doc = common::parse_json(req.body);
  if (!doc.ok() || !doc->is_object()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    *error = error_response(400, "request body is not a JSON object");
    return false;
  }
  out->layer = static_cast<int>(
      doc->get_i64("layer", suites_.begin()->first));
  out->fold = doc->get_i64("fold", 0);
  out->config_name = doc->get_string("config", "Imp-9");

  const auto suite_it = suites_.find(out->layer);
  if (suite_it == suites_.end()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    *error = error_response(400, "no suite for split layer " +
                                     std::to_string(out->layer));
    return false;
  }
  out->suite = &suite_it->second;
  if (out->fold < 0 ||
      out->fold >= static_cast<std::int64_t>(out->suite->size())) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    *error = error_response(400, "fold out of range (suite has " +
                                     std::to_string(out->suite->size()) +
                                     " designs)");
    return false;
  }
  try {
    out->config = config_from_name(out->config_name);
  } catch (const std::exception& e) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    *error = error_response(400, std::string("bad config: ") + e.what());
    return false;
  }
  return true;
}

Response AttackService::handle_score(const Request& req) {
  ShardTarget target;
  Response error;
  if (!parse_target(req, &target, &error)) return error;
  const int layer = target.layer;
  const std::int64_t fold = target.fold;
  const std::string& config_name = target.config_name;
  const ChallengeSuite& suite = *target.suite;
  AttackConfig config = target.config;
  auto doc = common::parse_json(req.body);
  const double threshold =
      doc.ok() ? doc->get_double("threshold", opt_.default_threshold)
               : opt_.default_threshold;

  // Admission under the budget ladder.
  bool degraded = false;
  if (opt_.budget != nullptr) {
    const common::BudgetPressure pressure = opt_.budget->pressure();
    if (pressure == common::BudgetPressure::kExceeded) {
      rejected_busy_.fetch_add(1, std::memory_order_relaxed);
      Response resp = error_response(503, "budget exceeded");
      resp.extra_headers.emplace_back("Retry-After", "1");
      return resp;
    }
    degraded = apply_degradation(config, pressure, fold);
  }
  if (opt_.cancel != nullptr && opt_.cancel->cancelled()) {
    rejected_busy_.fetch_add(1, std::memory_order_relaxed);
    return error_response(503, "shutting down");
  }

  // All compute inline on this handler thread: the deterministic pool
  // is single-caller, and inline results are bit-identical (see
  // common::ScopedInline).
  common::ScopedInline inline_region;
  const std::uint64_t key = fold_model_key(suite, config, fold);
  const char* source = "trained";
  const double t0 = now_seconds();
  const auto entry = hydrate(suite, config, fold, key, &source);
  const double t1 = now_seconds();
  const AttackResult result =
      AttackEngine::test(entry->model, entry->forest,
                         suite.challenge(static_cast<std::size_t>(fold)),
                         opt_.cancel);
  const double t2 = now_seconds();
  if (result.interrupted) {
    rejected_busy_.fetch_add(1, std::memory_order_relaxed);
    return error_response(503, "scoring interrupted by shutdown");
  }
  scored_.fetch_add(1, std::memory_order_relaxed);

  JsonObject obj;
  obj.field("design", result.design())
      .field("layer", layer)
      .field("fold", static_cast<long>(fold))
      .field("config", config_name)
      .field("digest", hex64(result_digest(result)))
      .field("num_vpins", result.num_vpins())
      .field("threshold", threshold)
      .field("mean_loc", result.mean_loc_at_threshold(threshold))
      .field("accuracy", result.accuracy_at_threshold(threshold))
      .field("cache", source)
      .field("degraded", degraded)
      .field("hydrate_seconds", t1 - t0)
      .field("score_seconds", t2 - t1)
      .field("train_seconds", entry->model.train_seconds);
  return json_response(200, obj.str());
}

AttackService::ShardStats AttackService::shard_stats() const {
  ShardStats s;
  s.requests = shard_requests_.load(std::memory_order_relaxed);
  s.computed = shard_computed_.load(std::memory_order_relaxed);
  s.memory_hits = shard_memory_hits_.load(std::memory_order_relaxed);
  s.store_hits = shard_store_hits_.load(std::memory_order_relaxed);
  return s;
}

Response AttackService::handle_shard(const Request& req) {
  ShardTarget target;
  Response error;
  if (!parse_target(req, &target, &error)) return error;
  const ChallengeSuite& suite = *target.suite;

  // Admission: only the hard ceiling pushes back. No degradation here —
  // a degraded shard result would break byte-identity with the
  // monolithic CLI, which is the whole point of the route.
  if (opt_.budget != nullptr &&
      opt_.budget->pressure() == common::BudgetPressure::kExceeded) {
    rejected_busy_.fetch_add(1, std::memory_order_relaxed);
    Response resp = error_response(503, "budget exceeded");
    resp.extra_headers.emplace_back("Retry-After", "1");
    return resp;
  }
  if (opt_.cancel != nullptr && opt_.cancel->cancelled()) {
    rejected_busy_.fetch_add(1, std::memory_order_relaxed);
    return error_response(503, "shutting down");
  }

  const std::uint64_t key =
      fold_model_key(suite, target.config, target.fold);
  const char* result_source = "computed";
  std::string payload;

  // Idempotency tier 1: the in-memory result map.
  {
    std::lock_guard<std::mutex> lock(results_mutex_);
    auto it = results_.find(key);
    if (it != results_.end()) {
      payload = it->second;
      result_source = "memory";
    }
  }

  // Tier 2: the persistent store (survives a server restart). The
  // envelope CRC inside the payload is re-checked by load_result below
  // before the bytes are vouched for.
  if (payload.empty() && store_.has_value()) {
    const std::string name = result_artifact_name(key);
    std::lock_guard<std::mutex> lock(store_mutex_);
    if (store_->has(name)) {
      auto raw = store_->read(name, store_sink_);
      if (raw.ok()) {
        payload = std::move(*raw);
        result_source = "store";
      }
    }
  }

  std::uint64_t digest = 0;
  if (!payload.empty()) {
    auto decoded = load_result(payload);
    if (decoded.ok()) {
      digest = result_digest(*decoded);
    } else {
      payload.clear();  // damaged replay tier: recompute below
      result_source = "computed";
    }
  }

  if (payload.empty()) {
    // Singleflight on a shard-scoped gate so concurrent retries of the
    // same fold execute once; losers re-check the result map above via
    // the store/memory tiers on their own retry, or recompute a cached
    // model (cheap) right here.
    std::shared_ptr<std::mutex> gate;
    const std::uint64_t gate_key =
        key ^ common::fnv1a64("attack_server.shard_gate");
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      auto& slot = inflight_[gate_key];
      if (slot == nullptr) slot = std::make_shared<std::mutex>();
      gate = slot;
    }
    std::lock_guard<std::mutex> flight(*gate);
    {
      std::lock_guard<std::mutex> lock(results_mutex_);
      auto it = results_.find(key);
      if (it != results_.end()) {
        payload = it->second;
        result_source = "memory";
      }
    }
    if (payload.empty()) {
      common::ScopedInline inline_region;
      const char* model_source = "trained";
      const auto entry =
          hydrate(suite, target.config, target.fold, key, &model_source);
      const AttackResult result = AttackEngine::test(
          entry->model, entry->forest,
          suite.challenge(static_cast<std::size_t>(target.fold)),
          opt_.cancel);
      if (result.interrupted) {
        rejected_busy_.fetch_add(1, std::memory_order_relaxed);
        return error_response(503, "shard interrupted by shutdown");
      }
      payload = save_result(result);
      digest = result_digest(result);
      shard_computed_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(results_mutex_);
        if (results_.emplace(key, payload).second) {
          results_order_.push_back(key);
          // Bounded FIFO: sealed results are small, but a long-lived
          // server must not grow without limit.
          constexpr std::size_t kMaxResults = 512;
          if (results_order_.size() > kMaxResults) {
            results_.erase(results_order_.front());
            results_order_.erase(results_order_.begin());
          }
        }
      }
      if (store_.has_value()) {
        std::lock_guard<std::mutex> lock(store_mutex_);
        // Best-effort, like the model store: a full disk costs only the
        // restart/idempotency tier, not this response.
        (void)store_->write(result_artifact_name(key), payload);
      }
    } else {
      auto decoded = load_result(payload);
      if (decoded.ok()) digest = result_digest(*decoded);
    }
  }

  if (result_source[0] == 'm') {
    shard_memory_hits_.fetch_add(1, std::memory_order_relaxed);
  } else if (result_source[0] == 's') {
    shard_store_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  shard_requests_.fetch_add(1, std::memory_order_relaxed);
  scored_.fetch_add(1, std::memory_order_relaxed);

  Response resp;
  resp.status = 200;
  resp.content_type = "application/octet-stream";
  resp.body = std::move(payload);
  resp.extra_headers.emplace_back(
      "X-Run-Key",
      hex64(attack_run_key(suite.challenges(), target.config)));
  resp.extra_headers.emplace_back("X-Result-Digest", hex64(digest));
  resp.extra_headers.emplace_back("X-Result-Source", result_source);
  resp.extra_headers.emplace_back("X-Payload-Fnv",
                                  hex64(common::fnv1a64(resp.body)));
  resp.extra_headers.emplace_back("X-Layer",
                                  std::to_string(target.layer));
  resp.extra_headers.emplace_back("X-Fold", std::to_string(target.fold));
  return resp;
}

Response AttackService::handle_status() const {
  std::vector<std::string> layers;
  for (const auto& [layer, suite] : suites_) {
    layers.push_back(JsonObject()
                         .field("layer", layer)
                         .field("designs",
                                static_cast<unsigned long>(suite.size()))
                         .str());
  }
  const ArtifactCache::Stats cs = cache_->stats();
  JsonObject cache;
  cache.field("entries", static_cast<unsigned long>(cs.entries))
      .field("bytes", static_cast<unsigned long>(cs.bytes))
      .field("capacity_bytes",
             static_cast<unsigned long>(cs.capacity_bytes))
      .field("hits", static_cast<unsigned long>(cs.hits))
      .field("misses", static_cast<unsigned long>(cs.misses))
      .field("evictions", static_cast<unsigned long>(cs.evictions))
      .field("inserts", static_cast<unsigned long>(cs.inserts));
  const ShardStats ss = shard_stats();
  JsonObject shard;
  shard.field("requests", static_cast<unsigned long>(ss.requests))
      .field("computed", static_cast<unsigned long>(ss.computed))
      .field("memory_hits", static_cast<unsigned long>(ss.memory_hits))
      .field("store_hits", static_cast<unsigned long>(ss.store_hits));
  JsonObject obj;
  obj.field_raw("layers", common::json_array(layers))
      .field_raw("cache", cache.str())
      .field_raw("shard", shard.str())
      .field("store_dir", opt_.store_dir)
      .field("requests_scored",
             static_cast<unsigned long>(
                 scored_.load(std::memory_order_relaxed)))
      .field("rejected_busy",
             static_cast<unsigned long>(
                 rejected_busy_.load(std::memory_order_relaxed)))
      .field("bad_requests",
             static_cast<unsigned long>(
                 bad_requests_.load(std::memory_order_relaxed)));
  return json_response(200, obj.str());
}

Response AttackService::handle_metrics() const {
  std::string out = common::obs::prometheus_text();
  const ArtifactCache::Stats cs = cache_->stats();
  const auto counter_line = [&out](const char* name, std::uint64_t v) {
    out += std::string("# TYPE ") + name + " counter\n";
    out += std::string(name) + " " + std::to_string(v) + "\n";
  };
  const auto gauge_line = [&out](const char* name, std::uint64_t v) {
    out += std::string("# TYPE ") + name + " gauge\n";
    out += std::string(name) + " " + std::to_string(v) + "\n";
  };
  counter_line("server_cache_hits_total", cs.hits);
  counter_line("server_cache_misses_total", cs.misses);
  counter_line("server_cache_evictions_total", cs.evictions);
  counter_line("server_cache_inserts_total", cs.inserts);
  gauge_line("server_cache_entries", cs.entries);
  gauge_line("server_cache_bytes", cs.bytes);
  counter_line("server_requests_scored_total",
               scored_.load(std::memory_order_relaxed));
  counter_line("server_requests_rejected_total",
               rejected_busy_.load(std::memory_order_relaxed));
  counter_line("server_bad_requests_total",
               bad_requests_.load(std::memory_order_relaxed));
  counter_line("server_shard_requests_total",
               shard_requests_.load(std::memory_order_relaxed));
  counter_line("server_shard_computed_total",
               shard_computed_.load(std::memory_order_relaxed));
  counter_line("server_shard_memory_hits_total",
               shard_memory_hits_.load(std::memory_order_relaxed));
  counter_line("server_shard_store_hits_total",
               shard_store_hits_.load(std::memory_order_relaxed));
  Response resp;
  resp.status = 200;
  resp.content_type = "text/plain; version=0.0.4";
  resp.body = std::move(out);
  return resp;
}

Response AttackService::handle(const Request& req) {
  try {
    const std::string path = req.path.substr(0, req.path.find('?'));
    if (path == "/score") {
      if (req.method != "POST") {
        return error_response(405, "use POST /score");
      }
      return handle_score(req);
    }
    if (path == "/shard") {
      if (req.method != "POST") {
        return error_response(405, "use POST /shard");
      }
      return handle_shard(req);
    }
    if (path == "/status" || path == "/metrics" || path == "/healthz") {
      if (req.method != "GET") {
        return error_response(405, "use GET " + path);
      }
      if (path == "/status") return handle_status();
      if (path == "/metrics") return handle_metrics();
      Response resp;
      resp.body = "ok\n";
      return resp;
    }
    return error_response(404, "unknown path " + path);
  } catch (const std::exception& e) {
    return error_response(500, e.what());
  }
}

}  // namespace repro::core

// The 11 pairwise layout features of paper SSIII-B, plus feature-set /
// legality helpers.
//
// Feature order matters: the paper's "first 9 features" define ML-9/Imp-9;
// Imp-7 removes TotalWirelength and TotalArea (the two least important);
// Imp-11 adds the two congestion features PC and RC.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "splitmfg/split.hpp"

namespace repro::core {

enum Feature : int {
  kDiffPinX = 0,
  kDiffPinY,
  kManhattanPin,
  kDiffVpinX,
  kDiffVpinY,
  kManhattanVpin,
  kTotalWirelength,
  kTotalArea,
  kDiffArea,
  kPlacementCongestion,
  kRoutingCongestion,
  kNumFeatures
};

/// Which subset of the 11 features a model configuration uses.
enum class FeatureSet { kF7, kF9, kF11 };

/// Indices (into the 11-feature vector) selected by a feature set, in
/// canonical order.
std::vector<int> feature_indices(FeatureSet fs);

/// Human-readable names, aligned with Feature.
const std::array<std::string, kNumFeatures>& feature_names();

/// Computes all 11 features for a v-pin pair. Symmetric in (v1, v2) except
/// DiffArea, which by construction only depends on the (unique) driver side;
/// see the paper's footnote: pairs with two drivers are illegal.
///
/// `distance_scale` multiplies the six distance features and the
/// wirelength (1.0 = raw DBU, the paper's setup). Passing 1/(die width +
/// die height) yields die-normalized distances - an extension that helps
/// when training and testing designs differ in size (cf. the normalized
/// axes of the paper's Fig. 4).
std::array<double, kNumFeatures> pair_features(const splitmfg::Vpin& v1,
                                               const splitmfg::Vpin& v2,
                                               double distance_scale = 1.0);

/// A pair is illegal if both v-pins connect to output pins below the split
/// (two drivers cannot share a net). Illegal pairs are excluded from samples
/// and classified as non-matching at test time.
inline bool legal_pair(const splitmfg::Vpin& v1, const splitmfg::Vpin& v2) {
  return !(v1.drives() && v2.drives());
}

/// Projects the 11-vector onto a feature set.
std::vector<double> project(const std::array<double, kNumFeatures>& full,
                            const std::vector<int>& indices);

}  // namespace repro::core

#include "core/cross_validation.hpp"

namespace repro::core {

std::vector<const splitmfg::SplitChallenge*> ChallengeSuite::training_for(
    std::size_t target) const {
  std::vector<const splitmfg::SplitChallenge*> out;
  for (std::size_t i = 0; i < challenges_.size(); ++i) {
    if (i != target) out.push_back(&challenges_[i]);
  }
  return out;
}

std::vector<AttackResult> ChallengeSuite::run_all(
    const AttackConfig& config) const {
  std::vector<AttackResult> out;
  for (std::size_t i = 0; i < challenges_.size(); ++i) {
    const auto training = training_for(i);
    out.push_back(AttackEngine::run(challenges_[i], training, config));
  }
  return out;
}

}  // namespace repro::core

#include "core/cross_validation.hpp"

#include <optional>

#include "common/obs.hpp"
#include "common/parallel.hpp"

namespace repro::core {

std::vector<const splitmfg::SplitChallenge*> ChallengeSuite::training_for(
    std::size_t target) const {
  std::vector<const splitmfg::SplitChallenge*> out;
  for (std::size_t i = 0; i < challenges_.size(); ++i) {
    if (i != target) out.push_back(&challenges_[i]);
  }
  return out;
}

std::vector<AttackResult> ChallengeSuite::run_all(
    const AttackConfig& config) const {
  // The leave-one-out folds are independent (each trains its own model on
  // its own N-1 designs) and run concurrently; fold i only writes slot i.
  // Nested parallel regions (tree training, target scoring) execute
  // inline on the fold's worker, which changes nothing about the results:
  // every parallel body in this repo is a pure function of its index.
  const std::int64_t n = static_cast<std::int64_t>(challenges_.size());
  auto folds = common::parallel_map<std::optional<AttackResult>>(
      n, [&](std::int64_t i) {
        OBS_SPAN_ARG("loo.fold", i);
        OBS_COUNT("loo.folds", 1);
        const auto training = training_for(static_cast<std::size_t>(i));
        return std::optional<AttackResult>(AttackEngine::run(
            challenges_[static_cast<std::size_t>(i)], training, config));
      });
  std::vector<AttackResult> out;
  out.reserve(folds.size());
  for (auto& f : folds) out.push_back(std::move(*f));
  return out;
}

}  // namespace repro::core

#include "core/cross_validation.hpp"

#include <optional>
#include <string>
#include <utility>

#include "common/obs.hpp"
#include "common/parallel.hpp"

namespace repro::core {

std::vector<const splitmfg::SplitChallenge*> ChallengeSuite::training_for(
    std::size_t target) const {
  std::vector<const splitmfg::SplitChallenge*> out;
  for (std::size_t i = 0; i < challenges_.size(); ++i) {
    if (i != target) out.push_back(&challenges_[i]);
  }
  return out;
}

std::string ChallengeSuite::fold_result_name(std::int64_t i) {
  return "fold_" + std::to_string(i) + ".result";
}

std::string ChallengeSuite::fold_model_name(std::int64_t i) {
  return "fold_" + std::to_string(i) + ".model";
}

std::vector<AttackResult> ChallengeSuite::run_all(
    const AttackConfig& config) const {
  // The plain path is the checkpointed one with every service absent:
  // no artifacts, no cancellation, no budget — the fold bodies execute
  // exactly as before.
  const RunControl rc;
  auto folds = run_all_checkpointed(config, rc);
  std::vector<AttackResult> out;
  out.reserve(folds.size());
  for (auto& f : folds) out.push_back(std::move(*f));
  return out;
}

std::optional<AttackResult> ChallengeSuite::load_fold_result(
    const RunControl& rc, common::DiagnosticSink& sink,
    std::int64_t i) const {
  if (!rc.checkpoint) return std::nullopt;
  const std::string rname = fold_result_name(i);
  if (!rc.checkpoint->has(rname)) return std::nullopt;
  auto raw = rc.checkpoint->read(rname, sink);
  if (!raw.ok()) return std::nullopt;
  auto res = load_result(*raw);
  if (res.ok()) {
    OBS_COUNT("resume.folds_loaded", 1);
    OBS_COUNT("loo.folds_done", 1);
    return std::move(*res);
  }
  sink.warning("checkpoint.corrupt_artifact", 0,
               rname + ": " + res.status().to_string() + "; recomputing fold");
  (void)rc.checkpoint->remove(rname);
  return std::nullopt;
}

std::optional<TrainedModel> ChallengeSuite::load_fold_model(
    const RunControl& rc, common::DiagnosticSink& sink,
    std::int64_t i) const {
  if (!rc.checkpoint) return std::nullopt;
  const std::string mname = fold_model_name(i);
  if (!rc.checkpoint->has(mname)) return std::nullopt;
  auto raw = rc.checkpoint->read(mname, sink);
  if (!raw.ok()) return std::nullopt;
  auto m = load_model(*raw);
  if (m.ok()) {
    OBS_COUNT("resume.models_loaded", 1);
    return std::move(*m);
  }
  sink.warning("checkpoint.corrupt_artifact", 0,
               mname + ": " + m.status().to_string() +
                   "; retraining fold model");
  (void)rc.checkpoint->remove(mname);
  return std::nullopt;
}

std::optional<AttackResult> ChallengeSuite::compute_fold(
    const AttackConfig& config, const RunControl& rc, std::int64_t i,
    std::optional<TrainedModel> model) const {
  const std::size_t s = static_cast<std::size_t>(i);
  OBS_SPAN_ARG("loo.fold", i);
  OBS_COUNT("loo.folds", 1);

  // Budget boundary: before this fold commits to hours of work, either
  // stop (exceeded) or shed accuracy down the ladder.
  const common::BudgetPressure pressure = rc.pressure();
  if (pressure == common::BudgetPressure::kExceeded) {
    if (rc.cancel) rc.cancel->request_cancel("budget exhausted");
    return std::nullopt;
  }
  AttackConfig fold_config = config;
  apply_degradation(fold_config, pressure, i);

  const auto training = training_for(s);
  if (!model) {
    if (rc.cancelled()) return std::nullopt;
    model = AttackEngine::train(training, fold_config);
    if (rc.checkpoint && !rc.cancelled()) {
      (void)rc.checkpoint->write(fold_model_name(i), save_model(*model));
    }
  }
  if (rc.cancelled()) return std::nullopt;
  AttackResult res = AttackEngine::test(*model, challenges_[s], rc.cancel);
  // A cancelled scoring loop produced a timing-dependent subset of
  // targets; keeping it (or checkpointing it) would poison the
  // resume-determinism guarantee.
  if (res.interrupted) return std::nullopt;
  if (rc.checkpoint) {
    (void)rc.checkpoint->write(fold_result_name(i), save_result(res));
    (void)rc.checkpoint->remove(fold_model_name(i));
  }
  // Completion counter for telemetry: exactly one bump per finished fold
  // whether computed here or loaded by load_fold_result, so the total is
  // identical between fresh and resumed runs.
  OBS_COUNT("loo.folds_done", 1);
  return res;
}

std::vector<std::optional<AttackResult>> ChallengeSuite::run_all_checkpointed(
    const AttackConfig& config, const RunControl& rc) const {
  const std::int64_t n = static_cast<std::int64_t>(challenges_.size());
  std::vector<std::optional<AttackResult>> out(static_cast<std::size_t>(n));
  common::DiagnosticSink local_sink;
  common::DiagnosticSink& sink = rc.sink ? *rc.sink : local_sink;

  // Resume phase (serial): pull completed fold results, then any trained
  // models of folds that crashed between training and scoring. Corrupt
  // artifacts surface as "checkpoint.corrupt_artifact" diagnostics (from
  // CheckpointManager::read or the envelope parsers below) and fall back
  // to recomputation — a bad checkpoint can cost time, never correctness.
  std::vector<std::optional<TrainedModel>> models(
      static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    out[s] = load_fold_result(rc, sink, i);
    if (!out[s]) models[s] = load_fold_model(rc, sink, i);
  }

  // Compute phase: the missing folds, concurrently. Fold i only touches
  // slot i (and its own checkpoint artifacts), and CheckpointManager
  // writes are thread-safe. Nested parallel regions (tree training,
  // target scoring) execute inline on the fold's worker.
  auto fresh = common::parallel_map<std::optional<AttackResult>>(
      n,
      [&](std::int64_t i) -> std::optional<AttackResult> {
        const std::size_t s = static_cast<std::size_t>(i);
        if (out[s]) return std::nullopt;  // loaded from checkpoint
        return compute_fold(config, rc, i, std::move(models[s]));
      },
      rc.cancel);

  for (std::int64_t i = 0; i < n; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    if (!out[s] && fresh[s]) out[s] = std::move(fresh[s]);
  }
  return out;
}

std::optional<AttackResult> ChallengeSuite::run_fold_checkpointed(
    const AttackConfig& config, const RunControl& rc,
    std::int64_t fold) const {
  if (fold < 0 || fold >= static_cast<std::int64_t>(challenges_.size())) {
    return std::nullopt;
  }
  common::DiagnosticSink local_sink;
  common::DiagnosticSink& sink = rc.sink ? *rc.sink : local_sink;
  if (auto done = load_fold_result(rc, sink, fold)) return done;
  return compute_fold(config, rc, fold, load_fold_model(rc, sink, fold));
}

}  // namespace repro::core

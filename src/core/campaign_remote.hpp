// Remote execution backend for the campaign supervisor: dispatches
// shards as /shard HTTP requests across a fleet of split_attack_server
// endpoints instead of spawning local worker subprocesses.
//
// Layering (bottom to top):
//
//   * common/http fetch_with_retry — one request to one endpoint, with
//     per-attempt deadline, jittered exponential backoff on transport
//     errors / 408 / 429 / 5xx (honoring Retry-After) and payload-digest
//     verification against X-Payload-Fnv.
//   * CircuitBreaker — per-endpoint health gate. An endpoint whose
//     dispatches fail `failure_threshold` times in a row opens (all
//     traffic skips it); after `cooldown_ms` it admits exactly one
//     half-open probe — a success closes it, a failure re-opens it and
//     restarts the cooldown. Time is an explicit argument so tests pin
//     the whole state machine without sleeping.
//   * RemoteDispatcher — endpoint pool. Rotates round-robin over
//     breaker-admitted endpoints, counts failovers (a shard moving to
//     its 2nd+ endpoint after a failure) and owns the fleet-wide
//     RemoteDispatchStats the supervisor embeds in campaign.json.
//   * RemoteShardExecution — one shard attempt as a background thread
//     behind the ShardExecution interface. Tries endpoints until one
//     serves the shard; writes the returned result-artifact payload
//     into the shard's checkpoint under the server's X-Run-Key so the
//     supervisor's validator (manifest CRC + envelope CRC + decode)
//     judges it exactly like a local worker's output. When every
//     endpoint is down or exhausted it degrades gracefully: the shard
//     runs as a local worker subprocess (prepare_worker_spawn — same
//     command, same environment policy) and `local_fallbacks` counts it.
//
// Digest contract: the server computes the fold with parallel reductions
// forced inline, and the payload is the exact save_result byte string a
// local worker would have written — so per-layer and campaign digests
// are byte-identical to a monolithic `split_attack --loo` regardless of
// endpoint count, failovers, or fallbacks.
//
// Idempotency: a retried shard (torn response, timeout after the server
// finished) re-requests the same attack_run_key; the server answers
// from its result store instead of retraining, so retries are safe at
// any point in the request lifecycle.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/http.hpp"
#include "common/status.hpp"
#include "core/campaign.hpp"

namespace repro::core {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* to_string(BreakerState s);

/// Per-endpoint circuit breaker. Not thread-safe — the dispatcher holds
/// its own lock. Time is caller-supplied (milliseconds on any steady
/// scale) so the state machine is deterministic under test.
class CircuitBreaker {
 public:
  struct Options {
    int failure_threshold = 3;   ///< consecutive failures -> open
    double cooldown_ms = 2000;   ///< open duration before half-open
  };

  CircuitBreaker();  ///< default Options
  explicit CircuitBreaker(Options opt) : opt_(opt) {}

  /// Whether a request may be sent now. In half-open, admits exactly
  /// one probe: further calls return false until the probe settles via
  /// record_success / record_failure.
  bool allow(double now_ms);

  /// The probe/request admitted by allow() succeeded: close and reset.
  void record_success();

  /// The admitted request failed. In half-open this re-opens and
  /// restarts the cooldown; in closed it opens once the consecutive
  /// failure count reaches the threshold.
  void record_failure(double now_ms);

  BreakerState state(double now_ms) const;
  int consecutive_failures() const { return consecutive_failures_; }
  std::uint64_t trips() const { return trips_; }

 private:
  Options opt_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  double opened_at_ms_ = 0;
  bool probe_inflight_ = false;
  std::uint64_t trips_ = 0;  ///< closed/half-open -> open transitions
};

/// Parses "host:port[,host:port...]" into an endpoint list.
common::StatusOr<std::vector<common::http::Endpoint>> parse_endpoint_list(
    const std::string& text);

struct RemoteCampaignOptions {
  std::vector<common::http::Endpoint> endpoints;
  std::string config_name = "Imp-9";  ///< /shard request config
  int request_attempts = 3;           ///< fetch_with_retry tries/endpoint
  double backoff_base_ms = 50;
  double backoff_max_ms = 2000;
  std::uint64_t jitter_seed = 0;
  /// Per-request deadline. Covers server-side training on a cold fold,
  /// so this is minutes, not the protocol-level seconds.
  double request_deadline_s = 600;
  CircuitBreaker::Options breaker;
  /// Fleet down / all endpoints exhausted: run the shard as a local
  /// worker subprocess. Off = the attempt fails retryably and the
  /// supervisor's own retry/quarantine policy decides.
  bool allow_local_fallback = true;
  /// Tests: skip real backoff sleeps inside fetch_with_retry.
  bool skip_sleep = false;
};

/// Endpoint pool + fleet statistics. Thread-safe: shard executions on
/// many threads acquire endpoints and report results concurrently.
/// Implements RemoteStatsProvider for the supervisor's snapshots.
class RemoteDispatcher final : public RemoteStatsProvider {
 public:
  /// `local_command` builds the fallback worker command line (the same
  /// WorkerCommand the supervisor would use for a local campaign).
  RemoteDispatcher(RemoteCampaignOptions options, WorkerCommand local_command);

  /// The ShardLauncher to install via CampaignSupervisor::set_launcher.
  /// The dispatcher must outlive the supervisor's run().
  ShardLauncher launcher();

  RemoteDispatchStats remote_stats() const override;
  std::vector<RemoteEndpointObs> remote_endpoints() const override;

  const RemoteCampaignOptions& options() const { return options_; }

 private:
  friend class RemoteShardExecution;

  /// Picks the next breaker-admitted endpoint not yet in `tried`
  /// (round-robin from the pool cursor); -1 when none is admissible.
  int acquire(const std::vector<char>& tried);

  /// Settles the endpoint attempt admitted by acquire(): exactly one
  /// report per acquire, success or failure (a cancelled probe counts
  /// as failure so a half-open breaker safely re-opens).
  void report(int index, bool success, const common::http::FetchStats& fs);

  void count_failover();
  void count_local_fallback();
  void count_remote_ok();

  static double now_ms();

  struct EndpointState {
    common::http::Endpoint ep;
    CircuitBreaker breaker;
    std::uint64_t requests = 0;
    std::uint64_t failures = 0;
  };

  const RemoteCampaignOptions options_;
  const WorkerCommand local_command_;
  mutable std::mutex mutex_;
  std::vector<EndpointState> endpoints_;
  std::size_t cursor_ = 0;
  RemoteDispatchStats stats_;
};

}  // namespace repro::core

#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cmath>
#include <filesystem>
#include <thread>

#include "common/binio.hpp"
#include "common/checkpoint.hpp"
#include "common/fault.hpp"
#include "common/json_scan.hpp"
#include "common/json_writer.hpp"
#include "common/lockfile.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "common/telemetry.hpp"
#include "core/campaign_obs.hpp"
#include "core/cross_validation.hpp"
#include "core/resilience.hpp"

namespace repro::core {

namespace {

using Clock = std::chrono::steady_clock;

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

ShardStatus status_from_string(const std::string& s) {
  if (s == "running") return ShardStatus::kRunning;
  if (s == "ok") return ShardStatus::kOk;
  if (s == "quarantined") return ShardStatus::kQuarantined;
  return ShardStatus::kPending;
}

/// FNV-1a over the little-endian concatenation of digests — the same
/// combination split_attack prints for a monolithic LOO run, so shard
/// merges and single-process references are directly comparable.
std::uint64_t combine_digests(const std::vector<std::uint64_t>& digests) {
  common::BinaryWriter w;
  for (std::uint64_t d : digests) w.u64(d);
  return common::fnv1a64(w.buffer());
}

double wall_now_s() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

double retry_backoff_ms(const CampaignOptions& options,
                        const ShardSpec& spec, int attempt) {
  if (attempt < 1) attempt = 1;
  double base = options.backoff_base_ms;
  for (int i = 1; i < attempt && base < options.backoff_max_ms; ++i) {
    base *= 2.0;
  }
  base = std::min(base, options.backoff_max_ms);
  // Deterministic jitter into [0.5, 1.0): hash (seed, shard id,
  // attempt) so concurrent failures spread out but every schedule is
  // replayable. 53 bits -> double, same recipe as http::retry_backoff_ms.
  const std::uint64_t stream = common::derive_seed(
      options.backoff_jitter_seed, common::fnv1a64(spec.id()));
  const std::uint64_t h =
      common::derive_seed(stream, static_cast<std::uint64_t>(attempt));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return base * (0.5 + 0.5 * u);
}

common::SpawnOptions prepare_worker_spawn(const WorkerCommand& command,
                                          const ShardSpec& spec,
                                          const std::string& shard_dir,
                                          int attempt) {
  common::SpawnOptions opt = command(spec, shard_dir, attempt);
  if (opt.stdout_path.empty()) opt.stdout_path = shard_dir + "/worker.out";
  if (opt.stderr_path.empty()) opt.stderr_path = shard_dir + "/worker.err";
  // Fault injection is per-shard and deliberate (via the command
  // builder); a REPRO_FAULT inherited from the supervisor's environment
  // must not leak into every worker.
  opt.env_unset.push_back("REPRO_FAULT");
  return opt;
}

namespace {

/// The default backend: one supervised worker subprocess per attempt.
class LocalShardExecution final : public ShardExecution {
 public:
  explicit LocalShardExecution(common::Subprocess proc)
      : proc_(std::move(proc)) {}

  bool poll() override { return proc_.poll(); }

  void terminate(bool graceful) override {
    proc_.kill(graceful ? SIGTERM : SIGKILL);
  }

  bool wait_for(double seconds) override { return proc_.wait_for(seconds); }

  void wait() override { proc_.wait(); }

  ExecutionOutcome outcome() override {
    const common::WaitStatus ws = proc_.status();
    const common::ExitClass cls = common::classify_exit(ws);
    ExecutionOutcome out;
    switch (cls) {
      case common::ExitClass::kOk:
      case common::ExitClass::kOkDegraded:
        out.ok = true;
        out.degraded = cls == common::ExitClass::kOkDegraded;
        return out;
      case common::ExitClass::kUsageError:
      case common::ExitClass::kSpawnFailed:
        // Deterministic: the same command line will fail the same way.
        out.outcome = common::to_string(cls);
        out.detail = ws.to_string();
        out.retryable = false;
        return out;
      case common::ExitClass::kInterrupted:
      case common::ExitClass::kFailed:
      case common::ExitClass::kCrashed:
        out.outcome = common::to_string(cls);
        out.detail = ws.to_string();
        out.retryable = true;
        return out;
    }
    out.outcome = "unknown";
    out.detail = ws.to_string();
    return out;
  }

 private:
  common::Subprocess proc_;
};

}  // namespace

std::unique_ptr<ShardExecution> make_local_execution(
    common::Subprocess proc) {
  return std::make_unique<LocalShardExecution>(std::move(proc));
}

const char* to_string(ShardStatus s) {
  switch (s) {
    case ShardStatus::kPending: return "pending";
    case ShardStatus::kRunning: return "running";
    case ShardStatus::kOk: return "ok";
    case ShardStatus::kQuarantined: return "quarantined";
  }
  return "unknown";
}

std::string CampaignSupervisor::shard_dir(const std::string& campaign_dir,
                                          const ShardSpec& spec) {
  return campaign_dir + "/shards/" + spec.id();
}

std::string CampaignSupervisor::state_path(const std::string& campaign_dir) {
  return campaign_dir + "/campaign.json";
}

common::StatusOr<std::uint64_t> validate_attack_shard(
    const ShardSpec& spec, const std::string& dir,
    common::DiagnosticSink& sink) {
  auto ckpt = common::CheckpointManager::open_existing(dir, sink);
  if (!ckpt.ok()) return ckpt.status();
  const std::string name = ChallengeSuite::fold_result_name(spec.fold);
  if (!ckpt->has(name)) {
    return common::Status::DataLoss(spec.id() + ": worker reported success "
                                    "but " + name + " is not in the manifest");
  }
  auto raw = ckpt->read(name, sink);  // manifest size + CRC check
  if (!raw.ok()) return raw.status();
  auto res = load_result(*raw);  // envelope CRC + structural decode
  if (!res.ok()) return res.status();
  return result_digest(*res);
}

common::StatusOr<CampaignOutcome> CampaignSupervisor::run(
    common::CancelToken* cancel) {
  if (options_.layers.empty() || options_.folds_per_layer <= 0) {
    return common::Status::InvalidArgument(
        "campaign needs at least one layer and one fold per layer");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.campaign_dir + "/shards", ec);
  if (ec) {
    return common::Status::IoError("cannot create campaign dir " +
                                   options_.campaign_dir + ": " +
                                   ec.message());
  }
  // One supervisor per campaign directory. The flock dies with us, so a
  // SIGKILLed supervisor never wedges the campaign — the next one
  // reclaims the stale lock and resumes from campaign.json.
  auto lock = common::FileLock::acquire(
      options_.campaign_dir + "/campaign.lock", "campaign", sink_);
  if (!lock.ok()) return lock.status();

  CampaignOutcome out;
  std::vector<ShardState>& shards = out.shards;
  for (int layer : options_.layers) {
    for (std::int64_t f = 0; f < options_.folds_per_layer; ++f) {
      ShardState st;
      st.spec = ShardSpec{layer, f};
      shards.push_back(std::move(st));
    }
  }

  if (!options_.resume) {
    // A fresh campaign must not inherit artifacts from a previous one
    // in the same directory: wipe state and shard checkpoints.
    std::filesystem::remove(state_path(options_.campaign_dir), ec);
    std::filesystem::remove_all(options_.campaign_dir + "/shards", ec);
    std::filesystem::create_directories(options_.campaign_dir + "/shards", ec);
  } else {
    load_state(shards);
  }

  // Adopted state needs scrubbing: "running" shards belong to a dead
  // supervisor; "ok" shards re-validate (disk rot between sessions is
  // exactly what the CRCs are for); "quarantined" shards get a fresh
  // retry budget — an operator resuming a campaign is asking for
  // another go, not a replay of the old verdict.
  for (ShardState& st : shards) {
    if (st.status == ShardStatus::kRunning) {
      st.status = ShardStatus::kPending;
    } else if (st.status == ShardStatus::kQuarantined) {
      st.status = ShardStatus::kPending;
      st.attempts = 0;
      sink_.note("campaign.quarantine_reset", 0,
                 st.spec.id() + ": retry budget reset on resume");
    } else if (st.status == ShardStatus::kOk) {
      auto digest =
          validator_(st.spec, shard_dir(options_.campaign_dir, st.spec));
      if (digest.ok()) {
        st.digest = *digest;
      } else {
        sink_.warning("campaign.revalidate_failed", 0,
                      st.spec.id() + ": " + digest.status().to_string() +
                          "; recomputing shard");
        st.status = ShardStatus::kPending;
        st.attempts = 0;
        st.digest = 0;
      }
    }
  }
  persist_state(shards);

  // Cross-process telemetry config (heartbeat_s > 0 arms the layer).
  const bool telemetry_on = options_.heartbeat_s > 0;
  const double stall_after_s =
      options_.stall_after_s > 0 ? options_.stall_after_s
                                 : std::max(2.0, 6.0 * options_.heartbeat_s);
  const std::string status_path =
      options_.status_path.empty()
          ? options_.campaign_dir + "/campaign_status.json"
          : options_.status_path;
  const Clock::time_point campaign_start = Clock::now();

  struct Running {
    std::size_t idx;
    std::unique_ptr<ShardExecution> exec;
    Clock::time_point deadline;
    common::obs::TelemetryTail tail;
    Clock::time_point last_progress;  ///< when telemetry last advanced
    bool stalled = false;             ///< currently flagged
  };
  std::vector<Running> running;
  std::vector<Clock::time_point> ready_at(shards.size(), Clock::now());

  // The execution backend: local worker subprocesses unless the caller
  // installed another launcher (e.g. the remote fleet dispatcher).
  ShardLauncher launch = launcher_;
  if (!launch) {
    launch = [this](const ShardSpec& spec, const std::string& dir,
                    int attempt)
        -> common::StatusOr<std::unique_ptr<ShardExecution>> {
      auto proc = common::Subprocess::spawn(
          prepare_worker_spawn(command_, spec, dir, attempt));
      if (!proc.ok()) return proc.status();
      return make_local_execution(std::move(*proc));
    };
  }

  // Builds the status snapshot campaign_obs renders: one row per shard
  // in (layer, fold) order (the shards vector is built in that order).
  const auto build_snapshot = [&](bool final_mode) {
    CampaignObsSnapshot snap;
    const double now_wall = wall_now_s();
    for (std::size_t idx = 0; idx < shards.size(); ++idx) {
      const ShardState& st = shards[idx];
      ShardObsRow row;
      row.id = st.spec.id();
      row.layer = st.spec.layer;
      row.fold = st.spec.fold;
      row.status = to_string(st.status);
      row.attempts = st.attempts;
      row.degraded = st.degraded;
      row.digest = st.digest;
      row.has_telemetry = st.has_telemetry;
      row.last = st.last_telemetry;
      if (!final_mode && st.has_telemetry) {
        row.heartbeat_age_s = std::max(0.0, now_wall - st.last_telemetry.t);
      }
      for (const Running& r : running) {
        if (r.idx == idx) {
          row.stalled = r.stalled;
          row.progress_age_s =
              std::chrono::duration<double>(Clock::now() - r.last_progress)
                  .count();
        }
      }
      ++snap.shards_total;
      switch (st.status) {
        case ShardStatus::kOk: ++snap.shards_ok; break;
        case ShardStatus::kRunning: ++snap.shards_running; break;
        case ShardStatus::kPending: ++snap.shards_pending; break;
        case ShardStatus::kQuarantined: ++snap.shards_quarantined; break;
      }
      if (st.stalled) snap.stalled_shards.push_back(row.id);
      snap.rows.push_back(std::move(row));
    }
    snap.finished = snap.shards_running == 0 && snap.shards_pending == 0;
    snap.complete =
        snap.shards_ok == snap.shards_total && snap.shards_total > 0;
    if (!final_mode) {
      snap.elapsed_s =
          std::chrono::duration<double>(Clock::now() - campaign_start)
              .count();
      const int done = snap.shards_ok + snap.shards_quarantined;
      const int remaining = snap.shards_total - done;
      if (done > 0 && remaining > 0) {
        snap.eta_s = snap.elapsed_s * remaining / done;
      }
    }
    if (remote_ != nullptr) {
      snap.remote = true;
      snap.remote_stats = remote_->remote_stats();
      snap.remote_endpoints = remote_->remote_endpoints();
    }
    return snap;
  };
  const auto write_status = [&](bool final_mode) {
    if (!telemetry_on) return;
    CampaignObsSnapshot snap = build_snapshot(final_mode);
    if (final_mode) {
      snap.rollup_json = out.rollup_json;
      snap.rollup_digest = out.rollup_digest;
    }
    const common::Status s = common::atomic_write_file(
        status_path, render_campaign_status(snap, final_mode) + "\n");
    if (!s.ok()) {
      sink_.warning("campaign.status_write_failed", 0, s.to_string());
    }
  };
  Clock::time_point next_tail_poll = Clock::now();
  Clock::time_point next_status = Clock::now();

  const auto count_pending = [&] {
    return std::count_if(shards.begin(), shards.end(), [](const ShardState& s) {
      return s.status == ShardStatus::kPending;
    });
  };

  // A failed attempt either requeues with exponential backoff or, once
  // the budget is spent (or the failure is deterministic), quarantines.
  // Either way the campaign keeps draining the other shards.
  const auto settle_failure = [&](std::size_t idx, const std::string& outcome,
                                  const std::string& detail,
                                  bool retryable) {
    ShardState& st = shards[idx];
    st.history.push_back(ShardAttempt{st.attempts, outcome, detail});
    if (retryable && st.attempts < options_.max_attempts) {
      st.status = ShardStatus::kPending;
      const double ms = retry_backoff_ms(options_, st.spec, st.attempts);
      ready_at[idx] =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(ms));
      ++out.retries;
      OBS_COUNT("campaign.shards_retried", 1);
      OBS_COUNT("campaign.retry_backoff_ms", static_cast<std::int64_t>(ms));
      sink_.note("campaign.shard_retry", 0,
                 st.spec.id() + " attempt " + std::to_string(st.attempts) +
                     " " + outcome + " (" + detail + "); retrying in " +
                     std::to_string(static_cast<int>(ms)) + "ms");
    } else {
      st.status = ShardStatus::kQuarantined;
      OBS_COUNT("campaign.shards_quarantined", 1);
      sink_.warning("campaign.shard_quarantined", 0,
                    st.spec.id() + " quarantined after " +
                        std::to_string(st.attempts) + " attempt(s); last: " +
                        outcome + " (" + detail + ")");
    }
    persist_state(shards);
  };

  const auto settle_outcome = [&](std::size_t idx,
                                  const ExecutionOutcome& eo) {
    ShardState& st = shards[idx];
    if (eo.ok) {
      // The execution says it finished; believe the CRCs, not the
      // claim. A corrupt result is a retry like any other failure.
      auto digest =
          validator_(st.spec, shard_dir(options_.campaign_dir, st.spec));
      if (!digest.ok()) {
        settle_failure(idx, "corrupt_output", digest.status().to_string(),
                       /*retryable=*/true);
        return;
      }
      st.status = ShardStatus::kOk;
      st.digest = *digest;
      st.degraded = eo.degraded;
      OBS_COUNT("campaign.shards_ok", 1);
      persist_state(shards);
      // The supervisor's own crash point for kill-storm tests: one
      // "artifact commit" per completed shard. (Corrupt is meaningless
      // here — campaign.json is already re-derived on resume.)
      if (common::fault::on_artifact_commit() ==
          common::fault::Action::kCrashAfter) {
        common::fault::crash_now();
      }
      return;
    }
    settle_failure(idx, eo.outcome, eo.detail, eo.retryable);
  };

  while (true) {
    if (cancel && cancel->cancelled()) {
      // Cooperative stop: take the workers down, put their shards back,
      // and leave a resumable state table. A cancelled attempt is not a
      // failure, so it does not burn retry budget.
      for (Running& r : running) {
        r.exec->terminate(/*graceful=*/true);
      }
      for (Running& r : running) {
        if (!r.exec->wait_for(2.0)) {
          r.exec->terminate(/*graceful=*/false);
          r.exec->wait();
        }
        shards[r.idx].status = ShardStatus::kPending;
        --shards[r.idx].attempts;
      }
      running.clear();
      persist_state(shards);
      out.cancelled = true;
      break;
    }

    // Final telemetry drain for a worker that is leaving the running
    // set: a short-lived worker can die between throttled tail polls,
    // and its phase/progress at death must still reach the shard state
    // (the report embeds it for quarantined shards).
    const auto drain_tail = [&](Running& r) {
      if (!telemetry_on || !r.exec->telemetry_capable()) return;
      std::vector<common::obs::TelemetryRecord> fresh;
      r.tail.poll(fresh);
      if (!fresh.empty()) {
        shards[r.idx].last_telemetry = fresh.back();
        shards[r.idx].has_telemetry = true;
      }
    };

    // Reap finished workers and enforce per-attempt timeouts.
    for (std::size_t i = 0; i < running.size();) {
      Running& r = running[i];
      if (r.exec->poll()) {
        drain_tail(r);
        settle_outcome(r.idx, r.exec->outcome());
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      if (Clock::now() >= r.deadline) {
        r.exec->terminate(/*graceful=*/false);
        r.exec->wait();
        drain_tail(r);
        settle_failure(r.idx, "timeout",
                       "exceeded " +
                           std::to_string(options_.shard_timeout_s) +
                           "s wall clock; SIGKILLed",
                       /*retryable=*/true);
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      ++i;
    }

    // Telemetry: tail worker heartbeats, advance the stall detector,
    // refresh the live status document. Tail polls are throttled —
    // re-reading every file each 5ms scheduler tick would be all
    // syscalls — and the stall detector distinguishes hung from slow:
    // a hung worker's heartbeat thread keeps appending records, but the
    // progress counter sum inside them freezes (see telemetry.hpp).
    if (telemetry_on && Clock::now() >= next_tail_poll) {
      next_tail_poll = Clock::now() + std::chrono::milliseconds(50);
      for (std::size_t i = 0; i < running.size();) {
        Running& r = running[i];
        if (!r.exec->telemetry_capable()) {
          // Remote dispatches produce no worker telemetry; their health
          // is the retry/breaker layer's job, not the stall detector's.
          ++i;
          continue;
        }
        ShardState& st = shards[r.idx];
        std::vector<common::obs::TelemetryRecord> fresh;
        r.tail.poll(fresh);
        for (const common::obs::TelemetryRecord& rec : fresh) {
          // Advance = a changed progress sum or a new process (each
          // attempt appends to the same file with a fresh pid and
          // counters restarting at zero).
          if (!st.has_telemetry ||
              rec.progress != st.last_telemetry.progress ||
              rec.pid != st.last_telemetry.pid) {
            r.last_progress = Clock::now();
          }
          st.last_telemetry = rec;
          st.has_telemetry = true;
        }
        const double idle_s =
            std::chrono::duration<double>(Clock::now() - r.last_progress)
                .count();
        if (idle_s > stall_after_s) {
          if (!r.stalled) {
            r.stalled = true;
            sink_.warning(
                "campaign.shard_stalled", 0,
                st.spec.id() + ": no telemetry progress for " +
                    std::to_string(static_cast<int>(idle_s)) + "s (phase " +
                    (st.has_telemetry ? st.last_telemetry.phase
                                      : std::string("unknown")) +
                    ", " + std::to_string(static_cast<int>(stall_after_s)) +
                    "s threshold)");
            if (!st.stalled) {
              st.stalled = true;
              OBS_COUNT("campaign.shards_stalled", 1);
              persist_state(shards);
            }
          }
          if (options_.stall_kill) {
            r.exec->terminate(/*graceful=*/false);
            r.exec->wait();
            settle_failure(r.idx, "stalled",
                           "no telemetry progress for " +
                               std::to_string(static_cast<int>(idle_s)) +
                               "s; SIGKILLed before the " +
                               std::to_string(
                                   static_cast<int>(options_.shard_timeout_s)) +
                               "s timeout",
                           /*retryable=*/true);
            running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
            continue;
          }
        } else if (r.stalled) {
          // Progress resumed: the worker was slow, not hung. The shard
          // keeps its ever-stalled mark for the outcome report.
          r.stalled = false;
          sink_.note("campaign.shard_recovered", 0,
                     st.spec.id() + ": telemetry progress resumed");
        }
        ++i;
      }
    }
    if (telemetry_on && Clock::now() >= next_status) {
      next_status =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 options_.status_interval_s));
      write_status(/*final_mode=*/false);
    }

    // Fill free worker slots with shards whose backoff has elapsed.
    for (std::size_t idx = 0;
         idx < shards.size() &&
         running.size() < static_cast<std::size_t>(options_.max_workers);
         ++idx) {
      ShardState& st = shards[idx];
      if (st.status != ShardStatus::kPending) continue;
      if (Clock::now() < ready_at[idx]) continue;
      const std::string dir = shard_dir(options_.campaign_dir, st.spec);
      std::filesystem::create_directories(dir, ec);
      ++st.attempts;
      auto exec = launch(st.spec, dir, st.attempts);
      if (!exec.ok()) {
        settle_failure(idx, "spawn_failed", exec.status().to_string(),
                       /*retryable=*/false);
        continue;
      }
      st.status = ShardStatus::kRunning;
      persist_state(shards);
      running.push_back(
          Running{idx, std::move(*exec),
                  Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         options_.shard_timeout_s)),
                  common::obs::TelemetryTail(dir + "/telemetry.jsonl"),
                  Clock::now(), /*stalled=*/false});
    }

    if (running.empty() && count_pending() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Merge: per-layer digests in fold order, campaign digest in layer
  // order. Only fully-ok layers get a digest; the campaign digest only
  // exists when everything validated (a partial digest would invite
  // comparing incomparable runs).
  for (const ShardState& st : shards) {
    if (st.status == ShardStatus::kOk) ++out.shards_ok;
    if (st.status == ShardStatus::kQuarantined) ++out.shards_quarantined;
  }
  out.complete =
      out.shards_ok == static_cast<int>(shards.size()) && !out.cancelled;
  for (int layer : options_.layers) {
    std::vector<std::uint64_t> folds;
    bool all_ok = true;
    for (const ShardState& st : shards) {
      if (st.spec.layer != layer) continue;
      if (st.status != ShardStatus::kOk) {
        all_ok = false;
        break;
      }
      folds.push_back(st.digest);
    }
    if (all_ok) out.layer_digests[layer] = combine_digests(folds);
  }
  if (out.complete) {
    std::vector<std::uint64_t> per_layer;
    for (const auto& [layer, digest] : out.layer_digests) {
      per_layer.push_back(digest);
    }
    out.campaign_digest = combine_digests(per_layer);
  }

  for (const ShardState& st : shards) {
    if (st.stalled) out.stalled_shards.push_back(st.spec.id());
  }
  // Roll up the ok shards' metrics and seal the final status document.
  // Both are deterministic across worker/thread counts: the roll-up is
  // a commutative sum of thread-count-invariant registries, and the
  // final rendering omits every volatile field (campaign_obs.hpp).
  if (telemetry_on && out.complete) {
    std::vector<std::string> paths;
    paths.reserve(shards.size());
    for (const ShardState& st : shards) {
      paths.push_back(shard_dir(options_.campaign_dir, st.spec) +
                      "/metrics.json");
    }
    auto rollup = rollup_shard_metrics(paths);
    if (rollup.ok()) {
      out.rollup_json = rollup->json;
      out.rollup_digest = rollup->digest;
    } else {
      sink_.warning("campaign.rollup_failed", 0,
                    rollup.status().to_string());
    }
  }
  if (remote_ != nullptr) {
    out.remote = true;
    out.remote_stats = remote_->remote_stats();
    out.remote_endpoints = remote_->remote_endpoints();
  }
  write_status(/*final_mode=*/true);
  return out;
}

void CampaignSupervisor::persist_state(const std::vector<ShardState>& shards) {
  std::vector<std::string> rows;
  rows.reserve(shards.size());
  for (const ShardState& st : shards) {
    std::vector<std::string> hist;
    hist.reserve(st.history.size());
    for (const ShardAttempt& a : st.history) {
      hist.push_back(common::JsonObject()
                         .field("attempt", a.attempt)
                         .field("outcome", a.outcome)
                         .field("detail", a.detail)
                         .str());
    }
    common::JsonObject row;
    row.field("id", st.spec.id())
        .field("layer", st.spec.layer)
        .field("fold", static_cast<long>(st.spec.fold))
        .field("status", to_string(st.status))
        .field("attempts", st.attempts)
        .field("degraded", st.degraded);
    if (st.status == ShardStatus::kOk) row.field("digest", hex64(st.digest));
    if (st.stalled) row.field("stalled", true);
    if (st.has_telemetry) {
      // The shard's phase/progress as last seen — for quarantined
      // shards this is the state at death, surfaced in the report.
      row.field_raw("last_telemetry",
                    common::JsonObject()
                        .field("phase", st.last_telemetry.phase)
                        .field("progress", static_cast<unsigned long>(
                                               st.last_telemetry.progress))
                        .field("targets_done",
                               static_cast<unsigned long>(
                                   st.last_telemetry.targets_done))
                        .field("pairs_scored",
                               static_cast<unsigned long>(
                                   st.last_telemetry.pairs_scored))
                        .field("rss_peak_mb",
                               static_cast<long>(
                                   st.last_telemetry.rss_peak_mb))
                        .str());
    }
    row.field_raw("history", common::json_array(hist));
    rows.push_back(row.str());
  }
  common::JsonObject top;
  top.field("format_version", 1)
      .field_raw("shards", common::json_array(rows));
  if (remote_ != nullptr) {
    // Fleet-health counters ride in the state table so obs_report (and
    // any file-only observer) sees them without supervisor cooperation.
    const RemoteDispatchStats rs = remote_->remote_stats();
    std::vector<std::string> eps;
    for (const RemoteEndpointObs& ep : remote_->remote_endpoints()) {
      eps.push_back(common::JsonObject()
                        .field("endpoint", ep.label)
                        .field("state", ep.state)
                        .field("requests",
                               static_cast<unsigned long>(ep.requests))
                        .field("failures",
                               static_cast<unsigned long>(ep.failures))
                        .str());
    }
    top.field_raw("remote",
                  common::JsonObject()
                      .field("requests",
                             static_cast<unsigned long>(rs.requests))
                      .field("retries",
                             static_cast<unsigned long>(rs.retries))
                      .field("failovers",
                             static_cast<unsigned long>(rs.failovers))
                      .field("breaker_trips",
                             static_cast<unsigned long>(rs.breaker_trips))
                      .field("local_fallbacks",
                             static_cast<unsigned long>(rs.local_fallbacks))
                      .field("remote_ok",
                             static_cast<unsigned long>(rs.remote_ok))
                      .field_raw("endpoints", common::json_array(eps))
                      .str());
  }
  const std::string json = top.str();
  const common::Status s = common::atomic_write_file(
      state_path(options_.campaign_dir), json + "\n");
  if (!s.ok()) {
    sink_.warning("campaign.state_write_failed", 0, s.to_string());
  }
}

void CampaignSupervisor::load_state(std::vector<ShardState>& shards) {
  auto text = common::read_file(state_path(options_.campaign_dir));
  if (!text.ok()) return;  // no prior state: every shard starts pending
  auto doc = common::parse_json(*text);
  if (!doc.ok() || !doc->is_object()) {
    sink_.warning("campaign.corrupt_state", 0,
                  "campaign.json is unparseable; restarting every shard");
    return;
  }
  const common::JsonValue* arr = doc->find("shards");
  if (!arr || !arr->is_array()) return;
  for (const common::JsonValue& row : arr->items) {
    const std::string id = row.get_string("id");
    auto it = std::find_if(
        shards.begin(), shards.end(),
        [&](const ShardState& s) { return s.spec.id() == id; });
    if (it == shards.end()) continue;  // layer/fold set changed: ignore
    it->status = status_from_string(row.get_string("status"));
    it->attempts = static_cast<int>(row.get_i64("attempts", 0));
    it->degraded = row.get_bool("degraded", false);
    it->digest = row.get_u64("digest", 0);
    it->stalled = row.get_bool("stalled", false);
    if (const common::JsonValue* lt = row.find("last_telemetry");
        lt != nullptr && lt->is_object()) {
      it->has_telemetry = true;
      it->last_telemetry.phase = lt->get_string("phase");
      it->last_telemetry.progress = lt->get_u64("progress", 0);
      it->last_telemetry.targets_done = lt->get_u64("targets_done", 0);
      it->last_telemetry.pairs_scored = lt->get_u64("pairs_scored", 0);
      it->last_telemetry.rss_peak_mb = lt->get_i64("rss_peak_mb", 0);
    }
    const common::JsonValue* hist = row.find("history");
    if (hist && hist->is_array()) {
      for (const common::JsonValue& h : hist->items) {
        it->history.push_back(
            ShardAttempt{static_cast<int>(h.get_i64("attempt", 0)),
                         h.get_string("outcome"), h.get_string("detail")});
      }
    }
  }
}

}  // namespace repro::core

#include "core/campaign_remote.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/cancel.hpp"
#include "common/checkpoint.hpp"
#include "common/diagnostics.hpp"
#include "common/json_writer.hpp"
#include "common/parallel.hpp"
#include "common/subprocess.hpp"
#include "core/cross_validation.hpp"

namespace repro::core {

using common::Status;
using common::StatusOr;

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker() : opt_(Options()) {}

bool CircuitBreaker::allow(double now_ms) {
  if (state_ == BreakerState::kClosed) return true;
  if (now_ms - opened_at_ms_ < opt_.cooldown_ms) return false;
  // Cooldown elapsed: half-open, one probe at a time.
  state_ = BreakerState::kHalfOpen;
  if (probe_inflight_) return false;
  probe_inflight_ = true;
  return true;
}

void CircuitBreaker::record_success() {
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  probe_inflight_ = false;
}

void CircuitBreaker::record_failure(double now_ms) {
  probe_inflight_ = false;
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen ||
      (state_ == BreakerState::kClosed &&
       consecutive_failures_ >= opt_.failure_threshold)) {
    state_ = BreakerState::kOpen;
    opened_at_ms_ = now_ms;
    ++trips_;
  }
}

BreakerState CircuitBreaker::state(double now_ms) const {
  if (state_ == BreakerState::kClosed) return BreakerState::kClosed;
  if (now_ms - opened_at_ms_ >= opt_.cooldown_ms ||
      state_ == BreakerState::kHalfOpen) {
    return BreakerState::kHalfOpen;
  }
  return BreakerState::kOpen;
}

StatusOr<std::vector<common::http::Endpoint>> parse_endpoint_list(
    const std::string& text) {
  std::vector<common::http::Endpoint> eps;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string piece = text.substr(start, comma - start);
    if (!piece.empty()) {
      auto ep = common::http::parse_endpoint(piece);
      if (!ep.ok()) return ep.status();
      eps.push_back(*ep);
    }
    start = comma + 1;
  }
  if (eps.empty()) {
    return Status::InvalidArgument("no endpoints in \"" + text + "\"");
  }
  return eps;
}

// ---------------------------------------------------------------------------
// RemoteShardExecution

/// One shard attempt dispatched over HTTP on a background thread, with
/// local-subprocess fallback when the fleet cannot serve it. See the
/// header comment of campaign_remote.hpp for the full lifecycle.
class RemoteShardExecution final : public ShardExecution {
 public:
  RemoteShardExecution(RemoteDispatcher* disp, ShardSpec spec,
                       std::string shard_dir, int attempt)
      : disp_(disp),
        spec_(std::move(spec)),
        dir_(std::move(shard_dir)),
        attempt_(attempt),
        thread_([this] { run(); }) {}

  ~RemoteShardExecution() override {
    abort_.request_cancel();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (local_ != nullptr) local_->terminate(false);
    }
    if (thread_.joinable()) thread_.join();
  }

  bool poll() override { return done_.load(std::memory_order_acquire); }

  void terminate(bool graceful) override {
    abort_.request_cancel();
    std::lock_guard<std::mutex> lock(mutex_);
    if (local_ != nullptr) local_->terminate(graceful);
  }

  bool wait_for(double seconds) override {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    while (!done_.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
  }

  void wait() override {
    if (thread_.joinable()) thread_.join();
  }

  ExecutionOutcome outcome() override {
    std::lock_guard<std::mutex> lock(mutex_);
    return outcome_;
  }

  bool telemetry_capable() const override { return false; }

 private:
  void run() {
    ExecutionOutcome eo = run_remote();
    if (!eo.ok && eo.outcome == "remote_failed" && !abort_.cancelled() &&
        disp_->options().allow_local_fallback) {
      disp_->count_local_fallback();
      eo = run_local(eo.detail);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      outcome_ = std::move(eo);
    }
    done_.store(true, std::memory_order_release);
  }

  /// Walks breaker-admitted endpoints until one serves the shard.
  ExecutionOutcome run_remote() {
    const RemoteCampaignOptions& opt = disp_->options();
    std::vector<char> tried(opt.endpoints.size(), 0);
    std::string errors;
    bool first = true;
    for (;;) {
      if (abort_.cancelled()) {
        ExecutionOutcome eo;
        eo.ok = false;
        eo.outcome = "interrupted";
        eo.detail = "remote dispatch cancelled";
        eo.retryable = true;
        return eo;
      }
      const int idx = disp_->acquire(tried);
      if (idx < 0) break;
      if (!first) disp_->count_failover();
      first = false;
      std::string detail;
      if (try_endpoint(idx, &detail)) {
        disp_->count_remote_ok();
        ExecutionOutcome eo;
        eo.ok = true;
        return eo;
      }
      tried[static_cast<std::size_t>(idx)] = 1;
      if (!errors.empty()) errors += "; ";
      errors += opt.endpoints[static_cast<std::size_t>(idx)].label() + ": " +
                detail;
    }
    ExecutionOutcome eo;
    eo.ok = false;
    eo.outcome = "remote_failed";
    eo.detail = errors.empty()
                    ? "no endpoint admitted the request (breakers open)"
                    : errors;
    eo.retryable = true;
    return eo;
  }

  /// One /shard round trip (with per-endpoint retries) plus artifact
  /// installation. The dispatcher is told exactly once how it went.
  bool try_endpoint(int idx, std::string* detail) {
    const RemoteCampaignOptions& opt = disp_->options();
    const common::http::Endpoint& ep =
        opt.endpoints[static_cast<std::size_t>(idx)];

    common::http::RetryPolicy policy;
    policy.max_attempts = opt.request_attempts;
    policy.backoff_base_ms = opt.backoff_base_ms;
    policy.backoff_max_ms = opt.backoff_max_ms;
    policy.request_deadline_s = opt.request_deadline_s;
    policy.skip_sleep = opt.skip_sleep;
    // Per-(shard, supervisor attempt, endpoint) jitter stream: shards
    // retrying against the same endpoint never wake in lockstep, and
    // every schedule is reproducible from the campaign seed.
    policy.jitter_seed = common::derive_seed(
        common::derive_seed(opt.jitter_seed, common::fnv1a64(spec_.id())),
        (static_cast<std::uint64_t>(attempt_) << 8) ^
            static_cast<std::uint64_t>(idx));

    const std::string body = common::JsonObject()
                                 .field("layer", spec_.layer)
                                 .field("fold", static_cast<long>(spec_.fold))
                                 .field("config", opt.config_name)
                                 .str();
    common::http::FetchStats fs;
    auto resp = common::http::fetch_with_retry(ep, "POST", "/shard", body,
                                               policy, &fs, &abort_);
    const bool served = resp.ok() && resp->status == 200;
    disp_->report(idx, served, fs);
    if (!resp.ok()) {
      *detail = resp.status().message();
      return false;
    }
    if (resp->status != 200) {
      *detail = "HTTP " + std::to_string(resp->status);
      if (!resp->body.empty() && resp->body.size() < 200) {
        *detail += " (" + resp->body + ")";
      }
      return false;
    }

    // The payload is the exact result-artifact byte string a local
    // worker would have written; record it under the server's run key
    // so the supervisor's validator reads it through the same
    // manifest-CRC + envelope-CRC + decode path. The checkpoint closes
    // (releasing the shard flock) before this attempt reports done.
    std::uint64_t run_key = 0;
    if (const std::string* rk = resp->header("x-run-key")) {
      run_key = std::strtoull(rk->c_str(), nullptr, 16);
    }
    auto ckpt = common::CheckpointManager::open(dir_, run_key, sink_);
    if (!ckpt.ok()) {
      *detail = "shard checkpoint: " + ckpt.status().message();
      return false;
    }
    Status wrote = ckpt->write(ChallengeSuite::fold_result_name(spec_.fold),
                               resp->body);
    if (!wrote.ok()) {
      *detail = "artifact write: " + wrote.message();
      return false;
    }
    return true;
  }

  /// Graceful degradation: the fleet is down, run the shard as a local
  /// worker subprocess under the supervisor's usual environment policy.
  ExecutionOutcome run_local(const std::string& remote_detail) {
    auto spawn_opt =
        prepare_worker_spawn(disp_->local_command_, spec_, dir_, attempt_);
    auto proc = common::Subprocess::spawn(spawn_opt);
    if (!proc.ok()) {
      ExecutionOutcome eo;
      eo.ok = false;
      eo.outcome = "spawn_failed";
      eo.detail = "local fallback: " + proc.status().message();
      eo.retryable = false;
      return eo;
    }
    std::unique_ptr<ShardExecution> local =
        make_local_execution(std::move(*proc));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      local_ = local.get();
    }
    bool term_sent = false;
    while (!local->poll()) {
      if (abort_.cancelled() && !term_sent) {
        local->terminate(false);
        term_sent = true;
      }
      local->wait_for(0.02);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      local_ = nullptr;
    }
    ExecutionOutcome eo = local->outcome();
    if (!eo.ok && !remote_detail.empty()) {
      eo.detail += " (after remote: " + remote_detail + ")";
    }
    return eo;
  }

  RemoteDispatcher* const disp_;
  const ShardSpec spec_;
  const std::string dir_;
  const int attempt_;
  common::CancelToken abort_;
  common::DiagnosticSink sink_;
  std::atomic<bool> done_{false};
  mutable std::mutex mutex_;         ///< guards outcome_ and local_
  ExecutionOutcome outcome_;
  ShardExecution* local_ = nullptr;  ///< live local-fallback attempt
  std::thread thread_;               ///< last member: starts after the rest
};

// ---------------------------------------------------------------------------
// RemoteDispatcher

RemoteDispatcher::RemoteDispatcher(RemoteCampaignOptions options,
                                   WorkerCommand local_command)
    : options_(std::move(options)), local_command_(std::move(local_command)) {
  endpoints_.reserve(options_.endpoints.size());
  for (const auto& ep : options_.endpoints) {
    EndpointState st;
    st.ep = ep;
    st.breaker = CircuitBreaker(options_.breaker);
    endpoints_.push_back(std::move(st));
  }
}

ShardLauncher RemoteDispatcher::launcher() {
  return [this](const ShardSpec& spec, const std::string& shard_dir,
                int attempt) -> StatusOr<std::unique_ptr<ShardExecution>> {
    return std::unique_ptr<ShardExecution>(
        new RemoteShardExecution(this, spec, shard_dir, attempt));
  };
}

int RemoteDispatcher::acquire(const std::vector<char>& tried) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double now = now_ms();
  const std::size_t n = endpoints_.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = (cursor_ + step) % n;
    if (tried[i] != 0) continue;
    if (!endpoints_[i].breaker.allow(now)) continue;
    cursor_ = (i + 1) % n;
    return static_cast<int>(i);
  }
  return -1;
}

void RemoteDispatcher::report(int index, bool success,
                              const common::http::FetchStats& fs) {
  std::lock_guard<std::mutex> lock(mutex_);
  EndpointState& st = endpoints_[static_cast<std::size_t>(index)];
  st.requests += static_cast<std::uint64_t>(fs.attempts);
  stats_.requests += static_cast<std::uint64_t>(fs.attempts);
  stats_.retries += static_cast<std::uint64_t>(fs.retries);
  if (success) {
    st.breaker.record_success();
  } else {
    st.failures += 1;
    st.breaker.record_failure(now_ms());
  }
}

void RemoteDispatcher::count_failover() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.failovers += 1;
}

void RemoteDispatcher::count_local_fallback() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.local_fallbacks += 1;
}

void RemoteDispatcher::count_remote_ok() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.remote_ok += 1;
}

double RemoteDispatcher::now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RemoteDispatchStats RemoteDispatcher::remote_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RemoteDispatchStats out = stats_;
  out.breaker_trips = 0;
  for (const auto& st : endpoints_) out.breaker_trips += st.breaker.trips();
  return out;
}

std::vector<RemoteEndpointObs> RemoteDispatcher::remote_endpoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const double now = now_ms();
  std::vector<RemoteEndpointObs> out;
  out.reserve(endpoints_.size());
  for (const auto& st : endpoints_) {
    RemoteEndpointObs row;
    row.label = st.ep.label();
    row.state = to_string(st.breaker.state(now));
    row.requests = st.requests;
    row.failures = st.failures;
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace repro::core

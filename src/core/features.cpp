#include "core/features.hpp"

#include <cmath>
#include <stdexcept>

namespace repro::core {

std::vector<int> feature_indices(FeatureSet fs) {
  switch (fs) {
    case FeatureSet::kF7:
      return {kDiffPinX,  kDiffPinY,      kManhattanPin, kDiffVpinX,
              kDiffVpinY, kManhattanVpin, kDiffArea};
    case FeatureSet::kF9:
      return {kDiffPinX,        kDiffPinY,  kManhattanPin,
              kDiffVpinX,       kDiffVpinY, kManhattanVpin,
              kTotalWirelength, kTotalArea, kDiffArea};
    case FeatureSet::kF11: {
      std::vector<int> all;
      for (int i = 0; i < kNumFeatures; ++i) all.push_back(i);
      return all;
    }
  }
  throw std::invalid_argument("bad FeatureSet");
}

const std::array<std::string, kNumFeatures>& feature_names() {
  static const std::array<std::string, kNumFeatures> names = {
      "DiffPinX",         "DiffPinY",     "ManhattanPin",
      "DiffVpinX",        "DiffVpinY",    "ManhattanVpin",
      "TotalWirelength",  "TotalArea",    "DiffArea",
      "PlacementCongestion", "RoutingCongestion"};
  return names;
}

std::array<double, kNumFeatures> pair_features(const splitmfg::Vpin& v1,
                                               const splitmfg::Vpin& v2,
                                               double distance_scale) {
  const double s = distance_scale;
  std::array<double, kNumFeatures> f{};
  f[kDiffPinX] =
      s * std::abs(static_cast<double>(v1.pin_loc.x - v2.pin_loc.x));
  f[kDiffPinY] =
      s * std::abs(static_cast<double>(v1.pin_loc.y - v2.pin_loc.y));
  f[kManhattanPin] = f[kDiffPinX] + f[kDiffPinY];
  f[kDiffVpinX] = s * std::abs(static_cast<double>(v1.pos.x - v2.pos.x));
  f[kDiffVpinY] = s * std::abs(static_cast<double>(v1.pos.y - v2.pos.y));
  f[kManhattanVpin] = f[kDiffVpinX] + f[kDiffVpinY];
  f[kTotalWirelength] = s * (v1.wirelength + v2.wirelength);
  f[kTotalArea] = v1.in_area + v2.in_area + v1.out_area + v2.out_area;
  f[kDiffArea] = (v1.out_area + v2.out_area) - (v1.in_area + v2.in_area);
  f[kPlacementCongestion] = v1.pc + v2.pc;
  f[kRoutingCongestion] = v1.rc + v2.rc;
  return f;
}

std::vector<double> project(const std::array<double, kNumFeatures>& full,
                            const std::vector<int>& indices) {
  std::vector<double> out;
  out.reserve(indices.size());
  for (int i : indices) out.push_back(full[static_cast<std::size_t>(i)]);
  return out;
}

}  // namespace repro::core

#include "core/obfuscation.hpp"

#include <random>

namespace repro::core {

splitmfg::SplitChallenge add_y_noise(const splitmfg::SplitChallenge& ch,
                                     double sd_fraction, std::uint64_t seed) {
  splitmfg::SplitChallenge out = ch;
  std::mt19937_64 rng(seed);
  const double sd = sd_fraction * static_cast<double>(ch.die.height());
  if (sd <= 0) return out;
  std::normal_distribution<double> noise(0.0, sd);
  for (splitmfg::Vpin& v : out.vpins) {
    const auto ny = static_cast<geom::Dbu>(
        static_cast<double>(v.pos.y) + noise(rng));
    v.pos.y = geom::clamp(ny, ch.die.lo.y, ch.die.hi.y);
  }
  return out;
}

}  // namespace repro::core

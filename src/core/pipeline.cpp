#include "core/pipeline.hpp"

namespace repro::core {

std::vector<splitmfg::SplitChallenge> build_challenges(
    std::span<const synth::SynthDesign> designs, int split_layer,
    const splitmfg::SplitOptions& opt) {
  std::vector<splitmfg::SplitChallenge> out;
  out.reserve(designs.size());
  for (const synth::SynthDesign& d : designs) {
    out.push_back(
        splitmfg::make_challenge(*d.netlist, d.routes, split_layer, opt));
  }
  return out;
}

ChallengeSuite make_suite(std::span<const synth::SynthDesign> designs,
                          int split_layer,
                          const splitmfg::SplitOptions& opt) {
  return ChallengeSuite(build_challenges(designs, split_layer, opt));
}

}  // namespace repro::core

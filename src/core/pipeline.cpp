#include "core/pipeline.hpp"

#include <exception>
#include <fstream>
#include <utility>

#include "common/obs.hpp"

namespace repro::core {

std::vector<splitmfg::SplitChallenge> build_challenges(
    std::span<const synth::SynthDesign> designs, int split_layer,
    const splitmfg::SplitOptions& opt) {
  std::vector<splitmfg::SplitChallenge> out;
  out.reserve(designs.size());
  for (const synth::SynthDesign& d : designs) {
    out.push_back(
        splitmfg::make_challenge(*d.netlist, d.routes, split_layer, opt));
  }
  return out;
}

ChallengeSuite make_suite(std::span<const synth::SynthDesign> designs,
                          int split_layer,
                          const splitmfg::SplitOptions& opt) {
  return ChallengeSuite(build_challenges(designs, split_layer, opt));
}

common::StatusOr<splitmfg::SplitChallenge> load_challenge_from_def(
    const std::string& path, const lefdef::LefContents& lef,
    const std::shared_ptr<const netlist::Library>& lib,
    const DefLoadOptions& opt, common::DiagnosticSink& sink,
    splitmfg::ValidationReport* validation) {
  OBS_SPAN("ingest.design");
  sink.set_file(path);

  if (opt.split_layer < 1 || opt.split_layer > lef.tech.num_via_layers()) {
    sink.error("load.bad_split_layer", 0,
               "split layer " + std::to_string(opt.split_layer) +
                   " outside the technology's via stack [1, " +
                   std::to_string(lef.tech.num_via_layers()) + "]");
    return common::Status::InvalidArgument(
        "split layer outside the via stack");
  }

  std::ifstream in(path);
  if (!in) {
    sink.error("load.cannot_open", 0, "cannot open " + path);
    return common::Status::IoError("cannot open " + path);
  }

  common::StatusOr<lefdef::DefDesign> parsed = lefdef::read_def(in, lib, sink);
  if (!parsed.ok()) return parsed.status();
  lefdef::DefDesign def = std::move(parsed).value();

  if (opt.validate) {
    splitmfg::ValidationOptions vopt;
    vopt.num_metal_layers = lef.tech.num_metal_layers();
    vopt.num_via_layers = lef.tech.num_via_layers();
    vopt.gcell_size = lef.tech.gcell_size();
    vopt.split_layer = opt.split_layer;
    vopt.repair = opt.repair;
    const splitmfg::ValidationReport report =
        splitmfg::validate_design(def, vopt, sink);
    if (validation != nullptr) *validation = report;
    // Per-design validation taxonomy counts (fatal / repaired / ignored)
    // feed the run report's ingestion-health block.
    OBS_COUNT("validate.fatal_defects", report.fatal);
    OBS_COUNT("validate.repaired_defects", report.repaired);
    OBS_COUNT("validate.ignored_defects", report.ignored);
    if (!report.ok()) {
      return common::Status::FailedPrecondition("layout validation " +
                                                report.summary());
    }
  }

  // The cut itself runs on validated data, but a final guard keeps any
  // residual failure contained to this design.
  try {
    const route::RouteDB db = lefdef::to_route_db(def, lef.tech.gcell_size());
    return splitmfg::make_challenge(def.netlist, db, opt.split_layer,
                                    opt.split);
  } catch (const std::exception& e) {
    sink.error("load.challenge_failed", 0,
               std::string("challenge extraction failed: ") + e.what());
    return common::Status::Internal(e.what());
  }
}

DefBatch load_challenges_from_defs(const std::vector<std::string>& paths,
                                   const lefdef::LefContents& lef,
                                   const DefLoadOptions& opt,
                                   common::DiagnosticSink& sink) {
  OBS_SPAN("ingest.batch");
  DefBatch batch;
  const auto lib = std::make_shared<const netlist::Library>(lef.lib);
  for (const std::string& path : paths) {
    DefLoadOutcome outcome;
    outcome.path = path;
    common::StatusOr<splitmfg::SplitChallenge> ch =
        load_challenge_from_def(path, lef, lib, opt, sink,
                                &outcome.validation);
    if (ch.ok()) {
      outcome.loaded = true;
      outcome.challenge = std::move(ch).value();
      ++batch.num_loaded;
    } else {
      outcome.status = ch.status();
      ++batch.num_skipped;
    }
    batch.designs.push_back(std::move(outcome));
    if (opt.strict && batch.num_skipped > 0) break;
  }
  OBS_COUNT("ingest.designs_loaded", batch.num_loaded);
  OBS_COUNT("ingest.designs_skipped", batch.num_skipped);
  common::obs::record_diagnostics("ingest.diag", sink);
  return batch;
}

std::vector<splitmfg::SplitChallenge> DefBatch::take_loaded() {
  std::vector<splitmfg::SplitChallenge> out;
  out.reserve(static_cast<std::size_t>(num_loaded));
  for (DefLoadOutcome& d : designs) {
    if (d.loaded) out.push_back(std::move(d.challenge));
    d.loaded = false;
  }
  return out;
}

}  // namespace repro::core

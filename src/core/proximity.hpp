// Proximity attack (paper SSIII-H).
//
// PA matches each target v-pin with the *nearest* candidate in its PA-LoC
// (ties by higher probability, then deterministically by id). The PA-LoC is
// the top `fraction * n` candidates by probability. The PA-LoC fraction is
// chosen by a validation procedure: an 80/20 v-pin split of the N-1
// training designs; a model trained on the 80% side is used to run PA on
// the 20% side for a grid of fractions, and the fraction with the best
// average validation success rate is applied to the target design.
#pragma once

#include "core/attack.hpp"

namespace repro::core {

/// PA success rate on a tested design for a fixed PA-LoC fraction.
/// `result` must come from testing `challenge`.
double pa_success_rate(const AttackResult& result,
                       const splitmfg::SplitChallenge& challenge,
                       double fraction);

/// PA success rate with the fixed-threshold PA-LoC (p >= t), the procedure
/// of the authors' earlier work [18].
double pa_success_rate_at_threshold(const AttackResult& result,
                                    const splitmfg::SplitChallenge& challenge,
                                    double threshold = 0.5);

struct PAOptions {
  std::vector<double> fractions{0.0005, 0.001, 0.002, 0.005,
                                0.01,   0.02,  0.05};
  double train_fraction = 0.8;  ///< v-pins used for the validation model
  /// Cap on validation v-pins per training benchmark. The PA success rate
  /// is a mean of Bernoulli outcomes, so a few hundred held-out v-pins
  /// estimate it to within a couple of percent at a fraction of the cost
  /// of scoring the full 20% split on large layers.
  int max_validation_vpins = 500;
  std::uint64_t seed = 7;
};

struct PAOutcome {
  double success_rate = 0;   ///< on the target design, at best_fraction
  double best_fraction = 0;  ///< chosen by validation
  double validation_seconds = 0;
  /// (fraction, mean validation success) for every candidate fraction.
  std::vector<std::pair<double, double>> validation_curve;
};

/// The full validation-based PA. `target_result` must be the result of
/// testing the target design with a model of the same `config` (it provides
/// the top-K candidate lists the final PA runs on).
PAOutcome validated_proximity_attack(
    const AttackResult& target_result,
    const splitmfg::SplitChallenge& target,
    std::span<const splitmfg::SplitChallenge* const> training,
    const AttackConfig& config, const PAOptions& opt = {});

}  // namespace repro::core

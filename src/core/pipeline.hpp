// End-to-end pipeline helpers: synthetic suite -> split challenges, and the
// hardened file-ingestion path: DEF files -> validated split challenges
// with per-design failure isolation.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/diagnostics.hpp"
#include "common/status.hpp"
#include "core/cross_validation.hpp"
#include "lefdef/lefdef.hpp"
#include "splitmfg/split.hpp"
#include "splitmfg/validate.hpp"
#include "synth/synth.hpp"

namespace repro::core {

/// Cuts every design of a generated suite at `split_layer`.
std::vector<splitmfg::SplitChallenge> build_challenges(
    std::span<const synth::SynthDesign> designs, int split_layer,
    const splitmfg::SplitOptions& opt = {});

/// Convenience: generate the five-preset suite and cut it.
ChallengeSuite make_suite(std::span<const synth::SynthDesign> designs,
                          int split_layer,
                          const splitmfg::SplitOptions& opt = {});

/// Options for loading DEF designs from disk.
struct DefLoadOptions {
  int split_layer = 8;
  bool strict = false;   ///< stop the batch at the first bad design
  bool validate = true;  ///< run the layout validator before the cut
  bool repair = true;    ///< let the validator auto-repair defects
  splitmfg::SplitOptions split;
};

/// Outcome of loading one DEF file.
struct DefLoadOutcome {
  std::string path;
  bool loaded = false;
  splitmfg::SplitChallenge challenge;     ///< valid iff `loaded`
  splitmfg::ValidationReport validation;  ///< empty when !opt.validate
  common::Status status;                  ///< why the design was skipped
};

/// Outcome of a batch load: per-design results plus totals.
struct DefBatch {
  std::vector<DefLoadOutcome> designs;
  int num_loaded = 0;
  int num_skipped = 0;

  /// Moves the successfully loaded challenges out, in input order.
  std::vector<splitmfg::SplitChallenge> take_loaded();
};

/// Loads one DEF file against an already-parsed LEF, validates it (per
/// `opt`), and cuts it at `opt.split_layer`. Never throws: parse errors,
/// validation failures, and I/O failures all come back as a failing Status
/// with the full story in `sink`.
common::StatusOr<splitmfg::SplitChallenge> load_challenge_from_def(
    const std::string& path, const lefdef::LefContents& lef,
    const std::shared_ptr<const netlist::Library>& lib,
    const DefLoadOptions& opt, common::DiagnosticSink& sink,
    splitmfg::ValidationReport* validation = nullptr);

/// Loads a batch of DEF files with per-design failure isolation: a corrupt
/// or invalid design is reported (diagnostics in `sink`, Status in its
/// DefLoadOutcome) and skipped while the rest of the batch proceeds. With
/// `opt.strict` the batch stops at the first failure instead, mirroring
/// the old fail-fast behaviour.
DefBatch load_challenges_from_defs(
    const std::vector<std::string>& paths, const lefdef::LefContents& lef,
    const DefLoadOptions& opt, common::DiagnosticSink& sink);

}  // namespace repro::core

// End-to-end pipeline helpers: synthetic suite -> split challenges.
#pragma once

#include <span>
#include <vector>

#include "core/cross_validation.hpp"
#include "splitmfg/split.hpp"
#include "synth/synth.hpp"

namespace repro::core {

/// Cuts every design of a generated suite at `split_layer`.
std::vector<splitmfg::SplitChallenge> build_challenges(
    std::span<const synth::SynthDesign> designs, int split_layer,
    const splitmfg::SplitOptions& opt = {});

/// Convenience: generate the five-preset suite and cut it.
ChallengeSuite make_suite(std::span<const synth::SynthDesign> designs,
                          int split_layer,
                          const splitmfg::SplitOptions& opt = {});

}  // namespace repro::core

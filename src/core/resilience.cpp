#include "core/resilience.hpp"

#include <cstring>
#include <utility>
#include <vector>

#include "common/binio.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "ml/serialize.hpp"

namespace repro::core {

using common::BinaryReader;
using common::BinaryWriter;
using common::Status;
using common::StatusOr;

namespace {

/// FNV-1a over the bytes of a BinaryWriter buffer (the serialized fields
/// are already fixed-width little-endian, so the hash is
/// platform-independent).
std::uint64_t fnv_over(const std::string& bytes) {
  return common::fnv1a64(std::string_view(bytes));
}

/// Serializes the result-affecting AttackConfig fields (everything but
/// the display name; timings do not live in the config). Shared by
/// attack_run_key and save_model so the two can never drift apart.
void put_config(BinaryWriter& w, const AttackConfig& c) {
  w.str(c.name);
  w.i32(static_cast<std::int32_t>(c.features));
  w.u8(c.improved ? 1 : 0);
  w.f64(c.neighborhood_percentile);
  w.u8(c.limit_top_direction ? 1 : 0);
  w.u8(c.top_metal_horizontal ? 1 : 0);
  w.u8(c.use_random_forest ? 1 : 0);
  w.u8(c.normalize_distances ? 1 : 0);
  w.i32(c.hist_bins);
  w.i32(c.top_k);
  w.i32(c.max_test_vpins);
  w.i32(c.max_train_samples);
  w.u8(c.use_candidate_index ? 1 : 0);
  w.i32(c.max_trees);
  w.u64(c.seed);
}

bool get_config(BinaryReader& r, AttackConfig& c) {
  std::int32_t features = 0;
  std::uint8_t improved = 0, limit_top = 0, top_horiz = 0, rf = 0, norm = 0,
               use_index = 0;
  r.str(c.name);
  r.i32(features);
  r.u8(improved);
  r.f64(c.neighborhood_percentile);
  r.u8(limit_top);
  r.u8(top_horiz);
  r.u8(rf);
  r.u8(norm);
  r.i32(c.hist_bins);
  r.i32(c.top_k);
  r.i32(c.max_test_vpins);
  r.i32(c.max_train_samples);
  r.u8(use_index);
  r.i32(c.max_trees);
  r.u64(c.seed);
  if (!r.ok()) return false;
  c.features = static_cast<FeatureSet>(features);
  c.improved = improved != 0;
  c.limit_top_direction = limit_top != 0;
  c.top_metal_horizontal = top_horiz != 0;
  c.use_random_forest = rf != 0;
  c.normalize_distances = norm != 0;
  c.use_candidate_index = use_index != 0;
  return true;
}

}  // namespace

std::uint64_t result_digest(const AttackResult& res) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  const auto mix_float = [&](float f) {
    std::uint32_t bits;
    static_assert(sizeof bits == sizeof f);
    std::memcpy(&bits, &f, sizeof bits);
    mix(bits);
  };
  mix(static_cast<std::uint64_t>(res.num_vpins()));
  for (const VpinResult& r : res.per_vpin()) {
    mix(static_cast<std::uint64_t>(r.num_evaluated));
    mix_float(r.p_true);
    mix_float(r.d_true);
    for (std::uint32_t c : r.hist) mix(c);
    for (const Candidate& c : r.top) {
      mix(static_cast<std::uint64_t>(c.id));
      mix_float(c.p);
      mix_float(c.d);
    }
  }
  return h;
}

std::uint64_t attack_run_key(
    std::span<const splitmfg::SplitChallenge> challenges,
    const AttackConfig& config) {
  BinaryWriter w;
  put_config(w, config);
  w.u64(challenges.size());
  for (const splitmfg::SplitChallenge& ch : challenges) {
    w.str(ch.design_name);
    w.i32(ch.split_layer);
    w.i32(ch.num_vpins());
  }
  return fnv_over(w.buffer());
}

std::string save_result(const AttackResult& res) {
  BinaryWriter w;
  w.str(res.design());
  w.i32(res.split_layer());
  w.i32(res.hist_bins());
  w.f64(res.train_seconds);
  w.f64(res.test_seconds);
  w.u64(res.per_vpin().size());
  for (const VpinResult& r : res.per_vpin()) {
    w.u8(r.tested ? 1 : 0);
    w.u8(r.has_match ? 1 : 0);
    w.f32(r.p_true);
    w.f32(r.d_true);
    w.i32(r.num_evaluated);
    w.u64(r.hist.size());
    for (std::uint32_t c : r.hist) w.u32(c);
    w.u64(r.top.size());
    for (const Candidate& c : r.top) {
      w.i32(c.id);
      w.f32(c.p);
      w.f32(c.d);
    }
  }
  return common::seal_artifact(kResultMagic, kResultVersion, w.take());
}

StatusOr<AttackResult> load_result(const std::string& raw) {
  StatusOr<std::string> payload =
      common::open_artifact(raw, kResultMagic, kResultVersion);
  if (!payload.ok()) return payload.status();

  BinaryReader r(*payload);
  std::string design;
  std::int32_t split_layer = 0, hist_bins = 0;
  double train_seconds = 0, test_seconds = 0;
  std::uint64_t num_vpins = 0;
  r.str(design);
  r.i32(split_layer);
  r.i32(hist_bins);
  r.f64(train_seconds);
  r.f64(test_seconds);
  r.u64(num_vpins);
  if (!r.ok() || hist_bins <= 0 || num_vpins > r.remaining()) {
    return Status::DataLoss("result artifact: malformed header");
  }

  AttackResult res(std::move(design), split_layer, hist_bins);
  auto& per_vpin = res.mutable_per_vpin();
  per_vpin.resize(num_vpins);
  for (VpinResult& v : per_vpin) {
    std::uint8_t tested = 0, has_match = 0;
    std::uint64_t hist_size = 0, top_size = 0;
    r.u8(tested);
    r.u8(has_match);
    r.f32(v.p_true);
    r.f32(v.d_true);
    r.i32(v.num_evaluated);
    r.u64(hist_size);
    if (!r.ok() ||
        hist_size != static_cast<std::uint64_t>(hist_bins)) {
      return Status::DataLoss("result artifact: bad histogram size");
    }
    v.tested = tested != 0;
    v.has_match = has_match != 0;
    v.hist.resize(hist_size);
    for (std::uint32_t& c : v.hist) r.u32(c);
    r.u64(top_size);
    if (!r.ok() || top_size > r.remaining()) {
      return Status::DataLoss("result artifact: bad candidate count");
    }
    v.top.resize(top_size);
    for (Candidate& c : v.top) {
      r.i32(c.id);
      r.f32(c.p);
      r.f32(c.d);
    }
  }
  if (!r.ok()) return r.status();
  if (r.remaining() != 0) {
    return Status::DataLoss("result artifact: trailing bytes after payload");
  }
  res.train_seconds = train_seconds;
  res.test_seconds = test_seconds;
  // finalize() derives the aggregate curves from per_vpin alone, so the
  // reloaded result answers every threshold query exactly as the
  // original did.
  res.finalize();
  return res;
}

std::string save_model(const TrainedModel& model) {
  BinaryWriter w;
  put_config(w, model.config);
  w.u64(model.feat_idx.size());
  for (int f : model.feat_idx) w.i32(f);
  w.u8(model.filter.neighborhood.has_value() ? 1 : 0);
  w.f64(model.filter.neighborhood.value_or(0.0));
  w.u8(model.filter.limit_top_direction ? 1 : 0);
  w.u8(model.filter.top_metal_horizontal ? 1 : 0);
  w.i32(model.num_train_samples);
  w.f64(model.train_seconds);
  w.f64(model.sample_seconds);
  w.f64(model.fit_seconds);
  w.str(ml::save_bagging(model.classifier));
  return common::seal_artifact(kModelMagic, kModelVersion, w.take());
}

StatusOr<TrainedModel> load_model(const std::string& raw) {
  StatusOr<std::string> payload =
      common::open_artifact(raw, kModelMagic, kModelVersion);
  if (!payload.ok()) return payload.status();

  BinaryReader r(*payload);
  TrainedModel model;
  if (!get_config(r, model.config)) {
    return Status::DataLoss("model artifact: malformed config");
  }
  std::uint64_t num_feat = 0;
  r.u64(num_feat);
  if (!r.ok() || num_feat > r.remaining()) {
    return Status::DataLoss("model artifact: implausible feature count");
  }
  model.feat_idx.resize(num_feat);
  for (int& f : model.feat_idx) r.i32(f);
  std::uint8_t has_nbhd = 0, limit_top = 0, top_horiz = 0;
  double nbhd = 0;
  r.u8(has_nbhd);
  r.f64(nbhd);
  r.u8(limit_top);
  r.u8(top_horiz);
  r.i32(model.num_train_samples);
  r.f64(model.train_seconds);
  r.f64(model.sample_seconds);
  r.f64(model.fit_seconds);
  std::string classifier_raw;
  r.str(classifier_raw);
  if (!r.ok()) return r.status();
  if (r.remaining() != 0) {
    return Status::DataLoss("model artifact: trailing bytes after payload");
  }
  if (has_nbhd) model.filter.neighborhood = nbhd;
  model.filter.limit_top_direction = limit_top != 0;
  model.filter.top_metal_horizontal = top_horiz != 0;
  StatusOr<ml::BaggingClassifier> clf = ml::load_bagging(classifier_raw);
  if (!clf.ok()) return clf.status();
  model.classifier = std::move(*clf);
  return model;
}

bool apply_degradation(AttackConfig& config, common::BudgetPressure pressure,
                       std::int64_t fold) {
  using common::BudgetPressure;
  if (pressure == BudgetPressure::kNone ||
      pressure == BudgetPressure::kExceeded) {
    return false;
  }
  bool changed = false;
  constexpr int kDegradedTrees = 5;
  constexpr int kDegradedTargets = 256;
  constexpr double kDegradedPercentile = 0.75;
  if (config.max_trees == 0 || config.max_trees > kDegradedTrees) {
    config.max_trees = kDegradedTrees;
    common::obs::record_degradation(
        "fewer_trees",
        "budget " + std::string(common::to_string(pressure)) +
            ": ensemble capped at " + std::to_string(kDegradedTrees) +
            " trees",
        fold);
    changed = true;
  }
  if (pressure >= BudgetPressure::kHard) {
    if (config.max_test_vpins == 0 ||
        config.max_test_vpins > kDegradedTargets) {
      config.max_test_vpins = kDegradedTargets;
      common::obs::record_degradation(
          "sample_targets",
          "budget hard: at most " + std::to_string(kDegradedTargets) +
              " targets scored per design",
          fold);
      changed = true;
    }
    if (config.improved &&
        config.neighborhood_percentile > kDegradedPercentile) {
      config.neighborhood_percentile = kDegradedPercentile;
      common::obs::record_degradation(
          "shrink_radius",
          "budget hard: neighbourhood percentile shrunk to " +
              std::to_string(kDegradedPercentile),
          fold);
      changed = true;
    }
  }
  return changed;
}

}  // namespace repro::core

// Crash-safe, budget-bounded attack campaigns (checkpoint/resume glue).
//
// This module ties the common-layer primitives (checkpoint directory,
// cancel token, budget) to the attack engine's types:
//
//   * Binary serialization of TrainedModel and AttackResult as sealed
//     binio artifacts. Doubles/floats round-trip by bit pattern, so a
//     fold result loaded from a checkpoint is bit-identical to the one
//     that was saved — which is what lets a resumed run produce exactly
//     the digest of an uninterrupted one.
//   * result_digest: the FNV-1a fingerprint over the complete observable
//     result (per-target rankings, histograms, stats) used by the
//     thread-invariance and kill-and-resume differential tests. Timing
//     fields are deliberately excluded: they are the only part of an
//     AttackResult that is not a pure function of the inputs.
//   * attack_run_key: fingerprint of (config, inputs) scoping a
//     checkpoint directory. Artifacts recorded under a different key
//     are some other computation's and must not be resumed from.
//   * RunControl: the bundle of optional resilience services threaded
//     through long campaigns (LOO cross-validation, the attack tool).
//   * The degradation ladder: what accuracy to shed, in which order,
//     when the budget comes under pressure. Every concession is
//     recorded as an obs degradation event so a degraded run can never
//     masquerade as a full-fidelity one.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/cancel.hpp"
#include "common/checkpoint.hpp"
#include "common/diagnostics.hpp"
#include "common/status.hpp"
#include "core/attack.hpp"

namespace repro::core {

/// Optional resilience services for a long campaign. All pointers may be
/// null: a default RunControl degrades to the plain uncheckpointed path.
struct RunControl {
  common::CheckpointManager* checkpoint = nullptr;
  common::CancelToken* cancel = nullptr;
  common::Budget* budget = nullptr;
  common::DiagnosticSink* sink = nullptr;

  bool cancelled() const { return cancel && cancel->cancelled(); }
  common::BudgetPressure pressure() const {
    return budget ? budget->pressure() : common::BudgetPressure::kNone;
  }
};

/// Artifact identities ("CRES" results, "CMDL" models).
inline constexpr std::uint32_t kResultMagic = 0x43524553u;
inline constexpr std::uint32_t kResultVersion = 1;
inline constexpr std::uint32_t kModelMagic = 0x434D444Cu;
inline constexpr std::uint32_t kModelVersion = 1;

/// FNV-1a fingerprint of the observable result (num_vpins, per-target
/// num_evaluated / p_true / d_true / histogram / top-K with float bit
/// patterns). Excludes the timing fields. Equal digests mean bit-equal
/// attack output.
std::uint64_t result_digest(const AttackResult& res);

/// Fingerprint of the computation a checkpoint belongs to: every
/// result-affecting AttackConfig field plus, per challenge, the design
/// name, split layer, and v-pin count.
std::uint64_t attack_run_key(
    std::span<const splitmfg::SplitChallenge> challenges,
    const AttackConfig& config);

/// AttackResult <-> sealed artifact. load_result returns kDataLoss on
/// envelope or structural corruption; a loaded result has finalize()
/// already applied (finalize is a pure function of the per-target data,
/// so recomputing it reproduces the saved aggregates exactly).
std::string save_result(const AttackResult& res);
common::StatusOr<AttackResult> load_result(const std::string& raw);

/// TrainedModel <-> sealed artifact (config, feature indices, pair
/// filter, the full ensemble, sample counts and timings).
std::string save_model(const TrainedModel& model);
common::StatusOr<TrainedModel> load_model(const std::string& raw);

/// The degradation ladder. Mutates `config` in place according to the
/// pressure level and records one obs degradation event per rung taken:
///   soft: rung 1 — cap the ensemble at 5 trees ("fewer_trees");
///   hard: rungs 2+3 — sample at most 256 targets per design
///         ("sample_targets") and shrink the neighbourhood percentile to
///         0.75 ("shrink_radius").
/// kExceeded is not handled here: the caller stops and flushes instead
/// of degrading further. Returns true if any rung changed the config.
bool apply_degradation(AttackConfig& config, common::BudgetPressure pressure,
                       std::int64_t fold = -1);

}  // namespace repro::core

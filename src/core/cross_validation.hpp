// Leave-one-out cross validation over a suite of challenges (paper
// SSIII-C): to test design i, designs j != i are the training set.
#pragma once

#include <optional>
#include <vector>

#include "core/attack.hpp"
#include "core/resilience.hpp"

namespace repro::core {

class ChallengeSuite {
 public:
  explicit ChallengeSuite(std::vector<splitmfg::SplitChallenge> challenges)
      : challenges_(std::move(challenges)) {}

  std::size_t size() const { return challenges_.size(); }
  const splitmfg::SplitChallenge& challenge(std::size_t i) const {
    return challenges_[i];
  }
  std::vector<splitmfg::SplitChallenge>& mutable_challenges() {
    return challenges_;
  }
  const std::vector<splitmfg::SplitChallenge>& challenges() const {
    return challenges_;
  }

  /// Pointers to the N-1 challenges used to attack `target`.
  std::vector<const splitmfg::SplitChallenge*> training_for(
      std::size_t target) const;

  /// Runs the attack with leave-one-out CV; result i tests challenge i.
  std::vector<AttackResult> run_all(const AttackConfig& config) const;

  /// run_all with resilience services: completed folds are checkpointed
  /// (model while the fold is in flight, result when it finishes) and
  /// loaded instead of recomputed on resume; cancellation and budget
  /// pressure are honoured at fold boundaries. Slot i is nullopt when
  /// fold i was not completed (cancelled / budget exhausted). Because
  /// every fold is a pure function of (challenges, config, i) and the
  /// artifacts round-trip by bit pattern, a resumed run's results are
  /// bit-identical to an uninterrupted run's at any thread count.
  std::vector<std::optional<AttackResult>> run_all_checkpointed(
      const AttackConfig& config, const RunControl& rc) const;

  /// Checkpoint artifact names for fold i.
  static std::string fold_result_name(std::int64_t i);
  static std::string fold_model_name(std::int64_t i);

 private:
  std::vector<splitmfg::SplitChallenge> challenges_;
};

}  // namespace repro::core

// Leave-one-out cross validation over a suite of challenges (paper
// SSIII-C): to test design i, designs j != i are the training set.
#pragma once

#include <optional>
#include <vector>

#include "core/attack.hpp"
#include "core/resilience.hpp"

namespace repro::core {

class ChallengeSuite {
 public:
  explicit ChallengeSuite(std::vector<splitmfg::SplitChallenge> challenges)
      : challenges_(std::move(challenges)) {}

  std::size_t size() const { return challenges_.size(); }
  const splitmfg::SplitChallenge& challenge(std::size_t i) const {
    return challenges_[i];
  }
  std::vector<splitmfg::SplitChallenge>& mutable_challenges() {
    return challenges_;
  }
  const std::vector<splitmfg::SplitChallenge>& challenges() const {
    return challenges_;
  }

  /// Pointers to the N-1 challenges used to attack `target`.
  std::vector<const splitmfg::SplitChallenge*> training_for(
      std::size_t target) const;

  /// Runs the attack with leave-one-out CV; result i tests challenge i.
  std::vector<AttackResult> run_all(const AttackConfig& config) const;

  /// run_all with resilience services: completed folds are checkpointed
  /// (model while the fold is in flight, result when it finishes) and
  /// loaded instead of recomputed on resume; cancellation and budget
  /// pressure are honoured at fold boundaries. Slot i is nullopt when
  /// fold i was not completed (cancelled / budget exhausted). Because
  /// every fold is a pure function of (challenges, config, i) and the
  /// artifacts round-trip by bit pattern, a resumed run's results are
  /// bit-identical to an uninterrupted run's at any thread count.
  std::vector<std::optional<AttackResult>> run_all_checkpointed(
      const AttackConfig& config, const RunControl& rc) const;

  /// One fold of the above, for sharded campaigns: a worker process owns
  /// exactly fold `fold` and its own checkpoint directory. Same resume /
  /// recompute / cancellation semantics as run_all_checkpointed
  /// restricted to that fold; nullopt when the fold did not complete.
  /// The fold artifact names are identical, so a shard checkpoint is
  /// readable by the same loaders the monolithic path uses.
  std::optional<AttackResult> run_fold_checkpointed(const AttackConfig& config,
                                                    const RunControl& rc,
                                                    std::int64_t fold) const;

  /// Checkpoint artifact names for fold i.
  static std::string fold_result_name(std::int64_t i);
  static std::string fold_model_name(std::int64_t i);

 private:
  /// Completed result of fold i from the checkpoint, if present and
  /// valid; corrupt artifacts are dropped (diagnostic to `sink`) so the
  /// caller recomputes.
  std::optional<AttackResult> load_fold_result(const RunControl& rc,
                                               common::DiagnosticSink& sink,
                                               std::int64_t i) const;

  /// Trained-but-unscored model of fold i from the checkpoint, if any.
  std::optional<TrainedModel> load_fold_model(const RunControl& rc,
                                              common::DiagnosticSink& sink,
                                              std::int64_t i) const;

  /// Trains (unless `model` resumes one) and scores fold i, recording
  /// artifacts through rc.checkpoint. nullopt on cancel / budget stop.
  std::optional<AttackResult> compute_fold(
      const AttackConfig& config, const RunControl& rc, std::int64_t i,
      std::optional<TrainedModel> model) const;

  std::vector<splitmfg::SplitChallenge> challenges_;
};

}  // namespace repro::core

// Leave-one-out cross validation over a suite of challenges (paper
// SSIII-C): to test design i, designs j != i are the training set.
#pragma once

#include <vector>

#include "core/attack.hpp"

namespace repro::core {

class ChallengeSuite {
 public:
  explicit ChallengeSuite(std::vector<splitmfg::SplitChallenge> challenges)
      : challenges_(std::move(challenges)) {}

  std::size_t size() const { return challenges_.size(); }
  const splitmfg::SplitChallenge& challenge(std::size_t i) const {
    return challenges_[i];
  }
  std::vector<splitmfg::SplitChallenge>& mutable_challenges() {
    return challenges_;
  }

  /// Pointers to the N-1 challenges used to attack `target`.
  std::vector<const splitmfg::SplitChallenge*> training_for(
      std::size_t target) const;

  /// Runs the attack with leave-one-out CV; result i tests challenge i.
  std::vector<AttackResult> run_all(const AttackConfig& config) const;

 private:
  std::vector<splitmfg::SplitChallenge> challenges_;
};

}  // namespace repro::core

#include "core/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace repro::core {

namespace {

double manhattan_vpin(const splitmfg::Vpin& a, const splitmfg::Vpin& b) {
  return std::abs(static_cast<double>(a.pos.x - b.pos.x)) +
         std::abs(static_cast<double>(a.pos.y - b.pos.y));
}

}  // namespace

bool PairFilter::admits(const splitmfg::Vpin& a,
                        const splitmfg::Vpin& b) const {
  if (!legal_pair(a, b)) return false;
  if (neighborhood && manhattan_vpin(a, b) > *neighborhood) return false;
  if (limit_top_direction) {
    if (top_metal_horizontal) {
      if (a.pos.y != b.pos.y) return false;
    } else {
      if (a.pos.x != b.pos.x) return false;
    }
  }
  return true;
}

std::vector<double> match_distances(
    std::span<const splitmfg::SplitChallenge* const> challenges) {
  std::vector<double> out;
  for (const splitmfg::SplitChallenge* ch : challenges) {
    for (const splitmfg::Vpin& v : ch->vpins) {
      for (splitmfg::VpinId m : v.matches) {
        if (m > v.id) out.push_back(manhattan_vpin(v, ch->vpin(m)));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

double neighborhood_radius(
    std::span<const splitmfg::SplitChallenge* const> challenges,
    double percentile) {
  if (percentile <= 0.0 || percentile > 1.0) {
    throw std::invalid_argument("percentile must be in (0, 1]");
  }
  const std::vector<double> d = match_distances(challenges);
  if (d.empty()) {
    throw std::runtime_error("no matching v-pin pairs in training data");
  }
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(d.size()) - 1,
                       percentile * static_cast<double>(d.size())));
  return d[idx];
}

ml::Dataset make_training_set(
    std::span<const splitmfg::SplitChallenge* const> challenges,
    FeatureSet fs, const SamplingOptions& opt) {
  const std::vector<int> idx = feature_indices(fs);
  std::vector<std::string> names;
  for (int i : idx) names.push_back(feature_names()[static_cast<std::size_t>(i)]);
  ml::Dataset data(std::move(names));

  std::mt19937_64 rng(opt.seed);
  std::size_t mask_offset = 0;

  for (const splitmfg::SplitChallenge* ch : challenges) {
    const int n = ch->num_vpins();
    const double scale =
        opt.normalize_distances
            ? 1.0 / static_cast<double>(ch->die.width() + ch->die.height())
            : 1.0;
    const auto in_mask = [&](splitmfg::VpinId v) {
      if (opt.vpin_mask.empty()) return true;
      return opt.vpin_mask[mask_offset + static_cast<std::size_t>(v)] != 0;
    };
    std::uniform_int_distribution<int> pick(0, std::max(0, n - 1));

    for (const splitmfg::Vpin& v : ch->vpins) {
      if (!in_mask(v.id)) continue;
      for (splitmfg::VpinId m : v.matches) {
        if (m <= v.id) continue;  // each matching pair once
        const splitmfg::Vpin& w = ch->vpin(m);
        if (!in_mask(m)) continue;
        if (!opt.filter.admits(v, w)) continue;
        // Positive sample.
        data.add_row(project(pair_features(v, w, scale), idx), 1);
        // One matched random negative.
        for (int t = 0; t < opt.max_tries; ++t) {
          const splitmfg::Vpin& cand = ch->vpin(pick(rng));
          if (cand.id == v.id) continue;
          if (!in_mask(cand.id)) continue;
          if (ch->is_match(v.id, cand.id)) continue;
          if (!opt.filter.admits(v, cand)) continue;
          data.add_row(project(pair_features(v, cand, scale), idx), 0);
          break;
        }
      }
    }
    if (!opt.vpin_mask.empty()) {
      mask_offset += static_cast<std::size_t>(n);
    }
  }
  return data;
}

}  // namespace repro::core

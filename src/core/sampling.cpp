#include "core/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/obs.hpp"
#include "core/candidate_index.hpp"

namespace repro::core {

namespace {

double manhattan_vpin(const splitmfg::Vpin& a, const splitmfg::Vpin& b) {
  return std::abs(static_cast<double>(a.pos.x - b.pos.x)) +
         std::abs(static_cast<double>(a.pos.y - b.pos.y));
}

}  // namespace

bool PairFilter::admits(const splitmfg::Vpin& a,
                        const splitmfg::Vpin& b) const {
  if (!legal_pair(a, b)) return false;
  if (neighborhood && manhattan_vpin(a, b) > *neighborhood) return false;
  if (limit_top_direction) {
    if (top_metal_horizontal) {
      if (a.pos.y != b.pos.y) return false;
    } else {
      if (a.pos.x != b.pos.x) return false;
    }
  }
  return true;
}

std::vector<double> match_distances(
    std::span<const splitmfg::SplitChallenge* const> challenges) {
  std::vector<double> out;
  for (const splitmfg::SplitChallenge* ch : challenges) {
    for (const splitmfg::Vpin& v : ch->vpins) {
      for (splitmfg::VpinId m : v.matches) {
        if (m > v.id) out.push_back(manhattan_vpin(v, ch->vpin(m)));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

double neighborhood_radius(
    std::span<const splitmfg::SplitChallenge* const> challenges,
    double percentile) {
  if (percentile <= 0.0 || percentile > 1.0) {
    throw std::invalid_argument("percentile must be in (0, 1]");
  }
  const std::vector<double> d = match_distances(challenges);
  if (d.empty()) {
    throw std::runtime_error("no matching v-pin pairs in training data");
  }
  // Standard nearest-rank quantile: element ceil(p * N) in 1-based rank
  // order. The previous `p * N` truncation returned the element *after*
  // the requested quantile for interior percentiles and only behaved at
  // p = 1.0 thanks to the min-clamp.
  const auto rank = static_cast<std::size_t>(
      std::ceil(percentile * static_cast<double>(d.size())));
  return d[std::min(d.size() - 1, std::max<std::size_t>(rank, 1) - 1)];
}

ml::Dataset make_training_set(
    std::span<const splitmfg::SplitChallenge* const> challenges,
    FeatureSet fs, const SamplingOptions& opt) {
  const std::vector<int> idx = feature_indices(fs);
  std::vector<std::string> names;
  for (int i : idx) names.push_back(feature_names()[static_cast<std::size_t>(i)]);
  ml::Dataset data(std::move(names));

  std::mt19937_64 rng(opt.seed);
  std::size_t mask_offset = 0;
  std::uint64_t misses = 0;

  for (const splitmfg::SplitChallenge* ch : challenges) {
    const int n = ch->num_vpins();
    const double scale =
        opt.normalize_distances
            ? 1.0 / static_cast<double>(ch->die.width() + ch->die.height())
            : 1.0;
    const auto in_mask = [&](splitmfg::VpinId v) {
      if (opt.vpin_mask.empty()) return true;
      return opt.vpin_mask[mask_offset + static_cast<std::size_t>(v)] != 0;
    };

    // Negatives are drawn from the admissible candidates of v (spatial
    // index lookup), not by rejection-sampling the whole challenge: the
    // hit rate no longer collapses when the neighbourhood is tight, and
    // if random picks exhaust max_tries (they can still land on matches
    // or masked-out v-pins) a deterministic scan of the candidate list
    // guarantees a negative whenever one exists. Misses — v-pins with
    // *no* admissible negative — are counted instead of silently
    // skewing the class balance (Dataset::num_negative tallies it).
    const CandidateIndex index(*ch);
    std::vector<splitmfg::VpinId> cand;
    splitmfg::VpinId cand_for = splitmfg::kInvalidVpin;

    for (const splitmfg::Vpin& v : ch->vpins) {
      if (!in_mask(v.id)) continue;
      for (splitmfg::VpinId m : v.matches) {
        if (m <= v.id) continue;  // each matching pair once
        const splitmfg::Vpin& w = ch->vpin(m);
        if (!in_mask(m)) continue;
        if (!opt.filter.admits(v, w)) continue;
        // Positive sample.
        data.add_row(project(pair_features(v, w, scale), idx), 1);
        // One matched negative.
        if (cand_for != v.id) {
          cand.clear();
          index.collect(v.id, opt.filter, cand);
          cand_for = v.id;
        }
        const auto admissible_negative = [&](splitmfg::VpinId c) {
          return in_mask(c) && !ch->is_match(v.id, c);
        };
        bool found = false;
        if (!cand.empty()) {
          std::uniform_int_distribution<std::size_t> pick(0, cand.size() - 1);
          for (int t = 0; t < opt.max_tries && !found; ++t) {
            const splitmfg::VpinId c = cand[pick(rng)];
            if (!admissible_negative(c)) continue;
            data.add_row(project(pair_features(v, ch->vpin(c), scale), idx),
                         0);
            found = true;
          }
          if (!found) {
            // Deterministic fallback: scan the candidate list from a
            // seed-derived offset (reproducible, but not always the same
            // low-id candidate).
            const std::size_t start = pick(rng);
            for (std::size_t k = 0; k < cand.size() && !found; ++k) {
              const splitmfg::VpinId c = cand[(start + k) % cand.size()];
              if (!admissible_negative(c)) continue;
              data.add_row(project(pair_features(v, ch->vpin(c), scale), idx),
                           0);
              found = true;
            }
          }
        }
        if (!found) ++misses;
      }
    }
    if (!opt.vpin_mask.empty()) {
      mask_offset += static_cast<std::size_t>(n);
    }
  }
  OBS_COUNT("sampling.rows_positive", data.num_positive());
  OBS_COUNT("sampling.rows_negative", data.num_negative());
  OBS_COUNT("sampling.negative_misses", misses);
  return data;
}

}  // namespace repro::core

#include "core/two_level.hpp"

#include <algorithm>
#include <chrono>
#include <random>

#include "core/candidate_index.hpp"

namespace repro::core {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TwoLevelResult two_level_attack(
    const splitmfg::SplitChallenge& target,
    std::span<const splitmfg::SplitChallenge* const> training,
    const AttackConfig& config, double level1_threshold) {
  const double t0 = now_seconds();
  std::mt19937_64 rng(config.seed * 40503 + 11);

  // Level 1.
  const TrainedModel l1 = AttackEngine::train(training, config);

  // Generate the Level-2 training set from the Level-1 LoCs of the
  // *training* designs (never the target).
  const std::vector<int> idx = feature_indices(config.features);
  std::vector<std::string> names;
  for (int i : idx) {
    names.push_back(feature_names()[static_cast<std::size_t>(i)]);
  }
  ml::Dataset l2_data(std::move(names));

  for (const splitmfg::SplitChallenge* ch : training) {
    const AttackResult res = AttackEngine::test(l1, *ch);
    for (int v = 0; v < ch->num_vpins(); ++v) {
      const splitmfg::Vpin& vp = ch->vpin(v);
      // Positives: every admissible matching pair, once.
      for (splitmfg::VpinId m : vp.matches) {
        if (m <= vp.id) continue;
        const splitmfg::Vpin& w = ch->vpin(m);
        if (!l1.filter.admits(vp, w)) continue;
        l2_data.add_row(project(pair_features(vp, w), idx), 1);
      }
      // One hard negative drawn from the Level-1 LoC.
      const VpinResult& r = res.per_vpin()[static_cast<std::size_t>(v)];
      std::vector<splitmfg::VpinId> loc_negatives;
      for (const Candidate& c : r.top) {
        if (c.p < level1_threshold) break;  // top is sorted by p desc
        if (!ch->is_match(v, c.id)) loc_negatives.push_back(c.id);
      }
      if (!loc_negatives.empty()) {
        std::uniform_int_distribution<std::size_t> pick(
            0, loc_negatives.size() - 1);
        const splitmfg::Vpin& w = ch->vpin(loc_negatives[pick(rng)]);
        l2_data.add_row(project(pair_features(vp, w), idx), 0);
      }
    }
  }

  const ml::BaggingOptions bopt =
      config.use_random_forest
          ? ml::BaggingOptions::random_forest(l2_data.num_features(),
                                              config.seed + 2)
          : ml::BaggingOptions::reptree_bagging(config.seed + 2);
  const ml::BaggingClassifier l2 = ml::BaggingClassifier::train(l2_data, bopt);

  // Test the target with both levels in one pass.
  TwoLevelResult out{
      AttackResult(target.design_name, target.split_layer, config.hist_bins),
      AttackResult(target.design_name, target.split_layer, config.hist_bins),
      level1_threshold, l2_data.num_rows(), 0};

  auto init_result = [&](AttackResult& r) {
    auto& pv = r.mutable_per_vpin();
    pv.resize(static_cast<std::size_t>(target.num_vpins()));
    for (std::size_t i = 0; i < pv.size(); ++i) {
      pv[i].has_match = !target.vpins[i].matches.empty();
      pv[i].hist.assign(static_cast<std::size_t>(config.hist_bins), 0);
    }
  };
  init_result(out.level1);
  init_result(out.pruned);

  const auto bin_of = [&](double p) {
    return detail::bin_index(p, config.hist_bins);
  };
  const auto record = [&](AttackResult& res, int self, int other, double p,
                          float d, bool matched) {
    VpinResult& r = res.mutable_per_vpin()[static_cast<std::size_t>(self)];
    ++r.num_evaluated;
    ++r.hist[static_cast<std::size_t>(bin_of(p))];
    Candidate c{static_cast<splitmfg::VpinId>(other), static_cast<float>(p),
                d};
    r.top.push_back(c);  // sorted later
    if (matched && p > r.p_true) {
      r.p_true = static_cast<float>(p);
      r.d_true = d;
    }
  };

  // Candidate pairs come from the spatial index (each unordered admitted
  // pair once, via the ascending-id contract: only j > i is kept).
  const int n = target.num_vpins();
  const CandidateIndex index(target);
  std::vector<double> x(idx.size());
  std::vector<splitmfg::VpinId> cand;
  for (int i = 0; i < n; ++i) {
    const splitmfg::Vpin& vi = target.vpin(i);
    cand.clear();
    index.collect(i, l1.filter, cand);
    for (splitmfg::VpinId j : cand) {
      if (j <= i) continue;  // unordered pairs once
      const splitmfg::Vpin& vj = target.vpin(j);
      const auto full = pair_features(vi, vj);
      for (std::size_t k = 0; k < idx.size(); ++k) {
        x[k] = full[static_cast<std::size_t>(idx[k])];
      }
      const double p1 = l1.classifier.predict_proba(x);
      const auto d = static_cast<float>(full[kManhattanVpin]);
      const bool matched = target.is_match(i, j);
      record(out.level1, i, j, p1, d, matched);
      record(out.level1, j, i, p1, d, matched);
      if (p1 >= level1_threshold) {
        const double p2 = l2.predict_proba(x);
        record(out.pruned, i, j, p2, d, matched);
        record(out.pruned, j, i, p2, d, matched);
      }
    }
  }

  for (AttackResult* res : {&out.level1, &out.pruned}) {
    for (VpinResult& r : res->mutable_per_vpin()) {
      std::sort(r.top.begin(), r.top.end(),
                [](const Candidate& a, const Candidate& b) {
                  if (a.p != b.p) return a.p > b.p;
                  if (a.d != b.d) return a.d < b.d;
                  return a.id < b.id;
                });
      if (static_cast<int>(r.top.size()) > config.top_k) {
        r.top.resize(static_cast<std::size_t>(config.top_k));
      }
    }
    res->finalize();
  }

  out.total_seconds = now_seconds() - t0;
  return out;
}

}  // namespace repro::core

// Netlist reconstruction - the end product of the attack.
//
// The classifier produces, per v-pin, candidate partners; the proximity /
// global-matching attacks commit to one. This module merges the FEOL
// fragments along the guessed v-pin pairs and scores the result against
// the ground truth the way a reverse engineer would care about:
//   * connection precision/recall over guessed pairs,
//   * fraction of cut nets whose fragments were reassembled exactly
//     (no missing and no foreign fragment).
#pragma once

#include <vector>

#include "core/attack.hpp"

namespace repro::core {

struct ReconstructionReport {
  long guessed_pairs = 0;
  long correct_pairs = 0;
  /// Connection-level precision / recall over v-pin pairs.
  double precision = 0;
  double recall = 0;
  /// Net-level: a cut net counts as recovered iff the connected component
  /// of its v-pins under the guessed pairing equals the component under
  /// the true pairing.
  int cut_nets = 0;
  int recovered_nets = 0;
  double net_recovery_rate = 0;
};

/// Scores a guessed assignment. `chosen[v]` lists the partners guessed for
/// v-pin v (as produced by global_matching_attack; a per-v-pin PA answer
/// can be converted by storing one partner per v-pin).
ReconstructionReport score_reconstruction(
    const splitmfg::SplitChallenge& challenge,
    const std::vector<std::vector<splitmfg::VpinId>>& chosen);

/// Convenience: turns per-v-pin PA picks (kInvalidVpin = no pick) into the
/// `chosen` form.
std::vector<std::vector<splitmfg::VpinId>> picks_to_chosen(
    const std::vector<splitmfg::VpinId>& picks);

}  // namespace repro::core

// Warm-model LRU for the attack server: deserialized ensembles, keyed
// by the same attack_run_key that names them in the checkpoint store.
//
// A cache entry is the expensive part of answering a score request — a
// TrainedModel plus the FlatForest flattened from it once (the batch
// scoring layout; rebuilding it per request would throw away most of
// the warm-cache win). Entries are immutable and handed out as
// shared_ptr<const ...>, so a hit can keep scoring on one request while
// the entry is evicted under memory pressure by another: eviction drops
// the cache's reference, never the borrower's.
//
// Eviction is strict LRU by estimated bytes. The estimate is a
// node-count model (the dominant storage is per-node SoA arrays plus
// the pointer trees they mirror), not a malloc census — close enough to
// bound RSS, cheap enough to compute at insert. One rule softens the
// bound: the most recently inserted/used entry is never evicted, so a
// single ensemble larger than --cache-mb still serves (the cache
// degrades to capacity 1 instead of thrashing to 0).
//
// Thread-safe throughout; every method is a short critical section.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/attack.hpp"
#include "ml/bagging.hpp"

namespace repro::core {

/// One warm entry: the trained model and its prebuilt scoring forest.
struct CachedEnsemble {
  TrainedModel model;
  ml::FlatForest forest;  ///< FlatForest::build(model.classifier)
  std::size_t bytes = 0;  ///< estimate_ensemble_bytes at insert time

  /// True source of the entry, for request echoes and tests.
  enum class Source { kTrained, kStore };
  Source source = Source::kTrained;
};

/// Estimated resident footprint of an ensemble (see file comment).
std::size_t estimate_ensemble_bytes(const CachedEnsemble& e);

class ArtifactCache {
 public:
  /// capacity_bytes = 0 disables caching entirely (every get misses,
  /// puts are dropped) — the server's --cache-mb 0 escape hatch.
  explicit ArtifactCache(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Returns the entry and promotes it to most-recently-used, or null.
  std::shared_ptr<const CachedEnsemble> get(std::uint64_t key);

  /// Inserts (or replaces) the entry, computing bytes if the caller
  /// left it 0, then evicts least-recently-used entries until the
  /// estimate fits the capacity (keeping at least the newcomer).
  void put(std::uint64_t key, std::shared_ptr<const CachedEnsemble> entry);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t inserts = 0;
    std::size_t entries = 0;        ///< current
    std::size_t bytes = 0;          ///< current estimate
    std::size_t capacity_bytes = 0;
  };
  Stats stats() const;

 private:
  using LruList =
      std::list<std::pair<std::uint64_t,
                          std::shared_ptr<const CachedEnsemble>>>;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t inserts_ = 0;
};

}  // namespace repro::core

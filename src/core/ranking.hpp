// Feature-ranking analysis over attack training samples (paper SSIV-A).
#pragma once

#include <span>
#include <vector>

#include "core/sampling.hpp"
#include "ml/ranking.hpp"

namespace repro::core {

/// Builds an Imp-style training set (all 11 features, neighbourhood
/// restricted) over the given challenges and scores every feature with
/// information gain, |correlation| and Fisher's discriminant ratio.
std::vector<ml::FeatureScore> rank_attack_features(
    std::span<const splitmfg::SplitChallenge* const> challenges,
    double neighborhood_percentile = 0.90, std::uint64_t seed = 1);

}  // namespace repro::core

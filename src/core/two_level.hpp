// Two-level pruning (paper SSIII-E).
//
// A Level-1 model is trained as usual on the N-1 training designs. The
// training designs are then *tested* with that model; for every training
// v-pin, a random non-matching member of its Level-1 LoC becomes a
// "high-quality" negative sample. A Level-2 model trained on these hard
// negatives (plus all positives) is applied, on the target design, only to
// pairs inside the Level-1 LoC; everything else is pruned. Cross-validation
// stays intact: the target design is never touched while building either
// level.
#pragma once

#include "core/attack.hpp"

namespace repro::core {

struct TwoLevelResult {
  AttackResult level1;      ///< target tested with the Level-1 model only
  AttackResult pruned;      ///< after Level-2 pruning
  double level1_threshold = 0.5;
  int num_l2_train_samples = 0;
  double total_seconds = 0;
};

/// Runs the full two-level pruning procedure against `target`.
TwoLevelResult two_level_attack(
    const splitmfg::SplitChallenge& target,
    std::span<const splitmfg::SplitChallenge* const> training,
    const AttackConfig& config, double level1_threshold = 0.5);

}  // namespace repro::core

// Training-sample generation (paper SSIII-B, SSIII-D, SSIII-G).
//
// For every v-pin in a training design we emit one positive sample (the
// pair with its true match) and one negative sample (a random legal
// non-matching pair), keeping classes balanced. The Imp variants restrict
// both positive and negative samples (and, at test time, the candidate
// pairs) to a neighbourhood whose radius is the given percentile of the
// true-match ManhattanVpin distribution over the training designs. The
// Y-variants additionally require the top-metal-direction distance to be
// zero (only valid at the highest via layer).
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <span>
#include <vector>

#include "core/features.hpp"
#include "ml/dataset.hpp"

namespace repro::core {

/// Restrictions applied to samples and test pairs.
struct PairFilter {
  /// Neighbourhood radius (ManhattanVpin, DBU); nullopt = unrestricted.
  std::optional<double> neighborhood;
  /// If set, pairs must satisfy DiffVpinY == 0 (top metal horizontal) or
  /// DiffVpinX == 0 (top metal vertical).
  bool limit_top_direction = false;
  bool top_metal_horizontal = true;

  /// True if the pair passes legality + all restrictions.
  bool admits(const splitmfg::Vpin& a, const splitmfg::Vpin& b) const;
};

/// True-match ManhattanVpin distances across challenges, sorted ascending.
std::vector<double> match_distances(
    std::span<const splitmfg::SplitChallenge* const> challenges);

/// The neighbourhood radius covering `percentile` (e.g. 0.90) of true-match
/// distances across the given (training) challenges. See paper Fig. 4.
double neighborhood_radius(
    std::span<const splitmfg::SplitChallenge* const> challenges,
    double percentile);

struct SamplingOptions {
  PairFilter filter;
  std::uint64_t seed = 1;
  /// Maximum random draws from the admissible candidate list per negative
  /// sample before the deterministic fallback scan takes over (0 = always
  /// scan). Draws only fail on matches or masked-out v-pins, so the
  /// fallback is rarely reached outside dense-mask configurations.
  int max_tries = 64;
  /// Optional restriction: only v-pins whose id passes this mask take part
  /// (used by the PA validation split). Empty = all.
  std::span<const std::uint8_t> vpin_mask;
  /// Scale distance features by 1/(die width + height) per challenge
  /// (see AttackConfig::normalize_distances).
  bool normalize_distances = false;
};

/// Builds a balanced training set over the given challenges, projected to
/// `fs`. For each admissible matching pair, one positive sample and one
/// random admissible negative sample are produced. Negatives come from
/// the spatial candidate index (cost proportional to the admissible
/// neighbourhood, with a deterministic fallback scan), so a negative is
/// only ever missing when the v-pin has no admissible non-match at all;
/// such misses are counted in the "sampling.negative_misses" obs counter
/// and visible as a pos/neg imbalance via Dataset::num_negative().
ml::Dataset make_training_set(
    std::span<const splitmfg::SplitChallenge* const> challenges,
    FeatureSet fs, const SamplingOptions& opt);

}  // namespace repro::core

#include "core/attack.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <stdexcept>

#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "common/telemetry.hpp"
#include "core/candidate_index.hpp"

namespace repro::core {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

namespace detail {

void push_top(std::vector<Candidate>& top, int k, const Candidate& c) {
  // Heap ordered by candidate_before, so the front is the worst kept
  // candidate. Because candidate_before is a strict total order (ties on
  // p break by distance, then id), the kept set is exactly the first K
  // candidates in display order, whatever the insertion order was.
  if (static_cast<int>(top.size()) < k) {
    top.push_back(c);
    std::push_heap(top.begin(), top.end(), candidate_before);
  } else if (!top.empty() && candidate_before(c, top.front())) {
    std::pop_heap(top.begin(), top.end(), candidate_before);
    top.back() = c;
    std::push_heap(top.begin(), top.end(), candidate_before);
  }
}

}  // namespace detail

AttackConfig config_from_name(std::string_view name, std::uint64_t seed) {
  AttackConfig c;
  c.name = std::string(name);
  c.seed = seed;
  std::string_view rest = name;
  if (rest.rfind("RF:", 0) == 0) {
    c.use_random_forest = true;
    rest.remove_prefix(3);
  }
  if (!rest.empty() && rest.back() == 'Y') {
    c.limit_top_direction = true;
    rest.remove_suffix(1);
  }
  if (rest.rfind("ML-", 0) == 0) {
    c.improved = false;
    rest.remove_prefix(3);
  } else if (rest.rfind("Imp-", 0) == 0) {
    c.improved = true;
    rest.remove_prefix(4);
  } else {
    throw std::invalid_argument("unknown attack config: " + c.name);
  }
  if (rest == "7") {
    c.features = FeatureSet::kF7;
  } else if (rest == "9") {
    c.features = FeatureSet::kF9;
  } else if (rest == "11") {
    c.features = FeatureSet::kF11;
  } else {
    throw std::invalid_argument("unknown feature count in config: " + c.name);
  }
  return c;
}

std::optional<double> TrainedModel::predict_pair(const splitmfg::Vpin& a,
                                                 const splitmfg::Vpin& b,
                                                 double distance_scale) const {
  if (!filter.admits(a, b)) return std::nullopt;
  const auto full = pair_features(a, b, distance_scale);
  const std::vector<double> x = project(full, feat_idx);
  return classifier.predict_proba(x);
}

double TrainedModel::scale_for(const splitmfg::SplitChallenge& ch) const {
  if (!config.normalize_distances) return 1.0;
  const auto denom = static_cast<double>(ch.die.width() + ch.die.height());
  return denom > 0 ? 1.0 / denom : 1.0;
}

TrainedModel AttackEngine::train(
    std::span<const splitmfg::SplitChallenge* const> training,
    const AttackConfig& config) {
  OBS_SPAN("train");
  common::obs::set_phase("train");
  TrainedModel model;
  model.config = config;
  model.feat_idx = feature_indices(config.features);

  model.filter = PairFilter{};
  if (config.improved) {
    model.filter.neighborhood =
        neighborhood_radius(training, config.neighborhood_percentile);
  }
  model.filter.limit_top_direction = config.limit_top_direction;
  model.filter.top_metal_horizontal = config.top_metal_horizontal;

  const double t0 = now_seconds();
  ml::Dataset data;
  {
    OBS_SPAN("train.features");
    SamplingOptions sopt;
    sopt.filter = model.filter;
    sopt.seed = config.seed * 1000003 + 17;
    sopt.normalize_distances = config.normalize_distances;
    data = make_training_set(training, config.features, sopt);
    if (config.max_train_samples > 0 &&
        data.num_rows() > config.max_train_samples) {
      ml::Dataset sub(std::vector<std::string>(
          data.feature_names().begin(), data.feature_names().end()));
      std::vector<int> rows(static_cast<std::size_t>(data.num_rows()));
      for (int r = 0; r < data.num_rows(); ++r) {
        rows[static_cast<std::size_t>(r)] = r;
      }
      std::mt19937_64 rng(config.seed * 31337 + 5);
      std::shuffle(rows.begin(), rows.end(), rng);
      rows.resize(static_cast<std::size_t>(config.max_train_samples));
      for (int r : rows) sub.add_row(data.row(r), data.label(r));
      data = std::move(sub);
    }
  }
  model.num_train_samples = data.num_rows();
  OBS_COUNT("attack.train_samples", data.num_rows());
  const double t_sampled = now_seconds();
  model.sample_seconds = t_sampled - t0;

  {
    OBS_SPAN("train.fit");
    ml::BaggingOptions bopt =
        config.use_random_forest
            ? ml::BaggingOptions::random_forest(data.num_features(),
                                                config.seed)
            : ml::BaggingOptions::reptree_bagging(config.seed);
    if (config.max_trees > 0 && bopt.num_trees > config.max_trees) {
      // Budget degradation rung 1: a prefix of the ensemble. Tree i still
      // draws its seed from derive_seed(seed, i), so the capped ensemble
      // is exactly the first max_trees trees of the full one.
      bopt.num_trees = config.max_trees;
    }
    model.classifier = ml::BaggingClassifier::train(data, bopt);
  }
  model.fit_seconds = now_seconds() - t_sampled;
  model.train_seconds = model.sample_seconds + model.fit_seconds;
  return model;
}

AttackResult AttackEngine::test(const TrainedModel& model,
                                const splitmfg::SplitChallenge& challenge,
                                const common::CancelToken* cancel) {
  return test(model, ml::FlatForest::build(model.classifier), challenge,
              cancel);
}

AttackResult AttackEngine::test(const TrainedModel& model,
                                const ml::FlatForest& forest,
                                const splitmfg::SplitChallenge& challenge,
                                const common::CancelToken* cancel) {
  OBS_SPAN("test.score");
  common::obs::set_phase("score");
  const double t0 = now_seconds();
  AttackResult result(challenge.design_name, challenge.split_layer,
                      model.config.hist_bins);
  auto& per_vpin = result.mutable_per_vpin();
  per_vpin.resize(static_cast<std::size_t>(challenge.num_vpins()));
  for (std::size_t i = 0; i < per_vpin.size(); ++i) {
    per_vpin[i].has_match =
        !challenge.vpins[i].matches.empty();
    per_vpin[i].hist.assign(
        static_cast<std::size_t>(model.config.hist_bins), 0);
  }

  const int bins = model.config.hist_bins;
  const auto bin_of = [bins](double p) { return detail::bin_index(p, bins); };

  const int n = challenge.num_vpins();
  const double scale = model.scale_for(challenge);

  const bool sample_targets =
      model.config.max_test_vpins > 0 && n > model.config.max_test_vpins;
  if (sample_targets) {
    // Evaluate a random subset of targets against every candidate.
    // Per-target results stay exact; aggregate metrics become unbiased
    // estimates over the sampled targets.
    std::vector<int> order(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
    // Target sampling draws from its own named seed stream: ad-hoc
    // `seed * prime + c` derivations collide across nearby seeds and with
    // the per-tree streams of bagging (common::derive_seed), which this
    // helper is built on.
    std::mt19937_64 rng(
        common::derive_stream(model.config.seed, "attack.test.targets"));
    std::shuffle(order.begin(), order.end(), rng);
    order.resize(static_cast<std::size_t>(model.config.max_test_vpins));
    for (auto& r : per_vpin) r.tested = false;
    for (int t : order) per_vpin[static_cast<std::size_t>(t)].tested = true;
  }
  std::vector<int> targets;
  targets.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (per_vpin[static_cast<std::size_t>(i)].tested) targets.push_back(i);
  }

  // Scoring is data-parallel per target: each worker evaluates one
  // target's candidate list into that target's VpinResult only (own
  // histogram, own top-K heap), so workers never share mutable state.
  // Candidate probabilities come from the flattened ensemble in batches.
  //
  // Each admissible pair is scored once per *tested* endpoint. Operand
  // order is canonicalized by v-pin index before feature extraction, so
  // both evaluations produce bit-identical p even for the features whose
  // floating-point sums are not associative (TotalArea).
  const int nfeat = static_cast<int>(model.feat_idx.size());
  constexpr int kBatch = 256;

  // Candidate enumeration is output-sensitive by default: the spatial
  // index yields exactly the admitted candidates of each target, in the
  // same ascending-id order the brute-force scan produces, so the two
  // paths are digest-identical (tests/test_candidate_index.cpp).
  std::optional<CandidateIndex> index;
  if (model.config.use_candidate_index) index.emplace(challenge);
  std::vector<std::size_t> scanned(targets.size(), 0);

  common::parallel_for(
      static_cast<std::int64_t>(targets.size()), [&](std::int64_t ti) {
        const int self = targets[static_cast<std::size_t>(ti)];
        VpinResult& r = per_vpin[static_cast<std::size_t>(self)];
        const splitmfg::Vpin& vi = challenge.vpin(self);

        struct PendingCandidate {
          splitmfg::VpinId id;
          float d;
          bool matched;
        };
        std::vector<double> rows;
        rows.reserve(static_cast<std::size_t>(kBatch * nfeat));
        std::vector<PendingCandidate> pending;
        pending.reserve(kBatch);
        std::vector<double> probs(kBatch);

        const auto flush = [&] {
          const int m = static_cast<int>(pending.size());
          forest.predict_batch(rows.data(), m, nfeat, probs.data());
          for (int k = 0; k < m; ++k) {
            const PendingCandidate& c = pending[static_cast<std::size_t>(k)];
            const double p = probs[static_cast<std::size_t>(k)];
            ++r.num_evaluated;
            ++r.hist[static_cast<std::size_t>(bin_of(p))];
            detail::push_top(r.top, model.config.top_k,
                             Candidate{c.id, static_cast<float>(p), c.d});
            if (c.matched && p > r.p_true) {
              r.p_true = static_cast<float>(p);
              r.d_true = c.d;
            }
          }
          rows.clear();
          pending.clear();
        };

        const auto enqueue = [&](int j) {
          const splitmfg::Vpin& vj = challenge.vpin(j);
          const splitmfg::Vpin& a = self < j ? vi : vj;
          const splitmfg::Vpin& b = self < j ? vj : vi;
          const auto full = pair_features(a, b, scale);
          for (int k = 0; k < nfeat; ++k) {
            rows.push_back(
                full[static_cast<std::size_t>(model.feat_idx[k])]);
          }
          // Candidate distances stay in raw DBU regardless of feature
          // scaling (the proximity attack reasons about physical distance).
          const auto d = static_cast<float>(
              std::abs(static_cast<double>(vi.pos.x - vj.pos.x)) +
              std::abs(static_cast<double>(vi.pos.y - vj.pos.y)));
          pending.push_back({static_cast<splitmfg::VpinId>(j), d,
                             challenge.is_match(self, j)});
          if (static_cast<int>(pending.size()) == kBatch) flush();
        };

        if (index) {
          std::vector<splitmfg::VpinId> cand;
          scanned[static_cast<std::size_t>(ti)] =
              index->collect(self, model.filter, cand);
          for (splitmfg::VpinId j : cand) enqueue(j);
        } else {
          for (int j = 0; j < n; ++j) {
            if (j == self) continue;
            const splitmfg::Vpin& vj = challenge.vpin(j);
            const splitmfg::Vpin& a = self < j ? vi : vj;
            const splitmfg::Vpin& b = self < j ? vj : vi;
            if (!model.filter.admits(a, b)) continue;
            enqueue(j);
          }
        }
        flush();

        // Final presentation order; detail::push_top kept exactly the
        // first top_k candidates under this same order.
        std::sort(r.top.begin(), r.top.end(), detail::candidate_before);
        // Live progress for the cross-process telemetry heartbeat: a
        // commutative per-target bump, so the total stays thread-count
        // invariant while a running shard's count advances in real time
        // (the batch counters below only move once per test()).
        OBS_COUNT("attack.targets_done", 1);
      },
      cancel);
  result.interrupted = cancel && cancel->cancelled();

  // Metric updates happen once per test (not per pair), on the calling
  // thread, in index order — deterministic at any thread count and free
  // for the scoring loop.
  if (common::obs::enabled()) {
    std::uint64_t pairs = 0;
    for (const VpinResult& r : per_vpin) {
      pairs += static_cast<std::uint64_t>(r.num_evaluated);
    }
    OBS_COUNT("attack.pairs_scored", pairs);
    OBS_COUNT("attack.targets_scored", targets.size());
    OBS_COUNT("attack.vpins_seen", n);
    if (index) {
      // Output-sensitivity of the index: candidates_yielded is what the
      // model scored, candidates_scanned what the grid/track buckets
      // visited to find them (the gap is the residual filter work).
      std::uint64_t visited = 0;
      for (std::size_t s : scanned) visited += s;
      OBS_COUNT("index.candidates_yielded", pairs);
      OBS_COUNT("index.candidates_scanned", visited);
    } else if (!targets.empty()) {
      // Brute-force path: everything enumerated beyond the admitted
      // candidates was rejected by PairFilter::admits.
      const std::uint64_t enumerated =
          static_cast<std::uint64_t>(targets.size()) *
          static_cast<std::uint64_t>(n > 0 ? n - 1 : 0);
      OBS_COUNT("attack.pairs_rejected", enumerated - pairs);
    }
    static constexpr double kPEdges[] = {0.1, 0.2, 0.3, 0.4, 0.5,
                                         0.6, 0.7, 0.8, 0.9};
    auto& p_true_hist = common::obs::histogram("attack.p_true", kPEdges);
    for (const VpinResult& r : per_vpin) {
      if (r.tested && r.has_match && r.p_true >= 0) {
        p_true_hist.observe(r.p_true);
      }
    }
  }

  result.finalize();
  result.train_seconds = model.train_seconds;
  result.test_seconds = now_seconds() - t0;
  return result;
}

AttackResult AttackEngine::run(
    const splitmfg::SplitChallenge& test_challenge,
    std::span<const splitmfg::SplitChallenge* const> training,
    const AttackConfig& config) {
  const TrainedModel model = train(training, config);
  return test(model, test_challenge);
}

AttackResult::AttackResult(std::string design, int split_layer, int hist_bins)
    : design_(std::move(design)),
      split_layer_(split_layer),
      hist_bins_(hist_bins) {}

int AttackResult::bin_of(double p) const {
  return detail::bin_index(p, hist_bins_);
}

void AttackResult::finalize() {
  // Aggregate candidate histogram and true-match bins over the tested
  // targets (all v-pins unless max_test_vpins sampling was active).
  std::vector<double> agg(static_cast<std::size_t>(hist_bins_), 0.0);
  std::vector<int> true_bins(static_cast<std::size_t>(hist_bins_), 0);
  num_with_match_ = 0;
  std::size_t num_tested = 0;
  for (const VpinResult& r : per_vpin_) {
    if (!r.tested) continue;
    ++num_tested;
    for (int b = 0; b < hist_bins_; ++b) {
      agg[static_cast<std::size_t>(b)] += r.hist[static_cast<std::size_t>(b)];
    }
    if (r.has_match) {
      ++num_with_match_;
      if (r.p_true >= 0) {
        ++true_bins[static_cast<std::size_t>(bin_of(r.p_true))];
      }
    }
  }
  const double n = std::max<std::size_t>(1, num_tested);
  agg_suffix_.assign(static_cast<std::size_t>(hist_bins_) + 1, 0.0);
  acc_suffix_.assign(static_cast<std::size_t>(hist_bins_) + 1, 0.0);
  const double nm = std::max(1, num_with_match_);
  for (int b = hist_bins_ - 1; b >= 0; --b) {
    agg_suffix_[static_cast<std::size_t>(b)] =
        agg_suffix_[static_cast<std::size_t>(b) + 1] +
        agg[static_cast<std::size_t>(b)] / n;
    acc_suffix_[static_cast<std::size_t>(b)] =
        acc_suffix_[static_cast<std::size_t>(b) + 1] +
        true_bins[static_cast<std::size_t>(b)] / nm;
  }
}

double AttackResult::accuracy_at_threshold(double t) const {
  return acc_suffix_[static_cast<std::size_t>(bin_of(t))];
}

double AttackResult::mean_loc_at_threshold(double t) const {
  return agg_suffix_[static_cast<std::size_t>(bin_of(t))];
}

std::optional<double> AttackResult::mean_loc_for_accuracy(
    double accuracy) const {
  // acc_suffix_ is non-increasing in the bin index; find the highest bin
  // (smallest LoC) still reaching the accuracy.
  for (int b = hist_bins_ - 1; b >= 0; --b) {
    if (acc_suffix_[static_cast<std::size_t>(b)] >= accuracy) {
      return agg_suffix_[static_cast<std::size_t>(b)];
    }
  }
  return std::nullopt;
}

double AttackResult::accuracy_for_mean_loc(double mean_loc) const {
  // agg_suffix_ is non-increasing in the bin index; find the smallest bin
  // (largest LoC) still within the budget.
  for (int b = 0; b < hist_bins_; ++b) {
    if (agg_suffix_[static_cast<std::size_t>(b)] <= mean_loc) {
      return acc_suffix_[static_cast<std::size_t>(b)];
    }
  }
  return 0.0;
}

std::vector<std::pair<double, double>> AttackResult::tradeoff_curve(
    const std::vector<double>& fractions) const {
  std::vector<std::pair<double, double>> out;
  const double n = std::max<std::size_t>(1, per_vpin_.size());
  for (double f : fractions) {
    out.emplace_back(f, accuracy_for_mean_loc(f * n));
  }
  return out;
}

}  // namespace repro::core

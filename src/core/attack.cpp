#include "core/attack.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <stdexcept>

namespace repro::core {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Maintains the top-K candidates by p using a min-heap on p.
void push_top(std::vector<Candidate>& top, int k, const Candidate& c) {
  const auto cmp = [](const Candidate& a, const Candidate& b) {
    return a.p > b.p;  // min-heap on p
  };
  if (static_cast<int>(top.size()) < k) {
    top.push_back(c);
    std::push_heap(top.begin(), top.end(), cmp);
  } else if (!top.empty() && c.p > top.front().p) {
    std::pop_heap(top.begin(), top.end(), cmp);
    top.back() = c;
    std::push_heap(top.begin(), top.end(), cmp);
  }
}

}  // namespace

AttackConfig config_from_name(std::string_view name, std::uint64_t seed) {
  AttackConfig c;
  c.name = std::string(name);
  c.seed = seed;
  std::string_view rest = name;
  if (rest.rfind("RF:", 0) == 0) {
    c.use_random_forest = true;
    rest.remove_prefix(3);
  }
  if (!rest.empty() && rest.back() == 'Y') {
    c.limit_top_direction = true;
    rest.remove_suffix(1);
  }
  if (rest.rfind("ML-", 0) == 0) {
    c.improved = false;
    rest.remove_prefix(3);
  } else if (rest.rfind("Imp-", 0) == 0) {
    c.improved = true;
    rest.remove_prefix(4);
  } else {
    throw std::invalid_argument("unknown attack config: " + c.name);
  }
  if (rest == "7") {
    c.features = FeatureSet::kF7;
  } else if (rest == "9") {
    c.features = FeatureSet::kF9;
  } else if (rest == "11") {
    c.features = FeatureSet::kF11;
  } else {
    throw std::invalid_argument("unknown feature count in config: " + c.name);
  }
  return c;
}

std::optional<double> TrainedModel::predict_pair(const splitmfg::Vpin& a,
                                                 const splitmfg::Vpin& b,
                                                 double distance_scale) const {
  if (!filter.admits(a, b)) return std::nullopt;
  const auto full = pair_features(a, b, distance_scale);
  const std::vector<double> x = project(full, feat_idx);
  return classifier.predict_proba(x);
}

double TrainedModel::scale_for(const splitmfg::SplitChallenge& ch) const {
  if (!config.normalize_distances) return 1.0;
  const auto denom = static_cast<double>(ch.die.width() + ch.die.height());
  return denom > 0 ? 1.0 / denom : 1.0;
}

TrainedModel AttackEngine::train(
    std::span<const splitmfg::SplitChallenge* const> training,
    const AttackConfig& config) {
  TrainedModel model;
  model.config = config;
  model.feat_idx = feature_indices(config.features);

  model.filter = PairFilter{};
  if (config.improved) {
    model.filter.neighborhood =
        neighborhood_radius(training, config.neighborhood_percentile);
  }
  model.filter.limit_top_direction = config.limit_top_direction;
  model.filter.top_metal_horizontal = config.top_metal_horizontal;

  const double t0 = now_seconds();
  SamplingOptions sopt;
  sopt.filter = model.filter;
  sopt.seed = config.seed * 1000003 + 17;
  sopt.normalize_distances = config.normalize_distances;
  ml::Dataset data = make_training_set(training, config.features, sopt);
  if (config.max_train_samples > 0 &&
      data.num_rows() > config.max_train_samples) {
    ml::Dataset sub(std::vector<std::string>(
        data.feature_names().begin(), data.feature_names().end()));
    std::vector<int> rows(static_cast<std::size_t>(data.num_rows()));
    for (int r = 0; r < data.num_rows(); ++r) {
      rows[static_cast<std::size_t>(r)] = r;
    }
    std::mt19937_64 rng(config.seed * 31337 + 5);
    std::shuffle(rows.begin(), rows.end(), rng);
    rows.resize(static_cast<std::size_t>(config.max_train_samples));
    for (int r : rows) sub.add_row(data.row(r), data.label(r));
    data = std::move(sub);
  }
  model.num_train_samples = data.num_rows();

  ml::BaggingOptions bopt =
      config.use_random_forest
          ? ml::BaggingOptions::random_forest(data.num_features(),
                                              config.seed)
          : ml::BaggingOptions::reptree_bagging(config.seed);
  model.classifier = ml::BaggingClassifier::train(data, bopt);
  model.train_seconds = now_seconds() - t0;
  return model;
}

AttackResult AttackEngine::test(const TrainedModel& model,
                                const splitmfg::SplitChallenge& challenge) {
  const double t0 = now_seconds();
  AttackResult result(challenge.design_name, challenge.split_layer,
                      model.config.hist_bins);
  auto& per_vpin = result.mutable_per_vpin();
  per_vpin.resize(static_cast<std::size_t>(challenge.num_vpins()));
  for (std::size_t i = 0; i < per_vpin.size(); ++i) {
    per_vpin[i].has_match =
        !challenge.vpins[i].matches.empty();
    per_vpin[i].hist.assign(
        static_cast<std::size_t>(model.config.hist_bins), 0);
  }

  const int bins = model.config.hist_bins;
  const auto bin_of = [bins](double p) {
    int b = static_cast<int>(p * bins);
    return std::clamp(b, 0, bins - 1);
  };

  const int n = challenge.num_vpins();
  std::vector<double> x(model.feat_idx.size());

  const double scale = model.scale_for(challenge);
  const auto evaluate_pair = [&](int self, int other) {
    const splitmfg::Vpin& vi = challenge.vpin(self);
    const splitmfg::Vpin& vj = challenge.vpin(other);
    if (!model.filter.admits(vi, vj)) return;
    const auto full = pair_features(vi, vj, scale);
    for (std::size_t k = 0; k < model.feat_idx.size(); ++k) {
      x[k] = full[static_cast<std::size_t>(model.feat_idx[k])];
    }
    const double p = model.classifier.predict_proba(x);
    // Candidate distances stay in raw DBU regardless of feature scaling
    // (the proximity attack reasons about physical distance).
    const auto d = static_cast<float>(
        std::abs(static_cast<double>(vi.pos.x - vj.pos.x)) +
        std::abs(static_cast<double>(vi.pos.y - vj.pos.y)));
    const bool matched = challenge.is_match(self, other);
    for (const auto& [s, o] : {std::pair<int, int>{self, other},
                               std::pair<int, int>{other, self}}) {
      VpinResult& r = per_vpin[static_cast<std::size_t>(s)];
      if (!r.tested) continue;
      ++r.num_evaluated;
      ++r.hist[static_cast<std::size_t>(bin_of(p))];
      push_top(r.top, model.config.top_k,
               Candidate{static_cast<splitmfg::VpinId>(o),
                         static_cast<float>(p), d});
      if (matched && p > r.p_true) {
        r.p_true = static_cast<float>(p);
        r.d_true = d;
      }
    }
  };

  const bool sample_targets =
      model.config.max_test_vpins > 0 && n > model.config.max_test_vpins;
  if (!sample_targets) {
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) evaluate_pair(i, j);
    }
  } else {
    // Evaluate a random subset of targets against every candidate.
    // Per-target results stay exact; aggregate metrics become unbiased
    // estimates over the sampled targets.
    std::vector<int> order(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
    std::mt19937_64 rng(model.config.seed * 7927 + 3);
    std::shuffle(order.begin(), order.end(), rng);
    order.resize(static_cast<std::size_t>(model.config.max_test_vpins));
    for (auto& r : per_vpin) r.tested = false;
    for (int t : order) per_vpin[static_cast<std::size_t>(t)].tested = true;
    std::sort(order.begin(), order.end());
    for (int t : order) {
      for (int j = 0; j < n; ++j) {
        if (j == t) continue;
        // Avoid double-evaluating pairs where both ends are targets.
        if (j < t && per_vpin[static_cast<std::size_t>(j)].tested) continue;
        evaluate_pair(t, j);
      }
    }
  }

  // Sort top-K lists by descending p (ties: ascending distance, then id for
  // determinism).
  for (VpinResult& r : per_vpin) {
    std::sort(r.top.begin(), r.top.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.p != b.p) return a.p > b.p;
                if (a.d != b.d) return a.d < b.d;
                return a.id < b.id;
              });
  }

  result.finalize();
  result.train_seconds = model.train_seconds;
  result.test_seconds = now_seconds() - t0;
  return result;
}

AttackResult AttackEngine::run(
    const splitmfg::SplitChallenge& test_challenge,
    std::span<const splitmfg::SplitChallenge* const> training,
    const AttackConfig& config) {
  const TrainedModel model = train(training, config);
  return test(model, test_challenge);
}

AttackResult::AttackResult(std::string design, int split_layer, int hist_bins)
    : design_(std::move(design)),
      split_layer_(split_layer),
      hist_bins_(hist_bins) {}

int AttackResult::bin_of(double p) const {
  const int b = static_cast<int>(p * hist_bins_);
  return std::clamp(b, 0, hist_bins_ - 1);
}

void AttackResult::finalize() {
  // Aggregate candidate histogram and true-match bins over the tested
  // targets (all v-pins unless max_test_vpins sampling was active).
  std::vector<double> agg(static_cast<std::size_t>(hist_bins_), 0.0);
  std::vector<int> true_bins(static_cast<std::size_t>(hist_bins_), 0);
  num_with_match_ = 0;
  std::size_t num_tested = 0;
  for (const VpinResult& r : per_vpin_) {
    if (!r.tested) continue;
    ++num_tested;
    for (int b = 0; b < hist_bins_; ++b) {
      agg[static_cast<std::size_t>(b)] += r.hist[static_cast<std::size_t>(b)];
    }
    if (r.has_match) {
      ++num_with_match_;
      if (r.p_true >= 0) {
        ++true_bins[static_cast<std::size_t>(bin_of(r.p_true))];
      }
    }
  }
  const double n = std::max<std::size_t>(1, num_tested);
  agg_suffix_.assign(static_cast<std::size_t>(hist_bins_) + 1, 0.0);
  acc_suffix_.assign(static_cast<std::size_t>(hist_bins_) + 1, 0.0);
  const double nm = std::max(1, num_with_match_);
  for (int b = hist_bins_ - 1; b >= 0; --b) {
    agg_suffix_[static_cast<std::size_t>(b)] =
        agg_suffix_[static_cast<std::size_t>(b) + 1] +
        agg[static_cast<std::size_t>(b)] / n;
    acc_suffix_[static_cast<std::size_t>(b)] =
        acc_suffix_[static_cast<std::size_t>(b) + 1] +
        true_bins[static_cast<std::size_t>(b)] / nm;
  }
}

double AttackResult::accuracy_at_threshold(double t) const {
  return acc_suffix_[static_cast<std::size_t>(bin_of(t))];
}

double AttackResult::mean_loc_at_threshold(double t) const {
  return agg_suffix_[static_cast<std::size_t>(bin_of(t))];
}

std::optional<double> AttackResult::mean_loc_for_accuracy(
    double accuracy) const {
  // acc_suffix_ is non-increasing in the bin index; find the highest bin
  // (smallest LoC) still reaching the accuracy.
  for (int b = hist_bins_ - 1; b >= 0; --b) {
    if (acc_suffix_[static_cast<std::size_t>(b)] >= accuracy) {
      return agg_suffix_[static_cast<std::size_t>(b)];
    }
  }
  return std::nullopt;
}

double AttackResult::accuracy_for_mean_loc(double mean_loc) const {
  // agg_suffix_ is non-increasing in the bin index; find the smallest bin
  // (largest LoC) still within the budget.
  for (int b = 0; b < hist_bins_; ++b) {
    if (agg_suffix_[static_cast<std::size_t>(b)] <= mean_loc) {
      return acc_suffix_[static_cast<std::size_t>(b)];
    }
  }
  return 0.0;
}

std::vector<std::pair<double, double>> AttackResult::tradeoff_curve(
    const std::vector<double>& fractions) const {
  std::vector<std::pair<double, double>> out;
  const double n = std::max<std::size_t>(1, per_vpin_.size());
  for (double f : fractions) {
    out.emplace_back(f, accuracy_for_mean_loc(f * n));
  }
  return out;
}

}  // namespace repro::core

#include "core/ranking.hpp"

namespace repro::core {

std::vector<ml::FeatureScore> rank_attack_features(
    std::span<const splitmfg::SplitChallenge* const> challenges,
    double neighborhood_percentile, std::uint64_t seed) {
  SamplingOptions opt;
  opt.filter.neighborhood =
      neighborhood_radius(challenges, neighborhood_percentile);
  opt.seed = seed;
  const ml::Dataset data =
      make_training_set(challenges, FeatureSet::kF11, opt);
  return ml::rank_features(data);
}

}  // namespace repro::core

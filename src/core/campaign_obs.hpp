// Campaign-level observability: the supervisor/reporting side of the
// cross-process telemetry protocol (the worker side lives in
// common/telemetry.hpp).
//
// Three concerns, all pure functions over on-disk artifacts so the
// supervisor (live, in-process state) and `tools/obs_report` (post-hoc
// or concurrent, file-only view) share one implementation:
//
//   * Status: a campaign_status.json document built from per-shard rows.
//     Two renderings — *live* (phases, progress, heartbeat ages, RSS,
//     ETA: everything an operator watches) and *final* (the
//     deterministic subset: shard verdicts, attempt counts, digests,
//     ever-stalled set, counter roll-up). The final rendering is
//     byte-identical across worker and thread counts because every
//     volatile field is omitted and every list is emitted in (layer,
//     fold) order (scripts/check_campaign_obs.sh diffs it at 1/2/8
//     workers).
//
//   * Metrics roll-up: element-wise sum of the shard metrics.json files.
//     Counters and histogram buckets are commutative sums, so the
//     roll-up inherits the registry's thread-count invariance; scalar
//     members that render as non-integers (gauges) are dropped — a
//     last-write gauge has no meaningful cross-process sum. The digest
//     is FNV-1a over the rendered roll-up JSON.
//
//   * Trace merge: per-shard Chrome traces stitched into one campaign
//     timeline, shard -> pid track (pid = index in the given order,
//     which callers fix to (layer, fold)), with process_name metadata
//     events naming each track. Numeric fields are re-emitted from
//     their raw source tokens, never re-formatted through a double, so
//     merging logical-time traces is byte-stable.
//
// Stall semantics (used by the supervisor and by scan_campaign_dir):
// a running shard is *stalled* when its telemetry progress value has
// not advanced for stall_after_s seconds. Progress is the sum of all
// obs counters, so this catches both a frozen process (no records at
// all — REPRO_FAULT=hang parks the main thread inside a commit while
// the heartbeat thread keeps beating) and a busy-looping one; a merely
// slow worker keeps bumping counters and is never flagged.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/obs.hpp"
#include "common/status.hpp"
#include "common/telemetry.hpp"

namespace repro::core {

/// One shard's row in the status document.
struct ShardObsRow {
  std::string id;
  int layer = 0;
  std::int64_t fold = 0;
  std::string status;  ///< "pending" | "running" | "ok" | "quarantined"
  int attempts = 0;
  bool degraded = false;
  std::uint64_t digest = 0;       ///< 0 unless ok
  bool has_telemetry = false;
  common::obs::TelemetryRecord last;  ///< most recent telemetry record
  double heartbeat_age_s = -1;    ///< since last record; <0 = unknown
  double progress_age_s = -1;     ///< since progress last advanced
  bool stalled = false;
  double advance_t = 0;       ///< absolute time progress last advanced
  bool ever_stalled = false;  ///< persisted "stalled" flag from the table
};

/// Remote-dispatch roll-up for a campaign running with --remote: the
/// client-side counters fleet health is judged by. Lives here (not in
/// campaign.hpp) because the status document, the campaign.json state
/// table, and obs_report's Prometheus text all carry it.
struct RemoteDispatchStats {
  std::uint64_t requests = 0;         ///< /shard HTTP attempts issued
  std::uint64_t retries = 0;          ///< same-endpoint backoff retries
  std::uint64_t failovers = 0;        ///< endpoint switches after failure
  std::uint64_t breaker_trips = 0;    ///< closed -> open transitions
  std::uint64_t local_fallbacks = 0;  ///< shards run locally (fleet down)
  std::uint64_t remote_ok = 0;        ///< shards completed remotely

  bool any() const {
    return requests != 0 || retries != 0 || failovers != 0 ||
           breaker_trips != 0 || local_fallbacks != 0 || remote_ok != 0;
  }
};

/// One endpoint's health row in the status document.
struct RemoteEndpointObs {
  std::string label;  ///< "host:port"
  std::string state;  ///< "closed" | "open" | "half_open"
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
};

struct CampaignObsSnapshot {
  bool finished = false;  ///< no shard pending or running
  bool complete = false;  ///< every shard ok
  int shards_total = 0;
  int shards_ok = 0;
  int shards_running = 0;
  int shards_pending = 0;
  int shards_quarantined = 0;
  std::vector<ShardObsRow> rows;            ///< (layer, fold) order
  std::vector<std::string> stalled_shards;  ///< ever stalled, row order
  std::string rollup_json;                  ///< "" when unavailable
  std::uint64_t rollup_digest = 0;
  std::vector<common::obs::MetricSnapshot> rollup_metrics;
  double elapsed_s = -1;  ///< supervisor wall clock; <0 = unknown
  double eta_s = -1;      ///< naive remaining/done extrapolation
  double first_t = 0;     ///< earliest telemetry record time; 0 = none
  /// Remote dispatch (campaigns run with --remote only; local campaigns
  /// omit the whole block so their final documents stay byte-identical
  /// to pre-remote renderings).
  bool remote = false;
  RemoteDispatchStats remote_stats;
  std::vector<RemoteEndpointObs> remote_endpoints;
};

/// Renders the status document. `final_mode` drops every volatile field
/// (ages, RSS, progress, ETA) so the output is run-to-run deterministic.
std::string render_campaign_status(const CampaignObsSnapshot& snap,
                                   bool final_mode);

/// Element-wise sum of shard metrics files (paths in shard order).
/// Missing files fail (the caller passes only ok shards); malformed
/// content fails. Histogram edge mismatches between shards fail — they
/// mean the shards did not run the same code.
struct MetricsRollup {
  std::string json;           ///< metrics_json-shaped roll-up
  std::uint64_t digest = 0;   ///< FNV-1a over `json`
  int shards = 0;
  std::vector<common::obs::MetricSnapshot> metrics;
};
common::StatusOr<MetricsRollup> rollup_shard_metrics(
    const std::vector<std::string>& metrics_paths);

/// Stitches per-shard Chrome trace files into one timeline. `shards` is
/// (shard id, trace path) in presentation order; entry i becomes pid i
/// with a process_name metadata event. Missing files fail.
common::StatusOr<std::string> merge_shard_traces(
    const std::vector<std::pair<std::string, std::string>>& shards);

/// Builds a snapshot purely from a campaign directory: campaign.json
/// for the shard table, shards/<id>/telemetry.jsonl for live telemetry,
/// shards/<id>/metrics.json for the roll-up (only when every shard is
/// ok). This is obs_report's path — it needs no supervisor cooperation
/// beyond the files the campaign already writes, so it works on a live
/// campaign and on a post-mortem directory alike.
common::StatusOr<CampaignObsSnapshot> scan_campaign_dir(
    const std::string& campaign_dir, double stall_after_s);

/// Prometheus text exposition of a snapshot: campaign_shards_* gauges,
/// per-shard campaign_shard_progress, and the roll-up metrics under the
/// "campaign_" prefix.
std::string campaign_prometheus_text(const CampaignObsSnapshot& snap);

/// Recomputes the age-dependent fields of a cached snapshot against
/// `now_s` (wall clock, seconds): heartbeat/progress ages, the stalled
/// flags and list, elapsed and ETA. The snapshot stores the *absolute*
/// times they derive from (last.t, advance_t, first_t), so a snapshot
/// served from cache stays as fresh as a rescan for everything except
/// new file content.
void refresh_volatile(CampaignObsSnapshot* snap, double now_s,
                      double stall_after_s);

/// Change-detecting cache around scan_campaign_dir, for serve loops
/// that are scraped every second: a scan re-reads campaign.json plus
/// every shard's whole telemetry.jsonl, so per-request scanning is
/// quadratic over a campaign's lifetime. poll() fingerprints the
/// watched files (size, mtime, inode — campaign.json and each shard's
/// telemetry.jsonl / metrics.json) and rescans only when one changed,
/// otherwise serving the cached snapshot with refresh_volatile applied.
/// A write that races a scan is caught on the poll after it finishes
/// touching the file. Thread-safe: handlers on multiple server threads
/// may poll concurrently.
class CampaignWatcher {
 public:
  CampaignWatcher(std::string campaign_dir, double stall_after_s)
      : dir_(std::move(campaign_dir)), stall_after_s_(stall_after_s) {}

  /// Current snapshot (cached or rescanned; see class comment).
  common::StatusOr<CampaignObsSnapshot> poll();

  struct Stats {
    std::uint64_t polls = 0;
    std::uint64_t rescans = 0;  ///< polls that re-read the directory
    std::uint64_t reused = 0;   ///< polls served from the cache
  };
  Stats stats() const;

 private:
  struct Fingerprint {
    std::string path;
    bool exists = false;
    std::int64_t size = -1;
    std::int64_t mtime_ns = -1;
    std::uint64_t ino = 0;
    bool operator==(const Fingerprint&) const = default;
  };
  static Fingerprint fingerprint(std::string path);

  const std::string dir_;
  const double stall_after_s_;
  mutable std::mutex mutex_;
  bool have_ = false;
  CampaignObsSnapshot cached_;
  std::vector<Fingerprint> watched_;
  Stats stats_;
};

}  // namespace repro::core

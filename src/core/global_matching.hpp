// Global matching attack - an extension the paper points at but does not
// build (SSII-B: "attackers could combine them ... for even better
// performance"; [13] solves a network-flow matching).
//
// The plain proximity attack decides each v-pin independently, so two
// target v-pins can happily claim the same candidate even though BEOL
// connections are (mostly) one-to-one. This module adds the global
// consistency constraint: v-pin pairs are matched greedily in order of
// decreasing classifier probability (ties: increasing distance), each
// v-pin participating in at most `capacity` chosen pairs. This is the
// classic 1/2-approximation to maximum-weight matching - O(E log E), which
// is what makes it usable at the scale where [13]'s exact flow models give
// up (the paper's own criticism).
#pragma once

#include "core/attack.hpp"

namespace repro::core {

struct GlobalMatchingOptions {
  /// Maximum chosen partners per v-pin (BEOL links are usually 1:1; a
  /// multi-fanout net can justify 2).
  int capacity = 1;
  /// Candidate pairs below this probability are never matched.
  double min_probability = 0.0;
};

struct GlobalMatchingResult {
  /// chosen[v] = partners assigned to v (possibly empty).
  std::vector<std::vector<splitmfg::VpinId>> chosen;
  /// Fraction of v-pins (with ground truth) whose assignment contains a
  /// true match - comparable to the PA success rate.
  double success_rate = 0;
  long num_pairs_considered = 0;
};

/// Runs greedy global matching over the candidate lists of a tested
/// design. `result` must come from testing `challenge` (its top-K lists
/// supply the candidate edges).
GlobalMatchingResult global_matching_attack(
    const AttackResult& result, const splitmfg::SplitChallenge& challenge,
    const GlobalMatchingOptions& opt = {});

}  // namespace repro::core

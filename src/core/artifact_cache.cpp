#include "core/artifact_cache.hpp"

namespace repro::core {

std::size_t estimate_ensemble_bytes(const CachedEnsemble& e) {
  // Storage model: the FlatForest keeps ~5 SoA arrays per node
  // (feature i32, threshold f64, kids/left/right i32, probability f64,
  // plus the BFS-packed AVX2 mirror of the same), and the
  // BaggingClassifier keeps the equivalent pointer trees it was built
  // from. ~96 bytes/node covers both with headroom; the constant floor
  // covers per-tree vectors and the struct itself.
  const std::size_t nodes =
      static_cast<std::size_t>(e.forest.num_nodes() > 0
                                   ? e.forest.num_nodes()
                                   : 1);
  return nodes * 96 + 4096;
}

std::shared_ptr<const CachedEnsemble> ArtifactCache::get(
    std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  return it->second->second;
}

void ArtifactCache::put(std::uint64_t key,
                        std::shared_ptr<const CachedEnsemble> entry) {
  if (capacity_ == 0 || entry == nullptr) return;
  const std::size_t add =
      entry->bytes > 0 ? entry->bytes : estimate_ensemble_bytes(*entry);
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    bytes_ -= it->second->second->bytes > 0
                  ? it->second->second->bytes
                  : estimate_ensemble_bytes(*it->second->second);
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  bytes_ += add;
  ++inserts_;
  // Evict from the cold end, but never the entry just touched: one
  // oversized ensemble must still be servable.
  while (bytes_ > capacity_ && lru_.size() > 1) {
    const auto& [old_key, old_entry] = lru_.back();
    bytes_ -= old_entry->bytes > 0 ? old_entry->bytes
                                   : estimate_ensemble_bytes(*old_entry);
    index_.erase(old_key);
    lru_.pop_back();
    ++evictions_;
  }
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.inserts = inserts_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.capacity_bytes = capacity_;
  return s;
}

}  // namespace repro::core

#include "core/reconstruction.hpp"

#include <algorithm>
#include <map>

namespace repro::core {

namespace {

/// Union-find over v-pin ids.
class UF {
 public:
  explicit UF(int n) : parent_(static_cast<std::size_t>(n)) {
    for (int i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    parent_[static_cast<std::size_t>(find(a))] = find(b);
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

std::vector<std::vector<splitmfg::VpinId>> picks_to_chosen(
    const std::vector<splitmfg::VpinId>& picks) {
  std::vector<std::vector<splitmfg::VpinId>> chosen(picks.size());
  for (std::size_t v = 0; v < picks.size(); ++v) {
    if (picks[v] != splitmfg::kInvalidVpin) {
      chosen[v].push_back(picks[v]);
    }
  }
  return chosen;
}

ReconstructionReport score_reconstruction(
    const splitmfg::SplitChallenge& challenge,
    const std::vector<std::vector<splitmfg::VpinId>>& chosen) {
  ReconstructionReport rep;
  const int n = challenge.num_vpins();

  // Pair-level precision / recall (unordered pairs).
  long true_pairs = challenge.num_matching_pairs();
  for (int v = 0; v < n && v < static_cast<int>(chosen.size()); ++v) {
    for (splitmfg::VpinId m : chosen[static_cast<std::size_t>(v)]) {
      if (m <= v) continue;  // count each unordered pair once
      ++rep.guessed_pairs;
      if (challenge.is_match(v, m)) ++rep.correct_pairs;
    }
  }
  // `chosen` is symmetric when produced by global matching; make the count
  // robust to one-sided (PA-style) inputs by also counting v > m pairs
  // whose mirror was absent.
  for (int v = 0; v < n && v < static_cast<int>(chosen.size()); ++v) {
    for (splitmfg::VpinId m : chosen[static_cast<std::size_t>(v)]) {
      if (m >= v) continue;
      const auto& mirror = chosen[static_cast<std::size_t>(m)];
      if (std::find(mirror.begin(), mirror.end(),
                    static_cast<splitmfg::VpinId>(v)) == mirror.end()) {
        ++rep.guessed_pairs;
        if (challenge.is_match(v, m)) ++rep.correct_pairs;
      }
    }
  }
  rep.precision = rep.guessed_pairs > 0
                      ? static_cast<double>(rep.correct_pairs) /
                            static_cast<double>(rep.guessed_pairs)
                      : 0.0;
  rep.recall = true_pairs > 0 ? static_cast<double>(rep.correct_pairs) /
                                    static_cast<double>(true_pairs)
                              : 0.0;

  // Net-level recovery: components under guessed vs true pairing must
  // coincide for every v-pin of the net.
  UF guessed(n), truth(n);
  for (int v = 0; v < n; ++v) {
    for (splitmfg::VpinId m : challenge.vpin(v).matches) truth.unite(v, m);
    if (v < static_cast<int>(chosen.size())) {
      for (splitmfg::VpinId m : chosen[static_cast<std::size_t>(v)]) {
        guessed.unite(v, m);
      }
    }
  }
  // Group v-pins by net; a net is recovered iff the partition of its
  // v-pins agrees AND no foreign v-pin joined any of its components.
  std::map<netlist::NetId, std::vector<int>> by_net;
  for (int v = 0; v < n; ++v) by_net[challenge.vpin(v).net].push_back(v);
  // Size of each guessed/true component (to detect foreign members).
  std::map<int, int> gsize, tsize;
  for (int v = 0; v < n; ++v) {
    ++gsize[guessed.find(v)];
    ++tsize[truth.find(v)];
  }
  for (auto& [net, vpins] : by_net) {
    ++rep.cut_nets;
    bool ok = true;
    for (std::size_t i = 0; i < vpins.size() && ok; ++i) {
      const int g = guessed.find(vpins[i]);
      const int t = truth.find(vpins[i]);
      // Components must pair up with equal sizes; since all of this net's
      // true components consist of this net's v-pins only, equal size plus
      // agreement on every member implies no foreign v-pin.
      if (gsize[g] != tsize[t]) ok = false;
      for (std::size_t j = i + 1; j < vpins.size() && ok; ++j) {
        const bool same_g = guessed.find(vpins[j]) == g;
        const bool same_t = truth.find(vpins[j]) == t;
        if (same_g != same_t) ok = false;
      }
    }
    rep.recovered_nets += ok;
  }
  rep.net_recovery_rate =
      rep.cut_nets > 0
          ? static_cast<double>(rep.recovered_nets) / rep.cut_nets
          : 0.0;
  return rep;
}

}  // namespace repro::core

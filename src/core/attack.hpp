// The machine-learning attack engine (paper SSIII).
//
// A model configuration (ML-9 / Imp-9 / Imp-7 / Imp-11, optional Y suffix,
// optional RandomForest base classifier) is trained on the challenges of
// the N-1 training designs and tested on the held-out design. Testing
// evaluates every admissible unordered v-pin pair, records the soft-voting
// probability p(v, v') per pair, and aggregates per target v-pin:
//   * a histogram of p over its candidates (for LoC-size control, SSIII-F),
//   * the probability/distance of its true match (for accuracy),
//   * a bounded top-K candidate list (for the proximity attack, SSIII-H).
#pragma once

#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancel.hpp"
#include "core/sampling.hpp"
#include "ml/bagging.hpp"

namespace repro::core {

struct AttackConfig {
  std::string name = "Imp-9";
  FeatureSet features = FeatureSet::kF9;
  /// Imp variants: restrict training samples and tested pairs to the
  /// neighbourhood (SSIII-D).
  bool improved = true;
  double neighborhood_percentile = 0.90;
  /// Y variants: zero distance in the top-metal routing direction
  /// (SSIII-G; only meaningful at the highest via layer).
  bool limit_top_direction = false;
  bool top_metal_horizontal = true;
  /// Swap the Bagging(REPTree) classifier for Weka-style RandomForest
  /// (the authors' earlier configuration [18], Table II).
  bool use_random_forest = false;

  /// Extension (not in the paper): scale all distance/wirelength features
  /// by 1/(die width + die height) so that models transfer across designs
  /// of different sizes (cf. the normalized axes of Fig. 4).
  bool normalize_distances = false;

  int hist_bins = 512;
  int top_k = 512;
  /// If > 0 and the design has more v-pins than this, testing evaluates a
  /// random subset of *target* v-pins against all candidates. Per-target
  /// LoC statistics stay exact; averages over targets are unbiased
  /// estimates of the full run. 0 = evaluate every v-pin (paper-exact).
  int max_test_vpins = 0;
  /// If > 0, the balanced training set is randomly subsampled to at most
  /// this many rows before training (tens of thousands of balanced samples
  /// saturate an 11-feature tree ensemble). 0 = use everything.
  int max_train_samples = 0;
  /// Enumerate test candidates through the spatial CandidateIndex
  /// (output-sensitive, the default) instead of the brute-force all-pairs
  /// scan. Results are bit-identical either way — the flag exists for the
  /// differential equivalence test and for benchmarking the index.
  bool use_candidate_index = true;
  /// If > 0, caps the ensemble at this many trees (the first rung of the
  /// budget degradation ladder, core/resilience.hpp). 0 = the preset's
  /// default count (10 for bagged REPTrees, 100 for RandomForest).
  int max_trees = 0;
  std::uint64_t seed = 1;
};

/// Parses configuration names used throughout the paper: "ML-9", "Imp-9",
/// "Imp-7", "Imp-11", with optional "Y" suffix ("Imp-11Y") and optional
/// "RF:" prefix for the RandomForest base classifier ("RF:Imp-7").
AttackConfig config_from_name(std::string_view name, std::uint64_t seed = 1);

/// One candidate of a target v-pin.
struct Candidate {
  splitmfg::VpinId id = splitmfg::kInvalidVpin;
  float p = 0;  ///< soft-voting probability
  float d = 0;  ///< ManhattanVpin distance
};

namespace detail {

/// Histogram bin of probability p under `bins` equal-width bins over
/// [0, 1]: floor(p * bins), with p <= 0 in the first bin and p >= 1 in the
/// last. NaN lands in bin 0 — a defensive guard (the ensemble averages
/// finite leaf probabilities, so it cannot produce NaN itself), because
/// casting NaN to int is undefined behaviour and would otherwise corrupt
/// an arbitrary bin. Shared by AttackEngine's scoring loop,
/// AttackResult's threshold queries, and the two-level attack.
inline int bin_index(double p, int bins) {
  if (std::isnan(p) || p <= 0.0) return 0;
  if (p >= 1.0) return bins - 1;
  return static_cast<int>(p * bins);
}

/// Strict total "display order" on candidates: higher p first, ties by
/// nearer distance, then lower id. Both the top-K maintenance and the
/// final per-target sort use this order, so the selected top-K set (not
/// just its final sorting) is independent of evaluation order — the
/// property that makes parallel and serial scoring bit-identical.
inline bool candidate_before(const Candidate& a, const Candidate& b) {
  if (a.p != b.p) return a.p > b.p;
  if (a.d != b.d) return a.d < b.d;
  return a.id < b.id;
}

/// Maintains the top-K candidates under candidate_before using a bounded
/// heap whose front is the currently-worst kept candidate.
void push_top(std::vector<Candidate>& top, int k, const Candidate& c);

}  // namespace detail

/// Per-target-v-pin test outcome.
struct VpinResult {
  bool tested = true;       ///< false if skipped by max_test_vpins sampling
  bool has_match = false;   ///< ground truth exists
  float p_true = -1.0f;     ///< max p over evaluated true matches (-1: none)
  float d_true = 0;
  int num_evaluated = 0;
  std::vector<std::uint32_t> hist;  ///< candidate count per p bin
  std::vector<Candidate> top;       ///< up to top_k candidates, desc by p
};

/// A trained model, reusable across test designs (and by the two-level
/// pruning / PA validation procedures).
struct TrainedModel {
  AttackConfig config;
  std::vector<int> feat_idx;
  PairFilter filter;
  ml::BaggingClassifier classifier;
  int num_train_samples = 0;
  double train_seconds = 0;   ///< sample_seconds + fit_seconds
  double sample_seconds = 0;  ///< pair sampling / training-set assembly
  double fit_seconds = 0;     ///< classifier training

  /// p(v, v') for an admissible pair; nullopt if the pair is filtered out
  /// (illegal / outside neighbourhood / violates the top-direction limit).
  /// `distance_scale` must match the convention the model was trained
  /// with (1.0 unless config.normalize_distances).
  std::optional<double> predict_pair(const splitmfg::Vpin& a,
                                     const splitmfg::Vpin& b,
                                     double distance_scale = 1.0) const;

  /// The feature scale to use for a given challenge under this model's
  /// configuration.
  double scale_for(const splitmfg::SplitChallenge& ch) const;
};

/// The aggregated result of testing one design.
class AttackResult {
 public:
  AttackResult(std::string design, int split_layer, int hist_bins);

  const std::string& design() const { return design_; }
  int split_layer() const { return split_layer_; }
  int num_vpins() const { return static_cast<int>(per_vpin_.size()); }
  const std::vector<VpinResult>& per_vpin() const { return per_vpin_; }
  std::vector<VpinResult>& mutable_per_vpin() { return per_vpin_; }

  double test_seconds = 0;
  double train_seconds = 0;
  /// True if scoring was cut short by a CancelToken: some targets were
  /// never evaluated, so the aggregates are partial. Interrupted results
  /// must not be checkpointed (which targets ran is timing-dependent).
  bool interrupted = false;

  /// Finalizes aggregate statistics; must be called after per_vpin_ is
  /// filled (AttackEngine does this).
  void finalize();

  /// Classification accuracy at probability threshold t: fraction of
  /// v-pins (with ground truth) whose true match is in the LoC.
  double accuracy_at_threshold(double t) const;
  /// Mean LoC size at threshold t.
  double mean_loc_at_threshold(double t) const;
  /// Mean LoC size needed to reach `accuracy` (smallest over thresholds);
  /// nullopt if the accuracy is unreachable (saturation, Table IV dashes).
  std::optional<double> mean_loc_for_accuracy(double accuracy) const;
  /// Accuracy when the mean LoC size is (at most) `mean_loc`.
  double accuracy_for_mean_loc(double mean_loc) const;
  /// (LoC fraction, accuracy) curve over the given fractions (Fig. 9).
  std::vector<std::pair<double, double>> tradeoff_curve(
      const std::vector<double>& fractions) const;
  /// Maximum reachable accuracy (threshold -> 0); < 1 when the
  /// neighbourhood excludes some true matches (the saturation plateau).
  double max_accuracy() const { return accuracy_at_threshold(0.0); }

  int hist_bins() const { return hist_bins_; }

 private:
  int bin_of(double p) const;

  std::string design_;
  int split_layer_ = 0;
  int hist_bins_ = 0;
  std::vector<VpinResult> per_vpin_;
  // Aggregates (built by finalize()).
  std::vector<double> agg_suffix_;       ///< mean LoC at bin threshold b
  std::vector<double> acc_suffix_;       ///< accuracy at bin threshold b
  int num_with_match_ = 0;
};

class AttackEngine {
 public:
  /// Trains a model on the given challenges (leave-one-out callers pass the
  /// N-1 training designs).
  static TrainedModel train(
      std::span<const splitmfg::SplitChallenge* const> training,
      const AttackConfig& config);

  /// Tests a trained model on one challenge. With a cancel token the
  /// scoring loop is cooperative: cancellation stops it between targets
  /// and marks the result `interrupted` (partial, not checkpointable).
  static AttackResult test(const TrainedModel& model,
                           const splitmfg::SplitChallenge& challenge,
                           const common::CancelToken* cancel = nullptr);

  /// Same, scoring through a caller-provided flattened ensemble (which
  /// must be FlatForest::build(model.classifier)). The overload above
  /// rebuilds the forest per call — fine for batch runs, wasted work for
  /// a server answering repeat requests from a warm model cache.
  static AttackResult test(const TrainedModel& model,
                           const ml::FlatForest& forest,
                           const splitmfg::SplitChallenge& challenge,
                           const common::CancelToken* cancel = nullptr);

  /// Convenience: train + test.
  static AttackResult run(
      const splitmfg::SplitChallenge& test_challenge,
      std::span<const splitmfg::SplitChallenge* const> training,
      const AttackConfig& config);
};

}  // namespace repro::core

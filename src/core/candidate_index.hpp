// Spatial v-pin index for output-sensitive candidate generation.
//
// Every consumer of v-pin pairs in this repo (attack scoring, training-set
// sampling, PA validation, two-level pruning) used to enumerate all O(n^2)
// ordered pairs and reject most of them through PairFilter::admits — a
// Manhattan-radius plus same-row/column test that a spatial index can
// answer directly. The CandidateIndex makes the enumeration cost
// proportional to the number of *admitted* candidates instead:
//
//   * a uniform grid over the die, bucketed by v-pin position, answers
//     the Manhattan-ball query of the Imp neighbourhood restriction
//     (within_radius);
//   * per-coordinate sorted tracks answer the same-row / same-column
//     query of the Y-variant top-direction restriction (same_track).
//
// Determinism contract: every query returns candidate ids in ascending-id
// order, the same order the brute-force `for (j = 0; j < n; ++j)` loop
// visits them. The grid is only a *superset* pre-filter — candidates are
// collected from the touched buckets, checked against the exact same
// double-precision PairFilter::admits predicate the brute-force path
// uses, and then sorted by id. Bucket geometry (bin size, visit order)
// therefore cannot leak into results: AttackResult digests are
// bit-identical between brute-force and indexed enumeration at any
// thread count. tests/test_candidate_index.cpp locks this in.
//
// The admits predicate is evaluated from compact per-v-pin records
// (x, y, drives flag) the index keeps in both id order and bucket order,
// not from the ~150-byte Vpin structs: candidate scanning is limited by
// memory bandwidth, and the compact layout moves ~6x fewer bytes per
// scanned candidate. The records reproduce admits exactly — the drives
// flag is legal_pair's only input, and the Manhattan term is computed as
// the same |dx| + |dy| double sum as manhattan_vpin. When the query ball
// covers most of the grid anyway (small dies, wide neighbourhood radii),
// collect() skips the buckets and scans the id-ordered records directly,
// which also makes the canonical-order sort a no-op.
//
// The index is built once per SplitChallenge (O(n) time and memory,
// instrumented as the "index.build" span) and is immutable afterwards,
// so concurrent queries from the scoring workers need no locks.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sampling.hpp"
#include "splitmfg/split.hpp"

namespace repro::core {

class CandidateIndex {
 public:
  /// Builds the grid and track indexes over `ch.vpins`. The challenge
  /// must outlive the index.
  explicit CandidateIndex(const splitmfg::SplitChallenge& ch);

  int num_vpins() const { return n_; }

  /// Appends to `out` every candidate id w != v with
  /// `filter.admits(vpin(v), vpin(w))`, in ascending-id order — exactly
  /// the ids the brute-force scan admits, at a cost proportional to the
  /// v-pins inside the query region rather than n. Returns the number of
  /// candidates *scanned* (visited before the admits check), the
  /// output-sensitivity measure surfaced as index.candidates_scanned.
  std::size_t collect(splitmfg::VpinId v, const PairFilter& filter,
                      std::vector<splitmfg::VpinId>& out) const;

  /// Ids w != v with ManhattanVpin(v, w) <= r, ascending. The Manhattan
  /// ball of the neighbourhood restriction; legality is NOT applied.
  std::vector<splitmfg::VpinId> within_radius(splitmfg::VpinId v,
                                              double r) const;

  /// Ids w != v on the same track as v — same y when the top metal runs
  /// horizontally, same x otherwise — ascending. The top-direction
  /// restriction of the Y variants; legality is NOT applied.
  std::vector<splitmfg::VpinId> same_track(splitmfg::VpinId v,
                                           bool top_metal_horizontal) const;

 private:
  /// Compact projection of a Vpin: everything PairFilter::admits reads.
  struct Rec {
    geom::Dbu x = 0;
    geom::Dbu y = 0;
    bool drv = false;  ///< Vpin::drives(); legal_pair's only input
  };

  struct TrackEntry {
    geom::Dbu coord;        ///< y (horizontal top metal) or x (vertical)
    geom::Dbu other;        ///< the complementary coordinate
    bool drv = false;
    splitmfg::VpinId id;
    friend bool operator<(const TrackEntry& a, const TrackEntry& b) {
      return a.coord != b.coord ? a.coord < b.coord : a.id < b.id;
    }
  };

  std::size_t collect_all(splitmfg::VpinId v, const PairFilter& filter,
                          std::vector<splitmfg::VpinId>& out) const;
  std::size_t collect_ball(splitmfg::VpinId v, const PairFilter& filter,
                           std::vector<splitmfg::VpinId>& out) const;
  std::size_t collect_track(splitmfg::VpinId v, const PairFilter& filter,
                            std::vector<splitmfg::VpinId>& out) const;

  int cell_x(geom::Dbu x) const;
  int cell_y(geom::Dbu y) const;

  const splitmfg::SplitChallenge* ch_ = nullptr;
  int n_ = 0;

  // Uniform grid in CSR layout: ids of bucket (cx, cy) are
  // bucket_ids_[bucket_start_[cy*nx_+cx] .. bucket_start_[cy*nx_+cx+1]),
  // ascending within each bucket (filled in id order). bucket_recs_ is
  // aligned with bucket_ids_; recs_ is the same data in id order for the
  // flat scans of collect_all and the dense-ball fallback.
  geom::Dbu bin_ = 1;
  geom::Dbu origin_x_ = 0, origin_y_ = 0;
  int nx_ = 1, ny_ = 1;
  std::vector<std::int32_t> bucket_start_;
  std::vector<splitmfg::VpinId> bucket_ids_;
  std::vector<Rec> bucket_recs_;

  // Id-ordered SoA mirror of the records for the flat scans. Coordinates
  // are pre-converted to double (exact below 2^53 DBU, i.e. any physical
  // die) so the inner loop is pure double arithmetic plus a 0/1 legality
  // byte — branchless and auto-vectorizable.
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<std::uint8_t> drv_;

  // Track indexes: v-pins sorted by (x, id) and (y, id); equal_range on a
  // coordinate yields the track's ids already in ascending-id order.
  std::vector<TrackEntry> by_x_;
  std::vector<TrackEntry> by_y_;

  // SoA mirrors of by_x_/by_y_ in the same sorted order, so the track
  // scan can run as a contiguous range-compare over doubles plus a
  // compress-emit of the admitted i32 ids (see scan_track_avx2 in
  // candidate_index.cpp). The complementary coordinate is pre-converted
  // to double — exact below 2^53 DBU — so |a.other - w.other| matches
  // the scalar int64-subtract-then-convert expression bit for bit.
  std::vector<double> tx_other_, ty_other_;
  std::vector<std::uint8_t> tx_drv_, ty_drv_;
  std::vector<splitmfg::VpinId> tx_id_, ty_id_;
};

}  // namespace repro::core

// The attack-as-a-service layer behind tools/split_attack_server: route
// logic, model cache, persistent store, and budget admission — all the
// daemon's behaviour except the socket loop (common/http owns that), so
// tests and the bench drive it in-process.
//
// Request lifecycle (POST /score {"layer", "fold", "config", ...}):
//
//   1. Admission. Under the common::Budget ladder: kExceeded answers
//      503 immediately (the server is out of wall-clock or RSS budget);
//      soft/hard pressure instead applies the standard degradation
//      ladder to the request's config — degraded work is admitted, and
//      because the degraded config changes attack_run_key, its results
//      can never be served from (or to) a full-fidelity cache slot.
//   2. Key. The fold's model is identified by attack_run_key over the
//      layer's full challenge suite and the effective config, mixed
//      with the fold index — the same fingerprint discipline the
//      checkpoint/campaign layers use, so "the same computation" has
//      one name across the batch CLI, the store, and this cache.
//   3. Hydration. Cache hit: score immediately ("cache":"hit"). Miss:
//      a per-key singleflight lock collapses concurrent identical
//      requests into one hydration, which loads the CRC-sealed model
//      artifact from the checkpoint store if present ("store") and
//      trains otherwise ("trained", writing the artifact back). Either
//      way the ensemble is flattened to a FlatForest once, at insert.
//   4. Scoring. AttackEngine::test through the prebuilt forest, under
//      common::ScopedInline: handler threads each score serially, and
//      request concurrency comes from the server's thread pool — the
//      deterministic parallel layer is single-caller by contract, and
//      inline execution is bit-identical by construction, so server
//      digests match batch `split_attack` at any thread count.
//
// POST /shard {"layer", "fold", "config"} is the remote-campaign work
// unit: it runs one LOO fold end to end and answers with the CRC-sealed
// result artifact bytes (the exact payload save_result produces — what a
// local worker would have written into its shard checkpoint), stamped
// with X-Run-Key / X-Result-Digest / X-Payload-Fnv headers so the client
// can place and verify the artifact without decoding it. Shard execution
// is idempotent by construction: results are stored under their
// fold/config fingerprint (in memory and, when store_dir is set, in the
// persistent store as "result_<hex16>"), so a client retrying after a
// torn response is answered from the store — the fold is never trained
// twice (X-Result-Source: computed | memory | store, with counters for
// tests). /shard never degrades under budget pressure: a degraded result
// would silently break the byte-identical-digest contract with the
// monolithic CLI, so pressure short of kExceeded runs at full fidelity
// and kExceeded answers 503 + Retry-After like /score.
//
// GET /status reports suites, cache and store state as JSON; /metrics
// exports the obs registry (Prometheus text, with the histogram _sum
// series) plus cache hit/miss/evict and request counters; /healthz is
// a liveness probe.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/checkpoint.hpp"
#include "common/http.hpp"
#include "core/artifact_cache.hpp"
#include "core/cross_validation.hpp"

namespace repro::core {

class AttackService {
 public:
  struct Options {
    std::size_t cache_bytes = 256u << 20;  ///< warm-model LRU capacity
    std::string store_dir;      ///< "" = no persistent model store
    double default_threshold = 0.5;
    common::Budget* budget = nullptr;       ///< admission ladder (opt.)
    common::CancelToken* cancel = nullptr;  ///< shutdown drain (opt.)
  };

  /// `suites`: one leave-one-out challenge suite per split layer. The
  /// service copies nothing — suites are immutable for its lifetime.
  /// Opens the checkpoint store when store_dir is set (taking its
  /// exclusive flock; a second server on the same store fails fast).
  static common::StatusOr<std::unique_ptr<AttackService>> create(
      std::map<int, ChallengeSuite> suites, Options opt);

  /// The http::Server handler: routes the request. Thread-safe.
  common::http::Response handle(const common::http::Request& req);

  /// Cache counters, for tests and the tool's shutdown summary.
  ArtifactCache::Stats cache_stats() const { return cache_->stats(); }

  /// Requests that completed scoring ("hit" + "store" + "trained").
  std::uint64_t requests_scored() const;

  /// /shard idempotency counters (tests assert no duplicate training).
  struct ShardStats {
    std::uint64_t requests = 0;     ///< /shard requests answered 200
    std::uint64_t computed = 0;     ///< folds actually executed
    std::uint64_t memory_hits = 0;  ///< served from the in-memory results
    std::uint64_t store_hits = 0;   ///< served from the persistent store
  };
  ShardStats shard_stats() const;

 private:
  AttackService(std::map<int, ChallengeSuite> suites, Options opt)
      : suites_(std::move(suites)),
        opt_(std::move(opt)),
        cache_(std::make_unique<ArtifactCache>(opt_.cache_bytes)) {}

  common::http::Response handle_score(const common::http::Request& req);
  common::http::Response handle_shard(const common::http::Request& req);
  common::http::Response handle_status() const;
  common::http::Response handle_metrics() const;

  struct ShardTarget {
    int layer = 0;
    std::int64_t fold = 0;
    std::string config_name;
    AttackConfig config;
    const ChallengeSuite* suite = nullptr;
  };
  /// Shared /score + /shard request parsing; on failure fills `error`
  /// (and bumps bad_requests_) and returns false.
  bool parse_target(const common::http::Request& req, ShardTarget* out,
                    common::http::Response* error);

  /// Cache-or-store-or-train for one (suite, config, fold); returns the
  /// entry and labels where it came from ("hit" | "store" | "trained").
  std::shared_ptr<const CachedEnsemble> hydrate(
      const ChallengeSuite& suite, const AttackConfig& config,
      std::int64_t fold, std::uint64_t key, const char** source);

  const std::map<int, ChallengeSuite> suites_;
  const Options opt_;
  std::unique_ptr<ArtifactCache> cache_;

  /// Store access is serialized: CheckpointManager reads are specified
  /// for serial callers, and next to a training run the lock is noise.
  std::mutex store_mutex_;
  std::optional<common::CheckpointManager> store_;
  common::DiagnosticSink store_sink_;

  /// Singleflight: one hydration per key at a time; concurrent misses
  /// on the same key wait and then hit the cache.
  std::mutex inflight_mutex_;
  std::map<std::uint64_t, std::shared_ptr<std::mutex>> inflight_;

  std::atomic<std::uint64_t> scored_{0};
  std::atomic<std::uint64_t> rejected_busy_{0};  ///< 503s (budget)
  std::atomic<std::uint64_t> bad_requests_{0};   ///< 4xx route-level

  /// Sealed /shard result payloads by result key — the fast idempotency
  /// tier (the persistent store is the durable one). Bounded FIFO.
  std::mutex results_mutex_;
  std::map<std::uint64_t, std::string> results_;
  std::vector<std::uint64_t> results_order_;

  std::atomic<std::uint64_t> shard_requests_{0};
  std::atomic<std::uint64_t> shard_computed_{0};
  std::atomic<std::uint64_t> shard_memory_hits_{0};
  std::atomic<std::uint64_t> shard_store_hits_{0};
};

/// The model key for fold `fold` of a suite under `config`: the suite
/// run key mixed with the fold index (splitmix64-scrambled so nearby
/// folds do not collide under xor with other stream tweaks).
std::uint64_t fold_model_key(const ChallengeSuite& suite,
                             const AttackConfig& config, std::int64_t fold);

/// Store artifact name for a model key ("model_<hex16>").
std::string model_artifact_name(std::uint64_t key);

/// Store artifact name for a sealed /shard result ("result_<hex16>").
std::string result_artifact_name(std::uint64_t key);

}  // namespace repro::core

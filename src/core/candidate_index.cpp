#include "core/candidate_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/obs.hpp"
#include "common/simd.hpp"

namespace repro::core {

namespace {

/// Grid resolution: about sqrt(n) cells along the longer die edge, so the
/// cell count stays O(n) whatever the aspect ratio (including degenerate
/// single-row layouts) and an average cell holds O(1) v-pins.
geom::Dbu pick_bin(geom::Dbu extent_x, geom::Dbu extent_y, int n) {
  const auto extent = std::max<geom::Dbu>({extent_x, extent_y, 1});
  const auto cells = static_cast<geom::Dbu>(
      std::ceil(std::sqrt(static_cast<double>(std::max(n, 1)))));
  return std::max<geom::Dbu>(1, (extent + cells - 1) / cells);
}

/// Query radius in DBU, clamped so the double->int64 cast is defined even
/// for effectively-unbounded radii (the cell range is clamped to the grid
/// anyway, so the exact ceiling does not matter past the die extent).
geom::Dbu radius_dbu(double r) {
  return static_cast<geom::Dbu>(std::ceil(std::min(std::max(r, 0.0), 1e18)));
}

#if defined(REPRO_SIMD_X86)

/// True when the AVX2 scan kernels below should run. active() is already
/// clamped to what the CPU supports, so equality is sufficient.
bool use_avx2() {
  return common::simd::active() == common::simd::Level::kAvx2;
}

// The three scan kernels share one shape: an 8-wide admit mask (double
// range compares packed down to 4x32 lane masks, legality from the 0/1
// drives bytes, an id != v exclusion where the range can contain v), then
// a left-packing compress-emit of the admitted i32 ids through
// compress8_table(). Arithmetic is the exact double |dx| (+ |dy|) <= r
// of the scalar paths — abs via sign-bit clear, ordered compares — so
// the admitted set and its ascending order are identical; only the
// emit width changes. Stores write a full 8-lane vector at the cursor,
// so callers reserve kScanSlack extra slots past the worst-case count.
constexpr std::size_t kScanSlack = 8;

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/// Packs the low dwords of a 4x64 compare mask into the low 4x32 lanes.
__attribute__((target("avx2"))) inline __m128i pack_mask_pd(__m256d m) {
  const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  return _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_castpd_si256(m), pick));
}

/// Legality-only scan of ids [lo, hi): emits w where !(a_mask & drv[w]),
/// writing at dst[k]; returns the advanced cursor.
__attribute__((target("avx2")))
std::size_t scan_legal_avx2(const std::uint8_t* drv, std::int32_t lo,
                            std::int32_t hi, unsigned a_mask,
                            std::int32_t* dst, std::size_t k) {
  const auto& table = common::simd::compress8_table();
  const __m256i zero = _mm256_setzero_si256();
  // a_mask == 0 admits everything regardless of the drives byte.
  const __m256i legal_force = _mm256_set1_epi32(a_mask ? 0 : -1);
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  std::int32_t w = lo;
  for (; w + 8 <= hi; w += 8) {
    const __m256i drv32 = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(drv + w)));
    const __m256i admit =
        _mm256_or_si256(_mm256_cmpeq_epi32(drv32, zero), legal_force);
    const int m = _mm256_movemask_ps(_mm256_castsi256_ps(admit));
    const __m256i ids = _mm256_add_epi32(iota, _mm256_set1_epi32(w));
    const __m256i perm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(table[static_cast<unsigned>(m)]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + k),
                        _mm256_permutevar8x32_epi32(ids, perm));
    k += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(m)));
  }
  for (; w < hi; ++w) {
    dst[k] = w;
    k += 1u - (a_mask & drv[w]);
  }
  return k;
}

/// Dense Manhattan-ball sweep of ids [lo, hi): emits w where
/// |ax - xs[w]| + |ay - ys[w]| <= r and !(a_mask & drv[w]).
__attribute__((target("avx2")))
std::size_t sweep_ball_avx2(const double* xs, const double* ys,
                            const std::uint8_t* drv, std::int32_t lo,
                            std::int32_t hi, double ax, double ay, double r,
                            unsigned a_mask, std::int32_t* dst,
                            std::size_t k) {
  const auto& table = common::simd::compress8_table();
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d rv = _mm256_set1_pd(r);
  const __m256d axv = _mm256_set1_pd(ax);
  const __m256d ayv = _mm256_set1_pd(ay);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i legal_force = _mm256_set1_epi32(a_mask ? 0 : -1);
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  std::int32_t w = lo;
  for (; w + 8 <= hi; w += 8) {
    const __m256d d0 = _mm256_add_pd(
        _mm256_andnot_pd(sign, _mm256_sub_pd(axv, _mm256_loadu_pd(xs + w))),
        _mm256_andnot_pd(sign, _mm256_sub_pd(ayv, _mm256_loadu_pd(ys + w))));
    const __m256d d1 = _mm256_add_pd(
        _mm256_andnot_pd(sign,
                         _mm256_sub_pd(axv, _mm256_loadu_pd(xs + w + 4))),
        _mm256_andnot_pd(sign,
                         _mm256_sub_pd(ayv, _mm256_loadu_pd(ys + w + 4))));
    const __m128i le0 = pack_mask_pd(_mm256_cmp_pd(d0, rv, _CMP_LE_OQ));
    const __m128i le1 = pack_mask_pd(_mm256_cmp_pd(d1, rv, _CMP_LE_OQ));
    const __m256i within = _mm256_set_m128i(le1, le0);
    const __m256i drv32 = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(drv + w)));
    const __m256i legal =
        _mm256_or_si256(_mm256_cmpeq_epi32(drv32, zero), legal_force);
    const __m256i admit = _mm256_and_si256(within, legal);
    const int m = _mm256_movemask_ps(_mm256_castsi256_ps(admit));
    const __m256i ids = _mm256_add_epi32(iota, _mm256_set1_epi32(w));
    const __m256i perm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(table[static_cast<unsigned>(m)]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + k),
                        _mm256_permutevar8x32_epi32(ids, perm));
    k += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(m)));
  }
  for (; w < hi; ++w) {
    const double d = std::abs(ax - xs[w]) + std::abs(ay - ys[w]);
    dst[k] = w;
    k += static_cast<unsigned>(d <= r) & (1u - (a_mask & drv[w]));
  }
  return k;
}

/// Track scan over `count` SoA entries (one equal_range worth): emits
/// entry ids where id != v, !(a_mask & drv) and |a_other - other| <= r.
/// Pass r = +infinity for "no neighbourhood restriction".
__attribute__((target("avx2")))
std::size_t scan_track_avx2(const double* other, const std::uint8_t* drv,
                            const std::int32_t* ids, std::size_t count,
                            double a_other, double r, unsigned a_mask,
                            std::int32_t v, std::int32_t* dst) {
  const auto& table = common::simd::compress8_table();
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d rv = _mm256_set1_pd(r);
  const __m256d av = _mm256_set1_pd(a_other);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i legal_force = _mm256_set1_epi32(a_mask ? 0 : -1);
  const __m256i vv = _mm256_set1_epi32(v);
  std::size_t k = 0;
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256d d0 = _mm256_andnot_pd(
        sign, _mm256_sub_pd(av, _mm256_loadu_pd(other + i)));
    const __m256d d1 = _mm256_andnot_pd(
        sign, _mm256_sub_pd(av, _mm256_loadu_pd(other + i + 4)));
    const __m128i le0 = pack_mask_pd(_mm256_cmp_pd(d0, rv, _CMP_LE_OQ));
    const __m128i le1 = pack_mask_pd(_mm256_cmp_pd(d1, rv, _CMP_LE_OQ));
    const __m256i within = _mm256_set_m128i(le1, le0);
    const __m256i drv32 = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(drv + i)));
    const __m256i legal =
        _mm256_or_si256(_mm256_cmpeq_epi32(drv32, zero), legal_force);
    const __m256i idv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ids + i));
    const __m256i admit = _mm256_andnot_si256(
        _mm256_cmpeq_epi32(idv, vv), _mm256_and_si256(within, legal));
    const int m = _mm256_movemask_ps(_mm256_castsi256_ps(admit));
    const __m256i perm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(table[static_cast<unsigned>(m)]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + k),
                        _mm256_permutevar8x32_epi32(idv, perm));
    k += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(m)));
  }
  for (; i < count; ++i) {
    const std::int32_t id = ids[i];
    if (id == v) continue;
    if (a_mask & drv[i]) continue;
    if (std::abs(a_other - other[i]) > r) continue;
    dst[k++] = id;
  }
  return k;
}

#pragma GCC diagnostic pop

#endif  // REPRO_SIMD_X86

}  // namespace

CandidateIndex::CandidateIndex(const splitmfg::SplitChallenge& ch)
    : ch_(&ch), n_(ch.num_vpins()) {
  OBS_SPAN("index.build");
  if (n_ == 0) {
    bucket_start_.assign(2, 0);
    return;
  }

  geom::Dbu max_x = ch.vpins[0].pos.x, max_y = ch.vpins[0].pos.y;
  origin_x_ = max_x;
  origin_y_ = max_y;
  for (const splitmfg::Vpin& v : ch.vpins) {
    origin_x_ = std::min(origin_x_, v.pos.x);
    origin_y_ = std::min(origin_y_, v.pos.y);
    max_x = std::max(max_x, v.pos.x);
    max_y = std::max(max_y, v.pos.y);
  }
  bin_ = pick_bin(max_x - origin_x_, max_y - origin_y_, n_);
  nx_ = static_cast<int>((max_x - origin_x_) / bin_) + 1;
  ny_ = static_cast<int>((max_y - origin_y_) / bin_) + 1;

  // CSR fill: count per bucket, prefix-sum, then place ids in id order so
  // every bucket's id list is ascending.
  bucket_start_.assign(static_cast<std::size_t>(nx_) * ny_ + 1, 0);
  for (const splitmfg::Vpin& v : ch.vpins) {
    const std::size_t b =
        static_cast<std::size_t>(cell_y(v.pos.y)) * nx_ + cell_x(v.pos.x);
    ++bucket_start_[b + 1];
  }
  for (std::size_t b = 1; b < bucket_start_.size(); ++b) {
    bucket_start_[b] += bucket_start_[b - 1];
  }
  bucket_ids_.resize(static_cast<std::size_t>(n_));
  bucket_recs_.resize(static_cast<std::size_t>(n_));
  xs_.reserve(static_cast<std::size_t>(n_));
  ys_.reserve(static_cast<std::size_t>(n_));
  drv_.reserve(static_cast<std::size_t>(n_));
  std::vector<std::int32_t> cursor(bucket_start_.begin(),
                                   bucket_start_.end() - 1);
  for (const splitmfg::Vpin& v : ch.vpins) {
    const std::size_t b =
        static_cast<std::size_t>(cell_y(v.pos.y)) * nx_ + cell_x(v.pos.x);
    const std::size_t slot = static_cast<std::size_t>(cursor[b]++);
    bucket_ids_[slot] = v.id;
    bucket_recs_[slot] = Rec{v.pos.x, v.pos.y, v.drives()};
    xs_.push_back(static_cast<double>(v.pos.x));
    ys_.push_back(static_cast<double>(v.pos.y));
    drv_.push_back(v.drives() ? 1 : 0);
  }

  by_x_.reserve(static_cast<std::size_t>(n_));
  by_y_.reserve(static_cast<std::size_t>(n_));
  for (const splitmfg::Vpin& v : ch.vpins) {
    by_x_.push_back({v.pos.x, v.pos.y, v.drives(), v.id});
    by_y_.push_back({v.pos.y, v.pos.x, v.drives(), v.id});
  }
  std::sort(by_x_.begin(), by_x_.end());
  std::sort(by_y_.begin(), by_y_.end());

  // SoA mirrors in sorted track order for the vectorized track scan.
  tx_other_.reserve(static_cast<std::size_t>(n_));
  tx_drv_.reserve(static_cast<std::size_t>(n_));
  tx_id_.reserve(static_cast<std::size_t>(n_));
  for (const TrackEntry& e : by_x_) {
    tx_other_.push_back(static_cast<double>(e.other));
    tx_drv_.push_back(e.drv ? 1 : 0);
    tx_id_.push_back(e.id);
  }
  ty_other_.reserve(static_cast<std::size_t>(n_));
  ty_drv_.reserve(static_cast<std::size_t>(n_));
  ty_id_.reserve(static_cast<std::size_t>(n_));
  for (const TrackEntry& e : by_y_) {
    ty_other_.push_back(static_cast<double>(e.other));
    ty_drv_.push_back(e.drv ? 1 : 0);
    ty_id_.push_back(e.id);
  }
}

int CandidateIndex::cell_x(geom::Dbu x) const {
  return geom::clamp(static_cast<int>((x - origin_x_) / bin_), 0, nx_ - 1);
}

int CandidateIndex::cell_y(geom::Dbu y) const {
  return geom::clamp(static_cast<int>((y - origin_y_) / bin_), 0, ny_ - 1);
}

std::size_t CandidateIndex::collect(splitmfg::VpinId v,
                                    const PairFilter& filter,
                                    std::vector<splitmfg::VpinId>& out) const {
  if (filter.limit_top_direction) return collect_track(v, filter, out);
  if (filter.neighborhood) return collect_ball(v, filter, out);
  return collect_all(v, filter, out);
}

std::size_t CandidateIndex::collect_all(
    splitmfg::VpinId v, const PairFilter& filter,
    std::vector<splitmfg::VpinId>& out) const {
  (void)filter;  // no geometric restriction: only legality applies
  const std::size_t first = out.size();
  const unsigned a_mask = drv_[static_cast<std::size_t>(v)];
  std::size_t k = 0;
#if defined(REPRO_SIMD_X86)
  if (use_avx2()) {
    out.resize(first + static_cast<std::size_t>(n_) + kScanSlack);
    splitmfg::VpinId* dst = out.data() + first;
    k = scan_legal_avx2(drv_.data(), 0, v, a_mask, dst, 0);
    k = scan_legal_avx2(drv_.data(), v + 1, n_, a_mask, dst, k);
    out.resize(first + k);
    return static_cast<std::size_t>(n_ > 0 ? n_ - 1 : 0);
  }
#endif
  out.resize(first + static_cast<std::size_t>(n_));
  splitmfg::VpinId* dst = out.data() + first;
  // Count-write compaction ([0,v) then (v,n) so w == v needs no test):
  // the admitted id is always stored, the cursor only advances when the
  // pair is legal. No data-dependent branches, so the 73%-ish admit rate
  // of real challenges cannot stall the pipeline with mispredictions.
  for (splitmfg::VpinId w = 0; w < v; ++w) {
    dst[k] = w;
    k += 1u - (a_mask & drv_[static_cast<std::size_t>(w)]);
  }
  for (splitmfg::VpinId w = v + 1; w < n_; ++w) {
    dst[k] = w;
    k += 1u - (a_mask & drv_[static_cast<std::size_t>(w)]);
  }
  out.resize(first + k);
  return static_cast<std::size_t>(n_ > 0 ? n_ - 1 : 0);
}

std::size_t CandidateIndex::collect_ball(
    splitmfg::VpinId v, const PairFilter& filter,
    std::vector<splitmfg::VpinId>& out) const {
  const std::size_t vi = static_cast<std::size_t>(v);
  const double ax = xs_[vi], ay = ys_[vi];
  const unsigned a_mask = drv_[vi];
  const double r = *filter.neighborhood;
  const geom::Dbu rad = radius_dbu(r);
  const geom::Dbu avx = static_cast<geom::Dbu>(ax);
  const geom::Dbu avy = static_cast<geom::Dbu>(ay);
  const int cx0 = cell_x(avx - rad), cx1 = cell_x(avx + rad);
  const int cy0 = cell_y(avy - rad), cy1 = cell_y(avy + rad);

  // The per-record test below IS admits for a ball filter: legal_pair is
  // the drives-flag conjunction, and the distance term sums |dx| and |dy|
  // in double exactly like manhattan_vpin (coordinate-to-double
  // conversion is exact below 2^53 DBU), so the comparison against r is
  // bit-equivalent to the brute-force path.
  const auto admit = [&](const Rec& w) {
    const double d = std::abs(ax - static_cast<double>(w.x)) +
                     std::abs(ay - static_cast<double>(w.y));
    return d <= r && !(a_mask && w.drv);
  };

  // Wide neighbourhood radii (comparable to the die extent) make the ball
  // cover most buckets; the flat id-ordered scan is then strictly better:
  // sequential SoA access, no bucket bookkeeping, and the canonical-order
  // sort becomes unnecessary because ids arrive ascending already. Like
  // collect_all, the scan compacts with a count-write instead of a
  // data-dependent branch.
  const std::size_t covered = static_cast<std::size_t>(cx1 - cx0 + 1) *
                              static_cast<std::size_t>(cy1 - cy0 + 1);
  const std::size_t total = static_cast<std::size_t>(nx_) * ny_;
  if (2 * covered >= total) {
    const std::size_t first = out.size();
    std::size_t k = 0;
#if defined(REPRO_SIMD_X86)
    if (use_avx2()) {
      out.resize(first + static_cast<std::size_t>(n_) + kScanSlack);
      splitmfg::VpinId* dst = out.data() + first;
      k = sweep_ball_avx2(xs_.data(), ys_.data(), drv_.data(), 0, v, ax, ay,
                          r, a_mask, dst, 0);
      k = sweep_ball_avx2(xs_.data(), ys_.data(), drv_.data(), v + 1, n_, ax,
                          ay, r, a_mask, dst, k);
      out.resize(first + k);
      return static_cast<std::size_t>(n_ > 0 ? n_ - 1 : 0);
    }
#endif
    out.resize(first + static_cast<std::size_t>(n_));
    splitmfg::VpinId* dst = out.data() + first;
    const auto sweep = [&](splitmfg::VpinId lo, splitmfg::VpinId hi) {
      for (splitmfg::VpinId w = lo; w < hi; ++w) {
        const std::size_t wi = static_cast<std::size_t>(w);
        const double d = std::abs(ax - xs_[wi]) + std::abs(ay - ys_[wi]);
        dst[k] = w;
        k += static_cast<unsigned>(d <= r) & (1u - (a_mask & drv_[wi]));
      }
    };
    sweep(0, v);
    sweep(v + 1, static_cast<splitmfg::VpinId>(n_));
    out.resize(first + k);
    return static_cast<std::size_t>(n_ > 0 ? n_ - 1 : 0);
  }

  const std::size_t first = out.size();
  std::size_t scanned = 0;
  for (int cy = cy0; cy <= cy1; ++cy) {
    // Manhattan balls are diamonds: rows farther from the query point can
    // only spend what the |dy| to the row's nearest edge leaves of the
    // radius, which roughly halves the buckets visited vs the bounding
    // box. The range stays a superset of the exact ball.
    const geom::Dbu band_lo = origin_y_ + static_cast<geom::Dbu>(cy) * bin_;
    const geom::Dbu band_hi = band_lo + bin_ - 1;
    const geom::Dbu dy_min =
        avy < band_lo ? band_lo - avy : (avy > band_hi ? avy - band_hi : 0);
    if (dy_min > rad) continue;
    const geom::Dbu budget = rad - dy_min;
    const int rx0 = std::max(cx0, cell_x(avx - budget));
    const int rx1 = std::min(cx1, cell_x(avx + budget));
    for (int cx = rx0; cx <= rx1; ++cx) {
      const std::size_t b = static_cast<std::size_t>(cy) * nx_ + cx;
      const std::int32_t end = bucket_start_[b + 1];
      for (std::int32_t i = bucket_start_[b]; i < end; ++i) {
        const splitmfg::VpinId w = bucket_ids_[static_cast<std::size_t>(i)];
        if (w == v) continue;
        ++scanned;
        if (admit(bucket_recs_[static_cast<std::size_t>(i)])) {
          out.push_back(w);
        }
      }
    }
  }
  // Bucket visit order is row-major, not id order; restore the canonical
  // ascending-id order here so bin geometry can never reorder results.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
  return scanned;
}

std::size_t CandidateIndex::collect_track(
    splitmfg::VpinId v, const PairFilter& filter,
    std::vector<splitmfg::VpinId>& out) const {
  const splitmfg::Vpin& a = ch_->vpin(v);
  const bool a_drv = drv_[static_cast<std::size_t>(v)] != 0;
  const auto& track = filter.top_metal_horizontal ? by_y_ : by_x_;
  const geom::Dbu coord = filter.top_metal_horizontal ? a.pos.y : a.pos.x;
  const geom::Dbu other = filter.top_metal_horizontal ? a.pos.x : a.pos.y;
  const auto [lo, hi] = std::equal_range(
      track.begin(), track.end(),
      TrackEntry{coord, 0, false, splitmfg::kInvalidVpin},
      [](const TrackEntry& x, const TrackEntry& y) {
        return x.coord < y.coord;
      });
#if defined(REPRO_SIMD_X86)
  if (use_avx2()) {
    const std::size_t i0 =
        static_cast<std::size_t>(lo - track.begin());
    const std::size_t count = static_cast<std::size_t>(hi - lo);
    const double* other_arr =
        (filter.top_metal_horizontal ? ty_other_ : tx_other_).data() + i0;
    const std::uint8_t* drv_arr =
        (filter.top_metal_horizontal ? ty_drv_ : tx_drv_).data() + i0;
    const std::int32_t* id_arr =
        (filter.top_metal_horizontal ? ty_id_ : tx_id_).data() + i0;
    const double r = filter.neighborhood
                         ? *filter.neighborhood
                         : std::numeric_limits<double>::infinity();
    const std::size_t first = out.size();
    out.resize(first + count + kScanSlack);
    const std::size_t k =
        scan_track_avx2(other_arr, drv_arr, id_arr, count,
                        static_cast<double>(other), r, a_drv ? 1u : 0u, v,
                        out.data() + first);
    out.resize(first + k);
    // v's own entry always sits in its track range; everything else
    // counts as scanned, matching the scalar loop below.
    return count > 0 ? count - 1 : 0;
  }
#endif
  std::size_t scanned = 0;
  for (auto it = lo; it != hi; ++it) {  // (coord, id)-sorted => id ascending
    if (it->id == v) continue;
    ++scanned;
    // On-track pairs differ only in the `other` coordinate, so the
    // Manhattan term reduces to |other - a.other| + 0.0 — still summed in
    // double, matching manhattan_vpin exactly.
    if (a_drv && it->drv) continue;
    if (filter.neighborhood &&
        std::abs(static_cast<double>(other - it->other)) + 0.0 >
            *filter.neighborhood) {
      continue;
    }
    out.push_back(it->id);
  }
  return scanned;
}

std::vector<splitmfg::VpinId> CandidateIndex::within_radius(
    splitmfg::VpinId v, double r) const {
  std::vector<splitmfg::VpinId> out;
  // Geometric query only: strip legality by testing distance directly.
  const splitmfg::Vpin& a = ch_->vpin(v);
  const geom::Dbu rad = radius_dbu(r);
  const int cx0 = cell_x(a.pos.x - rad), cx1 = cell_x(a.pos.x + rad);
  const int cy0 = cell_y(a.pos.y - rad), cy1 = cell_y(a.pos.y + rad);
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      const std::size_t b = static_cast<std::size_t>(cy) * nx_ + cx;
      const std::int32_t end = bucket_start_[b + 1];
      for (std::int32_t i = bucket_start_[b]; i < end; ++i) {
        const splitmfg::VpinId w = bucket_ids_[static_cast<std::size_t>(i)];
        if (w == v) continue;
        const splitmfg::Vpin& c = ch_->vpin(w);
        const double d =
            std::abs(static_cast<double>(a.pos.x - c.pos.x)) +
            std::abs(static_cast<double>(a.pos.y - c.pos.y));
        if (d <= r) out.push_back(w);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<splitmfg::VpinId> CandidateIndex::same_track(
    splitmfg::VpinId v, bool top_metal_horizontal) const {
  const splitmfg::Vpin& a = ch_->vpin(v);
  const auto& track = top_metal_horizontal ? by_y_ : by_x_;
  const geom::Dbu coord = top_metal_horizontal ? a.pos.y : a.pos.x;
  const auto [lo, hi] = std::equal_range(
      track.begin(), track.end(),
      TrackEntry{coord, 0, false, splitmfg::kInvalidVpin},
      [](const TrackEntry& x, const TrackEntry& y) {
        return x.coord < y.coord;
      });
  std::vector<splitmfg::VpinId> out;
  out.reserve(static_cast<std::size_t>(hi - lo));
  for (auto it = lo; it != hi; ++it) {
    if (it->id != v) out.push_back(it->id);
  }
  return out;
}

}  // namespace repro::core

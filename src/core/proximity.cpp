#include "core/proximity.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>

#include "core/candidate_index.hpp"

namespace repro::core {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Picks the PA answer from the first `k` entries of a candidate list
/// sorted by descending p: minimum distance, ties by higher p, then lowest
/// id. Returns kInvalidVpin on an empty list.
splitmfg::VpinId pa_pick(const std::vector<Candidate>& top, int k) {
  splitmfg::VpinId best = splitmfg::kInvalidVpin;
  float bd = 0, bp = 0;
  const int limit = std::min<int>(k, static_cast<int>(top.size()));
  for (int i = 0; i < limit; ++i) {
    const Candidate& c = top[static_cast<std::size_t>(i)];
    const bool better =
        best == splitmfg::kInvalidVpin || c.d < bd ||
        (c.d == bd && (c.p > bp || (c.p == bp && c.id < best)));
    if (better) {
      best = c.id;
      bd = c.d;
      bp = c.p;
    }
  }
  return best;
}

/// Same, with the PA-LoC defined by a probability threshold.
splitmfg::VpinId pa_pick_threshold(const std::vector<Candidate>& top,
                                   double threshold) {
  int k = 0;
  while (k < static_cast<int>(top.size()) &&
         top[static_cast<std::size_t>(k)].p >= threshold) {
    ++k;
  }
  return pa_pick(top, k);
}

}  // namespace

double pa_success_rate(const AttackResult& result,
                       const splitmfg::SplitChallenge& challenge,
                       double fraction) {
  const int n = challenge.num_vpins();
  const int k = std::max(1, static_cast<int>(std::lround(fraction * n)));
  int total = 0, good = 0;
  for (int v = 0; v < n; ++v) {
    const VpinResult& r = result.per_vpin()[static_cast<std::size_t>(v)];
    if (!r.tested || !r.has_match) continue;
    ++total;
    const splitmfg::VpinId pick = pa_pick(r.top, k);
    if (pick != splitmfg::kInvalidVpin && challenge.is_match(v, pick)) {
      ++good;
    }
  }
  return total > 0 ? static_cast<double>(good) / total : 0.0;
}

double pa_success_rate_at_threshold(const AttackResult& result,
                                    const splitmfg::SplitChallenge& challenge,
                                    double threshold) {
  const int n = challenge.num_vpins();
  int total = 0, good = 0;
  for (int v = 0; v < n; ++v) {
    const VpinResult& r = result.per_vpin()[static_cast<std::size_t>(v)];
    if (!r.tested || !r.has_match) continue;
    ++total;
    const splitmfg::VpinId pick = pa_pick_threshold(r.top, threshold);
    if (pick != splitmfg::kInvalidVpin && challenge.is_match(v, pick)) {
      ++good;
    }
  }
  return total > 0 ? static_cast<double>(good) / total : 0.0;
}

PAOutcome validated_proximity_attack(
    const AttackResult& target_result, const splitmfg::SplitChallenge& target,
    std::span<const splitmfg::SplitChallenge* const> training,
    const AttackConfig& config, const PAOptions& opt) {
  PAOutcome out;
  const double t0 = now_seconds();
  std::mt19937_64 rng(opt.seed * 31 + config.seed);

  // 80/20 v-pin masks per training challenge (concatenated, as
  // SamplingOptions expects).
  std::vector<std::uint8_t> mask;
  std::vector<std::size_t> offsets;
  for (const splitmfg::SplitChallenge* ch : training) {
    offsets.push_back(mask.size());
    std::bernoulli_distribution select(opt.train_fraction);
    for (int v = 0; v < ch->num_vpins(); ++v) mask.push_back(select(rng));
  }

  // Validation model: same configuration, trained on the selected 80%.
  TrainedModel vmodel;
  vmodel.config = config;
  vmodel.feat_idx = feature_indices(config.features);
  vmodel.filter = PairFilter{};
  if (config.improved) {
    vmodel.filter.neighborhood =
        neighborhood_radius(training, config.neighborhood_percentile);
  }
  vmodel.filter.limit_top_direction = config.limit_top_direction;
  vmodel.filter.top_metal_horizontal = config.top_metal_horizontal;
  {
    SamplingOptions sopt;
    sopt.filter = vmodel.filter;
    sopt.seed = config.seed * 2000003 + 29;
    sopt.vpin_mask = mask;
    sopt.normalize_distances = config.normalize_distances;
    const ml::Dataset data =
        make_training_set(training, config.features, sopt);
    const ml::BaggingOptions bopt =
        config.use_random_forest
            ? ml::BaggingOptions::random_forest(data.num_features(),
                                                config.seed + 1)
            : ml::BaggingOptions::reptree_bagging(config.seed + 1);
    vmodel.classifier = ml::BaggingClassifier::train(data, bopt);
  }

  // Run PA on the held-out 20% of each training challenge for every
  // candidate fraction.
  std::vector<double> success(opt.fractions.size(), 0.0);
  int num_benchmarks = 0;
  for (std::size_t ci = 0; ci < training.size(); ++ci) {
    const splitmfg::SplitChallenge& ch = *training[ci];
    const std::size_t off = offsets[ci];
    const int n = ch.num_vpins();
    std::vector<int> good(opt.fractions.size(), 0);
    int total = 0;
    std::vector<Candidate> top;
    // Held-out v-pins eligible for validation PA, capped for scalability.
    std::vector<int> held_out;
    for (int v = 0; v < n; ++v) {
      if (mask[off + static_cast<std::size_t>(v)]) continue;  // training side
      if (ch.vpin(v).matches.empty()) continue;
      held_out.push_back(v);
    }
    if (opt.max_validation_vpins > 0 &&
        static_cast<int>(held_out.size()) > opt.max_validation_vpins) {
      std::shuffle(held_out.begin(), held_out.end(), rng);
      held_out.resize(static_cast<std::size_t>(opt.max_validation_vpins));
    }
    // Candidates per held-out v-pin come from the spatial index instead
    // of an all-pairs sweep; predict_pair re-checks admits, which is
    // exactly the predicate the index enumerated by.
    const CandidateIndex index(ch);
    std::vector<splitmfg::VpinId> cand;
    for (int v : held_out) {
      const splitmfg::Vpin& vp = ch.vpin(v);
      ++total;
      top.clear();
      const double scale = vmodel.scale_for(ch);
      cand.clear();
      index.collect(v, vmodel.filter, cand);
      for (splitmfg::VpinId w : cand) {
        const auto p = vmodel.predict_pair(vp, ch.vpin(w), scale);
        if (!p) continue;
        const float d = static_cast<float>(
            std::abs(static_cast<double>(vp.pos.x - ch.vpin(w).pos.x)) +
            std::abs(static_cast<double>(vp.pos.y - ch.vpin(w).pos.y)));
        top.push_back(Candidate{static_cast<splitmfg::VpinId>(w),
                                static_cast<float>(*p), d});
      }
      std::sort(top.begin(), top.end(),
                [](const Candidate& a, const Candidate& b) {
                  if (a.p != b.p) return a.p > b.p;
                  if (a.d != b.d) return a.d < b.d;
                  return a.id < b.id;
                });
      for (std::size_t fi = 0; fi < opt.fractions.size(); ++fi) {
        const int k = std::max(
            1, static_cast<int>(std::lround(opt.fractions[fi] * n)));
        const splitmfg::VpinId pick = pa_pick(top, k);
        if (pick != splitmfg::kInvalidVpin && ch.is_match(v, pick)) {
          ++good[fi];
        }
      }
    }
    if (total > 0) {
      ++num_benchmarks;
      for (std::size_t fi = 0; fi < opt.fractions.size(); ++fi) {
        success[fi] += static_cast<double>(good[fi]) / total;
      }
    }
  }

  std::size_t best_fi = 0;
  for (std::size_t fi = 0; fi < opt.fractions.size(); ++fi) {
    const double s = num_benchmarks ? success[fi] / num_benchmarks : 0.0;
    out.validation_curve.emplace_back(opt.fractions[fi], s);
    if (s > out.validation_curve[best_fi].second) best_fi = fi;
  }
  out.best_fraction = opt.fractions[best_fi];
  out.validation_seconds = now_seconds() - t0;
  out.success_rate = pa_success_rate(target_result, target, out.best_fraction);
  return out;
}

}  // namespace repro::core

#include "netlist/verilog.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace repro::netlist {

namespace {

/// Tokenizer: splits on whitespace, treating ()[].,;="* as single-char
/// tokens so standard Verilog punctuation parses without lookahead.
std::vector<std::string> tokenize(std::istream& is) {
  std::vector<std::string> out;
  std::string cur;
  const std::string punct = "()[].,;=\"*";
  char c;
  while (is.get(c)) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else if (punct.find(c) != std::string::npos) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
      out.push_back(std::string(1, c));
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("verilog parse error: " + msg);
}

}  // namespace

void write_verilog(std::ostream& os, const Netlist& nl) {
  os << "module " << (nl.name().empty() ? "top" : nl.name()) << " ;\n";
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    os << "  wire " << nl.net(n).name << " ;\n";
  }
  // pin -> net map.
  std::map<std::pair<CellId, int>, NetId> pin_net;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    for (const PinRef& p : nl.net(n).pins) {
      pin_net[{p.cell, p.lib_pin}] = n;
    }
  }
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const CellInst& inst = nl.cell(c);
    const LibCell& lc = nl.library().cell(inst.lib_cell);
    os << "  (* origin = \"" << inst.origin.x << ',' << inst.origin.y
       << "\" *) " << lc.name << ' ' << inst.name << " (";
    bool first = true;
    for (int p = 0; p < static_cast<int>(lc.pins.size()); ++p) {
      auto it = pin_net.find({c, p});
      if (it == pin_net.end()) continue;
      os << (first ? " " : ", ") << '.'
         << lc.pins[static_cast<std::size_t>(p)].name << '('
         << nl.net(it->second).name << ')';
      first = false;
    }
    os << " ) ;\n";
  }
  os << "endmodule\n";
}

Netlist read_verilog(std::istream& is, std::shared_ptr<const Library> lib) {
  const std::vector<std::string> t = tokenize(is);
  std::size_t i = 0;
  const auto next = [&]() -> const std::string& {
    if (i >= t.size()) fail("unexpected end of input");
    return t[i++];
  };
  const auto expect = [&](const std::string& want) {
    const std::string& got = next();
    if (got != want) fail("expected '" + want + "', got '" + got + "'");
  };

  expect("module");
  const std::string design = next();
  expect(";");
  Netlist nl(lib, design);

  struct NetAccum {
    std::vector<PinRef> pins;
    int driver = -1;
  };
  std::vector<std::string> net_order;
  std::map<std::string, NetAccum> nets;

  while (i < t.size() && t[i] != "endmodule") {
    if (t[i] == "wire") {
      ++i;
      const std::string name = next();
      expect(";");
      if (!nets.count(name)) {
        nets[name];
        net_order.push_back(name);
      }
      continue;
    }
    // Instance, optionally preceded by an origin attribute.
    geom::Point origin{0, 0};
    if (t[i] == "(") {
      // (* origin = "x,y" *)
      expect("(");
      expect("*");
      expect("origin");
      expect("=");
      expect("\"");
      const std::string x = next();
      expect(",");
      const std::string y = next();
      expect("\"");
      expect("*");
      expect(")");
      try {
        origin = {std::stol(x), std::stol(y)};
      } catch (const std::exception&) {
        fail("bad origin attribute");
      }
    }
    const std::string cell_type = next();
    const std::string inst_name = next();
    const auto lc_id = lib->find(cell_type);
    if (!lc_id) fail("unknown cell type " + cell_type);
    const CellId cell = nl.add_cell(inst_name, *lc_id, origin);
    const LibCell& lc = lib->cell(*lc_id);

    expect("(");
    while (i < t.size() && t[i] != ")") {
      if (t[i] == ",") {
        ++i;
        continue;
      }
      expect(".");
      const std::string pin_name = next();
      expect("(");
      const std::string net_name = next();
      expect(")");
      int pin_idx = -1;
      for (int p = 0; p < static_cast<int>(lc.pins.size()); ++p) {
        if (lc.pins[static_cast<std::size_t>(p)].name == pin_name) {
          pin_idx = p;
          break;
        }
      }
      if (pin_idx < 0) fail("unknown pin " + pin_name + " on " + cell_type);
      if (!nets.count(net_name)) {
        nets[net_name];
        net_order.push_back(net_name);
      }
      NetAccum& acc = nets[net_name];
      if (lc.pins[static_cast<std::size_t>(pin_idx)].dir ==
          PinDir::kOutput) {
        acc.driver = static_cast<int>(acc.pins.size());
      }
      acc.pins.push_back(PinRef{cell, pin_idx});
    }
    expect(")");
    expect(";");
  }
  if (i >= t.size()) fail("missing endmodule");

  for (const std::string& name : net_order) {
    NetAccum& acc = nets[name];
    if (acc.pins.size() < 2) continue;  // dangling wire
    Net net;
    net.name = name;
    net.pins = std::move(acc.pins);
    net.driver = acc.driver;
    nl.add_net(std::move(net));
  }
  return nl;
}

}  // namespace repro::netlist

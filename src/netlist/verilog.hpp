// Structural Verilog netlist exchange.
//
// The attack model (paper SSII-A) notes that the layout file "allows quick
// generation of a gate-level description of the partially-connected
// network". This module provides that gate-level view: a writer and a
// parser for a flat structural-Verilog subset (one module, wire
// declarations, named-port instances). A reverse engineer's recovered
// design is ultimately delivered in this form.
#pragma once

#include <iosfwd>
#include <memory>

#include "netlist/netlist.hpp"

namespace repro::netlist {

/// Writes the netlist as one flat module named after the design. Cell
/// positions are emitted as `(* origin = "x,y" *)` attributes so the
/// placed view survives a round trip.
void write_verilog(std::ostream& os, const Netlist& nl);

/// Parses what write_verilog produced. `lib` must contain every referenced
/// cell type. Throws std::runtime_error on malformed input.
Netlist read_verilog(std::istream& is, std::shared_ptr<const Library> lib);

}  // namespace repro::netlist

// Gate-level netlist: placed cell instances and the nets connecting them.
//
// This is the network the untrusted foundry reconstructs from the layout
// file: cell positions, cell types (hence areas / pin directions) and, after
// routing, the per-layer route fragments of every net.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "geom/geom.hpp"
#include "netlist/library.hpp"

namespace repro::netlist {

using CellId = std::int32_t;
using NetId = std::int32_t;
inline constexpr CellId kInvalidCell = -1;
inline constexpr NetId kInvalidNet = -1;

/// A connection point: pin `lib_pin` (index into the LibCell's pin list) of
/// cell instance `cell`.
struct PinRef {
  CellId cell = kInvalidCell;
  int lib_pin = -1;

  friend bool operator==(const PinRef&, const PinRef&) = default;
};

/// A net: one driver pin plus load pins.
struct Net {
  std::string name;
  std::vector<PinRef> pins;  ///< all pins; `driver` indexes into this
  int driver = -1;           ///< index into `pins`, -1 if undriven

  int degree() const { return static_cast<int>(pins.size()); }
  bool has_driver() const { return driver >= 0; }
};

/// A placed cell instance.
struct CellInst {
  std::string name;
  int lib_cell = -1;           ///< index into the Library
  geom::Point origin;          ///< lower-left corner, DBU
};

/// The netlist. Owns instances and nets; shares an immutable Library.
class Netlist {
 public:
  explicit Netlist(std::shared_ptr<const Library> lib, std::string name = "")
      : lib_(std::move(lib)), name_(std::move(name)) {
    assert(lib_ != nullptr);
  }

  const std::string& name() const { return name_; }
  const Library& library() const { return *lib_; }
  std::shared_ptr<const Library> library_ptr() const { return lib_; }

  CellId add_cell(std::string inst_name, int lib_cell, geom::Point origin);
  NetId add_net(Net net);

  int num_cells() const { return static_cast<int>(cells_.size()); }
  int num_nets() const { return static_cast<int>(nets_.size()); }

  const CellInst& cell(CellId id) const {
    assert(id >= 0 && id < num_cells());
    return cells_[static_cast<std::size_t>(id)];
  }
  CellInst& mutable_cell(CellId id) {
    assert(id >= 0 && id < num_cells());
    return cells_[static_cast<std::size_t>(id)];
  }
  const Net& net(NetId id) const {
    assert(id >= 0 && id < num_nets());
    return nets_[static_cast<std::size_t>(id)];
  }

  const LibCell& lib_cell_of(CellId id) const {
    return lib_->cell(cell(id).lib_cell);
  }

  /// Absolute DBU position of an instance pin.
  geom::Point pin_position(const PinRef& p) const;
  /// Direction of an instance pin.
  PinDir pin_direction(const PinRef& p) const;

  /// Bounding box of all placed cells.
  geom::Rect bounding_box() const;

  /// Validates structural invariants (pin refs in range, at most one driver
  /// per net, nets have >= 2 pins). Throws std::runtime_error on violation.
  void check() const;

 private:
  std::shared_ptr<const Library> lib_;
  std::string name_;
  std::vector<CellInst> cells_;
  std::vector<Net> nets_;
};

}  // namespace repro::netlist

// Standard-cell library: cell types, areas, drive strengths and pin
// directions. The attack uses cell areas (InArea / OutArea features) as a
// proxy for drive strength, so the default library carries a realistic
// spread of sizes including a handful of macros.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <vector>

#include "geom/geom.hpp"

namespace repro::netlist {

enum class PinDir { kInput, kOutput };

/// A pin of a library cell. `offset` is the pin location relative to the
/// cell origin (lower-left corner).
struct LibPin {
  std::string name;
  PinDir dir = PinDir::kInput;
  geom::Point offset;
};

/// A library cell (standard cell or macro).
struct LibCell {
  std::string name;
  geom::Dbu width = 0;
  geom::Dbu height = 0;
  int drive_strength = 1;  ///< relative drive (X1, X2, ...)
  bool is_macro = false;
  std::vector<LibPin> pins;

  geom::Dbu area() const { return width * height; }

  const LibPin* find_pin(const std::string& pin_name) const {
    for (const LibPin& p : pins) {
      if (p.name == pin_name) return &p;
    }
    return nullptr;
  }
  int num_inputs() const {
    int n = 0;
    for (const LibPin& p : pins) n += (p.dir == PinDir::kInput);
    return n;
  }
  int num_outputs() const {
    int n = 0;
    for (const LibPin& p : pins) n += (p.dir == PinDir::kOutput);
    return n;
  }
};

/// A collection of library cells, indexed both by id and by name.
class Library {
 public:
  /// Adds a cell and returns its id. Names must be unique.
  int add_cell(LibCell cell);

  int num_cells() const { return static_cast<int>(cells_.size()); }
  const LibCell& cell(int id) const {
    assert(id >= 0 && id < num_cells());
    return cells_[static_cast<std::size_t>(id)];
  }
  /// Id of the cell with the given name, or nullopt.
  std::optional<int> find(const std::string& name) const;

  /// The default library used by the synthetic benchmark generator:
  /// inverters/buffers at four drive strengths, 2-input gates, flops, and
  /// two macro blocks. Site width 100 DBU, row height 400 DBU.
  static Library make_default();

  static constexpr geom::Dbu kSiteWidth = 100;
  static constexpr geom::Dbu kRowHeight = 400;

 private:
  std::vector<LibCell> cells_;
};

}  // namespace repro::netlist

#include "netlist/netlist.hpp"

#include <limits>
#include <stdexcept>

namespace repro::netlist {

CellId Netlist::add_cell(std::string inst_name, int lib_cell,
                         geom::Point origin) {
  if (lib_cell < 0 || lib_cell >= lib_->num_cells()) {
    throw std::out_of_range("add_cell: bad library cell id");
  }
  cells_.push_back(CellInst{std::move(inst_name), lib_cell, origin});
  return num_cells() - 1;
}

NetId Netlist::add_net(Net net) {
  if (net.pins.size() < 2) {
    throw std::invalid_argument("add_net: net needs at least 2 pins: " +
                                net.name);
  }
  if (net.driver < -1 || net.driver >= static_cast<int>(net.pins.size())) {
    throw std::out_of_range("add_net: driver index out of range: " + net.name);
  }
  nets_.push_back(std::move(net));
  return num_nets() - 1;
}

geom::Point Netlist::pin_position(const PinRef& p) const {
  const CellInst& inst = cell(p.cell);
  const LibCell& lc = lib_->cell(inst.lib_cell);
  assert(p.lib_pin >= 0 && p.lib_pin < static_cast<int>(lc.pins.size()));
  const LibPin& lp = lc.pins[static_cast<std::size_t>(p.lib_pin)];
  return {inst.origin.x + lp.offset.x, inst.origin.y + lp.offset.y};
}

PinDir Netlist::pin_direction(const PinRef& p) const {
  const CellInst& inst = cell(p.cell);
  const LibCell& lc = lib_->cell(inst.lib_cell);
  assert(p.lib_pin >= 0 && p.lib_pin < static_cast<int>(lc.pins.size()));
  return lc.pins[static_cast<std::size_t>(p.lib_pin)].dir;
}

geom::Rect Netlist::bounding_box() const {
  if (cells_.empty()) return {};
  geom::Dbu x0 = std::numeric_limits<geom::Dbu>::max(), y0 = x0;
  geom::Dbu x1 = std::numeric_limits<geom::Dbu>::min(), y1 = x1;
  for (const CellInst& c : cells_) {
    const LibCell& lc = lib_->cell(c.lib_cell);
    x0 = std::min(x0, c.origin.x);
    y0 = std::min(y0, c.origin.y);
    x1 = std::max(x1, c.origin.x + lc.width);
    y1 = std::max(y1, c.origin.y + lc.height);
  }
  return {x0, y0, x1, y1};
}

void Netlist::check() const {
  for (int n = 0; n < num_nets(); ++n) {
    const Net& nt = net(n);
    if (nt.pins.size() < 2) {
      throw std::runtime_error("net with <2 pins: " + nt.name);
    }
    int drivers = 0;
    for (const PinRef& p : nt.pins) {
      if (p.cell < 0 || p.cell >= num_cells()) {
        throw std::runtime_error("net pin with bad cell id: " + nt.name);
      }
      const LibCell& lc = lib_cell_of(p.cell);
      if (p.lib_pin < 0 || p.lib_pin >= static_cast<int>(lc.pins.size())) {
        throw std::runtime_error("net pin with bad pin index: " + nt.name);
      }
      drivers += (pin_direction(p) == PinDir::kOutput);
    }
    if (drivers > 1) {
      throw std::runtime_error("net with multiple drivers: " + nt.name);
    }
    if (nt.has_driver() &&
        pin_direction(nt.pins[static_cast<std::size_t>(nt.driver)]) !=
            PinDir::kOutput) {
      throw std::runtime_error("net driver is not an output pin: " + nt.name);
    }
  }
}

}  // namespace repro::netlist

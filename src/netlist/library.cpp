#include "netlist/library.hpp"

#include <stdexcept>

namespace repro::netlist {

int Library::add_cell(LibCell cell) {
  if (find(cell.name)) {
    throw std::invalid_argument("duplicate library cell: " + cell.name);
  }
  cells_.push_back(std::move(cell));
  return num_cells() - 1;
}

std::optional<int> Library::find(const std::string& name) const {
  for (int i = 0; i < num_cells(); ++i) {
    if (cells_[static_cast<std::size_t>(i)].name == name) return i;
  }
  return std::nullopt;
}

namespace {

LibCell gate(const std::string& name, geom::Dbu width, int drive, int n_inputs,
             const std::string& out_name = "Z") {
  LibCell c;
  c.name = name;
  c.width = width;
  c.height = Library::kRowHeight;
  c.drive_strength = drive;
  // Spread input pins along the bottom edge, output near the right edge.
  for (int i = 0; i < n_inputs; ++i) {
    LibPin p;
    p.name = std::string(1, static_cast<char>('A' + i));
    p.dir = PinDir::kInput;
    p.offset = {width * (i + 1) / (n_inputs + 2), Library::kRowHeight / 4};
    c.pins.push_back(p);
  }
  LibPin out;
  out.name = out_name;
  out.dir = PinDir::kOutput;
  out.offset = {width * (n_inputs + 1) / (n_inputs + 2),
                Library::kRowHeight / 2};
  c.pins.push_back(out);
  return c;
}

}  // namespace

Library Library::make_default() {
  Library lib;
  // Inverters and buffers, four drive strengths each.
  lib.add_cell(gate("INV_X1", 200, 1, 1));
  lib.add_cell(gate("INV_X2", 300, 2, 1));
  lib.add_cell(gate("INV_X4", 500, 4, 1));
  lib.add_cell(gate("INV_X8", 900, 8, 1));
  lib.add_cell(gate("BUF_X1", 300, 1, 1));
  lib.add_cell(gate("BUF_X2", 400, 2, 1));
  lib.add_cell(gate("BUF_X4", 600, 4, 1));
  lib.add_cell(gate("BUF_X8", 1000, 8, 1));
  // Two-input gates.
  lib.add_cell(gate("NAND2_X1", 400, 1, 2));
  lib.add_cell(gate("NAND2_X2", 500, 2, 2));
  lib.add_cell(gate("NOR2_X1", 400, 1, 2));
  lib.add_cell(gate("NOR2_X2", 500, 2, 2));
  lib.add_cell(gate("XOR2_X1", 600, 1, 2));
  lib.add_cell(gate("AOI21_X1", 500, 1, 3));
  lib.add_cell(gate("OAI21_X1", 500, 1, 3));
  lib.add_cell(gate("MUX2_X1", 700, 1, 3));
  // Flops: D, CK inputs, Q output.
  {
    LibCell ff = gate("DFF_X1", 1200, 1, 2, "Q");
    ff.pins[0].name = "D";
    ff.pins[1].name = "CK";
    lib.add_cell(ff);
  }
  {
    LibCell ff = gate("DFF_X2", 1400, 2, 2, "Q");
    ff.pins[0].name = "D";
    ff.pins[1].name = "CK";
    lib.add_cell(ff);
  }
  // Macros: a RAM-like and a multiplier-like block. Pin offsets at the
  // block boundary.
  {
    LibCell m;
    m.name = "MACRO_RAM";
    m.width = 20000;
    m.height = 16000;
    m.drive_strength = 4;
    m.is_macro = true;
    for (int i = 0; i < 4; ++i) {
      m.pins.push_back(LibPin{"DI" + std::to_string(i), PinDir::kInput,
                              {0, m.height * (i + 1) / 6}});
      m.pins.push_back(LibPin{"DO" + std::to_string(i), PinDir::kOutput,
                              {m.width, m.height * (i + 1) / 6}});
    }
    lib.add_cell(std::move(m));
  }
  {
    LibCell m;
    m.name = "MACRO_MUL";
    m.width = 12000;
    m.height = 12000;
    m.drive_strength = 4;
    m.is_macro = true;
    for (int i = 0; i < 3; ++i) {
      m.pins.push_back(LibPin{"A" + std::to_string(i), PinDir::kInput,
                              {m.width * (i + 1) / 5, 0}});
      m.pins.push_back(LibPin{"P" + std::to_string(i), PinDir::kOutput,
                              {m.width * (i + 1) / 5, m.height}});
    }
    lib.add_cell(std::move(m));
  }
  return lib;
}

}  // namespace repro::netlist

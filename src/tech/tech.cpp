#include "tech/tech.hpp"

#include <stdexcept>

namespace repro::tech {

Technology::Technology(std::vector<MetalLayer> metals,
                       std::vector<ViaLayer> vias, geom::Dbu gcell_size)
    : metals_(std::move(metals)),
      vias_(std::move(vias)),
      gcell_size_(gcell_size) {
  assert(!metals_.empty());
  assert(vias_.size() + 1 == metals_.size());
  assert(gcell_size_ > 0);
}

Technology Technology::make_default(geom::Dbu gcell_size) {
  // Nine metal layers. Odd layers are horizontal (so M9, the top layer, is
  // horizontal), even layers vertical. Wire widths follow the common
  // 1x/2x/4x grouping, giving the 4x spread the paper reports; capacities
  // shrink accordingly so that congestion concentrates in the lower layers.
  std::vector<MetalLayer> metals;
  for (int i = 1; i <= 9; ++i) {
    MetalLayer m;
    m.index = i;
    m.name = "M" + std::to_string(i);
    m.preferred = (i % 2 == 1) ? Direction::kHorizontal : Direction::kVertical;
    if (i <= 3) {
      m.width_mult = 1;
      m.capacity = 12;
    } else if (i <= 6) {
      m.width_mult = 2;
      m.capacity = 8;
    } else {
      m.width_mult = 4;
      m.capacity = 5;
    }
    // M1 is effectively owned by cell internals and pin access; give the
    // global router no capacity there, as industrial global routers do.
    if (i == 1) m.capacity = 0;
    metals.push_back(m);
  }
  std::vector<ViaLayer> vias;
  for (int i = 1; i <= 8; ++i) {
    vias.push_back(ViaLayer{"V" + std::to_string(i), i});
  }
  return Technology(std::move(metals), std::move(vias), gcell_size);
}

const char* to_string(Direction d) {
  return d == Direction::kHorizontal ? "HORIZONTAL" : "VERTICAL";
}

Direction direction_from_string(const std::string& s) {
  if (s == "HORIZONTAL") return Direction::kHorizontal;
  if (s == "VERTICAL") return Direction::kVertical;
  throw std::invalid_argument("unknown direction: " + s);
}

}  // namespace repro::tech

// Technology description: metal / via layer stack.
//
// The paper's setup (ISPD-2011 superblue) has 9 routing metal layers and 8
// via layers, with a 4x spread in wire widths across the stack and
// significant congestion variation between layers. This module captures the
// facts the attack and the router consume:
//   * per-metal-layer preferred routing direction (alternating; M9 is
//     horizontal, which is what makes DiffVpinY == 0 for matches at split 8),
//   * per-layer wire width multiplier (wider wires on top => fewer tracks),
//   * per-layer GCell edge capacity for global routing.
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "geom/geom.hpp"

namespace repro::tech {

/// Preferred routing direction of a metal layer.
enum class Direction { kHorizontal, kVertical };

/// One metal layer of the stack.
struct MetalLayer {
  std::string name;       ///< e.g. "M3"
  int index = 0;          ///< 1-based: M1..M9
  Direction preferred = Direction::kHorizontal;
  int width_mult = 1;     ///< wire width multiplier relative to M1
  int capacity = 0;       ///< routing tracks per GCell edge in the preferred
                          ///< direction (0 for layers closed to routing)
};

/// One via layer. Via layer i connects metal i and metal i+1; a *split* at
/// via layer i hands the attacker everything up to and including metal i.
struct ViaLayer {
  std::string name;  ///< e.g. "V3"
  int index = 0;     ///< 1-based: V1..V8
};

/// The technology: layer stack plus global-routing grid parameters.
class Technology {
 public:
  /// Builds the default 9-metal / 8-via stack used throughout the
  /// reproduction. `gcell_size` is the GCell edge length in DBU.
  static Technology make_default(geom::Dbu gcell_size = 2000);

  int num_metal_layers() const { return static_cast<int>(metals_.size()); }
  int num_via_layers() const { return static_cast<int>(vias_.size()); }

  const MetalLayer& metal(int index) const {  // 1-based
    assert(index >= 1 && index <= num_metal_layers());
    return metals_[static_cast<std::size_t>(index - 1)];
  }
  const ViaLayer& via(int index) const {  // 1-based
    assert(index >= 1 && index <= num_via_layers());
    return vias_[static_cast<std::size_t>(index - 1)];
  }

  MetalLayer& mutable_metal(int index) {
    assert(index >= 1 && index <= num_metal_layers());
    return metals_[static_cast<std::size_t>(index - 1)];
  }

  geom::Dbu gcell_size() const { return gcell_size_; }

  /// True if `split_layer` (a via layer index) is the highest via layer;
  /// in that case exactly one metal layer lies above the split and the
  /// DiffVpin limit of paper SSIII-G applies.
  bool is_top_via_layer(int split_layer) const {
    return split_layer == num_via_layers();
  }

  /// Preferred direction of the single metal layer above the top via layer.
  Direction top_metal_direction() const {
    return metals_.back().preferred;
  }

  /// Direct construction for tests / custom stacks.
  Technology(std::vector<MetalLayer> metals, std::vector<ViaLayer> vias,
             geom::Dbu gcell_size);

 private:
  std::vector<MetalLayer> metals_;
  std::vector<ViaLayer> vias_;
  geom::Dbu gcell_size_ = 2000;
};

/// Human-readable direction name ("HORIZONTAL"/"VERTICAL"), used by the
/// LEF writer.
const char* to_string(Direction d);

/// Parses a direction name as written by to_string(). Throws
/// std::invalid_argument on anything else.
Direction direction_from_string(const std::string& s);

}  // namespace repro::tech

// Shared JSON reader used for checkpoint manifests, campaign state, and
// digest files. The inputs are our own writes, but by read time they
// are adversarial (crash-torn, bit-flipped), so every malformation must
// come back as kParseError — never UB, never a partial DOM.
#include "common/json_scan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace {

using repro::common::JsonValue;
using repro::common::parse_json;
using repro::common::StatusCode;

TEST(JsonScan, ParsesTheShapesOurStateFilesUse) {
  auto doc = parse_json(
      R"({"format_version": 1, "run_key": "0xDEADBEEF", "complete": true,
          "shards": [{"id": "L8_f3", "digest": "333f9d1d5a30093c",
                      "size": 18446744073709551615}],
          "note": "a\tb\"c", "ratio": -0.25, "missing": null})");
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  EXPECT_EQ(doc->get_i64("format_version"), 1);
  EXPECT_TRUE(doc->get_bool("complete"));
  EXPECT_EQ(doc->get_string("note"), "a\tb\"c");
  EXPECT_DOUBLE_EQ(doc->get_double("ratio"), -0.25);
  const JsonValue* shards = doc->find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_TRUE(shards->is_array());
  ASSERT_EQ(shards->items.size(), 1u);
  const JsonValue& shard = shards->items[0];
  EXPECT_EQ(shard.get_string("id"), "L8_f3");
  // Exact u64 round trip: beyond double precision, from the raw token.
  EXPECT_EQ(shard.get_u64("size"), 18446744073709551615ull);
  const JsonValue* missing = doc->find("missing");
  ASSERT_NE(missing, nullptr);
  EXPECT_EQ(missing->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(doc->find("absent"), nullptr);
}

TEST(JsonScan, HexStringsReadAsU64) {
  auto doc = parse_json(R"({"crc": "0x1A2B3C4D", "bare": "ff"})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->get_u64("crc"), 0x1A2B3C4Dull);
}

TEST(JsonScan, MistypedFieldsYieldTheDefaultNotACrash) {
  auto doc = parse_json(R"({"n": "not-a-number", "s": 42, "b": "yes"})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->get_i64("n", -7), -7);
  EXPECT_EQ(doc->get_string("s", "fallback"), "fallback");
  EXPECT_EQ(doc->get_bool("b", true), true);
  EXPECT_EQ(doc->get_u64("absent", 99), 99u);
}

TEST(JsonScan, MalformedDocumentsAreParseErrors) {
  const char* bad[] = {
      "",                       // empty
      "{",                      // unterminated object
      R"({"a": 1,})",           // trailing comma
      R"({"a" 1})",             // missing colon
      R"({'a': 1})",            // wrong quotes
      R"({"a": "unterminated)", // unterminated string
      "[1, 2",                  // unterminated array
      "tru",                    // truncated keyword
      R"({"a": 1} trailing)",   // trailing garbage
      "\x01\x02\x03",           // binary noise
  };
  for (const char* text : bad) {
    auto doc = parse_json(text);
    EXPECT_FALSE(doc.ok()) << "accepted: " << text;
    if (!doc.ok()) {
      EXPECT_EQ(doc.status().code(), StatusCode::kParseError) << text;
    }
  }
}

TEST(JsonScan, TruncationAtEveryPrefixIsAlwaysAParseError) {
  // The crash-torn-manifest scenario: any prefix of a valid document is
  // either rejected or (for a prefix that happens to be complete JSON,
  // which cannot occur for an object document) parsed — never UB.
  const std::string doc =
      R"({"entries": {"fold_0.result": {"size": 123, "crc32": "aabbccdd"}}})";
  for (std::size_t cut = 0; cut < doc.size(); ++cut) {
    auto r = parse_json(doc.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix of length " << cut << " accepted";
  }
  EXPECT_TRUE(parse_json(doc).ok());
}

TEST(JsonScan, DepthCapStopsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  auto r = parse_json(deep);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  // A document within the cap still parses.
  std::string ok;
  for (int i = 0; i < 32; ++i) ok += '[';
  for (int i = 0; i < 32; ++i) ok += ']';
  EXPECT_TRUE(parse_json(ok).ok());
}

TEST(JsonScan, ParseErrorsCarryAByteOffset) {
  auto r = parse_json(R"({"a": 1, "b": })");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("at byte"), std::string::npos)
      << r.status().message();
}

}  // namespace

#include <gtest/gtest.h>

#include "core/attack.hpp"
#include "test_helpers.hpp"

namespace repro::core {
namespace {

TEST(AttackConfig, NameParsing) {
  const AttackConfig ml9 = config_from_name("ML-9");
  EXPECT_FALSE(ml9.improved);
  EXPECT_EQ(ml9.features, FeatureSet::kF9);
  EXPECT_FALSE(ml9.limit_top_direction);
  EXPECT_FALSE(ml9.use_random_forest);

  const AttackConfig imp7 = config_from_name("Imp-7");
  EXPECT_TRUE(imp7.improved);
  EXPECT_EQ(imp7.features, FeatureSet::kF7);

  const AttackConfig imp11y = config_from_name("Imp-11Y");
  EXPECT_TRUE(imp11y.improved);
  EXPECT_EQ(imp11y.features, FeatureSet::kF11);
  EXPECT_TRUE(imp11y.limit_top_direction);

  const AttackConfig rf = config_from_name("RF:Imp-7");
  EXPECT_TRUE(rf.use_random_forest);
  EXPECT_EQ(rf.features, FeatureSet::kF7);

  EXPECT_THROW(config_from_name("Bogus-9"), std::invalid_argument);
  EXPECT_THROW(config_from_name("Imp-8"), std::invalid_argument);
}

class AttackOnSynthetic : public ::testing::Test {
 protected:
  void SetUp() override {
    for (std::uint64_t s = 1; s <= 3; ++s) {
      challenges_.push_back(testing::make_grid_challenge(150, 100000, 8000,
                                                         s));
    }
    for (const auto& c : challenges_) training_.push_back(&c);
  }
  std::vector<splitmfg::SplitChallenge> challenges_;
  std::vector<const splitmfg::SplitChallenge*> training_;
};

TEST_F(AttackOnSynthetic, LearnsTheMatchStructure) {
  // Train on challenges 1..2, test on 0: matches are always exactly
  // match_dx apart on one row, so the classifier must get near-perfect
  // accuracy at a small LoC.
  const auto target = challenges_[0];
  std::vector<const splitmfg::SplitChallenge*> training{&challenges_[1],
                                                        &challenges_[2]};
  const AttackConfig cfg = config_from_name("ML-9");
  const AttackResult res = AttackEngine::run(target, training, cfg);
  EXPECT_GT(res.accuracy_at_threshold(0.5), 0.95);
  EXPECT_LT(res.mean_loc_at_threshold(0.5), 10.0);
}

TEST_F(AttackOnSynthetic, AccuracyAndLocMonotoneInThreshold) {
  const AttackConfig cfg = config_from_name("Imp-9");
  const AttackResult res = AttackEngine::run(
      challenges_[0],
      std::vector<const splitmfg::SplitChallenge*>{&challenges_[1],
                                                   &challenges_[2]},
      cfg);
  double prev_acc = 2.0, prev_loc = 1e18;
  for (double t = 0.0; t <= 1.0; t += 0.05) {
    const double acc = res.accuracy_at_threshold(t);
    const double loc = res.mean_loc_at_threshold(t);
    EXPECT_LE(acc, prev_acc + 1e-12);
    EXPECT_LE(loc, prev_loc + 1e-12);
    prev_acc = acc;
    prev_loc = loc;
  }
}

TEST_F(AttackOnSynthetic, AlignmentQueriesAreConsistent) {
  const AttackConfig cfg = config_from_name("Imp-11");
  const AttackResult res = AttackEngine::run(
      challenges_[0],
      std::vector<const splitmfg::SplitChallenge*>{&challenges_[1],
                                                   &challenges_[2]},
      cfg);
  // If we can reach accuracy a with mean LoC L, then accuracy at L must be
  // >= a.
  for (double a : {0.5, 0.8, 0.9}) {
    const auto loc = res.mean_loc_for_accuracy(a);
    if (loc) {
      EXPECT_GE(res.accuracy_for_mean_loc(*loc) + 1e-9, a);
    }
  }
  // Unreachable accuracy gives nullopt.
  EXPECT_FALSE(res.mean_loc_for_accuracy(1.01).has_value());
}

TEST_F(AttackOnSynthetic, NeighborhoodCreatesSaturation) {
  // Training matches: half at distance 8000, half at 16000. A percentile
  // of 45% puts the neighbourhood radius at 8000, so a test design whose
  // matches all sit at 16000 saturates at (near) zero accuracy no matter
  // the LoC size - the paper's Table IV dashes.
  AttackConfig cfg = config_from_name("Imp-9");
  cfg.neighborhood_percentile = 0.45;
  const auto far = testing::make_grid_challenge(150, 100000, 16000, 9);
  std::vector<const splitmfg::SplitChallenge*> training{&challenges_[1], &far};
  const AttackResult res = AttackEngine::run(far, training, cfg);
  EXPECT_LT(res.max_accuracy(), 0.2);
}

TEST_F(AttackOnSynthetic, YLimitFiltersCrossRowPairs) {
  AttackConfig cfg = config_from_name("ML-9Y");
  const AttackResult res = AttackEngine::run(
      challenges_[0],
      std::vector<const splitmfg::SplitChallenge*>{&challenges_[1],
                                                   &challenges_[2]},
      cfg);
  // Same-row matches survive the Y filter: accuracy stays high and the
  // number of evaluated candidates shrinks dramatically.
  EXPECT_GT(res.accuracy_at_threshold(0.5), 0.95);
  long evaluated = 0;
  for (const auto& r : res.per_vpin()) evaluated += r.num_evaluated;
  // Without the filter ~n^2/2 pairs are evaluated; with it only same-row.
  EXPECT_LT(evaluated, 300L * 300L / 8);
}

TEST_F(AttackOnSynthetic, TrainedModelPredictPairAgreesWithFilter) {
  const AttackConfig cfg = config_from_name("Imp-9");
  const TrainedModel model = AttackEngine::train(training_, cfg);
  ASSERT_TRUE(model.filter.neighborhood.has_value());
  const auto& a = challenges_[0].vpin(0);
  const auto& b = challenges_[0].vpin(1);  // the true match, 8000 away
  const auto p = model.predict_pair(a, b);
  ASSERT_TRUE(p.has_value());
  EXPECT_GE(*p, 0.0);
  EXPECT_LE(*p, 1.0);
  // A pair far outside the neighbourhood is filtered.
  splitmfg::Vpin far = b;
  far.pos.x = a.pos.x + 90000;
  EXPECT_FALSE(model.predict_pair(a, far).has_value());
}

TEST_F(AttackOnSynthetic, TradeoffCurveIsMonotone) {
  const AttackConfig cfg = config_from_name("ML-9");
  const AttackResult res = AttackEngine::run(
      challenges_[0],
      std::vector<const splitmfg::SplitChallenge*>{&challenges_[1],
                                                   &challenges_[2]},
      cfg);
  const auto curve =
      res.tradeoff_curve({0.001, 0.01, 0.05, 0.1, 0.5, 1.0});
  ASSERT_EQ(curve.size(), 6u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].second, curve[i].second + 1e-12)
        << "accuracy must not decrease with a larger LoC budget";
  }
  // With the whole design as LoC, ML-9 reaches (near) perfect accuracy.
  EXPECT_GT(curve.back().second, 0.99);
}

TEST_F(AttackOnSynthetic, TargetSamplingGivesUnbiasedEstimates) {
  AttackConfig full_cfg = config_from_name("ML-9");
  AttackConfig sampled_cfg = full_cfg;
  sampled_cfg.max_test_vpins = 100;
  const std::vector<const splitmfg::SplitChallenge*> training{
      &challenges_[1], &challenges_[2]};
  const AttackResult full = AttackEngine::run(challenges_[0], training,
                                              full_cfg);
  const AttackResult sampled =
      AttackEngine::run(challenges_[0], training, sampled_cfg);
  int tested = 0;
  for (const auto& r : sampled.per_vpin()) tested += r.tested;
  EXPECT_EQ(tested, 100);
  // Estimates close to the full run on this easy, homogeneous geometry.
  EXPECT_NEAR(sampled.accuracy_at_threshold(0.5),
              full.accuracy_at_threshold(0.5), 0.1);
  EXPECT_NEAR(sampled.mean_loc_at_threshold(0.5),
              full.mean_loc_at_threshold(0.5),
              0.5 * full.mean_loc_at_threshold(0.5) + 2.0);
}

TEST_F(AttackOnSynthetic, ResultCarriesTimingAndSizes) {
  const AttackConfig cfg = config_from_name("ML-9");
  const AttackResult res = AttackEngine::run(
      challenges_[0],
      std::vector<const splitmfg::SplitChallenge*>{&challenges_[1],
                                                   &challenges_[2]},
      cfg);
  EXPECT_EQ(res.num_vpins(), challenges_[0].num_vpins());
  EXPECT_GT(res.train_seconds, 0.0);
  EXPECT_GT(res.test_seconds, 0.0);
  EXPECT_EQ(res.split_layer(), 8);
}

}  // namespace
}  // namespace repro::core

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/verilog.hpp"
#include "synth/synth.hpp"

namespace repro::netlist {
namespace {

std::shared_ptr<const Library> lib() {
  static auto l = std::make_shared<const Library>(Library::make_default());
  return l;
}

TEST(Verilog, RoundTripSmallNetlist) {
  Netlist nl(lib(), "demo");
  const int inv = *lib()->find("INV_X1");
  const int nand = *lib()->find("NAND2_X1");
  const CellId a = nl.add_cell("u_a", inv, {100, 400});
  const CellId b = nl.add_cell("u_b", nand, {900, 800});
  const CellId c = nl.add_cell("u_c", inv, {1700, 1200});
  Net n1{"n1", {{a, 1}, {b, 0}}, 0};
  Net n2{"n2", {{b, 2}, {c, 0}}, 0};
  nl.add_net(n1);
  nl.add_net(n2);

  std::stringstream ss;
  write_verilog(ss, nl);
  const Netlist back = read_verilog(ss, lib());

  EXPECT_EQ(back.name(), "demo");
  ASSERT_EQ(back.num_cells(), 3);
  ASSERT_EQ(back.num_nets(), 2);
  EXPECT_NO_THROW(back.check());
  for (CellId i = 0; i < 3; ++i) {
    EXPECT_EQ(back.cell(i).name, nl.cell(i).name);
    EXPECT_EQ(back.cell(i).lib_cell, nl.cell(i).lib_cell);
    EXPECT_EQ(back.cell(i).origin, nl.cell(i).origin);
  }
  for (NetId n = 0; n < 2; ++n) {
    EXPECT_EQ(back.net(n).name, nl.net(n).name);
    EXPECT_EQ(back.net(n).pins, nl.net(n).pins);
    EXPECT_EQ(back.net(n).driver, nl.net(n).driver);
  }
}

TEST(Verilog, RoundTripSynthesizedDesign) {
  synth::SynthParams p = synth::preset("sb18");
  p.num_cells = 800;
  const synth::SynthDesign d = synth::generate(p);
  std::stringstream ss;
  write_verilog(ss, *d.netlist);
  const Netlist back = read_verilog(ss, d.lib);
  EXPECT_EQ(back.num_cells(), d.netlist->num_cells());
  EXPECT_EQ(back.num_nets(), d.netlist->num_nets());
  EXPECT_NO_THROW(back.check());
  // Spot-check connectivity of a few nets.
  for (NetId n = 0; n < std::min(50, back.num_nets()); ++n) {
    EXPECT_EQ(back.net(n).pins.size(), d.netlist->net(n).pins.size());
  }
}

TEST(Verilog, ParserRejectsGarbage) {
  std::stringstream ss("module x ; UNKNOWN_CELL u1 ( .A(n1) ) ; endmodule");
  EXPECT_THROW(read_verilog(ss, lib()), std::runtime_error);
  std::stringstream ss2("not verilog at all");
  EXPECT_THROW(read_verilog(ss2, lib()), std::runtime_error);
  std::stringstream ss3("module x ;");  // missing endmodule
  EXPECT_THROW(read_verilog(ss3, lib()), std::runtime_error);
}

TEST(Verilog, DanglingWiresAreDropped) {
  std::stringstream ss(
      "module x ;\n  wire lonely ;\n  wire n1 ;\n"
      "  INV_X1 a ( .Z(n1) ) ;\n  INV_X1 b ( .A(n1) ) ;\nendmodule\n");
  const Netlist nl = read_verilog(ss, lib());
  EXPECT_EQ(nl.num_nets(), 1);
  EXPECT_EQ(nl.net(0).name, "n1");
}

}  // namespace
}  // namespace repro::netlist

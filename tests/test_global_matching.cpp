#include <gtest/gtest.h>

#include "core/global_matching.hpp"
#include "test_helpers.hpp"

namespace repro::core {
namespace {

/// Builds an AttackResult where every v-pin's candidate list is supplied
/// directly (sorted by p descending).
AttackResult make_result(const splitmfg::SplitChallenge& ch,
                         std::vector<std::vector<Candidate>> tops) {
  AttackResult res(ch.design_name, ch.split_layer, 64);
  auto& pv = res.mutable_per_vpin();
  pv.resize(static_cast<std::size_t>(ch.num_vpins()));
  for (int v = 0; v < ch.num_vpins(); ++v) {
    auto& r = pv[static_cast<std::size_t>(v)];
    r.hist.assign(64, 0);
    r.has_match = !ch.vpin(v).matches.empty();
    if (v < static_cast<int>(tops.size())) {
      r.top = std::move(tops[static_cast<std::size_t>(v)]);
      std::sort(r.top.begin(), r.top.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.p > b.p;
                });
    }
  }
  res.finalize();
  return res;
}

TEST(GlobalMatching, EnforcesOneToOne) {
  // Three pairs (0,1), (2,3), (4,5). V-pin 2's list ranks v-pin 1 (already
  // owned by 0 at higher p) above its true match 3: with capacity 1 the
  // greedy matcher must give 1 to 0 and fall back to 3 for 2.
  const auto ch = testing::make_grid_challenge(3, 100000, 8000, 1);
  std::vector<std::vector<Candidate>> tops(6);
  tops[0] = {{1, 0.95f, 8000.f}};
  tops[1] = {{0, 0.95f, 8000.f}};
  tops[2] = {{1, 0.90f, 9000.f}, {3, 0.85f, 8000.f}};
  tops[3] = {{2, 0.85f, 8000.f}};
  tops[4] = {{5, 0.80f, 8000.f}};
  tops[5] = {{4, 0.80f, 8000.f}};
  const auto res = make_result(ch, std::move(tops));
  const auto m = global_matching_attack(res, ch);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
  ASSERT_EQ(m.chosen[2].size(), 1u);
  EXPECT_EQ(m.chosen[2][0], 3);
}

TEST(GlobalMatching, CapacityLimitsPartners) {
  const auto ch = testing::make_grid_challenge(2, 100000, 8000, 2);
  std::vector<std::vector<Candidate>> tops(4);
  // V-pin 0 has three hot candidates; capacity 1 keeps only the best.
  tops[0] = {{1, 0.9f, 8000.f}, {2, 0.8f, 5000.f}, {3, 0.7f, 4000.f}};
  const auto res = make_result(ch, std::move(tops));
  GlobalMatchingOptions opt;
  opt.capacity = 1;
  const auto m1 = global_matching_attack(res, ch, opt);
  EXPECT_EQ(m1.chosen[0].size(), 1u);
  opt.capacity = 2;
  const auto m2 = global_matching_attack(res, ch, opt);
  EXPECT_EQ(m2.chosen[0].size(), 2u);
}

TEST(GlobalMatching, MinProbabilityPrunes) {
  const auto ch = testing::make_grid_challenge(1, 100000, 8000, 3);
  std::vector<std::vector<Candidate>> tops(2);
  tops[0] = {{1, 0.4f, 8000.f}};
  tops[1] = {{0, 0.4f, 8000.f}};
  const auto res = make_result(ch, std::move(tops));
  GlobalMatchingOptions opt;
  opt.min_probability = 0.5;
  const auto m = global_matching_attack(res, ch, opt);
  EXPECT_TRUE(m.chosen[0].empty());
  EXPECT_DOUBLE_EQ(m.success_rate, 0.0);
}

TEST(GlobalMatching, BeatsOrMatchesPaOnContendedGeometry) {
  // End to end: on the synthetic grid geometry the one-to-one constraint
  // should not hurt and typically helps.
  std::vector<splitmfg::SplitChallenge> challenges;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    challenges.push_back(testing::make_grid_challenge(120, 100000, 8000, s));
  }
  std::vector<const splitmfg::SplitChallenge*> training{&challenges[1],
                                                        &challenges[2]};
  const AttackConfig cfg = config_from_name("Imp-9");
  const auto res = AttackEngine::run(challenges[0], training, cfg);
  const auto m = global_matching_attack(res, challenges[0]);
  EXPECT_GT(m.success_rate, 0.5);
  EXPECT_GT(m.num_pairs_considered, 0);
}

}  // namespace
}  // namespace repro::core

// Inter-process lock semantics: exclusive acquisition, fail-fast
// contention diagnostics, release on destruction, and stale-lock
// reclamation — the property that makes a SIGKILLed worker's shard
// claimable again without any cleanup step.
#include "common/lockfile.hpp"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;
using repro::common::DiagnosticSink;
using repro::common::FileLock;
using repro::common::process_alive;
using repro::common::read_lock_owner;
using repro::common::StatusCode;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

bool has_diag(const DiagnosticSink& sink, const std::string& code) {
  for (const auto& d : sink.diagnostics()) {
    if (d.code == code) return true;
  }
  return false;
}

TEST(FileLock, AcquireRecordsOwnerAndHolds) {
  const std::string path = fresh_dir("lock_basic") + "/x.lock";
  DiagnosticSink sink;
  auto lock = FileLock::acquire(path, "unit-test", sink);
  ASSERT_TRUE(lock.ok()) << lock.status().to_string();
  EXPECT_TRUE(lock->held());
  const FileLock::Owner owner = read_lock_owner(path);
  EXPECT_EQ(owner.pid, static_cast<long>(::getpid()));
  EXPECT_EQ(owner.label, "unit-test");
}

TEST(FileLock, SecondAcquireFailsFastNamingTheHolder) {
  // Two open file descriptions conflict even within one process, so the
  // contention path is testable without fork.
  const std::string path = fresh_dir("lock_contention") + "/x.lock";
  DiagnosticSink sink;
  auto first = FileLock::acquire(path, "campaign", sink);
  ASSERT_TRUE(first.ok());
  auto second = FileLock::acquire(path, "intruder", sink);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  const std::string msg = second.status().message();
  EXPECT_NE(msg.find(std::to_string(::getpid())), std::string::npos)
      << "the holder's pid belongs in the diagnostic: " << msg;
  EXPECT_NE(msg.find("campaign"), std::string::npos)
      << "the holder's label belongs in the diagnostic: " << msg;
}

TEST(FileLock, ReleasedOnDestructionAndOnExplicitRelease) {
  const std::string path = fresh_dir("lock_release") + "/x.lock";
  DiagnosticSink sink;
  {
    auto lock = FileLock::acquire(path, "scoped", sink);
    ASSERT_TRUE(lock.ok());
  }
  auto again = FileLock::acquire(path, "next", sink);
  ASSERT_TRUE(again.ok()) << "destruction must release the flock";
  again->release();
  EXPECT_FALSE(again->held());
  again->release();  // idempotent
  auto third = FileLock::acquire(path, "after-release", sink);
  EXPECT_TRUE(third.ok());
}

TEST(FileLock, MoveTransfersOwnershipWithoutReleasing) {
  const std::string path = fresh_dir("lock_move") + "/x.lock";
  DiagnosticSink sink;
  auto lock = FileLock::acquire(path, "mover", sink);
  ASSERT_TRUE(lock.ok());
  FileLock moved = std::move(*lock);
  EXPECT_TRUE(moved.held());
  // Still exclusively held through the moved-to object.
  EXPECT_FALSE(FileLock::acquire(path, "probe", sink).ok());
}

TEST(FileLock, StaleLockFromDeadPidIsReclaimedWithNote) {
  // A lock file whose recorded owner is dead carries no kernel lock
  // (flock dies with the process); acquisition must succeed and note
  // the reclaim instead of deadlocking on the corpse.
  const std::string path = fresh_dir("lock_stale") + "/x.lock";
  {
    std::ofstream os(path);
    os << "999999999 dead-worker\n";  // beyond kernel.pid_max
  }
  DiagnosticSink sink;
  auto lock = FileLock::acquire(path, "reclaimer", sink);
  ASSERT_TRUE(lock.ok()) << lock.status().to_string();
  EXPECT_TRUE(has_diag(sink, "lockfile.stale_reclaimed"));
  const FileLock::Owner owner = read_lock_owner(path);
  EXPECT_EQ(owner.pid, static_cast<long>(::getpid()));
}

TEST(FileLock, UnreachablePathFailsCleanly) {
  DiagnosticSink sink;
  auto lock = FileLock::acquire(
      fresh_dir("lock_unreachable") + "/no/such/dir/x.lock", "x", sink);
  EXPECT_FALSE(lock.ok());
  EXPECT_NE(lock.status().code(), StatusCode::kFailedPrecondition)
      << "an I/O failure is not lock contention";
}

TEST(FileLock, ProcessAlivenessProbe) {
  EXPECT_TRUE(process_alive(static_cast<long>(::getpid())));
  EXPECT_FALSE(process_alive(999999999));
  EXPECT_FALSE(process_alive(0));
}

TEST(FileLock, OwnerOfMissingOrEmptyFileIsZero) {
  const std::string dir = fresh_dir("lock_owner_edge");
  EXPECT_EQ(read_lock_owner(dir + "/absent.lock").pid, 0);
  { std::ofstream os(dir + "/empty.lock"); }
  EXPECT_EQ(read_lock_owner(dir + "/empty.lock").pid, 0);
}

}  // namespace

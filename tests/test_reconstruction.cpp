#include <gtest/gtest.h>

#include "core/global_matching.hpp"
#include "core/reconstruction.hpp"
#include "test_helpers.hpp"

namespace repro::core {
namespace {

TEST(Reconstruction, PerfectGuessScoresPerfectly) {
  const auto ch = testing::make_grid_challenge(20, 100000, 8000, 1);
  std::vector<std::vector<splitmfg::VpinId>> chosen(
      static_cast<std::size_t>(ch.num_vpins()));
  for (const auto& v : ch.vpins) {
    chosen[static_cast<std::size_t>(v.id)] = v.matches;
  }
  const ReconstructionReport rep = score_reconstruction(ch, chosen);
  EXPECT_DOUBLE_EQ(rep.precision, 1.0);
  EXPECT_DOUBLE_EQ(rep.recall, 1.0);
  EXPECT_EQ(rep.cut_nets, 20);
  EXPECT_EQ(rep.recovered_nets, 20);
}

TEST(Reconstruction, EmptyGuessHasZeroRecall) {
  const auto ch = testing::make_grid_challenge(10, 100000, 8000, 2);
  const std::vector<std::vector<splitmfg::VpinId>> chosen(
      static_cast<std::size_t>(ch.num_vpins()));
  const ReconstructionReport rep = score_reconstruction(ch, chosen);
  EXPECT_EQ(rep.guessed_pairs, 0);
  EXPECT_DOUBLE_EQ(rep.recall, 0.0);
  EXPECT_EQ(rep.recovered_nets, 0);
}

TEST(Reconstruction, WrongMergeSpoilsBothNets) {
  const auto ch = testing::make_grid_challenge(2, 100000, 8000, 3);
  // Cross-wire the two nets: 0-3 and 2-1 instead of 0-1 and 2-3.
  std::vector<std::vector<splitmfg::VpinId>> chosen(4);
  chosen[0] = {3};
  chosen[3] = {0};
  chosen[2] = {1};
  chosen[1] = {2};
  const ReconstructionReport rep = score_reconstruction(ch, chosen);
  EXPECT_DOUBLE_EQ(rep.precision, 0.0);
  EXPECT_DOUBLE_EQ(rep.recall, 0.0);
  EXPECT_EQ(rep.recovered_nets, 0);
}

TEST(Reconstruction, PartialGuessCountsExactNetsOnly) {
  const auto ch = testing::make_grid_challenge(3, 100000, 8000, 4);
  // Net 0 (v-pins 0,1) correct; net 1 (2,3) missing; net 2 (4,5) correct.
  std::vector<std::vector<splitmfg::VpinId>> chosen(6);
  chosen[0] = {1};
  chosen[1] = {0};
  chosen[4] = {5};
  chosen[5] = {4};
  const ReconstructionReport rep = score_reconstruction(ch, chosen);
  EXPECT_DOUBLE_EQ(rep.precision, 1.0);
  EXPECT_NEAR(rep.recall, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(rep.recovered_nets, 2);
}

TEST(Reconstruction, PicksConversionMirrorsOneSidedAnswers) {
  const std::vector<splitmfg::VpinId> picks = {1, splitmfg::kInvalidVpin, 3,
                                               splitmfg::kInvalidVpin};
  const auto chosen = picks_to_chosen(picks);
  ASSERT_EQ(chosen.size(), 4u);
  EXPECT_EQ(chosen[0], std::vector<splitmfg::VpinId>{1});
  EXPECT_TRUE(chosen[1].empty());
  EXPECT_EQ(chosen[2], std::vector<splitmfg::VpinId>{3});
}

TEST(Reconstruction, EndToEndWithGlobalMatching) {
  std::vector<splitmfg::SplitChallenge> challenges;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    challenges.push_back(testing::make_grid_challenge(120, 100000, 8000, s));
  }
  std::vector<const splitmfg::SplitChallenge*> training{&challenges[1],
                                                        &challenges[2]};
  const AttackConfig cfg = config_from_name("Imp-9");
  const auto res = AttackEngine::run(challenges[0], training, cfg);
  const auto m = global_matching_attack(res, challenges[0]);
  const auto rep = score_reconstruction(challenges[0], m.chosen);
  EXPECT_GT(rep.precision, 0.5);
  EXPECT_GT(rep.recall, 0.5);
  EXPECT_GT(rep.net_recovery_rate, 0.4);
}

}  // namespace
}  // namespace repro::core

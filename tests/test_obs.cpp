// Tests for the observability layer: metric semantics, span nesting and
// deterministic merge across thread counts, trace JSON well-formedness,
// the disabled-mode zero-allocation fast path, and concurrent updates
// (the latter also runs under scripts/check_tsan.sh).
#include "common/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "common/diagnostics.hpp"
#include "common/parallel.hpp"

// --- global allocation counter for the disabled-fast-path test -------------
// Overrides the test binary's operator new to count allocations while
// g_count_allocs is set; otherwise behaves exactly like the default.

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

namespace obs = repro::common::obs;
using repro::common::parallel_for;
using repro::common::set_global_threads;

// --- minimal JSON validator ------------------------------------------------
// Recursive-descent syntax check, enough to assert that the emitted trace
// and metrics documents are well-formed JSON (no external parser in-tree).

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    char* end = nullptr;
    std::strtod(s_.c_str() + start, &end);
    return end == s_.c_str() + pos_;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// Enables obs with clean trace/metric state, restores the defaults on
// exit. Metric *registrations* persist process-wide by design, so tests
// address metrics by unique names instead of assuming an empty registry.
class ObsTest : public testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::set_logical_time(false);
    obs::clear_trace();
    obs::reset_metrics();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::set_logical_time(false);
    obs::clear_trace();
    obs::reset_metrics();
    set_global_threads(0);
  }
};

TEST_F(ObsTest, CounterAndGaugeBasics) {
  obs::Counter& c = obs::counter("t.basic_counter");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Lookup by the same name returns the same instance.
  EXPECT_EQ(&obs::counter("t.basic_counter"), &c);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge& g = obs::gauge("t.basic_gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST_F(ObsTest, HistogramBucketEdges) {
  const double edges[] = {1.0, 2.0};
  obs::Histogram& h = obs::histogram("t.hist_edges", edges);
  ASSERT_EQ(h.edges().size(), 2u);

  h.observe(0.0);   // < 1.0        -> bucket 0
  h.observe(0.99);  //              -> bucket 0
  h.observe(1.0);   // >= 1.0, < 2  -> bucket 1 (edges are exclusive above)
  h.observe(1.5);   //              -> bucket 1
  h.observe(2.0);   // >= 2.0       -> overflow
  h.observe(99.0);  //              -> overflow
  h.observe(std::nan(""));  // NaN  -> overflow

  const std::vector<std::uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 3u);
  EXPECT_EQ(h.total(), 7u);

  // First registration fixes the edges; a conflicting re-registration
  // returns the existing instance unchanged.
  const double other[] = {5.0};
  EXPECT_EQ(&obs::histogram("t.hist_edges", other), &h);
  EXPECT_EQ(h.edges().size(), 2u);

  h.reset();
  EXPECT_EQ(h.total(), 0u);
}

TEST_F(ObsTest, MacrosRecordOnlyWhenEnabled) {
  OBS_COUNT("t.macro_counter", 3);
  EXPECT_EQ(obs::counter("t.macro_counter").value(), 3u);

  obs::set_enabled(false);
  OBS_COUNT("t.macro_counter", 3);
  { OBS_SPAN("t.macro_span_disabled"); }
  obs::set_enabled(true);
  EXPECT_EQ(obs::counter("t.macro_counter").value(), 3u);
  for (const obs::SpanEvent& e : obs::snapshot_spans()) {
    EXPECT_NE(e.name, "t.macro_span_disabled");
  }
}

TEST_F(ObsTest, SpanNestingOrder) {
  {
    OBS_SPAN("t.outer");
    { OBS_SPAN_ARG("t.inner", 7); }
    { OBS_SPAN_ARG("t.inner", 8); }
  }
  const std::vector<obs::SpanEvent> spans = obs::snapshot_spans();
  ASSERT_EQ(spans.size(), 3u);
  // Open order (parents before children), not completion order.
  EXPECT_EQ(spans[0].name, "t.outer");
  EXPECT_EQ(spans[1].name, "t.inner");
  EXPECT_TRUE(spans[1].has_arg);
  EXPECT_EQ(spans[1].arg, 7);
  EXPECT_EQ(spans[2].arg, 8);
  // Sequence numbers nest strictly.
  EXPECT_LT(spans[0].begin_seq, spans[1].begin_seq);
  EXPECT_LT(spans[1].end_seq, spans[2].begin_seq);
  EXPECT_LT(spans[2].end_seq, spans[0].end_seq);
}

// The fixed workload used by the determinism tests: a serial phase span
// around a parallel_for whose body opens a per-index span and bumps a
// counter and histogram.
void run_workload(const char* counter_name) {
  OBS_SPAN("t.phase");
  const double edges[] = {100.0, 500.0};
  obs::Histogram& h = obs::histogram("t.work_hist", edges);
  parallel_for(1000, [&](std::int64_t i) {
    OBS_SPAN_ARG("t.item", i);
    OBS_COUNT("t.work", 1);
    obs::counter(counter_name).add(static_cast<std::uint64_t>(i));
    h.observe(static_cast<double>(i));
  });
}

TEST_F(ObsTest, MetricsIdenticalAcrossThreadCounts) {
  std::string baseline;
  for (int threads : {1, 2, 8}) {
    set_global_threads(threads);
    obs::reset_metrics();
    obs::clear_trace();
    run_workload("t.work_weighted");
    const std::string snapshot = obs::metrics_json();
    if (threads == 1) {
      baseline = snapshot;
      EXPECT_EQ(obs::counter("t.work").value(), 1000u);
      EXPECT_EQ(obs::counter("t.work_weighted").value(), 999u * 1000u / 2);
    } else {
      EXPECT_EQ(snapshot, baseline) << "at " << threads << " threads";
    }
  }
}

TEST_F(ObsTest, SpanSetIdenticalAcrossThreadCounts) {
  // The multiset of (name, arg) pairs must not depend on the thread
  // count; worker attribution and interleaving may.
  std::map<std::pair<std::string, std::int64_t>, int> baseline;
  for (int threads : {1, 2, 8}) {
    set_global_threads(threads);
    obs::clear_trace();
    run_workload("t.work_weighted2");
    std::map<std::pair<std::string, std::int64_t>, int> seen;
    for (const obs::SpanEvent& e : obs::snapshot_spans()) {
      ++seen[{e.name, e.has_arg ? e.arg : -1}];
    }
    EXPECT_EQ(seen.size(), 1001u);  // t.phase + 1000 distinct t.item args
    if (threads == 1) {
      baseline = seen;
    } else {
      EXPECT_EQ(seen, baseline) << "at " << threads << " threads";
    }
  }
}

TEST_F(ObsTest, LogicalTimeTraceIsByteStable) {
  obs::set_logical_time(true);
  std::string first;
  for (int rep = 0; rep < 2; ++rep) {
    set_global_threads(4);
    obs::clear_trace();
    run_workload("t.work_weighted3");
    const std::string trace = obs::trace_json();
    if (rep == 0) {
      first = trace;
    } else {
      EXPECT_EQ(trace, first);
    }
  }
  EXPECT_NE(first.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(ObsTest, TraceAndMetricsJsonAreWellFormed) {
  set_global_threads(4);
  run_workload("t.work_weighted4");
  obs::gauge("t.some_gauge").set(0.25);
  const std::string trace = obs::trace_json();
  const std::string metrics = obs::metrics_json();
  EXPECT_TRUE(JsonChecker(trace).valid()) << trace.substr(0, 400);
  EXPECT_TRUE(JsonChecker(metrics).valid()) << metrics.substr(0, 400);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"t.item\""), std::string::npos);
}

TEST_F(ObsTest, AggregateSpansSumsWallTime) {
  set_global_threads(2);
  run_workload("t.work_weighted5");
  bool found = false;
  for (const obs::SpanAggregate& a : obs::aggregate_spans()) {
    if (a.name == "t.item") {
      found = true;
      EXPECT_EQ(a.count, 1000u);
      EXPECT_GE(a.seconds, 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, RunReportComposes) {
  OBS_COUNT("t.report_counter", 2);
  { OBS_SPAN("t.report_span"); }
  const std::string json = obs::RunReport()
                               .set("tool", "test")
                               .set("threads", 4)
                               .set("ratio", 0.5)
                               .set("ok", true)
                               .to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Caller fields first, in insertion order, then phases and metrics.
  EXPECT_LT(json.find("\"tool\""), json.find("\"threads\""));
  EXPECT_LT(json.find("\"threads\""), json.find("\"phases\""));
  EXPECT_NE(json.find("\"t.report_span\""), std::string::npos);
  EXPECT_NE(json.find("\"t.report_counter\""), std::string::npos);
}

TEST_F(ObsTest, RecordDiagnosticsBridgesSeverityTallies) {
  repro::common::DiagnosticSink sink("x.def");
  sink.note("a", 1, "n");
  sink.warning("b", 2, "w");
  sink.warning("b", 3, "w");
  sink.error("c", 4, "e");
  obs::record_diagnostics("t.diag", sink);
  EXPECT_EQ(obs::counter("t.diag.notes").value(), 1u);
  EXPECT_EQ(obs::counter("t.diag.warnings").value(), 2u);
  EXPECT_EQ(obs::counter("t.diag.errors").value(), 1u);
  EXPECT_EQ(obs::counter("t.diag.fatals").value(), 0u);
}

TEST_F(ObsTest, DisabledPathAllocatesNothing) {
  obs::set_enabled(false);
  // Warm up any lazy one-time state outside the counted window.
  { OBS_SPAN("t.disabled_warmup"); }
  OBS_COUNT("t.disabled_warmup_c", 1);

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    OBS_SPAN("t.disabled_span");
    OBS_SPAN_ARG("t.disabled_span_arg", i);
    OBS_COUNT("t.disabled_count", 1);
  }
  g_count_allocs.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u);
  obs::set_enabled(true);
}

// Hammered by scripts/check_tsan.sh: concurrent counter / histogram /
// span updates from every pool worker must be race-free and exact.
TEST_F(ObsTest, ObsConcurrentUpdatesAreExact) {
  set_global_threads(8);
  const int n = 20000;
  const double edges[] = {0.25, 0.5, 0.75};
  obs::Histogram& h = obs::histogram("t.conc_hist", edges);
  obs::Counter& c = obs::counter("t.conc_counter");
  parallel_for(n, [&](std::int64_t i) {
    OBS_SPAN_ARG("t.conc_span", i);
    c.add();
    OBS_COUNT("t.conc_macro", 2);
    h.observe(static_cast<double>(i) / n);
  });
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(obs::counter("t.conc_macro").value(),
            static_cast<std::uint64_t>(2 * n));
  EXPECT_EQ(h.total(), static_cast<std::uint64_t>(n));
  std::uint64_t sum = 0;
  for (std::uint64_t b : h.counts()) sum += b;
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n));
  EXPECT_EQ(obs::aggregate_spans().size(), 1u);
}

}  // namespace

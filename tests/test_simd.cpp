// The SIMD equivalence contract (see src/common/simd.hpp): every kernel
// that dispatches on simd::active() computes the exact same double
// arithmetic at every level, so outputs are *bit-identical* across
// scalar / SSE2 / AVX2 — per kernel (FlatForest batch traversal,
// CandidateIndex scans) and end-to-end (AttackResult digests across
// levels, thread counts, and split layers). scripts/check_simd.sh runs
// this file under every forced REPRO_SIMD value on top.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <random>
#include <vector>

#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "core/attack.hpp"
#include "core/candidate_index.hpp"
#include "ml/bagging.hpp"
#include "synth/synth.hpp"
#include "test_helpers.hpp"

namespace repro {
namespace {

namespace simd = common::simd;

/// Forces a dispatch level for one scope. set_level clamps to what the
/// CPU supports, so the tests also pass (trivially, by comparing a level
/// against itself) on machines without AVX2.
class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level l) : prev_(simd::active()) {
    simd::set_level(l);
  }
  ~ScopedLevel() { simd::set_level(prev_); }

 private:
  simd::Level prev_;
};

const simd::Level kAllLevels[] = {simd::Level::kScalar, simd::Level::kSse2,
                                  simd::Level::kAvx2};

// --- dispatch shim ---------------------------------------------------------

TEST(SimdShim, ParseLevelRecognizesNamesAndFallsBackToAuto) {
  EXPECT_EQ(simd::parse_level("scalar"), simd::Level::kScalar);
  EXPECT_EQ(simd::parse_level("sse2"), simd::Level::kSse2);
  EXPECT_EQ(simd::parse_level("avx2"), simd::Level::kAvx2);
  EXPECT_FALSE(simd::parse_level("auto").has_value());
  EXPECT_FALSE(simd::parse_level("").has_value());
  EXPECT_FALSE(simd::parse_level("avx512").has_value());
}

TEST(SimdShim, SetLevelClampsToSupportedAndRoundTrips) {
  const simd::Level prev = simd::active();
  simd::set_level(simd::Level::kScalar);
  EXPECT_EQ(simd::active(), simd::Level::kScalar);
  simd::set_level(simd::Level::kAvx2);
  EXPECT_LE(simd::active(), simd::max_supported());
  simd::set_level(prev);
  EXPECT_EQ(simd::active(), prev);
}

#if defined(REPRO_SIMD_X86)
TEST(SimdShim, Compress8TableLeftPacksEveryMask) {
  const auto& table = simd::compress8_table();
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if (m & (1 << lane)) {
        EXPECT_EQ(table[m][k], static_cast<std::uint32_t>(lane))
            << "mask " << m << " slot " << k;
        ++k;
      }
    }
    EXPECT_EQ(k, __builtin_popcount(static_cast<unsigned>(m)));
    for (; k < 8; ++k) EXPECT_EQ(table[m][k], 0u);
  }
}
#endif

// --- FlatForest batch kernels ----------------------------------------------

ml::Dataset xor_dataset(int n, std::uint64_t seed) {
  ml::Dataset data({"x", "y", "z"});
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    const double x = u(rng), y = u(rng), z = u(rng);
    data.add_row(std::vector<double>{x, y, z}, (x > 0.5) != (y > 0.5));
  }
  return data;
}

class FlatForestKernels : public ::testing::Test {
 protected:
  void SetUp() override {
    ml::BaggingOptions opt = ml::BaggingOptions::reptree_bagging(7);
    opt.num_trees = 12;
    forest_ = ml::FlatForest::build(
        ml::BaggingClassifier::train(xor_dataset(600, 11), opt));
    ASSERT_FALSE(forest_.empty());
  }

  /// Random row batch; a sprinkle of NaNs exercises the "unordered
  /// compares go right" contract shared by every kernel.
  std::vector<double> rows(int n, std::uint64_t seed,
                           bool with_nan = false) const {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> u(-0.2, 1.2);
    std::vector<double> r(static_cast<std::size_t>(n) * 3);
    for (double& x : r) x = u(rng);
    if (with_nan) {
      for (std::size_t i = 5; i < r.size(); i += 17) {
        r[i] = std::numeric_limits<double>::quiet_NaN();
      }
    }
    return r;
  }

  ml::FlatForest forest_;
};

TEST_F(FlatForestKernels, AllKernelsBitIdenticalOnDoubleRows) {
  using BK = ml::FlatForest::BatchKernel;
  for (const int n : {1, 3, 7, 8, 9, 64, 129}) {
    for (const bool with_nan : {false, true}) {
      const std::vector<double> batch = rows(n, 100 + n, with_nan);
      std::vector<double> ref(static_cast<std::size_t>(n));
      forest_.predict_batch_kernel(BK::kScalar, batch.data(), n, 3,
                                   ref.data());
      for (const BK k : {BK::kBlocked, BK::kSse2, BK::kAvx2}) {
        std::vector<double> got(static_cast<std::size_t>(n), -1.0);
        forest_.predict_batch_kernel(k, batch.data(), n, 3, got.data());
        EXPECT_EQ(0, std::memcmp(ref.data(), got.data(),
                                 ref.size() * sizeof(double)))
            << "kernel " << static_cast<int>(k) << " n=" << n
            << " nan=" << with_nan;
      }
    }
  }
}

TEST_F(FlatForestKernels, AllKernelsBitIdenticalOnFloatRows) {
  using BK = ml::FlatForest::BatchKernel;
  for (const int n : {1, 5, 8, 31, 128}) {
    const std::vector<double> d = rows(n, 900 + n);
    std::vector<float> batch(d.begin(), d.end());
    std::vector<double> ref(static_cast<std::size_t>(n));
    forest_.predict_batch_kernel(BK::kScalar, batch.data(), n, 3, ref.data());
    for (const BK k : {BK::kBlocked, BK::kSse2, BK::kAvx2}) {
      std::vector<double> got(static_cast<std::size_t>(n), -1.0);
      forest_.predict_batch_kernel(k, batch.data(), n, 3, got.data());
      EXPECT_EQ(0, std::memcmp(ref.data(), got.data(),
                               ref.size() * sizeof(double)))
          << "kernel " << static_cast<int>(k) << " n=" << n;
    }
  }
}

TEST_F(FlatForestKernels, DispatchedBatchMatchesPerRowWalk) {
  const int n = 50;
  const std::vector<double> batch = rows(n, 4242);
  for (const simd::Level level : kAllLevels) {
    ScopedLevel scoped(level);
    std::vector<double> got(static_cast<std::size_t>(n));
    forest_.predict_batch(batch.data(), n, 3, got.data());
    for (int i = 0; i < n; ++i) {
      const double want = forest_.predict_proba(
          std::span<const double>(batch.data() + 3 * i, 3));
      EXPECT_EQ(want, got[i]) << "level " << simd::to_string(level)
                              << " row " << i;
    }
  }
}

TEST_F(FlatForestKernels, FloatRowsTrackDoubleRowsWithinTolerance) {
  // Float rows lose mantissa bits before the threshold compare, so a row
  // near a split boundary may legitimately land in a different leaf; for
  // rows away from boundaries the two paths agree exactly. Probabilities
  // are bounded in [0, 1], so a loose elementwise tolerance plus a tight
  // mean tolerance pins both failure modes without flaking.
  const int n = 256;
  const std::vector<double> d = rows(n, 77);
  const std::vector<float> f(d.begin(), d.end());
  std::vector<double> out_d(n), out_f(n);
  forest_.predict_batch(d.data(), n, 3, out_d.data());
  forest_.predict_batch(f.data(), n, 3, out_f.data());
  double mean_abs = 0;
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(out_d[i], out_f[i], 0.5) << "row " << i;
    mean_abs += std::abs(out_d[i] - out_f[i]);
  }
  EXPECT_LT(mean_abs / n, 0.02);
}

// --- CandidateIndex scan kernels -------------------------------------------

class IndexScanLevels : public ::testing::Test {
 protected:
  void SetUp() override {
    ch_ = testing::make_grid_challenge(150, 100000, 8000, 31, 800,
                                       /*same_row=*/false);
  }

  /// collect() across all of {unrestricted, ball, track x, track y} x
  /// {with, without} neighbourhood, at one dispatch level.
  std::vector<std::vector<splitmfg::VpinId>> collect_all_shapes(
      simd::Level level) const {
    ScopedLevel scoped(level);
    const core::CandidateIndex index(ch_);
    std::vector<core::PairFilter> filters;
    filters.push_back({});  // unrestricted
    filters.push_back({.neighborhood = 9000.0});
    filters.push_back({.neighborhood = 1e12});  // dense-sweep fallback
    filters.push_back({.neighborhood = std::nullopt,
                       .limit_top_direction = true});
    filters.push_back({.neighborhood = std::nullopt,
                       .limit_top_direction = true,
                       .top_metal_horizontal = false});
    filters.push_back({.neighborhood = 9000.0, .limit_top_direction = true});
    std::vector<std::vector<splitmfg::VpinId>> results;
    for (const core::PairFilter& f : filters) {
      for (splitmfg::VpinId v = 0; v < ch_.num_vpins(); v += 7) {
        std::vector<splitmfg::VpinId> out;
        index.collect(v, f, out);
        results.push_back(std::move(out));
      }
    }
    return results;
  }

  splitmfg::SplitChallenge ch_;
};

TEST_F(IndexScanLevels, CollectIdenticalAcrossLevels) {
  const auto ref = collect_all_shapes(simd::Level::kScalar);
  for (const simd::Level level : {simd::Level::kSse2, simd::Level::kAvx2}) {
    const auto got = collect_all_shapes(level);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i], got[i])
          << "query " << i << " level " << simd::to_string(level);
    }
  }
}

// --- end-to-end digests ----------------------------------------------------

/// FNV-1a over the complete observable result (mirrors bench_attack).
std::uint64_t digest(const core::AttackResult& res) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  const auto mix_float = [&](float f) {
    std::uint32_t bits;
    static_assert(sizeof bits == sizeof f);
    std::memcpy(&bits, &f, sizeof bits);
    mix(bits);
  };
  mix(static_cast<std::uint64_t>(res.num_vpins()));
  for (const core::VpinResult& r : res.per_vpin()) {
    mix(static_cast<std::uint64_t>(r.num_evaluated));
    mix_float(r.p_true);
    mix_float(r.d_true);
    for (std::uint32_t c : r.hist) mix(c);
    for (const core::Candidate& c : r.top) {
      mix(c.id);
      mix_float(c.p);
      mix_float(c.d);
    }
  }
  return h;
}

TEST(SimdAttackDigest, IdenticalAcrossLevelsThreadsAndSplitLayers) {
  // Routed designs cut at the paper's split layers; the full attack
  // (train features + sampling through the index, FlatForest batch
  // scoring) must digest identically at every (level, threads) point.
  static std::map<int, synth::SynthDesign> designs;
  if (designs.empty()) {
    for (int i : {0, 1}) {
      synth::SynthParams p = synth::preset(i == 0 ? "sb1" : "sb18");
      p.num_cells = 300;
      p.seed = static_cast<std::uint64_t>(i) * 83 + 7;
      p.name = "simd" + std::to_string(i);
      designs.emplace(i, synth::generate(p));
    }
  }
  for (const int layer : {4, 6, 8}) {
    std::vector<splitmfg::SplitChallenge> challenges;
    for (auto& [i, d] : designs) {
      challenges.push_back(
          splitmfg::make_challenge(*d.netlist, d.routes, layer));
    }
    const std::vector<const splitmfg::SplitChallenge*> training{
        &challenges[1]};
    // Imp-9 exercises ball + dense sweeps; Imp-11Y the track scan.
    for (const char* name : {"Imp-9", "Imp-11Y"}) {
      const core::AttackConfig cfg = core::config_from_name(name);
      std::uint64_t want = 0;
      bool have_want = false;
      for (const simd::Level level : kAllLevels) {
        ScopedLevel scoped(level);
        const core::TrainedModel model =
            core::AttackEngine::train(training, cfg);
        for (const int threads : {1, 8}) {
          common::set_global_threads(threads);
          const std::uint64_t h =
              digest(core::AttackEngine::test(model, challenges[0]));
          if (!have_want) {
            want = h;
            have_want = true;
          }
          EXPECT_EQ(want, h)
              << name << " layer " << layer << " level "
              << simd::to_string(level) << " threads " << threads;
        }
        common::set_global_threads(1);
      }
    }
  }
}

}  // namespace
}  // namespace repro

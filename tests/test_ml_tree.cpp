#include <gtest/gtest.h>

#include <random>

#include "ml/tree.hpp"

namespace repro::ml {
namespace {

Dataset threshold_dataset(int n, double threshold, double noise,
                          std::uint64_t seed) {
  Dataset data({"x", "junk"});
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    const double x = u(rng), j = u(rng);
    int label = x > threshold ? 1 : 0;
    if (u(rng) < noise) label = 1 - label;
    data.add_row(std::vector<double>{x, j}, label);
  }
  return data;
}

TEST(DecisionTree, LearnsCleanThresholdExactly) {
  const Dataset data = threshold_dataset(1000, 0.6, 0.0, 1);
  std::mt19937_64 rng(2);
  const DecisionTree t = DecisionTree::train(data, TreeOptions{}, rng);
  EXPECT_EQ(t.predict(std::vector<double>{0.1, 0.5}), 0);
  EXPECT_EQ(t.predict(std::vector<double>{0.9, 0.5}), 1);
  // A clean threshold needs exactly one split.
  EXPECT_LE(t.num_leaves(), 3);
}

TEST(DecisionTree, ProbabilitiesAreLeafFrequencies) {
  // 75%/25% mixed labels on constant features: single leaf, p = 0.75.
  Dataset data({"x"});
  for (int i = 0; i < 100; ++i) {
    data.add_row(std::vector<double>{1.0}, i % 4 != 0);
  }
  std::mt19937_64 rng(3);
  const DecisionTree t = DecisionTree::train(data, TreeOptions{}, rng);
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_NEAR(t.predict_proba(std::vector<double>{1.0}), 0.75, 1e-12);
}

TEST(DecisionTree, MinLeafRespected) {
  const Dataset data = threshold_dataset(500, 0.5, 0.1, 5);
  TreeOptions opt;
  opt.min_leaf = 50;
  std::mt19937_64 rng(6);
  const DecisionTree t = DecisionTree::train(data, opt, rng);
  // Backfitted counts at each reachable leaf must respect min_leaf.
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const TreeNode& n = t.node(stack.back());
    stack.pop_back();
    if (n.is_leaf()) {
      EXPECT_GE(n.pos + n.neg, 50.0);
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
}

TEST(DecisionTree, MaxDepthRespected) {
  const Dataset data = threshold_dataset(2000, 0.5, 0.3, 7);
  TreeOptions opt;
  opt.max_depth = 3;
  std::mt19937_64 rng(8);
  const DecisionTree t = DecisionTree::train(data, opt, rng);
  EXPECT_LE(t.depth(), 3);
}

TEST(DecisionTree, ReducedErrorPruningShrinksNoisyTree) {
  const Dataset data = threshold_dataset(3000, 0.5, 0.25, 9);
  std::mt19937_64 rng1(10), rng2(10);
  TreeOptions grow;
  grow.reduced_error_pruning = false;
  TreeOptions prune = grow;
  prune.reduced_error_pruning = true;
  const DecisionTree big = DecisionTree::train(data, grow, rng1);
  const DecisionTree small = DecisionTree::train(data, prune, rng2);
  EXPECT_LT(small.num_leaves(), big.num_leaves());
  // Pruned tree still gets the concept right.
  EXPECT_EQ(small.predict(std::vector<double>{0.05, 0.5}), 0);
  EXPECT_EQ(small.predict(std::vector<double>{0.95, 0.5}), 1);
}

TEST(DecisionTree, RandomFeatureSubsetStillLearns) {
  const Dataset data = threshold_dataset(2000, 0.4, 0.05, 11);
  TreeOptions opt;
  opt.num_random_features = 1;
  std::mt19937_64 rng(12);
  const DecisionTree t = DecisionTree::train(data, opt, rng);
  int correct = 0;
  for (int i = 0; i < data.num_rows(); ++i) {
    correct += (t.predict(data.row(i)) == data.label(i));
  }
  EXPECT_GT(static_cast<double>(correct) / data.num_rows(), 0.9);
}

TEST(DecisionTree, DeterministicGivenSeed) {
  const Dataset data = threshold_dataset(1000, 0.5, 0.2, 13);
  TreeOptions opt;
  opt.reduced_error_pruning = true;
  std::mt19937_64 rng1(14), rng2(14);
  const DecisionTree a = DecisionTree::train(data, opt, rng1);
  const DecisionTree b = DecisionTree::train(data, opt, rng2);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  std::mt19937_64 probe(15);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> x{u(probe), u(probe)};
    EXPECT_DOUBLE_EQ(a.predict_proba(x), b.predict_proba(x));
  }
}

TEST(DecisionTree, BackfitCountsCoverWholeTrainingSet) {
  const Dataset data = threshold_dataset(777, 0.5, 0.2, 16);
  TreeOptions opt;
  opt.reduced_error_pruning = true;
  std::mt19937_64 rng(17);
  const DecisionTree t = DecisionTree::train(data, opt, rng);
  // Root counts must equal the full dataset (pruning holdout included).
  EXPECT_DOUBLE_EQ(t.node(0).pos + t.node(0).neg, 777.0);
}

class TreeSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(TreeSeedSweep, ProbaAlwaysInUnitInterval) {
  const Dataset data =
      threshold_dataset(400, 0.5, 0.3, static_cast<std::uint64_t>(GetParam()));
  TreeOptions opt;
  opt.reduced_error_pruning = (GetParam() % 2 == 0);
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const DecisionTree t = DecisionTree::train(data, opt, rng);
  std::mt19937_64 probe(1);
  std::uniform_real_distribution<double> u(-0.5, 1.5);
  for (int i = 0; i < 200; ++i) {
    const double p = t.predict_proba(std::vector<double>{u(probe), u(probe)});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeSeedSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace repro::ml

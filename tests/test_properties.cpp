// Cross-cutting property sweeps: invariants that must hold for every
// split layer, random seed and design shape, exercised with parameterized
// gtest suites.
#include <gtest/gtest.h>

#include <sstream>

#include "core/attack.hpp"
#include "lefdef/lefdef.hpp"
#include "splitmfg/split.hpp"
#include "synth/synth.hpp"
#include "test_helpers.hpp"

namespace repro {
namespace {

// ---------------------------------------------------------------------------
// Split invariants across (seed, split layer).
class SplitSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  static const synth::SynthDesign& design(int seed) {
    static std::map<int, synth::SynthDesign> cache;
    auto it = cache.find(seed);
    if (it == cache.end()) {
      synth::SynthParams p = synth::preset("sb18");
      p.num_cells = 1200;
      p.seed = static_cast<std::uint64_t>(seed) * 1009 + 7;
      p.name = "sweep" + std::to_string(seed);
      it = cache.emplace(seed, synth::generate(p)).first;
    }
    return it->second;
  }
};

TEST_P(SplitSweep, ChallengeInvariants) {
  const auto [seed, layer] = GetParam();
  const auto& d = design(seed);
  const auto ch = splitmfg::make_challenge(*d.netlist, d.routes, layer);

  // V-pin populations shrink as the split moves up layer *pairs*.
  // (Adjacent via layers are not comparable: the bend vias of an M8/M9
  // net are v-pins at split 8 but hidden above split 7.)
  if (layer <= 6) {
    const auto above = splitmfg::make_challenge(*d.netlist, d.routes,
                                                layer + 2);
    EXPECT_GE(ch.num_vpins(), above.num_vpins());
  }
  for (const auto& v : ch.vpins) {
    // Ids are dense and self-consistent.
    EXPECT_EQ(&ch.vpin(v.id), &v);
    // No self-matches; symmetry.
    for (auto m : v.matches) {
      EXPECT_NE(m, v.id);
      EXPECT_TRUE(ch.is_match(m, v.id));
    }
    // Matches never join v-pins of different nets.
    for (auto m : v.matches) {
      EXPECT_EQ(ch.vpin(m).net, v.net);
    }
    // Features are finite and non-negative where applicable.
    EXPECT_GE(v.wirelength, 0.0);
    EXPECT_GE(v.in_area, 0.0);
    EXPECT_GE(v.out_area, 0.0);
    EXPECT_GE(v.pc, 0.0);
    EXPECT_GE(v.rc, 0.0);
    EXPECT_TRUE(ch.die.contains(v.pos));
    EXPECT_TRUE(ch.die.contains(v.pin_loc));
  }
}

TEST_P(SplitSweep, DefRoundTripPreservesChallenge) {
  const auto [seed, layer] = GetParam();
  const auto& d = design(seed);
  std::stringstream ss;
  lefdef::write_def(ss, *d.netlist, d.routes);
  const lefdef::DefDesign parsed = lefdef::read_def(ss, d.lib);
  const route::RouteDB db = lefdef::to_route_db(parsed, 800);
  const auto mem = splitmfg::make_challenge(*d.netlist, d.routes, layer);
  const auto file = splitmfg::make_challenge(parsed.netlist, db, layer);
  ASSERT_EQ(file.num_vpins(), mem.num_vpins());
  EXPECT_EQ(file.num_matching_pairs(), mem.num_matching_pairs());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLayers, SplitSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(4, 5, 6, 7, 8)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_layer" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Attack-result invariants across configurations.
class ConfigSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ConfigSweep, ResultInvariants) {
  std::vector<splitmfg::SplitChallenge> challenges;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    challenges.push_back(
        testing::make_grid_challenge(100, 100000, 8000, s));
  }
  std::vector<const splitmfg::SplitChallenge*> training{&challenges[1],
                                                        &challenges[2]};
  const core::AttackConfig cfg = core::config_from_name(GetParam());
  const core::AttackResult res =
      core::AttackEngine::run(challenges[0], training, cfg);

  // Histogram totals equal the evaluated-candidate counts; tops sorted.
  for (const auto& r : res.per_vpin()) {
    long hist_total = 0;
    for (auto h : r.hist) hist_total += h;
    EXPECT_EQ(hist_total, r.num_evaluated);
    for (std::size_t i = 1; i < r.top.size(); ++i) {
      EXPECT_GE(r.top[i - 1].p, r.top[i].p);
    }
    if (r.p_true >= 0) {
      EXPECT_LE(r.p_true, 1.0f);
      EXPECT_TRUE(r.has_match);
    }
  }
  // Threshold extremes.
  EXPECT_LE(res.accuracy_at_threshold(1.0), res.accuracy_at_threshold(0.0));
  EXPECT_LE(res.mean_loc_at_threshold(1.0), res.mean_loc_at_threshold(0.0));
}

INSTANTIATE_TEST_SUITE_P(Configs, ConfigSweep,
                         ::testing::Values("ML-9", "Imp-9", "Imp-7", "Imp-11",
                                           "ML-9Y", "Imp-11Y", "RF:Imp-7"));

// ---------------------------------------------------------------------------
// Verilog/LEF writers are deterministic.
TEST(Determinism, WritersProduceIdenticalBytes) {
  synth::SynthParams p = synth::preset("sb18");
  p.num_cells = 600;
  const auto d1 = synth::generate(p);
  const auto d2 = synth::generate(p);
  std::stringstream a, b;
  lefdef::write_def(a, *d1.netlist, d1.routes);
  lefdef::write_def(b, *d2.netlist, d2.routes);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace repro

#include <gtest/gtest.h>

#include "common/obs.hpp"
#include "core/sampling.hpp"
#include "test_helpers.hpp"

namespace repro::core {
namespace {

/// A challenge of matched pairs at explicit Manhattan distances, one pair
/// per row so pairs never interfere.
splitmfg::SplitChallenge pairs_at_distances(
    const std::vector<geom::Dbu>& distances) {
  splitmfg::SplitChallenge ch;
  ch.design_name = "manual";
  ch.split_layer = 8;
  ch.die = geom::Rect(0, 0, 1000000, 1000000);
  geom::Dbu y = 0;
  for (geom::Dbu d : distances) {
    splitmfg::Vpin a;
    a.id = static_cast<splitmfg::VpinId>(ch.vpins.size());
    a.net = static_cast<netlist::NetId>(ch.vpins.size() / 2);
    a.pos = {0, y};
    a.pin_loc = a.pos;
    a.out_area = 1000;  // driver
    splitmfg::Vpin b;
    b.id = a.id + 1;
    b.net = a.net;
    b.pos = {d, y};
    b.pin_loc = b.pos;
    b.in_area = 500;
    a.matches = {b.id};
    b.matches = {a.id};
    ch.vpins.push_back(std::move(a));
    ch.vpins.push_back(std::move(b));
    y += 50000;
  }
  return ch;
}

TEST(PairFilter, NeighborhoodCut) {
  PairFilter f;
  f.neighborhood = 1000.0;
  splitmfg::Vpin a, b;
  a.pos = {0, 0};
  b.pos = {600, 300};
  EXPECT_TRUE(f.admits(a, b));
  b.pos = {600, 500};  // distance 1100 > 1000
  EXPECT_FALSE(f.admits(a, b));
}

TEST(PairFilter, TopDirectionLimit) {
  PairFilter f;
  f.limit_top_direction = true;
  f.top_metal_horizontal = true;  // horizontal top metal => equal y required
  splitmfg::Vpin a, b;
  a.pos = {0, 100};
  b.pos = {5000, 100};
  EXPECT_TRUE(f.admits(a, b));
  b.pos = {5000, 101};
  EXPECT_FALSE(f.admits(a, b));

  f.top_metal_horizontal = false;  // vertical => equal x required
  b.pos = {0, 9999};
  EXPECT_TRUE(f.admits(a, b));
  b.pos = {1, 9999};
  EXPECT_FALSE(f.admits(a, b));
}

TEST(PairFilter, IllegalPairsAlwaysRejected) {
  PairFilter f;  // no other restrictions
  splitmfg::Vpin a, b;
  a.out_area = 100;
  b.out_area = 100;
  EXPECT_FALSE(f.admits(a, b));
}

TEST(Sampling, MatchDistancesSortedAndComplete) {
  const auto ch = testing::make_grid_challenge(50, 100000, 8000, 3);
  const splitmfg::SplitChallenge* p = &ch;
  const auto d = match_distances(std::span(&p, 1));
  ASSERT_EQ(d.size(), 50u);  // one distance per matching pair
  EXPECT_TRUE(std::is_sorted(d.begin(), d.end()));
  for (double x : d) EXPECT_DOUBLE_EQ(x, 8000.0);
}

TEST(Sampling, NeighborhoodRadiusPercentile) {
  // Two challenges with different match distances: percentile must span
  // the pooled distribution.
  const auto c1 = testing::make_grid_challenge(50, 100000, 4000, 5);
  const auto c2 = testing::make_grid_challenge(50, 100000, 12000, 6);
  const splitmfg::SplitChallenge* ptrs[] = {&c1, &c2};
  const double r50 = neighborhood_radius(std::span(ptrs, 2), 0.50);
  const double r95 = neighborhood_radius(std::span(ptrs, 2), 0.95);
  EXPECT_GE(r50, 4000.0);
  EXPECT_LE(r50, 12000.0);
  EXPECT_DOUBLE_EQ(r95, 12000.0);
  EXPECT_THROW(neighborhood_radius(std::span(ptrs, 2), 0.0),
               std::invalid_argument);
}

TEST(Sampling, NeighborhoodRadiusNearestRank) {
  // Nearest-rank quantile ceil(p*N)-1 over N=4 distances: p = 1/N picks
  // the smallest element, interior percentiles pick the element covering
  // the requested mass (not the one after it), p = 1.0 picks the largest.
  const auto ch = pairs_at_distances({1000, 2000, 3000, 4000});
  const splitmfg::SplitChallenge* p = &ch;
  const auto span1 = std::span(&p, 1);
  EXPECT_DOUBLE_EQ(neighborhood_radius(span1, 0.25), 1000.0);   // p = 1/N
  EXPECT_DOUBLE_EQ(neighborhood_radius(span1, 0.5), 2000.0);
  EXPECT_DOUBLE_EQ(neighborhood_radius(span1, 0.51), 3000.0);   // ceil rounds up
  EXPECT_DOUBLE_EQ(neighborhood_radius(span1, 1.0), 4000.0);
  // A single-element distribution: every percentile returns it.
  const auto one = pairs_at_distances({7000});
  const splitmfg::SplitChallenge* q = &one;
  EXPECT_DOUBLE_EQ(neighborhood_radius(std::span(&q, 1), 1.0), 7000.0);
  EXPECT_DOUBLE_EQ(neighborhood_radius(std::span(&q, 1), 0.01), 7000.0);
}

TEST(Sampling, ZeroTriesStillProducesBalancedClasses) {
  // max_tries = 0 skips the random phase entirely: the deterministic
  // fallback scan of the candidate list must find every negative that
  // exists, so the dataset stays balanced.
  const auto ch = testing::make_grid_challenge(100, 100000, 8000, 23);
  const splitmfg::SplitChallenge* p = &ch;
  SamplingOptions opt;
  opt.seed = 29;
  opt.max_tries = 0;
  const ml::Dataset data =
      make_training_set(std::span(&p, 1), FeatureSet::kF9, opt);
  EXPECT_EQ(data.num_positive(), 100);
  EXPECT_EQ(data.num_negative(), data.num_positive());
}

TEST(Sampling, NegativeMissIsCountedNotSilent) {
  // Two v-pins that only match each other: no admissible negative exists,
  // so the positive row has no mate — the miss must show up in the
  // pos/neg tally and in the obs counter instead of passing silently.
  const auto ch = pairs_at_distances({1000});
  const splitmfg::SplitChallenge* p = &ch;
  SamplingOptions opt;
  opt.seed = 31;
  common::obs::set_enabled(true);
  common::obs::reset_metrics();
  const ml::Dataset data =
      make_training_set(std::span(&p, 1), FeatureSet::kF9, opt);
  EXPECT_EQ(data.num_positive(), 1);
  EXPECT_EQ(data.num_negative(), 0);
  EXPECT_EQ(common::obs::counter("sampling.negative_misses").value(), 1u);
  EXPECT_EQ(common::obs::counter("sampling.rows_positive").value(), 1u);
  common::obs::set_enabled(false);
}

TEST(Sampling, BalancedClassesAndSchema) {
  const auto ch = testing::make_grid_challenge(200, 100000, 8000, 7);
  const splitmfg::SplitChallenge* p = &ch;
  SamplingOptions opt;
  opt.seed = 11;
  const ml::Dataset data =
      make_training_set(std::span(&p, 1), FeatureSet::kF9, opt);
  EXPECT_EQ(data.num_features(), 9);
  EXPECT_GT(data.num_rows(), 0);
  const int pos = data.num_positive();
  // One negative per positive, modulo rare rejection-sampling failures.
  EXPECT_NEAR(static_cast<double>(data.num_rows() - pos),
              static_cast<double>(pos), 0.05 * pos + 1);
}

TEST(Sampling, NeighborhoodRestrictsSamples) {
  const auto ch = testing::make_grid_challenge(200, 100000, 8000, 9);
  const splitmfg::SplitChallenge* p = &ch;
  SamplingOptions opt;
  opt.seed = 11;
  opt.filter.neighborhood = 10000.0;
  const ml::Dataset data =
      make_training_set(std::span(&p, 1), FeatureSet::kF11, opt);
  // ManhattanVpin is feature index 5 in the 11-feature layout.
  for (int r = 0; r < data.num_rows(); ++r) {
    EXPECT_LE(data.at(r, kManhattanVpin), 10000.0);
  }
}

TEST(Sampling, MaskRestrictsVpins) {
  const auto ch = testing::make_grid_challenge(100, 100000, 8000, 13);
  const splitmfg::SplitChallenge* p = &ch;
  // Mask out every second pair entirely.
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(ch.num_vpins()), 0);
  for (int v = 0; v < ch.num_vpins(); v += 4) {
    mask[static_cast<std::size_t>(v)] = 1;
    mask[static_cast<std::size_t>(v) + 1] = 1;
  }
  SamplingOptions opt;
  opt.seed = 17;
  opt.vpin_mask = mask;
  const ml::Dataset data =
      make_training_set(std::span(&p, 1), FeatureSet::kF9, opt);
  EXPECT_EQ(data.num_positive(), 50);  // half of the 100 pairs
}

TEST(Sampling, YLimitKeepsOnlySameRowSamples) {
  const auto ch =
      testing::make_grid_challenge(100, 100000, 8000, 15, 800, true);
  const splitmfg::SplitChallenge* p = &ch;
  SamplingOptions opt;
  opt.seed = 19;
  opt.filter.limit_top_direction = true;
  opt.filter.top_metal_horizontal = true;
  const ml::Dataset data =
      make_training_set(std::span(&p, 1), FeatureSet::kF11, opt);
  EXPECT_GT(data.num_rows(), 0);
  for (int r = 0; r < data.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(data.at(r, kDiffVpinY), 0.0);
  }
}

}  // namespace
}  // namespace repro::core

#include <gtest/gtest.h>

#include "core/sampling.hpp"
#include "test_helpers.hpp"

namespace repro::core {
namespace {

TEST(PairFilter, NeighborhoodCut) {
  PairFilter f;
  f.neighborhood = 1000.0;
  splitmfg::Vpin a, b;
  a.pos = {0, 0};
  b.pos = {600, 300};
  EXPECT_TRUE(f.admits(a, b));
  b.pos = {600, 500};  // distance 1100 > 1000
  EXPECT_FALSE(f.admits(a, b));
}

TEST(PairFilter, TopDirectionLimit) {
  PairFilter f;
  f.limit_top_direction = true;
  f.top_metal_horizontal = true;  // horizontal top metal => equal y required
  splitmfg::Vpin a, b;
  a.pos = {0, 100};
  b.pos = {5000, 100};
  EXPECT_TRUE(f.admits(a, b));
  b.pos = {5000, 101};
  EXPECT_FALSE(f.admits(a, b));

  f.top_metal_horizontal = false;  // vertical => equal x required
  b.pos = {0, 9999};
  EXPECT_TRUE(f.admits(a, b));
  b.pos = {1, 9999};
  EXPECT_FALSE(f.admits(a, b));
}

TEST(PairFilter, IllegalPairsAlwaysRejected) {
  PairFilter f;  // no other restrictions
  splitmfg::Vpin a, b;
  a.out_area = 100;
  b.out_area = 100;
  EXPECT_FALSE(f.admits(a, b));
}

TEST(Sampling, MatchDistancesSortedAndComplete) {
  const auto ch = testing::make_grid_challenge(50, 100000, 8000, 3);
  const splitmfg::SplitChallenge* p = &ch;
  const auto d = match_distances(std::span(&p, 1));
  ASSERT_EQ(d.size(), 50u);  // one distance per matching pair
  EXPECT_TRUE(std::is_sorted(d.begin(), d.end()));
  for (double x : d) EXPECT_DOUBLE_EQ(x, 8000.0);
}

TEST(Sampling, NeighborhoodRadiusPercentile) {
  // Two challenges with different match distances: percentile must span
  // the pooled distribution.
  const auto c1 = testing::make_grid_challenge(50, 100000, 4000, 5);
  const auto c2 = testing::make_grid_challenge(50, 100000, 12000, 6);
  const splitmfg::SplitChallenge* ptrs[] = {&c1, &c2};
  const double r50 = neighborhood_radius(std::span(ptrs, 2), 0.50);
  const double r95 = neighborhood_radius(std::span(ptrs, 2), 0.95);
  EXPECT_GE(r50, 4000.0);
  EXPECT_LE(r50, 12000.0);
  EXPECT_DOUBLE_EQ(r95, 12000.0);
  EXPECT_THROW(neighborhood_radius(std::span(ptrs, 2), 0.0),
               std::invalid_argument);
}

TEST(Sampling, BalancedClassesAndSchema) {
  const auto ch = testing::make_grid_challenge(200, 100000, 8000, 7);
  const splitmfg::SplitChallenge* p = &ch;
  SamplingOptions opt;
  opt.seed = 11;
  const ml::Dataset data =
      make_training_set(std::span(&p, 1), FeatureSet::kF9, opt);
  EXPECT_EQ(data.num_features(), 9);
  EXPECT_GT(data.num_rows(), 0);
  const int pos = data.num_positive();
  // One negative per positive, modulo rare rejection-sampling failures.
  EXPECT_NEAR(static_cast<double>(data.num_rows() - pos),
              static_cast<double>(pos), 0.05 * pos + 1);
}

TEST(Sampling, NeighborhoodRestrictsSamples) {
  const auto ch = testing::make_grid_challenge(200, 100000, 8000, 9);
  const splitmfg::SplitChallenge* p = &ch;
  SamplingOptions opt;
  opt.seed = 11;
  opt.filter.neighborhood = 10000.0;
  const ml::Dataset data =
      make_training_set(std::span(&p, 1), FeatureSet::kF11, opt);
  // ManhattanVpin is feature index 5 in the 11-feature layout.
  for (int r = 0; r < data.num_rows(); ++r) {
    EXPECT_LE(data.at(r, kManhattanVpin), 10000.0);
  }
}

TEST(Sampling, MaskRestrictsVpins) {
  const auto ch = testing::make_grid_challenge(100, 100000, 8000, 13);
  const splitmfg::SplitChallenge* p = &ch;
  // Mask out every second pair entirely.
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(ch.num_vpins()), 0);
  for (int v = 0; v < ch.num_vpins(); v += 4) {
    mask[static_cast<std::size_t>(v)] = 1;
    mask[static_cast<std::size_t>(v) + 1] = 1;
  }
  SamplingOptions opt;
  opt.seed = 17;
  opt.vpin_mask = mask;
  const ml::Dataset data =
      make_training_set(std::span(&p, 1), FeatureSet::kF9, opt);
  EXPECT_EQ(data.num_positive(), 50);  // half of the 100 pairs
}

TEST(Sampling, YLimitKeepsOnlySameRowSamples) {
  const auto ch =
      testing::make_grid_challenge(100, 100000, 8000, 15, 800, true);
  const splitmfg::SplitChallenge* p = &ch;
  SamplingOptions opt;
  opt.seed = 19;
  opt.filter.limit_top_direction = true;
  opt.filter.top_metal_horizontal = true;
  const ml::Dataset data =
      make_training_set(std::span(&p, 1), FeatureSet::kF11, opt);
  EXPECT_GT(data.num_rows(), 0);
  for (int r = 0; r < data.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(data.at(r, kDiffVpinY), 0.0);
  }
}

}  // namespace
}  // namespace repro::core

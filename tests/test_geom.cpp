#include <gtest/gtest.h>

#include "geom/geom.hpp"

namespace repro::geom {
namespace {

TEST(Geom, ManhattanDistance) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({-2, 5}, {2, -5}), 14);
  EXPECT_EQ(manhattan({1, 1}, {1, 1}), 0);
}

TEST(Geom, RectBasics) {
  Rect r(0, 0, 10, 20);
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 20);
  EXPECT_EQ(r.area(), 200);
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({10, 20}));
  EXPECT_FALSE(r.contains({11, 5}));
}

TEST(Geom, Hpwl) {
  EXPECT_EQ(hpwl({}), 0);
  EXPECT_EQ(hpwl({{5, 5}}), 0);
  EXPECT_EQ(hpwl({{0, 0}, {3, 4}, {1, 10}}), 3 + 10);
}

TEST(Geom, Grid2D) {
  Grid2D<int> g(3, 2, 7);
  EXPECT_EQ(g.at(2, 1), 7);
  g.at(1, 0) = 42;
  EXPECT_EQ(g.at(1, 0), 42);
  EXPECT_TRUE(g.in_bounds(0, 0));
  EXPECT_FALSE(g.in_bounds(3, 0));
  EXPECT_FALSE(g.in_bounds(0, 2));
}

}  // namespace
}  // namespace repro::geom

// The remote campaign backend (core/campaign_remote): the per-endpoint
// circuit breaker state machine, endpoint-list parsing, and the full
// dispatch path — a campaign supervisor launching RemoteShardExecutions
// against a live (fake) /shard server, failing over between endpoints,
// and degrading to local worker subprocesses when the fleet is down.
// The fake server speaks the real wire protocol (X-Run-Key,
// X-Payload-Fnv, sealed-payload bytes) but serves canned artifacts, so
// every fleet failure mode is deterministic and fast; the digest-parity
// contract against real attack servers is scripts/check_remote_campaign.sh
// and the /shard idempotency tests in test_attack_server.cpp.
#include "core/campaign_remote.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/checkpoint.hpp"
#include "common/diagnostics.hpp"
#include "common/http.hpp"
#include "common/parallel.hpp"
#include "common/subprocess.hpp"
#include "core/campaign.hpp"
#include "core/cross_validation.hpp"

namespace repro::core {
namespace {

namespace fs = std::filesystem;
using common::DiagnosticSink;
using common::Status;
using common::StatusOr;

// --- circuit breaker ------------------------------------------------------

TEST(CircuitBreaker, OpensAtTheConsecutiveFailureThreshold) {
  CircuitBreaker cb(CircuitBreaker::Options{3, 1000});
  EXPECT_TRUE(cb.allow(0));
  cb.record_failure(0);
  EXPECT_TRUE(cb.allow(1));
  cb.record_failure(1);
  EXPECT_EQ(cb.state(2), BreakerState::kClosed);  // 2 < threshold
  EXPECT_TRUE(cb.allow(2));
  cb.record_failure(2);  // third consecutive failure: trip
  EXPECT_EQ(cb.state(3), BreakerState::kOpen);
  EXPECT_FALSE(cb.allow(3));
  EXPECT_FALSE(cb.allow(500));  // still cooling down
  EXPECT_EQ(cb.trips(), 1u);
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveCount) {
  CircuitBreaker cb(CircuitBreaker::Options{3, 1000});
  cb.record_failure(0);
  cb.record_failure(1);
  cb.record_success();  // streak broken
  cb.record_failure(2);
  cb.record_failure(3);
  EXPECT_EQ(cb.state(4), BreakerState::kClosed);
  EXPECT_EQ(cb.trips(), 0u);
}

TEST(CircuitBreaker, CooldownExpiryAdmitsExactlyOneProbe) {
  CircuitBreaker cb(CircuitBreaker::Options{1, 1000});
  cb.record_failure(0);  // threshold 1: open immediately
  EXPECT_FALSE(cb.allow(999));
  // Cooldown over: half-open, a single probe goes through.
  EXPECT_TRUE(cb.allow(1000));
  EXPECT_EQ(cb.state(1000), BreakerState::kHalfOpen);
  EXPECT_FALSE(cb.allow(1001));  // probe in flight, everyone else waits
  cb.record_success();
  EXPECT_EQ(cb.state(1002), BreakerState::kClosed);
  EXPECT_TRUE(cb.allow(1002));
  EXPECT_EQ(cb.consecutive_failures(), 0);
}

TEST(CircuitBreaker, FailedProbeReopensAndRestartsTheCooldown) {
  CircuitBreaker cb(CircuitBreaker::Options{1, 1000});
  cb.record_failure(0);
  ASSERT_TRUE(cb.allow(1000));   // the half-open probe
  cb.record_failure(1000);       // probe failed: re-open
  EXPECT_EQ(cb.state(1001), BreakerState::kOpen);
  EXPECT_EQ(cb.trips(), 2u);
  EXPECT_FALSE(cb.allow(1999));  // fresh cooldown from the probe failure
  EXPECT_TRUE(cb.allow(2000));   // next probe window
  cb.record_success();
  EXPECT_EQ(cb.state(2001), BreakerState::kClosed);
}

// --- endpoint list --------------------------------------------------------

TEST(RemoteCampaign, ParsesEndpointLists) {
  auto eps = parse_endpoint_list("127.0.0.1:8080,127.0.0.1:9090");
  ASSERT_TRUE(eps.ok()) << eps.status().to_string();
  ASSERT_EQ(eps->size(), 2u);
  EXPECT_EQ((*eps)[0].label(), "127.0.0.1:8080");
  EXPECT_EQ((*eps)[1].label(), "127.0.0.1:9090");

  EXPECT_TRUE(parse_endpoint_list("8080").ok());  // loopback shorthand
  EXPECT_FALSE(parse_endpoint_list("").ok());
  EXPECT_FALSE(parse_endpoint_list(",").ok());
  EXPECT_FALSE(parse_endpoint_list("127.0.0.1:8080,bogus").ok());
}

// --- dispatch against a fake fleet ---------------------------------------

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// The canned artifact bytes the fake fleet serves for a shard. The
/// validator below recomputes the same function, so any corruption in
/// transit or on disk is caught.
std::string fake_payload(int layer, std::int64_t fold) {
  return "sealed-result L" + std::to_string(layer) + "_f" +
         std::to_string(fold);
}

constexpr std::uint64_t kFakeRunKey = 0x1122334455667788ull;

/// A fake attack server speaking the /shard wire protocol. `truncate_first`
/// chops the first N responses short of their stamped X-Payload-Fnv, so
/// the client's integrity check must reject and retry them.
struct FakeShardServer {
  std::unique_ptr<common::http::Server> server;
  std::atomic<int> requests{0};
  std::atomic<int> truncate_remaining{0};

  explicit FakeShardServer(int truncate_first = 0) {
    truncate_remaining = truncate_first;
    auto started = common::http::Server::start(
        common::http::Server::Options{},
        [this](const common::http::Request& req) {
          return handle(req);
        });
    EXPECT_TRUE(started.ok()) << started.status().to_string();
    if (started.ok()) server = std::move(*started);
  }
  ~FakeShardServer() {
    if (server != nullptr) server->stop();
  }

  int port() const { return server->port(); }
  common::http::Endpoint endpoint() const {
    common::http::Endpoint ep;
    ep.port = port();
    return ep;
  }

  common::http::Response handle(const common::http::Request& req) {
    requests.fetch_add(1);
    common::http::Response resp;
    if (req.path != "/shard") {
      resp.status = 404;
      return resp;
    }
    // Good-enough field scraping for the fixed request shape.
    const auto field = [&](const std::string& key) -> long {
      const std::string needle = "\"" + key + "\": ";
      const std::size_t at = req.body.find(needle);
      return at == std::string::npos
                 ? -1
                 : std::strtol(req.body.c_str() + at + needle.size(),
                               nullptr, 10);
    };
    const int layer = static_cast<int>(field("layer"));
    const std::int64_t fold = field("fold");
    std::string payload = fake_payload(layer, fold);
    resp.status = 200;
    resp.content_type = "application/octet-stream";
    resp.extra_headers.emplace_back("X-Run-Key", hex64(kFakeRunKey));
    resp.extra_headers.emplace_back("X-Payload-Fnv",
                                    hex64(common::fnv1a64(payload)));
    if (truncate_remaining.fetch_sub(1) > 0) {
      payload.resize(payload.size() / 2);  // torn body, honest header
    }
    resp.body = std::move(payload);
    return resp;
  }
};

/// Validator matching the fake fleet. A remotely-served shard carries
/// the payload through the real checkpoint (manifest + CRC, under the
/// server's run key); a local-fallback shard's shell worker writes the
/// same bytes as a plain `local.result`. Either way the bytes must
/// decode to the canned artifact.
StatusOr<std::uint64_t> fake_validator(const ShardSpec& spec,
                                       const std::string& shard_dir) {
  DiagnosticSink sink;
  std::string raw;
  auto ckpt = common::CheckpointManager::open_existing(shard_dir, sink);
  if (ckpt.ok()) {
    auto bytes =
        ckpt->read(ChallengeSuite::fold_result_name(spec.fold), sink);
    if (bytes.ok()) raw = std::move(*bytes);
  }
  if (raw.empty()) {
    std::ifstream f(shard_dir + "/local.result", std::ios::binary);
    if (!f) return Status::DataLoss(spec.id() + ": no artifact");
    raw.assign(std::istreambuf_iterator<char>(f),
               std::istreambuf_iterator<char>());
  }
  if (raw != fake_payload(spec.layer, spec.fold)) {
    return Status::DataLoss(spec.id() + ": payload does not match");
  }
  return common::fnv1a64(raw);
}

/// Local fallback worker: a shell subprocess writing the canned bytes,
/// standing in for the real `split_attack --fold` spawn.
WorkerCommand fallback_worker() {
  return [](const ShardSpec& spec, const std::string& shard_dir,
            int attempt) {
    (void)attempt;
    common::SpawnOptions opt;
    opt.argv = {"/bin/sh", "-c",
                "printf 'sealed-result %s' \"$SHARD_ID\" > "
                "\"$SHARD_DIR/local.result\""};
    opt.env.emplace_back("SHARD_ID", spec.id());
    opt.env.emplace_back("SHARD_DIR", shard_dir);
    return opt;
  };
}

CampaignOptions fast_options(const std::string& dir, int layers,
                             std::int64_t folds) {
  CampaignOptions opt;
  opt.campaign_dir = dir;
  for (int i = 0; i < layers; ++i) opt.layers.push_back(4 + 2 * i);
  opt.folds_per_layer = folds;
  opt.max_workers = 2;
  opt.max_attempts = 3;
  opt.backoff_base_ms = 1;
  opt.backoff_max_ms = 4;
  opt.shard_timeout_s = 30;
  return opt;
}

RemoteCampaignOptions remote_options(
    std::vector<common::http::Endpoint> endpoints) {
  RemoteCampaignOptions ropt;
  ropt.endpoints = std::move(endpoints);
  ropt.request_attempts = 2;
  ropt.backoff_base_ms = 1;
  ropt.backoff_max_ms = 4;
  ropt.request_deadline_s = 30;
  ropt.skip_sleep = true;
  ropt.breaker.failure_threshold = 2;
  ropt.breaker.cooldown_ms = 50;
  return ropt;
}

/// An ephemeral port with nothing behind it (bind, read it, close).
int dead_port() {
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const int port = ntohs(addr.sin_port);
  ::close(probe);
  return port;
}

common::http::Endpoint dead_endpoint() {
  common::http::Endpoint ep;
  ep.port = dead_port();
  return ep;
}

TEST(RemoteCampaign, DispatchesEveryShardToTheFleet) {
  const std::string dir = fresh_dir("remote_ok");
  FakeShardServer fleet;
  DiagnosticSink sink;
  CampaignSupervisor sup(fast_options(dir, 2, 2), fallback_worker(),
                         fake_validator, sink);
  RemoteDispatcher dispatcher(remote_options({fleet.endpoint()}),
                              fallback_worker());
  sup.set_launcher(dispatcher.launcher());
  sup.set_remote(&dispatcher);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_TRUE(out->complete);
  EXPECT_EQ(out->shards_ok, 4);
  ASSERT_TRUE(out->remote);
  EXPECT_EQ(out->remote_stats.remote_ok, 4u);
  EXPECT_EQ(out->remote_stats.local_fallbacks, 0u);
  EXPECT_EQ(out->remote_stats.failovers, 0u);
  EXPECT_GE(out->remote_stats.requests, 4u);
  ASSERT_EQ(out->remote_endpoints.size(), 1u);
  EXPECT_EQ(out->remote_endpoints[0].state, "closed");
  EXPECT_EQ(fleet.requests.load(), 4);
  // The fleet counters rode into the persisted state table.
  std::ifstream f(CampaignSupervisor::state_path(dir));
  const std::string state((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
  EXPECT_NE(state.find("\"remote\""), std::string::npos);
  EXPECT_NE(state.find("\"remote_ok\": 4"), std::string::npos);
}

TEST(RemoteCampaign, FailsOverToTheHealthyEndpoint) {
  const std::string dir = fresh_dir("remote_failover");
  FakeShardServer fleet;
  DiagnosticSink sink;
  CampaignOptions copt = fast_options(dir, 1, 2);
  copt.max_workers = 1;  // deterministic endpoint rotation
  CampaignSupervisor sup(copt, fallback_worker(), fake_validator, sink);
  // Endpoint 0 refuses every connection; the dispatcher must fail over
  // to endpoint 1 and still complete everything remotely.
  RemoteDispatcher dispatcher(
      remote_options({dead_endpoint(), fleet.endpoint()}),
      fallback_worker());
  sup.set_launcher(dispatcher.launcher());
  sup.set_remote(&dispatcher);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_TRUE(out->complete);
  ASSERT_TRUE(out->remote);
  EXPECT_EQ(out->remote_stats.remote_ok, 2u);
  EXPECT_EQ(out->remote_stats.local_fallbacks, 0u);
  EXPECT_GE(out->remote_stats.failovers, 1u);
  // The dead endpoint's breaker tripped (threshold 2, 2 shards tried it
  // at most — with round-robin at least one hit it first).
  ASSERT_EQ(out->remote_endpoints.size(), 2u);
  EXPECT_GE(out->remote_endpoints[0].failures, 1u);
  EXPECT_EQ(out->remote_endpoints[1].failures, 0u);
}

TEST(RemoteCampaign, TornResponsesAreRetriedToCompletion) {
  const std::string dir = fresh_dir("remote_torn");
  FakeShardServer fleet(/*truncate_first=*/1);
  DiagnosticSink sink;
  CampaignOptions copt = fast_options(dir, 1, 2);
  CampaignSupervisor sup(copt, fallback_worker(), fake_validator, sink);
  RemoteDispatcher dispatcher(remote_options({fleet.endpoint()}),
                              fallback_worker());
  sup.set_launcher(dispatcher.launcher());
  sup.set_remote(&dispatcher);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_TRUE(out->complete);
  EXPECT_EQ(out->remote_stats.remote_ok, 2u);
  // The chopped response failed the X-Payload-Fnv check and was
  // re-requested — visible as a same-endpoint retry, not a failover.
  EXPECT_GE(out->remote_stats.retries, 1u);
  EXPECT_EQ(out->remote_stats.failovers, 0u);
  EXPECT_GE(fleet.requests.load(), 3);
}

TEST(RemoteCampaign, FleetDownDegradesToLocalWorkers) {
  const std::string dir = fresh_dir("remote_fleet_down");
  DiagnosticSink sink;
  CampaignSupervisor sup(fast_options(dir, 1, 2), fallback_worker(),
                         fake_validator, sink);
  RemoteDispatcher dispatcher(
      remote_options({dead_endpoint(), dead_endpoint()}),
      fallback_worker());
  sup.set_launcher(dispatcher.launcher());
  sup.set_remote(&dispatcher);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  // Graceful degradation: every shard completed, locally.
  EXPECT_TRUE(out->complete);
  EXPECT_EQ(out->shards_ok, 2);
  ASSERT_TRUE(out->remote);
  EXPECT_EQ(out->remote_stats.remote_ok, 0u);
  EXPECT_EQ(out->remote_stats.local_fallbacks, 2u);
}

TEST(RemoteCampaign, NoFallbackMeansRetryThenQuarantine) {
  const std::string dir = fresh_dir("remote_no_fallback");
  DiagnosticSink sink;
  CampaignOptions copt = fast_options(dir, 1, 1);
  copt.max_attempts = 2;
  CampaignSupervisor sup(copt, fallback_worker(), fake_validator, sink);
  RemoteCampaignOptions ropt = remote_options({dead_endpoint()});
  ropt.allow_local_fallback = false;
  RemoteDispatcher dispatcher(ropt, fallback_worker());
  sup.set_launcher(dispatcher.launcher());
  sup.set_remote(&dispatcher);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_FALSE(out->complete);
  EXPECT_EQ(out->shards_quarantined, 1);
  EXPECT_EQ(out->remote_stats.local_fallbacks, 0u);
  const ShardState& st = out->shards.front();
  ASSERT_FALSE(st.history.empty());
  EXPECT_EQ(st.history.front().outcome, "remote_failed");
}

}  // namespace
}  // namespace repro::core

#include <gtest/gtest.h>

#include <random>

#include "ml/classifiers.hpp"

namespace repro::ml {
namespace {

Dataset linear_dataset(int n, std::uint64_t seed, double noise = 0.02) {
  Dataset data({"x", "y"});
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    const double x = u(rng), y = u(rng);
    int label = (x + y > 1.0) ? 1 : 0;
    if (u(rng) < noise) label = 1 - label;
    data.add_row(std::vector<double>{x, y}, label);
  }
  return data;
}

Dataset xor_dataset(int n, std::uint64_t seed) {
  Dataset data({"x", "y"});
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    const double x = u(rng), y = u(rng);
    data.add_row(std::vector<double>{x, y},
                 static_cast<int>((x > 0.5) != (y > 0.5)));
  }
  return data;
}

double accuracy(const Classifier& clf, const Dataset& probe) {
  int ok = 0;
  for (int i = 0; i < probe.num_rows(); ++i) {
    ok += (clf.predict(probe.row(i)) == probe.label(i));
  }
  return static_cast<double>(ok) / probe.num_rows();
}

TEST(LogisticRegression, LearnsLinearBoundary) {
  const Dataset data = linear_dataset(3000, 1);
  const auto clf = LogisticRegression::train(data);
  EXPECT_GT(accuracy(clf, linear_dataset(500, 77, 0.0)), 0.95);
}

TEST(LogisticRegression, ProbabilitiesBehave) {
  const Dataset data = linear_dataset(2000, 2);
  const auto clf = LogisticRegression::train(data);
  EXPECT_GT(clf.predict_proba(std::vector<double>{0.9, 0.9}), 0.8);
  EXPECT_LT(clf.predict_proba(std::vector<double>{0.1, 0.1}), 0.2);
  const double p = clf.predict_proba(std::vector<double>{0.5, 0.5});
  EXPECT_GT(p, 0.2);
  EXPECT_LT(p, 0.8);
}

TEST(LogisticRegression, CannotLearnXor) {
  // The negative control that motivates tree ensembles.
  const Dataset data = xor_dataset(3000, 3);
  const auto clf = LogisticRegression::train(data);
  EXPECT_LT(accuracy(clf, xor_dataset(500, 99)), 0.65);
}

TEST(GaussianNaiveBayes, LearnsSeparatedGaussians) {
  Dataset data({"f"});
  std::mt19937_64 rng(4);
  std::normal_distribution<double> n0(0.0, 1.0), n1(4.0, 1.0);
  for (int i = 0; i < 3000; ++i) {
    const int label = i % 2;
    data.add_row(std::vector<double>{label ? n1(rng) : n0(rng)}, label);
  }
  const auto clf = GaussianNaiveBayes::train(data);
  EXPECT_GT(clf.predict_proba(std::vector<double>{4.0}), 0.9);
  EXPECT_LT(clf.predict_proba(std::vector<double>{0.0}), 0.1);
  // Midpoint is maximally uncertain.
  EXPECT_NEAR(clf.predict_proba(std::vector<double>{2.0}), 0.5, 0.1);
}

TEST(GaussianNaiveBayes, HandlesImbalancedPriors) {
  Dataset data({"f"});
  std::mt19937_64 rng(5);
  std::normal_distribution<double> n0(0.0, 1.0), n1(1.0, 1.0);
  for (int i = 0; i < 3000; ++i) {
    const int label = (i % 10 == 0);  // 10% positives
    data.add_row(std::vector<double>{label ? n1(rng) : n0(rng)}, label);
  }
  const auto clf = GaussianNaiveBayes::train(data);
  // The overlapping classes + skewed prior keep p below 0.5 at x = 0.5.
  EXPECT_LT(clf.predict_proba(std::vector<double>{0.5}), 0.5);
}

}  // namespace
}  // namespace repro::ml

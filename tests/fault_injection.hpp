// Deterministic fault-injection for LEF/DEF text.
//
// Takes a valid layout file as text and produces a battery of corrupted
// variants: truncation, line deletion / duplication / swapping, token
// mangling (non-numeric garbage, NaN, huge and negative coordinates),
// layer renumbering, and degenerate whole-file replacements. Everything is
// a pure function of the input text — no RNG — so failures reproduce
// exactly. The contract under test: every corruption either parses to a
// validated design or yields a structured diagnostic; never a crash, hang,
// or silent wrong answer.
#pragma once

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

namespace repro::testing {

/// One corrupted variant of an input file.
struct Corruption {
  std::string name;  ///< unique, human-readable ("def.truncate_at_3_of_12")
  std::string text;
};

namespace fault_detail {

inline std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

inline std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

inline std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream ss(line);
  std::string t;
  while (ss >> t) toks.push_back(t);
  return toks;
}

inline std::string join_tokens(const std::vector<std::string>& toks) {
  std::string out;
  for (const std::string& t : toks) {
    if (!out.empty()) out += ' ';
    out += t;
  }
  return out;
}

inline bool is_numeric_token(const std::string& t) {
  if (t.empty()) return false;
  std::size_t i = (t[0] == '-') ? 1 : 0;
  if (i >= t.size()) return false;
  for (; i < t.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(t[i]))) return false;
  }
  return true;
}

}  // namespace fault_detail

/// Builds the corruption battery for one file. `tag` prefixes every
/// corruption name (e.g. "lef", "def").
inline std::vector<Corruption> make_corruptions(const std::string& text,
                                                const std::string& tag) {
  namespace fd = fault_detail;
  std::vector<Corruption> out;
  const std::vector<std::string> lines = fd::split_lines(text);
  const int n = static_cast<int>(lines.size());

  const auto add = [&](std::string name, std::string corrupted) {
    out.push_back(Corruption{tag + "." + std::move(name),
                             std::move(corrupted)});
  };

  // 1. Truncation at byte positions k/12 of the file.
  for (int k = 1; k <= 11; ++k) {
    const std::size_t cut = text.size() * static_cast<std::size_t>(k) / 12;
    add("truncate_" + std::to_string(k) + "_of_12", text.substr(0, cut));
  }

  // 2. Line deletion at 14 positions spread over the file.
  for (int k = 0; k < 14 && n > 1; ++k) {
    const int idx = k * (n - 1) / 13;
    std::vector<std::string> v = lines;
    v.erase(v.begin() + idx);
    add("delete_line_" + std::to_string(idx), fd::join_lines(v));
  }

  // 3. Line duplication at 10 positions.
  for (int k = 0; k < 10 && n > 1; ++k) {
    const int idx = k * (n - 1) / 9;
    std::vector<std::string> v = lines;
    v.insert(v.begin() + idx, lines[static_cast<std::size_t>(idx)]);
    add("duplicate_line_" + std::to_string(idx), fd::join_lines(v));
  }

  // 4. Adjacent line swap at 8 positions.
  for (int k = 0; k < 8 && n > 2; ++k) {
    const int idx = k * (n - 2) / 7;
    std::vector<std::string> v = lines;
    std::swap(v[static_cast<std::size_t>(idx)],
              v[static_cast<std::size_t>(idx) + 1]);
    add("swap_lines_" + std::to_string(idx), fd::join_lines(v));
  }

  // 5. Token mangling: 12 (line, token) sites, cycling through a palette
  // of pathological replacements.
  const std::vector<std::string> palette = {
      "NaN", "bogus", "99999999999999999999", "-3000000000",
      "1e308", "(", ")"};
  for (int k = 0; k < 12 && n > 1; ++k) {
    const int idx = 1 + k * (n - 2) / 11;
    std::vector<std::string> toks =
        fd::tokens_of(lines[static_cast<std::size_t>(idx)]);
    if (toks.empty()) continue;
    const std::size_t tok = static_cast<std::size_t>(k) % toks.size();
    toks[tok] = palette[static_cast<std::size_t>(k) % palette.size()];
    std::vector<std::string> v = lines;
    v[static_cast<std::size_t>(idx)] = fd::join_tokens(toks);
    add("mangle_token_l" + std::to_string(idx) + "_t" + std::to_string(tok),
        fd::join_lines(v));
  }

  // 6. Numeric corruption: negate / inflate the numeric tokens of 8 lines.
  int numeric_done = 0;
  for (int k = 0; k < 16 && numeric_done < 8 && n > 1; ++k) {
    const int idx = 1 + k * (n - 2) / 15;
    std::vector<std::string> toks =
        fd::tokens_of(lines[static_cast<std::size_t>(idx)]);
    bool changed = false;
    for (std::string& t : toks) {
      if (fd::is_numeric_token(t)) {
        t = (numeric_done % 2 == 0) ? "-" + t : "2000000000";
        changed = true;
        break;
      }
    }
    if (!changed) continue;
    std::vector<std::string> v = lines;
    v[static_cast<std::size_t>(idx)] = fd::join_tokens(toks);
    add("numeric_l" + std::to_string(idx) +
            (numeric_done % 2 == 0 ? "_negate" : "_huge"),
        fd::join_lines(v));
    ++numeric_done;
  }

  // 7. Layer renumbering: push every reference to one layer outside the
  // stack (M2 -> M99, V3 -> V77), plus zero layers.
  const auto replace_all = [](std::string s, const std::string& from,
                              const std::string& to) {
    std::size_t pos = 0;
    while ((pos = s.find(from, pos)) != std::string::npos) {
      s.replace(pos, from.size(), to);
      pos += to.size();
    }
    return s;
  };
  add("relayer_m99", replace_all(text, " M2 ", " M99 "));
  add("relayer_m0", replace_all(text, " M1 ", " M0 "));
  add("relayer_v77", replace_all(text, " V3 ", " V77 "));
  add("relayer_v0", replace_all(text, " V1 ", " V0 "));

  // 8. Degenerate whole files.
  add("empty", "");
  add("whitespace_only", "  \n\t\n\n   \n");
  add("comment_only", "# nothing to see here\n# really\n");
  using namespace std::string_literals;
  add("binary_garbage", "\x7f\x45\x4c\x46\x01\x02\x03\x04garbage\xff\xfe\n"s);

  return out;
}

}  // namespace repro::testing

// The parallel execution layer and its determinism contract.
//
// Two kinds of tests live here:
//   * primitives — ThreadPool / parallel_for / derive_seed behave as
//     documented (full coverage, exception propagation, nesting);
//   * thread invariance — the attack stack produces bit-identical
//     models, rankings, and CSV output at 1, 2, and 8 threads, which is
//     the load-bearing guarantee behind REPRO_THREADS.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "core/cross_validation.hpp"
#include "ml/bagging.hpp"
#include "test_helpers.hpp"

namespace repro {
namespace {

// --- primitives -----------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  common::ThreadPool pool(4);
  for (const std::int64_t n : {0, 1, 2, 3, 7, 64, 1000}) {
    std::vector<int> hits(static_cast<std::size_t>(n), 0);
    pool.parallel_for(n, [&](std::int64_t i) {
      ++hits[static_cast<std::size_t>(i)];
    });
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1) << "index " << i;
    }
  }
}

TEST(ParallelFor, GrainCoversEveryIndexExactlyOnce) {
  common::ThreadPool pool(4);
  for (const std::int64_t n : {0, 1, 5, 8, 50, 1000}) {
    for (const std::int64_t grain : {1, 4, 8, 100, 10000}) {
      std::vector<int> hits(static_cast<std::size_t>(n), 0);
      pool.parallel_for(
          n, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; },
          nullptr, grain);
      for (std::int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1)
            << "index " << i << " n " << n << " grain " << grain;
      }
    }
  }
}

TEST(ParallelFor, GrainLimitsConcurrentChunks) {
  // n / grain = 3 chunks for 50 indices at grain 16: at most 3 distinct
  // workers may participate even though the pool has 8.
  common::ThreadPool pool(8);
  std::atomic<int> max_seen{0};
  std::atomic<int> running{0};
  pool.parallel_for(
      50,
      [&](std::int64_t) {
        const int now = running.fetch_add(1) + 1;
        int prev = max_seen.load();
        while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
        }
        running.fetch_sub(1);
      },
      nullptr, /*grain=*/16);
  EXPECT_LE(max_seen.load(), 3);
}

TEST(UsableCpus, PositiveAndNoLargerThanHardware) {
  const int n = common::usable_cpus();
  EXPECT_GE(n, 1);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_LE(n, static_cast<int>(hw));
  }
}

TEST(ParallelFor, SingleThreadPoolRunsInline) {
  common::ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::int64_t sum = 0;
  pool.parallel_for(100, [&](std::int64_t i) { sum += i; });  // no races
  EXPECT_EQ(sum, 4950);
}

TEST(ParallelFor, PropagatesTheFirstException) {
  common::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::int64_t i) {
                          if (i == 57) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelFor, NestedCallsRunInline) {
  common::ThreadPool pool(4);
  std::vector<std::int64_t> inner_sum(8, 0);
  pool.parallel_for(8, [&](std::int64_t i) {
    // Nested region: must not deadlock, must still cover its range.
    pool.parallel_for(10, [&](std::int64_t j) {
      inner_sum[static_cast<std::size_t>(i)] += j;
    });
  });
  for (std::int64_t s : inner_sum) EXPECT_EQ(s, 45);
}

TEST(ScopedInline, ForcesInlineExecutionOnTheHoldingThread) {
  // Server handler threads hold one of these so N handlers can enter
  // the (single-caller) pool concurrently. Under the guard a region
  // must run entirely on the calling thread...
  common::ThreadPool pool(4);
  {
    common::ScopedInline guard;
    const std::thread::id me = std::this_thread::get_id();
    std::int64_t sum = 0;  // no atomics needed if truly inline
    pool.parallel_for(100, [&](std::int64_t i) {
      EXPECT_EQ(std::this_thread::get_id(), me);
      sum += i;
    });
    EXPECT_EQ(sum, 4950);
  }
  // ...and once the guard is gone the pool fans out again.
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ScopedInline, NestsAndRestoresOnDestruction) {
  common::ThreadPool pool(4);
  const std::thread::id me = std::this_thread::get_id();
  common::ScopedInline outer;
  {
    common::ScopedInline inner;  // redundant, must be harmless
    pool.parallel_for(10, [&](std::int64_t) {
      EXPECT_EQ(std::this_thread::get_id(), me);
    });
  }
  // The inner guard's destruction must not cancel the outer one.
  pool.parallel_for(10, [&](std::int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), me);
  });
}

TEST(ScopedInline, ManyGuardedThreadsShareThePoolSafely) {
  // The actual server shape: concurrent guarded callers, each running
  // its own serial region, none touching the pool's job state.
  common::ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 8; ++t) {
    callers.emplace_back([&] {
      common::ScopedInline guard;
      std::int64_t local = 0;
      pool.parallel_for(100, [&](std::int64_t i) { local += i; });
      total += local;
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), 8 * 4950);
}

TEST(ParallelFor, ReusableAcrossManyJobs) {
  common::ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(round % 7, [&](std::int64_t) { ++count; });
    EXPECT_EQ(count.load(), round % 7);
  }
}

// --- cooperative cancellation ---------------------------------------------

TEST(ParallelFor, CancelledBeforeStartRunsNoBodies) {
  common::ThreadPool pool(4);
  common::CancelToken cancel;
  cancel.request_cancel("pre-set");
  std::atomic<int> count{0};
  pool.parallel_for(
      1000, [&](std::int64_t) { ++count; }, &cancel);
  EXPECT_EQ(count.load(), 0) << "workers must poll before their first index";
}

TEST(ParallelFor, SingleThreadCancelStopsAfterTheCancellingIndex) {
  // With one thread the schedule is the identity order, so cancelling
  // from index 10 must run exactly indices 0..10: the cancelling body
  // finishes (per-index atomicity), nothing after it starts.
  common::ThreadPool pool(1);
  common::CancelToken cancel;
  std::vector<int> ran(100, 0);
  pool.parallel_for(
      100,
      [&](std::int64_t i) {
        ran[static_cast<std::size_t>(i)] = 1;
        if (i == 10) cancel.request_cancel("enough");
      },
      &cancel);
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ran[static_cast<std::size_t>(i)], i <= 10 ? 1 : 0)
        << "index " << i;
  }
  EXPECT_EQ(cancel.reason(), "enough");
}

TEST(ParallelFor, CancelMidRegionIsPerIndexAtomic) {
  // Which indices run before the token is observed is timing-dependent,
  // but every output slot must be either fully written or untouched —
  // never half a body. Each body writes two correlated fields; a torn
  // slot would break the invariant.
  common::ThreadPool pool(8);
  common::CancelToken cancel;
  struct Slot {
    std::int64_t a = -1;
    std::int64_t b = -1;
  };
  const std::int64_t n = 10000;
  std::vector<Slot> out(static_cast<std::size_t>(n));
  pool.parallel_for(
      n,
      [&](std::int64_t i) {
        out[static_cast<std::size_t>(i)].a = i;
        out[static_cast<std::size_t>(i)].b = 2 * i;
        if (i % 97 == 0) cancel.request_cancel();
      },
      &cancel);
  std::int64_t ran = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const Slot& s = out[static_cast<std::size_t>(i)];
    const bool untouched = s.a == -1 && s.b == -1;
    const bool complete = s.a == i && s.b == 2 * i;
    EXPECT_TRUE(untouched || complete) << "torn slot at " << i;
    ran += complete ? 1 : 0;
  }
  EXPECT_TRUE(cancel.cancelled());
  EXPECT_LT(ran, n) << "cancellation should have skipped some indices";
  // Static chunking: within each worker's contiguous chunk the executed
  // indices form a prefix (a worker never skips ahead).
  const auto chunk = [&](int w) -> std::pair<std::int64_t, std::int64_t> {
    const int threads = pool.num_threads();
    const std::int64_t lo = n * w / threads;
    const std::int64_t hi = n * (w + 1) / threads;
    return {lo, hi};
  };
  for (int w = 0; w < pool.num_threads(); ++w) {
    const auto [lo, hi] = chunk(w);
    bool seen_gap = false;
    for (std::int64_t i = lo; i < hi; ++i) {
      const bool complete = out[static_cast<std::size_t>(i)].a == i;
      if (!complete) seen_gap = true;
      EXPECT_FALSE(seen_gap && complete)
          << "worker " << w << " resumed after stopping at index " << i;
    }
  }
}

TEST(ParallelMap, CancelledSlotsStayDefaultConstructed) {
  common::set_global_threads(1);
  common::CancelToken cancel;
  const auto out = common::parallel_map<std::int64_t>(
      50,
      [&](std::int64_t i) {
        if (i == 7) cancel.request_cancel();
        return i + 1;  // never 0, so 0 marks a skipped slot
      },
      &cancel);
  common::set_global_threads(0);
  ASSERT_EQ(out.size(), 50u);
  for (std::int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i <= 7 ? i + 1 : 0)
        << "index " << i;
  }
}

TEST(ParallelFor, TokenResetReArmsTheRegion) {
  common::ThreadPool pool(2);
  common::CancelToken cancel;
  cancel.request_cancel("first run");
  std::atomic<int> count{0};
  pool.parallel_for(
      100, [&](std::int64_t) { ++count; }, &cancel);
  EXPECT_EQ(count.load(), 0);
  cancel.reset();
  EXPECT_FALSE(cancel.cancelled());
  EXPECT_TRUE(cancel.reason().empty());
  pool.parallel_for(
      100, [&](std::int64_t) { ++count; }, &cancel);
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelMap, ProducesOrderedResults) {
  common::set_global_threads(4);
  const auto out = common::parallel_map<std::int64_t>(
      100, [](std::int64_t i) { return i * i; });
  common::set_global_threads(0);
  ASSERT_EQ(out.size(), 100u);
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(DeriveSeed, DeterministicAndWellSpread) {
  EXPECT_EQ(common::derive_seed(1, 0), common::derive_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (std::uint64_t index = 0; index < 64; ++index) {
      seen.insert(common::derive_seed(seed, index));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 64u) << "derived seeds must not collide";
}

TEST(DeriveSeed, NamedStreamsAreStableAndDisjoint) {
  // Stable across calls (they seed reproducible RNGs)...
  EXPECT_EQ(common::derive_stream(1, "attack.test.targets"),
            common::derive_stream(1, "attack.test.targets"));
  // ...distinct per name and per seed...
  EXPECT_NE(common::derive_stream(1, "attack.test.targets"),
            common::derive_stream(1, "sampling.negatives"));
  EXPECT_NE(common::derive_stream(1, "attack.test.targets"),
            common::derive_stream(2, "attack.test.targets"));
  // ...and disjoint from the numbered per-task streams (per-tree,
  // per-fold) for all small indices — the aliasing that the old
  // `seed * 7927 + 3` derivation could not rule out.
  std::set<std::uint64_t> numbered;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (std::uint64_t index = 0; index < 256; ++index) {
      numbered.insert(common::derive_seed(seed, index));
    }
  }
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const char* name : {"attack.test.targets", "sampling.negatives"}) {
      EXPECT_FALSE(numbered.count(common::derive_stream(seed, name)))
          << "named stream aliases a numbered stream";
    }
  }
}

TEST(GlobalPool, ResizableAndAtLeastOneThread) {
  common::set_global_threads(2);
  EXPECT_EQ(common::global_pool().num_threads(), 2);
  common::set_global_threads(0);  // auto
  EXPECT_GE(common::global_pool().num_threads(), 1);
  EXPECT_GE(common::configured_threads(), 1);
}

// --- thread invariance ----------------------------------------------------

/// Runs fn at each thread count and checks all return values are equal
/// (operator== supplied by the caller via a comparison lambda).
template <class T, class Fn, class Eq>
void expect_thread_invariant(Fn&& fn, Eq&& eq, const char* what) {
  common::set_global_threads(1);
  const T baseline = fn();
  for (const int threads : {2, 8}) {
    common::set_global_threads(threads);
    const T other = fn();
    EXPECT_TRUE(eq(baseline, other))
        << what << " differs between 1 and " << threads << " threads";
  }
  common::set_global_threads(0);
}

bool same_model(const ml::BaggingClassifier& a,
                const ml::BaggingClassifier& b) {
  if (a.num_trees() != b.num_trees()) return false;
  for (int t = 0; t < a.num_trees(); ++t) {
    const ml::DecisionTree& ta = a.tree(t);
    const ml::DecisionTree& tb = b.tree(t);
    if (ta.num_nodes() != tb.num_nodes()) return false;
    for (int i = 0; i < ta.num_nodes(); ++i) {
      const ml::TreeNode& na = ta.node(i);
      const ml::TreeNode& nb = tb.node(i);
      if (na.feature != nb.feature || na.left != nb.left ||
          na.right != nb.right ||
          std::memcmp(&na.threshold, &nb.threshold, sizeof na.threshold) !=
              0 ||
          std::memcmp(&na.pos, &nb.pos, sizeof na.pos) != 0 ||
          std::memcmp(&na.neg, &nb.neg, sizeof na.neg) != 0) {
        return false;
      }
    }
  }
  return true;
}

ml::Dataset invariance_dataset() {
  ml::Dataset data({"x", "y", "z"});
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < 1200; ++i) {
    const double x = u(rng), y = u(rng), z = u(rng);
    data.add_row(std::vector<double>{x, y, z},
                 (x + y * z > 0.75 + 0.1 * u(rng)) ? 1 : 0);
  }
  return data;
}

TEST(ThreadInvariance, BaggingModelsAreBitIdentical) {
  const ml::Dataset data = invariance_dataset();
  expect_thread_invariant<ml::BaggingClassifier>(
      [&] {
        return ml::BaggingClassifier::train(
            data, ml::BaggingOptions::reptree_bagging(5));
      },
      same_model, "bagged REPTree model");
  expect_thread_invariant<ml::BaggingClassifier>(
      [&] {
        return ml::BaggingClassifier::train(
            data, ml::BaggingOptions::random_forest(3, 5));
      },
      same_model, "random forest model");
}

TEST(FlatForest, MatchesPointerWalkBitForBit) {
  const ml::Dataset data = invariance_dataset();
  const auto clf = ml::BaggingClassifier::train(
      data, ml::BaggingOptions::reptree_bagging(5));
  const ml::FlatForest flat = ml::FlatForest::build(clf);
  EXPECT_EQ(flat.num_trees(), clf.num_trees());
  std::mt19937_64 rng(123);
  std::uniform_real_distribution<double> u(-0.5, 1.5);
  std::vector<double> rows;
  std::vector<double> expected;
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> x{u(rng), u(rng), u(rng)};
    const double p_tree = clf.predict_proba(x);
    const double p_flat = flat.predict_proba(x);
    ASSERT_EQ(std::memcmp(&p_tree, &p_flat, sizeof p_tree), 0)
        << "row " << i << ": " << p_tree << " vs " << p_flat;
    rows.insert(rows.end(), x.begin(), x.end());
    expected.push_back(p_tree);
  }
  std::vector<double> batch(expected.size());
  flat.predict_batch(rows.data(), static_cast<int>(expected.size()), 3,
                     batch.data());
  EXPECT_EQ(std::memcmp(batch.data(), expected.data(),
                        expected.size() * sizeof(double)),
            0);
}

TEST(FlatForest, EmptyForestPredictsHalf) {
  const ml::FlatForest flat;
  EXPECT_TRUE(flat.empty());
  const std::vector<double> x{0.1, 0.2};
  EXPECT_DOUBLE_EQ(flat.predict_proba(x), 0.5);
  double out[2] = {0, 0};
  flat.predict_batch(x.data(), 2, 1, out);
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
}

// --- push_top regression --------------------------------------------------

TEST(PushTop, TopKSetIsInsertionOrderIndependent) {
  // Many candidates with deliberately colliding p values: the kept set
  // must be the first K under (p desc, d asc, id asc) no matter the
  // insertion order — the property the parallel scorer relies on.
  std::vector<core::Candidate> all;
  for (int i = 0; i < 200; ++i) {
    core::Candidate c;
    c.id = static_cast<splitmfg::VpinId>(i);
    c.p = 0.25f * static_cast<float>(i % 4);  // only 4 distinct p values
    c.d = static_cast<float>(i % 8);          // and 8 distinct distances
    all.push_back(c);
  }
  std::vector<core::Candidate> expected = all;
  std::sort(expected.begin(), expected.end(), core::detail::candidate_before);
  const int k = 16;
  expected.resize(k);

  std::mt19937_64 rng(7);
  for (int round = 0; round < 20; ++round) {
    std::shuffle(all.begin(), all.end(), rng);
    std::vector<core::Candidate> top;
    for (const core::Candidate& c : all) core::detail::push_top(top, k, c);
    std::sort(top.begin(), top.end(), core::detail::candidate_before);
    ASSERT_EQ(top.size(), expected.size());
    for (int i = 0; i < k; ++i) {
      EXPECT_EQ(top[static_cast<std::size_t>(i)].id,
                expected[static_cast<std::size_t>(i)].id)
          << "round " << round << " rank " << i;
    }
  }
}

TEST(PushTop, KeepsEverythingBelowCapacity) {
  std::vector<core::Candidate> top;
  for (int i = 0; i < 5; ++i) {
    core::detail::push_top(
        top, 8, core::Candidate{static_cast<splitmfg::VpinId>(i), 0.5f, 1.0f});
  }
  EXPECT_EQ(top.size(), 5u);
}

// --- attack-level invariance ----------------------------------------------

/// The LoC CSV exactly as tools/split_attack writes it.
std::string loc_csv(const splitmfg::SplitChallenge& ch,
                    const core::AttackResult& res, double threshold) {
  std::ostringstream os;
  os << "vpin,x,y,candidate,probability,distance\n";
  for (int v = 0; v < ch.num_vpins(); ++v) {
    const auto& r = res.per_vpin()[static_cast<std::size_t>(v)];
    for (const core::Candidate& c : r.top) {
      if (c.p < threshold) break;
      os << v << ',' << ch.vpin(v).pos.x << ',' << ch.vpin(v).pos.y << ','
         << c.id << ',' << c.p << ',' << c.d << '\n';
    }
  }
  return os.str();
}

bool same_result(const core::AttackResult& a, const core::AttackResult& b) {
  if (a.num_vpins() != b.num_vpins()) return false;
  for (int v = 0; v < a.num_vpins(); ++v) {
    const core::VpinResult& ra = a.per_vpin()[static_cast<std::size_t>(v)];
    const core::VpinResult& rb = b.per_vpin()[static_cast<std::size_t>(v)];
    if (ra.tested != rb.tested || ra.has_match != rb.has_match ||
        ra.num_evaluated != rb.num_evaluated || ra.hist != rb.hist ||
        std::memcmp(&ra.p_true, &rb.p_true, sizeof ra.p_true) != 0 ||
        std::memcmp(&ra.d_true, &rb.d_true, sizeof ra.d_true) != 0 ||
        ra.top.size() != rb.top.size()) {
      return false;
    }
    for (std::size_t i = 0; i < ra.top.size(); ++i) {
      if (ra.top[i].id != rb.top[i].id ||
          std::memcmp(&ra.top[i].p, &rb.top[i].p, sizeof(float)) != 0 ||
          std::memcmp(&ra.top[i].d, &rb.top[i].d, sizeof(float)) != 0) {
        return false;
      }
    }
  }
  return true;
}

class AttackThreadInvariance : public ::testing::Test {
 protected:
  void SetUp() override {
    for (std::uint64_t s = 1; s <= 3; ++s) {
      challenges_.push_back(
          repro::testing::make_grid_challenge(80, 100000, 8000, s));
    }
  }
  void TearDown() override { common::set_global_threads(0); }
  std::vector<splitmfg::SplitChallenge> challenges_;
};

TEST_F(AttackThreadInvariance, RankingsHistogramsAndCsvMatch) {
  const std::vector<const splitmfg::SplitChallenge*> training{
      &challenges_[1], &challenges_[2]};
  const core::AttackConfig cfg = core::config_from_name("Imp-9");
  common::set_global_threads(1);
  const core::AttackResult baseline =
      core::AttackEngine::run(challenges_[0], training, cfg);
  const std::string baseline_csv = loc_csv(challenges_[0], baseline, 0.4);
  for (const int threads : {2, 8}) {
    common::set_global_threads(threads);
    const core::AttackResult other =
        core::AttackEngine::run(challenges_[0], training, cfg);
    EXPECT_TRUE(same_result(baseline, other))
        << "attack result differs at " << threads << " threads";
    EXPECT_EQ(baseline_csv, loc_csv(challenges_[0], other, 0.4))
        << "LoC CSV differs at " << threads << " threads";
  }
}

TEST_F(AttackThreadInvariance, TargetSampledRunsMatchToo) {
  const std::vector<const splitmfg::SplitChallenge*> training{
      &challenges_[1], &challenges_[2]};
  core::AttackConfig cfg = core::config_from_name("ML-9");
  cfg.max_test_vpins = 40;  // exercises the sampled-target path
  expect_thread_invariant<core::AttackResult>(
      [&] { return core::AttackEngine::run(challenges_[0], training, cfg); },
      same_result, "sampled attack result");
}

TEST_F(AttackThreadInvariance, LeaveOneOutSuiteMatches) {
  core::AttackConfig cfg = core::config_from_name("Imp-9");
  const core::ChallengeSuite suite(challenges_);
  common::set_global_threads(1);
  const std::vector<core::AttackResult> baseline = suite.run_all(cfg);
  for (const int threads : {2, 8}) {
    common::set_global_threads(threads);
    const std::vector<core::AttackResult> other = suite.run_all(cfg);
    ASSERT_EQ(baseline.size(), other.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_TRUE(same_result(baseline[i], other[i]))
          << "fold " << i << " differs at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace repro

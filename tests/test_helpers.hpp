// Shared helpers for attack-level tests: hand-built split challenges with
// controlled geometry, so ML behaviour can be asserted without running the
// synthesis/routing stack.
#pragma once

#include <random>

#include "splitmfg/split.hpp"

namespace repro::testing {

/// Builds a challenge of `n_pairs` matched v-pin pairs on a die of
/// `die` DBU square. Matching pairs are placed `match_dx` apart in x on the
/// same row (mimicking split-8 geometry); v-pins are spread uniformly.
/// Driver side gets OutArea, load side InArea, correlated so that the
/// features carry signal. All coordinates snap to a `grid` DBU grid.
inline splitmfg::SplitChallenge make_grid_challenge(
    int n_pairs, geom::Dbu die = 100000, geom::Dbu match_dx = 8000,
    std::uint64_t seed = 1, geom::Dbu grid = 800, bool same_row = true) {
  splitmfg::SplitChallenge ch;
  ch.design_name = "synthetic" + std::to_string(seed);
  ch.split_layer = 8;
  ch.die = geom::Rect(0, 0, die, die);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<geom::Dbu> pos(0, (die - match_dx) / grid - 1);
  std::uniform_int_distribution<geom::Dbu> dy(-4, 4);
  std::uniform_real_distribution<double> area(400.0, 4000.0);

  for (int i = 0; i < n_pairs; ++i) {
    const geom::Dbu x = pos(rng) * grid;
    const geom::Dbu y = pos(rng) * grid;
    const double drv_area = area(rng);

    splitmfg::Vpin a;
    a.id = static_cast<splitmfg::VpinId>(ch.vpins.size());
    a.net = i;
    a.pos = {x, y};
    a.pin_loc = {x, y};
    a.wirelength = 1600;
    a.out_area = drv_area;  // driver side
    a.pc = 1.0;
    a.rc = 1.0;

    splitmfg::Vpin b;
    b.id = a.id + 1;
    b.net = i;
    const geom::Dbu by =
        same_row ? y
                 : geom::clamp<geom::Dbu>(y + dy(rng) * grid, 0, die - 1);
    b.pos = {x + match_dx, by};
    b.pin_loc = {x + match_dx, by};
    b.wirelength = 1600;
    b.in_area = drv_area * 0.5;  // load correlated with driver
    b.pc = 1.0;
    b.rc = 1.0;

    a.matches = {b.id};
    b.matches = {a.id};
    ch.vpins.push_back(std::move(a));
    ch.vpins.push_back(std::move(b));
  }
  return ch;
}

}  // namespace repro::testing

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "netlist/netlist.hpp"

namespace repro::netlist {
namespace {

std::shared_ptr<const Library> default_lib() {
  return std::make_shared<const Library>(Library::make_default());
}

TEST(Library, DefaultLibraryBasics) {
  const Library lib = Library::make_default();
  EXPECT_GE(lib.num_cells(), 15);
  EXPECT_TRUE(lib.find("INV_X1").has_value());
  EXPECT_TRUE(lib.find("DFF_X1").has_value());
  EXPECT_TRUE(lib.find("MACRO_RAM").has_value());
  EXPECT_FALSE(lib.find("NO_SUCH_CELL").has_value());
}

TEST(Library, EveryCellHasExactlyPinsItClaims) {
  const Library lib = Library::make_default();
  for (int c = 0; c < lib.num_cells(); ++c) {
    const LibCell& lc = lib.cell(c);
    EXPECT_GT(lc.area(), 0) << lc.name;
    EXPECT_GE(lc.num_outputs(), 1) << lc.name;
    if (!lc.is_macro) {
      EXPECT_GE(lc.num_inputs(), 1) << lc.name;
      // Pin offsets inside the cell footprint.
      for (const LibPin& p : lc.pins) {
        EXPECT_GE(p.offset.x, 0) << lc.name << "/" << p.name;
        EXPECT_LE(p.offset.x, lc.width) << lc.name << "/" << p.name;
        EXPECT_LE(p.offset.y, lc.height) << lc.name << "/" << p.name;
      }
    }
  }
}

TEST(Library, DriveStrengthTracksAreaWithinFamily) {
  const Library lib = Library::make_default();
  const LibCell& x1 = lib.cell(*lib.find("INV_X1"));
  const LibCell& x8 = lib.cell(*lib.find("INV_X8"));
  EXPECT_LT(x1.drive_strength, x8.drive_strength);
  EXPECT_LT(x1.area(), x8.area());
}

TEST(Library, RejectsDuplicateNames) {
  Library lib;
  LibCell c;
  c.name = "A";
  c.width = 100;
  c.height = 100;
  lib.add_cell(c);
  EXPECT_THROW(lib.add_cell(c), std::invalid_argument);
}

TEST(Netlist, PinPositionIsOriginPlusOffset) {
  auto lib = default_lib();
  Netlist nl(lib, "t");
  const int inv = *lib->find("INV_X1");
  const CellId c = nl.add_cell("u1", inv, {1000, 2000});
  const LibCell& lc = lib->cell(inv);
  for (int p = 0; p < static_cast<int>(lc.pins.size()); ++p) {
    const geom::Point pos = nl.pin_position({c, p});
    EXPECT_EQ(pos.x, 1000 + lc.pins[static_cast<std::size_t>(p)].offset.x);
    EXPECT_EQ(pos.y, 2000 + lc.pins[static_cast<std::size_t>(p)].offset.y);
  }
}

TEST(Netlist, CheckAcceptsWellFormedNet) {
  auto lib = default_lib();
  Netlist nl(lib, "t");
  const int inv = *lib->find("INV_X1");
  const CellId a = nl.add_cell("a", inv, {0, 0});
  const CellId b = nl.add_cell("b", inv, {5000, 0});
  Net net;
  net.name = "n1";
  net.pins = {{a, 1}, {b, 0}};  // INV: pin 0 = A (input), pin 1 = Z (output)
  net.driver = 0;
  nl.add_net(net);
  EXPECT_NO_THROW(nl.check());
}

TEST(Netlist, CheckRejectsTwoDrivers) {
  auto lib = default_lib();
  Netlist nl(lib, "t");
  const int inv = *lib->find("INV_X1");
  const CellId a = nl.add_cell("a", inv, {0, 0});
  const CellId b = nl.add_cell("b", inv, {5000, 0});
  Net net;
  net.name = "n1";
  net.pins = {{a, 1}, {b, 1}};  // both outputs
  net.driver = 0;
  nl.add_net(net);
  EXPECT_THROW(nl.check(), std::runtime_error);
}

TEST(Netlist, CheckRejectsDriverIndexOnInputPin) {
  auto lib = default_lib();
  Netlist nl(lib, "t");
  const int inv = *lib->find("INV_X1");
  const CellId a = nl.add_cell("a", inv, {0, 0});
  const CellId b = nl.add_cell("b", inv, {5000, 0});
  Net net;
  net.name = "n1";
  net.pins = {{a, 0}, {b, 0}};
  net.driver = 0;  // claims pin 0 (input) drives
  nl.add_net(net);
  EXPECT_THROW(nl.check(), std::runtime_error);
}

TEST(Netlist, AddNetRejectsDegenerates) {
  auto lib = default_lib();
  Netlist nl(lib, "t");
  const int inv = *lib->find("INV_X1");
  const CellId a = nl.add_cell("a", inv, {0, 0});
  Net net;
  net.name = "n1";
  net.pins = {{a, 1}};
  EXPECT_THROW(nl.add_net(net), std::invalid_argument);
}

TEST(Netlist, BoundingBoxCoversCells) {
  auto lib = default_lib();
  Netlist nl(lib, "t");
  const int inv = *lib->find("INV_X1");
  nl.add_cell("a", inv, {0, 0});
  nl.add_cell("b", inv, {9000, 4000});
  const geom::Rect bb = nl.bounding_box();
  EXPECT_EQ(bb.lo.x, 0);
  EXPECT_EQ(bb.lo.y, 0);
  EXPECT_EQ(bb.hi.x, 9000 + lib->cell(inv).width);
  EXPECT_EQ(bb.hi.y, 4000 + lib->cell(inv).height);
}

}  // namespace
}  // namespace repro::netlist

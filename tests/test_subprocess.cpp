// Worker-process substrate: spawn/poll/wait/kill plus the exit-code
// taxonomy the campaign supervisor uses to decide retry vs quarantine.
// All children are /bin/sh one-liners so the tests carry no fixture
// binaries.
#include "common/subprocess.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using repro::common::classify_exit;
using repro::common::ExitClass;
using repro::common::SpawnOptions;
using repro::common::Subprocess;
using repro::common::WaitStatus;

SpawnOptions sh(const std::string& script) {
  SpawnOptions opt;
  opt.argv = {"/bin/sh", "-c", script};
  return opt;
}

WaitStatus run(SpawnOptions opt) {
  auto child = Subprocess::spawn(opt);
  EXPECT_TRUE(child.ok()) << child.status().to_string();
  return child->wait();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(Subprocess, ExitCodesRoundTripThroughWait) {
  for (int code : {0, 2, 3, 4, 7}) {
    const WaitStatus ws = run(sh("exit " + std::to_string(code)));
    EXPECT_TRUE(ws.exited);
    EXPECT_FALSE(ws.signaled);
    EXPECT_EQ(ws.exit_code, code);
  }
}

TEST(Subprocess, ClassifyExitCoversTheTaxonomy) {
  EXPECT_EQ(classify_exit(run(sh("exit 0"))), ExitClass::kOk);
  EXPECT_EQ(classify_exit(run(sh("exit 2"))), ExitClass::kUsageError);
  EXPECT_EQ(classify_exit(run(sh("exit 3"))), ExitClass::kInterrupted);
  EXPECT_EQ(classify_exit(run(sh("exit 4"))), ExitClass::kOkDegraded);
  EXPECT_EQ(classify_exit(run(sh("exit 7"))), ExitClass::kFailed);
}

TEST(Subprocess, DeathBySignalClassifiesAsCrashed) {
  const WaitStatus ws = run(sh("kill -9 $$"));
  EXPECT_TRUE(ws.signaled);
  EXPECT_EQ(ws.signal, SIGKILL);
  EXPECT_EQ(classify_exit(ws), ExitClass::kCrashed);
  EXPECT_NE(ws.to_string().find("9"), std::string::npos);
}

TEST(Subprocess, MissingBinarySurfacesAsSpawnFailed) {
  SpawnOptions opt;
  opt.argv = {"/no/such/binary/anywhere"};
  const WaitStatus ws = run(opt);
  EXPECT_TRUE(ws.exited);
  EXPECT_EQ(ws.exit_code, repro::common::kExitSpawnFailed);
  EXPECT_EQ(classify_exit(ws), ExitClass::kSpawnFailed);
}

TEST(Subprocess, EmptyArgvIsRejectedInTheParent) {
  SpawnOptions opt;
  auto child = Subprocess::spawn(opt);
  EXPECT_FALSE(child.ok());
}

TEST(Subprocess, StdoutAndStderrRedirectToFiles) {
  const std::string dir = ::testing::TempDir() + "/subproc_redirect";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  SpawnOptions opt = sh("echo out-line; echo err-line >&2");
  opt.stdout_path = dir + "/worker.out";
  opt.stderr_path = dir + "/worker.err";
  const WaitStatus ws = run(opt);
  EXPECT_EQ(ws.exit_code, 0);
  EXPECT_EQ(slurp(opt.stdout_path), "out-line\n");
  EXPECT_EQ(slurp(opt.stderr_path), "err-line\n");
}

TEST(Subprocess, EnvOverridesAndUnsetReachTheChild) {
  ::setenv("REPRO_SUBPROC_DROP", "leaky", 1);
  SpawnOptions opt =
      sh("printf '%s|%s' \"${REPRO_SUBPROC_SET:-missing}\" "
         "\"${REPRO_SUBPROC_DROP:-scrubbed}\"");
  opt.env.emplace_back("REPRO_SUBPROC_SET", "injected");
  opt.env_unset.push_back("REPRO_SUBPROC_DROP");
  opt.stdout_path = ::testing::TempDir() + "/subproc_env.out";
  const WaitStatus ws = run(opt);
  ::unsetenv("REPRO_SUBPROC_DROP");
  EXPECT_EQ(ws.exit_code, 0);
  EXPECT_EQ(slurp(opt.stdout_path), "injected|scrubbed");
}

TEST(Subprocess, PollIsNonBlockingAndEventuallyReaps) {
  auto child = Subprocess::spawn(sh("sleep 0.2; exit 5"));
  ASSERT_TRUE(child.ok());
  EXPECT_TRUE(child->running());
  EXPECT_FALSE(child->poll());  // still asleep
  ASSERT_TRUE(child->wait_for(10.0));
  EXPECT_TRUE(child->poll());
  EXPECT_EQ(child->status().exit_code, 5);
  EXPECT_FALSE(child->running());
}

TEST(Subprocess, WaitForTimesOutWithoutKillingThenKillEscalates) {
  auto child = Subprocess::spawn(sh("sleep 30"));
  ASSERT_TRUE(child.ok());
  EXPECT_FALSE(child->wait_for(0.1));
  EXPECT_TRUE(child->running()) << "wait_for must not kill on timeout";
  child->kill(SIGKILL);
  const WaitStatus& ws = child->wait();
  EXPECT_TRUE(ws.signaled);
  EXPECT_EQ(ws.signal, SIGKILL);
  child->kill(SIGKILL);  // no-op after reaping
}

TEST(Subprocess, MoveTransfersTheChild) {
  auto child = Subprocess::spawn(sh("exit 0"));
  ASSERT_TRUE(child.ok());
  Subprocess moved = std::move(*child);
  EXPECT_GT(moved.pid(), 0);
  EXPECT_EQ(moved.wait().exit_code, 0);
}

}  // namespace

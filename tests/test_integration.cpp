// End-to-end integration: synthesize a 3-design mini suite, cut at all
// three studied split layers, run the attack with leave-one-out CV, the
// proximity attack, the prior-work baseline, and the feature ranking. This
// is the complete paper pipeline in miniature.
#include <gtest/gtest.h>

#include "baseline/prior_work.hpp"
#include "core/pipeline.hpp"
#include "core/proximity.hpp"
#include "core/ranking.hpp"

namespace repro {
namespace {

class MiniPipeline : public ::testing::Test {
 protected:
  static const std::vector<synth::SynthDesign>& designs() {
    static const std::vector<synth::SynthDesign> d = [] {
      std::vector<synth::SynthDesign> out;
      for (const char* name : {"sb1", "sb5", "sb18"}) {
        synth::SynthParams p = synth::preset(name);
        p.num_cells = 2000;
        out.push_back(synth::generate(p));
      }
      return out;
    }();
    return d;
  }
};

TEST_F(MiniPipeline, CrossValidatedAttackAtSplit8) {
  const core::ChallengeSuite suite = core::make_suite(designs(), 8);
  ASSERT_EQ(suite.size(), 3u);
  const auto results = suite.run_all(core::config_from_name("Imp-9"));
  for (const auto& res : results) {
    // The ML attack has real signal: far better than random guessing at a
    // 5% LoC fraction.
    const double acc = res.accuracy_for_mean_loc(0.05 * res.num_vpins());
    EXPECT_GT(acc, 0.25) << res.design();
    EXPECT_GT(res.max_accuracy(), 0.7) << res.design();
  }
}

TEST_F(MiniPipeline, MlBeatsPriorWorkBaseline) {
  const core::ChallengeSuite suite = core::make_suite(designs(), 8);
  const auto& target = suite.challenge(0);
  const auto training = suite.training_for(0);

  const auto res = core::AttackEngine::run(target, training,
                                           core::config_from_name("Imp-9"));
  const auto base = baseline::PriorWorkBaseline::train(training).evaluate(
      target, std::vector<double>{1.0});
  // At the baseline's LoC budget, the ML attack is at least as accurate.
  EXPECT_GE(res.accuracy_for_mean_loc(base.mean_loc[0]) + 0.05,
            base.accuracy[0]);
}

TEST_F(MiniPipeline, YVariantNoWorseAtTopLayer) {
  const core::ChallengeSuite suite = core::make_suite(designs(), 8);
  const auto& target = suite.challenge(1);
  const auto training = suite.training_for(1);
  const auto plain = core::AttackEngine::run(
      target, training, core::config_from_name("Imp-9"));
  const auto y = core::AttackEngine::run(target, training,
                                         core::config_from_name("Imp-9Y"));
  const double budget = 0.01 * target.num_vpins();
  EXPECT_GE(y.accuracy_for_mean_loc(budget) + 0.05,
            plain.accuracy_for_mean_loc(budget));
}

TEST_F(MiniPipeline, FeatureRankingPutsRoutingFirst) {
  const core::ChallengeSuite suite = core::make_suite(designs(), 8);
  const auto scores = core::rank_attack_features(suite.training_for(0));
  ASSERT_EQ(static_cast<int>(scores.size()), core::kNumFeatures);
  // The paper's headline ranking claim: v-pin (routing) location features
  // beat the congestion features.
  const double vpin_best =
      std::max(scores[core::kDiffVpinY].info_gain,
               scores[core::kManhattanVpin].info_gain);
  EXPECT_GT(vpin_best, scores[core::kPlacementCongestion].info_gain);
  // DiffVpinY dominates at the top via layer (horizontal M9).
  EXPECT_GT(scores[core::kDiffVpinY].info_gain, 0.2);
}

TEST_F(MiniPipeline, ProximityAttackRunsEndToEnd) {
  const core::ChallengeSuite suite = core::make_suite(designs(), 8);
  const auto& target = suite.challenge(2);
  const auto training = suite.training_for(2);
  const auto cfg = core::config_from_name("Imp-9Y");
  const auto res = core::AttackEngine::run(target, training, cfg);
  core::PAOptions opt;
  opt.fractions = {0.001, 0.005, 0.02};
  const auto pa =
      core::validated_proximity_attack(res, target, training, cfg, opt);
  EXPECT_GE(pa.success_rate, 0.0);
  EXPECT_LE(pa.success_rate, 1.0);
  EXPECT_GT(pa.best_fraction, 0.0);
}

TEST_F(MiniPipeline, LowerLayersAreHarder) {
  // Paper SSIV-E.1: accuracy at a fixed LoC fraction degrades from split 8
  // to split 4.
  const core::ChallengeSuite s8 = core::make_suite(designs(), 8);
  const core::ChallengeSuite s4 = core::make_suite(designs(), 4);
  const auto cfg = core::config_from_name("Imp-9");
  double acc8 = 0, acc4 = 0;
  for (std::size_t i = 0; i < s8.size(); ++i) {
    const auto r8 =
        core::AttackEngine::run(s8.challenge(i), s8.training_for(i), cfg);
    const auto r4 =
        core::AttackEngine::run(s4.challenge(i), s4.training_for(i), cfg);
    acc8 += r8.accuracy_for_mean_loc(0.02 * r8.num_vpins());
    acc4 += r4.accuracy_for_mean_loc(0.02 * r4.num_vpins());
  }
  EXPECT_GT(acc8, acc4);
}

}  // namespace
}  // namespace repro

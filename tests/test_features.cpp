#include <gtest/gtest.h>

#include "core/features.hpp"

namespace repro::core {
namespace {

splitmfg::Vpin vpin(geom::Point pos, geom::Point pin_loc, double w,
                    double in_area, double out_area, double pc = 0,
                    double rc = 0) {
  splitmfg::Vpin v;
  v.pos = pos;
  v.pin_loc = pin_loc;
  v.wirelength = w;
  v.in_area = in_area;
  v.out_area = out_area;
  v.pc = pc;
  v.rc = rc;
  return v;
}

TEST(Features, HandComputedValues) {
  // Example in the spirit of paper Fig. 3.
  const auto v1 = vpin({100, 200}, {110, 180}, 500, 0, 800, 1.5, 2.0);
  const auto v2 = vpin({400, 250}, {390, 300}, 700, 1200, 0, 0.5, 1.0);
  const auto f = pair_features(v1, v2);
  EXPECT_DOUBLE_EQ(f[kDiffPinX], 280);
  EXPECT_DOUBLE_EQ(f[kDiffPinY], 120);
  EXPECT_DOUBLE_EQ(f[kManhattanPin], 400);
  EXPECT_DOUBLE_EQ(f[kDiffVpinX], 300);
  EXPECT_DOUBLE_EQ(f[kDiffVpinY], 50);
  EXPECT_DOUBLE_EQ(f[kManhattanVpin], 350);
  EXPECT_DOUBLE_EQ(f[kTotalWirelength], 1200);
  EXPECT_DOUBLE_EQ(f[kTotalArea], 2000);
  // DiffArea = (out1 + out2) - (in1 + in2) = 800 - 1200.
  EXPECT_DOUBLE_EQ(f[kDiffArea], -400);
  EXPECT_DOUBLE_EQ(f[kPlacementCongestion], 2.0);
  EXPECT_DOUBLE_EQ(f[kRoutingCongestion], 3.0);
}

TEST(Features, SymmetricInArguments) {
  const auto v1 = vpin({7, 9}, {1, 2}, 10, 100, 0);
  const auto v2 = vpin({3, 14}, {8, 5}, 20, 0, 300);
  const auto f12 = pair_features(v1, v2);
  const auto f21 = pair_features(v2, v1);
  for (int i = 0; i < kNumFeatures; ++i) {
    EXPECT_DOUBLE_EQ(f12[static_cast<std::size_t>(i)],
                     f21[static_cast<std::size_t>(i)])
        << feature_names()[static_cast<std::size_t>(i)];
  }
}

TEST(Features, ManhattanFeaturesAreSumsOfComponents) {
  const auto v1 = vpin({0, 0}, {10, 20}, 0, 0, 0);
  const auto v2 = vpin({30, 40}, {50, 60}, 0, 0, 0);
  const auto f = pair_features(v1, v2);
  EXPECT_DOUBLE_EQ(f[kManhattanVpin], f[kDiffVpinX] + f[kDiffVpinY]);
  EXPECT_DOUBLE_EQ(f[kManhattanPin], f[kDiffPinX] + f[kDiffPinY]);
}

TEST(Features, LegalPairExcludesDoubleDrivers) {
  const auto drv1 = vpin({0, 0}, {0, 0}, 0, 0, 500);
  const auto drv2 = vpin({1, 1}, {1, 1}, 0, 0, 700);
  const auto load = vpin({2, 2}, {2, 2}, 0, 300, 0);
  EXPECT_FALSE(legal_pair(drv1, drv2));
  EXPECT_TRUE(legal_pair(drv1, load));
  EXPECT_TRUE(legal_pair(load, load));  // load-load pairs stay legal
}

TEST(Features, FeatureSetsSelectDocumentedSubsets) {
  EXPECT_EQ(feature_indices(FeatureSet::kF7).size(), 7u);
  EXPECT_EQ(feature_indices(FeatureSet::kF9).size(), 9u);
  EXPECT_EQ(feature_indices(FeatureSet::kF11).size(), 11u);

  // Imp-7 = Imp-9 minus TotalWirelength and TotalArea.
  const auto f7 = feature_indices(FeatureSet::kF7);
  EXPECT_EQ(std::count(f7.begin(), f7.end(), kTotalWirelength), 0);
  EXPECT_EQ(std::count(f7.begin(), f7.end(), kTotalArea), 0);
  EXPECT_EQ(std::count(f7.begin(), f7.end(), kDiffArea), 1);

  // The 9-feature set excludes the two congestion features.
  const auto f9 = feature_indices(FeatureSet::kF9);
  EXPECT_EQ(std::count(f9.begin(), f9.end(), kPlacementCongestion), 0);
  EXPECT_EQ(std::count(f9.begin(), f9.end(), kRoutingCongestion), 0);
}

TEST(Features, DistanceScaleAffectsOnlyDistanceFeatures) {
  const auto v1 = vpin({1000, 2000}, {1100, 1800}, 500, 0, 800, 1.5, 2.0);
  const auto v2 = vpin({4000, 2500}, {3900, 3000}, 700, 1200, 0, 0.5, 1.0);
  const auto raw = pair_features(v1, v2, 1.0);
  const auto scaled = pair_features(v1, v2, 0.5);
  for (int f :
       {kDiffPinX, kDiffPinY, kManhattanPin, kDiffVpinX, kDiffVpinY,
        kManhattanVpin, kTotalWirelength}) {
    EXPECT_DOUBLE_EQ(scaled[static_cast<std::size_t>(f)],
                     0.5 * raw[static_cast<std::size_t>(f)])
        << feature_names()[static_cast<std::size_t>(f)];
  }
  for (int f : {kTotalArea, kDiffArea, kPlacementCongestion,
                kRoutingCongestion}) {
    EXPECT_DOUBLE_EQ(scaled[static_cast<std::size_t>(f)],
                     raw[static_cast<std::size_t>(f)])
        << feature_names()[static_cast<std::size_t>(f)];
  }
}

TEST(Features, ProjectKeepsOrder) {
  std::array<double, kNumFeatures> full{};
  for (int i = 0; i < kNumFeatures; ++i) {
    full[static_cast<std::size_t>(i)] = i * 10.0;
  }
  const auto out = project(full, {kDiffVpinY, kDiffPinX});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], kDiffVpinY * 10.0);
  EXPECT_DOUBLE_EQ(out[1], kDiffPinX * 10.0);
}

}  // namespace
}  // namespace repro::core

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "ml/bagging.hpp"

namespace repro::ml {
namespace {

/// XOR-ish nonlinear dataset: label = (x > .5) xor (y > .5), with noise.
Dataset xor_dataset(int n, double noise, std::uint64_t seed) {
  Dataset data({"x", "y"});
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    const double x = u(rng), y = u(rng);
    int label = (x > 0.5) != (y > 0.5);
    if (u(rng) < noise) label = 1 - label;
    data.add_row(std::vector<double>{x, y}, label);
  }
  return data;
}

TEST(Bagging, EmptyDatasetIsInvalidArgument) {
  const Dataset empty({"x", "y"});
  const auto result =
      BaggingClassifier::train_checked(empty, BaggingOptions::reptree_bagging());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
  EXPECT_THROW(BaggingClassifier::train(empty, BaggingOptions::reptree_bagging()),
               std::invalid_argument);
}

TEST(Bagging, TrainCheckedMatchesTrainOnValidData) {
  const Dataset data = xor_dataset(300, 0.1, 6);
  const BaggingOptions opt = BaggingOptions::reptree_bagging(6);
  const auto checked = BaggingClassifier::train_checked(data, opt);
  ASSERT_TRUE(checked.ok());
  const auto plain = BaggingClassifier::train(data, opt);
  const std::vector<double> x{0.3, 0.8};
  EXPECT_EQ(checked->predict_proba(x), plain.predict_proba(x));
  EXPECT_EQ(checked->total_nodes(), plain.total_nodes());
}

TEST(Bagging, DefaultsMirrorWeka) {
  const BaggingOptions rep = BaggingOptions::reptree_bagging();
  EXPECT_EQ(rep.num_trees, 10);
  EXPECT_TRUE(rep.tree.reduced_error_pruning);

  const BaggingOptions rf = BaggingOptions::random_forest(11);
  EXPECT_EQ(rf.num_trees, 100);
  EXPECT_FALSE(rf.tree.reduced_error_pruning);
  // ceil(log2(11)) + 1 = 5.
  EXPECT_EQ(rf.tree.num_random_features, 5);
}

TEST(Bagging, LearnsNonlinearConcept) {
  const Dataset data = xor_dataset(3000, 0.05, 1);
  const auto clf =
      BaggingClassifier::train(data, BaggingOptions::reptree_bagging(2));
  int correct = 0;
  const Dataset probe = xor_dataset(500, 0.0, 99);
  for (int i = 0; i < probe.num_rows(); ++i) {
    correct += (clf.predict(probe.row(i)) == probe.label(i));
  }
  EXPECT_GT(static_cast<double>(correct) / probe.num_rows(), 0.9);
}

TEST(Bagging, SoftVotingIsAverageOfTreeProbabilities) {
  const Dataset data = xor_dataset(500, 0.1, 3);
  BaggingOptions opt = BaggingOptions::reptree_bagging(4);
  opt.num_trees = 5;
  const auto clf = BaggingClassifier::train(data, opt);
  ASSERT_EQ(clf.num_trees(), 5);
  const std::vector<double> x{0.25, 0.75};
  double sum = 0;
  for (int t = 0; t < clf.num_trees(); ++t) {
    sum += clf.tree(t).predict_proba(x);
  }
  EXPECT_NEAR(clf.predict_proba(x), sum / 5.0, 1e-12);
}

TEST(Bagging, ThresholdControlsHardPrediction) {
  const Dataset data = xor_dataset(500, 0.1, 5);
  const auto clf =
      BaggingClassifier::train(data, BaggingOptions::reptree_bagging(6));
  const std::vector<double> x{0.25, 0.75};
  const double p = clf.predict_proba(x);
  EXPECT_EQ(clf.predict(x, p - 0.01), 1);
  EXPECT_EQ(clf.predict(x, p + 0.01), 0);
}

TEST(Bagging, RandomForestMatchesReptreeOnEasyData) {
  const Dataset data = xor_dataset(2000, 0.05, 7);
  const auto rf = BaggingClassifier::train(
      data, BaggingOptions::random_forest(data.num_features(), 8));
  const auto rep =
      BaggingClassifier::train(data, BaggingOptions::reptree_bagging(8));
  const Dataset probe = xor_dataset(400, 0.0, 123);
  int rf_ok = 0, rep_ok = 0;
  for (int i = 0; i < probe.num_rows(); ++i) {
    rf_ok += (rf.predict(probe.row(i)) == probe.label(i));
    rep_ok += (rep.predict(probe.row(i)) == probe.label(i));
  }
  EXPECT_GT(rf_ok, 0.9 * probe.num_rows());
  EXPECT_GT(rep_ok, 0.9 * probe.num_rows());
  // REPTree-bagging uses far fewer nodes than the 100-tree forest - that
  // is the entire point of the paper's Table II.
  EXPECT_LT(rep.total_nodes(), rf.total_nodes() / 4);
}

TEST(Bagging, DeterministicGivenSeed) {
  const Dataset data = xor_dataset(800, 0.1, 9);
  const auto a =
      BaggingClassifier::train(data, BaggingOptions::reptree_bagging(10));
  const auto b =
      BaggingClassifier::train(data, BaggingOptions::reptree_bagging(10));
  std::mt19937_64 probe(11);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x{u(probe), u(probe)};
    EXPECT_DOUBLE_EQ(a.predict_proba(x), b.predict_proba(x));
  }
}

class BaggingSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(BaggingSeedSweep, ProbabilityBoundsHold) {
  const Dataset data =
      xor_dataset(300, 0.2, static_cast<std::uint64_t>(GetParam()));
  const auto clf = BaggingClassifier::train(
      data,
      BaggingOptions::reptree_bagging(static_cast<std::uint64_t>(GetParam())));
  std::mt19937_64 probe(42);
  std::uniform_real_distribution<double> u(-1.0, 2.0);
  for (int i = 0; i < 100; ++i) {
    const double p = clf.predict_proba(std::vector<double>{u(probe), u(probe)});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaggingSeedSweep, ::testing::Range(1, 7));

}  // namespace
}  // namespace repro::ml

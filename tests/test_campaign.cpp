// Campaign supervisor policy tests: retry with backoff, quarantine,
// timeout escalation, corrupt-output verdicts, resume, and the campaign
// lock. Workers are /bin/sh scripts whose behaviour depends on the
// attempt number, so every failure mode is deterministic — no real
// attack runs, no timing races.
#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/diagnostics.hpp"
#include "common/lockfile.hpp"
#include "common/obs.hpp"

namespace {

namespace fs = std::filesystem;
using repro::common::CancelToken;
using repro::common::DiagnosticSink;
using repro::common::SpawnOptions;
using repro::common::Status;
using repro::common::StatusCode;
using repro::common::StatusOr;
using repro::core::CampaignOptions;
using repro::core::CampaignOutcome;
using repro::core::CampaignSupervisor;
using repro::core::ShardSpec;
using repro::core::ShardState;
using repro::core::ShardStatus;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

CampaignOptions fast_options(const std::string& dir, int layers = 1,
                             std::int64_t folds = 2) {
  CampaignOptions opt;
  opt.campaign_dir = dir;
  for (int i = 0; i < layers; ++i) opt.layers.push_back(4 + 2 * i);
  opt.folds_per_layer = folds;
  opt.max_workers = 2;
  opt.max_attempts = 3;
  opt.backoff_base_ms = 1;  // keep retry tests fast
  opt.backoff_max_ms = 4;
  opt.shard_timeout_s = 30;
  return opt;
}

/// Worker that runs `script` via /bin/sh with SHARD_ID / ATTEMPT /
/// SHARD_DIR exported, so scripts can branch per attempt.
repro::core::WorkerCommand sh_worker(const std::string& script) {
  return [script](const ShardSpec& spec, const std::string& shard_dir,
                  int attempt) {
    SpawnOptions opt;
    opt.argv = {"/bin/sh", "-c", script};
    opt.env.emplace_back("SHARD_ID", spec.id());
    opt.env.emplace_back("SHARD_DIR", shard_dir);
    opt.env.emplace_back("ATTEMPT", std::to_string(attempt));
    return opt;
  };
}

/// Validator that accepts any shard whose directory contains `done` and
/// derives a stable digest from the shard id.
StatusOr<std::uint64_t> marker_validator(const ShardSpec& spec,
                                         const std::string& shard_dir) {
  if (!fs::exists(shard_dir + "/done")) {
    return Status::DataLoss(spec.id() + ": done marker missing");
  }
  std::uint64_t h = 1469598103934665603ull;
  for (char c : spec.id()) h = (h ^ static_cast<unsigned char>(c)) *
                               1099511628211ull;
  return h;
}

const ShardState* find_shard(const CampaignOutcome& out,
                             const std::string& id) {
  for (const auto& s : out.shards) {
    if (s.spec.id() == id) return &s;
  }
  return nullptr;
}

TEST(Campaign, AllShardsOkProducesCompleteMergedOutcome) {
  const std::string dir = fresh_dir("campaign_ok");
  DiagnosticSink sink;
  CampaignSupervisor sup(fast_options(dir, /*layers=*/2, /*folds=*/2),
                         sh_worker("touch \"$SHARD_DIR/done\""),
                         marker_validator, sink);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_TRUE(out->complete);
  EXPECT_EQ(out->shards_ok, 4);
  EXPECT_EQ(out->shards_quarantined, 0);
  EXPECT_EQ(out->retries, 0);
  EXPECT_EQ(out->layer_digests.size(), 2u);
  EXPECT_NE(out->campaign_digest, 0u);
  EXPECT_TRUE(fs::exists(CampaignSupervisor::state_path(dir)));
}

TEST(Campaign, TransientFailureRetriesWithRecordedHistory) {
  const std::string dir = fresh_dir("campaign_retry");
  DiagnosticSink sink;
  // Every shard fails once, then succeeds.
  CampaignSupervisor sup(
      fast_options(dir, 1, 2),
      sh_worker("if [ \"$ATTEMPT\" = 1 ]; then exit 9; fi; "
                "touch \"$SHARD_DIR/done\""),
      marker_validator, sink);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->complete);
  EXPECT_EQ(out->shards_ok, 2);
  EXPECT_EQ(out->retries, 2);
  for (const auto& s : out->shards) {
    EXPECT_EQ(s.status, ShardStatus::kOk);
    EXPECT_EQ(s.attempts, 2);
    ASSERT_GE(s.history.size(), 1u);
    EXPECT_EQ(s.history[0].outcome, "failed");
  }
}

TEST(Campaign, PersistentFailureQuarantinesButCampaignSucceeds) {
  const std::string dir = fresh_dir("campaign_quarantine");
  DiagnosticSink sink;
  CampaignSupervisor sup(
      fast_options(dir, 1, 2),
      sh_worker("if [ \"$SHARD_ID\" = L4_f1 ]; then exit 9; fi; "
                "touch \"$SHARD_DIR/done\""),
      marker_validator, sink);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok()) << "quarantine must not fail the campaign";
  EXPECT_FALSE(out->complete);
  EXPECT_EQ(out->shards_ok, 1);
  EXPECT_EQ(out->shards_quarantined, 1);
  const ShardState* bad = find_shard(*out, "L4_f1");
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->status, ShardStatus::kQuarantined);
  EXPECT_EQ(bad->attempts, 3);
  ASSERT_EQ(bad->history.size(), 3u);
  // A layer with a quarantined fold must not publish a digest.
  EXPECT_EQ(out->layer_digests.count(4), 0u);
  EXPECT_EQ(out->campaign_digest, 0u);
}

TEST(Campaign, UsageErrorQuarantinesImmediately) {
  const std::string dir = fresh_dir("campaign_usage");
  DiagnosticSink sink;
  CampaignSupervisor sup(fast_options(dir, 1, 1), sh_worker("exit 2"),
                         marker_validator, sink);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok());
  const ShardState& s = out->shards.at(0);
  EXPECT_EQ(s.status, ShardStatus::kQuarantined);
  EXPECT_EQ(s.attempts, 1) << "usage errors are deterministic: no retry";
  ASSERT_EQ(s.history.size(), 1u);
  EXPECT_EQ(s.history[0].outcome, "usage_error");
}

TEST(Campaign, CrashedWorkerIsRetried) {
  const std::string dir = fresh_dir("campaign_crash");
  DiagnosticSink sink;
  CampaignSupervisor sup(
      fast_options(dir, 1, 1),
      sh_worker("if [ \"$ATTEMPT\" = 1 ]; then kill -9 $$; fi; "
                "touch \"$SHARD_DIR/done\""),
      marker_validator, sink);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok());
  const ShardState& s = out->shards.at(0);
  EXPECT_EQ(s.status, ShardStatus::kOk);
  EXPECT_EQ(s.history.at(0).outcome, "crashed");
}

TEST(Campaign, HungWorkerIsKilledAtTheDeadlineAndRetried) {
  const std::string dir = fresh_dir("campaign_timeout");
  DiagnosticSink sink;
  CampaignOptions opt = fast_options(dir, 1, 1);
  opt.shard_timeout_s = 0.2;
  CampaignSupervisor sup(
      opt,
      sh_worker("if [ \"$ATTEMPT\" = 1 ]; then sleep 30; fi; "
                "touch \"$SHARD_DIR/done\""),
      marker_validator, sink);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok());
  const ShardState& s = out->shards.at(0);
  EXPECT_EQ(s.status, ShardStatus::kOk);
  EXPECT_EQ(s.history.at(0).outcome, "timeout");
}

TEST(Campaign, CorruptOutputIsASupervisorVerdict) {
  const std::string dir = fresh_dir("campaign_corrupt");
  DiagnosticSink sink;
  // The worker always exits 0; only on attempt >= 2 does it write the
  // artifact the validator demands. Attempt 1 is a liar.
  CampaignSupervisor sup(
      fast_options(dir, 1, 1),
      sh_worker("if [ \"$ATTEMPT\" != 1 ]; then touch \"$SHARD_DIR/done\"; "
                "fi; exit 0"),
      marker_validator, sink);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok());
  const ShardState& s = out->shards.at(0);
  EXPECT_EQ(s.status, ShardStatus::kOk);
  ASSERT_GE(s.history.size(), 1u);
  EXPECT_EQ(s.history[0].outcome, "corrupt_output");
  EXPECT_NE(s.history[0].detail.find("done marker missing"),
            std::string::npos);
}

TEST(Campaign, ResumeSkipsValidatedShardsAndResetsQuarantine) {
  const std::string dir = fresh_dir("campaign_resume");
  DiagnosticSink sink;
  {
    CampaignSupervisor sup(
        fast_options(dir, 1, 2),
        sh_worker("if [ \"$SHARD_ID\" = L4_f1 ]; then exit 9; fi; "
                  "touch \"$SHARD_DIR/done\""),
        marker_validator, sink);
    auto first = sup.run(nullptr);
    ASSERT_TRUE(first.ok());
    ASSERT_EQ(first->shards_quarantined, 1);
  }
  // Resume with a worker that now succeeds everywhere. L4_f0 must not
  // rerun (its marker is deleted, so a rerun would quarantine it), and
  // the previously quarantined L4_f1 must get a fresh attempt budget.
  fs::remove(CampaignSupervisor::shard_dir(dir, {4, 0}) + "/done");
  CampaignOptions opt = fast_options(dir, 1, 2);
  opt.resume = true;
  DiagnosticSink sink2;
  CampaignSupervisor sup(
      opt,
      sh_worker("if [ \"$SHARD_ID\" = L4_f0 ]; then exit 9; fi; "
                "touch \"$SHARD_DIR/done\""),
      [](const ShardSpec& spec, const std::string& shard_dir)
          -> StatusOr<std::uint64_t> {
        // Model "L4_f0's artifacts are intact" despite the deleted
        // marker: re-validation passes, so it must not be rerun.
        if (spec.id() == "L4_f0") return std::uint64_t{0xAAAA};
        return marker_validator(spec, shard_dir);
      },
      sink2);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_TRUE(out->complete);
  EXPECT_EQ(out->shards_ok, 2);
  const ShardState* f1 = find_shard(*out, "L4_f1");
  ASSERT_NE(f1, nullptr);
  EXPECT_EQ(f1->status, ShardStatus::kOk);
}

TEST(Campaign, ResumeRevalidationDemotesARottedOkShard) {
  const std::string dir = fresh_dir("campaign_rot");
  DiagnosticSink sink;
  {
    CampaignSupervisor sup(fast_options(dir, 1, 1),
                           sh_worker("touch \"$SHARD_DIR/done\""),
                           marker_validator, sink);
    ASSERT_TRUE(sup.run(nullptr).ok());
  }
  // Rot the artifact behind campaign.json's back, then resume.
  fs::remove(CampaignSupervisor::shard_dir(dir, {4, 0}) + "/done");
  CampaignOptions opt = fast_options(dir, 1, 1);
  opt.resume = true;
  DiagnosticSink sink2;
  CampaignSupervisor sup(opt, sh_worker("touch \"$SHARD_DIR/done\""),
                         marker_validator, sink2);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->complete) << "the demoted shard must be recomputed";
  EXPECT_EQ(out->shards.at(0).status, ShardStatus::kOk);
  bool noted = false;
  for (const auto& d : sink2.diagnostics()) {
    if (d.code == "campaign.revalidate_failed") noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST(Campaign, SecondSupervisorFailsFastOnTheCampaignLock) {
  const std::string dir = fresh_dir("campaign_lock");
  DiagnosticSink sink;
  auto lock = repro::common::FileLock::acquire(dir + "/campaign.lock",
                                               "other-supervisor", sink);
  ASSERT_TRUE(lock.ok());
  CampaignSupervisor sup(fast_options(dir, 1, 1),
                         sh_worker("touch \"$SHARD_DIR/done\""),
                         marker_validator, sink);
  auto out = sup.run(nullptr);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(out.status().message().find("other-supervisor"),
            std::string::npos);
}

TEST(Campaign, PreCancelledTokenLeavesShardsPending) {
  const std::string dir = fresh_dir("campaign_cancel");
  DiagnosticSink sink;
  CancelToken cancel;
  cancel.request_cancel();
  CampaignSupervisor sup(fast_options(dir, 1, 2),
                         sh_worker("touch \"$SHARD_DIR/done\""),
                         marker_validator, sink);
  auto out = sup.run(&cancel);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->cancelled);
  EXPECT_FALSE(out->complete);
  for (const auto& s : out->shards) {
    EXPECT_EQ(s.status, ShardStatus::kPending);
  }
}

TEST(Campaign, ObsCountersAccountForEveryShard) {
  const std::string dir = fresh_dir("campaign_counters");
  repro::common::obs::set_enabled(true);
  repro::common::obs::reset_metrics();
  DiagnosticSink sink;
  // 3 shards: f0 ok immediately, f1 ok after one retry, f2 quarantined.
  CampaignSupervisor sup(
      fast_options(dir, 1, 3),
      sh_worker("case \"$SHARD_ID\" in "
                "L4_f0) touch \"$SHARD_DIR/done\";; "
                "L4_f1) if [ \"$ATTEMPT\" = 1 ]; then exit 9; fi; "
                "touch \"$SHARD_DIR/done\";; "
                "*) exit 9;; esac"),
      marker_validator, sink);
  auto out = sup.run(nullptr);
  repro::common::obs::set_enabled(false);
  ASSERT_TRUE(out.ok());
  const auto metrics = repro::common::obs::snapshot_metrics();
  auto value = [&](const std::string& name) -> std::uint64_t {
    for (const auto& m : metrics) {
      if (m.name == name) return m.count;
    }
    return 0;
  };
  EXPECT_EQ(value("campaign.shards_ok"), 2u);
  EXPECT_EQ(value("campaign.shards_quarantined"), 1u);
  // f1 retried once; f2 burned max_attempts, i.e. 2 retries after the
  // first attempt.
  EXPECT_EQ(value("campaign.shards_retried"), 3u);
  EXPECT_GT(value("campaign.retry_backoff_ms"), 0u);
  EXPECT_EQ(value("campaign.shards_ok") + value("campaign.shards_quarantined"),
            out->shards.size());
  repro::common::obs::reset_metrics();
}

// --- cross-process telemetry ------------------------------------------------

/// Shell fragment that appends one telemetry record. The supervisor
/// only needs kind/seq (parse contract) plus pid/progress (the advance
/// rule) — everything else defaults.
std::string telemetry_line(int seq, int pid, int progress,
                           const std::string& phase) {
  return "printf '%s\\n' '{\"kind\": \"heartbeat\", \"seq\": " +
         std::to_string(seq) + ", \"pid\": " + std::to_string(pid) +
         ", \"progress\": " + std::to_string(progress) + ", \"phase\": \"" +
         phase + "\"}' >> \"$SHARD_DIR/telemetry.jsonl\"; ";
}

TEST(CampaignTelemetry, StallKillDistinguishesHungFromSlowAndRetries) {
  const std::string dir = fresh_dir("campaign_stall_kill");
  DiagnosticSink sink;
  CampaignOptions opt = fast_options(dir, 1, 1);
  opt.shard_timeout_s = 60;  // the hard timeout must NOT be what fires
  opt.heartbeat_s = 0.05;    // enables the telemetry layer
  opt.stall_after_s = 0.4;
  opt.stall_kill = true;
  // Attempt 1 plays a hung worker: heartbeats keep arriving but
  // progress is frozen, then it sleeps far past the stall threshold.
  // Attempt 2 succeeds, proving "stalled" settled as retryable.
  CampaignSupervisor sup(
      opt,
      sh_worker("if [ \"$ATTEMPT\" = 1 ]; then " +
                telemetry_line(0, 100, 5, "train") +
                telemetry_line(1, 100, 5, "train") +
                "sleep 30; else touch \"$SHARD_DIR/done\"; fi"),
      marker_validator, sink);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_TRUE(out->complete);
  const ShardState* st = find_shard(*out, "L4_f0");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->status, ShardStatus::kOk);
  EXPECT_TRUE(st->stalled);
  ASSERT_GE(st->history.size(), 1u);
  EXPECT_EQ(st->history[0].outcome, "stalled");
  EXPECT_EQ(out->stalled_shards, (std::vector<std::string>{"L4_f0"}));
  EXPECT_GE(out->retries, 1);
  // The telemetry layer also leaves the final status document behind.
  EXPECT_TRUE(fs::exists(dir + "/campaign_status.json"));
}

TEST(CampaignTelemetry, DetectOnlyStallFlagsButLetsTheWorkerFinish) {
  const std::string dir = fresh_dir("campaign_stall_detect");
  DiagnosticSink sink;
  CampaignOptions opt = fast_options(dir, 1, 1);
  opt.shard_timeout_s = 60;
  opt.heartbeat_s = 0.05;
  opt.stall_after_s = 0.3;  // stall_kill stays false: detect-only
  CampaignSupervisor sup(
      opt,
      sh_worker(telemetry_line(0, 100, 5, "score") +
                "sleep 1; touch \"$SHARD_DIR/done\""),
      marker_validator, sink);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_TRUE(out->complete);
  const ShardState* st = find_shard(*out, "L4_f0");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->status, ShardStatus::kOk);  // finished despite the flag
  EXPECT_TRUE(st->stalled);
  EXPECT_TRUE(st->history.empty());  // no attempt was failed for it
  EXPECT_EQ(out->stalled_shards, (std::vector<std::string>{"L4_f0"}));
}

TEST(CampaignTelemetry, QuarantinedShardEmbedsItsLastTelemetryRecord) {
  const std::string dir = fresh_dir("campaign_telemetry_death");
  DiagnosticSink sink;
  CampaignOptions opt = fast_options(dir, 1, 1);
  opt.max_attempts = 1;
  opt.heartbeat_s = 0.05;
  CampaignSupervisor sup(
      opt,
      sh_worker(telemetry_line(0, 100, 7, "train") + "exit 9"),
      marker_validator, sink);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  const ShardState* st = find_shard(*out, "L4_f0");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->status, ShardStatus::kQuarantined);
  // The phase/progress at death travelled through the tail into the
  // shard state (and from there into campaign.json and the report).
  ASSERT_TRUE(st->has_telemetry);
  EXPECT_EQ(st->last_telemetry.phase, "train");
  EXPECT_EQ(st->last_telemetry.progress, 7u);
  std::ifstream f(CampaignSupervisor::state_path(dir));
  const std::string state((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
  EXPECT_NE(state.find("last_telemetry"), std::string::npos);
  EXPECT_NE(state.find("\"phase\": \"train\""), std::string::npos);
}

TEST(CampaignTelemetry, HeartbeatZeroKeepsTheLayerOff) {
  const std::string dir = fresh_dir("campaign_no_telemetry");
  DiagnosticSink sink;
  CampaignSupervisor sup(fast_options(dir, 1, 1),  // heartbeat_s = 0
                         sh_worker("touch \"$SHARD_DIR/done\""),
                         marker_validator, sink);
  auto out = sup.run(nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->complete);
  EXPECT_FALSE(fs::exists(dir + "/campaign_status.json"));
  EXPECT_TRUE(out->rollup_json.empty());
}

// --- retry backoff jitter (satellite b) ---------------------------------
//
// Before jitter, a batch of shards failing together (one dead machine,
// one bad artifact store) all requeued with identical min(base*2^(n-1),
// max) delays and woke in lockstep, hammering whatever they were
// waiting on. The jittered schedule scales each delay into
// [0.5*step, step] by a hash of (seed, shard id, attempt) — spread out,
// yet fully reproducible.

TEST(CampaignBackoff, JitterIsDeterministicPerSeedShardAndAttempt) {
  CampaignOptions opt;
  opt.backoff_base_ms = 100;
  opt.backoff_max_ms = 800;
  opt.backoff_jitter_seed = 42;
  ShardSpec spec{8, 3};
  for (int attempt = 1; attempt <= 5; ++attempt) {
    EXPECT_EQ(repro::core::retry_backoff_ms(opt, spec, attempt),
              repro::core::retry_backoff_ms(opt, spec, attempt));
  }
}

TEST(CampaignBackoff, JitterStaysInsideTheExponentialEnvelope) {
  CampaignOptions opt;
  opt.backoff_base_ms = 100;
  opt.backoff_max_ms = 800;
  opt.backoff_jitter_seed = 7;
  ShardSpec spec{6, 0};
  for (int attempt = 1; attempt <= 7; ++attempt) {
    const double step =
        std::min(100.0 * (1 << (attempt - 1)), opt.backoff_max_ms);
    const double d = repro::core::retry_backoff_ms(opt, spec, attempt);
    EXPECT_GE(d, 0.5 * step) << "attempt " << attempt;
    EXPECT_LE(d, step) << "attempt " << attempt;
  }
  // The cap holds even deep into the schedule.
  EXPECT_LE(repro::core::retry_backoff_ms(opt, spec, 30),
            opt.backoff_max_ms);
}

TEST(CampaignBackoff, ShardsFailingTogetherDoNotWakeInLockstep) {
  CampaignOptions opt;
  opt.backoff_base_ms = 100;
  opt.backoff_max_ms = 800;
  opt.backoff_jitter_seed = 1;
  // Same attempt across many shards: the delays must not collapse to
  // one value (that is the pre-jitter thundering herd).
  std::vector<double> delays;
  for (int layer : {4, 6, 8}) {
    for (std::int64_t fold = 0; fold < 4; ++fold) {
      delays.push_back(
          repro::core::retry_backoff_ms(opt, ShardSpec{layer, fold}, 2));
    }
  }
  std::sort(delays.begin(), delays.end());
  EXPECT_NE(delays.front(), delays.back());
  // A different campaign seed reshuffles every delay stream.
  CampaignOptions other = opt;
  other.backoff_jitter_seed = 2;
  EXPECT_NE(repro::core::retry_backoff_ms(opt, ShardSpec{4, 0}, 2),
            repro::core::retry_backoff_ms(other, ShardSpec{4, 0}, 2));
}

}  // namespace

#include <gtest/gtest.h>

#include <stdexcept>

#include "tech/tech.hpp"

namespace repro::tech {
namespace {

TEST(Tech, DefaultStackShape) {
  const Technology t = Technology::make_default();
  EXPECT_EQ(t.num_metal_layers(), 9);
  EXPECT_EQ(t.num_via_layers(), 8);
  EXPECT_EQ(t.metal(1).name, "M1");
  EXPECT_EQ(t.metal(9).name, "M9");
  EXPECT_EQ(t.via(8).name, "V8");
}

TEST(Tech, AlternatingDirectionsTopHorizontal) {
  const Technology t = Technology::make_default();
  for (int i = 1; i <= 9; ++i) {
    const Direction want =
        (i % 2 == 1) ? Direction::kHorizontal : Direction::kVertical;
    EXPECT_EQ(t.metal(i).preferred, want) << "M" << i;
  }
  EXPECT_EQ(t.top_metal_direction(), Direction::kHorizontal);
}

TEST(Tech, WireWidthSpreadIsFourX) {
  const Technology t = Technology::make_default();
  int min_w = 1000, max_w = 0;
  for (int i = 1; i <= 9; ++i) {
    min_w = std::min(min_w, t.metal(i).width_mult);
    max_w = std::max(max_w, t.metal(i).width_mult);
  }
  EXPECT_EQ(min_w, 1);
  EXPECT_EQ(max_w, 4);
}

TEST(Tech, CapacityDecreasesUpTheStack) {
  const Technology t = Technology::make_default();
  // M1 is closed to global routing; capacity shrinks with wire width above.
  EXPECT_EQ(t.metal(1).capacity, 0);
  EXPECT_GT(t.metal(2).capacity, t.metal(5).capacity);
  EXPECT_GT(t.metal(5).capacity, t.metal(9).capacity);
}

TEST(Tech, TopViaLayerPredicate) {
  const Technology t = Technology::make_default();
  EXPECT_TRUE(t.is_top_via_layer(8));
  EXPECT_FALSE(t.is_top_via_layer(6));
  EXPECT_FALSE(t.is_top_via_layer(4));
}

TEST(Tech, DirectionStringRoundTrip) {
  EXPECT_EQ(direction_from_string(to_string(Direction::kHorizontal)),
            Direction::kHorizontal);
  EXPECT_EQ(direction_from_string(to_string(Direction::kVertical)),
            Direction::kVertical);
  EXPECT_THROW(direction_from_string("DIAGONAL"), std::invalid_argument);
}

TEST(Tech, GcellSizeConfigurable) {
  const Technology t = Technology::make_default(1234);
  EXPECT_EQ(t.gcell_size(), 1234);
}

}  // namespace
}  // namespace repro::tech

#include <gtest/gtest.h>

#include <memory>

#include "splitmfg/split.hpp"
#include "synth/synth.hpp"

namespace repro::splitmfg {
namespace {

using netlist::CellId;
using netlist::Library;
using netlist::Net;
using netlist::Netlist;

std::shared_ptr<const Library> lib() {
  static auto l = std::make_shared<const Library>(Library::make_default());
  return l;
}

/// Hand-built design: one 2-pin net routed with an L on the top pair
/// (M9 horizontal run, M8 vertical run), plus an anchor cell to size the
/// die. GCell size 800.
struct HandDesign {
  std::unique_ptr<Netlist> nl;
  route::RouteDB db;
};

HandDesign make_l_shape_design() {
  HandDesign d;
  d.nl = std::make_unique<Netlist>(lib(), "hand");
  const int inv = *lib()->find("INV_X1");
  const int nand = *lib()->find("NAND2_X1");
  // Driver at gcell (0,0), load at gcell (20, 10), anchor stretches die.
  const CellId a = d.nl->add_cell("a", inv, {100, 100});
  const CellId b = d.nl->add_cell("b", nand, {16100, 8100});
  d.nl->add_cell("anchor", inv, {31000, 31000});
  Net net;
  net.name = "n0";
  net.pins = {{a, 1}, {b, 0}};
  net.driver = 0;
  d.nl->add_net(net);

  d.db.grid = route::GridGeometry(d.nl->bounding_box(), 800);
  route::NetRoute nr;
  nr.net = 0;
  // Horizontal on M9 from (0,0) to (20,0); vertical on M8 from (20,0) to
  // (20,10); bend via V8 at (20,0); pin stacks V1..V8 at (0,0) and V1..V7
  // at (20,10).
  nr.wires.push_back(route::WireSeg{9, {0, 0}, {20, 0}});
  nr.wires.push_back(route::WireSeg{8, {20, 0}, {20, 10}});
  for (int vl = 1; vl <= 8; ++vl) {
    nr.vias.push_back(route::Via{vl, {0, 0}});
  }
  nr.vias.push_back(route::Via{8, {20, 0}});
  for (int vl = 1; vl <= 7; ++vl) {
    nr.vias.push_back(route::Via{vl, {20, 10}});
  }
  nr.pin_access.push_back(route::PinAccess{{0, 1}, {0, 0}, 9});
  nr.pin_access.push_back(route::PinAccess{{1, 0}, {20, 10}, 8});
  d.db.routes.push_back(nr);
  // The anchor cell's unrouted "net" does not exist; routes align 1:1 with
  // nets, so nothing else to add.
  return d;
}

TEST(Split, LShapeAtTopViaLayer) {
  const HandDesign d = make_l_shape_design();
  const SplitChallenge ch = make_challenge(*d.nl, d.db, 8);

  // Two v-pins: the driver-side stack at (0,0) and the bend at (20,0).
  ASSERT_EQ(ch.num_vpins(), 2);
  EXPECT_EQ(ch.num_matching_pairs(), 1);
  EXPECT_TRUE(ch.is_match(0, 1));

  const Vpin* stack = &ch.vpin(0);
  const Vpin* bend = &ch.vpin(1);
  if (stack->gcell.x != 0) std::swap(stack, bend);
  ASSERT_EQ(stack->gcell.x, 0);
  EXPECT_EQ(bend->gcell.x, 20);
  // Both v-pins sit on the same row: DiffVpinY = 0 (M9 is horizontal).
  EXPECT_EQ(stack->pos.y, bend->pos.y);

  // Driver side: stack connects the INV output -> OutArea = INV area,
  // wirelength 0 (pure via stack).
  EXPECT_DOUBLE_EQ(stack->out_area,
                   static_cast<double>(lib()->cell(*lib()->find("INV_X1")).area()));
  EXPECT_DOUBLE_EQ(stack->in_area, 0.0);
  EXPECT_DOUBLE_EQ(stack->wirelength, 0.0);
  EXPECT_TRUE(stack->drives());

  // Load side: the M8 run (10 gcells) belongs below the split.
  EXPECT_DOUBLE_EQ(bend->in_area,
                   static_cast<double>(lib()->cell(*lib()->find("NAND2_X1")).area()));
  EXPECT_DOUBLE_EQ(bend->out_area, 0.0);
  EXPECT_DOUBLE_EQ(bend->wirelength, 10.0 * 800.0);
  EXPECT_FALSE(bend->drives());

  // Pin locations: averages of actual pin positions below each fragment.
  EXPECT_EQ(stack->pin_loc, d.nl->pin_position({0, 1}));
  EXPECT_EQ(bend->pin_loc, d.nl->pin_position({1, 0}));
}

TEST(Split, LowerSplitCutsTheSameNetDifferently) {
  const HandDesign d = make_l_shape_design();
  // At split 6 the same net yields v-pins at both pin stacks (everything
  // on M8/M9 is hidden).
  const SplitChallenge ch = make_challenge(*d.nl, d.db, 6);
  ASSERT_EQ(ch.num_vpins(), 2);
  EXPECT_EQ(ch.num_matching_pairs(), 1);
  // The two v-pins are at the pin gcells now.
  std::set<std::pair<int, int>> at;
  for (const Vpin& v : ch.vpins) at.insert({v.gcell.x, v.gcell.y});
  EXPECT_TRUE(at.count({0, 0}));
  EXPECT_TRUE(at.count({20, 10}));
  // And they are NOT on the same row (the hidden part bends).
  EXPECT_NE(ch.vpin(0).pos.y, ch.vpin(1).pos.y);
}

TEST(Split, NetsBelowSplitProduceNoVpins) {
  const HandDesign d = make_l_shape_design();
  // Split above the highest used layer of a low route: route everything on
  // M2/M3 instead.
  HandDesign low;
  low.nl = std::make_unique<Netlist>(lib(), "low");
  const int inv = *lib()->find("INV_X1");
  const CellId a = low.nl->add_cell("a", inv, {100, 100});
  const CellId b = low.nl->add_cell("b", inv, {4100, 100});
  low.nl->add_cell("anchor", inv, {31000, 31000});
  Net net;
  net.name = "n0";
  net.pins = {{a, 1}, {b, 0}};
  net.driver = 0;
  low.nl->add_net(net);
  low.db.grid = route::GridGeometry(low.nl->bounding_box(), 800);
  route::NetRoute nr;
  nr.net = 0;
  nr.wires.push_back(route::WireSeg{3, {0, 0}, {5, 0}});
  for (int vl = 1; vl <= 2; ++vl) {
    nr.vias.push_back(route::Via{vl, {0, 0}});
    nr.vias.push_back(route::Via{vl, {5, 0}});
  }
  nr.pin_access.push_back(route::PinAccess{{0, 1}, {0, 0}, 3});
  nr.pin_access.push_back(route::PinAccess{{1, 0}, {5, 0}, 3});
  low.db.routes.push_back(nr);

  for (int layer : {4, 6, 8}) {
    const SplitChallenge ch = make_challenge(*low.nl, low.db, layer);
    EXPECT_EQ(ch.num_vpins(), 0) << "split " << layer;
  }
  (void)d;
}

TEST(Split, PinlessFragmentBecomesVpinWithFragmentFeatures) {
  // HVH on the top pair: M9 run, M8 middle leg, M9 run. The middle leg is
  // pinless below split 8 but must still yield v-pins (with zero cell
  // areas) matched to its two neighbours through the M9 runs.
  HandDesign d;
  d.nl = std::make_unique<Netlist>(lib(), "hvh");
  const int inv = *lib()->find("INV_X1");
  const CellId a = d.nl->add_cell("a", inv, {100, 100});       // (0,0)
  const CellId b = d.nl->add_cell("b", inv, {24100, 8100});    // (30,10)
  d.nl->add_cell("anchor", inv, {31000, 31000});
  Net net;
  net.name = "n0";
  net.pins = {{a, 1}, {b, 0}};
  net.driver = 0;
  d.nl->add_net(net);
  d.db.grid = route::GridGeometry(d.nl->bounding_box(), 800);
  route::NetRoute nr;
  nr.net = 0;
  nr.wires.push_back(route::WireSeg{9, {0, 0}, {15, 0}});
  nr.wires.push_back(route::WireSeg{8, {15, 0}, {15, 10}});
  nr.wires.push_back(route::WireSeg{9, {15, 10}, {30, 10}});
  for (int vl = 1; vl <= 8; ++vl) nr.vias.push_back(route::Via{vl, {0, 0}});
  nr.vias.push_back(route::Via{8, {15, 0}});
  nr.vias.push_back(route::Via{8, {15, 10}});
  for (int vl = 1; vl <= 8; ++vl) nr.vias.push_back(route::Via{vl, {30, 10}});
  nr.pin_access.push_back(route::PinAccess{{0, 1}, {0, 0}, 9});
  nr.pin_access.push_back(route::PinAccess{{1, 0}, {30, 10}, 9});
  d.db.routes.push_back(nr);

  const SplitChallenge ch = make_challenge(*d.nl, d.db, 8);
  ASSERT_EQ(ch.num_vpins(), 4);
  EXPECT_EQ(ch.num_matching_pairs(), 2);
  int pinless = 0;
  for (const Vpin& v : ch.vpins) {
    if (v.in_area == 0 && v.out_area == 0) {
      ++pinless;
      // Fragment features: wirelength of the M8 leg, centroid pin_loc.
      EXPECT_DOUBLE_EQ(v.wirelength, 10 * 800.0);
      ASSERT_EQ(v.matches.size(), 1u);
      // Matched through a single M9 run: same row as its partner.
      EXPECT_EQ(v.pos.y, ch.vpin(v.matches[0]).pos.y);
    }
  }
  EXPECT_EQ(pinless, 2);
}

TEST(Split, EndToEndOnSynthDesign) {
  synth::SynthParams params = synth::preset("sb18");
  params.num_cells = 1500;
  params.name = "mini";
  const synth::SynthDesign d = synth::generate(params);
  for (int layer : {4, 6, 8}) {
    const SplitChallenge ch = make_challenge(*d.netlist, d.routes, layer);
    ASSERT_GT(ch.num_vpins(), 0) << "split " << layer;
    int with_match = 0;
    for (const Vpin& v : ch.vpins) {
      with_match += !v.matches.empty();
      for (VpinId m : v.matches) {
        EXPECT_TRUE(ch.is_match(m, v.id)) << "asymmetric ground truth";
        EXPECT_NE(m, v.id);
      }
      EXPECT_GE(v.wirelength, 0.0);
      EXPECT_GE(v.rc, 0.0);
      EXPECT_GE(v.pc, 0.0);
      EXPECT_TRUE(ch.die.contains(v.pos));
    }
    // Essentially every v-pin has ground truth (self-loops through the
    // BEOL, which would leave a v-pin matchless, are pathological).
    EXPECT_GE(with_match, 0.99 * ch.num_vpins()) << "split " << layer;
    // At the top via layer every match is on one row (horizontal M9).
    if (layer == 8) {
      for (const Vpin& v : ch.vpins) {
        for (VpinId m : v.matches) {
          EXPECT_EQ(v.pos.y, ch.vpin(m).pos.y);
        }
      }
    }
  }
}

TEST(Split, RejectsBadSplitLayer) {
  const HandDesign d = make_l_shape_design();
  EXPECT_THROW(make_challenge(*d.nl, d.db, 0), std::invalid_argument);
  EXPECT_THROW(make_challenge(*d.nl, d.db, 9), std::invalid_argument);
}

}  // namespace
}  // namespace repro::splitmfg

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>

#include "place/placement.hpp"

namespace repro::place {
namespace {

using netlist::CellId;
using netlist::Library;
using netlist::Netlist;

std::shared_ptr<const Library> lib() {
  static auto l = std::make_shared<const Library>(Library::make_default());
  return l;
}

TEST(Floorplan, RowSiteGeometry) {
  Floorplan fp;
  fp.die = geom::Rect(0, 0, 10000, 4000);
  EXPECT_EQ(fp.num_rows(), 10);       // 4000 / 400
  EXPECT_EQ(fp.sites_per_row(), 100); // 10000 / 100
  EXPECT_EQ(fp.site_origin(2, 3).x, 300);
  EXPECT_EQ(fp.site_origin(2, 3).y, 800);
  EXPECT_EQ(fp.row_of(850), 2);
  EXPECT_EQ(fp.site_of(399), 3);
  // Clamping at the boundaries.
  EXPECT_EQ(fp.row_of(-50), 0);
  EXPECT_EQ(fp.row_of(99999), 9);
}

TEST(Legalize, ProducesNonOverlappingSiteAlignedPlacement) {
  Netlist nl(lib(), "t");
  std::mt19937_64 rng(7);
  const int inv = *lib()->find("INV_X1");
  const int nand = *lib()->find("NAND2_X1");
  Floorplan fp;
  fp.die = geom::Rect(0, 0, 20000, 8000);
  std::uniform_int_distribution<geom::Dbu> ux(0, 19999), uy(0, 7999);
  for (int i = 0; i < 200; ++i) {
    nl.add_cell("c" + std::to_string(i), i % 2 ? inv : nand,
                {ux(rng), uy(rng)});
  }
  legalize(nl, fp);

  // Every cell aligned to a site and inside the die; no two cells overlap.
  std::map<int, std::vector<std::pair<geom::Dbu, geom::Dbu>>> by_row;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const auto& inst = nl.cell(c);
    const auto& lc = nl.lib_cell_of(c);
    EXPECT_EQ(inst.origin.x % fp.site_width, 0);
    EXPECT_EQ(inst.origin.y % fp.row_height, 0);
    EXPECT_GE(inst.origin.x, fp.die.lo.x);
    EXPECT_LE(inst.origin.x + lc.width, fp.die.hi.x);
    by_row[static_cast<int>(inst.origin.y / fp.row_height)].emplace_back(
        inst.origin.x, inst.origin.x + lc.width);
  }
  for (auto& [row, spans] : by_row) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_LE(spans[i - 1].second, spans[i].first)
          << "overlap in row " << row;
    }
  }
}

TEST(Legalize, KeepsCellsOffMacros) {
  Netlist nl(lib(), "t");
  const int macro = *lib()->find("MACRO_MUL");  // 12000 x 12000
  const int inv = *lib()->find("INV_X1");
  Floorplan fp;
  fp.die = geom::Rect(0, 0, 24000, 16000);
  nl.add_cell("m", macro, {0, 0});
  for (int i = 0; i < 100; ++i) {
    nl.add_cell("c" + std::to_string(i), inv, {100, 100});  // all on macro
  }
  legalize(nl, fp);
  const geom::Rect mrect(0, 0, 12000, 12000);
  for (CellId c = 1; c < nl.num_cells(); ++c) {
    const auto& inst = nl.cell(c);
    const auto& lc = nl.lib_cell_of(c);
    const geom::Rect r(inst.origin,
                       {inst.origin.x + lc.width, inst.origin.y + lc.height});
    // Closed rects share boundaries; require no interior overlap.
    const bool interior_overlap = r.lo.x < mrect.hi.x && mrect.lo.x < r.hi.x &&
                                  r.lo.y < mrect.hi.y && mrect.lo.y < r.hi.y;
    EXPECT_FALSE(interior_overlap) << "cell " << c;
  }
}

TEST(Legalize, ThrowsWhenDesignCannotFit) {
  Netlist nl(lib(), "t");
  const int dff = *lib()->find("DFF_X1");  // width 1200 = 12 sites
  Floorplan fp;
  fp.die = geom::Rect(0, 0, 2000, 800);  // 2 rows x 20 sites = 40 sites
  for (int i = 0; i < 8; ++i) {          // needs 96 sites
    nl.add_cell("c" + std::to_string(i), dff, {0, 0});
  }
  EXPECT_THROW(legalize(nl, fp), std::runtime_error);
}

TEST(PinDensityMap, CountsPinsAndNormalizes) {
  Netlist nl(lib(), "t");
  const int inv = *lib()->find("INV_X1");  // 2 pins
  const geom::Rect die(0, 0, 4000, 4000);
  nl.add_cell("a", inv, {0, 0});
  nl.add_cell("b", inv, {100, 0});
  const PinDensityMap m(nl, die, 1000);
  EXPECT_EQ(m.nx(), 4);
  EXPECT_EQ(m.ny(), 4);
  // All 4 pins are in bin (0, 0).
  EXPECT_EQ(m.pins_in_bin(0, 0), 4);
  EXPECT_EQ(m.pins_in_bin(3, 3), 0);
  // Density around the corner (r=1 covers 2x2 bins of 1000x1000 each).
  const double d = m.density_around({10, 10}, 1);
  EXPECT_NEAR(d, 4.0 / 4.0, 1e-9);  // 4 pins per 4 Mdbu^2
  EXPECT_EQ(m.density_around({3900, 3900}, 1), 0.0);
}

TEST(PinDensityMap, RejectsBadBinSize) {
  Netlist nl(lib(), "t");
  EXPECT_THROW(PinDensityMap(nl, geom::Rect(0, 0, 100, 100), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace repro::place

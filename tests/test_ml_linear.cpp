#include <gtest/gtest.h>

#include <random>

#include "ml/linear.hpp"

namespace repro::ml {
namespace {

TEST(LinearRegression, RecoversExactLinearModel) {
  // y = 3 + 2 x0 - 5 x1.
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> u(-10.0, 10.0);
  for (int i = 0; i < 200; ++i) {
    const double x0 = u(rng), x1 = u(rng);
    xs.push_back({x0, x1});
    ys.push_back(3.0 + 2.0 * x0 - 5.0 * x1);
  }
  const auto lr = LinearRegression::fit(xs, ys);
  EXPECT_NEAR(lr.weights()[0], 3.0, 1e-6);
  EXPECT_NEAR(lr.weights()[1], 2.0, 1e-6);
  EXPECT_NEAR(lr.weights()[2], -5.0, 1e-6);
  EXPECT_NEAR(lr.predict(std::vector<double>{1.0, 1.0}), 0.0, 1e-6);
}

TEST(LinearRegression, HandlesNoise) {
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::normal_distribution<double> noise(0.0, 0.01);
  for (int i = 0; i < 2000; ++i) {
    const double x = u(rng);
    xs.push_back({x});
    ys.push_back(7.0 * x + noise(rng));
  }
  const auto lr = LinearRegression::fit(xs, ys);
  EXPECT_NEAR(lr.weights()[1], 7.0, 0.05);
}

TEST(LinearRegression, SurvivesDegenerateFeature) {
  // Constant column: singular normal equations, ridge keeps it finite.
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back({1.0, static_cast<double>(i)});
    ys.push_back(2.0 * i);
  }
  const auto lr = LinearRegression::fit(xs, ys, 1e-6);
  EXPECT_NEAR(lr.predict(std::vector<double>{1.0, 10.0}), 20.0, 0.1);
}

TEST(LinearRegression, RejectsBadShapes) {
  EXPECT_THROW(LinearRegression::fit({}, std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(
      LinearRegression::fit({{1.0}}, std::vector<double>{1.0, 2.0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace repro::ml

#include <gtest/gtest.h>

#include "core/two_level.hpp"
#include "test_helpers.hpp"

namespace repro::core {
namespace {

class TwoLevel : public ::testing::Test {
 protected:
  void SetUp() override {
    for (std::uint64_t s = 1; s <= 3; ++s) {
      challenges_.push_back(
          testing::make_grid_challenge(100, 100000, 8000, s));
    }
  }
  std::vector<splitmfg::SplitChallenge> challenges_;
};

TEST_F(TwoLevel, PrunedLocIsSubsetOfLevel1Loc) {
  std::vector<const splitmfg::SplitChallenge*> training{&challenges_[1],
                                                        &challenges_[2]};
  const AttackConfig cfg = config_from_name("Imp-11");
  const TwoLevelResult res =
      two_level_attack(challenges_[0], training, cfg);

  // Level-2 only re-classifies pairs that level 1 accepted, so at any
  // threshold the pruned LoC cannot exceed the level-1 LoC at 0.5.
  const double l1 = res.level1.mean_loc_at_threshold(0.5);
  const double pruned_all = res.pruned.mean_loc_at_threshold(0.0);
  EXPECT_LE(pruned_all, l1 + 1e-9);

  // Both results cover the same v-pins.
  EXPECT_EQ(res.level1.num_vpins(), challenges_[0].num_vpins());
  EXPECT_EQ(res.pruned.num_vpins(), challenges_[0].num_vpins());
  EXPECT_GT(res.num_l2_train_samples, 0);
  EXPECT_GT(res.total_seconds, 0.0);
}

TEST_F(TwoLevel, AccuracyBoundedByLevel1) {
  std::vector<const splitmfg::SplitChallenge*> training{&challenges_[1],
                                                        &challenges_[2]};
  const AttackConfig cfg = config_from_name("Imp-11");
  const TwoLevelResult res =
      two_level_attack(challenges_[0], training, cfg);
  // A match pruned by level 1 can never reappear: max accuracy of the
  // pruned result <= accuracy of level 1 at its threshold.
  EXPECT_LE(res.pruned.max_accuracy(),
            res.level1.accuracy_at_threshold(0.5) + 1e-9);
}

}  // namespace
}  // namespace repro::core

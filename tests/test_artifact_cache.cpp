// The warm-model LRU (core/artifact_cache): strict LRU eviction by
// estimated bytes, get-promotes-to-MRU, the never-evict-the-newest rule
// that lets one oversized ensemble still serve, and the --cache-mb 0
// escape hatch.
#include <gtest/gtest.h>

#include <memory>

#include "core/artifact_cache.hpp"

namespace repro::core {
namespace {

/// An entry with a forced byte estimate; the model/forest stay empty —
/// the cache only looks at `bytes`.
std::shared_ptr<const CachedEnsemble> entry_of(std::size_t bytes) {
  auto e = std::make_shared<CachedEnsemble>();
  e->bytes = bytes;
  return e;
}

TEST(ArtifactCache, MissThenHit) {
  ArtifactCache cache(1 << 20);
  EXPECT_EQ(cache.get(1), nullptr);
  cache.put(1, entry_of(100));
  EXPECT_NE(cache.get(1), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 100u);
}

TEST(ArtifactCache, EvictsLeastRecentlyUsedFirst) {
  ArtifactCache cache(250);  // fits two 100-byte entries, not three
  cache.put(1, entry_of(100));
  cache.put(2, entry_of(100));
  cache.put(3, entry_of(100));  // evicts 1 (the coldest)
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_NE(cache.get(2), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.bytes, 200u);
}

TEST(ArtifactCache, GetPromotesToMostRecentlyUsed) {
  ArtifactCache cache(250);
  cache.put(1, entry_of(100));
  cache.put(2, entry_of(100));
  EXPECT_NE(cache.get(1), nullptr);  // 1 is now MRU, 2 is coldest
  cache.put(3, entry_of(100));       // evicts 2, not 1
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
}

TEST(ArtifactCache, NeverEvictsTheNewestEntry) {
  // One ensemble larger than the whole cache still serves: the cache
  // degrades to capacity 1 instead of thrashing to 0.
  ArtifactCache cache(64);
  cache.put(1, entry_of(1000));
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
  // The next oversized insert replaces it (old one evicted, new kept).
  cache.put(2, entry_of(2000));
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_NE(cache.get(2), nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ArtifactCache, ReplacingAKeyUpdatesAccounting) {
  ArtifactCache cache(1 << 20);
  cache.put(1, entry_of(100));
  cache.put(1, entry_of(300));
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 300u);
  EXPECT_EQ(s.inserts, 2u);
  EXPECT_EQ(s.evictions, 0u);  // replacement is not an eviction
}

TEST(ArtifactCache, CapacityZeroDisablesCaching) {
  ArtifactCache cache(0);
  cache.put(1, entry_of(1));
  EXPECT_EQ(cache.get(1), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.inserts, 0u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(ArtifactCache, EvictionDropsTheCacheRefNotTheBorrowers) {
  ArtifactCache cache(150);
  cache.put(1, entry_of(100));
  const auto borrowed = cache.get(1);
  ASSERT_NE(borrowed, nullptr);
  cache.put(2, entry_of(100));  // evicts 1 while it is borrowed
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(borrowed->bytes, 100u);  // still valid for the borrower
}

TEST(ArtifactCache, EstimateScalesWithForestSize) {
  // The estimator is a node-count model with a constant floor.
  const CachedEnsemble empty;
  EXPECT_GE(estimate_ensemble_bytes(empty), 4096u);
}

}  // namespace
}  // namespace repro::core

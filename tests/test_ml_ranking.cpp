#include <gtest/gtest.h>

#include <random>

#include "ml/ranking.hpp"

namespace repro::ml {
namespace {

/// Three features: perfectly informative, noisy, constant.
Dataset ranked_dataset(int n, std::uint64_t seed) {
  Dataset data({"signal", "noisy", "constant"});
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    const int label = u(rng) > 0.5;
    const double signal = label ? 1.0 + u(rng) : u(rng);  // separable-ish
    const double noisy = label * 0.2 + u(rng);
    data.add_row(std::vector<double>{signal, noisy, 3.14}, label);
  }
  return data;
}

TEST(Ranking, InformationGainOrdersFeatures) {
  const Dataset data = ranked_dataset(4000, 1);
  const double g_sig = information_gain(data, 0);
  const double g_noisy = information_gain(data, 1);
  const double g_const = information_gain(data, 2);
  EXPECT_GT(g_sig, g_noisy);
  EXPECT_GT(g_noisy, g_const);
  EXPECT_NEAR(g_const, 0.0, 1e-9);
  // Perfect separation at threshold 1.0 covers most of a 1-bit label.
  EXPECT_GT(g_sig, 0.5);
}

TEST(Ranking, CorrelationDetectsLinearRelation) {
  Dataset data({"pos", "neg", "none"});
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < 2000; ++i) {
    const int label = i % 2;
    data.add_row(std::vector<double>{label + 0.1 * u(rng),
                                     -2.0 * label + 0.1 * u(rng), u(rng)},
                 label);
  }
  EXPECT_GT(abs_correlation(data, 0), 0.95);
  EXPECT_GT(abs_correlation(data, 1), 0.95);  // |corr| of negative relation
  EXPECT_LT(abs_correlation(data, 2), 0.1);
}

TEST(Ranking, FisherRatioOfSeparatedGaussians) {
  Dataset data({"f"});
  std::mt19937_64 rng(3);
  std::normal_distribution<double> n0(0.0, 1.0), n1(4.0, 1.0);
  for (int i = 0; i < 4000; ++i) {
    const int label = i % 2;
    data.add_row(std::vector<double>{label ? n1(rng) : n0(rng)}, label);
  }
  // (mu1-mu0)^2 / (s0^2+s1^2) = 16 / 2 = 8.
  EXPECT_NEAR(fisher_ratio(data, 0), 8.0, 1.0);
}

TEST(Ranking, ConstantFeatureHasZeroEverything) {
  const Dataset data = ranked_dataset(500, 4);
  EXPECT_DOUBLE_EQ(abs_correlation(data, 2), 0.0);
  EXPECT_DOUBLE_EQ(fisher_ratio(data, 2), 0.0);
}

TEST(Ranking, RankFeaturesCoversAllColumns) {
  const Dataset data = ranked_dataset(1000, 5);
  const auto scores = rank_features(data);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_EQ(scores[0].name, "signal");
  EXPECT_GT(scores[0].info_gain, scores[2].info_gain);
  EXPECT_GT(scores[0].fisher, scores[2].fisher);
}

TEST(Ranking, EmptyAndDegenerateInputsAreSafe) {
  Dataset data({"x"});
  EXPECT_DOUBLE_EQ(information_gain(data, 0), 0.0);
  EXPECT_DOUBLE_EQ(abs_correlation(data, 0), 0.0);
  EXPECT_DOUBLE_EQ(fisher_ratio(data, 0), 0.0);
  data.add_row(std::vector<double>{1.0}, 1);  // single class only
  data.add_row(std::vector<double>{2.0}, 1);
  EXPECT_DOUBLE_EQ(information_gain(data, 0), 0.0);
  EXPECT_DOUBLE_EQ(fisher_ratio(data, 0), 0.0);
}

}  // namespace
}  // namespace repro::ml

// Checkpoint/resume for attack campaigns: model and result artifacts
// round-trip bit-exact, the run key isolates configurations, resumed
// leave-one-out runs reproduce uninterrupted digests at any thread
// count, corrupt checkpoints fall back to recompute, and the budget
// degradation ladder takes its rungs in order while recording events.
#include "core/resilience.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "core/cross_validation.hpp"
#include "ml/serialize.hpp"
#include "test_helpers.hpp"

namespace repro {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void clobber(const std::string& path, const std::string& data) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << data;
}

bool same_model(const ml::BaggingClassifier& a,
                const ml::BaggingClassifier& b) {
  if (a.num_trees() != b.num_trees()) return false;
  for (int t = 0; t < a.num_trees(); ++t) {
    const ml::DecisionTree& ta = a.tree(t);
    const ml::DecisionTree& tb = b.tree(t);
    if (ta.num_nodes() != tb.num_nodes()) return false;
    for (int i = 0; i < ta.num_nodes(); ++i) {
      const ml::TreeNode& na = ta.node(i);
      const ml::TreeNode& nb = tb.node(i);
      if (na.feature != nb.feature || na.left != nb.left ||
          na.right != nb.right ||
          std::memcmp(&na.threshold, &nb.threshold, sizeof na.threshold) !=
              0 ||
          std::memcmp(&na.pos, &nb.pos, sizeof na.pos) != 0 ||
          std::memcmp(&na.neg, &nb.neg, sizeof na.neg) != 0) {
        return false;
      }
    }
  }
  return true;
}

bool same_result(const core::AttackResult& a, const core::AttackResult& b) {
  if (a.num_vpins() != b.num_vpins()) return false;
  for (int v = 0; v < a.num_vpins(); ++v) {
    const core::VpinResult& ra = a.per_vpin()[static_cast<std::size_t>(v)];
    const core::VpinResult& rb = b.per_vpin()[static_cast<std::size_t>(v)];
    if (ra.tested != rb.tested || ra.has_match != rb.has_match ||
        ra.num_evaluated != rb.num_evaluated || ra.hist != rb.hist ||
        std::memcmp(&ra.p_true, &rb.p_true, sizeof ra.p_true) != 0 ||
        std::memcmp(&ra.d_true, &rb.d_true, sizeof ra.d_true) != 0 ||
        ra.top.size() != rb.top.size()) {
      return false;
    }
    for (std::size_t i = 0; i < ra.top.size(); ++i) {
      if (ra.top[i].id != rb.top[i].id ||
          std::memcmp(&ra.top[i].p, &rb.top[i].p, sizeof(float)) != 0 ||
          std::memcmp(&ra.top[i].d, &rb.top[i].d, sizeof(float)) != 0) {
        return false;
      }
    }
  }
  return true;
}

ml::Dataset tiny_dataset() {
  ml::Dataset data({"a", "b"});
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < 400; ++i) {
    const double a = u(rng), b = u(rng);
    data.add_row(std::vector<double>{a, b}, (a + b > 1.0) ? 1 : 0);
  }
  return data;
}

// --- model serialization --------------------------------------------------

TEST(MlSerialize, EnsembleRoundTripsBitExact) {
  const ml::Dataset data = tiny_dataset();
  const auto clf = ml::BaggingClassifier::train(
      data, ml::BaggingOptions::reptree_bagging(7));
  const std::string raw = ml::save_bagging(clf);
  auto back = ml::load_bagging(raw);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(same_model(clf, *back));
}

TEST(MlSerialize, EmptyEnsembleRoundTrips) {
  const auto clf = ml::BaggingClassifier::from_trees({});
  auto back = ml::load_bagging(ml::save_bagging(clf));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_trees(), 0);
}

TEST(MlSerialize, CorruptionAndTruncationAreDataLoss) {
  const ml::Dataset data = tiny_dataset();
  const std::string raw = ml::save_bagging(ml::BaggingClassifier::train(
      data, ml::BaggingOptions::reptree_bagging(3)));
  for (std::size_t i = 0; i < raw.size(); i += 7) {
    std::string bad = raw;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    EXPECT_FALSE(ml::load_bagging(bad).ok()) << "flip at " << i;
  }
  for (std::size_t frac = 1; frac < 8; ++frac) {
    EXPECT_FALSE(ml::load_bagging(raw.substr(0, raw.size() * frac / 8)).ok())
        << "truncation at " << frac << "/8";
  }
  EXPECT_FALSE(ml::load_bagging(raw + "x").ok()) << "trailing bytes";
}

// --- attack artifacts -----------------------------------------------------

class ResilienceAttack : public ::testing::Test {
 protected:
  void SetUp() override {
    common::obs::clear_degradation();
    for (std::uint64_t s = 1; s <= 3; ++s) {
      challenges_.push_back(
          repro::testing::make_grid_challenge(50, 100000, 8000, s));
    }
    cfg_ = core::config_from_name("Imp-9");
  }
  void TearDown() override {
    common::set_global_threads(0);
    common::obs::clear_degradation();
  }

  std::vector<const splitmfg::SplitChallenge*> training_for_0() const {
    return {&challenges_[1], &challenges_[2]};
  }

  std::vector<splitmfg::SplitChallenge> challenges_;
  core::AttackConfig cfg_;
};

TEST_F(ResilienceAttack, TrainedModelRoundTripsBitExact) {
  const core::TrainedModel model =
      core::AttackEngine::train(training_for_0(), cfg_);
  auto back = core::load_model(core::save_model(model));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->config.name, model.config.name);
  EXPECT_EQ(back->config.seed, model.config.seed);
  EXPECT_EQ(back->feat_idx, model.feat_idx);
  EXPECT_EQ(back->filter.neighborhood, model.filter.neighborhood);
  EXPECT_EQ(back->num_train_samples, model.num_train_samples);
  EXPECT_TRUE(same_model(model.classifier, back->classifier));

  // The loaded model must *score* identically, not just look identical.
  const core::AttackResult from_orig =
      core::AttackEngine::test(model, challenges_[0]);
  const core::AttackResult from_loaded =
      core::AttackEngine::test(*back, challenges_[0]);
  EXPECT_TRUE(same_result(from_orig, from_loaded));
  EXPECT_EQ(core::result_digest(from_orig), core::result_digest(from_loaded));
}

TEST_F(ResilienceAttack, ResultRoundTripsBitExactWithEqualDigest) {
  const core::TrainedModel model =
      core::AttackEngine::train(training_for_0(), cfg_);
  const core::AttackResult res =
      core::AttackEngine::test(model, challenges_[0]);
  const std::string raw = core::save_result(res);
  auto back = core::load_result(raw);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(same_result(res, *back));
  EXPECT_EQ(core::result_digest(res), core::result_digest(*back));
  EXPECT_EQ(back->design(), res.design());
  EXPECT_EQ(back->split_layer(), res.split_layer());

  // Every third byte flipped: the envelope CRC or the structural checks
  // must reject all of them.
  for (std::size_t i = 0; i < raw.size(); i += 3) {
    std::string bad = raw;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    EXPECT_FALSE(core::load_result(bad).ok()) << "flip at " << i;
  }
}

TEST_F(ResilienceAttack, RunKeySeparatesConfigsAndInputs) {
  const std::uint64_t base = core::attack_run_key(challenges_, cfg_);
  EXPECT_EQ(base, core::attack_run_key(challenges_, cfg_)) << "must be stable";

  core::AttackConfig other = cfg_;
  other.seed = 99;
  EXPECT_NE(base, core::attack_run_key(challenges_, other));
  other = cfg_;
  other.hist_bins = 64;
  EXPECT_NE(base, core::attack_run_key(challenges_, other));
  other = cfg_;
  other.max_trees = 5;  // a degraded config is a *different* computation
  EXPECT_NE(base, core::attack_run_key(challenges_, other));

  auto fewer = challenges_;
  fewer.pop_back();
  EXPECT_NE(base, core::attack_run_key(fewer, cfg_));
  auto renamed = challenges_;
  renamed[0].design_name = "someone_else";
  EXPECT_NE(base, core::attack_run_key(renamed, cfg_));
}

// --- degradation ladder ---------------------------------------------------

TEST(Degradation, TakesRungsInOrderAndRecordsEvents) {
  common::obs::clear_degradation();
  core::AttackConfig cfg = core::config_from_name("Imp-9");

  core::AttackConfig none = cfg;
  EXPECT_FALSE(
      core::apply_degradation(none, common::BudgetPressure::kNone));
  EXPECT_EQ(none.max_trees, 0);
  EXPECT_TRUE(common::obs::degradation_events().empty());

  // Exceeded is a stop, not a shed: the caller flushes and exits.
  core::AttackConfig exceeded = cfg;
  EXPECT_FALSE(
      core::apply_degradation(exceeded, common::BudgetPressure::kExceeded));
  EXPECT_EQ(exceeded.max_trees, 0);

  core::AttackConfig soft = cfg;
  EXPECT_TRUE(core::apply_degradation(soft, common::BudgetPressure::kSoft, 2));
  EXPECT_EQ(soft.max_trees, 5);
  EXPECT_EQ(soft.max_test_vpins, cfg.max_test_vpins) << "soft stops at rung 1";
  auto events = common::obs::degradation_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].step, "fewer_trees");
  EXPECT_EQ(events[0].fold, 2);

  common::obs::clear_degradation();
  core::AttackConfig hard = cfg;
  EXPECT_TRUE(core::apply_degradation(hard, common::BudgetPressure::kHard, 4));
  EXPECT_EQ(hard.max_trees, 5);
  EXPECT_EQ(hard.max_test_vpins, 256);
  EXPECT_DOUBLE_EQ(hard.neighborhood_percentile, 0.75);
  events = common::obs::degradation_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].step, "fewer_trees");
  EXPECT_EQ(events[1].step, "sample_targets");
  EXPECT_EQ(events[2].step, "shrink_radius");

  // Re-applying to an already-degraded config takes no further rungs.
  common::obs::clear_degradation();
  EXPECT_FALSE(core::apply_degradation(hard, common::BudgetPressure::kHard));
  EXPECT_TRUE(common::obs::degradation_events().empty());
  common::obs::clear_degradation();
}

TEST(Degradation, CappedEnsembleIsAPrefixOfTheFullOne) {
  // max_trees works by truncating the tree count, and tree i derives its
  // seed from (seed, i) alone — so the degraded ensemble is exactly the
  // first 5 trees of the full one, which keeps degraded results
  // deterministic and explains what accuracy was traded away.
  ml::Dataset data({"a", "b"});
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < 400; ++i) {
    const double a = u(rng), b = u(rng);
    data.add_row(std::vector<double>{a, b}, (a + b > 1.0) ? 1 : 0);
  }
  ml::BaggingOptions full_opt = ml::BaggingOptions::reptree_bagging();
  full_opt.num_trees = 10;
  ml::BaggingOptions capped_opt = full_opt;
  capped_opt.num_trees = 5;
  const auto full = ml::BaggingClassifier::train(data, full_opt);
  const auto capped = ml::BaggingClassifier::train(data, capped_opt);
  ASSERT_EQ(capped.num_trees(), 5);
  std::vector<ml::DecisionTree> prefix;
  for (int t = 0; t < 5; ++t) {
    const ml::DecisionTree& tree = full.tree(t);
    std::vector<ml::TreeNode> nodes;
    for (int i = 0; i < tree.num_nodes(); ++i) nodes.push_back(tree.node(i));
    prefix.push_back(ml::DecisionTree::from_nodes(std::move(nodes)));
  }
  EXPECT_TRUE(
      same_model(capped, ml::BaggingClassifier::from_trees(std::move(prefix))));
}

// --- checkpointed leave-one-out: the kill-and-resume differential ---------

TEST_F(ResilienceAttack, ResumedRunsAreBitIdenticalAcrossThreadCounts) {
  // Uninterrupted baseline at 1 thread.
  const core::ChallengeSuite suite(challenges_);
  common::set_global_threads(1);
  const std::vector<core::AttackResult> baseline = suite.run_all(cfg_);
  std::vector<std::uint64_t> baseline_digests;
  for (const auto& r : baseline) {
    baseline_digests.push_back(core::result_digest(r));
  }

  // Full checkpointed run at 8 threads.
  const std::string dir = fresh_dir("resume_diff");
  const std::uint64_t key = core::attack_run_key(challenges_, cfg_);
  common::DiagnosticSink sink;
  {
    auto ckpt = common::CheckpointManager::open(dir, key, sink);
    ASSERT_TRUE(ckpt.ok());
    core::RunControl rc;
    rc.checkpoint = &*ckpt;
    rc.sink = &sink;
    common::set_global_threads(8);
    auto folds = suite.run_all_checkpointed(cfg_, rc);
    ASSERT_EQ(folds.size(), baseline.size());
    for (std::size_t i = 0; i < folds.size(); ++i) {
      ASSERT_TRUE(folds[i].has_value()) << "fold " << i;
      EXPECT_EQ(core::result_digest(*folds[i]), baseline_digests[i])
          << "checkpointed fold " << i << " diverged at 8 threads";
      EXPECT_TRUE(ckpt->has(core::ChallengeSuite::fold_result_name(
          static_cast<std::int64_t>(i))));
    }
  }

  // Simulated crash: fold 1's result never made it to disk. Resume at 1
  // thread — fold 1 is recomputed, folds 0 and 2 are loaded — and the
  // mixed run must be indistinguishable from the uninterrupted one.
  {
    common::DiagnosticSink resume_sink;
    auto ckpt = common::CheckpointManager::open(dir, key, resume_sink);
    ASSERT_TRUE(ckpt.ok());
    ASSERT_TRUE(ckpt->remove(core::ChallengeSuite::fold_result_name(1)).ok());
    core::RunControl rc;
    rc.checkpoint = &*ckpt;
    rc.sink = &resume_sink;
    common::set_global_threads(1);
    auto folds = suite.run_all_checkpointed(cfg_, rc);
    for (std::size_t i = 0; i < folds.size(); ++i) {
      ASSERT_TRUE(folds[i].has_value()) << "fold " << i;
      EXPECT_TRUE(same_result(baseline[i], *folds[i]))
          << "resumed fold " << i << " is not bit-identical";
      EXPECT_EQ(core::result_digest(*folds[i]), baseline_digests[i]);
    }
  }

  // Bit-rotted checkpoint: fold 0's artifact fails its CRC on resume.
  // The run must diagnose, recompute, and still match the baseline.
  {
    const std::string fold0 =
        dir + "/" + core::ChallengeSuite::fold_result_name(0);
    std::string bytes;
    {
      auto raw = common::read_file(fold0);
      ASSERT_TRUE(raw.ok());
      bytes = *raw;
    }
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x7);
    clobber(fold0, bytes);

    common::DiagnosticSink resume_sink;
    auto ckpt = common::CheckpointManager::open(dir, key, resume_sink);
    ASSERT_TRUE(ckpt.ok());
    core::RunControl rc;
    rc.checkpoint = &*ckpt;
    rc.sink = &resume_sink;
    common::set_global_threads(2);
    auto folds = suite.run_all_checkpointed(cfg_, rc);
    bool diagnosed = false;
    for (const auto& d : resume_sink.diagnostics()) {
      if (d.code == "checkpoint.corrupt_artifact") diagnosed = true;
    }
    EXPECT_TRUE(diagnosed) << "corrupt artifact must be reported, not hidden";
    for (std::size_t i = 0; i < folds.size(); ++i) {
      ASSERT_TRUE(folds[i].has_value()) << "fold " << i;
      EXPECT_EQ(core::result_digest(*folds[i]), baseline_digests[i])
          << "fold " << i << " after corrupt-checkpoint fallback";
    }
  }
}

TEST_F(ResilienceAttack, CancelledRunCheckpointsNothingAndResumesClean) {
  const core::ChallengeSuite suite(challenges_);
  const std::string dir = fresh_dir("resume_cancel");
  const std::uint64_t key = core::attack_run_key(challenges_, cfg_);
  common::DiagnosticSink sink;
  auto ckpt = common::CheckpointManager::open(dir, key, sink);
  ASSERT_TRUE(ckpt.ok());

  common::CancelToken cancel;
  cancel.request_cancel("test-induced stop");
  core::RunControl rc;
  rc.checkpoint = &*ckpt;
  rc.cancel = &cancel;
  rc.sink = &sink;
  common::set_global_threads(4);
  auto folds = suite.run_all_checkpointed(cfg_, rc);
  for (const auto& f : folds) {
    EXPECT_FALSE(f.has_value()) << "a cancelled run must not emit results";
  }
  EXPECT_TRUE(ckpt->names().empty())
      << "a cancelled run must not checkpoint partial state";

  // Resume with a fresh token: completes and matches the plain path.
  cancel.reset();
  common::set_global_threads(1);
  const std::vector<core::AttackResult> baseline = suite.run_all(cfg_);
  auto resumed = suite.run_all_checkpointed(cfg_, rc);
  ASSERT_EQ(resumed.size(), baseline.size());
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    ASSERT_TRUE(resumed[i].has_value());
    EXPECT_TRUE(same_result(baseline[i], *resumed[i]));
  }
}

TEST_F(ResilienceAttack, ExhaustedBudgetStopsFoldsAndRequestsCancel) {
  const core::ChallengeSuite suite(challenges_);
  common::CancelToken cancel;
  common::Budget budget(1e-12, 0);  // a deadline no fold can meet
  ASSERT_FALSE(budget.unlimited());
  EXPECT_EQ(budget.pressure(), common::BudgetPressure::kExceeded);

  core::RunControl rc;
  rc.cancel = &cancel;
  rc.budget = &budget;
  common::set_global_threads(2);
  auto folds = suite.run_all_checkpointed(cfg_, rc);
  for (const auto& f : folds) {
    EXPECT_FALSE(f.has_value()) << "no fold should run past a spent budget";
  }
  EXPECT_TRUE(cancel.cancelled());
  EXPECT_EQ(cancel.reason(), "budget exhausted");
}

}  // namespace
}  // namespace repro

// Tests for the shared JSON emitter: escaping completeness, number
// rendering, object/array composition, and the file writer.
#include "common/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace {

using repro::common::json_array;
using repro::common::json_num;
using repro::common::json_num_array;
using repro::common::json_str;
using repro::common::JsonObject;
using repro::common::write_json_file;

TEST(JsonWriter, EscapesQuoteAndBackslash) {
  EXPECT_EQ(json_str("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_str("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_str("C:\\path\\\"x\""), "\"C:\\\\path\\\\\\\"x\\\"\"");
}

TEST(JsonWriter, EscapesTwoCharControls) {
  EXPECT_EQ(json_str("\b\f\n\r\t"), "\"\\b\\f\\n\\r\\t\"");
}

TEST(JsonWriter, EscapesRemainingControlsAsUnicode) {
  EXPECT_EQ(json_str(std::string(1, '\x01')), "\"\\u0001\"");
  EXPECT_EQ(json_str(std::string(1, '\x1f')), "\"\\u001f\"");
  // NUL embedded in a std::string must survive as \u0000.
  EXPECT_EQ(json_str(std::string("a\0b", 3)), "\"a\\u0000b\"");
}

TEST(JsonWriter, PassesUtf8Through) {
  const std::string s = "caf\xc3\xa9 \xe2\x9c\x93";  // "café ✓"
  EXPECT_EQ(json_str(s), "\"" + s + "\"");
}

TEST(JsonWriter, NumbersRoundTrip) {
  EXPECT_EQ(json_num(0), "0");
  EXPECT_EQ(json_num(-3), "-3");
  EXPECT_EQ(json_num(0.5), "0.5");
  const double v = 1.0 / 3.0;
  EXPECT_NEAR(std::stod(json_num(v)), v, 1e-12);
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  EXPECT_EQ(json_num(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_num(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_num(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, ObjectPreservesFieldOrder) {
  const std::string s = JsonObject()
                            .field("b", 1)
                            .field("a", std::string("x"))
                            .field("flag", true)
                            .str();
  EXPECT_EQ(s, "{\"b\": 1, \"a\": \"x\", \"flag\": true}");
}

TEST(JsonWriter, NestedRawFieldsAndArrays) {
  const std::string inner = JsonObject().field("k", 2).str();
  const std::string s = JsonObject()
                            .field_raw("obj", inner)
                            .field_raw("arr", json_array({"1", "\"two\""}))
                            .str();
  EXPECT_EQ(s, "{\"obj\": {\"k\": 2}, \"arr\": [1, \"two\"]}");
  EXPECT_EQ(json_array({}), "[]");
}

TEST(JsonWriter, NumArrays) {
  EXPECT_EQ(json_num_array(std::vector<double>{0.5, 2}), "[0.5, 2]");
  EXPECT_EQ(json_num_array(std::vector<std::uint64_t>{1, 2, 3}), "[1, 2, 3]");
}

TEST(JsonWriter, WriteJsonFileAppendsNewlineAndReportsFailure) {
  const std::string path =
      testing::TempDir() + "/json_writer_test_out.json";
  ASSERT_TRUE(write_json_file(path, "{}"));
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "{}\n");
  std::remove(path.c_str());

  EXPECT_FALSE(write_json_file("/nonexistent_dir_zz/x.json", "{}"));
}

}  // namespace
